(* A whole process on the full VMM: mmap'd regions, demand paging,
   measured page-walk cycles, swap, dirty writeback — the
   "address-translation costs can dominate" story end to end.

   A BFS over a Kronecker graph runs twice: once on a machine with
   plenty of RAM (translation-bound) and once under memory pressure
   (paging-bound), printing where the cycles actually went.

   Run with:  dune exec examples/process_sim.exe *)

open Atp_memsim
open Atp_workloads
open Atp_util

let run ~name ~ram_pages ~tlb_entries ~accesses workload layout =
  let vm =
    Vmm.create { Vmm.default_config with ram_pages; tlb_entries }
  in
  (* One mmap per data structure, as the real program would. *)
  Vmm.mmap vm ~start:0 ~pages:layout.Graph500.total_pages;
  for _ = 1 to accesses do
    let page = workload.Workload.next () in
    (* BFS writes its queue and parent arrays; reads the rest. *)
    if page >= layout.Graph500.queue_base then Vmm.write vm page
    else Vmm.read vm page
  done;
  let c = Vmm.counters vm in
  Format.printf "@[<v>[%s]@,  %a@,  cycles/access = %.1f; translation share = %.1f%%@]@.@."
    name Vmm.pp_counters c
    (Vmm.average_cycles_per_access vm)
    (100.0 *. Vmm.translation_fraction vm)

let () =
  let rng = Prng.create ~seed:2026 () in
  let csr = Kronecker.generate ~scale:13 ~edge_factor:16 rng in
  let accesses = 400_000 in
  Format.printf
    "BFS process over a Kronecker graph (%d vertices, %d stored edges)@.@."
    csr.Kronecker.vertices
    (Array.length csr.Kronecker.adj);
  let w1, layout = Graph500.create_from csr (Prng.create ~seed:1 ()) in
  run ~name:"ample RAM: translation-bound" ~ram_pages:(2 * layout.Graph500.total_pages)
    ~tlb_entries:256 ~accesses w1 layout;
  let w2, layout = Graph500.create_from csr (Prng.create ~seed:1 ()) in
  run ~name:"tight RAM (90% of footprint): paging-bound"
    ~ram_pages:(layout.Graph500.total_pages * 9 / 10)
    ~tlb_entries:256 ~accesses w2 layout;
  Format.printf
    "The first run spends nearly all cycles translating addresses; the \
     second drowns in swap IO.@.A memory-management algorithm must \
     optimize both at once — which is the paper's problem statement.@."
