(* A database-flavoured scenario: a buffer pool serving a skewed
   (Zipf) OLTP page-reference stream.  Databases are exactly the
   systems whose vendors tell users to disable transparent huge pages
   (the paper cites Couchbase, MongoDB, Oracle, Percona); this example
   shows why — and that decoupling removes the dilemma.

   It also demonstrates that the Simulation Theorem is policy-agnostic:
   X and Y can be any mix of policies (here ARC and 2Q next to LRU),
   including Belady's offline OPT for Y.

   Run with:  dune exec examples/buffer_pool.exe *)

open Atp_core
open Atp_paging
open Atp_workloads
open Atp_util

let () =
  let ram_pages = 4096 in
  let tlb_entries = 128 in
  let epsilon = 0.05 in
  let virtual_pages = 1 lsl 16 in
  let mk_trace seed n =
    let rng = Prng.create ~seed () in
    Workload.generate (Simple.zipf ~s:0.9 ~virtual_pages rng) n
  in
  let warmup = mk_trace 1 100_000 in
  let trace = mk_trace 2 200_000 in

  let params = Params.derive ~p:ram_pages ~w:64 () in
  let budget = Params.usable_pages params in
  Format.printf
    "Buffer pool: %d RAM pages (budget %d), Zipf(0.9) over %d pages, ε = %g@.@."
    ram_pages budget virtual_pages epsilon;

  Format.printf "%-18s %12s %12s %14s %10s@." "X (TLB) / Y (RAM)" "IOs"
    "TLB fills" "decode misses" "cost";
  let run ~xname ~yname x y =
    let z = Simulation.create ~params ~x ~y () in
    let r = Simulation.run ~warmup z trace in
    Format.printf "%-18s %12d %12d %14d %10.1f@."
      (xname ^ "/" ^ yname)
      r.Simulation.ios r.Simulation.tlb_fills r.Simulation.decoding_misses
      (Simulation.cost ~epsilon r)
  in
  let policies = [ ("lru", (module Lru : Policy.S)); ("arc", (module Arc)); ("2q", (module Two_q)) ] in
  List.iter
    (fun (xname, xmod) ->
      List.iter
        (fun (yname, ymod) ->
          let x = Policy.instantiate xmod ~capacity:tlb_entries () in
          let y = Policy.instantiate ymod ~capacity:budget () in
          run ~xname ~yname x y)
        policies)
    policies;

  (* Offline optimal IOs: Theorem 4 explicitly permits an offline Y. *)
  let x = Policy.instantiate (module Lru) ~capacity:tlb_entries () in
  (* OPT must see the exact request stream it will serve: warmup ++ trace. *)
  let full = Array.append warmup trace in
  let y = Opt.instance ~capacity:budget full in
  let z = Simulation.create ~params ~x ~y () in
  let r = Simulation.run ~warmup z trace in
  Format.printf "%-18s %12d %12d %14d %10.1f   (offline lower bound for IOs)@."
    "lru/OPT" r.Simulation.ios r.Simulation.tlb_fills r.Simulation.decoding_misses
    (Simulation.cost ~epsilon r)
