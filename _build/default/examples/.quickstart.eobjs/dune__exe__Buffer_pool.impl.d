examples/buffer_pool.ml: Arc Array Atp_core Atp_paging Atp_util Atp_workloads Format List Lru Opt Params Policy Prng Simple Simulation Two_q Workload
