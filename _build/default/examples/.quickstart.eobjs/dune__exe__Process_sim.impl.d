examples/process_sim.ml: Array Atp_memsim Atp_util Atp_workloads Format Graph500 Kronecker Prng Vmm Workload
