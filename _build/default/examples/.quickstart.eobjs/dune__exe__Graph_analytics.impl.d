examples/graph_analytics.ml: Atp_core Atp_memsim Atp_paging Atp_util Atp_workloads Format Graph500 Graph_walk Kronecker List Lru Machine Params Policy Prng Simulation Workload
