examples/ballsbins_demo.mli:
