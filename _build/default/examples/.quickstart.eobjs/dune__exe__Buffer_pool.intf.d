examples/buffer_pool.mli:
