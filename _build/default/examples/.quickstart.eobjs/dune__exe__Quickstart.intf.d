examples/quickstart.mli:
