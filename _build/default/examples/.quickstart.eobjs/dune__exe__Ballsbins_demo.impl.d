examples/ballsbins_demo.ml: Adversary Atp_ballsbins Atp_util Format Game List Prng Runner Strategy
