examples/quickstart.ml: Atp_core Atp_memsim Atp_paging Atp_util Atp_workloads Bimodal Format List Lru Params Policy Prng Simulation Workload
