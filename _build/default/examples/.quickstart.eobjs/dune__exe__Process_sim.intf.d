examples/process_sim.mli:
