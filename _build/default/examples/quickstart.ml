(* Quickstart: build a decoupled memory-management algorithm Z from two
   off-the-shelf paging policies and compare it, in the
   address-translation cost model, against physical huge pages.

   Run with:  dune exec examples/quickstart.exe *)

open Atp_core
open Atp_paging
open Atp_workloads
open Atp_util

let () =
  (* A machine with 16 Mi of RAM in 4 KiB pages and 64-bit TLB values. *)
  let ram_pages = 4096 in
  let epsilon = 0.01 in

  (* 1. Derive the scheme geometry from the hardware constants.  The
     default is the paper's main construction, Iceberg[2]. *)
  let params = Params.derive ~p:ram_pages ~w:64 () in
  Format.printf "@[<v>Derived parameters:@,%a@]@.@." Params.pp params;

  (* 2. A workload: 99.9%% of accesses in a 512-page hot set inside a
     64k-page virtual address space (the paper's bimodal stress test,
     scaled down). *)
  let rng = Prng.create ~seed:1 () in
  let workload =
    Bimodal.create ~hot_fraction:0.999 ~hot_pages:512
      ~virtual_pages:(1 lsl 16) rng
  in
  let warmup = Workload.generate workload 50_000 in
  let trace = Workload.generate workload 100_000 in

  (* 3. Pick X (TLB-optimising) and Y (IO-optimising) independently —
     the whole point of Theorem 4 — and combine them with the
     decoupling scheme. *)
  let x = Policy.instantiate (module Lru) ~capacity:64 () in
  let y =
    Policy.instantiate (module Lru) ~capacity:(Params.usable_pages params) ()
  in
  let z = Simulation.create ~params ~x ~y () in
  let report = Simulation.run ~warmup z trace in
  Format.printf "Decoupled scheme Z:@.  %a@.  C(Z) = %.1f  (C_TLB = %.1f, C_IO = %.1f)@.@."
    Simulation.pp_report report
    (Simulation.cost ~epsilon report)
    (Simulation.c_tlb ~epsilon report)
    (Simulation.c_io report);

  (* 4. The classical alternative: physically contiguous huge pages of
     size h, which trade IOs against TLB misses (Figure 1). *)
  Format.printf "Physical huge pages (same workload, same ε):@.";
  List.iter
    (fun h ->
      let machine =
        Atp_memsim.Machine.create
          { Atp_memsim.Machine.default_config with
            ram_pages; tlb_entries = 64; huge_size = h; epsilon }
      in
      let c = Atp_memsim.Machine.run ~warmup machine trace in
      Format.printf "  h = %4d: %a  cost = %.1f@."
        h Atp_memsim.Machine.pp_counters c
        (Atp_memsim.Machine.cost ~epsilon c))
    [ 1; 8; 64; 512 ];
  Format.printf
    "@.Z matches the best of both columns: huge-page-level TLB misses \
     with base-page-level IOs.@."
