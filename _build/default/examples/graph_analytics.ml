(* Graph analytics under memory pressure: the paper's motivating
   workload class (irregular access, hard to prefetch, TLB-hostile).

   Reproduces the Figure 1b/1c story on two graph workloads — a
   Pareto random walk and a graph500-style BFS — then shows what the
   decoupled scheme does on the same traces.

   Run with:  dune exec examples/graph_analytics.exe *)

open Atp_core
open Atp_memsim
open Atp_paging
open Atp_workloads
open Atp_util

let epsilon = 0.01

let tlb_entries = 256

let sweep ~name ~ram ~mk_workload =
  Format.printf "== %s (RAM %d pages, TLB %d entries, ε = %g) ==@." name ram
    tlb_entries epsilon;
  Format.printf "%8s %12s %12s %12s@." "h" "IOs" "TLB misses" "cost";
  List.iter
    (fun h ->
      let workload = mk_workload () in
      let warmup = Workload.generate workload 100_000 in
      let trace = Workload.generate workload 100_000 in
      let machine =
        Machine.create
          { Machine.default_config with
            ram_pages = ram; tlb_entries; huge_size = h; epsilon }
      in
      let c = Machine.run ~warmup machine trace in
      Format.printf "%8d %12d %12d %12.1f@." h c.Machine.ios c.Machine.tlb_misses
        (Machine.cost ~epsilon c))
    [ 1; 4; 16; 64; 256 ];
  (* The decoupled scheme on the same trace. *)
  let params = Params.derive ~p:ram ~w:64 () in
  let workload = mk_workload () in
  let warmup = Workload.generate workload 100_000 in
  let trace = Workload.generate workload 100_000 in
  let x = Policy.instantiate (module Lru) ~capacity:tlb_entries () in
  let y =
    Policy.instantiate (module Lru) ~capacity:(Params.usable_pages params) ()
  in
  let z = Simulation.create ~params ~x ~y () in
  let r = Simulation.run ~warmup z trace in
  Format.printf "%8s %12d %12d %12.1f   (h_max = %d, decoupled)@.@."
    "Z" r.Simulation.ios r.Simulation.tlb_fills
    (Simulation.cost ~epsilon r) params.Params.h_max

let () =
  let seed = ref 0 in
  let fresh () =
    incr seed;
    Prng.create ~seed:!seed ()
  in
  sweep ~name:"PageRank-style random walk (Fig 1b shape)" ~ram:2048
    ~mk_workload:(fun () -> Graph_walk.create ~virtual_pages:(1 lsl 14) (fresh ()));
  let csr = Kronecker.generate ~scale:13 ~edge_factor:16 (fresh ()) in
  let _, layout = Graph500.create_from csr (fresh ()) in
  let ram = layout.Graph500.total_pages * 9 / 10 in
  sweep ~name:"graph500 BFS (Fig 1c shape)" ~ram
    ~mk_workload:(fun () -> fst (Graph500.create_from csr (fresh ())))
