(* The balls-and-bins engine behind the allocation scheme: compare the
   maximum loads of one-choice, Greedy[2], and Iceberg[2] under a
   dynamic churn adversary (Theorem 2's setting).

   Run with:  dune exec examples/ballsbins_demo.exe *)

open Atp_ballsbins
open Atp_util

let () =
  let bins = 4096 in
  let lambda = 12 in
  let m = lambda * bins in
  let steps = 4 * m in
  Format.printf
    "n = %d bins, m = %d balls (λ = %d), churn adversary with %d \
     delete/insert rounds@.@."
    bins m lambda steps;
  Format.printf "%-14s %10s %12s %14s@." "strategy" "max load" "final max"
    "failed (B=λ+6)";
  let tau = Strategy.default_tau ~m ~bins in
  let strategies =
    [
      ((fun rng -> Strategy.one_choice rng ~bins), 1);
      ((fun rng -> Strategy.greedy rng ~d:2 ~bins), 1);
      ((fun rng -> Strategy.iceberg rng ~tau ~bins ()), 2);
    ]
  in
  List.iter
    (fun (mk, layers) ->
      let rng = Prng.create ~seed:7 () in
      let strategy = mk rng in
      let game = Game.create ~layers ~bins () in
      let adversary_rng = Prng.create ~seed:11 () in
      let ops = Adversary.churn adversary_rng ~m ~steps ~fresh:true in
      let r = Runner.run ~bin_capacity:(lambda + 6) ~game ~strategy ops in
      Format.printf "%-14s %10d %12d %14d@." strategy.Strategy.name
        r.Runner.max_load_ever r.Runner.max_load_final r.Runner.failed_balls)
    strategies;
  Format.printf
    "@.Iceberg[2] keeps the maximum load near λ + log log n, which is why \
     slot indices fit in Θ(log log log P) bits.@."
