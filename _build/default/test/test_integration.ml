(* End-to-end checks of the experiment pipelines at miniature scale:
   each is a shrunken version of a benchmark in bench/main.ml, with
   assertions on the qualitative shape the paper reports rather than
   absolute counts. *)

open Atp_core
open Atp_memsim
open Atp_paging
open Atp_workloads
open Atp_util

let check = Alcotest.check

let machine_config ~ram ~h =
  { Machine.default_config with ram_pages = ram; tlb_entries = 64; huge_size = h }

(* Run the Figure 1 sweep on a given workload; return (h, ios,
   tlb_misses) rows. *)
let sweep ~ram ~warmup ~measured workload_of =
  List.map
    (fun h ->
      let w = workload_of () in
      let warmup_trace = Workload.generate w warmup in
      let trace = Workload.generate w measured in
      let m = Machine.create (machine_config ~ram ~h) in
      let c = Machine.run ~warmup:warmup_trace m trace in
      (h, c.Machine.ios, c.Machine.tlb_misses))
    [ 1; 4; 16; 64 ]

let assert_figure1_shape name rows =
  let _, ios1, tlb1 = List.nth rows 0 in
  let _, ios_big, tlb_big = List.nth rows (List.length rows - 1) in
  check Alcotest.bool (name ^ ": IOs grow with h") true (ios_big > ios1);
  check Alcotest.bool (name ^ ": TLB misses shrink with h") true
    (tlb_big < tlb1)

let test_fig1a_shape () =
  let seed = ref 0 in
  let workload_of () =
    incr seed;
    let rng = Prng.create ~seed:!seed () in
    Bimodal.create ~hot_fraction:0.999 ~hot_pages:512 ~virtual_pages:(1 lsl 16) rng
  in
  assert_figure1_shape "bimodal" (sweep ~ram:4096 ~warmup:20_000 ~measured:20_000 workload_of)

let test_fig1b_shape () =
  let seed = ref 10 in
  let workload_of () =
    incr seed;
    let rng = Prng.create ~seed:!seed () in
    Graph_walk.create ~virtual_pages:(1 lsl 14) rng
  in
  assert_figure1_shape "graph walk" (sweep ~ram:2048 ~warmup:20_000 ~measured:20_000 workload_of)

let test_fig1c_shape () =
  (* Needs a graph whose working state exceeds both the TLB reach and
     RAM (the paper sizes RAM just below the trace footprint). *)
  let rng = Prng.create ~seed:42 () in
  let csr = Kronecker.generate ~scale:13 ~edge_factor:16 rng in
  let rows =
    List.map
      (fun h ->
        let w, layout = Graph500.create_from csr (Prng.create ~seed:7 ()) in
        let ram = layout.Graph500.total_pages * 9 / 10 in
        let warmup_trace = Workload.generate w 50_000 in
        let trace = Workload.generate w 50_000 in
        let m = Machine.create (machine_config ~ram ~h) in
        let c = Machine.run ~warmup:warmup_trace m trace in
        (h, c.Machine.ios, c.Machine.tlb_misses))
      [ 1; 4; 16; 64 ]
  in
  assert_figure1_shape "graph500" rows

(* The paper's central claim, in miniature: the decoupled scheme Z gets
   close to the TLB misses of a huge-page TLB (X with huge coverage)
   while paying the IOs of a no-huge-pages RAM policy (Y at base-page
   granularity) — strictly better than every fixed physical huge-page
   configuration on a bimodal workload with meaningful epsilon. *)
let test_decoupling_beats_physical_huge_pages () =
  let epsilon = 0.1 in
  let ram = 4096 in
  let virtual_pages = 1 lsl 16 in
  let mk_workload seed =
    let rng = Prng.create ~seed () in
    Bimodal.create ~hot_fraction:0.999 ~hot_pages:512 ~virtual_pages rng
  in
  (* Physical huge pages at several sizes. *)
  let physical h =
    let w = mk_workload 1 in
    let warmup = Workload.generate w 30_000 in
    let trace = Workload.generate w 30_000 in
    let m =
      Machine.create
        { Machine.default_config with ram_pages = ram; tlb_entries = 64; huge_size = h }
    in
    let c = Machine.run ~warmup m trace in
    Machine.cost ~epsilon c
  in
  (* The decoupled scheme. *)
  let params = Params.derive ~p:ram ~w:64 () in
  let w = mk_workload 1 in
  let warmup = Workload.generate w 30_000 in
  let trace = Workload.generate w 30_000 in
  let x = Policy.instantiate (module Lru) ~capacity:64 () in
  let y = Policy.instantiate (module Lru) ~capacity:(Params.usable_pages params) () in
  let z = Simulation.create ~params ~x ~y () in
  let r = Simulation.run ~warmup z trace in
  let z_cost = Simulation.cost ~epsilon r in
  List.iter
    (fun h ->
      let p_cost = physical h in
      check Alcotest.bool
        (Printf.sprintf "decoupled (%.1f) <= physical h=%d (%.1f)" z_cost h p_cost)
        true (z_cost <= p_cost *. 1.05))
    [ 1; 4; 16; 64; 256 ]

(* Shrinking the bucket size below the theorem's bound must produce
   failures; the theorem-sized buckets must not (failure injection). *)
let test_bucket_size_failure_threshold () =
  let p = 1 lsl 12 in
  let fill params =
    let a = Alloc.create params in
    let budget = Params.usable_pages params in
    for page = 0 to budget - 1 do
      ignore (Alloc.insert a page)
    done;
    Alloc.failures_total a
  in
  let good = Params.derive ~p ~w:64 () in
  check Alcotest.int "theorem-sized buckets: no failures" 0 (fill good);
  (* Sabotage: bucket size 2 with one-choice must overflow immediately. *)
  let bad =
    { good with Params.scheme = Params.One_choice; k = 1;
      bucket_size = 2; buckets = p / 2; tau = 2 }
  in
  check Alcotest.bool "tiny buckets fail" true (fill bad > 0)

(* Determinism: the whole pipeline is a function of the seed. *)
let test_pipeline_deterministic () =
  let run () =
    let rng = Prng.create ~seed:5 () in
    let w = Bimodal.create ~hot_pages:128 ~virtual_pages:4096 rng in
    let trace = Workload.generate w 5_000 in
    let m = Machine.create (machine_config ~ram:1024 ~h:4) in
    let c = Machine.run m trace in
    (c.Machine.ios, c.Machine.tlb_misses)
  in
  let a = run () and b = run () in
  check Alcotest.(pair int int) "identical runs" a b

let () =
  Alcotest.run "atp.integration"
    [
      ( "figure1",
        [
          Alcotest.test_case "1a bimodal shape" `Slow test_fig1a_shape;
          Alcotest.test_case "1b graph-walk shape" `Slow test_fig1b_shape;
          Alcotest.test_case "1c graph500 shape" `Slow test_fig1c_shape;
        ] );
      ( "decoupling",
        [
          Alcotest.test_case "beats physical huge pages" `Slow
            test_decoupling_beats_physical_huge_pages;
          Alcotest.test_case "bucket-size failure threshold" `Quick
            test_bucket_size_failure_threshold;
          Alcotest.test_case "deterministic" `Quick test_pipeline_deterministic;
        ] );
    ]
