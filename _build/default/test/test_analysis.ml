(* Tests for the competitive-analysis toolkit, the workload
   combinators, and the Machine/Lemma-1 cross-validation. *)

open Atp_paging
open Atp_workloads
open Atp_memsim
open Atp_util

let check = Alcotest.check

(* --- Competitive ------------------------------------------------------- *)

let test_lru_adversary_realizes_lower_bound () =
  (* On the cyclic adversary LRU faults every access; OPT faults about
     1/k of the time, so the ratio approaches k. *)
  let k = 8 in
  let trace = Competitive.lru_adversary ~capacity:k ~length:8_000 in
  let ratio = Competitive.ratio_vs_opt (module Lru) ~capacity:k trace in
  check Alcotest.bool
    (Printf.sprintf "ratio %.2f close to k=%d" ratio k)
    true
    (ratio > float_of_int k *. 0.8)

let test_sleator_tarjan_bound_values () =
  check (Alcotest.float 1e-9) "no augmentation" 8.0
    (Competitive.sleator_tarjan_bound ~k:8 ~h:8);
  check (Alcotest.float 1e-9) "double memory" 2.0
    (Competitive.sleator_tarjan_bound ~k:8 ~h:5);
  Alcotest.check_raises "h > k"
    (Invalid_argument "Competitive.sleator_tarjan_bound: need 1 <= h <= k")
    (fun () -> ignore (Competitive.sleator_tarjan_bound ~k:4 ~h:5))

let test_sleator_tarjan_holds_on_adversary () =
  let k = 10 in
  let trace = Competitive.lru_adversary ~capacity:k ~length:5_000 in
  List.iter
    (fun h ->
      check Alcotest.bool
        (Printf.sprintf "bound holds for h=%d" h)
        true
        (Competitive.check_sleator_tarjan ~k ~h trace))
    [ 1; 5; 10 ]

let prop_sleator_tarjan_on_random_traces =
  QCheck.Test.make ~count:60 ~name:"Sleator-Tarjan bound holds on random traces"
    QCheck.(
      triple (int_range 2 10) (int_range 1 10)
        (list_of_size (Gen.return 400) (int_bound 30)))
    (fun (k, h, pages) ->
      let h = min h k in
      Competitive.check_sleator_tarjan ~k ~h (Array.of_list pages))

let test_augmentation_curve_monotone () =
  let rng = Prng.create ~seed:1 () in
  let trace = Array.init 4_000 (fun _ -> Prng.int rng 40) in
  let curve =
    Competitive.augmentation_curve (module Lru) ~k:16 ~hs:[ 4; 8; 16 ] trace
  in
  (* More augmentation (smaller h) means a smaller measured ratio and a
     smaller bound. *)
  (match curve with
   | [ (_, r4, b4); (_, r8, b8); (_, r16, b16) ] ->
     check Alcotest.bool "measured monotone" true (r4 <= r8 && r8 <= r16);
     check Alcotest.bool "bounds monotone" true (b4 <= b8 && b8 <= b16);
     List.iter
       (fun (h, r, b) ->
         check Alcotest.bool
           (Printf.sprintf "measured %.3f within bound %.3f (h=%d)" r b h)
           true
           (r <= b +. 0.05))
       curve
   | _ -> Alcotest.fail "expected three rows")

(* --- Machine vs Lemma 1 -------------------------------------------------- *)

let test_machine_matches_lemma1_reduction () =
  (* The Section 6 simulator at huge-page size h must agree exactly
     with the classical paging reduction: TLB misses = misses of LRU(l)
     on r(p) and IOs = h * misses of LRU(P/h) on r(p). *)
  let rng = Prng.create ~seed:7 () in
  let trace = Array.init 30_000 (fun _ -> Prng.int rng 3_000) in
  List.iter
    (fun h ->
      let ram = 1 lsl 10 and tlb = 64 in
      let m =
        Machine.create
          { Machine.default_config with
            ram_pages = ram; tlb_entries = tlb; huge_size = h }
      in
      let c = Machine.run m trace in
      let huge_trace = Array.map (fun p -> p / h) trace in
      let tlb_ref =
        Sim.run (Policy.instantiate (module Lru) ~capacity:tlb ()) huge_trace
      in
      let ram_ref =
        Sim.run (Policy.instantiate (module Lru) ~capacity:(ram / h) ()) huge_trace
      in
      check Alcotest.int
        (Printf.sprintf "h=%d: TLB misses = LRU(l) on r(p)" h)
        tlb_ref.Sim.misses c.Machine.tlb_misses;
      check Alcotest.int
        (Printf.sprintf "h=%d: IOs = h * LRU(P/h) on r(p)" h)
        (h * ram_ref.Sim.misses)
        c.Machine.ios)
    [ 1; 4; 16 ]

(* --- Mix ------------------------------------------------------------------ *)

let test_mix_offset () =
  let w = Mix.offset ~by:1_000 (Simple.sequential ~virtual_pages:5 ()) in
  check Alcotest.(array int) "shifted" [| 1000; 1001; 1002 |] (Workload.generate w 3);
  check Alcotest.int "space grows" 1_005 w.Workload.virtual_pages

let test_mix_round_robin () =
  let a = Simple.sequential ~virtual_pages:10 () in
  let b = Mix.offset ~by:100 (Simple.sequential ~virtual_pages:10 ()) in
  let w = Mix.round_robin ~quantum:2 [| a; b |] in
  check Alcotest.(array int) "time sliced" [| 0; 1; 100; 101; 2; 3; 102 |]
    (Workload.generate w 7)

let test_mix_phases () =
  let a = Simple.sequential ~virtual_pages:10 () in
  let b = Mix.offset ~by:50 (Simple.sequential ~virtual_pages:10 ()) in
  let w = Mix.phases [ (3, a); (2, b) ] in
  check Alcotest.(array int) "phase cycle" [| 0; 1; 2; 50; 51; 3; 4; 5; 52 |]
    (Workload.generate w 9)

let test_mix_interleave_weights () =
  let rng = Prng.create ~seed:9 () in
  let hot = Simple.sequential ~virtual_pages:10 () in
  let cold = Mix.offset ~by:1_000 (Simple.sequential ~virtual_pages:10 ()) in
  let w = Mix.interleave ~weights:[| 0.9; 0.1 |] [| hot; cold |] rng in
  let trace = Workload.generate w 10_000 in
  let cold_count = Array.fold_left (fun acc p -> if p >= 1000 then acc + 1 else acc) 0 trace in
  let f = float_of_int cold_count /. 10_000.0 in
  check Alcotest.bool "10% cold" true (f > 0.08 && f < 0.12)

let test_mix_tenants_through_machine () =
  (* Two tenants with disjoint spaces through one machine: just a
     smoke test that the combinators compose with the simulator. *)
  let rng = Prng.create ~seed:11 () in
  let t1 = Simple.zipf ~virtual_pages:2_000 (Prng.split rng) in
  let t2 = Mix.offset ~by:10_000 (Simple.zipf ~virtual_pages:2_000 (Prng.split rng)) in
  let w = Mix.interleave [| t1; t2 |] rng in
  let trace = Workload.generate w 20_000 in
  let m =
    Machine.create
      { Machine.default_config with ram_pages = 1024; tlb_entries = 64; huge_size = 4 }
  in
  let c = Machine.run m trace in
  check Alcotest.int "all accesses served" 20_000 c.Machine.accesses;
  check Alcotest.bool "both tenants paged" true (c.Machine.ios > 0)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "atp.analysis"
    [
      ( "competitive",
        Alcotest.test_case "adversary realizes k" `Quick
          test_lru_adversary_realizes_lower_bound
        :: Alcotest.test_case "bound values" `Quick test_sleator_tarjan_bound_values
        :: Alcotest.test_case "bound on adversary" `Quick
             test_sleator_tarjan_holds_on_adversary
        :: Alcotest.test_case "augmentation curve" `Quick test_augmentation_curve_monotone
        :: qsuite [ prop_sleator_tarjan_on_random_traces ] );
      ( "machine-lemma1",
        [
          Alcotest.test_case "machine = paging reduction" `Quick
            test_machine_matches_lemma1_reduction;
        ] );
      ( "mix",
        [
          Alcotest.test_case "offset" `Quick test_mix_offset;
          Alcotest.test_case "round robin" `Quick test_mix_round_robin;
          Alcotest.test_case "phases" `Quick test_mix_phases;
          Alcotest.test_case "interleave weights" `Quick test_mix_interleave_weights;
          Alcotest.test_case "tenants through machine" `Quick
            test_mix_tenants_through_machine;
        ] );
    ]
