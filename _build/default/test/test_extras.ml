(* Tests for the extended analysis tools and policies: Mattson
   miss-ratio curves, SLRU, LIRS, and the coalesced TLB. *)

open Atp_paging
open Atp_util

let check = Alcotest.check

(* --- Mattson ----------------------------------------------------------- *)

let lru_misses capacity trace =
  (Sim.run (Policy.instantiate (module Lru) ~capacity ()) trace).Sim.misses

let test_mattson_matches_lru () =
  let rng = Prng.create ~seed:1 () in
  let trace = Array.init 5_000 (fun _ -> Prng.int rng 300) in
  let m = Mattson.of_trace trace in
  List.iter
    (fun c ->
      check Alcotest.int
        (Printf.sprintf "capacity %d" c)
        (lru_misses c trace) (Mattson.misses m c))
    [ 1; 2; 7; 32; 100; 299; 300; 1000 ]

let test_mattson_zipf_matches_lru () =
  let rng = Prng.create ~seed:2 () in
  let sample = Sampler.zipf ~s:1.1 ~n:2_000 in
  let trace = Array.init 8_000 (fun _ -> sample rng) in
  let m = Mattson.of_trace trace in
  List.iter
    (fun c ->
      check Alcotest.int
        (Printf.sprintf "capacity %d" c)
        (lru_misses c trace) (Mattson.misses m c))
    [ 1; 16; 128; 512 ]

let test_mattson_basics () =
  let m = Mattson.of_trace [| 1; 2; 1; 3; 1 |] in
  check Alcotest.int "accesses" 5 (Mattson.accesses m);
  check Alcotest.int "cold" 3 (Mattson.cold_misses m);
  check Alcotest.int "distinct" 3 (Mattson.distinct_pages m);
  (* Distances: 1 after 2 -> d=1; 1 after 3 -> d=1.  With c=1 both
     re-accesses miss; with c=2 both hit. *)
  check Alcotest.int "c=1" 5 (Mattson.misses m 1);
  check Alcotest.int "c=2" 3 (Mattson.misses m 2)

let test_mattson_monotone () =
  let rng = Prng.create ~seed:3 () in
  let trace = Array.init 3_000 (fun _ -> Prng.int rng 200) in
  let m = Mattson.of_trace trace in
  let prev = ref max_int in
  List.iter
    (fun c ->
      let misses = Mattson.misses m c in
      check Alcotest.bool "non-increasing" true (misses <= !prev);
      prev := misses)
    [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]

let test_mattson_working_set () =
  (* A loop over 50 pages: capacity 50 captures every re-access. *)
  let trace = Array.init 5_000 (fun i -> i mod 50) in
  let m = Mattson.of_trace trace in
  check Alcotest.int "ws(1.0) = loop size" 50
    (Mattson.working_set_size m ~fraction:1.0);
  check Alcotest.int "cold = loop size" 50 (Mattson.cold_misses m)

let test_mattson_rejects_bad_input () =
  let m = Mattson.of_trace [| 1 |] in
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Mattson.misses: capacity must be at least 1") (fun () ->
      ignore (Mattson.misses m 0))

(* --- SLRU --------------------------------------------------------------- *)

let test_slru_scan_resistance () =
  (* A hot set cycled through the protected segment survives a long
     one-shot scan that floods probation. *)
  let capacity = 100 in
  let t = Slru.create ~capacity () in
  (* Establish the hot set with two rounds (second hit promotes). *)
  for _ = 1 to 2 do
    for v = 0 to 49 do ignore (Slru.access t v) done
  done;
  (* One-shot scan of 1000 cold pages. *)
  for v = 1_000 to 1_999 do ignore (Slru.access t v) done;
  (* The hot set must still be largely resident. *)
  let surviving = List.length (List.filter (Slru.mem t) (List.init 50 Fun.id)) in
  check Alcotest.bool
    (Printf.sprintf "hot pages survive the scan (%d of 50)" surviving)
    true (surviving >= 40)

let test_slru_beats_lru_on_scan_mix () =
  let rng = Prng.create ~seed:4 () in
  let trace =
    Array.init 30_000 (fun i ->
        if i mod 3 = 0 then 10_000 + (i / 3 mod 5_000)  (* rolling scan *)
        else Prng.int rng 80 (* hot set *))
  in
  let misses (module P : Policy.S) =
    (Sim.run (Policy.instantiate (module P) ~capacity:100 ()) trace).Sim.misses
  in
  check Alcotest.bool "slru <= lru on scan mix" true
    (misses (module Slru) <= misses (module Lru))

(* --- LIRS --------------------------------------------------------------- *)

let test_lirs_loop_beats_lru () =
  (* The classic LIRS showcase: a loop one page larger than the cache.
     LRU misses every access; LIRS settles into hitting the LIR set. *)
  let capacity = 100 in
  let trace = Array.init 20_000 (fun i -> i mod (capacity + 1)) in
  let lru = (Sim.run (Policy.instantiate (module Lru) ~capacity ()) trace).Sim.misses in
  let lirs = (Sim.run (Policy.instantiate (module Lirs) ~capacity ()) trace).Sim.misses in
  check Alcotest.int "LRU thrashes completely" 20_000 lru;
  check Alcotest.bool
    (Printf.sprintf "LIRS (%d) far below LRU (%d)" lirs lru)
    true
    (lirs < lru / 2)

let test_lirs_stack_bounded () =
  (* A huge one-shot scan must not blow up the ghost stack. *)
  let t = Lirs.create ~capacity:50 () in
  for v = 0 to 99_999 do ignore (Lirs.access t v) done;
  check Alcotest.bool "size bounded" true (Lirs.size t <= 50);
  (* Resident list agrees with size. *)
  check Alcotest.int "resident length" (Lirs.size t)
    (List.length (Lirs.resident t))

let test_lirs_promotion () =
  let t = Lirs.create ~capacity:10 () in
  (* Fill the LIR set. *)
  for v = 0 to 8 do ignore (Lirs.access t v) done;
  (* Page 100 becomes resident HIR, then a re-access within the stack
     promotes it. *)
  ignore (Lirs.access t 100);
  ignore (Lirs.access t 100);
  check Alcotest.bool "still resident after promotion" true (Lirs.mem t 100)

(* --- Coalesced TLB ------------------------------------------------------- *)

let test_coalesced_run_hit () =
  let tlb = Atp_tlb.Coalesced.create ~entries:16 () in
  (* A page table with 8 contiguous translations. *)
  let pt v = if v >= 0 && v < 8 then Some (100 + v) else None in
  check Alcotest.bool "cold miss" true (Atp_tlb.Coalesced.lookup tlb 3 = None);
  let covered = Atp_tlb.Coalesced.fill tlb ~lookup_pt:pt ~vpage:3 ~frame:103 in
  check Alcotest.int "whole block coalesced" 8 covered;
  (* Every page of the block now hits, with the right frame. *)
  for v = 0 to 7 do
    check Alcotest.(option int)
      (Printf.sprintf "page %d" v)
      (Some (100 + v))
      (Atp_tlb.Coalesced.lookup tlb v)
  done

let test_coalesced_fragmented_no_reach () =
  let tlb = Atp_tlb.Coalesced.create ~entries:16 () in
  (* Fragmented mapping: frames are scattered, so runs stay length 1. *)
  let pt v = if v >= 0 && v < 8 then Some (1000 - (v * 17)) else None in
  let covered =
    Atp_tlb.Coalesced.fill tlb ~lookup_pt:pt ~vpage:3 ~frame:(1000 - 51)
  in
  check Alcotest.int "no coalescing possible" 1 covered;
  check Alcotest.bool "neighbor misses" true (Atp_tlb.Coalesced.lookup tlb 4 = None)

let test_coalesced_partial_run () =
  let tlb = Atp_tlb.Coalesced.create ~entries:16 () in
  (* Pages 2..5 contiguous; 0,1,6,7 absent. *)
  let pt v = if v >= 2 && v <= 5 then Some (200 + v) else None in
  let covered = Atp_tlb.Coalesced.fill tlb ~lookup_pt:pt ~vpage:4 ~frame:204 in
  check Alcotest.int "partial run" 4 covered;
  check Alcotest.bool "outside the run misses" true
    (Atp_tlb.Coalesced.lookup tlb 1 = None);
  check Alcotest.(option int) "inside hits" (Some 202) (Atp_tlb.Coalesced.lookup tlb 2)

let test_coalesced_does_not_cross_blocks () =
  let tlb = Atp_tlb.Coalesced.create ~max_run:4 ~entries:16 () in
  (* Contiguity spans blocks, but entries are per aligned block. *)
  let pt v = Some (500 + v) in
  let covered = Atp_tlb.Coalesced.fill tlb ~lookup_pt:pt ~vpage:2 ~frame:502 in
  check Alcotest.int "capped at the aligned block" 4 covered;
  check Alcotest.bool "next block not covered" true
    (Atp_tlb.Coalesced.lookup tlb 4 = None)

let test_coalesced_invalidate () =
  let tlb = Atp_tlb.Coalesced.create ~entries:16 () in
  let pt v = Some v in
  ignore (Atp_tlb.Coalesced.fill tlb ~lookup_pt:pt ~vpage:0 ~frame:0);
  check Alcotest.bool "shootdown" true (Atp_tlb.Coalesced.invalidate_page tlb 5);
  check Alcotest.bool "whole run gone" true (Atp_tlb.Coalesced.lookup tlb 0 = None)

let () =
  Alcotest.run "atp.extras"
    [
      ( "mattson",
        [
          Alcotest.test_case "matches LRU (uniform)" `Quick test_mattson_matches_lru;
          Alcotest.test_case "matches LRU (zipf)" `Quick test_mattson_zipf_matches_lru;
          Alcotest.test_case "basics" `Quick test_mattson_basics;
          Alcotest.test_case "monotone" `Quick test_mattson_monotone;
          Alcotest.test_case "working set" `Quick test_mattson_working_set;
          Alcotest.test_case "bad input" `Quick test_mattson_rejects_bad_input;
        ] );
      ( "slru",
        [
          Alcotest.test_case "scan resistance" `Quick test_slru_scan_resistance;
          Alcotest.test_case "beats LRU on scan mix" `Quick test_slru_beats_lru_on_scan_mix;
        ] );
      ( "lirs",
        [
          Alcotest.test_case "loop beats LRU" `Quick test_lirs_loop_beats_lru;
          Alcotest.test_case "stack bounded" `Quick test_lirs_stack_bounded;
          Alcotest.test_case "promotion" `Quick test_lirs_promotion;
        ] );
      ( "coalesced",
        [
          Alcotest.test_case "run hit" `Quick test_coalesced_run_hit;
          Alcotest.test_case "fragmented" `Quick test_coalesced_fragmented_no_reach;
          Alcotest.test_case "partial run" `Quick test_coalesced_partial_run;
          Alcotest.test_case "block capped" `Quick test_coalesced_does_not_cross_blocks;
          Alcotest.test_case "invalidate" `Quick test_coalesced_invalidate;
        ] );
    ]
