open Atp_util

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:7 () and b = Prng.create ~seed:7 () in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 () and b = Prng.create ~seed:2 () in
  let differs = ref false in
  for _ = 1 to 16 do
    if not (Int64.equal (Prng.next_int64 a) (Prng.next_int64 b)) then
      differs := true
  done;
  check Alcotest.bool "streams differ" true !differs

let test_prng_int_bounds () =
  let rng = Prng.create ~seed:3 () in
  for _ = 1 to 10_000 do
    let v = Prng.int rng 17 in
    check Alcotest.bool "in range" true (v >= 0 && v < 17)
  done

let test_prng_int_rejects_nonpositive () =
  let rng = Prng.create () in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_prng_int_covers_support () =
  let rng = Prng.create ~seed:11 () in
  let seen = Array.make 7 false in
  for _ = 1 to 2_000 do
    seen.(Prng.int rng 7) <- true
  done;
  Array.iteri (fun i s -> check Alcotest.bool (Printf.sprintf "hit %d" i) true s) seen

let test_prng_float_range () =
  let rng = Prng.create ~seed:5 () in
  for _ = 1 to 10_000 do
    let f = Prng.float rng in
    check Alcotest.bool "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_prng_uniformity_rough () =
  let rng = Prng.create ~seed:13 () in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Prng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      let expected = n / 10 in
      check Alcotest.bool "within 10% of uniform" true
        (abs (c - expected) < expected / 10))
    buckets

let test_prng_shuffle_permutes () =
  let rng = Prng.create ~seed:17 () in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "same multiset" (Array.init 50 (fun i -> i)) sorted

let test_prng_split_independent () =
  let rng = Prng.create ~seed:19 () in
  let child = Prng.split rng in
  (* Drawing from the child must not affect the parent's stream. *)
  let parent_probe = Prng.copy rng in
  for _ = 1 to 10 do ignore (Prng.next_int64 child) done;
  check Alcotest.int64 "parent unaffected" (Prng.next_int64 parent_probe)
    (Prng.next_int64 rng)

(* ------------------------------------------------------------------ *)
(* Hashing                                                             *)
(* ------------------------------------------------------------------ *)

let test_hash_in_range () =
  for seed = 0 to 20 do
    for x = 0 to 500 do
      let h = Hashing.hash_in ~seed 37 x in
      check Alcotest.bool "bucket in range" true (h >= 0 && h < 37)
    done
  done

let test_hash_deterministic () =
  check Alcotest.int "stable" (Hashing.hash ~seed:5 42) (Hashing.hash ~seed:5 42)

let test_hash_seed_matters () =
  let same = ref 0 in
  for x = 0 to 99 do
    if Hashing.hash ~seed:1 x = Hashing.hash ~seed:2 x then incr same
  done;
  check Alcotest.bool "different seeds disagree" true (!same < 5)

let test_hash_family () =
  let rng = Prng.create ~seed:23 () in
  let fam = Hashing.family rng ~k:3 ~range:100 in
  check Alcotest.int "k" 3 (Hashing.k fam);
  check Alcotest.int "range" 100 (Hashing.range fam);
  for i = 0 to 2 do
    for x = 0 to 200 do
      let v = Hashing.apply fam i x in
      check Alcotest.bool "in range" true (v >= 0 && v < 100)
    done
  done

let test_hash_in_spreads () =
  (* Consecutive integers should land all over the range. *)
  let n = 64 in
  let seen = Array.make n false in
  for x = 0 to 4_000 do
    seen.(Hashing.hash_in ~seed:9 n x) <- true
  done;
  Array.iteri (fun i s -> check Alcotest.bool (Printf.sprintf "bucket %d hit" i) true s) seen

(* ------------------------------------------------------------------ *)
(* Bitvec                                                              *)
(* ------------------------------------------------------------------ *)

let test_bitvec_basics () =
  let v = Bitvec.create 100 in
  check Alcotest.int "length" 100 (Bitvec.length v);
  check Alcotest.bool "initially clear" false (Bitvec.get v 50);
  Bitvec.set v 50;
  check Alcotest.bool "set" true (Bitvec.get v 50);
  check Alcotest.int "popcount" 1 (Bitvec.pop_count v);
  Bitvec.clear v 50;
  check Alcotest.bool "cleared" false (Bitvec.get v 50);
  check Alcotest.int "popcount zero" 0 (Bitvec.pop_count v)

let test_bitvec_bounds () =
  let v = Bitvec.create 8 in
  Alcotest.check_raises "oob get" (Invalid_argument "Bitvec: index out of bounds")
    (fun () -> ignore (Bitvec.get v 8))

let test_bitvec_first_clear () =
  let v = Bitvec.create 5 in
  for i = 0 to 4 do Bitvec.set v i done;
  check Alcotest.(option int) "full" None (Bitvec.first_clear v);
  Bitvec.clear v 3;
  check Alcotest.(option int) "index 3" (Some 3) (Bitvec.first_clear v)

let test_bitvec_fill () =
  let v = Bitvec.create 13 in
  Bitvec.fill v true;
  check Alcotest.int "all set" 13 (Bitvec.pop_count v);
  Bitvec.fill v false;
  check Alcotest.int "all clear" 0 (Bitvec.pop_count v)

let test_bitvec_iter_set () =
  let v = Bitvec.create 20 in
  List.iter (Bitvec.set v) [ 1; 7; 19 ];
  let acc = ref [] in
  Bitvec.iter_set (fun i -> acc := i :: !acc) v;
  check Alcotest.(list int) "indices in order" [ 1; 7; 19 ] (List.rev !acc)

let prop_bitvec_model =
  QCheck.Test.make ~name:"bitvec matches bool-array model" ~count:200
    QCheck.(pair (int_bound 200) (list (pair (int_bound 199) bool)))
    (fun (len, ops) ->
      let len = len + 1 in
      let v = Bitvec.create len in
      let model = Array.make len false in
      List.iter
        (fun (i, b) ->
          let i = i mod len in
          Bitvec.assign v i b;
          model.(i) <- b)
        ops;
      let ok = ref true in
      Array.iteri (fun i b -> if Bitvec.get v i <> b then ok := false) model;
      !ok && Bitvec.pop_count v = Array.fold_left (fun a b -> if b then a + 1 else a) 0 model)

(* ------------------------------------------------------------------ *)
(* Packed_array                                                        *)
(* ------------------------------------------------------------------ *)

let test_packed_array_basics () =
  let a = Packed_array.create ~width:6 ~length:10 in
  check Alcotest.int "max value" 63 (Packed_array.max_value a);
  check Alcotest.int "total bits" 60 (Packed_array.total_bits a);
  Packed_array.set a 0 63;
  Packed_array.set a 9 42;
  check Alcotest.int "first" 63 (Packed_array.get a 0);
  check Alcotest.int "last" 42 (Packed_array.get a 9);
  check Alcotest.int "untouched" 0 (Packed_array.get a 5)

let test_packed_array_rejects_overflow () =
  let a = Packed_array.create ~width:3 ~length:4 in
  Alcotest.check_raises "too big"
    (Invalid_argument "Packed_array.set: value out of range") (fun () ->
      Packed_array.set a 0 8)

let test_packed_array_bytes_roundtrip () =
  let a = Packed_array.create ~width:11 ~length:7 in
  for i = 0 to 6 do Packed_array.set a i (i * 37 mod 2048) done;
  let b = Packed_array.of_bytes ~width:11 ~length:7 (Packed_array.blit_to_bytes a) in
  for i = 0 to 6 do
    check Alcotest.int "roundtrip" (Packed_array.get a i) (Packed_array.get b i)
  done

let prop_packed_array_model =
  QCheck.Test.make ~name:"packed array matches int-array model" ~count:300
    QCheck.(
      triple (int_range 1 20) (int_range 1 50)
        (list (pair small_nat small_nat)))
    (fun (width, length, ops) ->
      let a = Packed_array.create ~width ~length in
      let model = Array.make length 0 in
      let maxv = (1 lsl width) - 1 in
      List.iter
        (fun (i, v) ->
          let i = i mod length and v = v land maxv in
          Packed_array.set a i v;
          model.(i) <- v)
        ops;
      let ok = ref true in
      Array.iteri (fun i v -> if Packed_array.get a i <> v then ok := false) model;
      !ok)

(* ------------------------------------------------------------------ *)
(* Sampler                                                             *)
(* ------------------------------------------------------------------ *)

let test_sampler_uniform_support () =
  let rng = Prng.create ~seed:31 () in
  let s = Sampler.uniform ~n:5 in
  for _ = 1 to 1_000 do
    let v = s rng in
    check Alcotest.bool "in support" true (v >= 0 && v < 5)
  done

let test_sampler_pareto_bounds_and_skew () =
  let rng = Prng.create ~seed:37 () in
  let n = 1_000 in
  let s = Sampler.bounded_pareto ~alpha:1.0 ~n in
  let low = ref 0 and total = 20_000 in
  for _ = 1 to total do
    let v = s rng in
    check Alcotest.bool "in support" true (v >= 0 && v < n);
    if v < 10 then incr low
  done;
  (* With alpha = 1 the first 10 ranks carry most of the mass. *)
  check Alcotest.bool "skew towards low ranks" true (!low > total / 2)

let test_sampler_zipf_bounds_and_skew () =
  let rng = Prng.create ~seed:41 () in
  let n = 10_000 in
  let s = Sampler.zipf ~s:1.2 ~n in
  let first = ref 0 and total = 20_000 in
  for _ = 1 to total do
    let v = s rng in
    check Alcotest.bool "in support" true (v >= 0 && v < n);
    if v = 0 then incr first
  done;
  (* P(0) for s=1.2, n=10000 is about 0.18. *)
  check Alcotest.bool "rank 0 frequent" true
    (!first > total / 10 && !first < total / 3)

let test_sampler_zipf_singleton () =
  let rng = Prng.create () in
  let s = Sampler.zipf ~s:1.0 ~n:1 in
  check Alcotest.int "only value" 0 (s rng)

let test_sampler_discrete_exact () =
  let rng = Prng.create ~seed:43 () in
  let d = Sampler.discrete [| 1.0; 0.0; 3.0 |] in
  let counts = Array.make 3 0 in
  let total = 40_000 in
  for _ = 1 to total do
    let v = Sampler.sample_discrete d rng in
    counts.(v) <- counts.(v) + 1
  done;
  check Alcotest.int "zero-weight branch never drawn" 0 counts.(1);
  let f0 = float_of_int counts.(0) /. float_of_int total in
  check Alcotest.bool "weight-1 branch ~25%" true (f0 > 0.22 && f0 < 0.28)

let test_sampler_discrete_rejects_bad () =
  Alcotest.check_raises "all zero"
    (Invalid_argument "Sampler.discrete: all weights zero") (fun () ->
      ignore (Sampler.discrete [| 0.0; 0.0 |]))

let test_sampler_mixture () =
  let rng = Prng.create ~seed:47 () in
  let hot = Sampler.uniform ~n:10 in
  let cold _ = 1_000 in
  let m = Sampler.mixture [| (0.9, hot); (0.1, cold) |] in
  let cold_hits = ref 0 and total = 20_000 in
  for _ = 1 to total do
    if m rng = 1_000 then incr cold_hits
  done;
  let f = float_of_int !cold_hits /. float_of_int total in
  check Alcotest.bool "cold branch ~10%" true (f > 0.08 && f < 0.12)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_summary () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check Alcotest.int "count" 8 (Stats.Summary.count s);
  check (Alcotest.float 1e-9) "mean" 5.0 (Stats.Summary.mean s);
  check (Alcotest.float 1e-9) "variance" (32.0 /. 7.0) (Stats.Summary.variance s);
  check (Alcotest.float 1e-9) "min" 2.0 (Stats.Summary.min s);
  check (Alcotest.float 1e-9) "max" 9.0 (Stats.Summary.max s)

let test_summary_empty () =
  let s = Stats.Summary.create () in
  check (Alcotest.float 0.0) "mean of empty" 0.0 (Stats.Summary.mean s);
  check (Alcotest.float 0.0) "variance of empty" 0.0 (Stats.Summary.variance s)

let test_log_histogram () =
  let h = Stats.Log_histogram.create () in
  List.iter (Stats.Log_histogram.add h) [ 0; 1; 2; 3; 4; 1024 ];
  check Alcotest.int "count" 6 (Stats.Log_histogram.count h);
  check Alcotest.int "bucket 0 (values 0..1)" 2 (Stats.Log_histogram.bucket h 0);
  check Alcotest.int "bucket 1 (2..3)" 2 (Stats.Log_histogram.bucket h 1);
  check Alcotest.int "bucket 2 (4..7)" 1 (Stats.Log_histogram.bucket h 2);
  check Alcotest.int "bucket 10" 1 (Stats.Log_histogram.bucket h 10)

let test_log_histogram_percentile () =
  let h = Stats.Log_histogram.create () in
  for _ = 1 to 99 do Stats.Log_histogram.add h 1 done;
  Stats.Log_histogram.add h 1000;
  check Alcotest.int "p50 small" 1 (Stats.Log_histogram.percentile h 0.5);
  check Alcotest.bool "p100 covers big" true
    (Stats.Log_histogram.percentile h 1.0 >= 1000)

let test_pp_count () =
  let s = Format.asprintf "%a" Stats.pp_count 1234567 in
  check Alcotest.string "grouped" "1_234_567" s;
  let s = Format.asprintf "%a" Stats.pp_count (-42) in
  check Alcotest.string "negative" "-42" s

(* ------------------------------------------------------------------ *)
(* Lru_list                                                            *)
(* ------------------------------------------------------------------ *)

let test_lru_list_order () =
  let l = Lru_list.create 5 in
  List.iter (Lru_list.push_front l) [ 0; 1; 2 ];
  check Alcotest.(list int) "front to back" [ 2; 1; 0 ] (Lru_list.to_list l);
  Lru_list.move_to_front l 0;
  check Alcotest.(list int) "after touch" [ 0; 2; 1 ] (Lru_list.to_list l);
  check Alcotest.(option int) "back is LRU" (Some 1) (Lru_list.back l);
  check Alcotest.(option int) "pop back" (Some 1) (Lru_list.pop_back l);
  check Alcotest.int "length" 2 (Lru_list.length l)

let test_lru_list_errors () =
  let l = Lru_list.create 3 in
  Lru_list.push_front l 1;
  Alcotest.check_raises "double link"
    (Invalid_argument "Lru_list.push_front: already linked") (fun () ->
      Lru_list.push_front l 1);
  Alcotest.check_raises "remove unlinked"
    (Invalid_argument "Lru_list.remove: not linked") (fun () ->
      Lru_list.remove l 2)

let test_lru_list_push_back () =
  let l = Lru_list.create 4 in
  Lru_list.push_back l 0;
  Lru_list.push_back l 1;
  check Alcotest.(list int) "fifo order" [ 0; 1 ] (Lru_list.to_list l);
  Lru_list.move_to_back l 0;
  check Alcotest.(list int) "after move" [ 1; 0 ] (Lru_list.to_list l)

(* ------------------------------------------------------------------ *)
(* Int_table                                                           *)
(* ------------------------------------------------------------------ *)

let test_int_table_basics () =
  let t = Int_table.create () in
  Int_table.set t 5 50;
  Int_table.set t 6 60;
  check Alcotest.(option int) "find" (Some 50) (Int_table.find t 5);
  check Alcotest.int "length" 2 (Int_table.length t);
  Int_table.set t 5 55;
  check Alcotest.(option int) "overwrite" (Some 55) (Int_table.find t 5);
  check Alcotest.int "length stable" 2 (Int_table.length t);
  check Alcotest.bool "remove" true (Int_table.remove t 5);
  check Alcotest.bool "remove again" false (Int_table.remove t 5);
  check Alcotest.(option int) "gone" None (Int_table.find t 5)

let test_int_table_add_if_absent () =
  let t = Int_table.create () in
  check Alcotest.bool "inserted" true (Int_table.add_if_absent t 1 10);
  check Alcotest.bool "kept" false (Int_table.add_if_absent t 1 20);
  check Alcotest.(option int) "original value" (Some 10) (Int_table.find t 1)

let test_int_table_rejects_negative () =
  let t = Int_table.create () in
  Alcotest.check_raises "negative key"
    (Invalid_argument "Int_table: keys must be non-negative") (fun () ->
      Int_table.set t (-1) 0)

let test_int_table_growth () =
  let t = Int_table.create ~initial_capacity:4 () in
  for i = 0 to 9_999 do Int_table.set t i (i * 2) done;
  check Alcotest.int "length" 10_000 (Int_table.length t);
  for i = 0 to 9_999 do
    check Alcotest.(option int) "value survives growth" (Some (i * 2))
      (Int_table.find t i)
  done

let prop_int_table_model =
  QCheck.Test.make ~name:"int table matches Hashtbl model" ~count:200
    QCheck.(list (pair (int_bound 50) (option small_nat)))
    (fun ops ->
      let t = Int_table.create ~initial_capacity:4 () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, op) ->
          match op with
          | Some v ->
            Int_table.set t k v;
            Hashtbl.replace model k v
          | None ->
            let a = Int_table.remove t k in
            let b = Hashtbl.mem model k in
            Hashtbl.remove model k;
            if a <> b then failwith "remove result mismatch")
        ops;
      Int_table.length t = Hashtbl.length model
      && Hashtbl.fold
           (fun k v acc -> acc && Int_table.find t k = Some v)
           model true)

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let test_heap_sorts () =
  let h = Heap.create ~cmp:compare () in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2 ];
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some v ->
      out := v :: !out;
      drain ()
  in
  drain ();
  check Alcotest.(list int) "ascending" [ 1; 2; 3; 5; 8; 9 ] (List.rev !out)

let test_heap_peek () =
  let h = Heap.create ~cmp:compare () in
  check Alcotest.(option int) "empty peek" None (Heap.peek h);
  Heap.push h 4;
  Heap.push h 2;
  check Alcotest.(option int) "min on top" (Some 2) (Heap.peek h);
  check Alcotest.int "length" 2 (Heap.length h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare () in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some v -> drain (v :: acc)
      in
      drain [] = List.sort compare xs)

(* ------------------------------------------------------------------ *)
(* Page_list                                                           *)
(* ------------------------------------------------------------------ *)

let test_page_list_order () =
  let l = Page_list.create () in
  Page_list.push_front l 10;
  Page_list.push_front l 20;
  Page_list.push_back l 5;
  check Alcotest.(list int) "order" [ 20; 10; 5 ] (Page_list.to_list l);
  Page_list.move_to_front l 5;
  check Alcotest.(list int) "after move" [ 5; 20; 10 ] (Page_list.to_list l);
  check Alcotest.bool "remove" true (Page_list.remove l 20);
  check Alcotest.(list int) "after remove" [ 5; 10 ] (Page_list.to_list l);
  check Alcotest.(option int) "pop front" (Some 5) (Page_list.pop_front l);
  check Alcotest.(option int) "pop back" (Some 10) (Page_list.pop_back l);
  check Alcotest.bool "empty" true (Page_list.is_empty l)

let test_page_list_duplicate () =
  let l = Page_list.create () in
  Page_list.push_front l 1;
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Page_list.push_front: duplicate page") (fun () ->
      Page_list.push_front l 1)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "atp.util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int rejects 0" `Quick test_prng_int_rejects_nonpositive;
          Alcotest.test_case "int covers support" `Quick test_prng_int_covers_support;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "rough uniformity" `Quick test_prng_uniformity_rough;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
        ] );
      ( "hashing",
        [
          Alcotest.test_case "range" `Quick test_hash_in_range;
          Alcotest.test_case "deterministic" `Quick test_hash_deterministic;
          Alcotest.test_case "seed matters" `Quick test_hash_seed_matters;
          Alcotest.test_case "family" `Quick test_hash_family;
          Alcotest.test_case "spreads" `Quick test_hash_in_spreads;
        ] );
      ( "bitvec",
        Alcotest.test_case "basics" `Quick test_bitvec_basics
        :: Alcotest.test_case "bounds" `Quick test_bitvec_bounds
        :: Alcotest.test_case "first_clear" `Quick test_bitvec_first_clear
        :: Alcotest.test_case "fill" `Quick test_bitvec_fill
        :: Alcotest.test_case "iter_set" `Quick test_bitvec_iter_set
        :: qsuite [ prop_bitvec_model ] );
      ( "packed_array",
        Alcotest.test_case "basics" `Quick test_packed_array_basics
        :: Alcotest.test_case "overflow" `Quick test_packed_array_rejects_overflow
        :: Alcotest.test_case "bytes roundtrip" `Quick test_packed_array_bytes_roundtrip
        :: qsuite [ prop_packed_array_model ] );
      ( "sampler",
        [
          Alcotest.test_case "uniform support" `Quick test_sampler_uniform_support;
          Alcotest.test_case "pareto" `Quick test_sampler_pareto_bounds_and_skew;
          Alcotest.test_case "zipf" `Quick test_sampler_zipf_bounds_and_skew;
          Alcotest.test_case "zipf singleton" `Quick test_sampler_zipf_singleton;
          Alcotest.test_case "discrete" `Quick test_sampler_discrete_exact;
          Alcotest.test_case "discrete bad input" `Quick test_sampler_discrete_rejects_bad;
          Alcotest.test_case "mixture" `Quick test_sampler_mixture;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_summary;
          Alcotest.test_case "summary empty" `Quick test_summary_empty;
          Alcotest.test_case "log histogram" `Quick test_log_histogram;
          Alcotest.test_case "percentile" `Quick test_log_histogram_percentile;
          Alcotest.test_case "pp_count" `Quick test_pp_count;
        ] );
      ( "lru_list",
        [
          Alcotest.test_case "order" `Quick test_lru_list_order;
          Alcotest.test_case "errors" `Quick test_lru_list_errors;
          Alcotest.test_case "push back" `Quick test_lru_list_push_back;
        ] );
      ( "int_table",
        Alcotest.test_case "basics" `Quick test_int_table_basics
        :: Alcotest.test_case "add_if_absent" `Quick test_int_table_add_if_absent
        :: Alcotest.test_case "negative keys" `Quick test_int_table_rejects_negative
        :: Alcotest.test_case "growth" `Quick test_int_table_growth
        :: qsuite [ prop_int_table_model ] );
      ( "heap",
        Alcotest.test_case "sorts" `Quick test_heap_sorts
        :: Alcotest.test_case "peek" `Quick test_heap_peek
        :: qsuite [ prop_heap_sorts ] );
      ( "page_list",
        [
          Alcotest.test_case "order" `Quick test_page_list_order;
          Alcotest.test_case "duplicate" `Quick test_page_list_duplicate;
        ] );
    ]
