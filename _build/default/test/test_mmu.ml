(* Tests for the MMU substrate: the radix page table, the page-table
   walker with its page-walk cache, and nested (two-dimensional)
   translation. *)

open Atp_memsim

let check = Alcotest.check

(* --- Page_table ------------------------------------------------------ *)

let test_pt_map_lookup () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpage:42 ~frame:7 ();
  (match Page_table.lookup pt 42 with
   | Some m ->
     check Alcotest.int "frame" 7 m.Page_table.frame;
     check Alcotest.int "level" 0 m.Page_table.level;
     check Alcotest.bool "writable default" true m.Page_table.flags.Page_table.writable
   | None -> Alcotest.fail "expected mapping");
  check Alcotest.bool "absent page" true (Page_table.lookup pt 43 = None)

let test_pt_unmap () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpage:100 ~frame:1 ();
  check Alcotest.bool "unmap present" true (Page_table.unmap pt ~vpage:100);
  check Alcotest.bool "unmap absent" false (Page_table.unmap pt ~vpage:100);
  check Alcotest.int "no leaves" 0 (Page_table.mapped_count pt);
  (* Interior nodes are reclaimed. *)
  check Alcotest.int "only the root remains" 1 (Page_table.node_count pt)

let test_pt_duplicate_rejected () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpage:5 ~frame:1 ();
  Alcotest.check_raises "remap" (Invalid_argument "Page_table.map: range already mapped")
    (fun () -> Page_table.map pt ~vpage:5 ~frame:2 ())

let test_pt_huge_leaf () =
  let pt = Page_table.create () in
  (* A level-1 leaf covers 512 pages; map at vpage 512 (aligned). *)
  Page_table.map pt ~vpage:512 ~frame:1024 ~level:1 ();
  (match Page_table.lookup pt 600 with
   | Some m ->
     check Alcotest.int "covered by huge leaf" 1024 m.Page_table.frame;
     check Alcotest.int "level 1" 1 m.Page_table.level
   | None -> Alcotest.fail "huge leaf must cover");
  (* Walk terminates earlier for the huge leaf than for a base page. *)
  Page_table.map pt ~vpage:5 ~frame:1 ();
  let _, huge_visits = Page_table.walk pt 600 in
  let _, base_visits = Page_table.walk pt 5 in
  check Alcotest.int "huge walk is one level shorter" (base_visits - 1)
    huge_visits;
  check Alcotest.int "base walk visits all levels" Page_table.levels base_visits

let test_pt_huge_alignment () =
  let pt = Page_table.create () in
  Alcotest.check_raises "misaligned vpage"
    (Invalid_argument "Page_table.map: virtual page not aligned to its level")
    (fun () -> Page_table.map pt ~vpage:100 ~frame:0 ~level:1 ());
  Alcotest.check_raises "misaligned frame"
    (Invalid_argument "Page_table.map: frame not aligned to its level")
    (fun () -> Page_table.map pt ~vpage:512 ~frame:100 ~level:1 ())

let test_pt_overlap_rejected () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpage:512 ~frame:0 ~level:1 ();
  Alcotest.check_raises "base under huge"
    (Invalid_argument "Page_table.map: range covered by a larger mapping")
    (fun () -> Page_table.map pt ~vpage:513 ~frame:9 ());
  let pt2 = Page_table.create () in
  Page_table.map pt2 ~vpage:513 ~frame:9 ();
  Alcotest.check_raises "huge over base"
    (Invalid_argument "Page_table.map: range contains finer-grained mappings")
    (fun () -> Page_table.map pt2 ~vpage:512 ~frame:0 ~level:1 ())

let test_pt_accessed_dirty () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpage:9 ~frame:3 ();
  let m = Option.get (Page_table.lookup pt 9) in
  check Alcotest.bool "not accessed yet" false m.Page_table.flags.Page_table.accessed;
  ignore (Page_table.walk pt 9);
  let m = Option.get (Page_table.lookup pt 9) in
  check Alcotest.bool "accessed after walk" true m.Page_table.flags.Page_table.accessed;
  check Alcotest.bool "set dirty" true (Page_table.set_dirty pt 9);
  let m = Option.get (Page_table.lookup pt 9) in
  check Alcotest.bool "dirty" true m.Page_table.flags.Page_table.dirty;
  check Alcotest.bool "dirty on absent" false (Page_table.set_dirty pt 10)

let test_pt_clear_accessed_preserves_dirty () =
  (* Regression: CLOCK's rotation must clear only the accessed bit; a
     version that round-tripped through set_dirty re-set accessed and
     made dirty pages rotate forever. *)
  let pt = Page_table.create () in
  Page_table.map pt ~vpage:4 ~frame:1 ();
  ignore (Page_table.walk pt 4);
  ignore (Page_table.set_dirty pt 4);
  check Alcotest.bool "clear works" true (Page_table.clear_accessed pt 4);
  let m = Option.get (Page_table.lookup pt 4) in
  check Alcotest.bool "accessed cleared" false m.Page_table.flags.Page_table.accessed;
  check Alcotest.bool "dirty preserved" true m.Page_table.flags.Page_table.dirty;
  check Alcotest.bool "absent page" false (Page_table.clear_accessed pt 5)

let test_pt_iter_order () =
  let pt = Page_table.create () in
  List.iter
    (fun (v, f) -> Page_table.map pt ~vpage:v ~frame:f ())
    [ (1000, 1); (3, 2); (70_000, 3) ];
  let seen = ref [] in
  Page_table.iter (fun ~vpage _ -> seen := vpage :: !seen) pt;
  check Alcotest.(list int) "increasing order" [ 3; 1000; 70_000 ]
    (List.rev !seen)

let prop_pt_matches_model =
  QCheck.Test.make ~name:"page table matches Hashtbl model" ~count:100
    QCheck.(list (pair (int_bound 5000) bool))
    (fun ops ->
      let pt = Page_table.create () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (v, do_map) ->
          if do_map then begin
            if not (Hashtbl.mem model v) then begin
              Page_table.map pt ~vpage:v ~frame:(v * 2) ();
              Hashtbl.replace model v (v * 2)
            end
          end
          else begin
            let removed = Page_table.unmap pt ~vpage:v in
            if removed <> Hashtbl.mem model v then failwith "unmap mismatch";
            Hashtbl.remove model v
          end)
        ops;
      Hashtbl.fold
        (fun v f acc ->
          acc
          && match Page_table.lookup pt v with
             | Some m -> m.Page_table.frame = f
             | None -> false)
        model true
      && Page_table.mapped_count pt = Hashtbl.length model)

(* --- Walker ----------------------------------------------------------- *)

let test_walker_cost_structure () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpage:0 ~frame:0 ();
  let w = Walker.create pt in
  let r1 = Walker.translate w 0 in
  (* Cold: all four levels fetched. *)
  check Alcotest.int "cold walk = 4 accesses" 4 r1.Walker.memory_accesses;
  (* Warm: the PWC caches the interior path; only the PTE remains. *)
  let r2 = Walker.translate w 0 in
  check Alcotest.int "warm walk = 1 access" 1 r2.Walker.memory_accesses;
  check Alcotest.bool "warm cheaper" true (r2.Walker.cycles < r1.Walker.cycles)

let test_walker_huge_leaf_cheaper () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpage:0 ~frame:0 ();
  Page_table.map pt ~vpage:(512 * 512) ~frame:512 ~level:1 ();
  let w = Walker.create pt in
  let base = Walker.translate w 0 in
  let huge = Walker.translate w (512 * 512) in
  check Alcotest.bool "huge cold walk shorter" true
    (huge.Walker.memory_accesses < base.Walker.memory_accesses)

let test_walker_locality_via_pwc () =
  let pt = Page_table.create () in
  for v = 0 to 63 do
    Page_table.map pt ~vpage:v ~frame:v ()
  done;
  let w = Walker.create pt in
  ignore (Walker.translate w 0);
  (* Neighbors share the whole interior path. *)
  let r = Walker.translate w 1 in
  check Alcotest.int "neighbor pays one access" 1 r.Walker.memory_accesses;
  let s = Walker.stats w in
  check Alcotest.int "two walks" 2 s.Walker.walks;
  check Alcotest.int "one PWC-assisted" 1 s.Walker.pwc_hits

let test_walker_invalidate () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpage:0 ~frame:0 ();
  let w = Walker.create pt in
  ignore (Walker.translate w 0);
  Walker.invalidate w;
  let r = Walker.translate w 0 in
  check Alcotest.int "flush restores cold cost" 4 r.Walker.memory_accesses

let test_walker_epsilon () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpage:0 ~frame:0 ();
  let w = Walker.create pt in
  ignore (Walker.translate w 0);
  (* One walk of 4 accesses x 100 cycles (+ probe costs) over a
     40,000-cycle IO: epsilon is about 0.01. *)
  let e = Walker.epsilon w ~io_latency_cycles:40_000 in
  check Alcotest.bool "epsilon near 0.01" true (e > 0.009 && e < 0.012)

let test_walker_unmapped () =
  let pt = Page_table.create () in
  let w = Walker.create pt in
  let r = Walker.translate w 12345 in
  check Alcotest.bool "no mapping" true (r.Walker.mapping = None);
  check Alcotest.bool "fault walk still costs" true (r.Walker.memory_accesses >= 1)

(* --- Nested ------------------------------------------------------------ *)

let test_nested_translates () =
  let n = Nested.create () in
  Nested.guest_map n ~gva:100 ~gpa:7;
  Nested.host_map n ~gpa:7 ~hpa:99;
  let r = Nested.translate n 100 in
  check Alcotest.(option int) "end-to-end frame" (Some 99) r.Nested.hframe

let test_nested_cost_exceeds_bare_metal () =
  (* The headline effect: nested cold walks cost several times a bare
     walk (up to 24 accesses vs 4 on x86). *)
  let n = Nested.create () in
  Nested.guest_map n ~gva:0 ~gpa:0;
  let r = Nested.translate n 0 in
  check Alcotest.bool
    (Printf.sprintf "cold nested walk is expensive (%d accesses)"
       r.Nested.memory_accesses)
    true
    (r.Nested.memory_accesses > Page_table.levels * 2);
  check Alcotest.bool "bounded by the 2D worst case" true
    (r.Nested.memory_accesses
     <= ((Page_table.levels + 1) * (Page_table.levels + 1)) - 1)

let test_nested_warm_walks_cheapen () =
  let n = Nested.create () in
  Nested.guest_map n ~gva:0 ~gpa:0;
  let cold = Nested.translate n 0 in
  let warm = Nested.translate n 0 in
  check Alcotest.bool "host TLB + PWC help" true
    (warm.Nested.memory_accesses < cold.Nested.memory_accesses)

let test_nested_unmapped_guest () =
  let n = Nested.create () in
  let r = Nested.translate n 4242 in
  check Alcotest.bool "absent guest mapping" true (r.Nested.hframe = None)

let test_nested_epsilon_vs_bare () =
  (* Random accesses over a large space: the effective epsilon under
     virtualization must exceed the bare-metal one. *)
  let rng = Atp_util.Prng.create ~seed:1 () in
  let pages = Array.init 2_000 (fun _ -> Atp_util.Prng.int rng 100_000) in
  let pt = Page_table.create () in
  let bare = Walker.create pt in
  let nested = Nested.create () in
  Array.iter
    (fun v ->
      if Page_table.lookup pt v = None then Page_table.map pt ~vpage:v ~frame:v ();
      ignore (Walker.translate bare v);
      (try Nested.guest_map nested ~gva:v ~gpa:v with Invalid_argument _ -> ());
      ignore (Nested.translate nested v))
    pages;
  let io = 40_000 in
  let e_bare = Walker.epsilon bare ~io_latency_cycles:io in
  let e_nested = Nested.epsilon nested ~io_latency_cycles:io in
  check Alcotest.bool
    (Printf.sprintf "nested eps (%.4f) > bare eps (%.4f)" e_nested e_bare)
    true (e_nested > e_bare)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "atp.mmu"
    [
      ( "page_table",
        Alcotest.test_case "map/lookup" `Quick test_pt_map_lookup
        :: Alcotest.test_case "unmap" `Quick test_pt_unmap
        :: Alcotest.test_case "duplicate" `Quick test_pt_duplicate_rejected
        :: Alcotest.test_case "huge leaf" `Quick test_pt_huge_leaf
        :: Alcotest.test_case "alignment" `Quick test_pt_huge_alignment
        :: Alcotest.test_case "overlap" `Quick test_pt_overlap_rejected
        :: Alcotest.test_case "accessed/dirty" `Quick test_pt_accessed_dirty
        :: Alcotest.test_case "clear_accessed keeps dirty" `Quick
             test_pt_clear_accessed_preserves_dirty
        :: Alcotest.test_case "iter order" `Quick test_pt_iter_order
        :: qsuite [ prop_pt_matches_model ] );
      ( "walker",
        [
          Alcotest.test_case "cost structure" `Quick test_walker_cost_structure;
          Alcotest.test_case "huge leaf cheaper" `Quick test_walker_huge_leaf_cheaper;
          Alcotest.test_case "pwc locality" `Quick test_walker_locality_via_pwc;
          Alcotest.test_case "invalidate" `Quick test_walker_invalidate;
          Alcotest.test_case "epsilon" `Quick test_walker_epsilon;
          Alcotest.test_case "unmapped" `Quick test_walker_unmapped;
        ] );
      ( "nested",
        [
          Alcotest.test_case "translates" `Quick test_nested_translates;
          Alcotest.test_case "cold cost" `Quick test_nested_cost_exceeds_bare_metal;
          Alcotest.test_case "warm cheapens" `Quick test_nested_warm_walks_cheapen;
          Alcotest.test_case "unmapped guest" `Quick test_nested_unmapped_guest;
          Alcotest.test_case "epsilon vs bare" `Quick test_nested_epsilon_vs_bare;
        ] );
    ]
