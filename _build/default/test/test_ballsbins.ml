open Atp_ballsbins
open Atp_util

let check = Alcotest.check

(* --- Game ----------------------------------------------------------- *)

let test_game_place_remove () =
  let g = Game.create ~bins:4 () in
  Game.place g ~ball:7 ~bin:2 ~layer:0;
  check Alcotest.int "balls" 1 (Game.balls g);
  check Alcotest.int "load" 1 (Game.load g 2);
  check Alcotest.(option int) "bin_of" (Some 2) (Game.bin_of g 7);
  check Alcotest.int "max load" 1 (Game.max_load g);
  check Alcotest.int "removed from" 2 (Game.remove g ~ball:7);
  check Alcotest.int "empty again" 0 (Game.balls g);
  check Alcotest.int "max load zero" 0 (Game.max_load g)

let test_game_stability () =
  let g = Game.create ~bins:2 () in
  Game.place g ~ball:1 ~bin:0 ~layer:0;
  Alcotest.check_raises "double place"
    (Invalid_argument "Game.place: ball already present (stability violation)")
    (fun () -> Game.place g ~ball:1 ~bin:1 ~layer:0)

let test_game_layers () =
  let g = Game.create ~layers:2 ~bins:3 () in
  Game.place g ~ball:1 ~bin:0 ~layer:0;
  Game.place g ~ball:2 ~bin:0 ~layer:1;
  check Alcotest.int "front load" 1 (Game.layer_load g ~layer:0 0);
  check Alcotest.int "back load" 1 (Game.layer_load g ~layer:1 0);
  check Alcotest.int "total" 2 (Game.load g 0)

let test_game_max_load_tracking () =
  let g = Game.create ~bins:3 () in
  (* Build loads 3,1,0 then delete down and watch the max follow. *)
  List.iter (fun ball -> Game.place g ~ball ~bin:0 ~layer:0) [ 1; 2; 3 ];
  Game.place g ~ball:4 ~bin:1 ~layer:0;
  check Alcotest.int "max 3" 3 (Game.max_load g);
  ignore (Game.remove g ~ball:1);
  ignore (Game.remove g ~ball:2);
  check Alcotest.int "max falls to 1" 1 (Game.max_load g);
  ignore (Game.remove g ~ball:3);
  ignore (Game.remove g ~ball:4);
  check Alcotest.int "max zero" 0 (Game.max_load g)

let prop_game_max_load_matches_recompute =
  QCheck.Test.make ~name:"incremental max load = recomputed max load" ~count:100
    QCheck.(list (pair (int_bound 500) (int_bound 7)))
    (fun ops ->
      let g = Game.create ~bins:8 () in
      let ok = ref true in
      List.iter
        (fun (ball, bin) ->
          (match Game.bin_of g ball with
           | Some _ -> ignore (Game.remove g ~ball)
           | None -> Game.place g ~ball ~bin ~layer:0);
          let loads = Game.loads g in
          let expected = Array.fold_left max 0 loads in
          if Game.max_load g <> expected then ok := false)
        ops;
      !ok)

(* --- Strategies ----------------------------------------------------- *)

let run_strategy ?bin_capacity ~layers ~bins strategy ops =
  let game = Game.create ~layers ~bins () in
  Runner.run ?bin_capacity ~game ~strategy ops

let test_one_choice_places_consistently () =
  let rng = Prng.create ~seed:1 () in
  let s = Strategy.one_choice rng ~bins:16 in
  let g = Game.create ~bins:16 () in
  let p1 = s.Strategy.choose g 42 in
  let p2 = s.Strategy.choose g 42 in
  check Alcotest.int "same bin for same ball" p1.Strategy.bin p2.Strategy.bin;
  check Alcotest.int "k" 1 s.Strategy.k

let test_greedy_picks_less_loaded () =
  let rng = Prng.create ~seed:2 () in
  let s = Strategy.greedy rng ~d:2 ~bins:4 in
  let g = Game.create ~bins:4 () in
  (* Make every bin except one heavily loaded; the strategy must not
     pick a maximal bin unless both its choices are maximal. *)
  for ball = 1000 to 1011 do
    Game.place g ~ball ~bin:(ball mod 4) ~layer:0
  done;
  ignore (Game.remove g ~ball:1000);
  ignore (Game.remove g ~ball:1004);
  ignore (Game.remove g ~ball:1008);
  (* bin 0 has load 0; others 3. *)
  let picked_light = ref 0 in
  for ball = 0 to 199 do
    let p = s.Strategy.choose g ball in
    if Game.load g p.Strategy.bin = 0 then incr picked_light
  done;
  (* A ball picks bin 0 iff one of its two hashes lands there:
     probability 1 - (3/4)^2 = 7/16; check it is picked much more than
     the 1/4 a blind single choice would give. *)
  check Alcotest.bool "prefers light bin" true (!picked_light > 60)

let test_iceberg_respects_front_cap () =
  let rng = Prng.create ~seed:3 () in
  let bins = 8 in
  let tau = 3 in
  let s = Strategy.iceberg rng ~tau ~bins () in
  let g = Game.create ~layers:2 ~bins () in
  check Alcotest.int "k = d+1" 3 s.Strategy.k;
  for ball = 0 to 199 do
    let p = s.Strategy.choose g ball in
    if p.Strategy.layer = Strategy.front_yard then
      check Alcotest.bool "front under cap" true
        (Game.layer_load g ~layer:Strategy.front_yard p.Strategy.bin < tau);
    Game.place g ~ball ~bin:p.Strategy.bin ~layer:p.Strategy.layer
  done;
  (* No bin's front yard may exceed tau. *)
  for bin = 0 to bins - 1 do
    check Alcotest.bool "front yard bounded" true
      (Game.layer_load g ~layer:Strategy.front_yard bin <= tau)
  done

let test_iceberg_beats_one_choice () =
  (* The headline of Theorem 2: Iceberg's max load tracks λ + O(log log n)
     while one-choice pays an additive Θ(√(λ log n)). *)
  let bins = 256 in
  let m = 8 * bins in
  let run strategy layers =
    let r =
      run_strategy ~layers ~bins strategy (Adversary.arrivals ~m)
    in
    r.Runner.max_load_final
  in
  let rng = Prng.create ~seed:4 () in
  let one = run (Strategy.one_choice rng ~bins) 1 in
  let rng = Prng.create ~seed:5 () in
  let tau = Strategy.default_tau ~m ~bins in
  let ice = run (Strategy.iceberg rng ~tau ~bins ()) 2 in
  check Alcotest.bool
    (Printf.sprintf "iceberg (%d) <= one-choice (%d)" ice one)
    true (ice <= one);
  check Alcotest.bool "iceberg near average" true (ice <= 9 + 4)

let test_runner_failure_accounting () =
  (* One bin, capacity 2, three arrivals via one-choice: the third ball
     must be labeled failed. *)
  let rng = Prng.create ~seed:6 () in
  let s = Strategy.one_choice rng ~bins:1 in
  let r = run_strategy ~bin_capacity:2 ~layers:1 ~bins:1 s (Adversary.arrivals ~m:3) in
  check Alcotest.int "one failure" 1 r.Runner.failed_balls;
  check Alcotest.int "all inserted" 3 r.Runner.inserts

let test_runner_counts () =
  let rng = Prng.create ~seed:7 () in
  let s = Strategy.greedy rng ~d:2 ~bins:32 in
  let adversary_rng = Prng.create ~seed:8 () in
  let ops = Adversary.churn adversary_rng ~m:64 ~steps:100 ~fresh:true in
  let r = run_strategy ~layers:1 ~bins:32 s ops in
  check Alcotest.int "inserts" 164 r.Runner.inserts;
  check Alcotest.int "deletes" 100 r.Runner.deletes;
  check Alcotest.int "peak" 64 r.Runner.peak_balls

(* --- Adversaries ---------------------------------------------------- *)

let ops_are_consistent ops =
  (* Each delete refers to a live ball; the live count never exceeds m. *)
  let live = Hashtbl.create 64 in
  Seq.iter
    (fun op ->
      match op with
      | Adversary.Insert ball ->
        if Hashtbl.mem live ball then failwith "insert of live ball";
        Hashtbl.replace live ball ()
      | Adversary.Delete ball ->
        if not (Hashtbl.mem live ball) then failwith "delete of dead ball";
        Hashtbl.remove live ball)
    ops;
  Hashtbl.length live

let test_arrivals () =
  let n = ops_are_consistent (Adversary.arrivals ~m:50) in
  check Alcotest.int "all live" 50 n

let test_churn_consistent () =
  let rng = Prng.create ~seed:9 () in
  let n = ops_are_consistent (Adversary.churn rng ~m:30 ~steps:200 ~fresh:true) in
  check Alcotest.int "steady state" 30 n

let test_churn_recycles_consistent () =
  let rng = Prng.create ~seed:10 () in
  let n = ops_are_consistent (Adversary.churn rng ~m:30 ~steps:200 ~fresh:false) in
  check Alcotest.int "steady state" 30 n

let test_fifo_churn_consistent () =
  let n = ops_are_consistent (Adversary.fifo_churn ~m:20 ~steps:50) in
  check Alcotest.int "steady state" 20 n

let test_sliding_window_consistent () =
  let rng = Prng.create ~seed:11 () in
  let n =
    ops_are_consistent (Adversary.sliding_window ~m:25 ~universe:200 ~steps:500 rng)
  in
  check Alcotest.bool "at most m live" true (n <= 25)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "atp.ballsbins"
    [
      ( "game",
        Alcotest.test_case "place/remove" `Quick test_game_place_remove
        :: Alcotest.test_case "stability" `Quick test_game_stability
        :: Alcotest.test_case "layers" `Quick test_game_layers
        :: Alcotest.test_case "max load tracking" `Quick test_game_max_load_tracking
        :: qsuite [ prop_game_max_load_matches_recompute ] );
      ( "strategies",
        [
          Alcotest.test_case "one-choice consistent" `Quick
            test_one_choice_places_consistently;
          Alcotest.test_case "greedy picks light bin" `Quick
            test_greedy_picks_less_loaded;
          Alcotest.test_case "iceberg front cap" `Quick
            test_iceberg_respects_front_cap;
          Alcotest.test_case "iceberg beats one-choice" `Quick
            test_iceberg_beats_one_choice;
        ] );
      ( "runner",
        [
          Alcotest.test_case "failure accounting" `Quick
            test_runner_failure_accounting;
          Alcotest.test_case "counts" `Quick test_runner_counts;
        ] );
      ( "adversaries",
        [
          Alcotest.test_case "arrivals" `Quick test_arrivals;
          Alcotest.test_case "churn fresh" `Quick test_churn_consistent;
          Alcotest.test_case "churn recycle" `Quick test_churn_recycles_consistent;
          Alcotest.test_case "fifo churn" `Quick test_fifo_churn_consistent;
          Alcotest.test_case "sliding window" `Quick test_sliding_window_consistent;
        ] );
    ]
