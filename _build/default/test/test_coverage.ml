(* Small-surface tests that close API gaps the main suites don't
   exercise: formatting helpers, secondary entry points, and edge
   parameters. *)

open Atp_util
open Atp_paging
open Atp_workloads

let check = Alcotest.check

let test_prng_int_in_range () =
  let rng = Prng.create ~seed:1 () in
  for _ = 1 to 1_000 do
    let v = Prng.int_in_range rng ~lo:(-5) ~hi:5 in
    check Alcotest.bool "inclusive range" true (v >= -5 && v <= 5)
  done;
  check Alcotest.int "degenerate range" 3 (Prng.int_in_range rng ~lo:3 ~hi:3);
  Alcotest.check_raises "inverted" (Invalid_argument "Prng.int_in_range: lo > hi")
    (fun () -> ignore (Prng.int_in_range rng ~lo:2 ~hi:1))

let test_prng_copy_diverges_from_source () =
  let a = Prng.create ~seed:2 () in
  let b = Prng.copy a in
  (* Drawing from the copy must not advance the original. *)
  let from_b = Prng.next_int64 b in
  let from_a = Prng.next_int64 a in
  check Alcotest.int64 "same first draw" from_b from_a

let test_stats_pp_si () =
  let s v = Format.asprintf "%a" Stats.pp_si v in
  check Alcotest.string "giga" "1.5G" (s 1.5e9);
  check Alcotest.string "mega" "2M" (s 2.0e6);
  check Alcotest.string "kilo" "42k" (s 42_000.0);
  check Alcotest.string "unit" "7" (s 7.0)

let test_summary_pp () =
  let s = Stats.Summary.create () in
  Stats.Summary.add s 1.0;
  Stats.Summary.add s 3.0;
  let str = Format.asprintf "%a" Stats.Summary.pp s in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "mentions n=2" true (contains str "n=2")

let test_log_histogram_pp_and_bounds () =
  let h = Stats.Log_histogram.create () in
  Stats.Log_histogram.add h 5;
  let str = Format.asprintf "%a" Stats.Log_histogram.pp h in
  check Alcotest.bool "renders a bucket" true (String.length str > 0);
  Alcotest.check_raises "negative"
    (Invalid_argument "Log_histogram.add: negative value") (fun () ->
      Stats.Log_histogram.add h (-1))

let test_sim_on_event_callback () =
  let trace = [| 1; 2; 1 |] in
  let events = ref [] in
  let inst = Policy.instantiate (module Lru) ~capacity:2 () in
  let _ =
    Sim.run
      ~on_event:(fun i outcome -> events := (i, Policy.is_hit outcome) :: !events)
      inst trace
  in
  check
    Alcotest.(list (pair int bool))
    "per-access events" [ (0, false); (1, false); (2, true) ]
    (List.rev !events)

let test_policy_helpers () =
  check Alcotest.bool "hit" true (Policy.is_hit Policy.Hit);
  check Alcotest.bool "miss" false (Policy.is_hit (Policy.Miss { evicted = None }));
  check Alcotest.(option int) "evicted of hit" None (Policy.evicted Policy.Hit);
  check Alcotest.(option int) "evicted of miss" (Some 3)
    (Policy.evicted (Policy.Miss { evicted = Some 3 }))

let test_opt_instance_remove () =
  let inst = Opt.instance ~capacity:2 [| 1; 2; 1 |] in
  ignore (inst.Policy.access 1);
  check Alcotest.bool "remove resident" true (inst.Policy.remove 1);
  check Alcotest.bool "remove absent" false (inst.Policy.remove 1);
  check Alcotest.int "size" 0 (inst.Policy.size ())

let test_workload_to_seq () =
  let w = Simple.sequential ~virtual_pages:3 () in
  let first = List.of_seq (Seq.take 5 (Workload.to_seq w)) in
  check Alcotest.(list int) "streams" [ 0; 1; 2; 0; 1 ] first

let test_workload_units () =
  check Alcotest.int "gib" (1024 * 1024 * 1024) (Workload.gib 1);
  check Alcotest.int "mib" (1024 * 1024) (Workload.mib 1);
  check Alcotest.int "pages round up" 2 (Workload.pages_of_bytes 4097);
  check Alcotest.int "exact" 1 (Workload.pages_of_bytes 4096)

let test_slots_errors () =
  let s = Slots.create 2 in
  let _ = Slots.alloc s 10 in
  Alcotest.check_raises "duplicate page"
    (Invalid_argument "Slots.alloc: page already resident") (fun () ->
      ignore (Slots.alloc s 10));
  let _ = Slots.alloc s 11 in
  Alcotest.check_raises "full" (Invalid_argument "Slots.alloc: cache full")
    (fun () -> ignore (Slots.alloc s 12));
  check Alcotest.bool "is_full" true (Slots.is_full s)

let test_bimodal_hot_fraction_bounds () =
  let rng = Prng.create ~seed:3 () in
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Bimodal.create: hot_fraction out of range") (fun () ->
      ignore (Bimodal.create ~hot_fraction:1.5 ~hot_pages:1 ~virtual_pages:10 rng))

let test_graph_walk_out_degree_validation () =
  let rng = Prng.create ~seed:4 () in
  Alcotest.check_raises "bad degree"
    (Invalid_argument "Graph_walk.create: out_degree must be positive")
    (fun () -> ignore (Graph_walk.create ~out_degree:0 ~virtual_pages:10 rng))

let test_registry_names_match_modules () =
  List.iter
    (fun (module P : Policy.S) ->
      match Registry.find P.name with
      | Some (module Q : Policy.S) ->
        check Alcotest.string "roundtrip" P.name Q.name
      | None -> Alcotest.fail ("missing " ^ P.name))
    Registry.all

let test_mattson_curve_api () =
  let m = Mattson.of_trace [| 1; 2; 1; 2; 3 |] in
  check
    Alcotest.(list (pair int int))
    "curve rows"
    [ (1, 5); (2, 3); (3, 3) ]
    (Mattson.curve m ~capacities:[ 1; 2; 3 ])

let () =
  Alcotest.run "atp.coverage"
    [
      ( "util",
        [
          Alcotest.test_case "int_in_range" `Quick test_prng_int_in_range;
          Alcotest.test_case "copy semantics" `Quick test_prng_copy_diverges_from_source;
          Alcotest.test_case "pp_si" `Quick test_stats_pp_si;
          Alcotest.test_case "summary pp" `Quick test_summary_pp;
          Alcotest.test_case "histogram pp/bounds" `Quick test_log_histogram_pp_and_bounds;
        ] );
      ( "paging",
        [
          Alcotest.test_case "sim on_event" `Quick test_sim_on_event_callback;
          Alcotest.test_case "policy helpers" `Quick test_policy_helpers;
          Alcotest.test_case "opt instance remove" `Quick test_opt_instance_remove;
          Alcotest.test_case "slots errors" `Quick test_slots_errors;
          Alcotest.test_case "registry roundtrip" `Quick test_registry_names_match_modules;
          Alcotest.test_case "mattson curve" `Quick test_mattson_curve_api;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "to_seq" `Quick test_workload_to_seq;
          Alcotest.test_case "units" `Quick test_workload_units;
          Alcotest.test_case "bimodal bounds" `Quick test_bimodal_hot_fraction_bounds;
          Alcotest.test_case "walk validation" `Quick test_graph_walk_out_degree_validation;
        ] );
    ]
