(* Tests for the Iceberg hash table and the TLB prefetcher. *)

open Atp_ballsbins
open Atp_util

let check = Alcotest.check

(* --- Iceberg table -------------------------------------------------------- *)

let test_iceberg_basic () =
  let t = Iceberg_table.create ~capacity:100 () in
  Iceberg_table.insert t 1 "one";
  Iceberg_table.insert t 2 "two";
  check Alcotest.(option string) "find 1" (Some "one") (Iceberg_table.find t 1);
  check Alcotest.(option string) "find 2" (Some "two") (Iceberg_table.find t 2);
  check Alcotest.(option string) "absent" None (Iceberg_table.find t 3);
  check Alcotest.int "length" 2 (Iceberg_table.length t);
  Iceberg_table.insert t 1 "uno";
  check Alcotest.(option string) "replace" (Some "uno") (Iceberg_table.find t 1);
  check Alcotest.int "length unchanged" 2 (Iceberg_table.length t);
  check Alcotest.bool "remove" true (Iceberg_table.remove t 1);
  check Alcotest.bool "remove again" false (Iceberg_table.remove t 1);
  check Alcotest.(option string) "gone" None (Iceberg_table.find t 1)

let test_iceberg_rejects_negative () =
  let t = Iceberg_table.create ~capacity:10 () in
  Alcotest.check_raises "negative key"
    (Invalid_argument "Iceberg_table: keys must be non-negative") (fun () ->
      Iceberg_table.insert t (-1) 0)

let test_iceberg_fill_to_capacity () =
  let capacity = 10_000 in
  let t = Iceberg_table.create ~capacity () in
  for k = 0 to capacity - 1 do
    Iceberg_table.insert t k (k * 3)
  done;
  check Alcotest.int "all present" capacity (Iceberg_table.length t);
  for k = 0 to capacity - 1 do
    if Iceberg_table.find t k <> Some (k * 3) then
      Alcotest.failf "lost key %d" k
  done;
  (* The front yard dominates and spill stays tiny — the Iceberg
     property. *)
  check Alcotest.bool
    (Printf.sprintf "front fraction high (%.3f)" (Iceberg_table.front_yard_fraction t))
    true
    (Iceberg_table.front_yard_fraction t > 0.85);
  check Alcotest.bool
    (Printf.sprintf "spill tiny (%d)" (Iceberg_table.overflow_count t))
    true
    (Iceberg_table.overflow_count t < capacity / 100)

let test_iceberg_probe_bound () =
  let t = Iceberg_table.create ~capacity:5_000 () in
  for k = 0 to 4_999 do Iceberg_table.insert t k k done;
  Iceberg_table.reset_stats t;
  for k = 0 to 4_999 do ignore (Iceberg_table.find t k) done;
  let s = Iceberg_table.stats t in
  let avg = float_of_int s.Iceberg_table.slots_probed /. float_of_int s.Iceberg_table.lookups in
  (* Worst case is 8 + 4 + 4 = 16 slots; the average should be far
     below the front-bin width. *)
  check Alcotest.bool (Printf.sprintf "avg probes small (%.2f)" avg) true (avg < 9.0)

let prop_iceberg_matches_hashtbl =
  QCheck.Test.make ~count:100 ~name:"iceberg table matches Hashtbl model"
    QCheck.(list (pair (int_bound 200) (option small_nat)))
    (fun ops ->
      let t = Iceberg_table.create ~capacity:64 () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, op) ->
          match op with
          | Some v ->
            Iceberg_table.insert t k v;
            Hashtbl.replace model k v
          | None ->
            let a = Iceberg_table.remove t k in
            let b = Hashtbl.mem model k in
            Hashtbl.remove model k;
            if a <> b then failwith "remove mismatch")
        ops;
      Iceberg_table.length t = Hashtbl.length model
      && Hashtbl.fold
           (fun k v acc -> acc && Iceberg_table.find t k = Some v)
           model true)

let test_iceberg_churn_stability () =
  (* Heavy delete/reinsert churn at high load must not degrade
     correctness or blow up the spill area. *)
  let capacity = 4_096 in
  let t = Iceberg_table.create ~capacity () in
  let rng = Prng.create ~seed:5 () in
  for k = 0 to capacity - 1 do Iceberg_table.insert t k k done;
  for round = 1 to 20_000 do
    let k = Prng.int rng capacity in
    if Iceberg_table.mem t k then ignore (Iceberg_table.remove t k)
    else Iceberg_table.insert t k (k + round)
  done;
  check Alcotest.bool "spill bounded under churn" true
    (Iceberg_table.overflow_count t < capacity / 50)

(* --- Prefetch ---------------------------------------------------------------- *)

let test_prefetch_sequential_eliminates_misses () =
  let pt v = if v < 10_000 then Some v else None in
  let run degree =
    let t = Atp_tlb.Prefetch.create ~degree ~entries:64 ~translate:pt () in
    for v = 0 to 4_999 do
      ignore (Atp_tlb.Prefetch.lookup t v)
    done;
    (Atp_tlb.Prefetch.stats t).Atp_tlb.Prefetch.demand_misses
  in
  let without = run 0 and with_prefetch = run 4 in
  check Alcotest.int "no prefetch: every access misses" 5_000 without;
  check Alcotest.bool
    (Printf.sprintf "prefetch kills sequential misses (%d)" with_prefetch)
    true
    (with_prefetch <= (5_000 / 5) + 1)

let test_prefetch_accuracy_on_random () =
  let pt v = if v < 100_000 then Some v else None in
  let t = Atp_tlb.Prefetch.create ~degree:2 ~entries:64 ~translate:pt () in
  let rng = Prng.create ~seed:6 () in
  for _ = 1 to 5_000 do
    ignore (Atp_tlb.Prefetch.lookup t (Prng.int rng 100_000))
  done;
  (* Random accesses make next-page prefetch useless. *)
  check Alcotest.bool
    (Printf.sprintf "accuracy low on random (%.3f)" (Atp_tlb.Prefetch.accuracy t))
    true
    (Atp_tlb.Prefetch.accuracy t < 0.05);
  check Alcotest.bool "accuracy perfect on sequential" true
    (let t = Atp_tlb.Prefetch.create ~degree:1 ~entries:64 ~translate:pt () in
     for v = 0 to 999 do ignore (Atp_tlb.Prefetch.lookup t v) done;
     Atp_tlb.Prefetch.accuracy t > 0.99)

let test_prefetch_skips_unmapped () =
  let pt v = if v = 5 then Some 50 else None in
  let t = Atp_tlb.Prefetch.create ~degree:3 ~entries:8 ~translate:pt () in
  check Alcotest.(option int) "mapped" (Some 50) (Atp_tlb.Prefetch.lookup t 5);
  let s = Atp_tlb.Prefetch.stats t in
  check Alcotest.int "nothing prefetched past the mapping" 0
    s.Atp_tlb.Prefetch.prefetches;
  check Alcotest.(option int) "unmapped lookup" None (Atp_tlb.Prefetch.lookup t 6)

let test_prefetch_invalidate () =
  let pt _ = Some 1 in
  let t = Atp_tlb.Prefetch.create ~entries:8 ~translate:pt () in
  ignore (Atp_tlb.Prefetch.lookup t 0);
  check Alcotest.bool "entry present" true (Atp_tlb.Prefetch.invalidate t 0);
  check Alcotest.bool "prefetched neighbor present" true
    (Atp_tlb.Prefetch.invalidate t 1)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "atp.iceberg"
    [
      ( "iceberg-table",
        Alcotest.test_case "basic" `Quick test_iceberg_basic
        :: Alcotest.test_case "negative keys" `Quick test_iceberg_rejects_negative
        :: Alcotest.test_case "fill to capacity" `Quick test_iceberg_fill_to_capacity
        :: Alcotest.test_case "probe bound" `Quick test_iceberg_probe_bound
        :: Alcotest.test_case "churn stability" `Quick test_iceberg_churn_stability
        :: qsuite [ prop_iceberg_matches_hashtbl ] );
      ( "prefetch",
        [
          Alcotest.test_case "sequential" `Quick test_prefetch_sequential_eliminates_misses;
          Alcotest.test_case "accuracy" `Quick test_prefetch_accuracy_on_random;
          Alcotest.test_case "skips unmapped" `Quick test_prefetch_skips_unmapped;
          Alcotest.test_case "invalidate" `Quick test_prefetch_invalidate;
        ] );
    ]
