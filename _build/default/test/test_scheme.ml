(* Tests for the unified scheme interface, Vöcking's always-go-left
   strategy, and the embedding-lookup workload. *)

open Atp_core
open Atp_ballsbins
open Atp_workloads
open Atp_util

let check = Alcotest.check

(* --- Scheme ------------------------------------------------------------- *)

let bimodal_trace seed n =
  let rng = Prng.create ~seed () in
  Workload.generate
    (Bimodal.create ~hot_fraction:0.999 ~hot_pages:256 ~virtual_pages:(1 lsl 15) rng)
    n

let test_scheme_physical_matches_machine () =
  let trace = bimodal_trace 1 20_000 in
  let scheme =
    Scheme.run (Scheme.physical ~tlb_entries:64 ~ram_pages:2048 ~huge_size:8 ()) trace
  in
  let m =
    Atp_memsim.Machine.create
      { Atp_memsim.Machine.default_config with
        ram_pages = 2048; tlb_entries = 64; huge_size = 8 }
  in
  let c = Atp_memsim.Machine.run m trace in
  check Alcotest.int "same ios" c.Atp_memsim.Machine.ios (scheme.Scheme.ios ());
  check Alcotest.int "same tlb" c.Atp_memsim.Machine.tlb_misses
    (scheme.Scheme.tlb_events ())

let test_scheme_decoupled_counts () =
  let trace = bimodal_trace 2 20_000 in
  let scheme =
    Scheme.run (Scheme.decoupled ~tlb_entries:64 ~ram_pages:2048 ~w:64 ()) trace
  in
  check Alcotest.bool "did IOs" true (scheme.Scheme.ios () > 0);
  check Alcotest.bool "cost positive" true (Scheme.cost ~epsilon:0.01 scheme > 0.0)

let test_scheme_reset_via_run () =
  let trace = bimodal_trace 3 5_000 in
  let warmup = bimodal_trace 3 5_000 in
  let scheme = Scheme.physical ~tlb_entries:64 ~ram_pages:2048 ~huge_size:1 () in
  let scheme = Scheme.run ~warmup scheme trace in
  (* Counters reflect only the measured trace. *)
  check Alcotest.bool "warmup not counted" true
    (scheme.Scheme.tlb_events () <= Array.length trace)

let test_scheme_compare_all () =
  let ram = 2048 in
  let trace = bimodal_trace 4 30_000 in
  let warmup = bimodal_trace 4 30_000 in
  let rows =
    Scheme.compare_all ~warmup ~epsilon:0.01
      [
        Scheme.physical ~tlb_entries:64 ~ram_pages:ram ~huge_size:1 ();
        Scheme.physical ~tlb_entries:64 ~ram_pages:ram ~huge_size:64 ();
        Scheme.thp ~base_tlb_entries:64 ~huge_tlb_entries:8 ~ram_pages:ram
          ~huge_size:64 ();
        Scheme.superpage ~base_tlb_entries:64 ~huge_tlb_entries:8 ~ram_pages:ram
          ~huge_size:64 ();
        Scheme.decoupled ~tlb_entries:64 ~ram_pages:ram ~w:64 ();
        Scheme.hybrid ~tlb_entries:64 ~ram_pages:ram ~chunk:4 ~w:64 ();
      ]
      trace
  in
  check Alcotest.int "six rows" 6 (List.length rows);
  List.iter
    (fun (name, ios, tlb, cost) ->
      check Alcotest.bool (name ^ ": cost consistent") true
        (cost >= float_of_int ios && ios >= 0 && tlb >= 0))
    rows;
  (* The decoupled scheme must beat physical-64 on this workload at
     eps = 0.01 (the paper's headline). *)
  let cost_of prefix =
    List.find_map
      (fun (name, _, _, cost) ->
        if String.length name >= String.length prefix
           && String.sub name 0 (String.length prefix) = prefix
        then Some cost
        else None)
      rows
  in
  let z = Option.get (cost_of "decoupled") in
  let p64 = Option.get (cost_of "physical-64") in
  check Alcotest.bool
    (Printf.sprintf "decoupled (%.1f) beats physical-64 (%.1f)" z p64)
    true (z < p64)

(* --- Always-go-left -------------------------------------------------------- *)

let test_left_greedy_validates () =
  let rng = Prng.create ~seed:5 () in
  Alcotest.check_raises "indivisible"
    (Invalid_argument "Strategy.left_greedy: bins must be divisible by d")
    (fun () -> ignore (Strategy.left_greedy rng ~d:3 ~bins:16))

let test_left_greedy_groups () =
  let rng = Prng.create ~seed:6 () in
  let bins = 16 in
  let s = Strategy.left_greedy rng ~d:2 ~bins in
  let g = Game.create ~bins () in
  (* With empty bins, ties go left: every ball lands in group 0. *)
  for ball = 0 to 49 do
    let p = s.Strategy.choose g ball in
    check Alcotest.bool "leftmost on tie" true (p.Strategy.bin < bins / 2);
    (* Don't place: keep all loads zero so ties persist. *)
    ignore p
  done

let test_left_greedy_balances () =
  let rng = Prng.create ~seed:7 () in
  let bins = 1024 in
  let s = Strategy.left_greedy rng ~d:2 ~bins in
  let g = Game.create ~bins () in
  let r =
    Runner.run ~game:g ~strategy:s (Adversary.arrivals ~m:(8 * bins))
  in
  (* Two-choice behaviour: max load stays near the average. *)
  check Alcotest.bool
    (Printf.sprintf "max load small (%d)" r.Runner.max_load_final)
    true
    (r.Runner.max_load_final <= 8 + 4)

(* --- Embedding workload ------------------------------------------------------ *)

let test_embedding_vectors_contiguous () =
  let rng = Prng.create ~seed:8 () in
  let w = Hpc.embedding_lookup ~batch:2 ~vector_pages:3 ~rows:100 rng in
  let trace = Workload.generate w 6 in
  (* Pages come in runs of 3 consecutive pages, aligned to vectors. *)
  for i = 0 to 1 do
    let base = trace.(i * 3) in
    check Alcotest.int "vector aligned" 0 (base mod 3);
    check Alcotest.int "second page" (base + 1) trace.((i * 3) + 1);
    check Alcotest.int "third page" (base + 2) trace.((i * 3) + 2)
  done

let test_embedding_skew () =
  let rng = Prng.create ~seed:9 () in
  let w = Hpc.embedding_lookup ~batch:8 ~vector_pages:1 ~rows:10_000 rng in
  let trace = Workload.generate w 50_000 in
  (* Zipf rows: the head row absorbs a macroscopic share of accesses. *)
  let head_hits =
    Array.fold_left (fun acc p -> if p = 0 then acc + 1 else acc) 0 trace
  in
  check Alcotest.bool
    (Printf.sprintf "head row hot (%d of 50k)" head_hits)
    true (head_hits > 2_000);
  Array.iter
    (fun p -> check Alcotest.bool "in table" true (p >= 0 && p < 10_000))
    trace

let () =
  Alcotest.run "atp.scheme"
    [
      ( "scheme",
        [
          Alcotest.test_case "physical = machine" `Quick test_scheme_physical_matches_machine;
          Alcotest.test_case "decoupled counts" `Quick test_scheme_decoupled_counts;
          Alcotest.test_case "reset via run" `Quick test_scheme_reset_via_run;
          Alcotest.test_case "compare all" `Quick test_scheme_compare_all;
        ] );
      ( "left-greedy",
        [
          Alcotest.test_case "validates" `Quick test_left_greedy_validates;
          Alcotest.test_case "ties go left" `Quick test_left_greedy_groups;
          Alcotest.test_case "balances" `Quick test_left_greedy_balances;
        ] );
      ( "embedding",
        [
          Alcotest.test_case "contiguous vectors" `Quick test_embedding_vectors_contiguous;
          Alcotest.test_case "skew" `Quick test_embedding_skew;
        ] );
    ]
