open Atp_tlb
open Atp_paging

let check = Alcotest.check

(* --- Fully associative TLB ------------------------------------------ *)

let test_tlb_hit_miss () =
  let t = Tlb.create ~entries:2 () in
  check Alcotest.(option int) "cold miss" None (Tlb.lookup t 1);
  ignore (Tlb.insert t 1 100);
  check Alcotest.(option int) "hit" (Some 100) (Tlb.lookup t 1);
  let s = Tlb.stats t in
  check Alcotest.int "lookups" 2 s.Tlb.lookups;
  check Alcotest.int "hits" 1 s.Tlb.hits;
  check Alcotest.int "misses" 1 s.Tlb.misses

let test_tlb_eviction_order () =
  let t = Tlb.create ~entries:2 () in
  ignore (Tlb.insert t 1 10);
  ignore (Tlb.insert t 2 20);
  ignore (Tlb.lookup t 1);
  (* LRU victim is 2. *)
  (match Tlb.insert t 3 30 with
   | Some (victim, payload) ->
     check Alcotest.int "victim key" 2 victim;
     check Alcotest.int "victim payload" 20 payload
   | None -> Alcotest.fail "expected eviction");
  check Alcotest.bool "1 survives" true (Tlb.mem t 1);
  check Alcotest.bool "2 gone" false (Tlb.mem t 2)

let test_tlb_insert_existing_refreshes () =
  let t = Tlb.create ~entries:2 () in
  ignore (Tlb.insert t 1 10);
  ignore (Tlb.insert t 2 20);
  (* Re-inserting 1 must not evict anyone and must refresh recency. *)
  check Alcotest.bool "no eviction" true (Tlb.insert t 1 11 = None);
  (match Tlb.insert t 3 30 with
   | Some (victim, _) -> check Alcotest.int "victim is 2" 2 victim
   | None -> Alcotest.fail "expected eviction");
  check Alcotest.(option int) "payload refreshed" (Some 11) (Tlb.peek t 1)

let test_tlb_update_silent () =
  let t = Tlb.create ~entries:2 () in
  ignore (Tlb.insert t 1 10);
  let before = Tlb.stats t in
  check Alcotest.bool "update present" true (Tlb.update t 1 99);
  check Alcotest.bool "update absent" false (Tlb.update t 7 0);
  let after = Tlb.stats t in
  check Alcotest.int "no stat change" before.Tlb.lookups after.Tlb.lookups;
  check Alcotest.(option int) "new payload" (Some 99) (Tlb.peek t 1)

let test_tlb_invalidate_and_flush () =
  let t = Tlb.create ~entries:4 () in
  ignore (Tlb.insert t 1 10);
  ignore (Tlb.insert t 2 20);
  check Alcotest.bool "invalidate" true (Tlb.invalidate t 1);
  check Alcotest.bool "gone" false (Tlb.mem t 1);
  check Alcotest.bool "invalidate absent" false (Tlb.invalidate t 1);
  Tlb.flush t;
  check Alcotest.int "flushed" 0 (Tlb.size t);
  (* Room for everyone again. *)
  ignore (Tlb.insert t 5 50);
  check Alcotest.bool "usable after flush" true (Tlb.mem t 5)

let test_tlb_peek_does_not_touch () =
  let t = Tlb.create ~entries:2 () in
  ignore (Tlb.insert t 1 10);
  ignore (Tlb.insert t 2 20);
  ignore (Tlb.peek t 1);
  (* 1 is still the LRU victim because peek didn't refresh it. *)
  match Tlb.insert t 3 30 with
  | Some (victim, _) -> check Alcotest.int "peek is silent" 1 victim
  | None -> Alcotest.fail "expected eviction"

let test_tlb_fifo_policy () =
  let t = Tlb.create ~policy:(module Fifo) ~entries:2 () in
  ignore (Tlb.insert t 1 10);
  ignore (Tlb.insert t 2 20);
  ignore (Tlb.lookup t 1);
  (* FIFO ignores the hit: 1 is still first in, first out. *)
  match Tlb.insert t 3 30 with
  | Some (victim, _) -> check Alcotest.int "fifo victim" 1 victim
  | None -> Alcotest.fail "expected eviction"

(* --- Set-associative TLB -------------------------------------------- *)

let test_set_assoc_geometry () =
  let t = Set_assoc.create ~sets:4 ~ways:2 () in
  check Alcotest.int "capacity" 8 (Set_assoc.capacity t);
  check Alcotest.int "sets" 4 (Set_assoc.sets t);
  check Alcotest.int "ways" 2 (Set_assoc.ways t)

let test_set_assoc_basic () =
  let t = Set_assoc.create ~sets:2 ~ways:2 () in
  check Alcotest.(option int) "cold" None (Set_assoc.lookup t 1);
  ignore (Set_assoc.insert t 1 10);
  check Alcotest.(option int) "hit" (Some 10) (Set_assoc.lookup t 1);
  check Alcotest.bool "invalidate" true (Set_assoc.invalidate t 1);
  check Alcotest.(option int) "gone" None (Set_assoc.lookup t 1)

let test_set_assoc_conflict_eviction () =
  (* Keys hashing to the same set conflict once past the way count,
     even though the TLB is mostly empty — the set-associativity
     penalty the fully associative model hides. *)
  let t = Set_assoc.create ~sets:8 ~ways:1 () in
  (* Find two keys in the same set. *)
  let key2 = ref (-1) in
  ignore (Set_assoc.insert t 0 0);
  (try
     for k = 1 to 1000 do
       ignore (Set_assoc.insert t k k);
       if Set_assoc.lookup t 0 = None then begin
         key2 := k;
         raise Exit
       end
     done
   with Exit -> ());
  check Alcotest.bool "conflict found" true (!key2 > 0)

let test_set_assoc_lru_within_set () =
  let t = Set_assoc.create ~sets:1 ~ways:2 () in
  ignore (Set_assoc.insert t 1 10);
  ignore (Set_assoc.insert t 2 20);
  ignore (Set_assoc.lookup t 1);
  match Set_assoc.insert t 3 30 with
  | Some (victim, _) -> check Alcotest.int "lru within set" 2 victim
  | None -> Alcotest.fail "expected eviction"

let test_set_assoc_size () =
  let t = Set_assoc.create ~sets:4 ~ways:2 () in
  for k = 0 to 19 do ignore (Set_assoc.insert t k k) done;
  check Alcotest.bool "size bounded" true (Set_assoc.size t <= 8)

(* --- Split TLB ------------------------------------------------------ *)

let test_split_levels () =
  let t =
    Split.create
      ~levels:[ { Split.shift = 0; entries = 4 }; { Split.shift = 9; entries = 2 } ]
      ()
  in
  check Alcotest.int "two levels" 2 (List.length (Split.levels t));
  (* Install a 2MiB-style translation covering pages 512..1023. *)
  ignore (Split.insert t ~shift:9 512 777);
  (match Split.lookup t 800 with
   | Some (payload, shift) ->
     check Alcotest.int "huge hit payload" 777 payload;
     check Alcotest.int "hit at huge level" 9 shift
   | None -> Alcotest.fail "expected huge-page hit");
  (* A base-page translation elsewhere. *)
  ignore (Split.insert t ~shift:0 3 33);
  (match Split.lookup t 3 with
   | Some (payload, shift) ->
     check Alcotest.int "base payload" 33 payload;
     check Alcotest.int "base level" 0 shift
   | None -> Alcotest.fail "expected base hit")

let test_split_larger_page_wins () =
  let t =
    Split.create
      ~levels:[ { Split.shift = 0; entries = 4 }; { Split.shift = 9; entries = 2 } ]
      ()
  in
  ignore (Split.insert t ~shift:0 600 1);
  ignore (Split.insert t ~shift:9 512 2);
  match Split.lookup t 600 with
  | Some (payload, shift) ->
    check Alcotest.int "huge page preferred" 2 payload;
    check Alcotest.int "shift" 9 shift
  | None -> Alcotest.fail "expected hit"

let test_split_invalidate () =
  let t =
    Split.create
      ~levels:[ { Split.shift = 0; entries = 4 }; { Split.shift = 9; entries = 2 } ]
      ()
  in
  ignore (Split.insert t ~shift:9 512 2);
  Split.invalidate_page t 700;
  check Alcotest.bool "huge entry shot down" true (Split.lookup t 513 = None)

let test_split_rejects_bad_shift () =
  let t = Split.create ~levels:[ { Split.shift = 0; entries = 4 } ] () in
  Alcotest.check_raises "unknown shift"
    (Invalid_argument "Split.insert: unknown shift") (fun () ->
      ignore (Split.insert t ~shift:3 0 0))

let test_split_duplicate_shifts_rejected () =
  Alcotest.check_raises "duplicate shifts"
    (Invalid_argument "Split.create: duplicate shifts") (fun () ->
      ignore
        (Split.create
           ~levels:
             [ { Split.shift = 0; entries = 4 }; { Split.shift = 0; entries = 2 } ]
           ()
          : int Split.t))

let () =
  Alcotest.run "atp.tlb"
    [
      ( "tlb",
        [
          Alcotest.test_case "hit/miss" `Quick test_tlb_hit_miss;
          Alcotest.test_case "eviction order" `Quick test_tlb_eviction_order;
          Alcotest.test_case "reinsert refreshes" `Quick test_tlb_insert_existing_refreshes;
          Alcotest.test_case "update silent" `Quick test_tlb_update_silent;
          Alcotest.test_case "invalidate/flush" `Quick test_tlb_invalidate_and_flush;
          Alcotest.test_case "peek silent" `Quick test_tlb_peek_does_not_touch;
          Alcotest.test_case "fifo policy" `Quick test_tlb_fifo_policy;
        ] );
      ( "set_assoc",
        [
          Alcotest.test_case "geometry" `Quick test_set_assoc_geometry;
          Alcotest.test_case "basic" `Quick test_set_assoc_basic;
          Alcotest.test_case "conflict" `Quick test_set_assoc_conflict_eviction;
          Alcotest.test_case "lru within set" `Quick test_set_assoc_lru_within_set;
          Alcotest.test_case "size bounded" `Quick test_set_assoc_size;
        ] );
      ( "split",
        [
          Alcotest.test_case "levels" `Quick test_split_levels;
          Alcotest.test_case "larger page wins" `Quick test_split_larger_page_wins;
          Alcotest.test_case "invalidate" `Quick test_split_invalidate;
          Alcotest.test_case "bad shift" `Quick test_split_rejects_bad_shift;
          Alcotest.test_case "duplicate shifts" `Quick test_split_duplicate_shifts_rejected;
        ] );
    ]
