test/test_multi.ml: Alcotest Array Asid Atp_paging Atp_tlb Atp_util Atp_workloads Hierarchy Hpc List Printf Prng Tlb Workload
