test/test_vm.ml: Alcotest Atp_memsim Atp_util Fun List Parallel Printf Prng Superpage Vmm
