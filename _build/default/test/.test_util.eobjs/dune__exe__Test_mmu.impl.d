test/test_mmu.ml: Alcotest Array Atp_memsim Atp_util Hashtbl List Nested Option Page_table Printf QCheck QCheck_alcotest Walker
