test/test_paging.ml: Alcotest Arc Array Atp_paging Atp_util Clock Fifo Format Gen Hashtbl Lfu List Lru Mru Opt Option Policy Printf Prng QCheck QCheck_alcotest Rand_policy Registry Sim Two_q
