test/test_core.ml: Alcotest Alloc Array Atp_core Atp_paging Atp_util Decoupled Encoding Hashtbl List Lru Option Params Policy Printf Prng QCheck QCheck_alcotest Sim Simulation
