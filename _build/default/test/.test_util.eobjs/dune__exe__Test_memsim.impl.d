test/test_memsim.ml: Alcotest Array Atp_memsim Atp_util Buddy List Machine Option Prng QCheck QCheck_alcotest
