test/test_workloads.ml: Alcotest Array Atp_util Atp_workloads Bimodal Filename Fun Graph500 Graph_walk Hashtbl Kronecker Option Prng Simple Sys Trace Workload
