test/test_iceberg.ml: Alcotest Atp_ballsbins Atp_tlb Atp_util Hashtbl Iceberg_table List Printf Prng QCheck QCheck_alcotest
