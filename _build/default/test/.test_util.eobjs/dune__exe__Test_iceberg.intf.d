test/test_iceberg.mli:
