test/test_ballsbins.mli:
