test/test_tlb.ml: Alcotest Atp_paging Atp_tlb Fifo List Set_assoc Split Tlb
