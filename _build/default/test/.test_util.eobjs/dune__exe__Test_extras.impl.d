test/test_extras.ml: Alcotest Array Atp_paging Atp_tlb Atp_util Fun Lirs List Lru Mattson Policy Printf Prng Sampler Sim Slru
