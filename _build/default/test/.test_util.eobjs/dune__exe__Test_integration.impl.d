test/test_integration.ml: Alcotest Alloc Atp_core Atp_memsim Atp_paging Atp_util Atp_workloads Bimodal Graph500 Graph_walk Kronecker List Lru Machine Params Policy Printf Prng Simulation Workload
