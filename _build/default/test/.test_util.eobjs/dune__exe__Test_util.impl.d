test/test_util.ml: Alcotest Array Atp_util Bitvec Format Hashing Hashtbl Heap Int64 Int_table List Lru_list Packed_array Page_list Printf Prng QCheck QCheck_alcotest Sampler Stats
