test/test_os.ml: Alcotest Array Atp_memsim Atp_util Atp_workloads Bimodal Printf Prng Smp Thp Workload
