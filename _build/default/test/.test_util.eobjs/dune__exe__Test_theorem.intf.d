test/test_theorem.mli:
