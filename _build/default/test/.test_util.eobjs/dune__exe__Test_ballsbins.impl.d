test/test_ballsbins.ml: Adversary Alcotest Array Atp_ballsbins Atp_util Game Hashtbl List Printf Prng QCheck QCheck_alcotest Runner Seq Strategy
