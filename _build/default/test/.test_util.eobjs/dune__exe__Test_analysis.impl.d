test/test_analysis.ml: Alcotest Array Atp_memsim Atp_paging Atp_util Atp_workloads Competitive Gen List Lru Machine Mix Policy Printf Prng QCheck QCheck_alcotest Sim Simple Workload
