test/test_scheme.ml: Adversary Alcotest Array Atp_ballsbins Atp_core Atp_memsim Atp_util Atp_workloads Bimodal Game Hpc List Option Printf Prng Runner Scheme Strategy String Workload
