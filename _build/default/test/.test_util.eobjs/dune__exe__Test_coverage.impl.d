test/test_coverage.ml: Alcotest Atp_paging Atp_util Atp_workloads Bimodal Format Graph_walk List Lru Mattson Opt Policy Prng Registry Seq Sim Simple Slots Stats String Workload
