open Atp_paging
open Atp_util

let check = Alcotest.check

let outcome : Policy.outcome Alcotest.testable =
  Alcotest.testable
    (fun ppf -> function
      | Policy.Hit -> Format.fprintf ppf "Hit"
      | Policy.Miss { evicted } ->
        Format.fprintf ppf "Miss(evicted=%s)"
          (match evicted with None -> "-" | Some p -> string_of_int p))
    ( = )

let all_policies : (module Policy.S) list = Registry.all

(* --- Generic invariants, run against every registered policy ------- *)

let generic_capacity_respected (module P : Policy.S) () =
  let rng = Prng.create ~seed:1 () in
  let t = P.create ~rng ~capacity:4 () in
  for i = 0 to 99 do
    ignore (P.access t (i mod 13))
  done;
  check Alcotest.bool
    (P.name ^ ": size within capacity")
    true
    (P.size t <= 4)

let generic_hit_iff_resident (module P : Policy.S) () =
  let rng = Prng.create ~seed:2 () in
  let t = P.create ~rng ~capacity:8 () in
  let walk = Prng.create ~seed:3 () in
  for _ = 0 to 499 do
    let page = Prng.int walk 20 in
    let was_resident = P.mem t page in
    match P.access t page with
    | Policy.Hit ->
      check Alcotest.bool (P.name ^ ": hit implies resident") true was_resident
    | Policy.Miss _ ->
      check Alcotest.bool (P.name ^ ": miss implies absent") false was_resident
  done

let generic_miss_inserts (module P : Policy.S) () =
  let rng = Prng.create ~seed:4 () in
  let t = P.create ~rng ~capacity:3 () in
  for page = 0 to 9 do
    ignore (P.access t page);
    check Alcotest.bool (P.name ^ ": page resident after access") true
      (P.mem t page)
  done

let generic_eviction_consistency (module P : Policy.S) () =
  let rng = Prng.create ~seed:5 () in
  let t = P.create ~rng ~capacity:3 () in
  let walk = Prng.create ~seed:6 () in
  for _ = 0 to 499 do
    let page = Prng.int walk 11 in
    match P.access t page with
    | Policy.Hit -> ()
    | Policy.Miss { evicted = None } -> ()
    | Policy.Miss { evicted = Some victim } ->
      check Alcotest.bool (P.name ^ ": victim no longer resident") false
        (P.mem t victim);
      check Alcotest.bool (P.name ^ ": victim differs from filled page") true
        (victim <> page)
  done

let generic_remove (module P : Policy.S) () =
  let rng = Prng.create ~seed:7 () in
  let t = P.create ~rng ~capacity:4 () in
  ignore (P.access t 1);
  ignore (P.access t 2);
  check Alcotest.bool (P.name ^ ": remove resident") true (P.remove t 1);
  check Alcotest.bool (P.name ^ ": removed gone") false (P.mem t 1);
  check Alcotest.bool (P.name ^ ": remove absent") false (P.remove t 99)

let generic_resident_matches_size (module P : Policy.S) () =
  let rng = Prng.create ~seed:8 () in
  let t = P.create ~rng ~capacity:5 () in
  let walk = Prng.create ~seed:9 () in
  for _ = 0 to 199 do
    ignore (P.access t (Prng.int walk 17))
  done;
  let r = P.resident t in
  check Alcotest.int (P.name ^ ": resident list length") (P.size t)
    (List.length r);
  check Alcotest.int
    (P.name ^ ": resident list distinct")
    (List.length r)
    (List.length (List.sort_uniq compare r));
  List.iter
    (fun page -> check Alcotest.bool (P.name ^ ": listed page is resident") true (P.mem t page))
    r

let generic_suite p =
  let (module P : Policy.S) = p in
  ( P.name,
    [
      Alcotest.test_case "capacity" `Quick (generic_capacity_respected p);
      Alcotest.test_case "hit iff resident" `Quick (generic_hit_iff_resident p);
      Alcotest.test_case "miss inserts" `Quick (generic_miss_inserts p);
      Alcotest.test_case "eviction consistent" `Quick (generic_eviction_consistency p);
      Alcotest.test_case "remove" `Quick (generic_remove p);
      Alcotest.test_case "resident list" `Quick (generic_resident_matches_size p);
    ] )

(* --- Policy-specific behaviour ------------------------------------ *)

let test_lru_evicts_least_recent () =
  let t = Lru.create ~capacity:3 () in
  ignore (Lru.access t 1);
  ignore (Lru.access t 2);
  ignore (Lru.access t 3);
  ignore (Lru.access t 1);
  (* Now LRU order (most..least) is 1 3 2; inserting 4 evicts 2. *)
  check outcome "evicts 2" (Policy.Miss { evicted = Some 2 }) (Lru.access t 4)

let test_fifo_ignores_hits () =
  let t = Fifo.create ~capacity:3 () in
  ignore (Fifo.access t 1);
  ignore (Fifo.access t 2);
  ignore (Fifo.access t 3);
  ignore (Fifo.access t 1);
  (* 1 is oldest despite the recent hit. *)
  check outcome "evicts 1" (Policy.Miss { evicted = Some 1 }) (Fifo.access t 4)

let test_mru_evicts_most_recent () =
  let t = Mru.create ~capacity:3 () in
  ignore (Mru.access t 1);
  ignore (Mru.access t 2);
  ignore (Mru.access t 3);
  check outcome "evicts 3" (Policy.Miss { evicted = Some 3 }) (Mru.access t 4)

let test_clock_second_chance () =
  let t = Clock.create ~capacity:3 () in
  ignore (Clock.access t 1);
  ignore (Clock.access t 2);
  ignore (Clock.access t 3);
  (* All ref bits set; the sweep clears 1's and 2's and 3's bits, wraps,
     and takes frame of 1. *)
  check outcome "evicts 1" (Policy.Miss { evicted = Some 1 }) (Clock.access t 4);
  (* Now touching 2 gives it a second chance over 3. *)
  ignore (Clock.access t 2);
  check outcome "evicts 3" (Policy.Miss { evicted = Some 3 }) (Clock.access t 5)

let test_lfu_evicts_least_frequent () =
  let t = Lfu.create ~capacity:3 () in
  ignore (Lfu.access t 1);
  ignore (Lfu.access t 1);
  ignore (Lfu.access t 2);
  ignore (Lfu.access t 2);
  ignore (Lfu.access t 3);
  check outcome "evicts 3 (freq 1)" (Policy.Miss { evicted = Some 3 })
    (Lfu.access t 4)

let test_lfu_tie_breaks_oldest () =
  let t = Lfu.create ~capacity:2 () in
  ignore (Lfu.access t 1);
  ignore (Lfu.access t 2);
  check outcome "tie evicts older insert" (Policy.Miss { evicted = Some 1 })
    (Lfu.access t 3)

let test_two_q_promotion () =
  let t = Two_q.create ~capacity:8 () in
  (* Fill a1in (kin = 2) beyond its target so pages spill to the ghost
     list, then re-reference a ghost: it must come back resident. *)
  for page = 0 to 7 do
    ignore (Two_q.access t page)
  done;
  ignore (Two_q.access t 100);
  (* page 0 fell out of a1in into a1out by now *)
  check Alcotest.bool "evicted from a1in" false (Two_q.mem t 0);
  (match Two_q.access t 0 with
   | Policy.Hit -> Alcotest.fail "expected a miss for ghost page"
   | Policy.Miss _ -> ());
  check Alcotest.bool "promoted" true (Two_q.mem t 0)

let test_arc_adapts () =
  let t = Arc.create ~capacity:4 () in
  (* Straight fill then ghost hit: page must return. *)
  for page = 0 to 5 do
    ignore (Arc.access t page)
  done;
  check Alcotest.bool "size bounded" true (Arc.size t <= 4);
  (* 0 and 1 were evicted to b1; touching 0 is a ghost hit. *)
  (match Arc.access t 0 with
   | Policy.Hit -> Alcotest.fail "0 should not be resident"
   | Policy.Miss _ -> ());
  check Alcotest.bool "ghost promoted" true (Arc.mem t 0)

let test_random_evicts_uniformly () =
  let rng = Prng.create ~seed:11 () in
  let counts = Hashtbl.create 8 in
  for _ = 1 to 2_000 do
    let t = Rand_policy.create ~rng ~capacity:3 () in
    ignore (Rand_policy.access t 1);
    ignore (Rand_policy.access t 2);
    ignore (Rand_policy.access t 3);
    match Rand_policy.access t 4 with
    | Policy.Miss { evicted = Some v } ->
      Hashtbl.replace counts v (1 + Option.value (Hashtbl.find_opt counts v) ~default:0)
    | _ -> Alcotest.fail "expected an eviction"
  done;
  List.iter
    (fun v ->
      let c = Option.value (Hashtbl.find_opt counts v) ~default:0 in
      check Alcotest.bool
        (Printf.sprintf "victim %d drawn often" v)
        true (c > 500))
    [ 1; 2; 3 ]

(* --- OPT ----------------------------------------------------------- *)

let test_opt_beats_lru_on_loop () =
  (* Cyclic scan of k+1 pages through a k-cache: LRU misses always,
     OPT misses ~1/k of the time. *)
  let n = 600 in
  let trace = Array.init n (fun i -> i mod 4) in
  let lru = Policy.instantiate (module Lru) ~capacity:3 () in
  let lru_stats = Sim.run lru trace in
  check Alcotest.int "LRU thrashes" n lru_stats.Sim.misses;
  let opt_misses = Opt.misses ~capacity:3 trace in
  check Alcotest.bool "OPT far better" true (opt_misses < (n / 2));
  check Alcotest.bool "OPT at least compulsory" true (opt_misses >= 4)

let test_opt_exact_small_case () =
  (* Belady on a classic example:
     trace 1 2 3 4 1 2 5 1 2 3 4 5, capacity 3 -> 7 misses. *)
  let trace = [| 1; 2; 3; 4; 1; 2; 5; 1; 2; 3; 4; 5 |] in
  check Alcotest.int "textbook Belady count" 7 (Opt.misses ~capacity:3 trace)

let test_opt_rejects_deviation () =
  let t = Opt.create ~capacity:2 [| 1; 2; 3 |] in
  ignore (Opt.access t 1);
  Alcotest.check_raises "deviation"
    (Invalid_argument "Opt.access: request deviates from the trace") (fun () ->
      ignore (Opt.access t 3))

let prop_opt_no_worse_than_online =
  QCheck.Test.make ~name:"OPT <= every online policy" ~count:60
    QCheck.(pair (int_range 1 6) (list_of_size (Gen.return 120) (int_bound 12)))
    (fun (capacity, pages) ->
      let trace = Array.of_list pages in
      Array.length trace = 0
      ||
      let opt = Opt.misses ~capacity trace in
      List.for_all
        (fun (module P : Policy.S) ->
          (* Randomized policies are compared in expectation; a single
             seeded run suffices because OPT's bound is per-sequence. *)
          let rng = Prng.create ~seed:99 () in
          let inst = Policy.instantiate (module P) ~rng ~capacity () in
          let stats = Sim.run inst trace in
          opt <= stats.Sim.misses)
        all_policies)

let prop_lru_augmentation_monotone =
  QCheck.Test.make ~name:"LRU misses never increase with capacity" ~count:60
    QCheck.(pair (int_range 1 8) (list_of_size (Gen.return 150) (int_bound 20)))
    (fun (capacity, pages) ->
      let trace = Array.of_list pages in
      let misses c =
        (Sim.run (Policy.instantiate (module Lru) ~capacity:c ()) trace).Sim.misses
      in
      misses (capacity + 1) <= misses capacity)

(* --- Sim ------------------------------------------------------------ *)

let test_sim_counts () =
  let trace = [| 1; 2; 1; 3; 1; 4 |] in
  let inst = Policy.instantiate (module Lru) ~capacity:2 () in
  let stats = Sim.run inst trace in
  check Alcotest.int "accesses" 6 stats.Sim.accesses;
  check Alcotest.int "hits + misses = accesses" 6
    (stats.Sim.hits + stats.Sim.misses);
  (* 1,2 miss; 1 hit; 3 miss evicting; 1 hit; 4 miss evicting *)
  check Alcotest.int "misses" 4 stats.Sim.misses;
  check Alcotest.int "evictions" 2 stats.Sim.evictions;
  check (Alcotest.float 1e-9) "miss rate" (4.0 /. 6.0) (Sim.miss_rate stats)

let test_sim_seq_matches_array () =
  let trace = Array.init 500 (fun i -> i * 7 mod 23) in
  let a = Sim.run (Policy.instantiate (module Lru) ~capacity:5 ()) trace in
  let b =
    Sim.run_seq
      (Policy.instantiate (module Lru) ~capacity:5 ())
      (Array.to_seq trace)
  in
  check Alcotest.int "same misses" a.Sim.misses b.Sim.misses

let test_registry () =
  check Alcotest.bool "finds lru" true (Registry.find "lru" <> None);
  check Alcotest.bool "rejects unknown" true (Registry.find "belady" = None);
  check Alcotest.int "ten policies" 10 (List.length Registry.all);
  Alcotest.check_raises "find_exn message"
    (Invalid_argument
       "unknown policy \"nope\" (known: lru, fifo, clock, lfu, mru, random, \
        2q, arc, slru, lirs)") (fun () -> ignore (Registry.find_exn "nope"))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "atp.paging"
    (List.map generic_suite all_policies
    @ [
        ( "lru/fifo/mru/clock",
          [
            Alcotest.test_case "lru order" `Quick test_lru_evicts_least_recent;
            Alcotest.test_case "fifo order" `Quick test_fifo_ignores_hits;
            Alcotest.test_case "mru order" `Quick test_mru_evicts_most_recent;
            Alcotest.test_case "clock second chance" `Quick test_clock_second_chance;
          ] );
        ( "lfu/2q/arc/random",
          [
            Alcotest.test_case "lfu frequency" `Quick test_lfu_evicts_least_frequent;
            Alcotest.test_case "lfu tie" `Quick test_lfu_tie_breaks_oldest;
            Alcotest.test_case "2q promotion" `Quick test_two_q_promotion;
            Alcotest.test_case "arc ghost hit" `Quick test_arc_adapts;
            Alcotest.test_case "random uniform victim" `Quick test_random_evicts_uniformly;
          ] );
        ( "opt",
          Alcotest.test_case "beats LRU on loop" `Quick test_opt_beats_lru_on_loop
          :: Alcotest.test_case "textbook example" `Quick test_opt_exact_small_case
          :: Alcotest.test_case "rejects deviation" `Quick test_opt_rejects_deviation
          :: qsuite [ prop_opt_no_worse_than_online; prop_lru_augmentation_monotone ]
        );
        ( "sim",
          [
            Alcotest.test_case "counts" `Quick test_sim_counts;
            Alcotest.test_case "seq matches array" `Quick test_sim_seq_matches_array;
            Alcotest.test_case "registry" `Quick test_registry;
          ] );
      ])
