type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 finalizer: the standard 64-bit avalanche mixer. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let splitmix_next state =
  state := Int64.add !state golden_gamma;
  mix64 !state

let default_seed = 0x5DEECE66D

let create ?(seed = default_seed) () =
  let sm = ref (Int64.of_int seed) in
  let s0 = splitmix_next sm in
  let s1 = splitmix_next sm in
  let s2 = splitmix_next sm in
  let s3 = splitmix_next sm in
  (* xoshiro256** requires a nonzero state; SplitMix64 outputs are zero
     for at most one step, so forcing one lane nonzero is enough. *)
  let s0 = if Int64.equal s0 0L && Int64.equal s1 0L
              && Int64.equal s2 0L && Int64.equal s3 0L
           then 1L else s0 in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next_int64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (next_int64 t) in
  create ~seed ()

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  if n land (n - 1) = 0 then bits t land (n - 1)
  else begin
    (* Rejection sampling on the top of the 62-bit range to kill
       modulo bias. *)
    let limit = 0x3FFF_FFFF_FFFF_FFFF / n * n in
    let rec draw () =
      let v = bits t in
      if v < limit then v mod n else draw ()
    in
    draw ()
  end

let int_in_range t ~lo ~hi =
  if lo > hi then invalid_arg "Prng.int_in_range: lo > hi";
  lo + int t (hi - lo + 1)

let float t =
  (* 53 high bits, scaled to [0,1). *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int v *. 0x1.0p-53

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
