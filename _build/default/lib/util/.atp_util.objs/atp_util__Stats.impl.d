lib/util/stats.ml: Array Buffer Format String
