lib/util/page_list.mli:
