lib/util/heap.mli:
