lib/util/packed_array.ml: Bytes Char
