lib/util/hashing.mli: Prng
