lib/util/page_list.ml: Hashtbl List Option
