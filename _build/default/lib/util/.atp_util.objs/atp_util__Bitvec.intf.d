lib/util/bitvec.mli:
