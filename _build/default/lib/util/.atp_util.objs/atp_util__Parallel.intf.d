lib/util/parallel.mli:
