lib/util/bitvec.ml: Bytes Char
