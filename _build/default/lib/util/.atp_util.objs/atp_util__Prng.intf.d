lib/util/prng.mli:
