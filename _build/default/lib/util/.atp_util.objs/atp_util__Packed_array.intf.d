lib/util/packed_array.mli: Bytes
