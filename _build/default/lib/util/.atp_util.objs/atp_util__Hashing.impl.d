lib/util/hashing.ml: Array Int64 Prng
