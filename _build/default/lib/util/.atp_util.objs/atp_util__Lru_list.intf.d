lib/util/lru_list.mli:
