lib/util/sampler.mli: Prng
