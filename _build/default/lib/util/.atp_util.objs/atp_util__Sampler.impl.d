lib/util/sampler.ml: Array Prng Stack
