lib/util/int_table.mli:
