lib/util/lru_list.ml: Array List
