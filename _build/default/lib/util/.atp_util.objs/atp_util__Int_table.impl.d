lib/util/int_table.ml: Array
