type t = Prng.t -> int

let uniform ~n =
  if n <= 0 then invalid_arg "Sampler.uniform: empty support";
  fun rng -> Prng.int rng n

let bounded_pareto ~alpha ~n =
  if alpha <= 0.0 then invalid_arg "Sampler.bounded_pareto: alpha must be positive";
  if n <= 0 then invalid_arg "Sampler.bounded_pareto: empty support";
  let l = 1.0 and h = float_of_int n in
  let ratio = (l /. h) ** alpha in
  fun rng ->
    let u = Prng.float rng in
    (* Inverse CDF of the bounded Pareto(l, h, alpha). *)
    let x = l /. ((1.0 -. u *. (1.0 -. ratio)) ** (1.0 /. alpha)) in
    let i = int_of_float x - 1 in
    if i < 0 then 0 else if i >= n then n - 1 else i

(* Rejection-inversion sampling for the Zipf distribution, after
   Hörmann & Derflinger (1996).  Exact for any support size without
   precomputing the harmonic normalizer. *)
let zipf ~s ~n =
  if n <= 0 then invalid_arg "Sampler.zipf: empty support";
  if s <= 0.0 then invalid_arg "Sampler.zipf: exponent must be positive";
  if n = 1 then fun _ -> 0
  else begin
    let nf = float_of_int n in
    let h x = if abs_float (s -. 1.0) < 1e-12 then log x
              else (x ** (1.0 -. s) -. 1.0) /. (1.0 -. s) in
    let h_inv y = if abs_float (s -. 1.0) < 1e-12 then exp y
                  else (1.0 +. y *. (1.0 -. s)) ** (1.0 /. (1.0 -. s)) in
    let h_x1 = h 1.5 -. 1.0 in
    let h_n = h (nf +. 0.5) in
    (* Quick-accept threshold from the Apache Commons implementation of
       the same algorithm. *)
    let s_const = 2.0 -. h_inv (h 2.5 -. (2.0 ** (-. s))) in
    fun rng ->
      let rec draw () =
        let u = h_n +. Prng.float rng *. (h_x1 -. h_n) in
        let x = h_inv u in
        let k = floor (x +. 0.5) in
        let k = if k < 1.0 then 1.0 else if k > nf then nf else k in
        if k -. x <= s_const || u >= h (k +. 0.5) -. (k ** (-. s))
        then int_of_float k - 1
        else draw ()
      in
      draw ()
  end

type discrete = {
  prob : float array;   (* acceptance probability per column *)
  alias : int array;    (* fallback index per column *)
}

let discrete weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Sampler.discrete: empty weights";
  let total = Array.fold_left (fun acc w ->
    if w < 0.0 then invalid_arg "Sampler.discrete: negative weight";
    acc +. w) 0.0 weights
  in
  if total <= 0.0 then invalid_arg "Sampler.discrete: all weights zero";
  let scaled = Array.map (fun w -> w *. float_of_int n /. total) weights in
  let prob = Array.make n 1.0 in
  let alias = Array.init n (fun i -> i) in
  let small = Stack.create () and large = Stack.create () in
  Array.iteri (fun i p -> Stack.push i (if p < 1.0 then small else large)) scaled;
  while not (Stack.is_empty small) && not (Stack.is_empty large) do
    let s = Stack.pop small and l = Stack.pop large in
    prob.(s) <- scaled.(s);
    alias.(s) <- l;
    scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.0;
    Stack.push l (if scaled.(l) < 1.0 then small else large)
  done;
  (* Leftovers are numerically 1.0. *)
  Stack.iter (fun i -> prob.(i) <- 1.0) small;
  Stack.iter (fun i -> prob.(i) <- 1.0) large;
  { prob; alias }

let sample_discrete d rng =
  let n = Array.length d.prob in
  let col = Prng.int rng n in
  if Prng.float rng < d.prob.(col) then col else d.alias.(col)

let mixture branches =
  if Array.length branches = 0 then invalid_arg "Sampler.mixture: no branches";
  let weights = Array.map fst branches in
  let pick = discrete weights in
  fun rng ->
    let branch = sample_discrete pick rng in
    (snd branches.(branch)) rng
