type t = { data : Bytes.t; width : int; length : int }

let bytes_for ~width ~length = (width * length + 7) / 8

let create ~width ~length =
  if width < 1 || width > 48 then invalid_arg "Packed_array.create: width must be in 1..48";
  if length < 0 then invalid_arg "Packed_array.create: negative length";
  { data = Bytes.make (bytes_for ~width ~length) '\000'; width; length }

let width t = t.width

let length t = t.length

let max_value t = (1 lsl t.width) - 1

let total_bits t = t.width * t.length

let check t i =
  if i < 0 || i >= t.length then invalid_arg "Packed_array: index out of bounds"

(* Elements straddle byte boundaries; assemble/spread byte by byte. *)
let get t i =
  check t i;
  let bit = i * t.width in
  let first = bit lsr 3 in
  let offset = bit land 7 in
  let needed = t.width + offset in
  let nbytes = (needed + 7) lsr 3 in
  let acc = ref 0 in
  for j = nbytes - 1 downto 0 do
    acc := (!acc lsl 8) lor Char.code (Bytes.unsafe_get t.data (first + j))
  done;
  (!acc lsr offset) land ((1 lsl t.width) - 1)

let set t i v =
  check t i;
  if v < 0 || v > max_value t then invalid_arg "Packed_array.set: value out of range";
  let bit = i * t.width in
  let first = bit lsr 3 in
  let offset = bit land 7 in
  let needed = t.width + offset in
  let nbytes = (needed + 7) lsr 3 in
  let acc = ref 0 in
  for j = nbytes - 1 downto 0 do
    acc := (!acc lsl 8) lor Char.code (Bytes.unsafe_get t.data (first + j))
  done;
  let mask = ((1 lsl t.width) - 1) lsl offset in
  let acc = (!acc land lnot mask) lor (v lsl offset) in
  let acc = ref acc in
  for j = 0 to nbytes - 1 do
    Bytes.unsafe_set t.data (first + j) (Char.unsafe_chr (!acc land 0xFF));
    acc := !acc lsr 8
  done

let copy t = { t with data = Bytes.copy t.data }

let blit_to_bytes t = Bytes.copy t.data

let of_bytes ~width ~length data =
  if width < 1 || width > 48 then invalid_arg "Packed_array.of_bytes: bad width";
  if Bytes.length data <> bytes_for ~width ~length then
    invalid_arg "Packed_array.of_bytes: size mismatch";
  { data = Bytes.copy data; width; length }
