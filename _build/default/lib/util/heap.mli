(** A polymorphic binary min-heap.

    Used with lazy deletion by the LFU policy (priority = frequency)
    and by Belady's OPT (priority = negated next-use time). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option

val pop : 'a t -> 'a option

val clear : 'a t -> unit
