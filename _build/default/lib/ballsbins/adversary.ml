open Atp_util

type op =
  | Insert of int
  | Delete of int

let arrivals ~m = Seq.init m (fun i -> Insert i)

(* A resizable pool of live ball ids supporting O(1) uniform pick and
   swap-remove. *)
module Pool = struct
  type t = { mutable ids : int array; mutable size : int }

  let create () = { ids = Array.make 16 0; size = 0 }

  let add t id =
    if t.size = Array.length t.ids then begin
      let n = Array.make (2 * t.size) 0 in
      Array.blit t.ids 0 n 0 t.size;
      t.ids <- n
    end;
    t.ids.(t.size) <- id;
    t.size <- t.size + 1

  let pick_and_remove t rng =
    let i = Prng.int rng t.size in
    let id = t.ids.(i) in
    t.ids.(i) <- t.ids.(t.size - 1);
    t.size <- t.size - 1;
    id
end

let churn rng ~m ~steps ~fresh =
  let fill = Seq.init m (fun i -> Insert i) in
  (* State threaded lazily: (pool of live ids, recycled ids, next fresh id). *)
  let pool = Pool.create () in
  for i = 0 to m - 1 do Pool.add pool i done;
  let next_id = ref m in
  let recycled = Queue.create () in
  let step _ =
    let victim = Pool.pick_and_remove pool rng in
    let incoming =
      if fresh then begin
        let id = !next_id in
        incr next_id;
        id
      end
      else begin
        Queue.push victim recycled;
        (* Recycle an id deleted a while ago, not necessarily the one
           just removed, so re-insertions interleave. *)
        if Queue.length recycled > 8 then Queue.pop recycled
        else begin
          let id = !next_id in
          incr next_id;
          id
        end
      end
    in
    Pool.add pool incoming;
    List.to_seq [ Delete victim; Insert incoming ]
  in
  Seq.append fill (Seq.concat_map step (Seq.init steps (fun i -> i)))

let fifo_churn ~m ~steps =
  let fill = Seq.init m (fun i -> Insert i) in
  let step i = List.to_seq [ Delete i; Insert (m + i) ] in
  Seq.append fill (Seq.concat_map step (Seq.init steps (fun i -> i)))

let sliding_window ~m ~universe ~steps rng =
  if universe < m then invalid_arg "Adversary.sliding_window: universe too small";
  (* LRU over requested pages: the live set is the m most recent
     distinct pages. *)
  let lru = Page_list.create () in
  let step _ =
    let page = Prng.int rng universe in
    if Page_list.mem lru page then begin
      (* Refresh recency: stability forbids moving a placed ball, so
         model the refresh as delete + reinsert of the same id. *)
      ignore (Page_list.remove lru page);
      Page_list.push_front lru page;
      List.to_seq [ Delete page; Insert page ]
    end
    else begin
      Page_list.push_front lru page;
      if Page_list.length lru > m then begin
        match Page_list.pop_back lru with
        | None -> assert false
        | Some victim -> List.to_seq [ Delete victim; Insert page ]
      end
      else List.to_seq [ Insert page ]
    end
  in
  Seq.concat_map step (Seq.init steps (fun i -> i))
