open Atp_util

type t = {
  bins : int;
  layers : int;
  layer_loads : int array;     (* layer * bins + bin *)
  total : int array;           (* per-bin load across layers *)
  ball_bin : Int_table.t;
  ball_layer : Int_table.t;
  mutable balls : int;
  (* Histogram of bin loads, for O(1) max-load maintenance. *)
  mutable load_count : int array;
  mutable current_max : int;
}

let create ?(layers = 1) ~bins () =
  if bins < 1 then invalid_arg "Game.create: need at least one bin";
  if layers < 1 then invalid_arg "Game.create: need at least one layer";
  {
    bins;
    layers;
    layer_loads = Array.make (layers * bins) 0;
    total = Array.make bins 0;
    ball_bin = Int_table.create ();
    ball_layer = Int_table.create ();
    balls = 0;
    load_count = (let c = Array.make 8 0 in c.(0) <- bins; c);
    current_max = 0;
  }

let bins t = t.bins

let layers t = t.layers

let balls t = t.balls

let check_bin t bin =
  if bin < 0 || bin >= t.bins then invalid_arg "Game: bin out of range"

let check_layer t layer =
  if layer < 0 || layer >= t.layers then invalid_arg "Game: layer out of range"

let load t bin =
  check_bin t bin;
  t.total.(bin)

let layer_load t ~layer bin =
  check_bin t bin;
  check_layer t layer;
  t.layer_loads.(layer * t.bins + bin)

let max_load t = t.current_max

let bin_of t ball = Int_table.find t.ball_bin ball

let layer_of t ball = Int_table.find t.ball_layer ball

let ensure_count_capacity t load =
  let cap = Array.length t.load_count in
  if load >= cap then begin
    let ncap = max (2 * cap) (load + 1) in
    let narr = Array.make ncap 0 in
    Array.blit t.load_count 0 narr 0 cap;
    t.load_count <- narr
  end

let bump_load t bin delta =
  let old_load = t.total.(bin) in
  let new_load = old_load + delta in
  ensure_count_capacity t new_load;
  t.load_count.(old_load) <- t.load_count.(old_load) - 1;
  t.load_count.(new_load) <- t.load_count.(new_load) + 1;
  t.total.(bin) <- new_load;
  if new_load > t.current_max then t.current_max <- new_load
  else if old_load = t.current_max && t.load_count.(old_load) = 0 then begin
    let m = ref t.current_max in
    while !m > 0 && t.load_count.(!m) = 0 do decr m done;
    t.current_max <- !m
  end

let place t ~ball ~bin ~layer =
  check_bin t bin;
  check_layer t layer;
  if Int_table.mem t.ball_bin ball then
    invalid_arg "Game.place: ball already present (stability violation)";
  Int_table.set t.ball_bin ball bin;
  Int_table.set t.ball_layer ball layer;
  t.layer_loads.(layer * t.bins + bin) <- t.layer_loads.(layer * t.bins + bin) + 1;
  bump_load t bin 1;
  t.balls <- t.balls + 1

let remove t ~ball =
  match Int_table.find t.ball_bin ball with
  | None -> invalid_arg "Game.remove: ball not present"
  | Some bin ->
    let layer = Int_table.find_exn t.ball_layer ball in
    ignore (Int_table.remove t.ball_bin ball);
    ignore (Int_table.remove t.ball_layer ball);
    t.layer_loads.(layer * t.bins + bin) <- t.layer_loads.(layer * t.bins + bin) - 1;
    bump_load t bin (-1);
    t.balls <- t.balls - 1;
    bin

let loads t = Array.copy t.total
