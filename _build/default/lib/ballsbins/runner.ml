open Atp_util

type result = {
  ops : int;
  inserts : int;
  deletes : int;
  max_load_ever : int;
  max_load_final : int;
  avg_load_final : float;
  failed_balls : int;
  peak_balls : int;
}

let run ?(bin_capacity = max_int) ~game ~strategy ops =
  let inserts = ref 0 in
  let deletes = ref 0 in
  let max_ever = ref 0 in
  let failed = ref 0 in
  let peak = ref 0 in
  (* Balls labeled failed at insertion; the label sticks for the ball's
     lifetime but failed balls don't count toward later failure
     checks (they are "like any other ball" for the game itself, but
     the capacity test counts non-failed occupants). *)
  let failed_set = Int_table.create () in
  let non_failed_load = Int_table.create () in
  let bump bin delta =
    let current = Option.value (Int_table.find non_failed_load bin) ~default:0 in
    Int_table.set non_failed_load bin (current + delta)
  in
  Seq.iter
    (fun op ->
      match op with
      | Adversary.Insert ball ->
        incr inserts;
        let { Strategy.bin; layer } = strategy.Strategy.choose game ball in
        Game.place game ~ball ~bin ~layer;
        let occupancy =
          Option.value (Int_table.find non_failed_load bin) ~default:0
        in
        if occupancy >= bin_capacity then begin
          incr failed;
          Int_table.set failed_set ball 1
        end
        else bump bin 1;
        if Game.max_load game > !max_ever then max_ever := Game.max_load game;
        if Game.balls game > !peak then peak := Game.balls game
      | Adversary.Delete ball ->
        incr deletes;
        let bin = Game.remove game ~ball in
        if Int_table.remove failed_set ball then ()
        else bump bin (-1))
    ops;
  let final_balls = Game.balls game in
  {
    ops = !inserts + !deletes;
    inserts = !inserts;
    deletes = !deletes;
    max_load_ever = !max_ever;
    max_load_final = Game.max_load game;
    avg_load_final = float_of_int final_balls /. float_of_int (Game.bins game);
    failed_balls = !failed;
    peak_balls = !peak;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "ops=%a inserts=%a deletes=%a max-load(ever)=%d max-load(final)=%d \
     avg-load(final)=%.2f failed=%a peak-balls=%a"
    Stats.pp_count r.ops Stats.pp_count r.inserts Stats.pp_count r.deletes
    r.max_load_ever r.max_load_final r.avg_load_final Stats.pp_count
    r.failed_balls Stats.pp_count r.peak_balls
