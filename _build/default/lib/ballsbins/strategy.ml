open Atp_util

type placement = { bin : int; layer : int }

type t = {
  name : string;
  k : int;
  choose : Game.t -> int -> placement;
}

let front_yard = 0

let back_yard = 1

let one_choice rng ~bins =
  let fam = Hashing.family rng ~k:1 ~range:bins in
  {
    name = "one-choice";
    k = 1;
    choose = (fun _game ball -> { bin = Hashing.apply fam 0 ball; layer = 0 });
  }

let greedy_pick game fam ~first ~count ~layer ball =
  let best = ref (Hashing.apply fam first ball) in
  let best_load = ref (Game.layer_load game ~layer !best) in
  for i = first + 1 to first + count - 1 do
    let candidate = Hashing.apply fam i ball in
    let load = Game.layer_load game ~layer candidate in
    if load < !best_load then begin
      best := candidate;
      best_load := load
    end
  done;
  !best

let greedy rng ~d ~bins =
  if d < 1 then invalid_arg "Strategy.greedy: d must be at least 1";
  let fam = Hashing.family rng ~k:d ~range:bins in
  {
    name = Printf.sprintf "greedy[%d]" d;
    k = d;
    choose =
      (fun game ball ->
        { bin = greedy_pick game fam ~first:0 ~count:d ~layer:0 ball; layer = 0 });
  }

let left_greedy rng ~d ~bins =
  if d < 1 then invalid_arg "Strategy.left_greedy: d must be at least 1";
  if bins mod d <> 0 then
    invalid_arg "Strategy.left_greedy: bins must be divisible by d";
  let group_size = bins / d in
  let fam = Hashing.family rng ~k:d ~range:group_size in
  {
    name = Printf.sprintf "left-greedy[%d]" d;
    k = d;
    choose =
      (fun game ball ->
        (* Candidate i lives in group i; strict inequality keeps ties
           in the leftmost group. *)
        let best = ref (Hashing.apply fam 0 ball) in
        let best_load = ref (Game.layer_load game ~layer:0 !best) in
        for i = 1 to d - 1 do
          let candidate = (i * group_size) + Hashing.apply fam i ball in
          let load = Game.layer_load game ~layer:0 candidate in
          if load < !best_load then begin
            best := candidate;
            best_load := load
          end
        done;
        { bin = !best; layer = 0 });
  }

let iceberg rng ?(d = 2) ~tau ~bins () =
  if d < 1 then invalid_arg "Strategy.iceberg: d must be at least 1";
  if tau < 1 then invalid_arg "Strategy.iceberg: tau must be at least 1";
  let fam = Hashing.family rng ~k:(d + 1) ~range:bins in
  {
    name = Printf.sprintf "iceberg[%d]" d;
    k = d + 1;
    choose =
      (fun game ball ->
        if Game.layers game < 2 then
          invalid_arg "Strategy.iceberg: game needs 2 layers";
        let front = Hashing.apply fam 0 ball in
        if Game.layer_load game ~layer:front_yard front < tau then
          { bin = front; layer = front_yard }
        else
          let bin =
            greedy_pick game fam ~first:1 ~count:d ~layer:back_yard ball
          in
          { bin; layer = back_yard });
  }

let default_tau ~m ~bins =
  if bins < 1 then invalid_arg "Strategy.default_tau: no bins";
  let lambda = float_of_int m /. float_of_int bins in
  max 1 (int_of_float (ceil (1.05 *. lambda)))
