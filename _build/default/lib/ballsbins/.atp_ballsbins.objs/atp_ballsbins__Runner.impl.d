lib/ballsbins/runner.ml: Adversary Atp_util Format Game Int_table Option Seq Stats Strategy
