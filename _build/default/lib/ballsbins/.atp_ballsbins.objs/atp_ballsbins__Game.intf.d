lib/ballsbins/game.mli:
