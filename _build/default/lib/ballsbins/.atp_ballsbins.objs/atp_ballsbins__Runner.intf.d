lib/ballsbins/runner.mli: Adversary Format Game Seq Strategy
