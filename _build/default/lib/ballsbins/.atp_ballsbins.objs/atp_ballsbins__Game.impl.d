lib/ballsbins/game.ml: Array Atp_util Int_table
