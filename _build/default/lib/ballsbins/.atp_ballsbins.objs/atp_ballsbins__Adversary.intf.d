lib/ballsbins/adversary.mli: Atp_util Seq
