lib/ballsbins/adversary.ml: Array Atp_util List Page_list Prng Queue Seq
