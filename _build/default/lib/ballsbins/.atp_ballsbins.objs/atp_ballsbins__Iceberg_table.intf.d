lib/ballsbins/iceberg_table.mli:
