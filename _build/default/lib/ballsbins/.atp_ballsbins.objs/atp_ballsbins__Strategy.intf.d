lib/ballsbins/strategy.mli: Atp_util Game
