lib/ballsbins/iceberg_table.ml: Array Atp_util Hashing Hashtbl Prng
