lib/ballsbins/strategy.ml: Atp_util Game Hashing Printf
