(** Drive a strategy against an adversary and measure the quantities
    Theorems 1–3 are about: the maximum load over time, and the number
    of {e failed} balls — balls inserted into a bin already holding
    [bin_capacity] non-failed balls, which is exactly the paper's
    paging-failure accounting. *)

type result = {
  ops : int;
  inserts : int;
  deletes : int;
  max_load_ever : int;       (** max over time of the max bin load *)
  max_load_final : int;
  avg_load_final : float;
  failed_balls : int;        (** with respect to [bin_capacity] *)
  peak_balls : int;
}

val run :
  ?bin_capacity:int ->
  game:Game.t ->
  strategy:Strategy.t ->
  Adversary.op Seq.t ->
  result
(** [bin_capacity] defaults to [max_int] (no failure accounting).
    The op sequence is consumed exactly once (it may carry internal
    state).  A ball keeps its failed label until deleted, per the
    paper's analysis; failed balls still occupy their bin. *)

val pp_result : Format.formatter -> result -> unit
