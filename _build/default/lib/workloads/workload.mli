(** The common shape of a page-reference workload.

    A workload is a stateful stream of virtual base-page numbers in
    [0, virtual_pages).  All randomness comes through the generator
    passed at construction, so a (seed, parameters) pair pins the
    whole trace. *)

type t = {
  name : string;
  virtual_pages : int;  (** V: the size of the virtual address space *)
  description : string;
  next : unit -> int;  (** produce the next page reference *)
}

val generate : t -> int -> int array
(** [generate t n] materializes the next [n] references. *)

val to_seq : t -> int Seq.t
(** An unbounded (ephemeral) view of the stream. *)

val pages_of_bytes : int -> int
(** Bytes to 4 KiB base pages, rounding up. *)

val gib : int -> int
(** [gib n] = n GiB in bytes. *)

val mib : int -> int
