open Atp_util

type csr = {
  vertices : int;
  xadj : int array;
  adj : int array;
}

(* graph500 quadrant probabilities. *)
let prob_a = 0.57

let prob_b = 0.19

let prob_c = 0.19

let rmat_edge rng ~scale =
  let u = ref 0 and v = ref 0 in
  for _ = 1 to scale do
    let r = Prng.float rng in
    let ubit, vbit =
      if r < prob_a then (0, 0)
      else if r < prob_a +. prob_b then (0, 1)
      else if r < prob_a +. prob_b +. prob_c then (1, 0)
      else (1, 1)
    in
    u := (!u lsl 1) lor ubit;
    v := (!v lsl 1) lor vbit
  done;
  (!u, !v)

let generate ?(scale = 16) ?(edge_factor = 16) rng =
  if scale < 1 || scale > 30 then invalid_arg "Kronecker.generate: bad scale";
  if edge_factor < 1 then invalid_arg "Kronecker.generate: bad edge_factor";
  let vertices = 1 lsl scale in
  let edges = edge_factor * vertices in
  let src = Array.make edges 0 and dst = Array.make edges 0 in
  for i = 0 to edges - 1 do
    let u, v = rmat_edge rng ~scale in
    src.(i) <- u;
    dst.(i) <- v
  done;
  (* The spec permutes vertex labels so that locality does not come
     from label structure. *)
  let perm = Array.init vertices (fun i -> i) in
  Prng.shuffle rng perm;
  (* Symmetrize: each undirected edge appears in both directions;
     self-loops contribute once per direction like any edge. *)
  let stored = 2 * edges in
  let degree = Array.make vertices 0 in
  for i = 0 to edges - 1 do
    src.(i) <- perm.(src.(i));
    dst.(i) <- perm.(dst.(i));
    degree.(src.(i)) <- degree.(src.(i)) + 1;
    degree.(dst.(i)) <- degree.(dst.(i)) + 1
  done;
  let xadj = Array.make (vertices + 1) 0 in
  for v = 0 to vertices - 1 do
    xadj.(v + 1) <- xadj.(v) + degree.(v)
  done;
  let adj = Array.make stored 0 in
  let cursor = Array.copy xadj in
  for i = 0 to edges - 1 do
    let u = src.(i) and v = dst.(i) in
    adj.(cursor.(u)) <- v;
    cursor.(u) <- cursor.(u) + 1;
    adj.(cursor.(v)) <- u;
    cursor.(v) <- cursor.(v) + 1
  done;
  { vertices; xadj; adj }

let degree csr v = csr.xadj.(v + 1) - csr.xadj.(v)

let out_neighbors csr v =
  Array.sub csr.adj csr.xadj.(v) (degree csr v)
