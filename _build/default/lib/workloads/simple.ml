open Atp_util

let make name virtual_pages description next =
  { Workload.name; virtual_pages; description; next }

let uniform ~virtual_pages rng =
  if virtual_pages < 1 then invalid_arg "Simple.uniform: empty space";
  make "uniform" virtual_pages
    (Printf.sprintf "uniform over %d pages" virtual_pages)
    (fun () -> Prng.int rng virtual_pages)

let sequential ~virtual_pages () =
  if virtual_pages < 1 then invalid_arg "Simple.sequential: empty space";
  let pos = ref (-1) in
  make "sequential" virtual_pages
    (Printf.sprintf "sequential scan over %d pages" virtual_pages)
    (fun () ->
      pos := (!pos + 1) mod virtual_pages;
      !pos)

let strided ~stride ~virtual_pages () =
  if virtual_pages < 1 then invalid_arg "Simple.strided: empty space";
  if stride < 1 then invalid_arg "Simple.strided: stride must be positive";
  let pos = ref (-stride) in
  make "strided" virtual_pages
    (Printf.sprintf "stride-%d scan over %d pages" stride virtual_pages)
    (fun () ->
      pos := (!pos + stride) mod virtual_pages;
      !pos)

let zipf ?(s = 1.0) ~virtual_pages rng =
  let sample = Sampler.zipf ~s ~n:virtual_pages in
  make "zipf" virtual_pages
    (Printf.sprintf "Zipf(s=%.2f) over %d pages" s virtual_pages)
    (fun () -> sample rng)

let looping ~window ~virtual_pages () =
  if window < 1 || window > virtual_pages then
    invalid_arg "Simple.looping: bad window";
  let pos = ref (-1) in
  make "looping" virtual_pages
    (Printf.sprintf "cyclic scan over %d of %d pages" window virtual_pages)
    (fun () ->
      pos := (!pos + 1) mod window;
      !pos)
