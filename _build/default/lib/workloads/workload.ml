type t = {
  name : string;
  virtual_pages : int;
  description : string;
  next : unit -> int;
}

let generate t n = Array.init n (fun _ -> t.next ())

let to_seq t = Seq.forever t.next

let page_size = 4096

let pages_of_bytes bytes = (bytes + page_size - 1) / page_size

let gib n = n * 1024 * 1024 * 1024

let mib n = n * 1024 * 1024
