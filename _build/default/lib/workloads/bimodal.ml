open Atp_util

let create ?(hot_fraction = 0.9999) ~hot_pages ~virtual_pages rng =
  if hot_pages < 1 || hot_pages > virtual_pages then
    invalid_arg "Bimodal.create: hot region does not fit";
  if hot_fraction < 0.0 || hot_fraction > 1.0 then
    invalid_arg "Bimodal.create: hot_fraction out of range";
  let hot_base = Prng.int rng (virtual_pages - hot_pages + 1) in
  let next () =
    if Prng.float rng < hot_fraction then hot_base + Prng.int rng hot_pages
    else Prng.int rng virtual_pages
  in
  {
    Workload.name = "bimodal";
    virtual_pages;
    description =
      Printf.sprintf
        "%.2f%% of accesses uniform in a %d-page hot region at %d, rest \
         uniform over %d pages"
        (100.0 *. hot_fraction) hot_pages hot_base virtual_pages;
    next;
  }
