open Atp_util

let page_bytes = 4096

let cell_bytes = 8

let cells_per_page = page_bytes / cell_bytes

let gups ~table_pages rng =
  if table_pages < 1 then invalid_arg "Hpc.gups: empty table";
  {
    Workload.name = "gups";
    virtual_pages = table_pages;
    description =
      Printf.sprintf "uniform random updates over %d pages" table_pages;
    next = (fun () -> Prng.int rng table_pages);
  }

let stencil ?(iterations = max_int) ~rows ~cols () =
  ignore iterations;
  if rows < 3 || cols < 3 then invalid_arg "Hpc.stencil: grid too small";
  let cell_page r c = ((r * cols) + c) / cells_per_page in
  let virtual_pages = ((rows * cols) + cells_per_page - 1) / cells_per_page in
  (* Emission order per cell: N, W, C, E, S. *)
  let row = ref 1 and col = ref 1 and phase = ref 0 in
  let advance () =
    incr col;
    if !col = cols - 1 then begin
      col := 1;
      incr row;
      if !row = rows - 1 then row := 1
    end
  in
  let next () =
    let r = !row and c = !col in
    let page =
      match !phase with
      | 0 -> cell_page (r - 1) c
      | 1 -> cell_page r (c - 1)
      | 2 -> cell_page r c
      | 3 -> cell_page r (c + 1)
      | _ -> cell_page (r + 1) c
    in
    phase := !phase + 1;
    if !phase = 5 then begin
      phase := 0;
      advance ()
    end;
    page
  in
  {
    Workload.name = "stencil";
    virtual_pages;
    description =
      Printf.sprintf "5-point stencil sweep over a %dx%d grid (%d pages)" rows
        cols virtual_pages;
    next;
  }

let multistream ~streams ~virtual_pages () =
  if streams < 1 then invalid_arg "Hpc.multistream: need a stream";
  if virtual_pages < streams then invalid_arg "Hpc.multistream: space too small";
  let partition = virtual_pages / streams in
  let cursors = Array.make streams 0 in
  let turn = ref 0 in
  let next () =
    let s = !turn in
    turn := (s + 1) mod streams;
    let offset = cursors.(s) in
    cursors.(s) <- (offset + 1) mod partition;
    (s * partition) + offset
  in
  {
    Workload.name = "multistream";
    virtual_pages;
    description =
      Printf.sprintf "%d interleaved sequential streams over %d pages" streams
        virtual_pages;
    next;
  }

let embedding_lookup ?(batch = 16) ?(vector_pages = 2) ~rows rng =
  if rows < 1 then invalid_arg "Hpc.embedding_lookup: no rows";
  if batch < 1 then invalid_arg "Hpc.embedding_lookup: bad batch";
  if vector_pages < 1 then invalid_arg "Hpc.embedding_lookup: bad vector size";
  let pick = Sampler.zipf ~s:1.05 ~n:rows in
  let virtual_pages = rows * vector_pages in
  (* Stream: for each batch, the pages of each selected row's vector in
     order. *)
  let pending = Queue.create () in
  let refill () =
    for _ = 1 to batch do
      let row = pick rng in
      for off = 0 to vector_pages - 1 do
        Queue.push ((row * vector_pages) + off) pending
      done
    done
  in
  let next () =
    if Queue.is_empty pending then refill ();
    Queue.pop pending
  in
  {
    Workload.name = "embedding";
    virtual_pages;
    description =
      Printf.sprintf
        "embedding gathers: batches of %d Zipf rows x %d pages over %d rows"
        batch vector_pages rows;
    next;
  }

let pointer_chase ?working_set ~virtual_pages rng =
  if virtual_pages < 2 then invalid_arg "Hpc.pointer_chase: space too small";
  let working_set =
    match working_set with
    | None -> virtual_pages
    | Some w ->
      if w < 2 || w > virtual_pages then
        invalid_arg "Hpc.pointer_chase: bad working set";
      w
  in
  (* A uniformly random cyclic permutation over [working_set] distinct
     pages scattered across the space (Sattolo's algorithm gives a
     single cycle). *)
  let nodes = Array.init virtual_pages (fun i -> i) in
  Prng.shuffle rng nodes;
  let members = Array.sub nodes 0 working_set in
  let succ = Int_table.create () in
  for i = 0 to working_set - 1 do
    Int_table.set succ members.(i) members.((i + 1) mod working_set)
  done;
  let current = ref members.(0) in
  let next () =
    current := Int_table.find_exn succ !current;
    !current
  in
  {
    Workload.name = "pointer-chase";
    virtual_pages;
    description =
      Printf.sprintf "random cyclic pointer chase over %d of %d pages"
        working_set virtual_pages;
    next;
  }
