open Atp_util

let create ?(alpha = 0.01) ?out_degree ~virtual_pages rng =
  if virtual_pages < 2 then invalid_arg "Graph_walk.create: need >= 2 pages";
  let out_degree =
    match out_degree with
    | Some d ->
      if d < 1 then invalid_arg "Graph_walk.create: out_degree must be positive";
      d
    | None ->
      max 2 (int_of_float (Float.log2 (float_of_int virtual_pages)))
  in
  let edge_seed = Prng.bits rng in
  let n = virtual_pages in
  let l = 1.0 and h = float_of_int n in
  let ratio = (l /. h) ** alpha in
  (* Bounded-Pareto inverse CDF driven by a deterministic hash of
     (node, edge), so the graph is fixed across revisits. *)
  let destination node edge =
    let u64 = Hashing.hash ~seed:edge_seed ((node * out_degree) + edge) in
    let u = float_of_int u64 *. 0x1.0p-62 in
    let x = l /. ((1.0 -. (u *. (1.0 -. ratio))) ** (1.0 /. alpha)) in
    let i = int_of_float x - 1 in
    if i < 0 then 0 else if i >= n then n - 1 else i
  in
  let current = ref (Prng.int rng n) in
  let next () =
    let here = !current in
    let edge = Prng.int rng out_degree in
    current := destination here edge;
    !current
  in
  {
    Workload.name = "graph-walk";
    virtual_pages;
    description =
      Printf.sprintf
        "random walk, out-degree %d, Pareto(alpha=%.3g) destinations over %d \
         pages"
        out_degree alpha n;
    next;
  }
