open Atp_util

type layout = {
  xadj_base : int;
  adj_base : int;
  visited_base : int;
  queue_base : int;
  parent_base : int;
  total_pages : int;
}

let page_bytes = 4096

let pages_for_bytes bytes = (bytes + page_bytes - 1) / page_bytes

let layout_of (csr : Kronecker.csr) =
  let v = csr.Kronecker.vertices in
  let e = Array.length csr.Kronecker.adj in
  let xadj_base = 0 in
  let adj_base = xadj_base + pages_for_bytes ((v + 1) * 8) in
  let visited_base = adj_base + pages_for_bytes (e * 8) in
  let queue_base = visited_base + pages_for_bytes ((v + 7) / 8) in
  let parent_base = queue_base + pages_for_bytes (v * 8) in
  let total_pages = parent_base + pages_for_bytes (v * 8) in
  { xadj_base; adj_base; visited_base; queue_base; parent_base; total_pages }

let create_from (csr : Kronecker.csr) rng =
  let v = csr.Kronecker.vertices in
  let layout = layout_of csr in
  let visited = Bitvec.create v in
  let queue = Array.make v 0 in
  let head = ref 0 and tail = ref 0 in
  (* The emission buffer: pages touched by BFS steps not yet consumed
     by the workload stream. *)
  let buffer = Queue.create () in
  let emit page = Queue.push page buffer in
  let xadj_page i = layout.xadj_base + (i * 8 / page_bytes) in
  let adj_page i = layout.adj_base + (i * 8 / page_bytes) in
  let visited_page node = layout.visited_base + (node lsr 3 / page_bytes) in
  let queue_page i = layout.queue_base + (i * 8 / page_bytes) in
  let parent_page node = layout.parent_base + (node * 8 / page_bytes) in
  let start_new_bfs () =
    Bitvec.fill visited false;
    head := 0;
    tail := 0;
    let root = Prng.int rng v in
    Bitvec.set visited root;
    emit (visited_page root);
    queue.(!tail) <- root;
    emit (queue_page !tail);
    incr tail
  in
  (* Process one frontier vertex, emitting every page its expansion
     touches. *)
  let step () =
    if !head = !tail then start_new_bfs ()
    else begin
      let u = queue.(!head) in
      emit (queue_page !head);
      incr head;
      let lo = csr.Kronecker.xadj.(u) and hi = csr.Kronecker.xadj.(u + 1) in
      emit (xadj_page u);
      emit (xadj_page (u + 1));
      for idx = lo to hi - 1 do
        emit (adj_page idx);
        let w = csr.Kronecker.adj.(idx) in
        emit (visited_page w);
        if not (Bitvec.get visited w) then begin
          Bitvec.set visited w;
          emit (parent_page w);
          queue.(!tail) <- w;
          emit (queue_page !tail);
          incr tail
        end
      done
    end
  in
  let next () =
    while Queue.is_empty buffer do
      step ()
    done;
    Queue.pop buffer
  in
  let workload =
    {
      Workload.name = "graph500";
      virtual_pages = layout.total_pages;
      description =
        Printf.sprintf
          "BFS memory trace over a Kronecker graph: %d vertices, %d stored \
           edges, footprint %d pages"
          v
          (Array.length csr.Kronecker.adj)
          layout.total_pages;
      next;
    }
  in
  (workload, layout)

let create ?scale ?edge_factor rng =
  let csr = Kronecker.generate ?scale ?edge_factor rng in
  create_from csr rng
