(** A graph500-style BFS memory trace (Figure 1c's workload,
    synthesized).

    The paper replays a memory trace recorded from a real graph500 run;
    we cannot ship that trace, so this module reconstructs the workload
    from first principles: it builds the benchmark's own Kronecker
    graph, lays the BFS working state (CSR offsets, adjacency,
    visited bitmap, frontier queue, parent array) out in a virtual
    address space, and emits the page of every load and store a
    textbook top-down BFS performs.  Successive BFS roots are chosen at
    random and the visited state is reset between traversals, as in the
    benchmark's 64-root harness. *)

type layout = {
  xadj_base : int;  (** page of the CSR offsets region *)
  adj_base : int;
  visited_base : int;
  queue_base : int;
  parent_base : int;
  total_pages : int;  (** the workload's memory footprint in pages *)
}

val layout_of : Kronecker.csr -> layout

val create :
  ?scale:int -> ?edge_factor:int -> Atp_util.Prng.t -> Workload.t * layout
(** Builds the graph (defaults as in {!Kronecker.generate}) and returns
    the BFS trace stream plus the address-space layout, so experiments
    can size RAM just below [total_pages] the way the paper sizes its
    cache just below the trace footprint. *)

val create_from : Kronecker.csr -> Atp_util.Prng.t -> Workload.t * layout
(** Same, over an existing graph. *)
