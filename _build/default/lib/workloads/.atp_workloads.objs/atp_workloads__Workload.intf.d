lib/workloads/workload.mli: Seq
