lib/workloads/graph_walk.mli: Atp_util Workload
