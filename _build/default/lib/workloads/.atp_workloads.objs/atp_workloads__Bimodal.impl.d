lib/workloads/bimodal.ml: Atp_util Printf Prng Workload
