lib/workloads/simple.mli: Atp_util Workload
