lib/workloads/graph500.mli: Atp_util Kronecker Workload
