lib/workloads/hpc.mli: Atp_util Workload
