lib/workloads/mix.ml: Array Atp_util List Printf Sampler String Workload
