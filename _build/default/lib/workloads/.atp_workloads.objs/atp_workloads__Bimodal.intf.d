lib/workloads/bimodal.mli: Atp_util Workload
