lib/workloads/kronecker.mli: Atp_util
