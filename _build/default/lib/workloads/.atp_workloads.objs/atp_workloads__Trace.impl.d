lib/workloads/trace.ml: Array Atp_util Format Fun Int_table List Printf Stats String Workload
