lib/workloads/workload.ml: Array Seq
