lib/workloads/graph500.ml: Array Atp_util Bitvec Kronecker Printf Prng Queue Workload
