lib/workloads/kronecker.ml: Array Atp_util Prng
