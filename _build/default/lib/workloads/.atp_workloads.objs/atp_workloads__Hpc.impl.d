lib/workloads/hpc.ml: Array Atp_util Int_table Printf Prng Queue Sampler Workload
