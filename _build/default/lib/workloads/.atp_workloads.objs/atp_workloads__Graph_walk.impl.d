lib/workloads/graph_walk.ml: Atp_util Float Hashing Printf Prng Workload
