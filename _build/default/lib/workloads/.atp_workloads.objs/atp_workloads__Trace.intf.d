lib/workloads/trace.mli: Format Workload
