lib/workloads/simple.ml: Atp_util Printf Prng Sampler Workload
