lib/workloads/mix.mli: Atp_util Workload
