lib/tlb/coalesced.ml: Tlb
