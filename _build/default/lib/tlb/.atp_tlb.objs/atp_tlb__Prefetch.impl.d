lib/tlb/prefetch.ml: Tlb
