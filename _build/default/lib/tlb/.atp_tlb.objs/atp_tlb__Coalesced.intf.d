lib/tlb/coalesced.mli:
