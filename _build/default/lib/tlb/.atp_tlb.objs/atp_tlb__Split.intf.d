lib/tlb/split.mli: Tlb
