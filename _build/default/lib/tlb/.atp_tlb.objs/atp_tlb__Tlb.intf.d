lib/tlb/tlb.mli: Atp_paging Atp_util Format
