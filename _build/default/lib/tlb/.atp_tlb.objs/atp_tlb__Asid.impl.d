lib/tlb/asid.ml: Hashtbl List Option Tlb
