lib/tlb/hierarchy.mli: Tlb
