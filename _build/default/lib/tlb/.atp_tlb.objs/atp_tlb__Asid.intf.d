lib/tlb/asid.mli: Tlb
