lib/tlb/tlb.ml: Atp_paging Atp_util Format Hashtbl List Lru Policy
