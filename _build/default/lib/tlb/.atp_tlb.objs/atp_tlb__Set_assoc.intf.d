lib/tlb/set_assoc.mli: Tlb
