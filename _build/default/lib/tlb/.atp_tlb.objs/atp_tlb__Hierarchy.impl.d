lib/tlb/hierarchy.ml: Tlb
