lib/tlb/prefetch.mli:
