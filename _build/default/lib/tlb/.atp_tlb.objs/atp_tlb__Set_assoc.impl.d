lib/tlb/set_assoc.ml: Array Atp_util Hashing Tlb
