lib/tlb/split.ml: List Option Tlb
