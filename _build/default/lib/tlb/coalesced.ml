type run = {
  lo : int;  (** first covered offset within the block *)
  hi : int;  (** last covered offset *)
  base_frame : int;  (** frame of offset [lo] *)
}

type stats = {
  lookups : int;
  hits : int;
  misses : int;
  fills : int;
  coalesced_pages : int;
}

let zero = { lookups = 0; hits = 0; misses = 0; fills = 0; coalesced_pages = 0 }

type t = {
  max_run : int;
  shift : int;
  entries : run Tlb.t;  (* keyed by block id; one run per block *)
  mutable stats : stats;
}

let log2_exact n =
  if n < 1 || n land (n - 1) <> 0 then None
  else begin
    let rec go acc v = if v = 1 then acc else go (acc + 1) (v lsr 1) in
    Some (go 0 n)
  end

let create ?(max_run = 8) ~entries () =
  match log2_exact max_run with
  | None -> invalid_arg "Coalesced.create: max_run must be a power of two"
  | Some shift ->
    { max_run; shift; entries = Tlb.create ~entries (); stats = zero }

let max_run t = t.max_run

let lookup t vpage =
  let block = vpage lsr t.shift in
  let off = vpage land (t.max_run - 1) in
  let s = t.stats in
  match Tlb.lookup t.entries block with
  | Some run when off >= run.lo && off <= run.hi ->
    t.stats <- { s with lookups = s.lookups + 1; hits = s.hits + 1 };
    Some (run.base_frame + (off - run.lo))
  | Some _ | None ->
    t.stats <- { s with lookups = s.lookups + 1; misses = s.misses + 1 };
    None

let fill t ~lookup_pt ~vpage ~frame =
  let block = vpage lsr t.shift in
  let off = vpage land (t.max_run - 1) in
  let base = block lsl t.shift in
  (* Grow the run while neighbors are mapped physically contiguously. *)
  let rec grow_left lo =
    if lo = 0 then 0
    else
      match lookup_pt (base + lo - 1) with
      | Some f when f = frame - (off - (lo - 1)) -> grow_left (lo - 1)
      | _ -> lo
  in
  let rec grow_right hi =
    if hi = t.max_run - 1 then hi
    else
      match lookup_pt (base + hi + 1) with
      | Some f when f = frame + (hi + 1 - off) -> grow_right (hi + 1)
      | _ -> hi
  in
  let lo = grow_left off and hi = grow_right off in
  let run = { lo; hi; base_frame = frame - (off - lo) } in
  ignore (Tlb.insert t.entries block run);
  let covered = hi - lo + 1 in
  let s = t.stats in
  t.stats <-
    { s with fills = s.fills + 1; coalesced_pages = s.coalesced_pages + covered };
  covered

let invalidate_page t vpage = Tlb.invalidate t.entries (vpage lsr t.shift)

let stats t = t.stats

let reset_stats t = t.stats <- zero
