type stats = {
  lookups : int;
  hits : int;
  demand_misses : int;
  prefetches : int;
  useful_prefetches : int;
}

let zero =
  { lookups = 0; hits = 0; demand_misses = 0; prefetches = 0; useful_prefetches = 0 }

type 'a t = {
  degree : int;
  translate : int -> 'a option;
  tlb : ('a * bool ref) Tlb.t;
      (* payload carries a "was prefetched, not yet used" flag *)
  mutable stats : stats;
}

let create ?(degree = 1) ~entries ~translate () =
  if degree < 0 then invalid_arg "Prefetch.create: negative degree";
  { degree; translate; tlb = Tlb.create ~entries (); stats = zero }

let prefetch t vpage =
  for next = vpage + 1 to vpage + t.degree do
    if not (Tlb.mem t.tlb next) then begin
      match t.translate next with
      | Some payload ->
        ignore (Tlb.insert t.tlb next (payload, ref true));
        t.stats <- { t.stats with prefetches = t.stats.prefetches + 1 }
      | None -> ()
    end
  done

let lookup t vpage =
  let s = t.stats in
  match Tlb.lookup t.tlb vpage with
  | Some (payload, speculative) ->
    if !speculative then begin
      speculative := false;
      t.stats <-
        { s with
          lookups = s.lookups + 1;
          hits = s.hits + 1;
          useful_prefetches = s.useful_prefetches + 1 }
    end
    else t.stats <- { s with lookups = s.lookups + 1; hits = s.hits + 1 };
    Some payload
  | None ->
    t.stats <- { s with lookups = s.lookups + 1; demand_misses = s.demand_misses + 1 };
    (match t.translate vpage with
     | None -> None
     | Some payload ->
       ignore (Tlb.insert t.tlb vpage (payload, ref false));
       prefetch t vpage;
       Some payload)

let invalidate t vpage = Tlb.invalidate t.tlb vpage

let stats t = t.stats

let accuracy t =
  if t.stats.prefetches = 0 then 1.0
  else float_of_int t.stats.useful_prefetches /. float_of_int t.stats.prefetches
