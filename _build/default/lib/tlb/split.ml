type level = { shift : int; entries : int }

type 'a t = { levels : (level * 'a Tlb.t) list }

let create ~levels () =
  if levels = [] then invalid_arg "Split.create: no levels";
  let shifts = List.map (fun l -> l.shift) levels in
  let sorted = List.sort_uniq compare shifts in
  if List.length sorted <> List.length shifts then
    invalid_arg "Split.create: duplicate shifts";
  {
    levels =
      List.map (fun l -> (l, Tlb.create ~entries:l.entries ())) levels;
  }

let levels t = List.map fst t.levels

let lookup t vpage =
  (* Probe every level (hardware does them in parallel); first hit
     wins, preferring larger pages, which subsume smaller ones. *)
  let probes =
    List.map
      (fun (level, tlb) -> (level.shift, Tlb.lookup tlb (vpage lsr level.shift)))
      (List.sort (fun (a, _) (b, _) -> compare b.shift a.shift) t.levels)
  in
  List.find_map
    (fun (shift, result) -> Option.map (fun payload -> (payload, shift)) result)
    probes

let insert t ~shift vpage payload =
  match List.find_opt (fun (l, _) -> l.shift = shift) t.levels with
  | None -> invalid_arg "Split.insert: unknown shift"
  | Some (_, tlb) -> Tlb.insert tlb (vpage lsr shift) payload

let invalidate_page t vpage =
  List.iter
    (fun (level, tlb) -> ignore (Tlb.invalidate tlb (vpage lsr level.shift)))
    t.levels

let stats t = List.map (fun (level, tlb) -> (level.shift, Tlb.stats tlb)) t.levels
