open Atp_util

(* Each set is a tiny array scanned linearly (hardware ways are <= 16),
   kept in LRU order: index 0 is MRU, the last occupied index is LRU. *)

type 'a entry = { key : int; payload : 'a }

type 'a t = {
  nsets : int;
  nways : int;
  seed : int;
  table : 'a entry option array;  (* set-major: set * nways + way *)
  occupancy : int array;
  mutable stats : Tlb.stats;
}

let empty_stats : Tlb.stats =
  { lookups = 0; hits = 0; misses = 0; insertions = 0; evictions = 0 }

let create ?(seed = 0x7151) ~sets ~ways () =
  if sets < 1 || ways < 1 then invalid_arg "Set_assoc.create: bad geometry";
  {
    nsets = sets;
    nways = ways;
    seed;
    table = Array.make (sets * ways) None;
    occupancy = Array.make sets 0;
    stats = empty_stats;
  }

let sets t = t.nsets

let ways t = t.nways

let capacity t = t.nsets * t.nways

let size t = Array.fold_left ( + ) 0 t.occupancy

let set_of t key = Hashing.hash_in ~seed:t.seed t.nsets key

let find_way t set key =
  let base = set * t.nways in
  let rec scan way =
    if way >= t.occupancy.(set) then None
    else
      match t.table.(base + way) with
      | Some e when e.key = key -> Some way
      | _ -> scan (way + 1)
  in
  scan 0

(* Move the entry at [way] to the MRU position (index 0). *)
let promote t set way =
  let base = set * t.nways in
  let entry = t.table.(base + way) in
  for i = way downto 1 do
    t.table.(base + i) <- t.table.(base + i - 1)
  done;
  t.table.(base) <- entry

let lookup t key =
  let set = set_of t key in
  let s = t.stats in
  match find_way t set key with
  | Some way ->
    promote t set way;
    t.stats <- { s with lookups = s.lookups + 1; hits = s.hits + 1 };
    (match t.table.(set * t.nways) with
     | Some e -> Some e.payload
     | None -> assert false)
  | None ->
    t.stats <- { s with lookups = s.lookups + 1; misses = s.misses + 1 };
    None

let insert t key payload =
  let set = set_of t key in
  let base = set * t.nways in
  let s = t.stats in
  match find_way t set key with
  | Some way ->
    t.table.(base + way) <- Some { key; payload };
    promote t set way;
    t.stats <- { s with insertions = s.insertions + 1 };
    None
  | None ->
    let occ = t.occupancy.(set) in
    let evicted =
      if occ = t.nways then begin
        match t.table.(base + t.nways - 1) with
        | Some e -> Some (e.key, e.payload)
        | None -> assert false
      end
      else begin
        t.occupancy.(set) <- occ + 1;
        None
      end
    in
    (* Shift right and install at MRU. *)
    for i = t.occupancy.(set) - 1 downto 1 do
      t.table.(base + i) <- t.table.(base + i - 1)
    done;
    t.table.(base) <- Some { key; payload };
    t.stats <-
      { s with
        insertions = s.insertions + 1;
        evictions = (s.evictions + if evicted = None then 0 else 1) };
    evicted

let invalidate t key =
  let set = set_of t key in
  let base = set * t.nways in
  match find_way t set key with
  | None -> false
  | Some way ->
    let occ = t.occupancy.(set) in
    for i = way to occ - 2 do
      t.table.(base + i) <- t.table.(base + i + 1)
    done;
    t.table.(base + occ - 1) <- None;
    t.occupancy.(set) <- occ - 1;
    true

let stats t = t.stats

let reset_stats t = t.stats <- empty_stats
