open Atp_paging

type stats = {
  lookups : int;
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
}

let empty_stats =
  { lookups = 0; hits = 0; misses = 0; insertions = 0; evictions = 0 }

type 'a t = {
  policy : Policy.instance;
  payloads : (int, 'a) Hashtbl.t;
  mutable stats : stats;
}

let create ?policy ?rng ~entries () =
  if entries < 1 then invalid_arg "Tlb.create: need at least one entry";
  let policy_module =
    match policy with Some p -> p | None -> (module Lru : Policy.S)
  in
  {
    policy = Policy.instantiate policy_module ?rng ~capacity:entries ();
    payloads = Hashtbl.create (2 * entries);
    stats = empty_stats;
  }

let entries t = t.policy.Policy.capacity

let size t = t.policy.Policy.size ()

let mem t key = t.policy.Policy.mem key

let peek t key = Hashtbl.find_opt t.payloads key

let lookup t key =
  let s = t.stats in
  if t.policy.Policy.mem key then begin
    (* Count the hit and refresh recency via the policy. *)
    (match t.policy.Policy.access key with
     | Policy.Hit -> ()
     | Policy.Miss _ -> assert false);
    t.stats <- { s with lookups = s.lookups + 1; hits = s.hits + 1 };
    Hashtbl.find_opt t.payloads key
  end
  else begin
    t.stats <- { s with lookups = s.lookups + 1; misses = s.misses + 1 };
    None
  end

let insert t key payload =
  let s = t.stats in
  let evicted =
    match t.policy.Policy.access key with
    | Policy.Hit -> None
    | Policy.Miss { evicted = None } -> None
    | Policy.Miss { evicted = Some victim } ->
      let victim_payload = Hashtbl.find t.payloads victim in
      Hashtbl.remove t.payloads victim;
      Some (victim, victim_payload)
  in
  Hashtbl.replace t.payloads key payload;
  t.stats <-
    { s with
      insertions = s.insertions + 1;
      evictions = (s.evictions + if evicted = None then 0 else 1) };
  evicted

let update t key payload =
  if Hashtbl.mem t.payloads key then begin
    Hashtbl.replace t.payloads key payload;
    true
  end
  else false

let invalidate t key =
  if t.policy.Policy.remove key then begin
    Hashtbl.remove t.payloads key;
    true
  end
  else false

let flush t =
  List.iter
    (fun key -> ignore (t.policy.Policy.remove key))
    (t.policy.Policy.resident ());
  Hashtbl.reset t.payloads

let stats t = t.stats

let reset_stats t = t.stats <- empty_stats

let iter f t = Hashtbl.iter f t.payloads

let pp_stats ppf s =
  Format.fprintf ppf "lookups=%a hits=%a misses=%a insertions=%a evictions=%a"
    Atp_util.Stats.pp_count s.lookups Atp_util.Stats.pp_count s.hits
    Atp_util.Stats.pp_count s.misses Atp_util.Stats.pp_count s.insertions
    Atp_util.Stats.pp_count s.evictions
