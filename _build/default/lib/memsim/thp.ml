open Atp_util

type config = {
  ram_pages : int;
  base_tlb_entries : int;
  huge_tlb_entries : int;
  huge_size : int;
  promote_fraction : float;
  max_compaction_evictions : int;
  epsilon : float;
}

let default_config =
  {
    ram_pages = 1 lsl 18;
    base_tlb_entries = 1536;
    huge_tlb_entries = 16;
    huge_size = 512;
    promote_fraction = 0.9;
    max_compaction_evictions = 64;
    epsilon = 0.01;
  }

type counters = {
  accesses : int;
  tlb_misses : int;
  ios : int;
  faults : int;
  promotions : int;
  promotion_fill_ios : int;
  compaction_evictions : int;
  huge_evictions : int;
}

let zero =
  {
    accesses = 0;
    tlb_misses = 0;
    ios = 0;
    faults = 0;
    promotions = 0;
    promotion_fill_ios = 0;
    compaction_evictions = 0;
    huge_evictions = 0;
  }

(* LRU units are base pages and promoted regions, distinguished in one
   id space: base page v -> 2v, promoted region r -> 2r + 1. *)
let base_unit v = 2 * v

let huge_unit r = (2 * r) + 1

type t = {
  cfg : config;
  huge_shift : int;
  buddy : Buddy.t;
  frame_of_page : Int_table.t;  (* resident base page -> frame *)
  frame_of_region : Int_table.t;  (* promoted region -> base frame *)
  resident_in_region : Int_table.t;  (* region -> resident base pages *)
  lru : Page_list.t;  (* front = MRU; mixed unit ids *)
  tlb : int Atp_tlb.Split.t;
  mutable counters : counters;
}

let log2_exact n =
  if n < 1 || n land (n - 1) <> 0 then None
  else begin
    let rec go acc v = if v = 1 then acc else go (acc + 1) (v lsr 1) in
    Some (go 0 n)
  end

let create cfg =
  let huge_shift =
    match log2_exact cfg.huge_size with
    | Some s when s >= 1 -> s
    | _ -> invalid_arg "Thp.create: huge_size must be a power of two >= 2"
  in
  if cfg.ram_pages < cfg.huge_size then
    invalid_arg "Thp.create: RAM smaller than one huge page";
  if cfg.promote_fraction <= 0.0 || cfg.promote_fraction > 1.0 then
    invalid_arg "Thp.create: bad promote_fraction";
  {
    cfg;
    huge_shift;
    buddy = Buddy.create ~frames:cfg.ram_pages;
    frame_of_page = Int_table.create ();
    frame_of_region = Int_table.create ();
    resident_in_region = Int_table.create ();
    lru = Page_list.create ();
    tlb =
      Atp_tlb.Split.create
        ~levels:
          [
            { Atp_tlb.Split.shift = 0; entries = cfg.base_tlb_entries };
            { Atp_tlb.Split.shift = huge_shift; entries = cfg.huge_tlb_entries };
          ]
        ();
    counters = zero;
  }

let config t = t.cfg

let counters t = t.counters

let reset_counters t = t.counters <- zero

let resident_pages t =
  Int_table.length t.frame_of_page
  + (Int_table.length t.frame_of_region * t.cfg.huge_size)

let promoted_regions t = Int_table.length t.frame_of_region

let region_of t v = v lsr t.huge_shift

let bump_region t r delta =
  let count = Option.value (Int_table.find t.resident_in_region r) ~default:0 in
  let count = count + delta in
  if count = 0 then ignore (Int_table.remove t.resident_in_region r)
  else Int_table.set t.resident_in_region r count;
  count

(* Evict one LRU unit, freeing its frames and shooting down its
   translations.  Returns how many base pages went away. *)
let evict_lru_unit t =
  match Page_list.pop_back t.lru with
  | None -> failwith "Thp: nothing left to evict"
  | Some unit_id ->
    if unit_id land 1 = 0 then begin
      let v = unit_id / 2 in
      let frame = Int_table.find_exn t.frame_of_page v in
      ignore (Int_table.remove t.frame_of_page v);
      ignore (bump_region t (region_of t v) (-1));
      Buddy.free t.buddy ~base:frame ~order:0;
      Atp_tlb.Split.invalidate_page t.tlb v;
      1
    end
    else begin
      let r = unit_id / 2 in
      let frame = Int_table.find_exn t.frame_of_region r in
      ignore (Int_table.remove t.frame_of_region r);
      Buddy.free t.buddy ~base:frame ~order:t.huge_shift;
      Atp_tlb.Split.invalidate_page t.tlb (r lsl t.huge_shift);
      t.counters <- { t.counters with huge_evictions = t.counters.huge_evictions + 1 };
      t.cfg.huge_size
    end

let rec alloc_with_pressure t ~order =
  match Buddy.alloc t.buddy ~order with
  | Some base -> base
  | None ->
    ignore (evict_lru_unit t);
    alloc_with_pressure t ~order

(* Try to promote region r: needs an aligned order-[huge_shift] block;
   compaction may evict up to the configured budget of LRU units.
   Missing constituents are fetched (promotion_fill IOs); the region
   becomes a single LRU unit. *)
let try_promote t r =
  let resident = Option.value (Int_table.find t.resident_in_region r) ~default:0 in
  let threshold =
    int_of_float (ceil (t.cfg.promote_fraction *. float_of_int t.cfg.huge_size))
  in
  if resident < threshold || Int_table.mem t.frame_of_region r then ()
  else begin
    (* The region's own base frames are freed before allocating, so
       promotion of a fully resident region cannot deadlock on its own
       memory.  (A real kernel migrates; freeing models the same
       space.) *)
    let base_v = r lsl t.huge_shift in
    let freed = ref 0 in
    for v = base_v to base_v + t.cfg.huge_size - 1 do
      match Int_table.find t.frame_of_page v with
      | Some frame ->
        ignore (Int_table.remove t.frame_of_page v);
        ignore (Page_list.remove t.lru (base_unit v));
        ignore (bump_region t r (-1));
        Buddy.free t.buddy ~base:frame ~order:0;
        Atp_tlb.Split.invalidate_page t.tlb v;
        incr freed
      | None -> ()
    done;
    (* Compact under a budget. *)
    let evictions = ref 0 in
    let rec alloc_huge () =
      match Buddy.alloc t.buddy ~order:t.huge_shift with
      | Some base -> Some base
      | None ->
        if !evictions >= t.cfg.max_compaction_evictions
           || Page_list.is_empty t.lru
        then None
        else begin
          evictions := !evictions + evict_lru_unit t;
          alloc_huge ()
        end
    in
    match alloc_huge () with
    | None ->
      (* Give up: restore the freed pages as base pages at new frames
         (the data never left RAM, so no IO is charged). *)
      t.counters <-
        { t.counters with compaction_evictions = t.counters.compaction_evictions + !evictions };
      let restored = ref 0 in
      for v = base_v to base_v + t.cfg.huge_size - 1 do
        if !restored < !freed && not (Int_table.mem t.frame_of_page v) then begin
          let frame = alloc_with_pressure t ~order:0 in
          Int_table.set t.frame_of_page v frame;
          Page_list.push_front t.lru (base_unit v);
          ignore (bump_region t r 1);
          incr restored
        end
      done
    | Some base ->
      let missing = t.cfg.huge_size - !freed in
      Int_table.set t.frame_of_region r base;
      Page_list.push_front t.lru (huge_unit r);
      ignore (Atp_tlb.Split.insert t.tlb ~shift:t.huge_shift base_v base);
      t.counters <-
        {
          t.counters with
          promotions = t.counters.promotions + 1;
          promotion_fill_ios = t.counters.promotion_fill_ios + missing;
          ios = t.counters.ios + missing;
          compaction_evictions =
            t.counters.compaction_evictions + !evictions;
        }
  end

let access t v =
  if v < 0 then invalid_arg "Thp.access: negative page";
  let c = t.counters in
  t.counters <- { c with accesses = c.accesses + 1 };
  match Atp_tlb.Split.lookup t.tlb v with
  | Some (_, shift) ->
    (* Touch the covering unit. *)
    let unit_id =
      if shift = 0 then base_unit v else huge_unit (region_of t v)
    in
    if Page_list.mem t.lru unit_id then Page_list.move_to_front t.lru unit_id
  | None ->
    t.counters <- { t.counters with tlb_misses = t.counters.tlb_misses + 1 };
    let r = region_of t v in
    (match Int_table.find t.frame_of_region r with
     | Some base ->
       (* Promoted region, TLB just didn't have it. *)
       ignore
         (Atp_tlb.Split.insert t.tlb ~shift:t.huge_shift (r lsl t.huge_shift) base);
       Page_list.move_to_front t.lru (huge_unit r)
     | None ->
       (match Int_table.find t.frame_of_page v with
        | Some frame ->
          ignore (Atp_tlb.Split.insert t.tlb ~shift:0 v frame);
          Page_list.move_to_front t.lru (base_unit v)
        | None ->
          (* Page fault at base granularity. *)
          let frame = alloc_with_pressure t ~order:0 in
          Int_table.set t.frame_of_page v frame;
          Page_list.push_front t.lru (base_unit v);
          ignore (bump_region t r 1);
          ignore (Atp_tlb.Split.insert t.tlb ~shift:0 v frame);
          t.counters <-
            { t.counters with
              ios = t.counters.ios + 1;
              faults = t.counters.faults + 1 };
          try_promote t r))

let run ?warmup t trace =
  (match warmup with
   | Some w -> Array.iter (access t) w
   | None -> ());
  reset_counters t;
  Array.iter (access t) trace;
  counters t

let cost ~epsilon c =
  float_of_int c.ios +. (epsilon *. float_of_int c.tlb_misses)

let pp_counters ppf c =
  Format.fprintf ppf
    "accesses=%a tlb-misses=%a ios=%a faults=%a promotions=%a fill-ios=%a \
     compaction-evictions=%a huge-evictions=%a"
    Stats.pp_count c.accesses Stats.pp_count c.tlb_misses Stats.pp_count c.ios
    Stats.pp_count c.faults Stats.pp_count c.promotions Stats.pp_count
    c.promotion_fill_ios Stats.pp_count c.compaction_evictions Stats.pp_count
    c.huge_evictions
