open Atp_util
open Atp_paging

type config = {
  cores : int;
  ram_pages : int;
  tlb_entries_per_core : int;
  huge_size : int;
  epsilon : float;
  ipi_epsilon : float;
}

let default_config =
  {
    cores = 4;
    ram_pages = 1 lsl 18;
    tlb_entries_per_core = 384;
    huge_size = 1;
    epsilon = 0.01;
    ipi_epsilon = 0.01;
  }

type counters = {
  accesses : int;
  tlb_misses : int;
  ios : int;
  shootdown_events : int;
  ipis : int;
}

let zero =
  { accesses = 0; tlb_misses = 0; ios = 0; shootdown_events = 0; ipis = 0 }

type t = {
  cfg : config;
  huge_shift : int;
  tlbs : int Atp_tlb.Tlb.t array;  (* per core: huge page -> base frame *)
  ram : Policy.instance;  (* shared residency of huge units *)
  frame_of : Int_table.t;
  buddy : Buddy.t;
  mutable counters : counters;
}

let log2_exact n =
  if n < 1 || n land (n - 1) <> 0 then None
  else begin
    let rec go acc v = if v = 1 then acc else go (acc + 1) (v lsr 1) in
    Some (go 0 n)
  end

let create cfg =
  let huge_shift =
    match log2_exact cfg.huge_size with
    | Some s -> s
    | None -> invalid_arg "Smp.create: huge_size must be a power of two"
  in
  if cfg.cores < 1 then invalid_arg "Smp.create: need at least one core";
  let huge_frames = cfg.ram_pages / cfg.huge_size in
  if huge_frames < 1 then invalid_arg "Smp.create: RAM too small";
  {
    cfg;
    huge_shift;
    tlbs =
      Array.init cfg.cores (fun _ ->
          Atp_tlb.Tlb.create ~entries:cfg.tlb_entries_per_core ());
    ram = Policy.instantiate (module Lru) ~capacity:huge_frames ();
    frame_of = Int_table.create ();
    buddy = Buddy.create ~frames:cfg.ram_pages;
    counters = zero;
  }

let counters t = t.counters

let reset_counters t = t.counters <- zero

(* Invalidate a victim's translation on every core; remote cores that
   held it receive an IPI (the initiator flushes locally for free). *)
let shootdown t ~initiator hu =
  let remote = ref 0 in
  let local = ref false in
  Array.iteri
    (fun core tlb ->
      if Atp_tlb.Tlb.invalidate tlb hu then
        if core = initiator then local := true else incr remote)
    t.tlbs;
  if !remote > 0 || !local then
    t.counters <-
      {
        t.counters with
        shootdown_events = t.counters.shootdown_events + 1;
        ipis = t.counters.ipis + !remote;
      }

let ensure_resident t ~initiator hu =
  match t.ram.Policy.access hu with
  | Policy.Hit -> Int_table.find_exn t.frame_of hu
  | Policy.Miss { evicted } ->
    (match evicted with
     | None -> ()
     | Some victim ->
       let base = Int_table.find_exn t.frame_of victim in
       ignore (Int_table.remove t.frame_of victim);
       Buddy.free t.buddy ~base ~order:t.huge_shift;
       shootdown t ~initiator victim);
    let base =
      match Buddy.alloc t.buddy ~order:t.huge_shift with
      | Some base -> base
      | None -> assert false
    in
    Int_table.set t.frame_of hu base;
    t.counters <- { t.counters with ios = t.counters.ios + t.cfg.huge_size };
    base

let access t ~core vpage =
  if core < 0 || core >= t.cfg.cores then invalid_arg "Smp.access: bad core";
  if vpage < 0 then invalid_arg "Smp.access: negative page";
  let hu = vpage lsr t.huge_shift in
  let tlb = t.tlbs.(core) in
  t.counters <- { t.counters with accesses = t.counters.accesses + 1 };
  match Atp_tlb.Tlb.lookup tlb hu with
  | Some _ ->
    (* Keep shared-RAM recency in step with every access (a TLB hit on
       any core still touches the page). *)
    (match t.ram.Policy.access hu with
     | Policy.Hit -> ()
     | Policy.Miss _ -> assert false)
  | None ->
    t.counters <- { t.counters with tlb_misses = t.counters.tlb_misses + 1 };
    let base = ensure_resident t ~initiator:core hu in
    ignore (Atp_tlb.Tlb.insert tlb hu base)

let cost cfg c =
  float_of_int c.ios
  +. (cfg.epsilon *. float_of_int c.tlb_misses)
  +. (cfg.ipi_epsilon *. float_of_int c.ipis)

let run_with assign ?warmup t trace =
  (match warmup with
   | Some w -> Array.iteri (fun i page -> access t ~core:(assign t i page) page) w
   | None -> ());
  reset_counters t;
  Array.iteri (fun i page -> access t ~core:(assign t i page) page) trace;
  counters t

let run_shared ?warmup t trace =
  run_with (fun t i _page -> i mod t.cfg.cores) ?warmup t trace

let run_partitioned ?warmup t trace =
  run_with
    (fun t _i page -> Hashing.hash_in ~seed:0x5135 t.cfg.cores (page lsr t.huge_shift))
    ?warmup t trace

let pp_counters ppf c =
  Format.fprintf ppf
    "accesses=%a tlb-misses=%a ios=%a shootdowns=%a ipis=%a"
    Stats.pp_count c.accesses Stats.pp_count c.tlb_misses Stats.pp_count c.ios
    Stats.pp_count c.shootdown_events Stats.pp_count c.ipis
