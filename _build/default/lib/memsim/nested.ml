type result = {
  hframe : int option;
  memory_accesses : int;
  cycles : int;
}

type stats = {
  walks : int;
  total_cycles : int;
  total_memory_accesses : int;
  host_tlb_hits : int;
}

(* Guest page-table nodes are modeled as living at deterministic
   guest-physical addresses derived from their radix-path prefix, in a
   region far above ordinary guest data; the host backs them on
   demand.  This preserves the two properties that matter for cost:
   every guest-walk step needs a host translation, and consecutive
   walks with shared prefixes enjoy host-side locality. *)

(* Must stay within the host table's virtual range (4 levels of 9
   bits); ordinary guest data gPAs are expected below this base. *)
let pt_region_base = 1 lsl 34

type t = {
  config : Walker.config;
  guest : Page_table.t;
  host : Page_table.t;
  host_walker : Walker.t;
  host_tlb : int Atp_tlb.Tlb.t;  (* gPA page -> hPA frame *)
  mutable next_host_frame : int;
  mutable stats : stats;
}

let create ?(config = Walker.default_config) ?(host_tlb_entries = 64) () =
  let host = Page_table.create () in
  {
    config;
    guest = Page_table.create ();
    host;
    host_walker = Walker.create ~config host;
    host_tlb = Atp_tlb.Tlb.create ~entries:host_tlb_entries ();
    next_host_frame = 0;
    stats =
      { walks = 0; total_cycles = 0; total_memory_accesses = 0; host_tlb_hits = 0 };
  }

let guest_map t ~gva ~gpa = Page_table.map t.guest ~vpage:gva ~frame:gpa ()

let host_map t ~gpa ~hpa = Page_table.map t.host ~vpage:gpa ~frame:hpa ()

let guest_unmap t ~gva = Page_table.unmap t.guest ~vpage:gva

let fresh_host_frame t =
  let f = t.next_host_frame in
  t.next_host_frame <- t.next_host_frame + 1;
  f

(* Translate one guest-physical page through the host dimension,
   backing it on demand; returns (hframe, memory_accesses, cycles). *)
let host_translate t gpa =
  match Atp_tlb.Tlb.lookup t.host_tlb gpa with
  | Some hframe ->
    t.stats <- { t.stats with host_tlb_hits = t.stats.host_tlb_hits + 1 };
    (hframe, 0, 1)
  | None ->
    let walk () = Walker.translate t.host_walker gpa in
    let r = walk () in
    let r, hframe =
      match r.Walker.mapping with
      | Some m -> (r, m.Page_table.frame)
      | None ->
        (* Back the page on demand and redo the (now successful) walk
           for honest cost accounting of the populated table. *)
        let hpa = fresh_host_frame t in
        Page_table.map t.host ~vpage:gpa ~frame:hpa ();
        let r = walk () in
        (r, hpa)
    in
    ignore (Atp_tlb.Tlb.insert t.host_tlb gpa hframe);
    (hframe, r.Walker.memory_accesses, r.Walker.cycles)

(* The gPA page holding the guest node at the given radix depth for
   this gva. *)
let node_gpa gva ~depth =
  let prefix = gva lsr ((depth + 1) * Page_table.fanout_bits) in
  pt_region_base + (prefix * Page_table.levels) + depth

let translate t gva =
  (* Walk the guest dimension; each visited node costs one guest
     memory access plus a host translation of the node's gPA. *)
  let mapping, guest_visits = Page_table.walk t.guest gva in
  let memory = ref 0 and cycles = ref 0 in
  for depth = Page_table.levels - 1 downto Page_table.levels - guest_visits do
    let _, m, c = host_translate t (node_gpa gva ~depth) in
    memory := !memory + m + 1;
    cycles := !cycles + c + t.config.memory_latency
  done;
  let hframe =
    match mapping with
    | None -> None
    | Some m ->
      (* Finally translate the data page's gPA. *)
      let hframe, mem, cyc = host_translate t m.Page_table.frame in
      memory := !memory + mem;
      cycles := !cycles + cyc;
      Some hframe
  in
  let s = t.stats in
  t.stats <-
    {
      s with
      walks = s.walks + 1;
      total_cycles = s.total_cycles + !cycles;
      total_memory_accesses = s.total_memory_accesses + !memory;
    };
  { hframe; memory_accesses = !memory; cycles = !cycles }

let stats t = t.stats

let average_cycles t =
  if t.stats.walks = 0 then 0.0
  else float_of_int t.stats.total_cycles /. float_of_int t.stats.walks

let epsilon t ~io_latency_cycles =
  if io_latency_cycles <= 0 then invalid_arg "Nested.epsilon: bad IO latency";
  average_cycles t /. float_of_int io_latency_cycles
