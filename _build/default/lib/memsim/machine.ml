open Atp_util
open Atp_paging

type config = {
  ram_pages : int;
  tlb_entries : int;
  huge_size : int;
  epsilon : float;
  ram_policy : (module Policy.S);
  tlb_policy : (module Policy.S);
  seed : int;
}

let default_config =
  {
    ram_pages = 1 lsl 18;
    tlb_entries = 1536;
    huge_size = 1;
    epsilon = 0.01;
    ram_policy = (module Lru : Policy.S);
    tlb_policy = (module Lru : Policy.S);
    seed = 42;
  }

type counters = {
  accesses : int;
  tlb_hits : int;
  tlb_misses : int;
  page_faults : int;
  ios : int;
}

let zero_counters =
  { accesses = 0; tlb_hits = 0; tlb_misses = 0; page_faults = 0; ios = 0 }

let cost ~epsilon c = float_of_int c.ios +. (epsilon *. float_of_int c.tlb_misses)

type t = {
  cfg : config;
  huge_shift : int;
  tlb : int Atp_tlb.Tlb.t;          (* huge page -> base frame *)
  ram : Policy.instance;            (* residency of huge pages *)
  frame_of : Int_table.t;           (* huge page -> base frame *)
  buddy : Buddy.t;
  mutable counters : counters;
}

let log2_exact n =
  if n < 1 || n land (n - 1) <> 0 then None
  else begin
    let rec go acc v = if v = 1 then acc else go (acc + 1) (v lsr 1) in
    Some (go 0 n)
  end

let create cfg =
  let huge_shift =
    match log2_exact cfg.huge_size with
    | Some s -> s
    | None -> invalid_arg "Machine.create: huge_size must be a power of two"
  in
  let huge_frames = cfg.ram_pages / cfg.huge_size in
  if huge_frames < 1 then
    invalid_arg "Machine.create: RAM smaller than one huge page";
  let rng = Prng.create ~seed:cfg.seed () in
  {
    cfg;
    huge_shift;
    tlb =
      Atp_tlb.Tlb.create ~policy:cfg.tlb_policy ~rng:(Prng.split rng)
        ~entries:cfg.tlb_entries ();
    ram = Policy.instantiate cfg.ram_policy ~rng:(Prng.split rng)
            ~capacity:huge_frames ();
    frame_of = Int_table.create ();
    buddy = Buddy.create ~frames:cfg.ram_pages;
    counters = zero_counters;
  }

let config t = t.cfg

let counters t = t.counters

let reset_counters t = t.counters <- zero_counters

let resident_pages t = t.ram.Policy.size () * t.cfg.huge_size

(* Bring the huge page containing [hu] into RAM if absent, paying h
   IOs on a fault; returns its base frame. *)
let ensure_resident t hu =
  match t.ram.Policy.access hu with
  | Policy.Hit -> Int_table.find_exn t.frame_of hu
  | Policy.Miss { evicted } ->
    (match evicted with
     | None -> ()
     | Some victim ->
       let base = Int_table.find_exn t.frame_of victim in
       ignore (Int_table.remove t.frame_of victim);
       Buddy.free t.buddy ~base ~order:t.huge_shift;
       (* The victim's translation is stale: shoot it down (free). *)
       ignore (Atp_tlb.Tlb.invalidate t.tlb victim));
    let base =
      match Buddy.alloc t.buddy ~order:t.huge_shift with
      | Some base -> base
      | None ->
        (* With uniform huge pages the buddy cannot fragment; running
           out means the policy overcommitted, which is a bug. *)
        assert false
    in
    Int_table.set t.frame_of hu base;
    let c = t.counters in
    t.counters <-
      { c with
        page_faults = c.page_faults + 1;
        ios = c.ios + t.cfg.huge_size };
    base

let access t vpage =
  if vpage < 0 then invalid_arg "Machine.access: negative page";
  let hu = vpage lsr t.huge_shift in
  let c = t.counters in
  match Atp_tlb.Tlb.lookup t.tlb hu with
  | Some _base ->
    (* TLB hit implies residency (entries are shot down on eviction),
       but RAM recency must still see the access, as the paper's
       simulator does — otherwise the RAM LRU order would be driven
       only by TLB misses. *)
    (match t.ram.Policy.access hu with
     | Policy.Hit -> ()
     | Policy.Miss _ -> assert false);
    t.counters <- { c with accesses = c.accesses + 1; tlb_hits = c.tlb_hits + 1 }
  | None ->
    t.counters <-
      { c with accesses = c.accesses + 1; tlb_misses = c.tlb_misses + 1 };
    let base = ensure_resident t hu in
    ignore (Atp_tlb.Tlb.insert t.tlb hu base)

let run ?warmup t trace =
  (match warmup with
   | Some w -> Array.iter (access t) w
   | None -> ());
  reset_counters t;
  Atp_tlb.Tlb.reset_stats t.tlb;
  Array.iter (access t) trace;
  counters t

let pp_counters ppf c =
  Format.fprintf ppf
    "accesses=%a tlb-hits=%a tlb-misses=%a faults=%a ios=%a"
    Stats.pp_count c.accesses Stats.pp_count c.tlb_hits Stats.pp_count
    c.tlb_misses Stats.pp_count c.page_faults Stats.pp_count c.ios
