lib/memsim/nested.ml: Atp_tlb Page_table Walker
