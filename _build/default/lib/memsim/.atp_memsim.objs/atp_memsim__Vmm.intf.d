lib/memsim/vmm.mli: Format Walker
