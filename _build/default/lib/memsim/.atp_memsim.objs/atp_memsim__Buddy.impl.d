lib/memsim/buddy.ml: Array Atp_util Bitvec Int_table List Page_list
