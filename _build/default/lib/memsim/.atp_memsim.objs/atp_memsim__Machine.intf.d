lib/memsim/machine.mli: Atp_paging Format
