lib/memsim/thp.ml: Array Atp_tlb Atp_util Buddy Format Int_table Option Page_list Stats
