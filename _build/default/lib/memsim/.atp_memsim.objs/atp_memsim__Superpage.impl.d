lib/memsim/superpage.ml: Array Atp_tlb Atp_util Bitvec Buddy Format Hashtbl Int_table Page_list Stats
