lib/memsim/machine.ml: Array Atp_paging Atp_tlb Atp_util Buddy Format Int_table Lru Policy Prng Stats
