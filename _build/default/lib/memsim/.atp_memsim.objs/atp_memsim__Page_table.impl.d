lib/memsim/page_table.ml: Array Option
