lib/memsim/page_table.mli:
