lib/memsim/nested.mli: Walker
