lib/memsim/smp.mli: Format
