lib/memsim/vmm.ml: Atp_tlb Atp_util Buddy Format Int_table Option Page_list Page_table Stats Walker
