lib/memsim/thp.mli: Format
