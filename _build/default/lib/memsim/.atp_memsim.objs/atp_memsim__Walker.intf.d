lib/memsim/walker.mli: Page_table
