lib/memsim/buddy.mli:
