lib/memsim/superpage.mli: Format
