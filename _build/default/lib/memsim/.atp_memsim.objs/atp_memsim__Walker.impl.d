lib/memsim/walker.ml: Atp_tlb Page_table
