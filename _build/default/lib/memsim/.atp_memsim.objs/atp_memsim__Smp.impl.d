lib/memsim/smp.ml: Array Atp_paging Atp_tlb Atp_util Buddy Format Hashing Int_table Lru Policy Stats
