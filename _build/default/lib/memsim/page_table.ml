type flags = {
  writable : bool;
  accessed : bool;
  dirty : bool;
}

type mapping = {
  frame : int;
  level : int;
  flags : flags;
}

let levels = 4

let fanout_bits = 9

let fanout = 1 lsl fanout_bits

type leaf = {
  frame : int;
  level : int;
  writable : bool;
  mutable accessed : bool;
  mutable dirty : bool;
}

type entry =
  | Empty
  | Node of node
  | Leaf of leaf

and node = {
  entries : entry array;
  mutable occupied : int;
}

type t = {
  root : node;
  mutable leaves : int;
  mutable nodes : int;
}

let fresh_node () = { entries = Array.make fanout Empty; occupied = 0 }

let create () = { root = fresh_node (); leaves = 0; nodes = 1 }

let max_vpage _ = (1 lsl (levels * fanout_bits)) - 1

let index vpage depth = (vpage lsr (depth * fanout_bits)) land (fanout - 1)

let pages_of_level level = 1 lsl (level * fanout_bits)

let check_vpage t vpage =
  if vpage < 0 || vpage > max_vpage t then
    invalid_arg "Page_table: virtual page out of range"

let mapping_of_leaf leaf =
  {
    frame = leaf.frame;
    level = leaf.level;
    flags =
      { writable = leaf.writable; accessed = leaf.accessed; dirty = leaf.dirty };
  }

let map t ~vpage ~frame ?(level = 0) ?(writable = true) () =
  check_vpage t vpage;
  if level < 0 || level > levels - 2 then
    invalid_arg "Page_table.map: bad leaf level";
  let span = pages_of_level level in
  if vpage land (span - 1) <> 0 then
    invalid_arg "Page_table.map: virtual page not aligned to its level";
  if frame land (span - 1) <> 0 then
    invalid_arg "Page_table.map: frame not aligned to its level";
  (* Descend to the node at depth [level], creating interior nodes. *)
  let rec descend node depth =
    let i = index vpage depth in
    if depth = level then begin
      match node.entries.(i) with
      | Empty ->
        node.entries.(i) <-
          Leaf { frame; level; writable; accessed = false; dirty = false };
        node.occupied <- node.occupied + 1;
        t.leaves <- t.leaves + 1
      | Leaf _ -> invalid_arg "Page_table.map: range already mapped"
      | Node _ ->
        invalid_arg "Page_table.map: range contains finer-grained mappings"
    end
    else begin
      match node.entries.(i) with
      | Leaf _ ->
        invalid_arg "Page_table.map: range covered by a larger mapping"
      | Node child -> descend child (depth - 1)
      | Empty ->
        let child = fresh_node () in
        node.entries.(i) <- Node child;
        node.occupied <- node.occupied + 1;
        t.nodes <- t.nodes + 1;
        descend child (depth - 1)
    end
  in
  descend t.root (levels - 1)

let unmap t ~vpage =
  check_vpage t vpage;
  (* Returns (removed, child_now_empty). *)
  let rec descend node depth =
    let i = index vpage depth in
    match node.entries.(i) with
    | Empty -> false
    | Leaf _ ->
      node.entries.(i) <- Empty;
      node.occupied <- node.occupied - 1;
      t.leaves <- t.leaves - 1;
      true
    | Node child ->
      let removed = descend child (depth - 1) in
      if removed && child.occupied = 0 then begin
        node.entries.(i) <- Empty;
        node.occupied <- node.occupied - 1;
        t.nodes <- t.nodes - 1
      end;
      removed
  in
  descend t.root (levels - 1)

let find_leaf t vpage =
  let rec descend node depth =
    match node.entries.(index vpage depth) with
    | Empty -> None
    | Leaf leaf -> Some leaf
    | Node child -> descend child (depth - 1)
  in
  descend t.root (levels - 1)

let lookup t vpage =
  check_vpage t vpage;
  Option.map mapping_of_leaf (find_leaf t vpage)

let walk t vpage =
  check_vpage t vpage;
  let rec descend node depth visits =
    match node.entries.(index vpage depth) with
    | Empty -> (None, visits)
    | Leaf leaf ->
      leaf.accessed <- true;
      (Some (mapping_of_leaf leaf), visits)
    | Node child -> descend child (depth - 1) (visits + 1)
  in
  descend t.root (levels - 1) 1

let set_dirty t vpage =
  check_vpage t vpage;
  match find_leaf t vpage with
  | None -> false
  | Some leaf ->
    leaf.dirty <- true;
    leaf.accessed <- true;
    true

let clear_accessed t vpage =
  check_vpage t vpage;
  match find_leaf t vpage with
  | None -> false
  | Some leaf ->
    leaf.accessed <- false;
    true

let mapped_count t = t.leaves

let node_count t = t.nodes

let iter f t =
  let rec visit node depth base =
    for i = 0 to fanout - 1 do
      let vpage = base lor (i lsl (depth * fanout_bits)) in
      match node.entries.(i) with
      | Empty -> ()
      | Leaf leaf -> f ~vpage (mapping_of_leaf leaf)
      | Node child -> visit child (depth - 1) vpage
    done
  in
  visit t.root (levels - 1) 0
