open Atp_util

(* Free blocks of order r live in [free_lists.(r)], a Page_list keyed
   by base frame, giving O(1) pop for allocation and O(1) removal of a
   specific buddy during coalescing.  [allocated] maps the base frame
   of each live allocation to its order so [free] can validate. *)

type t = {
  frames : int;
  max_order : int;
  free_lists : Page_list.t array;
  allocated : Int_table.t;        (* base frame -> order *)
  mutable free_count : int;
}

let max_order_for frames =
  let rec go order = if 1 lsl (order + 1) > frames then order else go (order + 1) in
  if frames <= 0 then 0 else go 0

let create ~frames =
  if frames < 1 then invalid_arg "Buddy.create: need at least one frame";
  let max_order = max_order_for frames in
  let t =
    {
      frames;
      max_order;
      free_lists = Array.init (max_order + 1) (fun _ -> Page_list.create ());
      allocated = Int_table.create ();
      free_count = frames;
    }
  in
  (* Decompose [0, frames) into maximal aligned blocks, largest
     first. *)
  let rec seed base remaining =
    if remaining > 0 then begin
      let rec fit order =
        if order = 0 then 0
        else if 1 lsl order <= remaining && base land ((1 lsl order) - 1) = 0
        then order
        else fit (order - 1)
      in
      let order = fit max_order in
      Page_list.push_back t.free_lists.(order) base;
      seed (base + (1 lsl order)) (remaining - (1 lsl order))
    end
  in
  seed 0 frames;
  t

let frames t = t.frames

let free_frames t = t.free_count

let used_frames t = t.frames - t.free_count

let rec split_down t order target =
  if order = target then ()
  else begin
    match Page_list.pop_front t.free_lists.(order) with
    | None -> assert false
    | Some base ->
      let half = 1 lsl (order - 1) in
      Page_list.push_front t.free_lists.(order - 1) (base + half);
      Page_list.push_front t.free_lists.(order - 1) base;
      split_down t (order - 1) target
  end

let alloc t ~order =
  if order < 0 then invalid_arg "Buddy.alloc: negative order";
  if order > t.max_order then None
  else begin
    (* Find the smallest order >= requested with a free block. *)
    let rec find o =
      if o > t.max_order then None
      else if not (Page_list.is_empty t.free_lists.(o)) then Some o
      else find (o + 1)
    in
    match find order with
    | None -> None
    | Some source ->
      split_down t source order;
      (match Page_list.pop_front t.free_lists.(order) with
       | None -> assert false
       | Some base ->
         Int_table.set t.allocated base order;
         t.free_count <- t.free_count - (1 lsl order);
         Some base)
  end

let free t ~base ~order =
  (match Int_table.find t.allocated base with
   | Some o when o = order -> ()
   | Some _ -> invalid_arg "Buddy.free: order mismatch"
   | None -> invalid_arg "Buddy.free: block not allocated");
  ignore (Int_table.remove t.allocated base);
  t.free_count <- t.free_count + (1 lsl order);
  (* Coalesce with the buddy while it is free at the same order. *)
  let rec coalesce base order =
    if order >= t.max_order then Page_list.push_front t.free_lists.(order) base
    else begin
      let buddy = base lxor (1 lsl order) in
      if buddy + (1 lsl order) <= t.frames
         && Page_list.remove t.free_lists.(order) buddy
      then coalesce (min base buddy) (order + 1)
      else Page_list.push_front t.free_lists.(order) base
    end
  in
  coalesce base order

let split_allocated t ~base ~order =
  (match Int_table.find t.allocated base with
   | Some o when o = order -> ()
   | Some _ -> invalid_arg "Buddy.split_allocated: order mismatch"
   | None -> invalid_arg "Buddy.split_allocated: block not allocated");
  ignore (Int_table.remove t.allocated base);
  for off = 0 to (1 lsl order) - 1 do
    Int_table.set t.allocated (base + off) 0
  done

let largest_free_order t =
  let rec go o =
    if o < 0 then None
    else if not (Page_list.is_empty t.free_lists.(o)) then Some o
    else go (o - 1)
  in
  go t.max_order

let check_invariants t =
  (* Every frame is covered exactly once by a free block or an
     allocation. *)
  let cover = Bitvec.create t.frames in
  let mark base order =
    for f = base to base + (1 lsl order) - 1 do
      if f < 0 || f >= t.frames then failwith "Buddy: block out of bounds";
      if Bitvec.get cover f then failwith "Buddy: overlapping blocks";
      Bitvec.set cover f
    done
  in
  Array.iteri
    (fun order list -> List.iter (fun base -> mark base order) (Page_list.to_list list))
    t.free_lists;
  let free_total = Bitvec.pop_count cover in
  if free_total <> t.free_count then failwith "Buddy: free_count mismatch";
  Int_table.iter (fun base order -> mark base order) t.allocated;
  if Bitvec.pop_count cover <> t.frames then failwith "Buddy: coverage gap"
