(** A uniform face over every memory-management scheme in this
    repository, for apples-to-apples comparison.

    The paper's object of study is the {e memory-management
    algorithm}: anything that services page requests while controlling
    the TLB, the active set, and placement.  This module packages each
    implementation — physical huge pages at a fixed size, THP,
    reservation superpages, and the decoupled algorithm Z — behind one
    record, so drivers and benches can sweep over all of them without
    knowing their internals. *)

type t = {
  name : string;
  access : int -> unit;
  ios : unit -> int;  (** base-page IOs so far *)
  tlb_events : unit -> int;  (** TLB misses/fills so far (ε-priced) *)
  decode_misses : unit -> int;  (** ε-priced decoding misses (0 for
                                    schemes without an encoder) *)
  reset : unit -> unit;  (** zero the counters, keep the state *)
}

val cost : epsilon:float -> t -> float
(** [ios + ε·(tlb_events + decode_misses)], read from the counters. *)

val run : ?warmup:int array -> t -> int array -> t
(** Play warmup, reset counters, play the trace; returns the scheme
    for chaining. *)

val physical :
  ?tlb_entries:int -> ?seed:int -> ram_pages:int -> huge_size:int -> unit -> t
(** The Section 6 machine at a fixed huge-page size. *)

val thp :
  ?base_tlb_entries:int -> ?huge_tlb_entries:int -> ram_pages:int ->
  huge_size:int -> unit -> t

val superpage :
  ?base_tlb_entries:int -> ?huge_tlb_entries:int -> ram_pages:int ->
  huge_size:int -> unit -> t

val decoupled :
  ?tlb_entries:int ->
  ?seed:int ->
  ?x_policy:(module Atp_paging.Policy.S) ->
  ?y_policy:(module Atp_paging.Policy.S) ->
  ram_pages:int ->
  w:int ->
  unit ->
  t
(** The Theorem 4 algorithm Z with the given policies (LRU/LRU by
    default). *)

val hybrid :
  ?tlb_entries:int -> ram_pages:int -> chunk:int -> w:int -> unit -> t
(** The Section 8 hybrid scheme. *)

val compare_all :
  ?warmup:int array ->
  epsilon:float ->
  t list ->
  int array ->
  (string * int * int * float) list
(** Run every scheme on the same trace; returns
    [(name, ios, tlb_events, cost)] rows. *)
