lib/core/hybrid.mli:
