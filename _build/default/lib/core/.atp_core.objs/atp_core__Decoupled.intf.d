lib/core/decoupled.mli: Alloc Params
