lib/core/encoding.ml: Alloc Atp_util Packed_array Params
