lib/core/params.ml: Atp_util Float Format Printf
