lib/core/smp_decoupled.ml: Alloc Array Atp_paging Atp_util Decoupled Lru Option Params Policy
