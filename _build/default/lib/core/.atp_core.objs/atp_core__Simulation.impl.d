lib/core/simulation.ml: Alloc Array Atp_paging Atp_util Decoupled Format Params Policy Printf
