lib/core/decoupled.ml: Alloc Atp_util Encoding Hashtbl Int_table Option Params
