lib/core/smp_decoupled.mli: Atp_paging Params
