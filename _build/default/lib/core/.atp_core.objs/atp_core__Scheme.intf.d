lib/core/scheme.mli: Atp_paging
