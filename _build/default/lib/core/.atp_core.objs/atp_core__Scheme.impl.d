lib/core/scheme.ml: Array Atp_memsim Atp_paging Hybrid List Lru Machine Params Policy Printf Simulation Superpage Thp
