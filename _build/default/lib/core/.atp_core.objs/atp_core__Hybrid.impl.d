lib/core/hybrid.ml: Array Atp_paging Lru Params Policy Simulation
