lib/core/simulation.mli: Atp_paging Decoupled Format Params
