lib/core/alloc.mli: Params
