lib/core/alloc.ml: Array Atp_util Bitvec Hashing Int_table Option Params Prng
