lib/core/encoding.mli: Alloc Atp_util
