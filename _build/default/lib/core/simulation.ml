open Atp_paging

type report = {
  accesses : int;
  ios : int;
  tlb_fills : int;
  decoding_misses : int;
  failures_total : int;
  max_bucket_load : int;
}

let cost ~epsilon (r : report) =
  float_of_int r.ios
  +. (epsilon *. float_of_int (r.tlb_fills + r.decoding_misses))

let c_tlb ~epsilon (r : report) = epsilon *. float_of_int r.tlb_fills

let c_io (r : report) = float_of_int r.ios

type t = {
  d : Decoupled.t;
  x : Policy.instance;
  y : Policy.instance;
  h_max : int;
  mutable accesses : int;
  mutable ios : int;
  mutable tlb_fills : int;
  mutable decoding_misses : int;
  failures_at_reset : int ref;
}

let create ?seed ~params ~x ~y () =
  let budget = Params.usable_pages params in
  if y.Policy.capacity > budget then
    invalid_arg
      (Printf.sprintf
         "Simulation.create: Y capacity %d exceeds the (1-delta)P budget %d"
         y.Policy.capacity budget);
  let d = Decoupled.create ?seed params in
  {
    d;
    x;
    y;
    h_max = Decoupled.h_max d;
    accesses = 0;
    ios = 0;
    tlb_fills = 0;
    decoding_misses = 0;
    failures_at_reset = ref 0;
  }

let decoupled t = t.d

let access t page =
  t.accesses <- t.accesses + 1;
  let u = page / t.h_max in
  (* TLB side: Z's TLB mirrors X's content on the stream r(σ). *)
  (match t.x.Policy.access u with
   | Policy.Hit -> ()
   | Policy.Miss { evicted } ->
     t.tlb_fills <- t.tlb_fills + 1;
     (match evicted with
      | Some victim -> Decoupled.tlb_remove t.d victim
      | None -> ());
     Decoupled.tlb_add t.d u);
  (* RAM side: Z's active set mirrors Y's. *)
  (match t.y.Policy.access page with
   | Policy.Hit -> ()
   | Policy.Miss { evicted } ->
     t.ios <- t.ios + 1;
     (match evicted with
      | Some victim -> Decoupled.ram_evict t.d victim
      | None -> ());
     ignore (Decoupled.ram_insert t.d page : Alloc.location));
  (* Translate. The huge page is covered and the page is active, so
     the only non-frame answer is a decoding miss from a paging
     failure. *)
  match Decoupled.translate t.d page with
  | Decoupled.Frame _ -> ()
  | Decoupled.Decode_fault -> t.decoding_misses <- t.decoding_misses + 1
  | Decoupled.Not_covered ->
    (* We just added u on an X miss, and X holds u on a hit. *)
    assert false

let report t =
  {
    accesses = t.accesses;
    ios = t.ios;
    tlb_fills = t.tlb_fills;
    decoding_misses = t.decoding_misses;
    failures_total =
      Alloc.failures_total (Decoupled.alloc t.d) - !(t.failures_at_reset);
    max_bucket_load = Alloc.max_bucket_load (Decoupled.alloc t.d);
  }

let reset_report t =
  t.accesses <- 0;
  t.ios <- 0;
  t.tlb_fills <- 0;
  t.decoding_misses <- 0;
  t.failures_at_reset := Alloc.failures_total (Decoupled.alloc t.d)

let run ?warmup t trace =
  (match warmup with
   | Some w -> Array.iter (access t) w
   | None -> ());
  reset_report t;
  Array.iter (access t) trace;
  report t

let huge_trace ~h_max trace = Array.map (fun p -> p / h_max) trace

let pp_report ppf (r : report) =
  Format.fprintf ppf
    "accesses=%a ios=%a tlb-fills=%a decoding-misses=%a failures=%a \
     max-bucket-load=%d"
    Atp_util.Stats.pp_count r.accesses Atp_util.Stats.pp_count r.ios
    Atp_util.Stats.pp_count r.tlb_fills Atp_util.Stats.pp_count
    r.decoding_misses Atp_util.Stats.pp_count r.failures_total
    r.max_bucket_load
