open Atp_util

type translation =
  | Frame of int
  | Decode_fault
  | Not_covered

(* [values] holds the live ψ array for every huge page that needs one:
   those with at least one resident constituent, plus those currently
   in the TLB.  The TLB and the shadow table share the same mutable
   array, so a residency change updates a loaded TLB entry for free —
   which is exactly the model's free ψ update. *)

type t = {
  params : Params.t;
  alloc : Alloc.t;
  enc : Encoding.t;
  values : (int, Encoding.value) Hashtbl.t;
  counts : Int_table.t;  (* huge page -> resident constituents *)
  in_tlb : Int_table.t;  (* huge page -> 1 *)
}

let create ?seed params =
  let alloc = Alloc.create ?seed params in
  {
    params;
    alloc;
    enc = Encoding.create alloc;
    values = Hashtbl.create 4096;
    counts = Int_table.create ();
    in_tlb = Int_table.create ();
  }

let params t = t.params

let alloc t = t.alloc

let h_max t = Encoding.h_max t.enc

let value_for t u =
  match Hashtbl.find_opt t.values u with
  | Some value -> value
  | None ->
    let value = Encoding.empty_value t.enc in
    Hashtbl.replace t.values u value;
    value

let maybe_drop t u =
  let count = Option.value (Int_table.find t.counts u) ~default:0 in
  if count = 0 && not (Int_table.mem t.in_tlb u) then Hashtbl.remove t.values u

let ram_insert t v =
  let location = Alloc.insert t.alloc v in
  let u = Encoding.huge_of t.enc v in
  let count = Option.value (Int_table.find t.counts u) ~default:0 in
  Int_table.set t.counts u (count + 1);
  Encoding.refresh_page t.enc (value_for t u) v;
  location

let ram_evict t v =
  Alloc.delete t.alloc v;
  let u = Encoding.huge_of t.enc v in
  let count = Int_table.find_exn t.counts u in
  (match Hashtbl.find_opt t.values u with
   | Some value -> Encoding.clear_page t.enc value v
   | None -> assert false);
  if count = 1 then begin
    ignore (Int_table.remove t.counts u);
    maybe_drop t u
  end
  else Int_table.set t.counts u (count - 1)

let active t = Alloc.live t.alloc

let tlb_add t u =
  if Int_table.add_if_absent t.in_tlb u 1 then ignore (value_for t u)

let tlb_remove t u =
  if Int_table.remove t.in_tlb u then maybe_drop t u

let tlb_mem t u = Int_table.mem t.in_tlb u

let tlb_size t = Int_table.length t.in_tlb

let translate t v =
  let u = Encoding.huge_of t.enc v in
  if not (Int_table.mem t.in_tlb u) then Not_covered
  else begin
    match Hashtbl.find_opt t.values u with
    | None -> Decode_fault  (* covered but no constituent resident *)
    | Some value ->
      let frame = Encoding.decode t.enc v value in
      if frame < 0 then Decode_fault else Frame frame
  end

let decoded_frame t v =
  let u = Encoding.huge_of t.enc v in
  match Hashtbl.find_opt t.values u with
  | None -> None
  | Some value ->
    let frame = Encoding.decode t.enc v value in
    if frame < 0 then None else Some frame
