open Atp_util

type value = Packed_array.t

type t = {
  alloc : Alloc.t;
  h_max : int;
  bits_per_page : int;
  bucket_size : int;
  null : int;
}

let create alloc =
  let params = Alloc.params alloc in
  let { Params.h_max; bits_per_page; bucket_size; k; _ } = params in
  {
    alloc;
    h_max;
    bits_per_page;
    bucket_size;
    null = k * bucket_size;
  }

let h_max t = t.h_max

let bits_used t = t.h_max * t.bits_per_page

let null_code t = t.null

let huge_of t v = v / t.h_max

let index_of t v = v mod t.h_max

let empty_value t =
  let value = Packed_array.create ~width:t.bits_per_page ~length:t.h_max in
  for i = 0 to t.h_max - 1 do
    Packed_array.set value i t.null
  done;
  value

let refresh_page t value v =
  let code =
    match Alloc.location_of t.alloc v with
    | Some (Alloc.Placed { choice; slot; _ }) -> (choice * t.bucket_size) + slot
    | Some (Alloc.Fallback _) | None -> t.null
  in
  Packed_array.set value (index_of t v) code

let clear_page t value v = Packed_array.set value (index_of t v) t.null

let is_empty t value =
  let rec go i =
    i >= t.h_max || (Packed_array.get value i = t.null && go (i + 1))
  in
  go 0

let decode t v value =
  let code = Packed_array.get value (index_of t v) in
  if code = t.null then -1
  else begin
    let choice = code / t.bucket_size and slot = code mod t.bucket_size in
    let bin = Alloc.bin_of_choice t.alloc ~page:v ~choice in
    (bin * t.bucket_size) + slot
  end
