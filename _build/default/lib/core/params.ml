type scheme =
  | One_choice
  | Iceberg of { d : int }

type t = {
  scheme : scheme;
  p : int;
  w : int;
  bucket_size : int;
  buckets : int;
  k : int;
  tau : int;
  bits_per_page : int;
  h_max : int;
  delta : float;
}

let log2_ceil n =
  if n <= 1 then 0
  else begin
    let rec go bits v = if v <= 1 then bits else go (bits + 1) ((v + 1) / 2) in
    go 0 n
  end

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

(* All the asymptotic quantities, evaluated concretely.  Logs are base
   2 and clamped at 1 so the formulas behave at small P. *)
let derive ?(scheme = Iceberg { d = 2 }) ?(delta_exponent = 1) ~p ~w () =
  if p < 2 then invalid_arg "Params.derive: p must be at least 2";
  if w < 2 then invalid_arg "Params.derive: w must be at least 2";
  if delta_exponent < 1 then
    invalid_arg "Params.derive: delta_exponent must be at least 1";
  let lp = Float.max 1.0 (Float.log2 (float_of_int p)) in
  let llp = Float.max 1.0 (Float.log2 lp) in
  let lllp = Float.max 1.0 (Float.log2 llp) in
  let k, tau, bucket_size, delta0 =
    match scheme with
    | One_choice ->
      (* λ = log P · log log P; B = λ / (1 - δ); δ = O(1/√(log log P)). *)
      let lambda = lp *. llp in
      let delta = clamp 0.05 0.5 (1.0 /. sqrt llp) in
      let b = int_of_float (ceil (lambda /. (1.0 -. delta))) in
      (1, b, b, delta)
    | Iceberg { d } ->
      if d < 1 then invalid_arg "Params.derive: Iceberg d must be at least 1";
      (* λ = log log P · log log log P; front cap τ = (1+o(1))λ; the
         back yard needs Θ(log log n) extra slots per bucket.  Footnote
         5: poly(log log P) associativity buys δ = 1/(log log P)^c. *)
      let lambda = llp *. lllp in
      let delta =
        clamp 0.01 0.5 (1.0 /. (llp ** float_of_int delta_exponent))
      in
      let tau = max 1 (int_of_float (ceil (1.05 *. lambda))) in
      let approx_bins = Float.max 2.0 (float_of_int p /. lambda) in
      let backyard =
        int_of_float
          (ceil
             (Float.max 1.0 (Float.log2 (Float.max 2.0 (Float.log2 approx_bins)))))
        + 2
      in
      let b =
        max (int_of_float (ceil (lambda /. (1.0 -. delta)))) (tau + backyard)
      in
      (* Footnote 5: a tighter δ target needs the additive slack to
         survive a fuller table, i.e. B·δ >= backyard, so B grows as
         poly(log log P).  Applied only beyond the body-text
         construction to keep the default geometry. *)
      let b =
        if delta_exponent > 1 then
          max b (int_of_float (ceil (float_of_int (backyard + 2) /. delta)))
        else b
      in
      (d + 1, tau, b, delta)
  in
  let buckets = p / bucket_size in
  if buckets < 1 then invalid_arg "Params.derive: p too small for one bucket";
  (* Per-page encoding: a choice index and a slot, plus one null code. *)
  let bits_per_page = max 1 (log2_ceil ((k * bucket_size) + 1)) in
  let h_max = w / bits_per_page in
  if h_max < 1 then
    invalid_arg "Params.derive: w too small to encode a single page pointer";
  (* Report the δ actually implied by the final geometry: the policy
     budget is (1 - δ0) of the slots that exist. *)
  let usable = int_of_float (float_of_int (buckets * bucket_size) *. (1.0 -. delta0)) in
  let delta = 1.0 -. (float_of_int usable /. float_of_int p) in
  { scheme; p; w; bucket_size; buckets; k; tau; bits_per_page; h_max; delta }

let usable_pages t =
  int_of_float (float_of_int t.p *. (1.0 -. t.delta))

let pp ppf t =
  let scheme_name =
    match t.scheme with
    | One_choice -> "one-choice"
    | Iceberg { d } -> Printf.sprintf "iceberg[%d]" d
  in
  Format.fprintf ppf
    "@[<v>scheme=%s P=%a w=%d@,B=%d buckets=%a k=%d tau=%d@,\
     bits/page=%d h_max=%d delta=%.3f usable=%a@]"
    scheme_name Atp_util.Stats.pp_count t.p t.w t.bucket_size
    Atp_util.Stats.pp_count t.buckets t.k t.tau t.bits_per_page t.h_max
    t.delta Atp_util.Stats.pp_count (usable_pages t)
