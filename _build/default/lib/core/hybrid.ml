open Atp_paging

type report = {
  accesses : int;
  ios : int;
  chunk_faults : int;
  tlb_fills : int;
  decoding_misses : int;
  coverage : int;
}

let cost ~epsilon (r : report) =
  float_of_int r.ios
  +. (epsilon *. float_of_int (r.tlb_fills + r.decoding_misses))

type t = {
  chunk : int;
  sim : Simulation.t;
  h_max : int;
}

let create ?seed ~ram_pages ~chunk ~w ~tlb_entries () =
  if chunk < 1 || chunk land (chunk - 1) <> 0 then
    invalid_arg "Hybrid.create: chunk must be a power of two";
  let chunk_frames = ram_pages / chunk in
  if chunk_frames < 2 then invalid_arg "Hybrid.create: RAM too small for chunks";
  (* The decoupled machinery runs over chunk-sized units. *)
  let params = Params.derive ~p:chunk_frames ~w () in
  let x = Policy.instantiate (module Lru) ~capacity:tlb_entries () in
  let y =
    Policy.instantiate (module Lru) ~capacity:(Params.usable_pages params) ()
  in
  let sim = Simulation.create ?seed ~params ~x ~y () in
  { chunk; sim; h_max = params.Params.h_max }

let h_max t = t.h_max

let coverage t = t.chunk * t.h_max

let access t page = Simulation.access t.sim (page / t.chunk)

let report t =
  let r = Simulation.report t.sim in
  {
    accesses = r.Simulation.accesses;
    ios = r.Simulation.ios * t.chunk;
    chunk_faults = r.Simulation.ios;
    tlb_fills = r.Simulation.tlb_fills;
    decoding_misses = r.Simulation.decoding_misses;
    coverage = coverage t;
  }

let reset_report t = Simulation.reset_report t.sim

let run ?warmup t trace =
  (match warmup with
   | Some w -> Array.iter (access t) w
   | None -> ());
  Simulation.reset_report t.sim;
  Array.iter (access t) trace;
  report t
