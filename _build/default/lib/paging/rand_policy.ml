open Atp_util

type t = { slots : Slots.t; rng : Prng.t }

let name = "random"

let create ?rng ~capacity () =
  let rng = match rng with Some r -> r | None -> Prng.create () in
  { slots = Slots.create capacity; rng }

let capacity t = Slots.capacity t.slots

let size t = Slots.size t.slots

let mem t page = Slots.slot_of_page t.slots page <> None

let access t page =
  if mem t page then Policy.Hit
  else begin
    let evicted =
      if Slots.is_full t.slots then begin
        (* When full every slot is occupied, so a uniform slot is a
           uniform resident page. *)
        let victim_slot = Prng.int t.rng (Slots.capacity t.slots) in
        Some (Slots.release t.slots victim_slot)
      end
      else None
    in
    ignore (Slots.alloc t.slots page);
    Policy.Miss { evicted }
  end

let remove t page =
  match Slots.slot_of_page t.slots page with
  | None -> false
  | Some slot ->
    ignore (Slots.release t.slots slot);
    true

let resident t = Slots.resident t.slots
