(** Segmented LRU: a probationary segment absorbs new pages; a second
    hit promotes to the protected segment (80% of capacity by
    default).  A scan-resistant LRU variant common in storage
    caches. *)

include Policy.S
