let all : (module Policy.S) list =
  [
    (module Lru);
    (module Fifo);
    (module Clock);
    (module Lfu);
    (module Mru);
    (module Rand_policy);
    (module Two_q);
    (module Arc);
    (module Slru);
    (module Lirs);
  ]

let name_of (module P : Policy.S) = P.name

let names = List.map name_of all

let find name =
  List.find_opt (fun p -> String.equal (name_of p) name) all

let find_exn name =
  match find name with
  | Some p -> p
  | None ->
    invalid_arg
      (Printf.sprintf "unknown policy %S (known: %s)" name
         (String.concat ", " names))
