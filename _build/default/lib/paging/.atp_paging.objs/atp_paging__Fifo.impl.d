lib/paging/fifo.ml: Atp_util Lru_list Policy Slots
