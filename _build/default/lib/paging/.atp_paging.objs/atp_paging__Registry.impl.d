lib/paging/registry.ml: Arc Clock Fifo Lfu Lirs List Lru Mru Policy Printf Rand_policy Slru String Two_q
