lib/paging/fifo.mli: Policy
