lib/paging/sim.mli: Format Policy Seq
