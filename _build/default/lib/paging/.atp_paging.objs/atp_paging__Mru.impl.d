lib/paging/mru.ml: Atp_util Lru_list Policy Slots
