lib/paging/policy.ml: Atp_util
