lib/paging/slots.ml: Array Atp_util Int_table
