lib/paging/clock.mli: Policy
