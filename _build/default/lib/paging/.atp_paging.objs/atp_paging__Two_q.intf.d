lib/paging/two_q.mli: Policy
