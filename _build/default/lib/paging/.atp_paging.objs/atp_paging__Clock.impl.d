lib/paging/clock.ml: Array Atp_util Bitvec Int_table Policy
