lib/paging/competitive.ml: Array List Lru Opt Option Policy Sim
