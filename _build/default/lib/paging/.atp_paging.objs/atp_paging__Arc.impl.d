lib/paging/arc.ml: Atp_util Page_list Policy
