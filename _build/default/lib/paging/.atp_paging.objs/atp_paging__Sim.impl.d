lib/paging/sim.ml: Array Atp_util Format Policy Seq
