lib/paging/slru.mli: Policy
