lib/paging/competitive.mli: Atp_util Policy
