lib/paging/registry.mli: Policy
