lib/paging/mru.mli: Policy
