lib/paging/policy.mli: Atp_util
