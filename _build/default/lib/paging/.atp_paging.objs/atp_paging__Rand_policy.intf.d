lib/paging/rand_policy.mli: Policy
