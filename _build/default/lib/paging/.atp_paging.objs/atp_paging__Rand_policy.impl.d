lib/paging/rand_policy.ml: Atp_util Policy Prng Slots
