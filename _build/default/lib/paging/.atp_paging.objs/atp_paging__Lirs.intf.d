lib/paging/lirs.mli: Policy
