lib/paging/opt.mli: Policy
