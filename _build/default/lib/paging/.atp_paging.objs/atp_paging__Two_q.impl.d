lib/paging/two_q.ml: Atp_util Page_list Policy
