lib/paging/mattson.mli:
