lib/paging/slru.ml: Atp_util Page_list Policy
