lib/paging/arc.mli: Policy
