lib/paging/lru.ml: Atp_util Lru_list Policy Slots
