lib/paging/lirs.ml: Atp_util Hashtbl Page_list Policy
