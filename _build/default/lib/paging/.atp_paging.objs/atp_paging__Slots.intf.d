lib/paging/slots.mli:
