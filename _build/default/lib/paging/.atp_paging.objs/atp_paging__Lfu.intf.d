lib/paging/lfu.mli: Policy
