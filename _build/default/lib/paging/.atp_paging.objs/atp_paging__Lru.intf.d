lib/paging/lru.mli: Policy
