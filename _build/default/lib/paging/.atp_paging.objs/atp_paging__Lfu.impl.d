lib/paging/lfu.ml: Atp_util Heap Int_table Policy
