lib/paging/mattson.ml: Array Atp_util Int_table List
