lib/paging/opt.ml: Array Atp_util Heap Int_table Policy
