(** The replacement-policy abstraction.

    In the paper's terms, a policy is a RAM-replacement policy or a
    TLB-replacement policy: it decides which (huge) pages are resident
    in a capacity-bounded cache.  Policies here manage abstract page
    ids; physical placement is the job of the allocation schemes in
    [atp.core], which the paper requires the policies to be oblivious
    to. *)

type outcome =
  | Hit
  | Miss of { evicted : int option }
      (** [evicted = None] when a free slot absorbed the fill. *)

(** What every policy implementation provides. *)
module type S = sig
  type t

  val name : string

  val create : ?rng:Atp_util.Prng.t -> capacity:int -> unit -> t
  (** [rng] is used only by randomized policies; deterministic policies
      ignore it.  [capacity] must be at least 1. *)

  val capacity : t -> int

  val size : t -> int
  (** Number of resident pages; always [<= capacity]. *)

  val mem : t -> int -> bool

  val access : t -> int -> outcome
  (** Service a request for a page: a hit updates recency metadata; a
      miss inserts the page, evicting a victim if the cache is full. *)

  val remove : t -> int -> bool
  (** Invalidate a page without an access (e.g. a shootdown).  Returns
      whether it was resident. *)

  val resident : t -> int list
  (** Unordered list of resident pages. *)
end

(** A policy instance with its state captured, for heterogeneous
    collections (the experiment driver sweeps over policies). *)
type instance = {
  name : string;
  capacity : int;
  size : unit -> int;
  mem : int -> bool;
  access : int -> outcome;
  remove : int -> bool;
  resident : unit -> int list;
}

val instantiate :
  (module S) -> ?rng:Atp_util.Prng.t -> capacity:int -> unit -> instance

val evicted : outcome -> int option
(** [None] on a hit or free fill. *)

val is_hit : outcome -> bool
