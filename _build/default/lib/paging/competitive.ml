let misses_of (module P : Policy.S) ?rng ~capacity trace =
  let inst = Policy.instantiate (module P) ?rng ~capacity () in
  (Sim.run inst trace).Sim.misses

let ratio_vs_opt (module P : Policy.S) ?rng ~capacity ?opt_capacity trace =
  let opt_capacity = Option.value opt_capacity ~default:capacity in
  let policy_misses = misses_of (module P) ?rng ~capacity trace in
  let opt_misses = Opt.misses ~capacity:opt_capacity trace in
  if opt_misses = 0 then if policy_misses = 0 then 1.0 else infinity
  else float_of_int policy_misses /. float_of_int opt_misses

let lru_adversary ~capacity ~length =
  if capacity < 1 then invalid_arg "Competitive.lru_adversary: bad capacity";
  Array.init length (fun i -> i mod (capacity + 1))

let sleator_tarjan_bound ~k ~h =
  if h < 1 || h > k then invalid_arg "Competitive.sleator_tarjan_bound: need 1 <= h <= k";
  float_of_int k /. float_of_int (k - h + 1)

let check_sleator_tarjan ?rng ~k ~h trace =
  let lru = misses_of (module Lru) ?rng ~capacity:k trace in
  let opt = Opt.misses ~capacity:h trace in
  (* LRU(k) <= k/(k-h+1) * OPT(h) + h (the additive term covers the
     initial configuration difference). *)
  float_of_int lru
  <= (sleator_tarjan_bound ~k ~h *. float_of_int opt) +. float_of_int h

let augmentation_curve (module P : Policy.S) ?rng ~k ~hs trace =
  List.map
    (fun h ->
      if h < 1 || h > k then invalid_arg "Competitive.augmentation_curve: bad h";
      ( h,
        ratio_vs_opt (module P) ?rng ~capacity:k ~opt_capacity:h trace,
        sleator_tarjan_bound ~k ~h ))
    hs
