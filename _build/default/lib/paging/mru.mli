(** Most-recently-used replacement.  Pathological for temporal locality
    but optimal for cyclic scans just larger than the cache; included
    as a baseline and as an adversarial RAM-replacement policy for the
    decoupling tests. *)

include Policy.S
