type stats = {
  accesses : int;
  hits : int;
  misses : int;
  evictions : int;
}

let empty_stats = { accesses = 0; hits = 0; misses = 0; evictions = 0 }

let record stats outcome =
  match outcome with
  | Policy.Hit ->
    { stats with accesses = stats.accesses + 1; hits = stats.hits + 1 }
  | Policy.Miss { evicted } ->
    {
      accesses = stats.accesses + 1;
      hits = stats.hits;
      misses = stats.misses + 1;
      evictions = (stats.evictions + if evicted = None then 0 else 1);
    }

let run ?on_event instance trace =
  let stats = ref empty_stats in
  Array.iteri
    (fun i page ->
      let outcome = instance.Policy.access page in
      stats := record !stats outcome;
      match on_event with
      | Some f -> f i outcome
      | None -> ())
    trace;
  !stats

let run_seq instance seq =
  let stats = ref empty_stats in
  Seq.iter
    (fun page -> stats := record !stats (instance.Policy.access page))
    seq;
  !stats

let miss_rate stats =
  if stats.accesses = 0 then 0.0
  else float_of_int stats.misses /. float_of_int stats.accesses

let pp_stats ppf stats =
  Format.fprintf ppf "accesses=%a hits=%a misses=%a evictions=%a miss-rate=%.4f"
    Atp_util.Stats.pp_count stats.accesses
    Atp_util.Stats.pp_count stats.hits
    Atp_util.Stats.pp_count stats.misses
    Atp_util.Stats.pp_count stats.evictions
    (miss_rate stats)
