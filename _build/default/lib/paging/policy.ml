type outcome =
  | Hit
  | Miss of { evicted : int option }

module type S = sig
  type t

  val name : string
  val create : ?rng:Atp_util.Prng.t -> capacity:int -> unit -> t
  val capacity : t -> int
  val size : t -> int
  val mem : t -> int -> bool
  val access : t -> int -> outcome
  val remove : t -> int -> bool
  val resident : t -> int list
end

type instance = {
  name : string;
  capacity : int;
  size : unit -> int;
  mem : int -> bool;
  access : int -> outcome;
  remove : int -> bool;
  resident : unit -> int list;
}

let instantiate (module P : S) ?rng ~capacity () =
  let state = P.create ?rng ~capacity () in
  {
    name = P.name;
    capacity;
    size = (fun () -> P.size state);
    mem = (fun page -> P.mem state page);
    access = (fun page -> P.access state page);
    remove = (fun page -> P.remove state page);
    resident = (fun () -> P.resident state);
  }

let evicted = function
  | Hit -> None
  | Miss { evicted } -> evicted

let is_hit = function
  | Hit -> true
  | Miss _ -> false
