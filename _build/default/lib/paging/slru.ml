open Atp_util

type t = {
  capacity : int;
  protected_target : int;
  probation : Page_list.t;  (* LRU order, resident *)
  protected_ : Page_list.t;  (* LRU order, resident *)
}

let name = "slru"

let create ?rng ~capacity () =
  ignore rng;
  if capacity < 1 then invalid_arg "Slru.create: capacity must be at least 1";
  {
    capacity;
    protected_target = max 1 (capacity * 4 / 5);
    probation = Page_list.create ();
    protected_ = Page_list.create ();
  }

let capacity t = t.capacity

let size t = Page_list.length t.probation + Page_list.length t.protected_

let mem t page = Page_list.mem t.probation page || Page_list.mem t.protected_ page

(* Overflowing the protected segment demotes its LRU back to
   probation (still resident), as in classic SLRU. *)
let promote t page =
  ignore (Page_list.remove t.probation page);
  Page_list.push_front t.protected_ page;
  if Page_list.length t.protected_ > t.protected_target then begin
    match Page_list.pop_back t.protected_ with
    | Some demoted -> Page_list.push_front t.probation demoted
    | None -> assert false
  end

let access t page =
  if Page_list.mem t.protected_ page then begin
    Page_list.move_to_front t.protected_ page;
    Policy.Hit
  end
  else if Page_list.mem t.probation page then begin
    promote t page;
    Policy.Hit
  end
  else begin
    let evicted =
      if size t >= t.capacity then begin
        (* Victim: probation LRU; if probation is empty, protected
           LRU. *)
        match Page_list.pop_back t.probation with
        | Some victim -> Some victim
        | None -> Page_list.pop_back t.protected_
      end
      else None
    in
    Page_list.push_front t.probation page;
    Policy.Miss { evicted }
  end

let remove t page =
  Page_list.remove t.probation page || Page_list.remove t.protected_ page

let resident t = Page_list.to_list t.probation @ Page_list.to_list t.protected_
