(** CLOCK (second-chance) replacement: a one-bit approximation of LRU
    that real MMUs use because it needs only a referenced bit per
    frame. *)

include Policy.S
