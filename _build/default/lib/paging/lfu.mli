(** Least-frequently-used replacement with a lazy-deletion min-heap.
    Frequency counts persist only while a page is resident (in-cache
    LFU); ties break towards the least recently inserted entry. *)

include Policy.S
