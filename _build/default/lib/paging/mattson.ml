open Atp_util

(* Fenwick tree over access timestamps.  Position i holds 1 iff the
   access at time i is the most recent access of its page; the stack
   distance of a re-access is then the number of set positions strictly
   between the previous access and now. *)

type t = {
  mutable bit : int array;  (* 1-based Fenwick array *)
  mutable capacity : int;
  mutable time : int;
  last_access : Int_table.t;  (* page -> timestamp of latest access *)
  (* distance histogram; index = stack distance, capped *)
  mutable histogram : int array;
  mutable cold : int;
}

let create () =
  {
    bit = Array.make 1024 0;
    capacity = 1023;
    time = 0;
    last_access = Int_table.create ();
    histogram = Array.make 1024 0;
    cold = 0;
  }

let rec bit_add t i delta =
  if i <= t.capacity then begin
    t.bit.(i) <- t.bit.(i) + delta;
    bit_add t (i + (i land -i)) delta
  end

let bit_prefix t i =
  let rec go i acc =
    if i <= 0 then acc else go (i - (i land -i)) (acc + t.bit.(i))
  in
  go (min i t.capacity) 0

let grow_bit t =
  let old = t.bit and old_cap = t.capacity in
  t.capacity <- (2 * (old_cap + 1)) - 1;
  t.bit <- Array.make (t.capacity + 1) 0;
  (* Re-add the set positions: reconstruct point values from the old
     Fenwick array by prefix differences. *)
  let prefix i =
    let rec go i acc = if i <= 0 then acc else go (i - (i land -i)) (acc + old.(i)) in
    go i 0
  in
  for i = 1 to old_cap do
    let v = prefix i - prefix (i - 1) in
    if v <> 0 then bit_add t i v
  done

let bump_histogram t d =
  let len = Array.length t.histogram in
  if d >= len then begin
    let narr = Array.make (max (2 * len) (d + 1)) 0 in
    Array.blit t.histogram 0 narr 0 len;
    t.histogram <- narr
  end;
  t.histogram.(d) <- t.histogram.(d) + 1

let access t page =
  t.time <- t.time + 1;
  let now = t.time in
  if now > t.capacity then grow_bit t;
  (match Int_table.find t.last_access page with
   | None -> t.cold <- t.cold + 1
   | Some prev ->
     (* Distinct pages touched strictly after [prev]: each has exactly
        one "most recent" flag in (prev, now). *)
     let distance = bit_prefix t (now - 1) - bit_prefix t prev in
     bump_histogram t distance;
     bit_add t prev (-1));
  bit_add t now 1;
  Int_table.set t.last_access page now

let of_trace trace =
  let t = create () in
  Array.iter (access t) trace;
  t

let accesses t = t.time

let cold_misses t = t.cold

let distinct_pages t = Int_table.length t.last_access

let misses t c =
  if c < 1 then invalid_arg "Mattson.misses: capacity must be at least 1";
  (* Re-accesses at distance >= c miss. *)
  let far = ref 0 in
  for d = c to Array.length t.histogram - 1 do
    far := !far + t.histogram.(d)
  done;
  t.cold + !far

let curve t ~capacities = List.map (fun c -> (c, misses t c)) capacities

let working_set_size t ~fraction =
  if fraction <= 0.0 || fraction > 1.0 then
    invalid_arg "Mattson.working_set_size: fraction out of range";
  let reaccesses = t.time - t.cold in
  if reaccesses = 0 then 1
  else begin
    let needed =
      int_of_float (ceil (fraction *. float_of_int reaccesses))
    in
    let rec scan c covered =
      if covered >= needed || c >= Array.length t.histogram then max 1 c
      else scan (c + 1) (covered + t.histogram.(c))
    in
    scan 0 0
  end
