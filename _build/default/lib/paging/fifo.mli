(** First-in-first-out replacement: eviction order is insertion order;
    hits do not refresh a page. *)

include Policy.S
