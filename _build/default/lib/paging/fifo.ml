open Atp_util

type t = { slots : Slots.t; order : Lru_list.t }

let name = "fifo"

let create ?rng ~capacity () =
  ignore rng;
  { slots = Slots.create capacity; order = Lru_list.create capacity }

let capacity t = Slots.capacity t.slots

let size t = Slots.size t.slots

let mem t page = Slots.slot_of_page t.slots page <> None

let access t page =
  match Slots.slot_of_page t.slots page with
  | Some _ -> Policy.Hit
  | None ->
    let evicted =
      if Slots.is_full t.slots then begin
        match Lru_list.pop_back t.order with
        | None -> assert false
        | Some victim_slot -> Some (Slots.release t.slots victim_slot)
      end
      else None
    in
    let slot = Slots.alloc t.slots page in
    Lru_list.push_front t.order slot;
    Policy.Miss { evicted }

let remove t page =
  match Slots.slot_of_page t.slots page with
  | None -> false
  | Some slot ->
    Lru_list.remove t.order slot;
    ignore (Slots.release t.slots slot);
    true

let resident t = Slots.resident t.slots
