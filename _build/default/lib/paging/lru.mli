(** Least-recently-used replacement (Sleator–Tarjan's canonical online
    policy).  O(1) per access. *)

include Policy.S
