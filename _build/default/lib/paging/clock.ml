open Atp_util

type t = {
  capacity : int;
  pages : int array;        (* frame -> page; -1 when free *)
  referenced : Bitvec.t;
  index : Int_table.t;      (* page -> frame *)
  mutable hand : int;
  mutable size : int;
}

let no_page = -1

let name = "clock"

let create ?rng ~capacity () =
  ignore rng;
  if capacity < 1 then invalid_arg "Clock.create: capacity must be at least 1";
  {
    capacity;
    pages = Array.make capacity no_page;
    referenced = Bitvec.create capacity;
    index = Int_table.create ~initial_capacity:(2 * capacity) ();
    hand = 0;
    size = 0;
  }

let capacity t = t.capacity

let size t = t.size

let mem t page = Int_table.mem t.index page

(* Sweep the hand, clearing second-chance bits, until a frame with a
   clear bit comes up; free frames are taken immediately. *)
let claim_frame t =
  let rec sweep () =
    let frame = t.hand in
    t.hand <- (t.hand + 1) mod t.capacity;
    if t.pages.(frame) = no_page then frame
    else if Bitvec.get t.referenced frame then begin
      Bitvec.clear t.referenced frame;
      sweep ()
    end
    else frame
  in
  sweep ()

let access t page =
  match Int_table.find t.index page with
  | Some frame ->
    Bitvec.set t.referenced frame;
    Policy.Hit
  | None ->
    let frame = claim_frame t in
    let evicted =
      let old = t.pages.(frame) in
      if old = no_page then None
      else begin
        ignore (Int_table.remove t.index old);
        t.size <- t.size - 1;
        Some old
      end
    in
    t.pages.(frame) <- page;
    Bitvec.set t.referenced frame;
    Int_table.set t.index page frame;
    t.size <- t.size + 1;
    Policy.Miss { evicted }

let remove t page =
  match Int_table.find t.index page with
  | None -> false
  | Some frame ->
    t.pages.(frame) <- no_page;
    Bitvec.clear t.referenced frame;
    ignore (Int_table.remove t.index page);
    t.size <- t.size - 1;
    true

let resident t = Int_table.keys t.index
