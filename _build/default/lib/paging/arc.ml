open Atp_util

type t = {
  capacity : int;
  t1 : Page_list.t;  (* resident, seen once recently *)
  t2 : Page_list.t;  (* resident, seen at least twice *)
  b1 : Page_list.t;  (* ghosts evicted from t1 *)
  b2 : Page_list.t;  (* ghosts evicted from t2 *)
  mutable p : int;   (* adaptive target size of t1 *)
}

let name = "arc"

let create ?rng ~capacity () =
  ignore rng;
  if capacity < 1 then invalid_arg "Arc.create: capacity must be at least 1";
  {
    capacity;
    t1 = Page_list.create ();
    t2 = Page_list.create ();
    b1 = Page_list.create ();
    b2 = Page_list.create ();
    p = 0;
  }

let capacity t = t.capacity

let size t = Page_list.length t.t1 + Page_list.length t.t2

let mem t page = Page_list.mem t.t1 page || Page_list.mem t.t2 page

(* REPLACE from the ARC paper: evict the LRU of t1 or t2 according to
   the adaptive target p, pushing the victim onto its ghost list. *)
let replace t ~in_b2 =
  let from_t1 =
    let l1 = Page_list.length t.t1 in
    l1 >= 1 && (l1 > t.p || (in_b2 && l1 = t.p))
  in
  if from_t1 then
    match Page_list.pop_back t.t1 with
    | None -> assert false
    | Some victim ->
      Page_list.push_front t.b1 victim;
      victim
  else
    match Page_list.pop_back t.t2 with
    | None -> assert false
    | Some victim ->
      Page_list.push_front t.b2 victim;
      victim

let access t page =
  if Page_list.mem t.t1 page then begin
    (* Case I (t1 hit): promote to t2. *)
    ignore (Page_list.remove t.t1 page);
    Page_list.push_front t.t2 page;
    Policy.Hit
  end
  else if Page_list.mem t.t2 page then begin
    Page_list.move_to_front t.t2 page;
    Policy.Hit
  end
  else if Page_list.mem t.b1 page then begin
    (* Case II (b1 ghost hit): grow the recency side. *)
    let delta =
      max 1 (Page_list.length t.b2 / max 1 (Page_list.length t.b1))
    in
    t.p <- min t.capacity (t.p + delta);
    let victim = replace t ~in_b2:false in
    ignore (Page_list.remove t.b1 page);
    Page_list.push_front t.t2 page;
    Policy.Miss { evicted = Some victim }
  end
  else if Page_list.mem t.b2 page then begin
    (* Case III (b2 ghost hit): grow the frequency side. *)
    let delta =
      max 1 (Page_list.length t.b1 / max 1 (Page_list.length t.b2))
    in
    t.p <- max 0 (t.p - delta);
    let victim = replace t ~in_b2:true in
    ignore (Page_list.remove t.b2 page);
    Page_list.push_front t.t2 page;
    Policy.Miss { evicted = Some victim }
  end
  else begin
    (* Case IV: a cold miss. *)
    let c = t.capacity in
    let l1 = Page_list.length t.t1 + Page_list.length t.b1 in
    let total =
      l1 + Page_list.length t.t2 + Page_list.length t.b2
    in
    let evicted =
      if l1 = c then begin
        if Page_list.length t.t1 < c then begin
          ignore (Page_list.pop_back t.b1);
          Some (replace t ~in_b2:false)
        end
        else
          (* b1 empty, t1 full: drop the LRU of t1 directly. *)
          match Page_list.pop_back t.t1 with
          | None -> assert false
          | Some victim -> Some victim
      end
      else begin
        if total >= c then begin
          if total = 2 * c then ignore (Page_list.pop_back t.b2);
          if size t >= c then Some (replace t ~in_b2:false) else None
        end
        else None
      end
    in
    Page_list.push_front t.t1 page;
    Policy.Miss { evicted }
  end

let remove t page =
  (* Also purge ghosts so a shootdown fully forgets the page. *)
  let was_resident =
    Page_list.remove t.t1 page || Page_list.remove t.t2 page
  in
  ignore (Page_list.remove t.b1 page : bool);
  ignore (Page_list.remove t.b2 page : bool);
  was_resident

let resident t = Page_list.to_list t.t1 @ Page_list.to_list t.t2
