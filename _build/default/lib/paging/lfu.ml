open Atp_util

(* Heap entries are (frequency, tick, page); an entry is stale unless
   the page is resident with exactly that frequency.  Each hit pushes a
   fresh entry, so the heap holds O(hits) entries between evictions;
   stale ones are discarded as they surface. *)

type t = {
  capacity : int;
  freq : Int_table.t;             (* page -> current frequency *)
  heap : (int * int * int) Heap.t;
  mutable tick : int;
}

let name = "lfu"

let cmp (f1, t1, _) (f2, t2, _) =
  if f1 <> f2 then compare f1 f2 else compare t1 t2

let create ?rng ~capacity () =
  ignore rng;
  if capacity < 1 then invalid_arg "Lfu.create: capacity must be at least 1";
  { capacity; freq = Int_table.create (); heap = Heap.create ~cmp (); tick = 0 }

let capacity t = t.capacity

let size t = Int_table.length t.freq

let mem t page = Int_table.mem t.freq page

let push t page freq =
  t.tick <- t.tick + 1;
  Heap.push t.heap (freq, t.tick, page)

let rec pop_victim t =
  match Heap.pop t.heap with
  | None -> assert false
  | Some (freq, _, page) ->
    (match Int_table.find t.freq page with
     | Some current when current = freq -> page
     | _ -> pop_victim t)

let access t page =
  match Int_table.find t.freq page with
  | Some f ->
    Int_table.set t.freq page (f + 1);
    push t page (f + 1);
    Policy.Hit
  | None ->
    let evicted =
      if size t = t.capacity then begin
        let victim = pop_victim t in
        ignore (Int_table.remove t.freq victim);
        Some victim
      end
      else None
    in
    Int_table.set t.freq page 1;
    push t page 1;
    Policy.Miss { evicted }

let remove t page = Int_table.remove t.freq page

let resident t = Int_table.keys t.freq
