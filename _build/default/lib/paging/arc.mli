(** ARC — Adaptive Replacement Cache (Megiddo & Modha, FAST 2003).

    Balances a recency list [T1] against a frequency list [T2],
    steering the split with ghost hits in [B1]/[B2].  Included both as
    a strong online RAM-replacement policy and to demonstrate that the
    decoupling scheme is policy-agnostic. *)

include Policy.S
