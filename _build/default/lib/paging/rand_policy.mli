(** Uniform random replacement.  Memoryless; the classical
    competitive-analysis baseline for randomized paging. *)

include Policy.S
