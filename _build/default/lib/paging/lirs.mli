(** LIRS — Low Inter-reference Recency Set (Jiang & Zhang, SIGMETRICS
    2002).

    Pages with small reuse distance (LIR) hold almost all of the
    cache; a small window of resident HIR pages plus non-resident HIR
    ghosts in the recency stack detect when a page's reuse distance
    drops, promoting it to LIR.  Consistently stronger than LRU on
    loops and scans.

    The recency stack is bounded at roughly twice the capacity by
    discarding the oldest non-resident ghosts, the standard practical
    variant. *)

include Policy.S
