(** Miss-counting cache simulation: the classical paging problem of
    Sleator and Tarjan, which Lemma 1 reduces both halves of the
    address-translation problem to. *)

type stats = {
  accesses : int;
  hits : int;
  misses : int;
  evictions : int;
}

val empty_stats : stats

val record : stats -> Policy.outcome -> stats

val run :
  ?on_event:(int -> Policy.outcome -> unit) ->
  Policy.instance -> int array -> stats
(** Service every request in the trace.  [on_event i outcome] fires
    after each request, for callers that correlate with other state. *)

val run_seq : Policy.instance -> int Seq.t -> stats
(** Streaming variant for traces too large to materialize. *)

val miss_rate : stats -> float
(** Misses per access; 0 for an empty trace. *)

val pp_stats : Format.formatter -> stats -> unit
