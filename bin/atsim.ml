(* atsim: the command-line driver for the address-translation
   simulator.

     atsim params    — print derived decoupling parameters
     atsim sweep     — Figure-1-style huge-page-size sweep on a workload
     atsim decoupled — run the combined algorithm Z on a workload
     atsim policies  — compare paging policies on a workload
     atsim ballsbins — compare balls-and-bins strategies
     atsim trace     — generate / pack / cat / inspect trace files

   Every command is deterministic given --seed. *)

open Cmdliner
open Atp_core
open Atp_memsim
open Atp_paging
open Atp_workloads
open Atp_util

(* ------------------------------------------------------------------ *)
(* Exit-code taxonomy                                                  *)
(* ------------------------------------------------------------------ *)

(* 0 success; 2 usage error (bad flags or flag combinations, matching
   cmdliner's own convention); 3 malformed input data (a trace file
   that exists but cannot be parsed); 125 internal error.  Scripts can
   tell "you called me wrong" from "your data is bad". *)
let exit_usage = 2

let exit_bad_input = 3

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let ram_arg =
  Arg.(
    value
    & opt int (1 lsl 18)
    & info [ "ram" ] ~docv:"PAGES" ~doc:"Physical memory size in 4 KiB pages.")

let tlb_arg =
  Arg.(
    value & opt int 1536
    & info [ "tlb" ] ~docv:"ENTRIES" ~doc:"TLB entry count (the paper uses 1536).")

let epsilon_arg =
  Arg.(
    value & opt float 0.01
    & info [ "epsilon" ] ~docv:"E" ~doc:"TLB-miss cost ε in the AT cost model.")

let tcache_entries_arg =
  Arg.(
    value & opt int 0
    & info [ "tcache-entries" ] ~docv:"N"
        ~doc:
          "Victima-style reach extension: capacity of the cache-resident \
           store that recovers TLB-evicted translations.  0 (default) \
           disables the tier and reproduces the plain model exactly.")

let tcache_latency_arg =
  Arg.(
    value & opt int 30
    & info [ "tcache-latency" ] ~docv:"CYCLES"
        ~doc:
          "Cycles for a cache-hierarchy translation probe.  In the abstract \
           cost model a recovered miss is billed \
           ε·CYCLES/(levels·memory-latency) — its cost relative to a full \
           radix walk.")

(* A recovered miss costs a cache probe instead of a full radix walk;
   scale ε by that ratio so --tcache-latency means the same thing in
   the cycle-accurate walker and the abstract model. *)
let tcache_epsilon ~epsilon ~tcache_latency =
  let walk_cycles =
    Page_table.levels * Walker.default_config.Walker.memory_latency
  in
  min epsilon (epsilon *. float_of_int tcache_latency /. float_of_int walk_cycles)

let accesses_arg =
  Arg.(
    value & opt int 1_000_000
    & info [ "accesses"; "n" ] ~docv:"N" ~doc:"Measured accesses.")

let warmup_arg =
  Arg.(
    value & opt int 1_000_000
    & info [ "warmup" ] ~docv:"N" ~doc:"Warmup accesses (not counted).")

let w_arg =
  Arg.(
    value & opt int 64
    & info [ "w" ] ~docv:"BITS" ~doc:"Bits per TLB value (hardware constant).")

let workload_conv =
  Arg.enum
    [
      ("bimodal", `Bimodal);
      ("walk", `Walk);
      ("graph500", `Graph500);
      ("zipf", `Zipf);
      ("uniform", `Uniform);
      ("sequential", `Sequential);
    ]

let workload_arg =
  Arg.(
    value
    & opt workload_conv `Bimodal
    & info [ "workload" ] ~docv:"NAME"
        ~doc:
          "Workload: bimodal | walk | graph500 | zipf | uniform | sequential.")

let vpages_arg =
  Arg.(
    value
    & opt int (1 lsl 20)
    & info [ "vpages" ] ~docv:"PAGES"
        ~doc:"Virtual address space size in pages (ignored by graph500).")

let scheme_conv =
  Arg.enum [ ("iceberg", `Iceberg); ("one-choice", `One_choice) ]

let scheme_arg =
  Arg.(
    value & opt scheme_conv `Iceberg
    & info [ "scheme" ] ~docv:"NAME" ~doc:"Allocation scheme: iceberg | one-choice.")

let policy_arg ~name ~default ~doc =
  Arg.(
    value
    & opt (enum (List.map (fun n -> (n, n)) Registry.names)) default
    & info [ name ] ~docv:"POLICY" ~doc)

let trace_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-file" ] ~docv:"PATH"
        ~doc:"Replay a recorded trace file instead of a synthetic workload.")

(* ------------------------------------------------------------------ *)
(* Observability export                                                *)
(* ------------------------------------------------------------------ *)

module Obs = Atp_obs

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"PATH"
        ~doc:
          "Write the run's atp.obs metrics snapshot (counters, gauges, \
           histograms) as JSON to $(docv).")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"PATH"
        ~doc:
          "Enable event tracing and write the retained ring of events as \
           JSONL to $(docv).")

let trace_capacity_arg =
  Arg.(
    value & opt int 65536
    & info [ "trace-capacity" ] ~docv:"N"
        ~doc:"Ring-buffer capacity (most recent events kept) for --trace.")

(* One registry per run; tracing only costs when --trace asked for it. *)
let mk_registry ~trace_out ~trace_capacity =
  let trace =
    match trace_out with
    | Some _ -> Obs.Trace.create ~capacity:trace_capacity
    | None -> Obs.Trace.disabled
  in
  Obs.Registry.create ~trace ()

let export_obs reg ~metrics ~trace_out =
  Option.iter (fun path -> Obs.Registry.write_metrics path reg) metrics;
  Option.iter
    (fun path -> Obs.Trace.write_jsonl path (Obs.Registry.trace reg))
    trace_out

let mk_synthetic_workload kind ~vpages ~seed =
  let rng = Prng.create ~seed () in
  match kind with
  | `Bimodal ->
    Bimodal.create ~hot_pages:(max 1 (vpages / 64)) ~virtual_pages:vpages rng
  | `Walk -> Graph_walk.create ~virtual_pages:vpages rng
  | `Graph500 ->
    let scale =
      (* Pick the scale whose footprint lands near the requested space. *)
      let rec fit s =
        if s >= 20 then 20
        else
          let v = 1 lsl s in
          (* footprint is dominated by 2·16·V edges of 8 bytes *)
          if 2 * 16 * v * 8 / 4096 >= vpages then s else fit (s + 1)
      in
      fit 10
    in
    let csr = Kronecker.generate ~scale ~edge_factor:16 rng in
    fst (Graph500.create_from csr rng)
  | `Zipf -> Simple.zipf ~virtual_pages:vpages rng
  | `Uniform -> Simple.uniform ~virtual_pages:vpages rng
  | `Sequential -> Simple.sequential ~virtual_pages:vpages ()

let mk_workload ?trace_file kind ~vpages ~seed =
  match trace_file with
  | Some path -> Trace.workload_of_file path
  | None -> mk_synthetic_workload kind ~vpages ~seed

let scheme_of = function
  | `Iceberg -> Params.Iceberg { d = 2 }
  | `One_choice -> Params.One_choice

(* ------------------------------------------------------------------ *)
(* params                                                              *)
(* ------------------------------------------------------------------ *)

let params_cmd =
  let run ram w scheme =
    let params = Params.derive ~scheme:(scheme_of scheme) ~p:ram ~w () in
    Format.printf "%a@." Params.pp params
  in
  Cmd.v
    (Cmd.info "params" ~doc:"Print the derived decoupling-scheme parameters.")
    Term.(const run $ ram_arg $ w_arg $ scheme_arg)

(* ------------------------------------------------------------------ *)
(* sweep                                                               *)
(* ------------------------------------------------------------------ *)

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"PATH"
        ~doc:
          "Write the sweep as an atp.bench/1 row stream to $(docv) (one JSON \
           row per huge-page size; see EXPERIMENTS.md).  Also checkpoints \
           each completed size to $(docv).ckpt, enabling $(b,--resume).")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Skip sizes already checkpointed by a previous (killed) run of the \
           same $(b,--json) sweep; requires $(b,--json).")

let sweep_cmd =
  let run workload vpages ram tlb epsilon tc_entries tc_latency accesses warmup
      seed trace_file json_path resume metrics trace_out trace_capacity =
    if resume && json_path = None then begin
      prerr_endline "atsim: --resume requires --json PATH";
      exit exit_usage
    end;
    let tc_eps = tcache_epsilon ~epsilon ~tcache_latency:tc_latency in
    (* Under the runner every size is a task with a private metric
       registry, so the sweep parallelizes and a killed run resumes.
       Event tracing shares one ring across tasks, which forces
       sequential execution when --trace is given. *)
    let tracer =
      match trace_out with
      | Some _ -> Obs.Trace.create ~capacity:trace_capacity
      | None -> Obs.Trace.disabled
    in
    let task h =
      Atp_exp.Spec.task ~key:(Printf.sprintf "h=%d" h) (fun reg ->
          if trace_out <> None then Obs.Registry.set_trace reg tracer;
          let w = mk_workload ?trace_file workload ~vpages ~seed in
          let warmup_trace = Workload.generate w warmup in
          let trace = Workload.generate w accesses in
          let m =
            Machine.create
              ~obs:(Obs.Scope.v ~prefix:(Printf.sprintf "machine.h%d" h) reg)
              { Machine.default_config with
                ram_pages = ram; tlb_entries = tlb; huge_size = h; epsilon;
                tcache_entries = tc_entries }
          in
          let c = Machine.run ~warmup:warmup_trace m trace in
          (* With the tier off, rows (and the whole stream) are
             byte-identical to a pre-tier sweep. *)
          Obs.Json.Obj
            ([
               ("h", Obs.Json.Int h);
               ("ios", Obs.Json.Int c.Machine.ios);
               ("tlb_misses", Obs.Json.Int c.Machine.tlb_misses);
             ]
            @ (if tc_entries > 0 then
                 [ ("tcache_hits", Obs.Json.Int c.Machine.tcache_hits) ]
               else [])
            @ [
                ( "cost",
                  Obs.Json.Float
                    (if tc_entries > 0 then
                       Machine.cost_with_reach ~epsilon ~tcache_epsilon:tc_eps c
                     else Machine.cost ~epsilon c) );
              ]))
    in
    let sizes =
      List.filter (fun h -> h <= ram) [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024 ]
    in
    let spec =
      Atp_exp.Spec.v ~name:"sweep"
        ~params:
          ([
            ("ram", Obs.Json.Int ram);
            ("tlb", Obs.Json.Int tlb);
            ("epsilon", Obs.Json.Float epsilon);
            ("accesses", Obs.Json.Int accesses);
            ("warmup", Obs.Json.Int warmup);
            ("seed", Obs.Json.Int seed);
            ("vpages", Obs.Json.Int vpages);
          ]
          @
          if tc_entries > 0 then
            [
              ("tcache_entries", Obs.Json.Int tc_entries);
              ("tcache_latency", Obs.Json.Int tc_latency);
            ]
          else [])
        (List.map task sizes)
    in
    let config =
      {
        Atp_exp.Runner.default_config with
        domains = (if trace_out <> None then Some 1 else None);
        json_path;
        checkpoint_path = Option.map (fun p -> p ^ ".ckpt") json_path;
        resume;
      }
    in
    let outcomes = Atp_exp.Runner.run ~config spec in
    Format.printf "%8s %14s %14s %14s@." "h" "IOs" "TLB misses"
      (Printf.sprintf "cost(e=%g)" epsilon);
    List.iter
      (fun (o : Atp_exp.Outcome.t) ->
        match
          ( Atp_exp.Outcome.int_field "h" o,
            Atp_exp.Outcome.int_field "ios" o,
            Atp_exp.Outcome.int_field "tlb_misses" o,
            Atp_exp.Outcome.float_field "cost" o )
        with
        | Some h, Some ios, Some tlb_misses, Some cost ->
          Format.printf "%8d %14d %14d %14.1f@." h ios tlb_misses cost
        | _ ->
          Format.printf "%8s failed: %s@." o.Atp_exp.Outcome.key
            (match Atp_exp.Outcome.error o with
            | Some (e, _) -> e
            | None -> "unknown"))
      outcomes;
    (* --metrics: per-task registry snapshots live in the JSON rows;
       the file export merges them (prefixes are disjoint by h). *)
    Option.iter
      (fun path ->
        let section name =
          let fields =
            List.concat_map
              (fun o ->
                match
                  Option.bind (Atp_exp.Outcome.obs o) (Obs.Json.member name)
                with
                | Some (Obs.Json.Obj kvs) -> kvs
                | Some _ | None -> [])
              outcomes
          in
          (name, Obs.Json.Obj fields)
        in
        Out_channel.with_open_text path (fun oc ->
            output_string oc
              (Obs.Json.to_string
                 (Obs.Json.Obj
                    [
                      section "counters"; section "gauges"; section "histograms";
                    ]));
            output_char oc '\n'))
      metrics;
    Option.iter (fun path -> Obs.Trace.write_jsonl path tracer) trace_out
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Huge-page-size sweep (the Figure 1 experiment) on a workload.")
    Term.(
      const run $ workload_arg $ vpages_arg $ ram_arg $ tlb_arg $ epsilon_arg
      $ tcache_entries_arg $ tcache_latency_arg
      $ accesses_arg $ warmup_arg $ seed_arg $ trace_file_arg $ json_arg
      $ resume_arg $ metrics_arg $ trace_out_arg $ trace_capacity_arg)

(* ------------------------------------------------------------------ *)
(* decoupled                                                           *)
(* ------------------------------------------------------------------ *)

module Engine = Atp_engine.Engine

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Replay through the sharded engine with $(docv) epochs in flight \
           (engine mode; 1 plus no $(b,--stream) keeps the exact sequential \
           in-memory path).")

let epoch_arg =
  Arg.(
    value & opt int 262_144
    & info [ "epoch" ] ~docv:"LEN"
        ~doc:"Engine mode: references per epoch time-slice.")

let shard_warmup_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shard-warmup" ] ~docv:"N"
        ~doc:
          "Engine mode: warm-up references replayed (then discarded) before \
           each epoch; defaults to one epoch.  Replaces $(b,--warmup), which \
           engine mode ignores.")

let stream_arg =
  Arg.(
    value & flag
    & info [ "stream" ]
        ~doc:
          "Engine mode: never materialize the trace — pull references \
           chunk-by-chunk from a packed $(b,--trace-file) (see $(b,atsim \
           trace pack)) or straight from the synthetic generator, so peak \
           memory is bounded by shards x (epoch + warm-up).")

let decoupled_cmd =
  let run workload vpages ram tlb epsilon accesses warmup seed w scheme xp yp
      trace_file shards epoch shard_warmup stream metrics trace_out
      trace_capacity =
    let reg = mk_registry ~trace_out ~trace_capacity in
    let params = Params.derive ~scheme:(scheme_of scheme) ~p:ram ~w () in
    Format.printf "%a@.@." Params.pp params;
    let make_sim ?obs () =
      (* Deterministic from [seed] alone, so engine worker domains can
         call it concurrently and build identical simulators. *)
      let rng = Prng.create ~seed:(seed + 1) () in
      let x =
        Policy.instantiate (Registry.find_exn xp) ~rng:(Prng.split rng)
          ~capacity:tlb ()
      in
      let y =
        Policy.instantiate (Registry.find_exn yp) ~rng:(Prng.split rng)
          ~capacity:(Params.usable_pages params) ()
      in
      Simulation.create ~seed ?obs ~params ~x ~y ()
    in
    if shards > 1 || stream then begin
      let source =
        match trace_file with
        | Some path when stream -> (
          match Trace.format_of_file path with
          | Trace.Streamed -> Trace.Stream.source path
          | Trace.Text | Trace.Binary | Trace.Hex ->
            (* Hex refuses inside load with an import pointer. *)
            Engine.source_of_array (Trace.load path))
        | Some path -> Engine.source_of_array (Trace.load path)
        | None ->
          let wl = mk_synthetic_workload workload ~vpages ~seed in
          Engine.source_of_workload wl ~n:accesses
      in
      let config =
        {
          Engine.shards;
          epoch_len = epoch;
          warmup = Option.value shard_warmup ~default:epoch;
          domains = None;
        }
      in
      let totals =
        Engine.replay
          ~obs:(Obs.Scope.v ~prefix:"engine" reg)
          ~clock:Atp_exp.Runner.wall_clock ~config
          ~make_sim:(fun () -> make_sim ())
          source
      in
      Format.printf "%a@." Engine.pp_totals totals;
      (* Honest accuracy label: exact when the warm-up window covered
         every epoch's whole stream prefix; the documented bound only
         applies under the adequacy condition (warm-up can fill the
         caches — see EXPERIMENTS.md B2), which we cannot check here. *)
      let exact =
        totals.Engine.epochs <= 1
        || config.Engine.warmup >= (totals.Engine.epochs - 1) * epoch
      in
      Format.printf "C(Z) = %.2f (epsilon=%g, %s)@."
        (Engine.cost ~epsilon totals)
        epsilon
        (if exact then "exact: warm-up covered every epoch prefix"
         else
           Printf.sprintf
             "approximate: within %.0f%% of sequential under the adequacy \
              condition, see EXPERIMENTS.md B2"
             (100. *. Engine.documented_error_bound))
    end
    else begin
      let wl = mk_workload ?trace_file workload ~vpages ~seed in
      let warmup_trace = Workload.generate wl warmup in
      let trace = Workload.generate wl accesses in
      let z = make_sim ~obs:(Obs.Scope.v ~prefix:"sim" reg) () in
      let r = Simulation.run ~warmup:warmup_trace z trace in
      Format.printf "%a@." Simulation.pp_report r;
      Format.printf "C(Z) = %.2f   C_TLB(X) = %.2f   C_IO(Y) = %.2f@."
        (Simulation.cost ~epsilon r)
        (Simulation.c_tlb ~epsilon r)
        (Simulation.c_io r)
    end;
    export_obs reg ~metrics ~trace_out
  in
  Cmd.v
    (Cmd.info "decoupled"
       ~doc:
         "Run the combined memory-management algorithm Z (Theorem 4) on a \
          workload, sequentially or through the sharded streaming engine.")
    Term.(
      const run $ workload_arg $ vpages_arg $ ram_arg $ tlb_arg $ epsilon_arg
      $ accesses_arg $ warmup_arg $ seed_arg $ w_arg $ scheme_arg
      $ policy_arg ~name:"x-policy" ~default:"lru"
          ~doc:"TLB-replacement policy (X)."
      $ policy_arg ~name:"y-policy" ~default:"lru"
          ~doc:"RAM-replacement policy (Y)."
      $ trace_file_arg $ shards_arg $ epoch_arg $ shard_warmup_arg $ stream_arg
      $ metrics_arg $ trace_out_arg $ trace_capacity_arg)

(* ------------------------------------------------------------------ *)
(* policies                                                            *)
(* ------------------------------------------------------------------ *)

let policies_cmd =
  let run workload vpages accesses warmup seed capacity trace_file =
    let wl = mk_workload ?trace_file workload ~vpages ~seed in
    let warmup_trace = Workload.generate wl warmup in
    let trace = Workload.generate wl accesses in
    Format.printf "%-10s %14s %14s %12s@." "policy" "hits" "misses" "miss rate";
    List.iter
      (fun (module P : Policy.S) ->
        let rng = Prng.create ~seed:(seed + 7) () in
        let inst = Policy.instantiate (module P) ~rng ~capacity () in
        Array.iter (fun p -> ignore (inst.Policy.access p)) warmup_trace;
        let stats = Sim.run inst trace in
        Format.printf "%-10s %14d %14d %12.4f@." P.name stats.Sim.hits
          stats.Sim.misses (Sim.miss_rate stats))
      Registry.all;
    (* Offline optimum on the measured window for reference. *)
    let opt = Opt.misses ~capacity (Array.append warmup_trace trace) in
    Format.printf "%-10s %14s %14d %12s   (whole run incl. warmup)@." "opt" "-"
      opt "-"
  in
  Cmd.v
    (Cmd.info "policies" ~doc:"Compare paging policies on a workload.")
    Term.(
      const run $ workload_arg $ vpages_arg $ accesses_arg $ warmup_arg
      $ seed_arg
      $ Arg.(
          value & opt int 4096
          & info [ "capacity" ] ~docv:"PAGES" ~doc:"Cache capacity in pages.")
      $ trace_file_arg)

(* ------------------------------------------------------------------ *)
(* ballsbins                                                           *)
(* ------------------------------------------------------------------ *)

let ballsbins_cmd =
  let run bins lambda steps seed =
    let open Atp_ballsbins in
    let m = lambda * bins in
    Format.printf "%-12s %10s %10s %10s@." "strategy" "max ever" "max final"
      "failed";
    let tau = Strategy.default_tau ~m ~bins in
    List.iter
      (fun (mk, layers) ->
        let rng = Prng.create ~seed () in
        let strategy = mk rng in
        let game = Game.create ~layers ~bins () in
        let arng = Prng.create ~seed:(seed + 1) () in
        let ops = Adversary.churn arng ~m ~steps ~fresh:true in
        let r =
          Runner.run ~bin_capacity:(tau + 8) ~game ~strategy ops
        in
        Format.printf "%-12s %10d %10d %10d@." strategy.Strategy.name
          r.Runner.max_load_ever r.Runner.max_load_final r.Runner.failed_balls)
      [
        ((fun rng -> Strategy.one_choice rng ~bins), 1);
        ((fun rng -> Strategy.greedy rng ~d:2 ~bins), 1);
        ((fun rng -> Strategy.iceberg rng ~tau ~bins ()), 2);
      ]
  in
  Cmd.v
    (Cmd.info "ballsbins"
       ~doc:"Compare balls-and-bins strategies under a churn adversary.")
    Term.(
      const run
      $ Arg.(
          value & opt int 4096
          & info [ "bins" ] ~docv:"N" ~doc:"Number of bins.")
      $ Arg.(
          value & opt int 12
          & info [ "lambda" ] ~docv:"L" ~doc:"Average load m/n.")
      $ Arg.(
          value & opt int 500_000
          & info [ "steps" ] ~docv:"N" ~doc:"Churn rounds after the fill.")
      $ seed_arg)

(* ------------------------------------------------------------------ *)
(* trace                                                               *)
(* ------------------------------------------------------------------ *)

let chunk_arg =
  Arg.(
    value
    & opt int Trace.Stream.default_chunk_size
    & info [ "chunk" ] ~docv:"N"
        ~doc:"References per chunk of the streamed (ATPS) format.")

let pp_stream_header ppf (h : Trace.Stream.header) =
  Format.fprintf ppf "format=streamed version=%d chunk_size=%d length=%d"
    h.Trace.Stream.version h.Trace.Stream.chunk_size h.Trace.Stream.length

let trace_gen_cmd =
  let run workload vpages accesses seed out binary stream chunk =
    let wl = mk_synthetic_workload workload ~vpages ~seed in
    if stream then begin
      (* Straight from the generator into the chunked writer: the
         trace is never resident, so --accesses can exceed RAM. *)
      Trace.Stream.with_writer ~chunk_size:chunk out (fun w ->
          for _ = 1 to accesses do
            Trace.Stream.push w (wl.Workload.next ())
          done);
      Format.printf "wrote %s: %a@." out pp_stream_header
        (Trace.Stream.with_reader out Trace.Stream.header)
    end
    else begin
      let trace = Workload.generate wl accesses in
      if binary then Trace.save_binary out trace else Trace.save_text out trace;
      Format.printf "wrote %s: %a@." out Trace.pp_summary
        (Trace.summarize trace)
    end
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a page-reference trace file.")
    Term.(
      const run $ workload_arg $ vpages_arg $ accesses_arg $ seed_arg
      $ Arg.(
          required
          & opt (some string) None
          & info [ "out"; "o" ] ~docv:"PATH" ~doc:"Output path.")
      $ Arg.(
          value & flag & info [ "binary" ] ~doc:"Binary format (default text).")
      $ Arg.(
          value & flag
          & info [ "stream" ]
              ~doc:"Streamed chunked format, written without materializing.")
      $ chunk_arg)

let src_pos_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"SRC" ~doc:"Input trace file (any format).")

let trace_pack_cmd =
  let run src dst chunk =
    Trace.pack ~chunk_size:chunk ~src ~dst ();
    Format.printf "packed %s -> %s: %a@." src dst pp_stream_header
      (Trace.Stream.with_reader dst Trace.Stream.header)
  in
  Cmd.v
    (Cmd.info "pack"
       ~doc:
         "Convert a trace (text, binary, or streamed) into the streamed \
          chunked format, one chunk resident at a time.")
    Term.(
      const run $ src_pos_arg
      $ Arg.(
          required
          & pos 1 (some string) None
          & info [] ~docv:"DST" ~doc:"Output path (ATPS).")
      $ chunk_arg)

let trace_cat_cmd =
  let run src limit =
    let printed = ref 0 in
    let emit page =
      if Option.fold ~none:true ~some:(fun l -> !printed < l) limit then begin
        print_string (string_of_int page);
        print_char '\n';
        incr printed
      end
    in
    (match Trace.format_of_file src with
    | Trace.Streamed -> Trace.Stream.iter emit src
    | Trace.Text | Trace.Binary | Trace.Hex -> Array.iter emit (Trace.load src));
    flush stdout
  in
  Cmd.v
    (Cmd.info "cat"
       ~doc:
         "Print a trace as text, one reference per line (streamed inputs are \
          decoded chunk by chunk).")
    Term.(
      const run $ src_pos_arg
      $ Arg.(
          value
          & opt (some int) None
          & info [ "limit" ] ~docv:"N" ~doc:"Stop after $(docv) references."))

let trace_info_cmd =
  let run src hex =
    (match Trace.format_of_file src with
    | Trace.Streamed ->
      Format.printf "%a@." pp_stream_header
        (Trace.Stream.with_reader src Trace.Stream.header)
    | Trace.Hex ->
      Format.printf
        "format=hex (external address trace; convert with `atsim trace \
         import`)@."
    | (Trace.Text | Trace.Binary) as f ->
      Format.printf "format=%a %a@." Trace.pp_format f Trace.pp_summary
        (Trace.summarize (Trace.load src)));
    if hex > 0 then begin
      let ic = open_in_bin src in
      let n = min hex (in_channel_length ic) in
      let bytes = really_input_string ic n in
      close_in ic;
      String.iteri
        (fun i c ->
          if i mod 16 = 0 then Format.printf "%08x " i;
          Format.printf " %02x" (Char.code c);
          if i mod 16 = 15 || i = n - 1 then Format.printf "@.")
        bytes
    end
  in
  Cmd.v
    (Cmd.info "info"
       ~doc:
         "Print a trace file's format and header, optionally with a hex dump \
          of its first bytes (golden tests pin the on-disk format with it).")
    Term.(
      const run $ src_pos_arg
      $ Arg.(
          value & opt int 0
          & info [ "hex" ] ~docv:"BYTES"
              ~doc:"Also hex-dump the first $(docv) bytes of the file."))

(* trace import: external address traces -> ATPS page traces.  The
   importers stream line-by-line into the chunked writer, so a capture
   of any size converts in constant memory. *)

let import_format_conv =
  Arg.enum
    [
      ("auto", None);
      ("hex", Some Import.Hex);
      ("lackey", Some Import.Lackey);
      ("csv", Some Import.Csv);
    ]

let trace_import_cmd =
  let run src dst format page_bits limit dedup no_instr column radix skip_header
      chunk =
    let config =
      {
        Import.page_bits;
        limit;
        dedup_consecutive = dedup;
        drop_instr = no_instr;
        csv = { Import.column; radix; skip_header };
      }
    in
    let format =
      match format with
      | Some f -> f
      | None -> (
        match Import.sniff src with
        | `Import f -> f
        | `Native f ->
          Format.eprintf
            "atsim: %s is already a native %a trace; use `atsim trace pack`@."
            src Trace.pp_format f;
          exit exit_usage)
    in
    let stats =
      try Import.import_file ~chunk_size:chunk ~config ~format ~src ~dst ()
      with Trace.Parse_error { path; what } ->
        Format.eprintf "atsim: %s: %s@." path what;
        exit exit_bad_input
    in
    Format.printf "imported %s -> %s: format=%a page_bits=%d %a@." src dst
      Import.pp_format format page_bits Import.pp_stats stats;
    Format.printf "%a@." pp_stream_header
      (Trace.Stream.with_reader dst Trace.Stream.header)
  in
  Cmd.v
    (Cmd.info "import"
       ~doc:
         "Convert an external memory trace (hex address-per-line, valgrind \
          lackey output, or CSV) into the streamed ATPS page-trace format, \
          shifting addresses to virtual page numbers; the conversion streams \
          and never materializes the trace.")
    Term.(
      const run $ src_pos_arg
      $ Arg.(
          required
          & pos 1 (some string) None
          & info [] ~docv:"DST" ~doc:"Output path (ATPS).")
      $ Arg.(
          value
          & opt import_format_conv None
          & info [ "format" ] ~docv:"FMT"
              ~doc:
                "Source format: auto | hex | lackey | csv (auto sniffs the \
                 content; digit-only files are ambiguous, force hex for \
                 those).")
      $ Arg.(
          value & opt int 12
          & info [ "page-bits" ] ~docv:"BITS"
              ~doc:"Address-to-VPN shift (12 = 4 KiB pages).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "limit" ] ~docv:"N"
              ~doc:"Stop after $(docv) imported references.")
      $ Arg.(
          value & flag
          & info [ "dedup-consecutive" ]
              ~doc:
                "Drop a reference that repeats the previously emitted page \
                 (collapses same-page runs of sub-page-stride accesses).")
      $ Arg.(
          value & flag
          & info [ "no-instr" ]
              ~doc:"Lackey: drop instruction-fetch (I) records.")
      $ Arg.(
          value & opt int 1
          & info [ "column" ] ~docv:"N"
              ~doc:"CSV: 1-based index of the address column.")
      $ Arg.(
          value
          & opt (Arg.enum [ ("hex", Import.Hexadecimal); ("dec", Import.Decimal) ])
              Import.Hexadecimal
          & info [ "radix" ] ~docv:"RADIX"
              ~doc:"CSV: radix of the address column (hex | dec).")
      $ Arg.(
          value & flag
          & info [ "skip-header" ] ~doc:"CSV: skip the first line of the file.")
      $ chunk_arg)

let trace_cmd =
  Cmd.group
    (Cmd.info "trace"
       ~doc:
         "Generate, pack, import, print, and inspect page-reference trace \
          files.")
    [
      trace_gen_cmd;
      trace_pack_cmd;
      trace_import_cmd;
      trace_cat_cmd;
      trace_info_cmd;
    ]

(* ------------------------------------------------------------------ *)
(* mrc                                                                 *)
(* ------------------------------------------------------------------ *)

let mrc_cmd =
  let run workload vpages accesses seed =
    let wl = mk_workload workload ~vpages ~seed in
    let trace = Workload.generate wl accesses in
    let m = Mattson.of_trace trace in
    Format.printf "accesses=%d cold=%d distinct=%d ws(99.9%%)=%d@." accesses
      (Mattson.cold_misses m) (Mattson.distinct_pages m)
      (Mattson.working_set_size m ~fraction:0.999);
    Format.printf "%12s %14s %12s@." "capacity" "misses" "miss rate";
    let rec caps c acc = if c > vpages then List.rev acc else caps (c * 4) (c :: acc) in
    List.iter
      (fun c ->
        let misses = Mattson.misses m c in
        Format.printf "%12d %14d %12.4f@." c misses
          (float_of_int misses /. float_of_int accesses))
      (caps 64 [])
  in
  Cmd.v
    (Cmd.info "mrc"
       ~doc:"LRU miss-ratio curve of a workload (single-pass Mattson).")
    Term.(const run $ workload_arg $ vpages_arg $ accesses_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* thp                                                                 *)
(* ------------------------------------------------------------------ *)

let thp_cmd =
  let run workload vpages ram accesses warmup seed huge_size =
    let wl = mk_workload workload ~vpages ~seed in
    let warmup_trace = Workload.generate wl warmup in
    let trace = Workload.generate wl accesses in
    let t =
      Thp.create { Thp.default_config with ram_pages = ram; huge_size }
    in
    let c = Thp.run ~warmup:warmup_trace t trace in
    Format.printf "%a@." Thp.pp_counters c;
    Format.printf "promoted regions now: %d; cost(e=0.01) = %.1f@."
      (Thp.promoted_regions t)
      (Thp.cost ~epsilon:0.01 c)
  in
  Cmd.v
    (Cmd.info "thp"
       ~doc:"Run the transparent-huge-pages OS model on a workload.")
    Term.(
      const run $ workload_arg $ vpages_arg $ ram_arg $ accesses_arg
      $ warmup_arg $ seed_arg
      $ Arg.(
          value & opt int 512
          & info [ "huge-size" ] ~docv:"PAGES"
              ~doc:"Huge-page size in base pages (power of two)."))

(* ------------------------------------------------------------------ *)
(* fleet                                                               *)
(* ------------------------------------------------------------------ *)

let fleet_cmd =
  let open Atp_fleet in
  let mode_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("shared", `Shared);
               ("reserved", `Reserved);
               ("partitioned", `Partitioned);
             ])
          `Shared
      & info [ "qos" ] ~docv:"MODE"
          ~doc:
            "QoS mode: $(b,shared) (one ASID-tagged TLB and one RAM, global \
             LRU — noisy neighbors evict everyone), $(b,reserved) (per-tenant \
             slices of the same hardware), or $(b,partitioned) (per-tenant \
             full simulators replayed tenant-sharded on the engine).")
  in
  let intf name default doc =
    Arg.(value & opt int default & info [ name ] ~docv:"N" ~doc)
  in
  let floatf name default doc =
    Arg.(value & opt float default & info [ name ] ~docv:"X" ~doc)
  in
  let run mode ticks arrival lifetime refs_per_tick max_active initial pinned
      pinned_weight vpages tlb ram shards policy epsilon seed metrics trace_out
      trace_capacity =
    let cfg =
      {
        Lifecycle.seed;
        ticks;
        arrival_rate = arrival;
        mean_lifetime = lifetime;
        accesses_per_tick = refs_per_tick;
        max_active;
        initial;
        pinned;
        pinned_weight;
      }
    in
    (try Lifecycle.validate cfg
     with Invalid_argument msg ->
       Format.eprintf "atsim: %s@." msg;
       exit exit_usage);
    let spec =
      Mix.spec ~name:"fleet-mix" ~weights:[| 0.7; 0.3 |]
        [|
          (fun rng -> Simple.zipf ~virtual_pages:vpages rng);
          (fun rng -> Simple.uniform ~virtual_pages:vpages rng);
        |]
    in
    let reg = mk_registry ~trace_out ~trace_capacity in
    let scope = Obs.Scope.v ~prefix:"fleet" reg in
    let fairness =
      match mode with
      | (`Shared | `Reserved) as m ->
        let machine =
          {
            Contended.default with
            Contended.tlb_entries = tlb;
            ram_frames = ram;
            epsilon;
          }
        in
        let qos =
          match m with
          | `Shared -> Contended.Shared
          | `Reserved ->
            (* An equal static slice of the shared hardware apiece. *)
            Contended.Reserved
              {
                tlb_entries = max 1 (tlb / max_active);
                ram_frames = max 1 (ram / max_active);
              }
        in
        let r =
          Contended.run ~obs:scope machine qos (Lifecycle.source cfg ~spec)
        in
        Format.printf
          "tenants reported: %d; peak active: %d; asid rollovers: %d; leaks: \
           %d@."
          (List.length r.Contended.stats)
          r.Contended.peak_active r.Contended.rollovers r.Contended.leaks;
        Fleet.of_stats ~epsilon r.Contended.stats
      | `Partitioned ->
        let p = Registry.find_exn policy in
        (* Y's capacity must fit under the (1-δ)P budget, so derive
           the decoupling parameters for a comfortably larger P. *)
        let params = Params.derive ~p:(2 * ram) ~w:64 () in
        let make_sim tenant =
          let x =
            Policy.instantiate p
              ~rng:(Prng.create ~seed:(seed + 11 + tenant) ())
              ~capacity:tlb ()
          in
          let y =
            Policy.instantiate p
              ~rng:(Prng.create ~seed:(seed + 13 + tenant) ())
              ~capacity:ram ()
          in
          Simulation.create ~seed:(seed + 7 + tenant) ~params ~x ~y ()
        in
        let reports =
          Engine.replay_tenants ~obs:scope ~shards ~make_sim (fun () ->
              Lifecycle.source cfg ~spec)
        in
        Format.printf "tenants reported: %d; %a@." (List.length reports)
          Engine.pp_totals
          (Engine.tenant_totals reports);
        Fleet.of_reports ~epsilon reports
    in
    Fleet.observe scope fairness;
    Format.printf "per-tenant cost: %a@." Fleet.pp fairness;
    export_obs reg ~metrics ~trace_out
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Simulate a churning multi-tenant fleet: stochastic arrivals and \
          departures, per-tenant mixed workloads, shared or reserved \
          translation hardware, and a per-tenant fairness report \
          (p50/p99/Jain).")
    Term.(
      const run $ mode_arg
      $ intf "ticks" 2_000 "Simulation length in ticks."
      $ floatf "arrival-rate" 0.5 "Expected tenant arrivals per tick."
      $ floatf "lifetime" 200.0 "Mean tenant lifetime in ticks."
      $ intf "refs-per-tick" 64 "Fleet-wide references per tick."
      $ intf "max-active" 256 "Cap on concurrently active tenants."
      $ intf "initial" 16 "Tenants present at tick 0."
      $ intf "pinned" 0 "Immortal heavy (noisy-neighbor) tenants."
      $ floatf "pinned-weight" 8.0 "Issue weight of a pinned tenant."
      $ Arg.(
          value & opt int 4096
          & info [ "vpages" ] ~docv:"PAGES"
              ~doc:"Per-tenant virtual address space in pages.")
      $ tlb_arg $ ram_arg
      $ intf "fleet-shards" 4 "Tenant shards (partitioned mode)."
      $ policy_arg ~name:"policy" ~default:"lru"
          ~doc:"Replacement policy (partitioned mode)."
      $ epsilon_arg $ seed_arg $ metrics_arg $ trace_out_arg
      $ trace_capacity_arg)

(* ------------------------------------------------------------------ *)
(* compare                                                             *)
(* ------------------------------------------------------------------ *)

let compare_cmd =
  let run workload vpages ram tlb epsilon tc_entries tc_latency accesses warmup
      seed huge_size =
    let wl = mk_workload workload ~vpages ~seed in
    let warmup_trace = Workload.generate wl warmup in
    let trace = Workload.generate wl accesses in
    let schemes =
      [
        Atp_core.Scheme.physical ~tlb_entries:tlb ~ram_pages:ram ~huge_size:1 ();
        Atp_core.Scheme.physical ~tlb_entries:tlb ~ram_pages:ram ~huge_size ();
        Atp_core.Scheme.thp ~base_tlb_entries:tlb ~ram_pages:ram ~huge_size ();
        Atp_core.Scheme.superpage ~base_tlb_entries:tlb ~ram_pages:ram
          ~huge_size ();
        Atp_core.Scheme.decoupled ~tlb_entries:tlb ~ram_pages:ram ~w:64 ();
        Atp_core.Scheme.hybrid ~tlb_entries:tlb ~ram_pages:ram ~chunk:4 ~w:64 ();
      ]
      @
      (* Reach extension enters the line-up only when asked for, so the
         default output is unchanged. *)
      if tc_entries > 0 then
        [
          Atp_core.Scheme.physical_reach ~tlb_entries:tlb ~ram_pages:ram
            ~huge_size:1 ~tcache_entries:tc_entries ();
        ]
      else []
    in
    let tc_eps = tcache_epsilon ~epsilon ~tcache_latency:tc_latency in
    Format.printf "%-16s %14s %14s %14s@." "scheme" "IOs" "TLB events"
      (Printf.sprintf "cost(e=%g)" epsilon);
    List.iter
      (fun (name, ios, tlb_events, cost) ->
        Format.printf "%-16s %14d %14d %14.1f@." name ios tlb_events cost)
      (Atp_core.Scheme.compare_all ~warmup:warmup_trace ~tcache_epsilon:tc_eps
         ~epsilon schemes trace)
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Compare every memory-management scheme (physical, THP, superpage, \
          decoupled, hybrid, and — with --tcache-entries — Victima-style \
          reach extension) on one workload.")
    Term.(
      const run $ workload_arg $ vpages_arg $ ram_arg $ tlb_arg $ epsilon_arg
      $ tcache_entries_arg $ tcache_latency_arg
      $ accesses_arg $ warmup_arg $ seed_arg
      $ Arg.(
          value & opt int 512
          & info [ "huge-size" ] ~docv:"PAGES" ~doc:"Huge/super page size."))

let () =
  let doc = "Paging and the address-translation problem: simulators and schemes" in
  let info = Cmd.info "atsim" ~version:"1.0.0" ~doc in
  (* A malformed trace file is a data error, not an internal one nor a
     usage mistake: any Parse_error that escapes a subcommand exits
     with the malformed-input code (3) and a uniform path: message —
     distinct from flag errors (2) and internal errors (125). *)
  exit
    (try
       Cmd.eval ~catch:false
         (Cmd.group info
            [
            params_cmd;
            sweep_cmd;
            decoupled_cmd;
            policies_cmd;
            ballsbins_cmd;
            trace_cmd;
            mrc_cmd;
            thp_cmd;
            fleet_cmd;
            compare_cmd;
          ])
     with
     | Trace.Parse_error { path; what } ->
       Format.eprintf "atsim: %s: %s@." path what;
       exit_bad_input
     | e ->
       (* mirror cmdliner's default uncaught-exception report *)
       let bt = Printexc.get_raw_backtrace () in
       Format.eprintf "atsim: internal error, uncaught exception:@.%s@.%s@."
         (Printexc.to_string e)
         (Printexc.raw_backtrace_to_string bt);
       125)
