(* bench_validate: check BENCH_<experiment>.json row streams against
   the atp.bench/1 schema (see lib/exp/schema.mli and EXPERIMENTS.md).

     bench_validate FILE...

   Exits 0 when every file validates, 1 otherwise, printing one line
   per file either way.  CI runs this over the artifacts a quick-mode
   bench sweep produces. *)

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: bench_validate FILE...";
    exit 2
  end;
  let failed = ref false in
  List.iter
    (fun path ->
      match Atp_exp.Schema.validate_file path with
      | Ok rows -> Printf.printf "%s: OK (%d rows)\n" path rows
      | Error msg ->
        Printf.printf "%s: INVALID: %s\n" path msg;
        failed := true)
    files;
  if !failed then exit 1
