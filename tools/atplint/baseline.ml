(* Committed finding baseline: lets a new rule land at error severity
   without a flag-day.  A baseline entry suppresses a current finding
   when (file, rule, message) match exactly — line/column are omitted
   deliberately so unrelated edits that move a finding do not
   invalidate the entry.

   File format, one entry per line, '#' comments and blank lines
   ignored:

     file<TAB>rule<TAB>message

   `--write-baseline FILE` regenerates the file from the current
   findings (sorted, deduplicated); `--baseline FILE` applies it.
   Stale entries — present in the baseline but no longer firing — are
   reported on stderr so the file ratchets down over time. *)

type entry = { b_file : string; b_rule : string; b_message : string }

type t = entry list

exception Baseline_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Baseline_error s)) fmt

let entry_of_diag (d : Diagnostic.t) =
  { b_file = d.Diagnostic.file; b_rule = d.Diagnostic.rule; b_message = d.Diagnostic.message }

let compare_entry a b =
  let c = String.compare a.b_file b.b_file in
  if c <> 0 then c
  else
    let c = String.compare a.b_rule b.b_rule in
    if c <> 0 then c else String.compare a.b_message b.b_message

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let entries = ref [] in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       let trimmed = String.trim line in
       if trimmed = "" || trimmed.[0] = '#' then ()
       else
         match String.split_on_char '\t' line with
         | [ b_file; b_rule; b_message ] ->
           entries := { b_file; b_rule; b_message } :: !entries
         | _ ->
           error "line %d: expected file<TAB>rule<TAB>message, got %S" !lineno
             line
     done
   with End_of_file -> ());
  List.rev !entries

(* Is this finding recorded in the baseline? *)
let mem t (d : Diagnostic.t) =
  let e = entry_of_diag d in
  List.exists (fun b -> compare_entry b e = 0) t

(* Entries that matched no current finding: candidates for deletion. *)
let stale t diags =
  let current = List.map entry_of_diag diags in
  List.filter
    (fun b -> not (List.exists (fun e -> compare_entry b e = 0) current))
    t

let write path diags =
  let entries =
    List.sort_uniq compare_entry (List.map entry_of_diag diags)
  in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  output_string oc
    "# atplint baseline: findings grandfathered in when a rule landed.\n\
     # One entry per line: file<TAB>rule<TAB>message.  Regenerate with\n\
     #   atplint --write-baseline FILE ...\n\
     # and shrink it as findings are fixed (stale entries are reported\n\
     # on stderr).  See docs/LINTING.md for the adoption workflow.\n";
  List.iter
    (fun e ->
      output_string oc
        (Printf.sprintf "%s\t%s\t%s\n" e.b_file e.b_rule e.b_message))
    entries;
  List.length entries
