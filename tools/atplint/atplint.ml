(* atplint — static analysis over the compiler's typed ASTs (.cmt)
   enforcing the project invariants described in docs/LINTING.md.

   Usage:
     atplint [--root DIR] [--config FILE] [--only R1,R2] [--no-scope]
             [--format human|json] [--baseline FILE]
             [--write-baseline FILE] PATH...

   PATHs are .cmt files or directories searched recursively.  Run it
   from the dune build context root (dune build @lint does) so the
   load paths recorded in the .cmt files resolve.

   Two analysis phases: the intra-procedural rules run per file, then
   every scanned unit is linked into one call graph (Callgraph) and
   the whole-program rules — domain-safety and
   hot-path-alloc-transitive — judge the linked program.

   Exit codes: 0 clean (or warnings only), 1 at least one error-level
   diagnostic, 2 operational failure (unreadable file, bad config or
   baseline). *)

open Atplint_lib

let root = ref "."
let config_file = ref ""
let only = ref []
let no_scope = ref false
let format = ref "human"
let baseline_file = ref ""
let write_baseline_file = ref ""
let paths = ref []

let usage = "atplint [options] <.cmt file or directory>..."

let list_rules () =
  List.iter
    (fun (r : Rules.rule) ->
      Printf.printf "%-20s %s%s\n" r.name r.summary
        (if r.whole_program then " (whole-program)" else "");
      Printf.printf "%-20s scope: %s\n" "" (String.concat " " r.scopes))
    Rules.all_rules;
  exit 0

let args =
  [
    ("--root", Arg.Set_string root,
     "DIR repository root used to resolve interface files (default .)");
    ("--config", Arg.Set_string config_file,
     "FILE atplint.toml with per-path allowlists and severities");
    ("--only",
     Arg.String
       (fun s -> only := String.split_on_char ',' s |> List.map String.trim),
     "R1,R2 run only the named rules");
    ("--no-scope", Arg.Set no_scope,
     " apply every rule to every file (fixture testing)");
    ("--format", Arg.Set_string format,
     "FMT output format: human (default) or json (one object per line)");
    ("--baseline", Arg.Set_string baseline_file,
     "FILE suppress findings recorded in this committed baseline");
    ("--write-baseline", Arg.Set_string write_baseline_file,
     "FILE write the current findings as a baseline and exit 0");
    ("--list-rules", Arg.Unit list_rules, " print the rules and exit");
  ]

let fatal fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("atplint: " ^ s);
      exit 2)
    fmt

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let normalize_path f =
  if starts_with ~prefix:"./" f then String.sub f 2 (String.length f - 2)
  else f

(* --- cmt discovery ------------------------------------------------ *)

let rec find_cmts acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry -> find_cmts acc (Filename.concat path entry))
      acc (Sys.readdir path)
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

(* --- interface-side information ----------------------------------- *)

let attr_doc_strings (attrs : Parsetree.attributes) =
  List.filter_map
    (fun (a : Parsetree.attribute) ->
      if a.attr_name.txt <> "ocaml.doc" && a.attr_name.txt <> "doc" then None
      else
        match a.attr_payload with
        | PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
                      _ );
                _;
              };
            ] ->
          Some s
        | _ -> None)
    attrs

let contains_raise doc =
  (* Look for the odoc tag, not the bare word: "@raise". *)
  let n = String.length doc in
  let rec go i =
    if i + 6 > n then false
    else if String.sub doc i 6 = "@raise" then true
    else go (i + 1)
  in
  go 0

(* Parse the interface source and return the exported values that have
   no @raise in their attached doc comment. *)
let undocumented_exports mli_path =
  let ic = open_in_bin mli_path in
  let source =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf mli_path;
  match Parse.interface lexbuf with
  | exception _ ->
    prerr_endline
      ("atplint: warning: could not parse " ^ mli_path
     ^ "; skipping exception-contract for it");
    []
  | signature ->
    List.filter_map
      (fun (item : Parsetree.signature_item) ->
        match item.psig_desc with
        | Psig_value vd ->
          let docs = attr_doc_strings vd.pval_attributes in
          if List.exists contains_raise docs then None
          else Some vd.pval_name.txt
        | _ -> None)
      signature

(* --- per-file processing ------------------------------------------ *)

(* Is rule [r] enabled for [file] under --only and scope filtering?
   Whole-program rules use the same predicate at finalization time,
   keyed by each diagnostic's own file. *)
let rule_enabled (r : Rules.rule) ~file =
  (!only = [] || List.mem r.name !only)
  && (!no_scope || List.exists (fun p -> starts_with ~prefix:p file) r.scopes)

let want_whole_program () =
  List.exists
    (fun (r : Rules.rule) ->
      r.whole_program && (!only = [] || List.mem r.name !only))
    Rules.all_rules

let process ~cfg ~diags ~graph cmt_path =
  let cmt =
    try Cmt_format.read_cmt cmt_path
    with exn ->
      fatal "cannot read %s: %s" cmt_path (Printexc.to_string exn)
  in
  match (cmt.cmt_annots, cmt.cmt_sourcefile) with
  | Cmt_format.Implementation str, Some source
    when Filename.check_suffix source ".ml" ->
    let file = normalize_path source in
    let enabled (r : Rules.rule) =
      (not r.whole_program) && rule_enabled r ~file
    in
    let active name =
      match
        List.find_opt (fun (r : Rules.rule) -> r.name = name) Rules.all_rules
      with
      | Some r -> enabled r
      | None -> false
    in
    let run_intra = List.exists enabled Rules.all_rules in
    let run_wp = want_whole_program () in
    if run_intra || run_wp then begin
      (* Rebuild enough typing environment for type-driven rules: the
         load path recorded at compile time plus the cmt's own
         directory. *)
      Load_path.init ~auto_include:Load_path.no_auto_include
        (cmt.cmt_loadpath @ [ Filename.dirname cmt_path ]);
      Envaux.reset_cache ();
      if run_intra then begin
        let mli_rel = Filename.remove_extension file ^ ".mli" in
        let mli_fs = Filename.concat !root mli_rel in
        let mli_exists = Sys.file_exists mli_fs in
        let exported_undoc = Hashtbl.create 16 in
        if mli_exists && active "exception-contract" then
          List.iter
            (fun v -> Hashtbl.replace exported_undoc v mli_rel)
            (undocumented_exports mli_fs);
        let mli_missing =
          if mli_exists then None else Some (Location.in_file file)
        in
        let file_diags =
          Rules.run ~cfg ~file ~active ~exported_undoc ~mli_missing str
        in
        diags := file_diags @ !diags
      end;
      if run_wp then
        Callgraph.collect graph ~file ~modname:cmt.cmt_modname str
    end
  | _ -> ()

(* --- main --------------------------------------------------------- *)

let () =
  Arg.parse args (fun p -> paths := p :: !paths) usage;
  if !paths = [] then begin
    prerr_endline usage;
    exit 2
  end;
  if !format <> "human" && !format <> "json" then
    fatal "unknown --format %S (want human|json)" !format;
  List.iter
    (fun r ->
      if not (List.exists (fun (x : Rules.rule) -> x.name = r) Rules.all_rules)
      then fatal "unknown rule %S (see --list-rules)" r)
    !only;
  let cfg =
    if !config_file = "" then Lint_config.empty
    else
      try Lint_config.load !config_file with
      | Lint_config.Config_error msg -> fatal "%s: %s" !config_file msg
      | Sys_error msg -> fatal "%s" msg
  in
  let baseline =
    if !baseline_file = "" then []
    else
      try Baseline.load !baseline_file with
      | Baseline.Baseline_error msg -> fatal "%s: %s" !baseline_file msg
      | Sys_error msg -> fatal "%s" msg
  in
  let cmts =
    List.fold_left
      (fun acc p ->
        if not (Sys.file_exists p) then fatal "no such path: %s" p
        else find_cmts acc p)
      [] !paths
    |> List.sort String.compare
  in
  let diags = ref [] in
  let graph = Callgraph.create () in
  List.iter (process ~cfg ~diags ~graph) cmts;
  (if want_whole_program () then
     let enabled ~rule ~file =
       match
         List.find_opt (fun (r : Rules.rule) -> r.name = rule) Rules.all_rules
       with
       | Some r -> rule_enabled r ~file
       | None -> false
     in
     diags := Callgraph.finalize graph ~enabled ~cfg @ !diags);
  let compare_full a b =
    let c = Diagnostic.compare a b in
    if c <> 0 then c else String.compare a.Diagnostic.message b.Diagnostic.message
  in
  let sorted = List.sort_uniq compare_full !diags in
  if !write_baseline_file <> "" then begin
    let n = Baseline.write !write_baseline_file sorted in
    Printf.eprintf "atplint: wrote %d baseline entr%s to %s\n" n
      (if n = 1 then "y" else "ies")
      !write_baseline_file;
    exit 0
  end;
  let suppressed, kept =
    List.partition (fun d -> Baseline.mem baseline d) sorted
  in
  List.iter
    (fun (e : Baseline.entry) ->
      Printf.eprintf
        "atplint: stale baseline entry (no longer fires): %s [%s] %s\n"
        e.Baseline.b_file e.Baseline.b_rule e.Baseline.b_message)
    (Baseline.stale baseline sorted);
  (match !format with
   | "json" -> List.iter (fun d -> print_endline (Diagnostic.to_json d)) kept
   | _ ->
     List.iter (fun d -> Format.printf "%a@." Diagnostic.pp d) kept;
     let errors, warnings =
       List.partition (fun d -> d.Diagnostic.severity = Diagnostic.Error) kept
     in
     if kept <> [] || suppressed <> [] then
       Format.printf "atplint: %d error(s), %d warning(s)%s@."
         (List.length errors) (List.length warnings)
         (match List.length suppressed with
          | 0 -> ""
          | n -> Printf.sprintf ", %d baseline-suppressed" n));
  let errors =
    List.filter (fun d -> d.Diagnostic.severity = Diagnostic.Error) kept
  in
  exit (if errors <> [] then 1 else 0)
