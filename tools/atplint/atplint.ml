(* atplint — static analysis over the compiler's typed ASTs (.cmt)
   enforcing the project invariants described in docs/LINTING.md.

   Usage:
     atplint [--root DIR] [--config FILE] [--only R1,R2] [--no-scope] PATH...

   PATHs are .cmt files or directories searched recursively.  Run it
   from the dune build context root (dune build @lint does) so the
   load paths recorded in the .cmt files resolve.

   Exit codes: 0 clean (or warnings only), 1 at least one error-level
   diagnostic, 2 operational failure (unreadable file, bad config). *)

let root = ref "."
let config_file = ref ""
let only = ref []
let no_scope = ref false
let paths = ref []

let usage = "atplint [options] <.cmt file or directory>..."

let list_rules () =
  List.iter
    (fun (r : Rules.rule) ->
      Printf.printf "%-20s %s\n" r.name r.summary;
      Printf.printf "%-20s scope: %s\n" "" (String.concat " " r.scopes))
    Rules.all_rules;
  exit 0

let args =
  [
    ("--root", Arg.Set_string root,
     "DIR repository root used to resolve interface files (default .)");
    ("--config", Arg.Set_string config_file,
     "FILE atplint.toml with per-path allowlists and severities");
    ("--only",
     Arg.String
       (fun s -> only := String.split_on_char ',' s |> List.map String.trim),
     "R1,R2 run only the named rules");
    ("--no-scope", Arg.Set no_scope,
     " apply every rule to every file (fixture testing)");
    ("--list-rules", Arg.Unit list_rules, " print the rules and exit");
  ]

let fatal fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("atplint: " ^ s);
      exit 2)
    fmt

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let normalize_path f =
  if starts_with ~prefix:"./" f then String.sub f 2 (String.length f - 2)
  else f

(* --- cmt discovery ------------------------------------------------ *)

let rec find_cmts acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry -> find_cmts acc (Filename.concat path entry))
      acc (Sys.readdir path)
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

(* --- interface-side information ----------------------------------- *)

let attr_doc_strings (attrs : Parsetree.attributes) =
  List.filter_map
    (fun (a : Parsetree.attribute) ->
      if a.attr_name.txt <> "ocaml.doc" && a.attr_name.txt <> "doc" then None
      else
        match a.attr_payload with
        | PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
                      _ );
                _;
              };
            ] ->
          Some s
        | _ -> None)
    attrs

let contains_raise doc =
  (* Look for the odoc tag, not the bare word: "@raise". *)
  let n = String.length doc in
  let rec go i =
    if i + 6 > n then false
    else if String.sub doc i 6 = "@raise" then true
    else go (i + 1)
  in
  go 0

(* Parse the interface source and return the exported values that have
   no @raise in their attached doc comment. *)
let undocumented_exports mli_path =
  let ic = open_in_bin mli_path in
  let source =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf mli_path;
  match Parse.interface lexbuf with
  | exception _ ->
    prerr_endline
      ("atplint: warning: could not parse " ^ mli_path
     ^ "; skipping exception-contract for it");
    []
  | signature ->
    List.filter_map
      (fun (item : Parsetree.signature_item) ->
        match item.psig_desc with
        | Psig_value vd ->
          let docs = attr_doc_strings vd.pval_attributes in
          if List.exists contains_raise docs then None
          else Some vd.pval_name.txt
        | _ -> None)
      signature

(* --- per-file processing ------------------------------------------ *)

let process ~cfg ~diags cmt_path =
  let cmt =
    try Cmt_format.read_cmt cmt_path
    with exn ->
      fatal "cannot read %s: %s" cmt_path (Printexc.to_string exn)
  in
  match (cmt.cmt_annots, cmt.cmt_sourcefile) with
  | Cmt_format.Implementation str, Some source
    when Filename.check_suffix source ".ml" ->
    let file = normalize_path source in
    let in_scope (r : Rules.rule) =
      !no_scope || List.exists (fun p -> starts_with ~prefix:p file) r.scopes
    in
    let enabled (r : Rules.rule) =
      (!only = [] || List.mem r.name !only) && in_scope r
    in
    let active name =
      match List.find_opt (fun (r : Rules.rule) -> r.name = name) Rules.all_rules with
      | Some r -> enabled r
      | None -> false
    in
    if List.exists enabled Rules.all_rules then begin
      (* Rebuild enough typing environment for type-driven rules: the
         load path recorded at compile time plus the cmt's own
         directory. *)
      Load_path.init ~auto_include:Load_path.no_auto_include
        (cmt.cmt_loadpath @ [ Filename.dirname cmt_path ]);
      Envaux.reset_cache ();
      let mli_rel = Filename.remove_extension file ^ ".mli" in
      let mli_fs = Filename.concat !root mli_rel in
      let mli_exists = Sys.file_exists mli_fs in
      let exported_undoc = Hashtbl.create 16 in
      if mli_exists && active "exception-contract" then
        List.iter
          (fun v -> Hashtbl.replace exported_undoc v mli_rel)
          (undocumented_exports mli_fs);
      let mli_missing =
        if mli_exists then None else Some (Location.in_file file)
      in
      let file_diags =
        Rules.run ~cfg ~file ~active ~exported_undoc ~mli_missing str
      in
      diags := file_diags @ !diags
    end
  | _ -> ()

(* --- main --------------------------------------------------------- *)

let () =
  Arg.parse args (fun p -> paths := p :: !paths) usage;
  if !paths = [] then begin
    prerr_endline usage;
    exit 2
  end;
  List.iter
    (fun r ->
      if not (List.exists (fun (x : Rules.rule) -> x.name = r) Rules.all_rules)
      then fatal "unknown rule %S (see --list-rules)" r)
    !only;
  let cfg =
    if !config_file = "" then Lint_config.empty
    else
      try Lint_config.load !config_file with
      | Lint_config.Config_error msg -> fatal "%s: %s" !config_file msg
      | Sys_error msg -> fatal "%s" msg
  in
  let cmts =
    List.fold_left
      (fun acc p ->
        if not (Sys.file_exists p) then fatal "no such path: %s" p
        else find_cmts acc p)
      [] !paths
    |> List.sort String.compare
  in
  let diags = ref [] in
  List.iter (process ~cfg ~diags) cmts;
  let compare_full a b =
    let c = Diagnostic.compare a b in
    if c <> 0 then c else String.compare a.Diagnostic.message b.Diagnostic.message
  in
  let sorted = List.sort_uniq compare_full !diags in
  List.iter (fun d -> Format.printf "%a@." Diagnostic.pp d) sorted;
  let errors, warnings =
    List.partition (fun d -> d.Diagnostic.severity = Diagnostic.Error) sorted
  in
  if sorted <> [] then
    Format.printf "atplint: %d error(s), %d warning(s)@." (List.length errors)
      (List.length warnings);
  exit (if errors <> [] then 1 else 0)
