(* Whole-program analysis core: links every scanned .cmt into one call
   graph, runs an escape/capture analysis over closures, and implements
   the two cross-module rules on top:

     - domain-safety: a closure shipped to Util.Parallel.map /
       map_results / map_results_array / Domain.spawn (directly, or
       transitively through a function that forwards its functional
       argument there) must not capture — or call into code that
       touches — mutable state shared with the enclosing scope or with
       other shards' closures.
     - hot-path-alloc-transitive: a hot-tagged function calling a
       non-hot function that allocates per call is flagged at the call
       site, however deep the allocation sits in the call chain.

   Conservatism posture, in both directions, documented in
   docs/LINTING.md:
     - Name resolution is syntactic over dotted paths.  Calls through
       functor applications ("Make(X).f") and higher-order parameters
       resolve to no node and are treated as *unknown* callees: they
       contribute no edges, so neither rule follows them.  Judgments
       err toward silence on unknowns (a false negative beats a
       diagnostic the code cannot fix), matching Type_safety.
     - Mutability is judged from types: ref cells, Bytes, mutable
       record fields, the known shared-container families (Hashtbl,
       Int_table, Buffer, Queue, Stack) and the obs registry surface
       (Registry/Scope/Counter/Gauge/Histogram).  Plain arrays are
       deliberately exempt — sharding ships read-only int arrays to
       every shard by design — and Atomic/Mutex/Condition are the
       sanctioned cross-domain primitives.  Abstract types hide their
       representation and are not flagged. *)

open Typedtree

(* --- canonical names ----------------------------------------------- *)

(* A node is keyed by "<Cmt_modname>.<nested.module.path.>binding".
   Dune's wrapped libraries mangle unit names ("Atp_util__Parallel"),
   while references arrive through the wrapper alias as dotted paths
   ("Atp_util.Parallel.map"); [candidates] produces every plausible
   key, most specific first. *)
module Name = struct
  let split = String.split_on_char '.'

  (* Rewrite the head segment through the file's [module X = Path]
     aliases, transitively (alias of an alias). *)
  let rec resolve_aliases ~aliases name =
    match split name with
    | head :: (_ :: _ as rest) -> (
      match List.assoc_opt head aliases with
      | Some target ->
        resolve_aliases
          ~aliases:(List.remove_assoc head aliases)
          (String.concat "." (target :: rest))
      | None -> name)
    | _ -> name

  (* All node-table keys a dotted reference could denote, most
     specific first: the first [k] segments fused with "__" (the
     wrapper-alias view of a mangled unit name, largest [k] first),
     the raw name itself, and the name qualified by the referencing
     unit (a nested-module reference like "History.push"). *)
  let candidates ~modname raw =
    let segs = split raw in
    let n = List.length segs in
    if n <= 1 then [ modname ^ "." ^ raw ]
    else
      let joined k =
        let rec take i = function
          | [] -> ([], [])
          | x :: tl ->
            if i = 0 then ([], x :: tl)
            else
              let a, b = take (i - 1) tl in
              (x :: a, b)
        in
        let fused, rest = take k segs in
        String.concat "." ((String.concat "__" fused) :: rest)
      in
      let ks = List.init (n - 1) (fun i -> n - 1 - i) in
      List.map joined ks @ [ modname ^ "." ^ raw ]

  let ends_with ~suffix s =
    let ls = String.length suffix and l = String.length s in
    ls <= l && String.sub s (l - ls) ls = suffix

  (* Undo dune's unit-name mangling for *matching* purposes:
     "Stdlib__Hashtbl.t" and "Atp_util__Parallel.map" become
     "Stdlib.Hashtbl.t" / "Atp_util.Parallel.map", so one dotted
     suffix covers both the wrapper-alias and the mangled view. *)
  let canon name =
    let buf = Buffer.create (String.length name) in
    let n = String.length name in
    let i = ref 0 in
    while !i < n do
      if
        !i + 1 < n
        && name.[!i] = '_'
        && name.[!i + 1] = '_'
        && !i > 0
        && name.[!i - 1] <> '_'
        && !i + 2 < n
        && name.[!i + 2] <> '_'
      then begin
        Buffer.add_char buf '.';
        i := !i + 2
      end
      else begin
        Buffer.add_char buf name.[!i];
        incr i
      end
    done;
    Buffer.contents buf

  let parallel_entry_points =
    [
      "Parallel.map";
      "Parallel.map_array";
      "Parallel.map_results";
      "Parallel.map_results_array";
      "Domain.spawn";
    ]

  (* Does this dotted name denote one of the primitives that ship a
     closure to another domain? *)
  let is_parallel_primitive name =
    let name = canon name in
    List.exists
      (fun suffix -> name = suffix || ends_with ~suffix:("." ^ suffix) name)
      parallel_entry_points
end

(* --- the graph ----------------------------------------------------- *)

type alloc = {
  a_loc : Location.t;
  a_what : string; (* "a tuple", "an option (Some)", ... *)
  a_allows : string list; (* allow rules active at the allocation *)
}

type call = {
  callee : string; (* alias-resolved dotted name, as referenced *)
  c_loc : Location.t;
  applied : bool; (* head of an application, not a bare reference *)
  (* [Ident.unique_name] (modname-prefixed) when the callee is a local
     identifier, resolvable against the per-file lambda table *)
  callee_local : string option;
  call_allows : string list;
}

type capture = {
  cap_name : string;
  cap_loc : Location.t;
  cap_what : string; (* "a ref cell", "a mutable record config", ... *)
  cap_allows : string list;
}

(* Escape-analysis summary of one closure: what it captures from the
   enclosing scope and what it calls. *)
type lambda = {
  l_loc : Location.t;
  l_captures : capture list;
  l_calls : call list;
  l_allows : string list;
}

type node = {
  id : string;
  n_file : string;
  n_modname : string;
  n_loc : Location.t;
  n_hot : bool;
  n_in_functor : bool;
  n_allows : string list; (* binding attrs + file-wide allows *)
  mutable n_calls : call list;
  mutable n_allocs : alloc list;
  (* module-level mutable values this node touches directly *)
  mutable n_mut_globals : capture list;
}

(* One application site whose arguments include closures or named
   functions: judged by domain-safety once the graph can decide
   whether the head reaches a parallel primitive. *)
type candidate = {
  c_file : string;
  c_modname : string; (* unit the site lives in, for resolution *)
  c_site : Location.t;
  c_head : string; (* alias-resolved dotted name of the applied fn *)
  c_head_local : string option;
  c_lambdas : lambda list;
  c_named : call list; (* function-valued arguments *)
  c_allows : string list;
}

type t = {
  nodes : (string, node) Hashtbl.t;
  locals : (string, lambda) Hashtbl.t; (* "Modname:ident_stamp" *)
  mutable cands : candidate list;
}

let create () =
  { nodes = Hashtbl.create 256; locals = Hashtbl.create 64; cands = [] }

let add_node t node = Hashtbl.replace t.nodes node.id node

(* Resolve a call to a node id, or None for unknown callees (external
   libraries, functor applications, higher-order parameters). *)
let resolve t ~modname raw =
  if String.contains raw '(' then None (* functor application path *)
  else
    List.find_opt (Hashtbl.mem t.nodes) (Name.candidates ~modname raw)

let find_node t id = Hashtbl.find_opt t.nodes id

(* --- reachability -------------------------------------------------- *)

(* Does [id] (transitively) hand work to a parallel primitive?  Such a
   node's own call sites must be judged like direct Parallel.map
   applications: closures passed to it cross domains. *)
let reaches_parallel t id =
  let memo = Hashtbl.create 16 in
  let rec go id =
    match Hashtbl.find_opt memo id with
    | Some r -> r
    | None ->
      Hashtbl.replace memo id false (* cycle: tentatively no *)
      ;
      let r =
        match find_node t id with
        | None -> false
        | Some n ->
          List.exists
            (fun c ->
              Name.is_parallel_primitive c.callee
              ||
              match resolve t ~modname:n.n_modname c.callee with
              | Some id' -> go id'
              | None -> false)
            n.n_calls
      in
      Hashtbl.replace memo id r;
      r
  in
  go id

(* First module-level mutable value reachable from [id] through known
   call edges, with the node it lives in — the witness a domain-safety
   diagnostic prints. *)
let mutable_global_witness t id =
  let memo = Hashtbl.create 16 in
  let rec go id =
    match Hashtbl.find_opt memo id with
    | Some r -> r
    | None ->
      Hashtbl.replace memo id None;
      let r =
        match find_node t id with
        | None -> None
        | Some n -> (
          match n.n_mut_globals with
          | g :: _ -> Some (n, g)
          | [] ->
            List.find_map
              (fun c ->
                match resolve t ~modname:n.n_modname c.callee with
                | Some id' -> go id'
                | None -> None)
              n.n_calls)
      in
      Hashtbl.replace memo id r;
      r
  in
  go id

(* First per-call allocation reachable from [id] through *applied*
   edges into known non-hot nodes, with the chain of nodes crossed.
   Hot callees enforce their own discipline (the intra rule plus their
   own transitive check) and are not descended into; allocations
   explicitly waived for this rule are skipped. *)
let alloc_witness t id =
  let memo = Hashtbl.create 16 in
  let rec go id =
    match Hashtbl.find_opt memo id with
    | Some r -> r
    | None ->
      Hashtbl.replace memo id None;
      let r =
        match find_node t id with
        | None -> None
        | Some n -> (
          if n.n_hot then None
          else
            match
              List.find_opt
                (fun a ->
                  not (List.mem "hot-path-alloc-transitive" a.a_allows))
                (List.rev n.n_allocs)
            with
            | Some a -> Some ([ n ], a)
            | None ->
              List.find_map
                (fun c ->
                  if not c.applied then None
                  else
                    match resolve t ~modname:n.n_modname c.callee with
                    | Some id' -> (
                      match go id' with
                      | Some (chain, a) -> Some (n :: chain, a)
                      | None -> None)
                    | None -> None)
                (List.rev n.n_calls))
      in
      Hashtbl.replace memo id r;
      r
  in
  go id

(* --- mutability classifier ----------------------------------------- *)

(* Shared-container families recognised by (dotted) type-path suffix;
   abstract types otherwise stay silent. *)
let mutable_suffixes =
  [
    ("Hashtbl.t", "a hash table");
    ("Int_table.t", "an Int_table");
    ("Int_table.Poly.t", "an Int_table.Poly");
    ("Buffer.t", "a Buffer");
    ("Queue.t", "a Queue");
    ("Stack.t", "a Stack");
    ("Registry.t", "an obs registry");
    ("Scope.t", "an obs scope");
    ("Counter.t", "an obs counter");
    ("Gauge.t", "an obs gauge");
    ("Histogram.t", "an obs histogram");
  ]

(* The sanctioned cross-domain primitives: sharing them is the point. *)
let safe_suffixes = [ "Atomic.t"; "Mutex.t"; "Condition.t"; "Semaphore.t" ]

let path_matches name suffix =
  let name = Name.canon name in
  name = suffix || Name.ends_with ~suffix:("." ^ suffix) name

(* [mutability env ty] is [Some description] when a value of type [ty]
   is (or directly contains) shared mutable state. *)
let rec mutability env ~depth ty =
  if depth > 8 then None
  else
    let ty = try Ctype.expand_head env ty with _ -> ty in
    match Types.get_desc ty with
    | Types.Ttuple tys ->
      List.find_map (mutability env ~depth:(depth + 1)) tys
    | Types.Tconstr (p, args, _) -> (
      let name = Path.name p in
      if Path.same p Predef.path_bytes then Some "a bytes buffer"
      else if path_matches name "ref" then Some "a ref cell"
      else if List.exists (path_matches name) safe_suffixes then None
      else if Path.same p Predef.path_array then
        (* int array payloads are the designed read-only share; only
           mutable *elements* make the array itself a hazard *)
        List.find_map (mutability env ~depth:(depth + 1)) args
      else
        match List.find_opt (fun (s, _) -> path_matches name s) mutable_suffixes with
        | Some (_, what) -> Some what
        | None ->
          if
            Path.same p Predef.path_option
            || Path.same p Predef.path_list
            || path_matches name "result"
          then List.find_map (mutability env ~depth:(depth + 1)) args
          else (
            match Env.find_type p env with
            | exception _ -> None
            | decl -> decl_mutability env ~depth ~name decl))
    | _ -> None

and decl_mutability env ~depth ~name (decl : Types.type_declaration) =
  match decl.type_kind with
  | Types.Type_record (lbls, _) -> (
    match
      List.find_opt (fun l -> l.Types.ld_mutable = Asttypes.Mutable) lbls
    with
    | Some l ->
      Some
        (Printf.sprintf "a record with mutable field %s.%s" name
           (Ident.name l.Types.ld_id))
    | None ->
      List.find_map
        (fun l -> mutability env ~depth:(depth + 1) l.Types.ld_type)
        lbls)
  | Types.Type_variant (cstrs, _) ->
    List.find_map
      (fun c ->
        match c.Types.cd_args with
        | Types.Cstr_tuple tys ->
          List.find_map (mutability env ~depth:(depth + 1)) tys
        | Types.Cstr_record lbls ->
          List.find_map
            (fun l -> mutability env ~depth:(depth + 1) l.Types.ld_type)
            lbls)
      cstrs
  | Types.Type_abstract | Types.Type_open -> None

let mutability env ty = mutability env ~depth:0 ty

let is_function_type env ty =
  let ty = try Ctype.expand_head env ty with _ -> ty in
  match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false

(* --- collection ---------------------------------------------------- *)

let env_of (e : expression) =
  try Envaux.env_of_only_summary e.exp_env with _ -> e.exp_env

(* [@atplint.domain_safe] is the audited-site hatch the rule text
   advertises; internally it is the allow for "domain-safety". *)
let allows_of_attrs (attrs : Parsetree.attributes) =
  Rules.allows_of_attributes attrs
  @
  if
    List.exists
      (fun (a : Parsetree.attribute) -> a.attr_name.txt = "atplint.domain_safe")
      attrs
  then [ "domain-safety" ]
  else []

(* Every value identifier bound by a pattern (or a for-loop index)
   inside [e]; used to split an expression's identifiers into locals
   and captures.  Ident stamps are unique within a unit, so shadowing
   needs no scope tracking. *)
let bound_idents_in (e : expression) =
  let bound = Hashtbl.create 32 in
  let pat (type k) sub (p : k general_pattern) =
    (match p.pat_desc with
     | Tpat_var (id, _) -> Hashtbl.replace bound (Ident.unique_name id) ()
     | Tpat_alias (_, id, _) -> Hashtbl.replace bound (Ident.unique_name id) ()
     | _ -> ());
    Tast_iterator.default_iterator.pat sub p
  in
  let expr sub (e : expression) =
    (match e.exp_desc with
     | Texp_for (id, _, _, _, _, _) ->
       Hashtbl.replace bound (Ident.unique_name id) ()
     | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with pat; expr } in
  it.expr it e;
  bound

type cctx = {
  graph : t;
  file : string;
  modname : string;
  mutable aliases : (string * string) list;
  file_allows : string list;
  hot_file : bool;
  mutable allow_stack : string list list;
  mutable fun_depth : int;
  mutable fun_chain : bool;
  mutable mod_path : string list; (* innermost first *)
  mutable in_functor : bool;
}

let current_allows ctx = ctx.file_allows @ List.concat ctx.allow_stack

let with_allows ctx attrs f =
  match allows_of_attrs attrs with
  | [] -> f ()
  | allows ->
    ctx.allow_stack <- allows :: ctx.allow_stack;
    Fun.protect ~finally:(fun () -> ctx.allow_stack <- List.tl ctx.allow_stack) f

let local_key ctx id = ctx.modname ^ ":" ^ Ident.unique_name id

let alias_resolved ctx path =
  Name.resolve_aliases ~aliases:ctx.aliases (Path.name path)

(* Per-call allocation classification, mirroring the intra
   hot-path-alloc rule's categories (docs/LINTING.md). *)
let classify_alloc (e : expression) =
  match e.exp_desc with
  | Texp_tuple _ -> Some "a tuple"
  | Texp_construct (_, cd, _ :: _) when not (Rules.is_format_constructor cd)
    ->
    Some
      (match cd.Types.cstr_name with
       | "Some" -> "an option (Some)"
       | "::" -> "a list cell"
       | name -> Printf.sprintf "boxed constructor %s" name)
  | Texp_variant (_, Some _) -> Some "a polymorphic variant"
  | _ -> None

(* Escape analysis of one closure (or function-bodied local binding):
   free identifiers of mutable type become captures, applications and
   function references become calls. *)
let lambda_summary ctx (lam : expression) ~extra_allows =
  let bound = bound_idents_in lam in
  let captures = ref [] and calls = ref [] in
  let record_call ?local ~applied ~loc callee =
    calls :=
      {
        callee;
        c_loc = loc;
        applied;
        callee_local = local;
        call_allows = current_allows ctx;
      }
      :: !calls
  in
  let already_captured name =
    List.exists (fun c -> c.cap_name = name) !captures
  in
  let check_ident (e : expression) path =
    match path with
    | Path.Pident id ->
      if not (Hashtbl.mem bound (Ident.unique_name id)) then begin
        let env = env_of e in
        (match mutability env e.exp_type with
         | Some what when not (already_captured (Ident.name id)) ->
           captures :=
             {
               cap_name = Ident.name id;
               cap_loc = e.exp_loc;
               cap_what = what;
               cap_allows = current_allows ctx;
             }
             :: !captures
         | Some _ | None -> ());
        if is_function_type (env_of e) e.exp_type then
          record_call ~local:(local_key ctx id) ~applied:false ~loc:e.exp_loc
            (Ident.name id)
      end
    | _ ->
      let env = env_of e in
      let name = alias_resolved ctx path in
      (match mutability env e.exp_type with
       | Some what when not (already_captured name) ->
         captures :=
           {
             cap_name = name;
             cap_loc = e.exp_loc;
             cap_what = what;
             cap_allows = current_allows ctx;
           }
           :: !captures
       | Some _ | None -> ());
      if is_function_type env e.exp_type then
        record_call ~applied:false ~loc:e.exp_loc name
  in
  let expr sub (e : expression) =
    with_allows ctx e.exp_attributes @@ fun () ->
    match e.exp_desc with
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); exp_loc; _ }, args) ->
      let local, callee =
        match p with
        | Path.Pident id -> (Some (local_key ctx id), Ident.name id)
        | _ -> (None, alias_resolved ctx p)
      in
      record_call ?local ~applied:true ~loc:exp_loc callee;
      List.iter (fun (_, a) -> Option.iter (sub.Tast_iterator.expr sub) a) args
    | Texp_ident (p, _, _) -> check_ident e p
    | _ -> Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it lam;
  {
    l_loc = lam.exp_loc;
    l_captures = List.rev !captures;
    l_calls = List.rev !calls;
    l_allows = extra_allows @ current_allows ctx;
  }

(* The node-body walk: records call edges, per-call allocation sites,
   module-level mutable touches, local function bindings (for the
   lambda table) and parallel-candidate application sites. *)
let walk_node ctx (node : node) (body : expression) =
  let bound = bound_idents_in body in
  let is_bound id = Hashtbl.mem bound (Ident.unique_name id) in
  let record_call ?local ~applied ~loc callee =
    node.n_calls <-
      {
        callee;
        c_loc = loc;
        applied;
        callee_local = local;
        call_allows = current_allows ctx;
      }
      :: node.n_calls
  in
  let record_alloc ~loc what =
    node.n_allocs <-
      { a_loc = loc; a_what = what; a_allows = current_allows ctx }
      :: node.n_allocs
  in
  let fn_arg_info (arg : expression) =
    match arg.exp_desc with
    | Texp_function _ ->
      `Lambda (lambda_summary ctx arg ~extra_allows:[])
    | Texp_ident (p, _, _) when is_function_type (env_of arg) arg.exp_type ->
      let local, name =
        match p with
        | Path.Pident id -> (Some (local_key ctx id), Ident.name id)
        | _ -> (None, alias_resolved ctx p)
      in
      `Named
        {
          callee = name;
          c_loc = arg.exp_loc;
          applied = false;
          callee_local = local;
          call_allows = current_allows ctx;
        }
    | _ -> `Plain
  in
  let rec expr sub (e : expression) =
    with_allows ctx e.exp_attributes @@ fun () ->
    (if ctx.fun_depth >= 1 then
       match classify_alloc e with
       | Some what -> record_alloc ~loc:e.exp_loc what
       | None -> ());
    match e.exp_desc with
    | Texp_function _ ->
      if ctx.fun_depth >= 1 && not ctx.fun_chain then
        record_alloc ~loc:e.exp_loc "a closure";
      let saved_chain = ctx.fun_chain and saved_depth = ctx.fun_depth in
      ctx.fun_chain <- true;
      ctx.fun_depth <- ctx.fun_depth + 1;
      Tast_iterator.default_iterator.expr sub e;
      ctx.fun_chain <- saved_chain;
      ctx.fun_depth <- saved_depth
    | Texp_apply (({ exp_desc = Texp_ident (p, _, _); _ } as head), args) ->
      ctx.fun_chain <- false;
      let local, callee =
        match p with
        | Path.Pident id -> (Some (local_key ctx id), Ident.name id)
        | _ -> (None, alias_resolved ctx p)
      in
      record_call ?local ~applied:true ~loc:head.exp_loc callee;
      (* Candidate site when any argument is a closure or a named
         function: domain-safety decides later whether [callee]
         reaches a parallel primitive. *)
      let lambdas = ref [] and named = ref [] in
      List.iter
        (fun (_, arg) ->
          match arg with
          | None -> ()
          | Some a -> (
            match fn_arg_info a with
            | `Lambda l -> lambdas := l :: !lambdas
            | `Named c -> named := c :: !named
            | `Plain -> ()))
        args;
      if !lambdas <> [] || !named <> [] then
        ctx.graph.cands <-
          {
            c_file = ctx.file;
            c_modname = ctx.modname;
            c_site = e.exp_loc;
            c_head = callee;
            c_head_local = local;
            c_lambdas = List.rev !lambdas;
            c_named = List.rev !named;
            c_allows = node.n_allows @ current_allows ctx;
          }
          :: ctx.graph.cands;
      List.iter (fun (_, a) -> Option.iter (expr sub) a) args
    | Texp_ident (p, _, _) -> (
      ctx.fun_chain <- false;
      match p with
      | Path.Pident id when is_bound id -> ()
      | Path.Pident id ->
        (* Free in the node body: a module-level value of this unit. *)
        let env = env_of e in
        (match mutability env e.exp_type with
         | Some what ->
           node.n_mut_globals <-
             {
               cap_name = Ident.name id;
               cap_loc = e.exp_loc;
               cap_what = what;
               cap_allows = current_allows ctx;
             }
             :: node.n_mut_globals
         | None -> ());
        if is_function_type env e.exp_type then
          record_call ~local:(local_key ctx id) ~applied:false ~loc:e.exp_loc
            (Ident.name id)
      | _ ->
        let env = env_of e in
        let name = alias_resolved ctx p in
        (match mutability env e.exp_type with
         | Some what ->
           node.n_mut_globals <-
             {
               cap_name = name;
               cap_loc = e.exp_loc;
               cap_what = what;
               cap_allows = current_allows ctx;
             }
             :: node.n_mut_globals
         | None -> ());
        if is_function_type env e.exp_type then
          record_call ~applied:false ~loc:e.exp_loc name)
    | _ ->
      let saved_chain = ctx.fun_chain in
      ctx.fun_chain <- false;
      Tast_iterator.default_iterator.expr sub e;
      ctx.fun_chain <- saved_chain
  in
  let value_binding sub (vb : value_binding) =
    with_allows ctx vb.vb_attributes @@ fun () ->
    (* Local function bindings feed the lambda table so a named
       argument to Parallel.map resolves to its escape summary. *)
    (match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
     | Tpat_var (id, _), Texp_function _ ->
       Hashtbl.replace ctx.graph.locals (local_key ctx id)
         (lambda_summary ctx vb.vb_expr
            ~extra_allows:(allows_of_attrs vb.vb_attributes))
     | _ -> ());
    Tast_iterator.default_iterator.value_binding sub vb
  in
  let it = { Tast_iterator.default_iterator with expr; value_binding } in
  it.expr it body

let node_id ctx name =
  String.concat "."
    ((ctx.modname :: List.rev ctx.mod_path) @ [ name ])

let collect_structure ctx (str : structure) =
  let rec structure_item (item : structure_item) =
    match item.str_desc with
    | Tstr_value (_, vbs) ->
      List.iter
        (fun (vb : value_binding) ->
          let name =
            match vb.vb_pat.pat_desc with
            | Tpat_var (id, _) -> Some (Ident.name id)
            | _ -> None
          in
          match name with
          | None -> ()
          | Some name ->
            let binding_allows = allows_of_attrs vb.vb_attributes in
            let node =
              {
                id = node_id ctx name;
                n_file = ctx.file;
                n_modname = ctx.modname;
                n_loc = vb.vb_loc;
                n_hot = ctx.hot_file || Rules.has_hot_attr vb.vb_attributes;
                n_in_functor = ctx.in_functor;
                n_allows = binding_allows @ ctx.file_allows;
                n_calls = [];
                n_allocs = [];
                n_mut_globals = [];
              }
            in
            add_node ctx.graph node;
            ctx.allow_stack <- binding_allows :: ctx.allow_stack;
            Fun.protect
              ~finally:(fun () -> ctx.allow_stack <- List.tl ctx.allow_stack)
              (fun () -> walk_node ctx node vb.vb_expr))
        vbs
    | Tstr_module mb -> module_binding mb
    | Tstr_recmodule mbs -> List.iter module_binding mbs
    | _ -> ()
  and module_binding (mb : module_binding) =
    let name = Option.value mb.mb_name.txt ~default:"_" in
    (* [module X = Path]: record the alias for reference rewriting. *)
    (match mb.mb_expr.mod_desc with
     | Tmod_ident (p, _) ->
       ctx.aliases <- (name, Path.name p) :: ctx.aliases
     | _ -> ());
    ctx.mod_path <- name :: ctx.mod_path;
    Fun.protect
      ~finally:(fun () -> ctx.mod_path <- List.tl ctx.mod_path)
      (fun () -> module_expr mb.mb_expr)
  and module_expr (me : module_expr) =
    match me.mod_desc with
    | Tmod_structure str -> List.iter structure_item str.str_items
    | Tmod_functor (_, body) ->
      (* Bodies of functors are analysed as nodes (their instantiated
         names never resolve, so edges into them stay unknown). *)
      let saved = ctx.in_functor in
      ctx.in_functor <- true;
      Fun.protect
        ~finally:(fun () -> ctx.in_functor <- saved)
        (fun () -> module_expr body)
    | Tmod_constraint (me, _, _, _) -> module_expr me
    | Tmod_ident _ | Tmod_apply _ | Tmod_apply_unit _ | Tmod_unpack _ -> ()
  in
  List.iter structure_item str.str_items

let collect graph ~file ~modname (str : structure) =
  let ctx =
    {
      graph;
      file;
      modname;
      aliases = [];
      file_allows =
        List.concat_map
          (fun (item : structure_item) ->
            match item.str_desc with
            | Tstr_attribute attr -> allows_of_attrs [ attr ]
            | _ -> [])
          str.str_items
        |> List.sort_uniq String.compare;
      hot_file = Rules.file_is_hot str;
      allow_stack = [];
      fun_depth = 0;
      fun_chain = false;
      mod_path = [];
      in_functor = false;
    }
  in
  collect_structure ctx str

(* --- the whole-program rules --------------------------------------- *)

let pos_string (loc : Location.t) =
  let p = loc.loc_start in
  Printf.sprintf "%s:%d:%d"
    (let f = p.pos_fname in
     if String.length f > 2 && String.sub f 0 2 = "./" then
       String.sub f 2 (String.length f - 2)
     else f)
    (max 1 p.pos_lnum)
    (max 0 (p.pos_cnum - p.pos_bol))

(* Resolve a call record to what it denotes: a local lambda summary, a
   graph node, or nothing we know about. *)
let resolve_call t ~modname (c : call) =
  match c.callee_local with
  | Some key when Hashtbl.mem t.locals key -> `Lambda (Hashtbl.find t.locals key)
  | _ -> (
    match resolve t ~modname c.callee with
    | Some id -> `Node (Hashtbl.find t.nodes id)
    | None -> `Unknown)

(* Does the candidate's head ship its functional arguments across
   domains?  Either a parallel primitive itself, a local closure that
   reaches one, or a known node that reaches one. *)
let head_is_spawning t ~modname (cand : candidate) =
  Name.is_parallel_primitive cand.c_head
  ||
  match
    resolve_call t ~modname
      {
        callee = cand.c_head;
        c_loc = cand.c_site;
        applied = true;
        callee_local = cand.c_head_local;
        call_allows = [];
      }
  with
  | `Node n -> reaches_parallel t n.id
  | `Lambda l ->
    List.exists (fun c -> Name.is_parallel_primitive c.callee) l.l_calls
  | `Unknown -> false

let check_domain_safety t ~emit =
  List.iter
    (fun (cand : candidate) ->
      let modname = cand.c_modname in
      if head_is_spawning t ~modname cand then begin
        let head = cand.c_head in
        (* A closure's effective captures: its own, plus module-level
           mutable state reached through local lambdas it calls and
           known nodes it calls. *)
        let rec judge_lambda ~seen ~inherited_allows (l : lambda) =
          let allows = cand.c_allows @ inherited_allows @ l.l_allows in
          List.iter
            (fun cap ->
              emit ~rule:"domain-safety" ~file:cand.c_file ~loc:cap.cap_loc
                ~allows:(allows @ cap.cap_allows)
                (Printf.sprintf
                   "closure shipped to %s captures %s (%s) shared with the \
                    enclosing scope; shards must own their mutable state — \
                    audit and mark [@atplint.domain_safe], or restructure"
                   head cap.cap_name cap.cap_what))
            l.l_captures;
          List.iter
            (fun (c : call) ->
              match resolve_call t ~modname c with
              | `Lambda l' ->
                if not (List.memq l' seen) then
                  judge_lambda ~seen:(l' :: seen)
                    ~inherited_allows:(allows @ c.call_allows) l'
              | `Node n -> (
                match mutable_global_witness t n.id with
                | Some (owner, g) ->
                  emit ~rule:"domain-safety" ~file:cand.c_file ~loc:c.c_loc
                    ~allows:(allows @ c.call_allows)
                    (Printf.sprintf
                       "closure shipped to %s calls %s, which touches \
                        module-level mutable state (%s %s at %s)"
                       head n.id g.cap_what g.cap_name
                       (pos_string owner.n_loc))
                | None -> ())
              | `Unknown -> ())
            l.l_calls
        in
        List.iter (judge_lambda ~seen:[] ~inherited_allows:[]) cand.c_lambdas;
        List.iter
          (fun (c : call) ->
            match resolve_call t ~modname c with
            | `Lambda l ->
              judge_lambda ~seen:[ l ] ~inherited_allows:c.call_allows l
            | `Node n -> (
              match mutable_global_witness t n.id with
              | Some (owner, g) ->
                emit ~rule:"domain-safety" ~file:cand.c_file ~loc:c.c_loc
                  ~allows:(cand.c_allows @ c.call_allows @ n.n_allows)
                  (Printf.sprintf
                     "%s shipped to %s touches module-level mutable state \
                      (%s %s at %s)"
                     n.id head g.cap_what g.cap_name (pos_string owner.n_loc))
              | None -> ())
            | `Unknown -> ())
          cand.c_named
      end)
    (List.rev t.cands)

let check_hot_alloc_transitive t ~emit =
  Hashtbl.iter
    (fun _ (n : node) ->
      if n.n_hot then
        List.iter
          (fun (c : call) ->
            if c.applied then
              match resolve t ~modname:n.n_modname c.callee with
              | None -> () (* unknown callee: stay silent, documented *)
              | Some id -> (
                match find_node t id with
                | Some g when not g.n_hot -> (
                  match alloc_witness t id with
                  | Some (chain, a) ->
                    let msg =
                      match chain with
                      | [ direct ] ->
                        Printf.sprintf
                          "hot-tagged code calls %s, which allocates %s per \
                           call (%s); tag the callee [@atplint.hot] and fix \
                           it, hoist the allocation, or justify with \
                           [@atplint.allow]"
                          direct.id a.a_what (pos_string a.a_loc)
                      | direct :: _ ->
                        let last = List.nth chain (List.length chain - 1) in
                        Printf.sprintf
                          "hot-tagged code calls %s, which reaches %s \
                           allocating %s per call (%s); tag the chain \
                           [@atplint.hot] and fix it, hoist the allocation, \
                           or justify with [@atplint.allow]"
                          direct.id last.id a.a_what (pos_string a.a_loc)
                      | [] -> assert false
                    in
                    emit ~rule:"hot-path-alloc-transitive" ~file:n.n_file
                      ~loc:c.c_loc
                      ~allows:(n.n_allows @ c.call_allows)
                      msg
                  | None -> ())
                | Some _ | None -> ()))
          (List.rev n.n_calls))
    t.nodes

(* Run both whole-program rules.  [enabled] folds in --only and scope
   filtering for the diagnostic's file; suppression layers checked
   here are the site-collected attribute allows and the config
   allowlist (the baseline is applied by the driver). *)
let finalize t ~enabled ~cfg =
  let diags = ref [] in
  let emit ~rule ~file ~loc ~allows message =
    if
      enabled ~rule ~file
      && (not (List.mem rule allows))
      && not (Lint_config.allows cfg ~rule ~file)
    then
      let severity =
        Lint_config.severity cfg ~rule ~default:Diagnostic.Error
      in
      diags := Diagnostic.of_location ~rule ~severity ~message loc :: !diags
  in
  check_domain_safety t ~emit;
  check_hot_alloc_transitive t ~emit;
  !diags
