(* A single finding: rule, severity, position, message.  The printed
   form is the stable machine interface — CI greps it and the golden
   test diffs it — so changes here are format changes and need the
   golden refreshed. *)

type severity =
  | Error
  | Warning

type t = {
  file : string;   (* source path as recorded in the .cmt, normalized *)
  line : int;      (* 1-based *)
  col : int;       (* 0-based, matching the compiler's own messages *)
  rule : string;
  severity : severity;
  message : string;
}

let severity_string = function Error -> "error" | Warning -> "warning"

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let pp ppf d =
  Format.fprintf ppf "%s:%d:%d: %s [%s] %s" d.file d.line d.col
    (severity_string d.severity) d.rule d.message

(* One finding as a single-line JSON object, for --format json (one
   object per line; CI turns them into GitHub annotations).  Hand
   escaping keeps this module dependency-free. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  Printf.sprintf
    "{\"rule\":\"%s\",\"severity\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"message\":\"%s\"}"
    (json_escape d.rule)
    (severity_string d.severity)
    (json_escape d.file) d.line d.col (json_escape d.message)

let of_location ~rule ~severity ~message (loc : Location.t) =
  let pos = loc.loc_start in
  let file =
    (* The compiler records the path it was invoked with; strip any
       leading "./" so output is uniform. *)
    let f = pos.pos_fname in
    if String.length f > 2 && String.sub f 0 2 = "./" then
      String.sub f 2 (String.length f - 2)
    else f
  in
  {
    file;
    (* Synthetic whole-file locations (e.g. mli-coverage) carry dummy
       positions; clamp so they render as file:1:0. *)
    line = max 1 pos.pos_lnum;
    col = max 0 (pos.pos_cnum - pos.pos_bol);
    rule;
    severity;
    message;
  }
