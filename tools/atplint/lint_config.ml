(* atplint.toml: a deliberately tiny TOML subset, since the toolchain
   image ships no TOML library.  Supported grammar:

     # comment
     [allow]
     "rule-name" = ["path/prefix", "other/prefix"]
     [severity]
     "rule-name" = "warning"

   Keys may be bare or double-quoted; values are a double-quoted
   string or a [ ... ] array of double-quoted strings on one line.
   Anything else is a config error (we fail loudly rather than
   silently ignoring an allowlist entry). *)

type t = {
  allow : (string * string list) list;     (* rule -> path prefixes *)
  severity : (string * Diagnostic.severity) list;
}

let empty = { allow = []; severity = [] }

exception Config_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Config_error s)) fmt

let strip_comment line =
  (* A # outside quotes starts a comment. *)
  let buf = Buffer.create (String.length line) in
  let in_string = ref false in
  (try
     String.iter
       (fun c ->
         if c = '"' then in_string := not !in_string;
         if c = '#' && not !in_string then raise Exit;
         Buffer.add_char buf c)
       line
   with Exit -> ());
  Buffer.contents buf

let unquote ~lineno s =
  let s = String.trim s in
  let n = String.length s in
  if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then String.sub s 1 (n - 2)
  else if n > 0 && String.for_all (fun c -> c <> '"' && c <> '[') s then s
  else error "line %d: expected a (quoted) string, got %S" lineno s

let parse_array ~lineno s =
  let s = String.trim s in
  let n = String.length s in
  if not (n >= 2 && s.[0] = '[' && s.[n - 1] = ']') then
    error "line %d: expected [ ... ] array, got %S" lineno s
  else
    let body = String.trim (String.sub s 1 (n - 2)) in
    if body = "" then []
    else
      String.split_on_char ',' body
      |> List.map String.trim
      |> List.filter (fun x -> x <> "")
      |> List.map (fun x -> unquote ~lineno x)

let severity_of_string ~lineno = function
  | "error" -> Diagnostic.Error
  | "warning" -> Diagnostic.Warning
  | s -> error "line %d: unknown severity %S (want error|warning)" lineno s

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let cfg = ref empty in
  let section = ref "" in
  let lineno = ref 0 in
  (try
     while true do
       let raw = input_line ic in
       incr lineno;
       let line = String.trim (strip_comment raw) in
       let n = String.length line in
       if line = "" then ()
       else if n >= 2 && line.[0] = '[' && line.[n - 1] = ']' then
         section := String.trim (String.sub line 1 (n - 2))
       else
         match String.index_opt line '=' with
         | None -> error "line %d: expected key = value, got %S" !lineno line
         | Some eq ->
           let key = unquote ~lineno:!lineno (String.sub line 0 eq) in
           let value = String.trim (String.sub line (eq + 1) (n - eq - 1)) in
           (match !section with
            | "allow" ->
              let prefixes = parse_array ~lineno:!lineno value in
              cfg := { !cfg with allow = (key, prefixes) :: !cfg.allow }
            | "severity" ->
              let sev =
                severity_of_string ~lineno:!lineno
                  (unquote ~lineno:!lineno value)
              in
              cfg := { !cfg with severity = (key, sev) :: !cfg.severity }
            | "" -> error "line %d: key outside of a [section]" !lineno
            | s -> error "line %d: unknown section [%s]" !lineno s)
     done
   with End_of_file -> ());
  !cfg

let path_has_prefix ~prefix path =
  let lp = String.length prefix and lf = String.length path in
  lp <= lf && String.sub path 0 lp = prefix

(* Is [rule] allowlisted for [file] by the config? *)
let allows cfg ~rule ~file =
  List.exists
    (fun (r, prefixes) ->
      r = rule && List.exists (fun p -> path_has_prefix ~prefix:p file) prefixes)
    cfg.allow

let severity cfg ~rule ~default =
  match List.assoc_opt rule cfg.severity with
  | Some s -> s
  | None -> default
