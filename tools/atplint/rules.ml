(* The intra-procedural atplint rules, run over one typed
   implementation via Tast_iterator.  The two whole-program rules
   (domain-safety, hot-path-alloc-transitive) are registered here but
   implemented in Callgraph, which links every scanned .cmt before
   judging.

   Suppression layers, innermost first:
     - [@atplint.allow "rule"] on an expression or let-binding,
     - [@@@atplint.allow "rule"] floating at the top of the file,
     - a per-path allowlist in atplint.toml,
     - a committed --baseline file (for staged adoption of new rules). *)

open Typedtree

type rule = {
  name : string;
  summary : string;
  (* Source-path prefixes (relative to the repo root) the rule applies
     to by default; [--no-scope] widens every rule to every file. *)
  scopes : string list;
  (* Whole-program rules judge the linked call graph after every cmt
     has been scanned; scope still filters by the diagnostic's file. *)
  whole_program : bool;
}

let all_rules =
  [
    {
      name = "determinism";
      summary =
        "no Stdlib.Random / Sys.time / Unix.gettimeofday / Hashtbl.hash \
         in lib/, bin/ or bench/; all randomness flows through Util.Prng";
      scopes = [ "lib/"; "bin/"; "bench/" ];
      whole_program = false;
    };
    {
      name = "hot-path-hashing";
      summary =
        "no polymorphic Hashtbl with int keys on simulator hot paths; \
         use Util.Int_table";
      scopes = [ "lib/tlb/"; "lib/paging/"; "lib/memsim/" ];
      whole_program = false;
    };
    {
      name = "hot-path-alloc";
      summary =
        "no per-call tuple/option/list construction or closure allocation \
         in hot-tagged code ([@@@atplint.hot] files or [@atplint.hot] \
         bindings)";
      scopes = [ "lib/" ];
      whole_program = false;
    };
    {
      name = "hot-path-alloc-transitive";
      summary =
        "hot-tagged code must not call a non-hot function that allocates \
         per call, however deep the call chain";
      scopes = [ "lib/" ];
      whole_program = true;
    };
    {
      name = "domain-safety";
      summary =
        "closures shipped to Util.Parallel / Domain.spawn (directly or \
         transitively) must not capture or reach shared mutable state; \
         audit with [@atplint.domain_safe]";
      scopes = [ "lib/"; "bin/"; "bench/" ];
      whole_program = true;
    };
    {
      name = "no-poly-compare";
      summary =
        "no polymorphic =, <>, compare, min, max at non-immediate types";
      scopes = [ "lib/" ];
      whole_program = false;
    };
    {
      name = "exception-contract";
      summary =
        "failwith/invalid_arg inside an .mli-exported value requires an \
         @raise in the .mli doc comment";
      scopes = [ "lib/" ];
      whole_program = false;
    };
    {
      name = "mli-coverage";
      summary = "every library module ships an interface";
      scopes = [ "lib/" ];
      whole_program = false;
    };
    {
      name = "obs-naming";
      summary =
        "string literals registered with Obs follow the dotted.lowercase \
         metric naming scheme";
      scopes = [ "lib/" ];
      whole_program = false;
    };
  ]

type ctx = {
  cfg : Lint_config.t;
  file : string;
  active : string -> bool;  (* is the rule enabled for this file? *)
  mutable stack : string list list;  (* [@atplint.allow] scopes *)
  mutable file_allows : string list; (* [@@@atplint.allow] *)
  mutable current_top : string option; (* enclosing top-level binding *)
  hot_file : bool;  (* file carries [@@@atplint.hot] *)
  mutable hot_binding : bool;  (* inside a [@atplint.hot] binding *)
  mutable fun_depth : int;  (* nesting depth of function bodies *)
  mutable fun_chain : bool;  (* directly under a fun (curried params) *)
  (* exported value name -> interface file lacking an @raise for it *)
  exported_undoc : (string, string) Hashtbl.t;
  mutable diags : Diagnostic.t list;
}

let emit ctx ~rule ~loc message =
  if
    ctx.active rule
    && (not (List.mem rule ctx.file_allows))
    && (not (List.exists (List.mem rule) ctx.stack))
    && not (Lint_config.allows ctx.cfg ~rule ~file:ctx.file)
  then
    let severity =
      Lint_config.severity ctx.cfg ~rule ~default:Diagnostic.Error
    in
    ctx.diags <- Diagnostic.of_location ~rule ~severity ~message loc :: ctx.diags

(* --- attribute handling ------------------------------------------- *)

let allow_payload (attr : Parsetree.attribute) =
  if attr.attr_name.txt <> "atplint.allow" then None
  else
    match attr.attr_payload with
    | PStr
        [
          {
            pstr_desc =
              Pstr_eval
                ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
            _;
          };
        ] ->
      Some s
    | _ -> None

let allows_of_attributes attrs = List.filter_map allow_payload attrs

let has_hot_attr (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) -> a.attr_name.txt = "atplint.hot")
    attrs

let with_allows ctx attrs f =
  match allows_of_attributes attrs with
  | [] -> f ()
  | allows ->
    ctx.stack <- allows :: ctx.stack;
    Fun.protect ~finally:(fun () -> ctx.stack <- List.tl ctx.stack) f

(* --- path helpers ------------------------------------------------- *)

let strip_stdlib name =
  let p = "Stdlib." in
  if String.length name > String.length p && String.sub name 0 (String.length p) = p
  then String.sub name (String.length p) (String.length name - String.length p)
  else name

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  ls <= l && String.sub s (l - ls) ls = suffix

(* --- rule: determinism -------------------------------------------- *)

let forbidden_nondeterminism name =
  let n = strip_stdlib name in
  if starts_with ~prefix:"Random." n then
    Some (n, "seed-ambient randomness")
  else
    match n with
    | "Sys.time" -> Some (n, "wall-clock dependence")
    | "Unix.gettimeofday" | "Unix.time" -> Some (n, "wall-clock dependence")
    | "Hashtbl.hash" | "Hashtbl.seeded_hash" ->
      Some (n, "unspecified polymorphic hashing")
    | _ -> None

let check_determinism ctx (e : expression) =
  match e.exp_desc with
  | Texp_ident (path, _, _) -> (
    match forbidden_nondeterminism (Path.name path) with
    | None -> ()
    | Some (n, why) ->
      emit ctx ~rule:"determinism" ~loc:e.exp_loc
        (Printf.sprintf
           "%s (%s) breaks run reproducibility; draw from Util.Prng" n why))
  | _ -> ()

(* --- rule: hot-path-hashing --------------------------------------- *)

(* Walk through the arrows of an (instantiated) function type to its
   result. *)
let rec result_type env ty =
  let ty = try Ctype.expand_head env ty with _ -> ty in
  match Types.get_desc ty with
  | Types.Tarrow (_, _, rest, _) -> result_type env rest
  | _ -> ty

let is_int_type env ty =
  let ty = try Ctype.expand_head env ty with _ -> ty in
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Path.same p Predef.path_int
  | _ -> false

let check_hot_path ctx env (e : expression) =
  match e.exp_desc with
  | Texp_ident (path, _, _)
    when strip_stdlib (Path.name path) = "Hashtbl.create" -> (
    let res = result_type env e.exp_type in
    match Types.get_desc res with
    | Types.Tconstr (p, key :: _, _)
      when ends_with ~suffix:"Hashtbl.t" (Path.name p) && is_int_type env key
      ->
      emit ctx ~rule:"hot-path-hashing" ~loc:e.exp_loc
        "polymorphic Hashtbl with int keys on a hot path; use Util.Int_table \
         (or Util.Int_table.Poly for non-int payloads)"
    | _ -> ())
  | _ -> ()

(* --- rule: no-poly-compare ---------------------------------------- *)

let poly_compare_ops = [ "="; "<>"; "compare"; "min"; "max" ]

let check_poly_compare ctx env (e : expression) =
  match e.exp_desc with
  | Texp_ident (path, _, _) ->
    let n = strip_stdlib (Path.name path) in
    if List.mem n poly_compare_ops && not (String.contains n '.') then begin
      (* The ident's instantiated type is ('a -> 'a -> _) with 'a
         resolved by unification; judge that first parameter. *)
      let ty = try Ctype.expand_head env e.exp_type with _ -> e.exp_type in
      match Types.get_desc ty with
      | Types.Tarrow (_, arg, _, _) ->
        if not (Type_safety.is_safe env arg) then
          emit ctx ~rule:"no-poly-compare" ~loc:e.exp_loc
            (Printf.sprintf
               "polymorphic %s at type %s (not a tree of immutable \
                immediates); use a type-specific comparison" n
               (Type_safety.type_to_string arg))
      | _ -> ()
    end
  | _ -> ()

(* --- rule: exception-contract ------------------------------------- *)

let check_exception_contract ctx (e : expression) =
  match e.exp_desc with
  | Texp_ident (path, _, _) -> (
    let n = strip_stdlib (Path.name path) in
    if (n = "failwith" || n = "invalid_arg") && not (String.contains n '.')
    then
      match ctx.current_top with
      | Some top -> (
        match Hashtbl.find_opt ctx.exported_undoc top with
        | Some mli ->
          emit ctx ~rule:"exception-contract" ~loc:e.exp_loc
            (Printf.sprintf
               "%s is reachable from exported value %S, but %s documents no \
                @raise for it" n top mli)
        | None -> ())
      | None -> ())
  | _ -> ()

(* --- rule: obs-naming --------------------------------------------- *)

let obs_registration path_name =
  match List.rev (String.split_on_char '.' path_name) with
  | fn :: m :: _ ->
    (ends_with ~suffix:"Registry" m
     && List.mem fn [ "counter"; "gauge"; "histogram"; "find_counter" ])
    || (ends_with ~suffix:"Scope" m
        && List.mem fn [ "counter"; "gauge"; "histogram"; "sub"; "v" ])
  | _ -> false

let valid_metric_name s =
  let seg_ok seg =
    String.length seg > 0
    && (match seg.[0] with 'a' .. 'z' -> true | _ -> false)
    && String.for_all
         (function 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false)
         seg
  in
  s <> "" && List.for_all seg_ok (String.split_on_char '.' s)

let check_obs_naming ctx (e : expression) =
  match e.exp_desc with
  | Texp_apply ({ exp_desc = Texp_ident (path, _, _); _ }, args)
    when obs_registration (Path.name path) ->
    List.iter
      (fun (_, arg) ->
        match arg with
        | Some
            {
              exp_desc = Texp_constant (Const_string (s, _, _));
              exp_loc = loc;
              _;
            }
          when not (valid_metric_name s) ->
          emit ctx ~rule:"obs-naming" ~loc
            (Printf.sprintf
               "metric name %S does not match the dotted.lowercase scheme \
                ([a-z][a-z0-9_]*, dot-separated); exported metrics must stay \
                stable" s)
        | _ -> ())
      args
  | _ -> ()

(* --- rule: hot-path-alloc ------------------------------------------ *)

(* Fires only inside function bodies ([fun_depth >= 1]) of hot-tagged
   code: module-initialization allocations (constant tables, dispatch
   lists) are once-per-program and exempt.  Closure allocation is
   detected in the iterator itself, where curried-parameter chains can
   be told apart from closures built per call. *)
let hot_scope ctx = ctx.hot_file || ctx.hot_binding

(* Format-string literals elaborate to CamlinternalFormatBasics
   constructors; they are compiler-generated, not per-access data. *)
let is_format_constructor (cd : Types.constructor_description) =
  match Types.get_desc cd.Types.cstr_res with
  | Tconstr (p, _, _) ->
    let name = Path.name p in
    let prefix = "CamlinternalFormat" in
    String.length name >= String.length prefix
    && String.sub name 0 (String.length prefix) = prefix
  | _ -> false

let check_hot_alloc ctx (e : expression) =
  if hot_scope ctx && ctx.fun_depth >= 1 then
    match e.exp_desc with
    | Texp_tuple _ ->
      emit ctx ~rule:"hot-path-alloc" ~loc:e.exp_loc
        "tuple allocated per call on a hot path; return a packed int or \
         write into reused scratch state"
    | Texp_construct (_, cd, _ :: _) when not (is_format_constructor cd) ->
      let what =
        match cd.Types.cstr_name with
        | "Some" -> "an option (Some)"
        | "::" -> "a list cell"
        | name -> Printf.sprintf "boxed constructor %s" name
      in
      emit ctx ~rule:"hot-path-alloc" ~loc:e.exp_loc
        (Printf.sprintf
           "%s allocated per call on a hot path; use a sentinel or \
            packed-int encoding" what)
    | Texp_variant (_, Some _) ->
      emit ctx ~rule:"hot-path-alloc" ~loc:e.exp_loc
        "polymorphic variant allocated per call on a hot path; use a \
         sentinel or packed-int encoding"
    | _ -> ()

(* --- the iterator ------------------------------------------------- *)

let env_of (e : expression) =
  try Envaux.env_of_only_summary e.exp_env with _ -> e.exp_env

let make_iterator ctx =
  let default = Tast_iterator.default_iterator in
  let expr sub (e : expression) =
    with_allows ctx e.exp_attributes @@ fun () ->
    let env = env_of e in
    check_determinism ctx e;
    check_hot_path ctx env e;
    check_poly_compare ctx env e;
    check_exception_contract ctx e;
    check_obs_naming ctx e;
    check_hot_alloc ctx e;
    match e.exp_desc with
    | Texp_function _ ->
      (* A fun nested in a function body allocates a closure per call —
         unless it is just the next curried parameter of the enclosing
         fun ([fun_chain]). *)
      if hot_scope ctx && ctx.fun_depth >= 1 && not ctx.fun_chain then
        emit ctx ~rule:"hot-path-alloc" ~loc:e.exp_loc
          "closure allocated per call on a hot path; hoist it to the top \
           level or specialize via a functor";
      let saved_chain = ctx.fun_chain and saved_depth = ctx.fun_depth in
      ctx.fun_chain <- true;
      ctx.fun_depth <- ctx.fun_depth + 1;
      default.expr sub e;
      ctx.fun_chain <- saved_chain;
      ctx.fun_depth <- saved_depth
    | _ ->
      let saved_chain = ctx.fun_chain in
      ctx.fun_chain <- false;
      default.expr sub e;
      ctx.fun_chain <- saved_chain
  in
  let value_binding sub (vb : value_binding) =
    with_allows ctx vb.vb_attributes @@ fun () ->
    let saved = ctx.hot_binding in
    if has_hot_attr vb.vb_attributes then ctx.hot_binding <- true;
    default.value_binding sub vb;
    ctx.hot_binding <- saved
  in
  let structure_item sub (item : structure_item) =
    match item.str_desc with
    | Tstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          let saved = ctx.current_top in
          (match vb.vb_pat.pat_desc with
           | Tpat_var (id, _) -> ctx.current_top <- Some (Ident.name id)
           | _ -> ctx.current_top <- None);
          sub.Tast_iterator.value_binding sub vb;
          ctx.current_top <- saved)
        vbs
    | _ -> default.structure_item sub item
  in
  { default with expr; value_binding; structure_item }

(* Floating [@@@atplint.allow "..."] anywhere in the file suppresses
   the rule file-wide; collect them before walking so placement does
   not matter. *)
let collect_file_allows (str : structure) =
  List.concat_map
    (fun item ->
      match item.str_desc with
      | Tstr_attribute attr -> Option.to_list (allow_payload attr)
      | _ -> [])
    str.str_items

let file_is_hot (str : structure) =
  List.exists
    (fun item ->
      match item.str_desc with
      | Tstr_attribute a -> a.attr_name.txt = "atplint.hot"
      | _ -> false)
    str.str_items

let run ~cfg ~file ~active ~exported_undoc ~mli_missing (str : structure) =
  let ctx =
    {
      cfg;
      file;
      active;
      stack = [];
      file_allows = collect_file_allows str;
      current_top = None;
      hot_file = file_is_hot str;
      hot_binding = false;
      fun_depth = 0;
      fun_chain = false;
      exported_undoc;
      diags = [];
    }
  in
  (match mli_missing with
   | None -> ()
   | Some loc ->
     emit ctx ~rule:"mli-coverage" ~loc
       (Printf.sprintf "module %s has no interface file; add %s"
          (Filename.remove_extension (Filename.basename file))
          (Filename.remove_extension file ^ ".mli")));
  let it = make_iterator ctx in
  it.structure it str;
  ctx.diags
