(* Classifier behind the no-poly-compare rule: is polymorphic
   structural comparison at this type obviously well-defined?

   "Safe" means the value is a tree of immediates and immutable
   structure: base scalars, constant constructors, and tuples /
   options / lists / arrays / immutable records and variants thereof.
   Everything else — abstract types (the functorized policy states the
   rule exists for), functions, objects, first-class modules, mutable
   records (identity semantics, possible cycles) — is flagged.

   Judgments err toward "safe" when the environment cannot answer
   (unresolvable path, reconstruction failure): a lint false negative
   is better than a false positive the code cannot fix. *)

open Types

let safe_base_paths =
  [
    Predef.path_int;
    Predef.path_char;
    Predef.path_bool;
    Predef.path_unit;
    Predef.path_float;
    Predef.path_string;
    Predef.path_bytes;
    Predef.path_int32;
    Predef.path_int64;
    Predef.path_nativeint;
  ]

let safe_container_paths =
  [ Predef.path_option; Predef.path_list; Predef.path_array ]

let rec is_safe env ~visited ~depth ty =
  if depth > 32 then true
  else
    let ty = try Ctype.expand_head env ty with _ -> ty in
    match get_desc ty with
    | Tvar _ | Tunivar _ ->
      (* Still polymorphic at this use site: the comparison is generic
         code; the instantiating caller is where any concrete misuse
         will be reported. *)
      true
    | Tarrow _ | Tobject _ | Tfield _ | Tpackage _ -> false
    | Tpoly (ty, _) -> is_safe env ~visited ~depth:(depth + 1) ty
    | Ttuple tys ->
      List.for_all (is_safe env ~visited ~depth:(depth + 1)) tys
    | Tconstr (p, args, _) ->
      if List.exists (Path.same p) safe_base_paths then true
      else if List.exists (Path.same p) safe_container_paths then
        List.for_all (is_safe env ~visited ~depth:(depth + 1)) args
      else
        let name = Path.name p in
        if List.mem name visited then true (* recursive type: assume ok *)
        else begin
          match Env.find_type p env with
          | exception _ -> true
          | decl -> decl_is_safe env ~visited:(name :: visited) ~depth decl
        end
    | Tlink _ | Tsubst _ -> true (* not reachable after expand_head *)
    | Tnil | Tvariant _ ->
      (* Polymorphic variants compare structurally like ordinary
         variants; their rows are immutable. *)
      true

and decl_is_safe env ~visited ~depth decl =
  match decl.type_kind with
  | Type_variant (cstrs, _) ->
    List.for_all
      (fun c ->
        match c.cd_args with
        | Cstr_tuple tys ->
          List.for_all (is_safe env ~visited ~depth:(depth + 1)) tys
        | Cstr_record lbls -> labels_safe env ~visited ~depth lbls)
      cstrs
  | Type_record (lbls, _) -> labels_safe env ~visited ~depth lbls
  | Type_abstract | Type_open -> false

and labels_safe env ~visited ~depth lbls =
  List.for_all
    (fun l ->
      l.ld_mutable = Asttypes.Immutable
      && is_safe env ~visited ~depth:(depth + 1) l.ld_type)
    lbls

let is_safe env ty = is_safe env ~visited:[] ~depth:0 ty

(* Render the offending type compactly for the diagnostic. *)
let type_to_string ty =
  Format.asprintf "%a" Printtyp.type_expr ty
