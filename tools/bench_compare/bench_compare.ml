(* bench_compare: diff a fresh BENCH_<experiment>.json row stream
   against a committed baseline and fail on regressions beyond a
   tolerance.

     bench_compare [--tolerance T] [--field F] [--lower-is-better]
       BASELINE FRESH

   Rows are matched by task key; within a matched pair every numeric
   leaf of the row's [data] object is compared (restricted to leaves
   named F when --field is given).  With the default higher-is-better
   orientation a fresh value below [baseline * (1 - T)] is a
   regression; --lower-is-better flips the test for ns/op-style data.
   Tasks or fields present in the baseline but missing from the fresh
   run fail the comparison; extra fresh tasks are reported and
   ignored.

   The committed baselines record ratio fields (the engine bench's
   [speedup] is wall-clock relative to the same machine's sequential
   replay), so CI compares those rather than machine-dependent ns/op.

   Exit codes: 0 within tolerance, 1 regression or missing data,
   2 usage or I/O error. *)

module Json = Atp_obs.Json
module Schema = Atp_exp.Schema

let tolerance = ref 0.25
let field = ref ""
let lower_is_better = ref false
let positional = ref []

let usage =
  "bench_compare [--tolerance T] [--field F] [--lower-is-better] \
   BASELINE FRESH"

let args =
  [
    ( "--tolerance",
      Arg.Set_float tolerance,
      "T relative regression allowed before failing (default 0.25)" );
    ( "--field",
      Arg.Set_string field,
      "F compare only data leaves with this name (default: all numeric \
       leaves)" );
    ( "--lower-is-better",
      Arg.Set lower_is_better,
      " treat larger fresh values as regressions (ns/op-style data)" );
  ]

let fatal fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("bench_compare: " ^ s);
      exit 2)
    fmt

let read_lines path =
  let ic = try open_in path with Sys_error msg -> fatal "%s" msg in
  let rec go acc =
    match input_line ic with
    | line -> go (if String.trim line = "" then acc else line :: acc)
    | exception End_of_file -> List.rev acc
  in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> go [])

(* task key -> data object of its ok row, in stream order. *)
let ok_rows path =
  (match Schema.validate_file path with
  | Ok _ -> ()
  | Error msg -> fatal "%s: %s" path msg);
  List.filter_map
    (fun line ->
      match Json.of_string line with
      | Error msg -> fatal "%s: unparseable row: %s" path msg
      | Ok json ->
        if not (Schema.is_row json) then None
        else if Schema.status_of_row json <> Some "ok" then None
        else
          Option.bind (Schema.task_of_row json) (fun task ->
              Option.map (fun data -> (task, data)) (Schema.data_of_row json)))
    (read_lines path)

(* Numeric leaves of a data object as (dotted path, value), in object
   order; non-numeric leaves are skipped. *)
let rec numeric_leaves prefix json =
  match json with
  | Json.Obj fields ->
    List.concat_map
      (fun (k, v) ->
        let path = if prefix = "" then k else prefix ^ "." ^ k in
        numeric_leaves path v)
      fields
  | _ -> (
    match Json.as_float json with
    | Some v -> [ (prefix, v) ]
    | None -> [])

let leaf_name path =
  match String.rindex_opt path '.' with
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)
  | None -> path

let () =
  Arg.parse args (fun p -> positional := p :: !positional) usage;
  let baseline_path, fresh_path =
    match List.rev !positional with
    | [ b; f ] -> (b, f)
    | _ ->
      prerr_endline ("usage: " ^ usage);
      exit 2
  in
  let baseline = ok_rows baseline_path in
  let fresh = ok_rows fresh_path in
  let failed = ref false in
  let compared = ref 0 in
  let fail fmt =
    Printf.ksprintf
      (fun s ->
        failed := true;
        print_endline s)
      fmt
  in
  List.iter
    (fun (task, base_data) ->
      match List.assoc_opt task fresh with
      | None -> fail "%s: MISSING from fresh run" task
      | Some fresh_data ->
        let fresh_leaves = numeric_leaves "" fresh_data in
        List.iter
          (fun (path, base_v) ->
            if !field = "" || leaf_name path = !field then
              match List.assoc_opt path fresh_leaves with
              | None -> fail "%s %s: MISSING from fresh run" task path
              | Some fresh_v ->
                incr compared;
                if base_v <= 0. then
                  Printf.printf "%s %s: baseline %g not positive; skipped\n"
                    task path base_v
                else begin
                  let delta = (fresh_v -. base_v) /. base_v in
                  let regressed =
                    if !lower_is_better then delta > !tolerance
                    else delta < -. !tolerance
                  in
                  if regressed then
                    fail "%s %s: REGRESSION %g -> %g (%+.1f%% vs %.0f%% allowed)"
                      task path base_v fresh_v (100. *. delta)
                      (100. *. !tolerance)
                  else
                    Printf.printf "%s %s: ok %g -> %g (%+.1f%%)\n" task path
                      base_v fresh_v (100. *. delta)
                end)
          (numeric_leaves "" base_data))
    baseline;
  List.iter
    (fun (task, _) ->
      if not (List.mem_assoc task baseline) then
        Printf.printf "%s: not in baseline; ignored\n" task)
    fresh;
  if !compared = 0 && not !failed then
    fatal "no comparable fields (field filter %S matched nothing)" !field;
  Printf.printf "bench_compare: %d field(s) compared, %s\n" !compared
    (if !failed then "FAILED" else "within tolerance");
  exit (if !failed then 1 else 0)
