# Convenience targets; everything is plain dune underneath.

.PHONY: all build test lint bench bench-quick examples clean doc

all: build

build:
	dune build @all

test:
	dune runtest

# Static analysis gate (tools/atplint over lib/, bin/ and bench/);
# needs the 5.1 compiler, a no-op elsewhere.  See docs/LINTING.md.
lint:
	dune build @lint

test-verbose:
	dune runtest --force --no-buffer

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

examples:
	dune exec examples/quickstart.exe
	dune exec examples/graph_analytics.exe
	dune exec examples/buffer_pool.exe
	dune exec examples/ballsbins_demo.exe
	dune exec examples/process_sim.exe

clean:
	dune clean
