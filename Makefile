# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-quick examples clean doc

all: build

build:
	dune build @all

test:
	dune runtest

test-verbose:
	dune runtest --force --no-buffer

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

examples:
	dune exec examples/quickstart.exe
	dune exec examples/graph_analytics.exe
	dune exec examples/buffer_pool.exe
	dune exec examples/ballsbins_demo.exe
	dune exec examples/process_sim.exe

clean:
	dune clean
