(* The benchmark harness: regenerates every figure of the paper's
   evaluation (Section 6) plus the ablations listed in DESIGN.md.

     dune exec bench/main.exe              # everything, default scale
     dune exec bench/main.exe -- fig1a     # one experiment
     dune exec bench/main.exe -- --quick   # reduced scale (CI-friendly)

   Experiments: fig1a fig1b fig1c decoupling ballsbins failures hybrid
   eps vmm thp smp mrc coalesced multiprog hpcfigs competitive iceberg
   micro.

   Scales are 1/16 of the paper's (4 GiB virtual address spaces instead
   of 64 GiB, millions of references instead of hundreds of millions);
   the shapes — who wins, by how many orders of magnitude, where the
   curves cross — are the reproduction targets, not absolute counts.
   See EXPERIMENTS.md for the paper-vs-measured record. *)

open Atp_core
open Atp_memsim
open Atp_paging
open Atp_workloads
open Atp_util
module Obs = Atp_obs

let quick = Array.exists (String.equal "--quick") Sys.argv

let scale_down n = if quick then n / 8 else n

let epsilon = 0.01

let hline = String.make 78 '-'

let header title =
  Printf.printf "\n%s\n%s\n%s\n" hline title hline

(* ------------------------------------------------------------------ *)
(* Figure 1: IOs and TLB misses vs huge-page size                      *)
(* ------------------------------------------------------------------ *)

let huge_sizes = [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024 ]

(* Replay one fixed (warmup, measured) trace pair across every h and
   the decoupled reference — the paper's trace-driven methodology. *)
let figure_sweep ~name ~ram ~tlb_entries ~warmup ~trace () =
  header
    (Printf.sprintf "%s — IOs and TLB misses vs huge-page size h (RAM %d pages, TLB %d)"
       name ram tlb_entries);
  Printf.printf "%8s %14s %14s %14s\n" "h" "IOs" "TLB misses" "cost(e=0.01)";
  (* One registry self-reports the whole sweep.  Machines are created
     serially — metric registration mutates the shared registry — and
     only then run in parallel, each touching its own counters. *)
  let reg = Obs.Registry.create () in
  let machines =
    List.filter_map
      (fun h ->
        (* Quick-mode RAM can be smaller than the largest huge page;
           skip sizes that don't fit. *)
        if h > ram then None
        else
          let m =
            Machine.create
              ~obs:(Obs.Scope.v ~prefix:(Printf.sprintf "machine.h%d" h) reg)
              { Machine.default_config with
                ram_pages = ram; tlb_entries; huge_size = h; epsilon }
          in
          Some (h, m))
      huge_sizes
  in
  (* Each h gets its own machine; the trace arrays are read-only, so
     the sweep runs one domain per h. *)
  let rows =
    Parallel.map (fun (h, m) -> (h, Machine.run ~warmup m trace)) machines
  in
  List.iter
    (fun (h, c) ->
      Printf.printf "%8d %14d %14d %14.1f\n%!" h c.Machine.ios
        c.Machine.tlb_misses (Machine.cost ~epsilon c))
    rows;
  (* The decoupled scheme on the same trace, as a reference row. *)
  let params = Params.derive ~p:ram ~w:64 () in
  let x = Policy.instantiate (module Lru) ~capacity:tlb_entries () in
  let y =
    Policy.instantiate (module Lru) ~capacity:(Params.usable_pages params) ()
  in
  let z = Simulation.create ~obs:(Obs.Scope.v ~prefix:"sim" reg) ~params ~x ~y () in
  let r = Simulation.run ~warmup z trace in
  Printf.printf "%8s %14d %14d %14.1f   <- decoupled (h_max=%d)\n" "Z"
    r.Simulation.ios r.Simulation.tlb_fills
    (Simulation.cost ~epsilon r)
    params.Params.h_max;
  let _, first = List.hd rows in
  let _, last = List.nth rows (List.length rows - 1) in
  Printf.printf
    "shape: IOs x%.0f from h=1 to h=1024; TLB misses x%.4f; at h=1 TLB/IO = %.1f\n"
    (float_of_int last.Machine.ios /. float_of_int (max 1 first.Machine.ios))
    (float_of_int last.Machine.tlb_misses
     /. float_of_int (max 1 first.Machine.tlb_misses))
    (float_of_int first.Machine.tlb_misses
     /. float_of_int (max 1 first.Machine.ios));
  (* Self-report: the measured window's cost model in one snapshot. *)
  Printf.printf "obs snapshot (measured window):\n%s\n"
    (Format.asprintf "%a" Obs.Registry.pp reg)

let fig1a () =
  let rng = Prng.create ~seed:100 () in
  (* 1/16 of the paper: hot 64 MiB region inside a 4 GiB space, RAM
     1 GiB, 99.99% hot. *)
  let w =
    Bimodal.create ~hot_fraction:0.9999 ~hot_pages:(1 lsl 14)
      ~virtual_pages:(1 lsl 20) rng
  in
  let warmup = Workload.generate w (scale_down 2_000_000) in
  let trace = Workload.generate w (scale_down 2_000_000) in
  figure_sweep ~name:"Figure 1a: bimodal uniform" ~ram:(1 lsl 18)
    ~tlb_entries:1536 ~warmup ~trace ()

let fig1b () =
  let rng = Prng.create ~seed:200 () in
  (* 4 GiB virtual space, 2 GiB cache: the paper's 64/32 ratio. *)
  let w = Graph_walk.create ~alpha:0.01 ~virtual_pages:(1 lsl 20) rng in
  let warmup = Workload.generate w (scale_down 2_000_000) in
  let trace = Workload.generate w (scale_down 2_000_000) in
  figure_sweep ~name:"Figure 1b: Pareto random graph walk" ~ram:(1 lsl 19)
    ~tlb_entries:1536 ~warmup ~trace ()

let fig1c () =
  (* The paper replays a 5M-access window of a graph500 run whose
     process footprint (60 GB) dwarfs the pages the window touches
     (525 MB), and sizes the cache just below the touched set (520 MB).
     We reproduce that regime: a graph much larger than the trace
     window (so the window's touched set is sparse in the address
     space), RAM sized at 520/525 of the measured touched set. *)
  let scale = if quick then 16 else 20 in
  let rng = Prng.create ~seed:300 () in
  let csr = Kronecker.generate ~scale ~edge_factor:16 rng in
  let w, layout = Graph500.create_from csr (Prng.create ~seed:301 ()) in
  let warmup = Workload.generate w (scale_down 2_000_000) in
  let trace = Workload.generate w (scale_down 2_000_000) in
  let touched =
    (Atp_workloads.Trace.summarize (Array.append warmup trace)).Trace.footprint
  in
  let ram = touched * 520 / 525 in
  figure_sweep
    ~name:
      (Printf.sprintf
         "Figure 1c: graph500 BFS (scale %d, VA %d pages, trace touches %d)"
         scale layout.Graph500.total_pages touched)
    ~ram ~tlb_entries:1536 ~warmup ~trace ()

(* ------------------------------------------------------------------ *)
(* A1: decoupling vs physical huge pages across epsilon                *)
(* ------------------------------------------------------------------ *)

let decoupling () =
  header
    "A1: C(Z) vs physical huge pages, across workloads and epsilon \
     (Theorem 4 in practice)";
  let tlb_entries = 512 in
  let warmup_n = scale_down 500_000 and measure_n = scale_down 500_000 in
  let epsilons = [ 0.001; 0.01; 0.1 ] in
  let workloads =
    [
      ( "bimodal",
        1 lsl 16,
        fun seed ->
          let rng = Prng.create ~seed () in
          Bimodal.create ~hot_fraction:0.999 ~hot_pages:(1 lsl 11)
            ~virtual_pages:(1 lsl 18) rng );
      ( "graph-walk",
        1 lsl 15,
        fun seed ->
          let rng = Prng.create ~seed () in
          Graph_walk.create ~virtual_pages:(1 lsl 16) rng );
      ( "zipf",
        1 lsl 15,
        fun seed ->
          let rng = Prng.create ~seed () in
          Simple.zipf ~s:0.9 ~virtual_pages:(1 lsl 17) rng );
    ]
  in
  List.iter
    (fun (name, ram, mk) ->
      Printf.printf "\n[%s] RAM = %d pages\n" name ram;
      let physical =
        List.map
          (fun h ->
            let w = mk 1 in
            let warmup = Workload.generate w warmup_n in
            let trace = Workload.generate w measure_n in
            let m =
              Machine.create
                { Machine.default_config with
                  ram_pages = ram; tlb_entries; huge_size = h }
            in
            let c = Machine.run ~warmup m trace in
            (h, c))
          [ 1; 16; 256 ]
      in
      let params = Params.derive ~p:ram ~w:64 () in
      let w = mk 1 in
      let warmup = Workload.generate w warmup_n in
      let trace = Workload.generate w measure_n in
      let x = Policy.instantiate (module Lru) ~capacity:tlb_entries () in
      let y =
        Policy.instantiate (module Lru)
          ~capacity:(Params.usable_pages params) ()
      in
      let z = Simulation.create ~params ~x ~y () in
      let r = Simulation.run ~warmup z trace in
      Printf.printf "%12s %14s %14s" "scheme" "IOs" "TLB misses";
      List.iter
        (fun e -> Printf.printf " %14s" (Printf.sprintf "cost(e=%g)" e))
        epsilons;
      print_newline ();
      List.iter
        (fun (h, c) ->
          Printf.printf "%12s %14d %14d"
            (Printf.sprintf "physical %d" h)
            c.Machine.ios c.Machine.tlb_misses;
          List.iter
            (fun e -> Printf.printf " %14.1f" (Machine.cost ~epsilon:e c))
            epsilons;
          print_newline ())
        physical;
      Printf.printf "%12s %14d %14d" "decoupled Z" r.Simulation.ios
        r.Simulation.tlb_fills;
      List.iter
        (fun e -> Printf.printf " %14.1f" (Simulation.cost ~epsilon:e r))
        epsilons;
      Printf.printf "   (failures=%d, decode misses=%d)\n"
        r.Simulation.failures_total r.Simulation.decoding_misses)
    workloads

(* ------------------------------------------------------------------ *)
(* A13: empirical Sleator–Tarjan — the competitive frame both halves   *)
(*      of the problem reduce to (Lemma 1)                             *)
(* ------------------------------------------------------------------ *)

let competitive () =
  header
    "A13: empirical competitive ratios vs OPT (Lemma 1's classical paging \
     frame)";
  let n = scale_down 200_000 in
  let k = 256 in
  let traces =
    [
      ( "zipf",
        Workload.generate
          (Simple.zipf ~s:0.9 ~virtual_pages:8_192 (Prng.create ~seed:91 ()))
          n );
      ( "graph-walk",
        Workload.generate
          (Graph_walk.create ~virtual_pages:8_192 (Prng.create ~seed:92 ()))
          n );
      ("adversary", Competitive.lru_adversary ~capacity:k ~length:n);
    ]
  in
  Printf.printf "%12s |" "trace";
  List.iter
    (fun (module P : Policy.S) -> Printf.printf " %8s" P.name)
    Registry.all;
  Printf.printf " | %10s\n" "ST bound";
  List.iter
    (fun (name, trace) ->
      Printf.printf "%12s |" name;
      List.iter
        (fun (module P : Policy.S) ->
          let rng = Prng.create ~seed:93 () in
          Printf.printf " %8.2f"
            (Competitive.ratio_vs_opt (module P) ~rng ~capacity:k trace))
        Registry.all;
      Printf.printf " | %10.0f\n%!" (Competitive.sleator_tarjan_bound ~k ~h:k))
    traces;
  (* Resource augmentation: LRU(k) against OPT(h), measured vs bound. *)
  Printf.printf
    "\nLRU(%d) vs OPT(h) with resource augmentation (adversarial trace):\n" k;
  Printf.printf "%8s %14s %14s\n" "h" "measured" "ST bound";
  let trace = Competitive.lru_adversary ~capacity:k ~length:n in
  List.iter
    (fun (h, measured, bound) ->
      Printf.printf "%8d %14.2f %14.2f\n%!" h measured bound)
    (Competitive.augmentation_curve (module Lru) ~k
       ~hs:[ k / 4; k / 2; (3 * k) / 4; k ]
       trace)

(* ------------------------------------------------------------------ *)
(* A2: balls-and-bins maximum loads (Theorem 2 empirically)            *)
(* ------------------------------------------------------------------ *)

let ballsbins () =
  header "A2: dynamic balls-and-bins maximum loads under churn (Theorem 2)";
  let open Atp_ballsbins in
  Printf.printf "%8s %6s %12s | %12s %12s %12s | %10s\n" "bins" "lam" "steps"
    "one-choice" "greedy[2]" "iceberg[2]" "bound";
  List.iter
    (fun (bins, lambda) ->
      let m = lambda * bins in
      let steps = scale_down (2 * m) in
      let run mk layers =
        let rng = Prng.create ~seed:7 () in
        let strategy = mk rng in
        let game = Game.create ~layers ~bins () in
        let arng = Prng.create ~seed:11 () in
        let ops = Adversary.churn arng ~m ~steps ~fresh:true in
        (Runner.run ~game ~strategy ops).Runner.max_load_ever
      in
      let one = run (fun rng -> Strategy.one_choice rng ~bins) 1 in
      let greedy = run (fun rng -> Strategy.greedy rng ~d:2 ~bins) 1 in
      let tau = Strategy.default_tau ~m ~bins in
      let ice = run (fun rng -> Strategy.iceberg rng ~tau ~bins ()) 2 in
      (* Theorem 2's bound: (1 + o(1)) lambda + log log n + O(1). *)
      let bound =
        int_of_float
          (ceil
             ((1.05 *. float_of_int lambda)
             +. Float.log2 (Float.max 2.0 (Float.log2 (float_of_int bins)))))
        + 3
      in
      Printf.printf "%8d %6d %12d | %12d %12d %12d | %10d\n%!" bins lambda
        steps one greedy ice bound)
    [ (1 lsl 12, 8); (1 lsl 12, 32); (1 lsl 14, 8); (1 lsl 14, 32) ]

(* ------------------------------------------------------------------ *)
(* A3: paging failures vs bucket size (Theorems 1 and 3 constants)     *)
(* ------------------------------------------------------------------ *)

let failures () =
  header "A3: paging failures when buckets shrink below the theorem bound";
  let p = 1 lsl 16 in
  Printf.printf "%12s %8s %8s %10s %14s %14s\n" "scheme" "B" "factor" "budget"
    "failures" "max load";
  List.iter
    (fun scheme ->
      let base = Params.derive ~scheme ~p ~w:64 () in
      List.iter
        (fun factor ->
          let bucket_size =
            max 1
              (int_of_float (float_of_int base.Params.bucket_size *. factor))
          in
          let params =
            { base with
              Params.bucket_size;
              buckets = p / bucket_size;
              tau =
                (if scheme = Params.One_choice then bucket_size
                 else min base.Params.tau bucket_size);
            }
          in
          let a = Alloc.create params in
          let budget =
            min (Params.usable_pages base) (Alloc.frames a * 95 / 100)
          in
          for page = 0 to budget - 1 do
            ignore (Alloc.insert a page)
          done;
          let name =
            match scheme with
            | Params.One_choice -> "one-choice"
            | Params.Iceberg { d } -> Printf.sprintf "iceberg[%d]" d
          in
          Printf.printf "%12s %8d %8.2f %10d %14d %14d\n%!" name bucket_size
            factor budget (Alloc.failures_total a) (Alloc.max_bucket_load a))
        [ 0.15; 0.3; 0.6; 1.0 ])
    [ Params.One_choice; Params.Iceberg { d = 2 } ]

(* ------------------------------------------------------------------ *)
(* A4: the hybrid scheme of Section 8                                  *)
(* ------------------------------------------------------------------ *)

let hybrid () =
  header
    "A4: hybrid decoupling (Section 8) — physical chunks under decoupled \
     fields";
  (* A hot set much larger than the decoupled TLB reach
     (tlb_entries × h_max), so extra coverage has something to buy. *)
  let ram = 1 lsl 16 in
  let tlb_entries = 128 in
  let warmup_n = scale_down 500_000 and measure_n = scale_down 500_000 in
  let mk_workload seed =
    let rng = Prng.create ~seed () in
    Bimodal.create ~hot_fraction:0.999 ~hot_pages:(1 lsl 14)
      ~virtual_pages:(1 lsl 18) rng
  in
  Printf.printf "%10s %10s %14s %14s %14s\n" "chunk" "coverage" "IOs"
    "TLB misses" "cost(e=0.01)";
  List.iter
    (fun chunk ->
      let h = Hybrid.create ~ram_pages:ram ~chunk ~w:64 ~tlb_entries () in
      let w = mk_workload 1 in
      let warmup = Workload.generate w warmup_n in
      let trace = Workload.generate w measure_n in
      let r = Hybrid.run ~warmup h trace in
      Printf.printf "%10d %10d %14d %14d %14.1f\n%!" chunk r.Hybrid.coverage
        r.Hybrid.ios r.Hybrid.tlb_fills (Hybrid.cost ~epsilon r))
    [ 1; 4; 16; 64 ];
  (* Physical huge pages with coverage comparable to chunk=16. *)
  let w = mk_workload 1 in
  let warmup = Workload.generate w warmup_n in
  let trace = Workload.generate w measure_n in
  let m =
    Machine.create
      { Machine.default_config with
        ram_pages = ram; tlb_entries; huge_size = 128 }
  in
  let c = Machine.run ~warmup m trace in
  Printf.printf "%10s %10d %14d %14d %14.1f   <- pure physical h=128\n" "-"
    128 c.Machine.ios c.Machine.tlb_misses (Machine.cost ~epsilon c)

(* ------------------------------------------------------------------ *)
(* A5: measured epsilon — page walks, PWC, huge leaves, virtualization *)
(* ------------------------------------------------------------------ *)

let eps () =
  header
    "A5: the TLB-miss cost epsilon, measured from page walks (bare metal \
     vs nested/virtualized)";
  let io_cycles = 40_000 in
  let accesses = scale_down 200_000 in
  let spaces = [ ("dense-64k", 1 lsl 16); ("sparse-16M", 1 lsl 24) ] in
  Printf.printf "%12s %16s %16s %16s %16s\n" "space" "bare walk(cyc)"
    "bare eps" "nested walk(cyc)" "nested eps";
  List.iter
    (fun (name, space) ->
      let rng = Prng.create ~seed:17 () in
      let pt = Page_table.create () in
      let bare = Walker.create pt in
      let nested = Nested.create () in
      for _ = 1 to accesses do
        let v = Prng.int rng space in
        if Page_table.lookup pt v = None then begin
          Page_table.map pt ~vpage:v ~frame:v ();
          Nested.guest_map nested ~gva:v ~gpa:v
        end;
        ignore (Walker.translate bare v);
        ignore (Nested.translate nested v)
      done;
      Printf.printf "%12s %16.1f %16.5f %16.1f %16.5f\n%!" name
        (Walker.average_cycles bare)
        (Walker.epsilon bare ~io_latency_cycles:io_cycles)
        (Nested.average_cycles nested)
        (Nested.epsilon nested ~io_latency_cycles:io_cycles))
    spaces;
  (* Huge leaves shorten walks: same sparse space mapped with level-1
     leaves. *)
  let rng = Prng.create ~seed:18 () in
  let pt = Page_table.create () in
  let w = Walker.create pt in
  for _ = 1 to accesses do
    let v = Prng.int rng (1 lsl 24) in
    let base = v land lnot 511 in
    if Page_table.lookup pt v = None then
      Page_table.map pt ~vpage:base ~frame:base ~level:1 ();
    ignore (Walker.translate w v)
  done;
  Printf.printf "%12s %16.1f %16.5f   <- level-1 (2 MiB-style) leaves\n"
    "sparse-16M" (Walker.average_cycles w)
    (Walker.epsilon w ~io_latency_cycles:io_cycles)

(* ------------------------------------------------------------------ *)
(* A6: transparent huge pages vs static huge pages vs decoupling       *)
(* ------------------------------------------------------------------ *)

let rec thp () =
  header "A6: THP (promotion + compaction) vs static huge pages vs decoupled";
  let ram = 1 lsl 16 in
  let warmup_n = scale_down 500_000 and measure_n = scale_down 500_000 in
  (* Two hot-set layouts: dense (THP-friendly: whole regions promote)
     and sparse (one hot page per region: promotion never triggers and
     large coverage is wasted). *)
  let mk_dense seed =
    let rng = Prng.create ~seed () in
    Bimodal.create ~hot_fraction:0.999 ~hot_pages:(1 lsl 12)
      ~virtual_pages:(1 lsl 18) rng
  in
  let mk_sparse seed =
    let rng = Prng.create ~seed () in
    let hot = 1 lsl 12 in
    let spread = 64 in
    let virtual_pages = 1 lsl 18 in
    let next () =
      if Prng.float rng < 0.999 then Prng.int rng hot * spread
      else Prng.int rng virtual_pages
    in
    {
      Workload.name = "sparse-bimodal";
      virtual_pages;
      description = "hot pages strided 64 apart";
      next;
    }
  in
  run_thp_block ~title:"dense hot set" ~ram ~warmup_n ~measure_n mk_dense;
  run_thp_block ~title:"sparse hot set (1 hot page per 64)" ~ram ~warmup_n
    ~measure_n mk_sparse;
  (* Under memory pressure, promoted regions are evicted whole and
     re-filled whole: THP pays amplification the decoupled scheme
     avoids. *)
  let mk_pressure seed =
    let rng = Prng.create ~seed () in
    Bimodal.create ~hot_fraction:0.98 ~hot_pages:(1 lsl 12)
      ~virtual_pages:(1 lsl 18) rng
  in
  run_thp_block ~title:"dense hot set under memory pressure (RAM 6000 pages)"
    ~ram:6000 ~warmup_n ~measure_n mk_pressure

and run_thp_block ~title ~ram ~warmup_n ~measure_n mk_workload =
  Printf.printf "\n[%s]\n" title;
  Printf.printf "%16s %12s %12s %12s %14s\n" "scheme" "IOs" "TLB misses"
    "promotions" "cost(e=0.01)";
  (* Static physical huge pages. *)
  List.iter
    (fun h ->
      let w = mk_workload 1 in
      let warmup = Workload.generate w warmup_n in
      let trace = Workload.generate w measure_n in
      let m =
        Machine.create
          { Machine.default_config with
            ram_pages = ram; tlb_entries = 1536; huge_size = h }
      in
      let c = Machine.run ~warmup m trace in
      Printf.printf "%16s %12d %12d %12s %14.1f\n%!"
        (Printf.sprintf "static h=%d" h)
        c.Machine.ios c.Machine.tlb_misses "-"
        (Machine.cost ~epsilon c))
    [ 1; 64; 512 ];
  (* THP with a Cascade-Lake-style split TLB. *)
  let w = mk_workload 1 in
  let warmup = Workload.generate w warmup_n in
  let trace = Workload.generate w measure_n in
  let t =
    Thp.create
      { Thp.default_config with
        ram_pages = ram; base_tlb_entries = 1536; huge_tlb_entries = 16;
        huge_size = 512 }
  in
  let c = Thp.run ~warmup t trace in
  Printf.printf "%16s %12d %12d %12d %14.1f   (fill-ios=%d compaction=%d)\n"
    "THP h=512" c.Thp.ios c.Thp.tlb_misses c.Thp.promotions
    (Thp.cost ~epsilon c) c.Thp.promotion_fill_ios c.Thp.compaction_evictions;
  (* Reservation-based superpages (Navarro et al.). *)
  let w = mk_workload 1 in
  let warmup = Workload.generate w warmup_n in
  let trace = Workload.generate w measure_n in
  let sp =
    Superpage.create
      { Superpage.default_config with
        ram_pages = ram; base_tlb_entries = 1536; huge_tlb_entries = 16;
        huge_size = 512 }
  in
  let c = Superpage.run ~warmup sp trace in
  Printf.printf
    "%16s %12d %12d %12d %14.1f   (preempt=%d waste=%d)\n"
    "superpage h=512" c.Superpage.ios c.Superpage.tlb_misses
    c.Superpage.promotions
    (Superpage.cost ~epsilon c)
    c.Superpage.preemptions
    (Superpage.reserved_unused_frames sp);
  (* Decoupled. *)
  let params = Params.derive ~p:ram ~w:64 () in
  let w = mk_workload 1 in
  let warmup = Workload.generate w warmup_n in
  let trace = Workload.generate w measure_n in
  let x = Policy.instantiate (module Lru) ~capacity:1536 () in
  let y =
    Policy.instantiate (module Lru) ~capacity:(Params.usable_pages params) ()
  in
  let z = Simulation.create ~params ~x ~y () in
  let r = Simulation.run ~warmup z trace in
  Printf.printf "%16s %12d %12d %12s %14.1f\n" "decoupled Z" r.Simulation.ios
    r.Simulation.tlb_fills "-" (Simulation.cost ~epsilon r)

(* ------------------------------------------------------------------ *)
(* A10: the full bill — cycles per access through the whole VMM        *)
(* ------------------------------------------------------------------ *)

let vmm () =
  header
    "A10: end-to-end cycles per access (TLB + page walks + swap) through \
     the full VMM";
  let n = scale_down 500_000 in
  let pages = 1 lsl 14 in
  Printf.printf "%10s %10s | %14s %14s %14s %16s\n" "tlb" "ram" "tlb miss%"
    "majors" "cyc/access" "translation %";
  List.iter
    (fun (tlb, ram) ->
      let vm =
        Vmm.create { Vmm.default_config with ram_pages = ram; tlb_entries = tlb }
      in
      Vmm.mmap vm ~start:0 ~pages;
      let rng = Prng.create ~seed:51 () in
      let zipf = Sampler.zipf ~s:0.9 ~n:pages in
      (* warmup *)
      for _ = 1 to n / 2 do
        Vmm.read vm (zipf rng)
      done;
      Vmm.reset_counters vm;
      for _ = 1 to n do
        if Prng.float rng < 0.1 then Vmm.write vm (zipf rng)
        else Vmm.read vm (zipf rng)
      done;
      let c = Vmm.counters vm in
      Printf.printf "%10d %10d | %14.2f %14d %14.1f %16.1f\n%!" tlb ram
        (100.0 *. float_of_int c.Vmm.tlb_misses /. float_of_int c.Vmm.accesses)
        c.Vmm.major_faults
        (Vmm.average_cycles_per_access vm)
        (100.0 *. Vmm.translation_fraction vm))
    [
      (64, 1 lsl 14); (512, 1 lsl 14); (4096, 1 lsl 14);
      (512, 1 lsl 12); (512, 1 lsl 13);
    ];
  (* The decoupled TLB in the same cycle terms: a TLB miss costs one
     psi-table access plus the constant-time decode, not a 4-level
     radix walk — the paper's constant-time property priced out. *)
  let params = Params.derive ~p:(1 lsl 14) ~w:64 () in
  let x = Policy.instantiate (module Lru) ~capacity:512 () in
  let y =
    Policy.instantiate (module Lru) ~capacity:(Params.usable_pages params) ()
  in
  let z = Simulation.create ~params ~x ~y () in
  let rng = Prng.create ~seed:51 () in
  let zipf = Sampler.zipf ~s:0.9 ~n:(1 lsl 14) in
  let n = scale_down 500_000 in
  for _ = 1 to n / 2 do
    Simulation.access z (zipf rng)
  done;
  Simulation.reset_report z;
  for _ = 1 to n do
    Simulation.access z (zipf rng)
  done;
  let r = Simulation.report z in
  let memory_latency = Walker.default_config.Walker.memory_latency in
  let decode_cycles = 4 in
  let cycles =
    r.Simulation.accesses
    + (r.Simulation.tlb_fills * (memory_latency + decode_cycles))
  in
  Printf.printf
    "%10s %10d | %14.2f %14s %14.1f %16s   <- decoupled (1 access/miss)\n"
    "512(Z)" (1 lsl 14)
    (100.0 *. float_of_int r.Simulation.tlb_fills
     /. float_of_int r.Simulation.accesses)
    "-"
    (float_of_int cycles /. float_of_int r.Simulation.accesses)
    "-"

(* ------------------------------------------------------------------ *)
(* A7: per-core TLBs and shootdowns                                    *)
(* ------------------------------------------------------------------ *)

let smp () =
  header "A7: multi-core TLBs — shared vs partitioned working sets";
  let n = scale_down 1_000_000 in
  let rng = Prng.create ~seed:23 () in
  let zipf = Simple.zipf ~s:0.9 ~virtual_pages:(1 lsl 14) rng in
  let warmup = Workload.generate zipf n in
  let trace = Workload.generate zipf n in
  Printf.printf "%8s %12s | %12s %10s %10s | %12s %10s %10s\n" "cores" "mode"
    "TLB misses" "IOs" "IPIs" "TLB misses" "IOs" "IPIs";
  Printf.printf "%8s %12s | %34s | %34s\n" "" "" "shared" "partitioned";
  List.iter
    (fun cores ->
      (* Per-core TLB reach at or above RAM capacity, so eviction
         victims are actually cached somewhere and shootdowns have
         teeth (RAM here is the constrained resource). *)
      let cfg =
        { Smp.default_config with
          cores;
          ram_pages = 1 lsl 9;
          tlb_entries_per_core = 1536 / cores;
        }
      in
      let shared = Smp.run_shared ~warmup (Smp.create cfg) trace in
      let part = Smp.run_partitioned ~warmup (Smp.create cfg) trace in
      Printf.printf "%8d %12s | %12d %10d %10d | %12d %10d %10d\n%!" cores
        "zipf" shared.Smp.tlb_misses shared.Smp.ios shared.Smp.ipis
        part.Smp.tlb_misses part.Smp.ios part.Smp.ipis)
    [ 1; 2; 4; 8 ];
  (* Decoupling under per-core TLBs: hardware entries are copies, so a
     residency change to a remotely covered huge page costs an update
     notification — the concurrency price of ψ sharing. *)
  Printf.printf
    "\nDecoupled scheme under per-core TLBs (same trace, shared round-robin):\n";
  Printf.printf "%8s %12s %10s %14s %12s\n" "cores" "TLB fills" "IOs"
    "psi-update IPIs" "decode miss";
  List.iter
    (fun cores ->
      let params = Params.derive ~p:(1 lsl 9) ~w:64 () in
      let y =
        Policy.instantiate (module Lru)
          ~capacity:(Params.usable_pages params) ()
      in
      let t =
        Smp_decoupled.create ~params ~cores
          ~tlb_entries_per_core:(1536 / cores) ~y ()
      in
      let r = Smp_decoupled.run_shared ~warmup t trace in
      Printf.printf "%8d %12d %10d %14d %12d\n%!" cores
        r.Smp_decoupled.tlb_fills r.Smp_decoupled.ios
        r.Smp_decoupled.psi_update_ipis r.Smp_decoupled.decoding_misses)
    [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* A8: miss-ratio curves (how RAM sizes are chosen)                    *)
(* ------------------------------------------------------------------ *)

let mrc () =
  header "A8: single-pass LRU miss-ratio curves (Mattson stack distances)";
  let n = scale_down 1_000_000 in
  let workloads =
    [
      ( "bimodal",
        fun () ->
          let rng = Prng.create ~seed:31 () in
          Bimodal.create ~hot_fraction:0.999 ~hot_pages:(1 lsl 11)
            ~virtual_pages:(1 lsl 18) rng );
      ( "graph-walk",
        fun () ->
          let rng = Prng.create ~seed:32 () in
          Graph_walk.create ~virtual_pages:(1 lsl 16) rng );
      ( "zipf",
        fun () ->
          let rng = Prng.create ~seed:33 () in
          Simple.zipf ~s:0.9 ~virtual_pages:(1 lsl 17) rng );
    ]
  in
  let capacities = [ 256; 1024; 4096; 16384; 65536 ] in
  Printf.printf "%12s %12s %10s |" "workload" "ws(99.9%)" "cold";
  List.iter (fun c -> Printf.printf " %9s" (Printf.sprintf "c=%d" c)) capacities;
  print_newline ();
  List.iter
    (fun (name, mk) ->
      let trace = Workload.generate (mk ()) n in
      let m = Mattson.of_trace trace in
      Printf.printf "%12s %12d %10d |" name
        (Mattson.working_set_size m ~fraction:0.999)
        (Mattson.cold_misses m);
      List.iter (fun c -> Printf.printf " %9d" (Mattson.misses m c)) capacities;
      print_newline ())
    workloads

(* ------------------------------------------------------------------ *)
(* A9: coalesced TLBs — contiguity helps only until fragmentation      *)
(* ------------------------------------------------------------------ *)

let coalesced () =
  header
    "A9: coalesced TLB (CoLT-style) reach under contiguous vs fragmented \
     frame allocation";
  let n = scale_down 500_000 in
  let space = 1 lsl 16 in
  let rng = Prng.create ~seed:41 () in
  let w = Simple.zipf ~s:0.8 ~virtual_pages:space rng in
  let trace = Workload.generate w n in
  (* Two frame layouts: identity (perfect OS contiguity) and a random
     permutation (fully fragmented memory). *)
  let identity v = Some v in
  let permutation =
    let perm = Array.init space (fun i -> i) in
    Prng.shuffle (Prng.create ~seed:42 ()) perm;
    fun v -> Some perm.(v)
  in
  Printf.printf "%14s %12s %12s %14s %16s\n" "layout" "lookups" "misses"
    "miss rate" "avg run length";
  List.iter
    (fun (name, pt) ->
      let tlb = Atp_tlb.Coalesced.create ~max_run:8 ~entries:1536 () in
      Array.iter
        (fun v ->
          match Atp_tlb.Coalesced.lookup tlb v with
          | Some _ -> ()
          | None ->
            let frame = Option.get (pt v) in
            ignore (Atp_tlb.Coalesced.fill tlb ~lookup_pt:pt ~vpage:v ~frame))
        trace;
      let s = Atp_tlb.Coalesced.stats tlb in
      Printf.printf "%14s %12d %12d %14.4f %16.2f\n%!" name
        s.Atp_tlb.Coalesced.lookups s.Atp_tlb.Coalesced.misses
        (float_of_int s.Atp_tlb.Coalesced.misses
         /. float_of_int (max 1 s.Atp_tlb.Coalesced.lookups))
        (float_of_int s.Atp_tlb.Coalesced.coalesced_pages
         /. float_of_int (max 1 s.Atp_tlb.Coalesced.fills)))
    [ ("contiguous", identity); ("fragmented", permutation) ];
  Printf.printf
    "(decoupling needs no contiguity at all: its reach is h_max regardless \
     of layout)\n"

(* ------------------------------------------------------------------ *)
(* A11: multiprogramming — ASIDs, flushes, and the L1/L2 hierarchy     *)
(* ------------------------------------------------------------------ *)

let multiprog () =
  header "A11: multiprogramming a shared TLB — ASID tagging vs flush-on-switch";
  let entries = 1536 in
  let quantum = 1_000 in
  let n = scale_down 400_000 in
  Printf.printf "%10s %12s | %14s %14s %10s\n" "processes" "ws/process"
    "misses (asid)" "misses (flush)" "ratio";
  List.iter
    (fun (procs, ws) ->
      let mk_workloads () =
        Array.init procs (fun i ->
            let rng = Prng.create ~seed:(60 + i) () in
            Simple.zipf ~s:0.9 ~virtual_pages:ws rng)
      in
      let run ~flush =
        let t = Atp_tlb.Asid.create ~entries () in
        let workloads = mk_workloads () in
        let switches = n / quantum in
        for s = 0 to switches - 1 do
          let asid = s mod procs in
          if flush then Atp_tlb.Asid.flush_all t;
          let w = workloads.(asid) in
          for _ = 1 to quantum do
            let v = w.Workload.next () in
            match Atp_tlb.Asid.lookup t ~asid v with
            | Some _ -> ()
            | None -> ignore (Atp_tlb.Asid.insert t ~asid v v)
          done
        done;
        (Atp_tlb.Asid.stats t).Atp_tlb.Tlb.misses
      in
      let asid_misses = run ~flush:false in
      let flush_misses = run ~flush:true in
      Printf.printf "%10d %12d | %14d %14d %10.2f\n%!" procs ws asid_misses
        flush_misses
        (float_of_int flush_misses /. float_of_int (max 1 asid_misses)))
    [ (1, 512); (2, 512); (4, 512); (8, 512); (4, 2048) ];
  (* The L1/L2 hierarchy's effective latency across locality regimes. *)
  Printf.printf "\nL1/L2 hierarchy average lookup latency (cycles):\n";
  Printf.printf "%16s %12s %12s %12s\n" "workload" "avg cyc" "l1 miss%" "l2 miss%";
  List.iter
    (fun (name, mk) ->
      let t = Atp_tlb.Hierarchy.create () in
      let w = mk () in
      for _ = 1 to scale_down 400_000 do
        let v = w.Workload.next () in
        match Atp_tlb.Hierarchy.lookup t v with
        | Some _, _ -> ()
        | None, _ -> Atp_tlb.Hierarchy.insert t v v
      done;
      let miss_pct (s : Atp_tlb.Tlb.stats) =
        100.0 *. float_of_int s.Atp_tlb.Tlb.misses
        /. float_of_int (max 1 s.Atp_tlb.Tlb.lookups)
      in
      Printf.printf "%16s %12.2f %12.1f %12.1f\n%!" name
        (Atp_tlb.Hierarchy.average_latency t)
        (miss_pct (Atp_tlb.Hierarchy.l1_stats t))
        (miss_pct (Atp_tlb.Hierarchy.l2_stats t)))
    [
      ( "zipf",
        fun () ->
          Simple.zipf ~s:0.9 ~virtual_pages:(1 lsl 16) (Prng.create ~seed:71 ()) );
      ("stencil", fun () -> Hpc.stencil ~rows:256 ~cols:512 ());
      ( "gups",
        fun () -> Hpc.gups ~table_pages:(1 lsl 16) (Prng.create ~seed:72 ()) );
    ]

(* ------------------------------------------------------------------ *)
(* A12: HPC kernels through the Figure 1 sweep (both sides of the      *)
(*      huge-page coin)                                                *)
(* ------------------------------------------------------------------ *)

let hpcfigs () =
  header
    "A12: HPC kernels under the huge-page sweep — dense kernels love huge \
     pages, sparse ones drown in IO";
  let ram = 1 lsl 16 in
  let n = scale_down 1_000_000 in
  let sweep name (w : Workload.t) =
    let warmup = Workload.generate w n in
    let trace = Workload.generate w n in
    Printf.printf "\n[%s] %s\n" name w.Workload.description;
    Printf.printf "%8s %14s %14s %14s\n" "h" "IOs" "TLB misses" "cost(e=0.01)";
    let rows =
      Parallel.map
        (fun h ->
          let m =
            Machine.create
              { Machine.default_config with
                ram_pages = ram; tlb_entries = 256; huge_size = h }
          in
          (h, Machine.run ~warmup m trace))
        [ 1; 16; 256 ]
    in
    List.iter
      (fun (h, c) ->
        Printf.printf "%8d %14d %14d %14.1f\n%!" h c.Machine.ios
          c.Machine.tlb_misses (Machine.cost ~epsilon c))
      rows
  in
  sweep "stencil" (Hpc.stencil ~rows:512 ~cols:1024 ());
  sweep "multistream" (Hpc.multistream ~streams:8 ~virtual_pages:(1 lsl 17) ());
  sweep "gups" (Hpc.gups ~table_pages:(1 lsl 17) (Prng.create ~seed:81 ()));
  sweep "pointer-chase"
    (Hpc.pointer_chase ~working_set:(1 lsl 14) ~virtual_pages:(1 lsl 17)
       (Prng.create ~seed:82 ()))

(* ------------------------------------------------------------------ *)
(* A14: iceberg hashing as a dictionary; translation prefetching       *)
(* ------------------------------------------------------------------ *)

let iceberg () =
  header
    "A14: Iceberg hashing as a dictionary (probe costs, front-yard \
     residency) and TEMPO-style prefetch";
  let open Atp_ballsbins in
  let capacity = 1 lsl 16 in
  Printf.printf "%8s %14s %14s %14s %12s\n" "load" "avg probes" "front frac"
    "spill" "vs Hashtbl";
  List.iter
    (fun load ->
      let t = Iceberg_table.create ~capacity () in
      let n = int_of_float (float_of_int capacity *. load) in
      for k = 0 to n - 1 do
        Iceberg_table.insert t k k
      done;
      Iceberg_table.reset_stats t;
      let rng = Prng.create ~seed:101 () in
      let lookups = scale_down 400_000 in
      let t0 = Sys.time () in
      for _ = 1 to lookups do
        ignore (Iceberg_table.find t (Prng.int rng n))
      done;
      let iceberg_time = Sys.time () -. t0 in
      let reference = Hashtbl.create capacity in
      for k = 0 to n - 1 do Hashtbl.replace reference k k done;
      let rng = Prng.create ~seed:101 () in
      let t0 = Sys.time () in
      for _ = 1 to lookups do
        ignore (Hashtbl.find_opt reference (Prng.int rng n))
      done;
      let hashtbl_time = Sys.time () -. t0 in
      let s = Iceberg_table.stats t in
      Printf.printf "%8.2f %14.2f %14.3f %14d %11.2fx\n%!" load
        (float_of_int s.Iceberg_table.slots_probed
         /. float_of_int (max 1 s.Iceberg_table.lookups))
        (Iceberg_table.front_yard_fraction t)
        (Iceberg_table.overflow_count t)
        (iceberg_time /. Float.max 1e-9 hashtbl_time))
    [ 0.25; 0.5; 0.75; 0.9; 1.0 ];
  (* Prefetch: the optimization whose payoff huge pages erode (§7). *)
  Printf.printf "\nTEMPO-style next-page prefetch (64-entry TLB, degree 2):\n";
  Printf.printf "%14s %14s %14s %12s\n" "workload" "misses (off)" "misses (on)"
    "accuracy";
  let pt v = if v >= 0 then Some v else None in
  let n = scale_down 400_000 in
  List.iter
    (fun (name, mk) ->
      let run degree =
        let t = Atp_tlb.Prefetch.create ~degree ~entries:64 ~translate:pt () in
        let w : Workload.t = mk () in
        for _ = 1 to n do
          ignore (Atp_tlb.Prefetch.lookup t (w.Workload.next ()))
        done;
        t
      in
      let off = run 0 and on_ = run 2 in
      Printf.printf "%14s %14d %14d %12.3f\n%!" name
        (Atp_tlb.Prefetch.stats off).Atp_tlb.Prefetch.demand_misses
        (Atp_tlb.Prefetch.stats on_).Atp_tlb.Prefetch.demand_misses
        (Atp_tlb.Prefetch.accuracy on_))
    [
      ("sequential", fun () -> Simple.sequential ~virtual_pages:(1 lsl 14) ());
      ("stencil", fun () -> Hpc.stencil ~rows:128 ~cols:512 ());
      ( "gups",
        fun () -> Hpc.gups ~table_pages:(1 lsl 14) (Prng.create ~seed:103 ()) );
    ]

(* ------------------------------------------------------------------ *)
(* B1: microbenchmarks (Bechamel)                                      *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "B1: microbenchmarks (ns per operation, OLS fit)";
  let open Bechamel in
  let open Toolkit in
  (* One Test.make per core operation and per figure pipeline step. *)
  let lru_test =
    let inst = Policy.instantiate (module Lru) ~capacity:4096 () in
    let rng = Prng.create ~seed:1 () in
    Test.make ~name:"lru-access"
      (Staged.stage (fun () ->
           ignore (inst.Policy.access (Prng.int rng 16_384))))
  in
  let tlb_test =
    let tlb = Atp_tlb.Tlb.create ~entries:1536 () in
    let rng = Prng.create ~seed:2 () in
    Test.make ~name:"tlb-lookup+fill"
      (Staged.stage (fun () ->
           let u = Prng.int rng 8192 in
           match Atp_tlb.Tlb.lookup tlb u with
           | Some _ -> ()
           | None -> ignore (Atp_tlb.Tlb.insert tlb u u)))
  in
  let alloc_test =
    let params = Params.derive ~p:(1 lsl 16) ~w:64 () in
    let a = Alloc.create params in
    let budget = Params.usable_pages params in
    let rng = Prng.create ~seed:3 () in
    Test.make ~name:"iceberg-churn"
      (Staged.stage (fun () ->
           let page = Prng.int rng (1 lsl 18) in
           if Alloc.mem a page then Alloc.delete a page
           else if Alloc.live a < budget then ignore (Alloc.insert a page)))
  in
  let decode_test =
    let params = Params.derive ~p:(1 lsl 16) ~w:64 () in
    let a = Alloc.create params in
    let e = Encoding.create a in
    let value = Encoding.empty_value e in
    for i = 0 to Encoding.h_max e - 1 do
      ignore (Alloc.insert a i);
      Encoding.refresh_page e value i
    done;
    let rng = Prng.create ~seed:4 () in
    Test.make ~name:"tlb-decode-f"
      (Staged.stage (fun () ->
           ignore (Encoding.decode e (Prng.int rng (Encoding.h_max e)) value)))
  in
  let machine_test =
    let m =
      Machine.create
        { Machine.default_config with
          ram_pages = 1 lsl 14; tlb_entries = 512; huge_size = 8 }
    in
    let rng = Prng.create ~seed:5 () in
    Test.make ~name:"machine-access(fig1-step)"
      (Staged.stage (fun () -> Machine.access m (Prng.int rng (1 lsl 16))))
  in
  let sim_test =
    let params = Params.derive ~p:(1 lsl 14) ~w:64 () in
    let x = Policy.instantiate (module Lru) ~capacity:512 () in
    let y =
      Policy.instantiate (module Lru) ~capacity:(Params.usable_pages params) ()
    in
    let z = Simulation.create ~params ~x ~y () in
    let rng = Prng.create ~seed:6 () in
    Test.make ~name:"simulation-access(Z-step)"
      (Staged.stage (fun () -> Simulation.access z (Prng.int rng (1 lsl 16))))
  in
  let tests =
    [ lru_test; tlb_test; alloc_test; decode_test; machine_test; sim_test ]
  in
  let grouped = Test.make_grouped ~name:"atp" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if quick then 0.25 else 0.5))
      ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances grouped in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure per_test ->
      if String.equal measure (Measure.label Instance.monotonic_clock) then
        Hashtbl.iter
          (fun name ols_result ->
            match Analyze.OLS.estimates ols_result with
            | Some [ est ] -> Printf.printf "%-36s %12.1f ns/op\n" name est
            | _ -> Printf.printf "%-36s %12s\n" name "n/a")
          per_test)
    merged

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig1a", fig1a);
    ("fig1b", fig1b);
    ("fig1c", fig1c);
    ("decoupling", decoupling);
    ("ballsbins", ballsbins);
    ("failures", failures);
    ("hybrid", hybrid);
    ("eps", eps);
    ("vmm", vmm);
    ("thp", thp);
    ("smp", smp);
    ("mrc", mrc);
    ("coalesced", coalesced);
    ("multiprog", multiprog);
    ("hpcfigs", hpcfigs);
    ("competitive", competitive);
    ("iceberg", iceberg);
    ("micro", micro);
  ]

let () =
  let requested =
    Array.to_list Sys.argv |> List.tl
    |> List.filter (fun a ->
           not (String.length a >= 2 && String.sub a 0 2 = "--"))
  in
  let to_run =
    if requested = [] then experiments
    else
      List.map
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> (name, f)
          | None ->
            Printf.eprintf "unknown experiment %S; known: %s\n" name
              (String.concat ", " (List.map fst experiments));
            exit 2)
        requested
  in
  Printf.printf "atp benchmark harness%s\n" (if quick then " (quick mode)" else "");
  List.iter (fun (_, f) -> f ()) to_run;
  Printf.printf "\n%s\ndone.\n" hline
