(* The benchmark harness: regenerates every figure of the paper's
   evaluation (Section 6) plus the ablations listed in DESIGN.md.

     dune exec bench/main.exe              # everything, default scale
     dune exec bench/main.exe -- fig1a     # one experiment
     dune exec bench/main.exe -- --quick   # reduced scale (CI-friendly)

   Experiments: fig1a fig1b fig1c decoupling ballsbins failures hybrid
   eps vmm thp smp mrc coalesced multiprog hpcfigs competitive iceberg
   engine micro core.

   Every experiment runs on the Atp_exp runner: tasks execute in
   parallel with per-task outcomes (a raising task becomes an error
   row, its siblings still report), per-task wall-clock and obs
   snapshots, optional --retries, and — with --json — a machine-
   readable BENCH_<experiment>.json row stream (schema atp.bench/1,
   see EXPERIMENTS.md) checkpointed task by task so a killed sweep
   resumes with --resume instead of restarting from zero.

   Scales are 1/16 of the paper's (4 GiB virtual address spaces instead
   of 64 GiB, millions of references instead of hundreds of millions);
   the shapes — who wins, by how many orders of magnitude, where the
   curves cross — are the reproduction targets, not absolute counts.
   See EXPERIMENTS.md for the paper-vs-measured record. *)

open Atp_core
open Atp_memsim
open Atp_paging
open Atp_workloads
open Atp_util
module Obs = Atp_obs
module Json = Atp_obs.Json
module Spec = Atp_exp.Spec
module Runner = Atp_exp.Runner
module Outcome = Atp_exp.Outcome
module Report = Atp_exp.Report

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)
(* ------------------------------------------------------------------ *)

let usage =
  "usage: main.exe [--quick] [--json] [--resume] [--out-dir DIR] \
   [--retries N] [experiment ...]\n\
  \  --quick        reduced scale (CI-friendly)\n\
  \  --json         write BENCH_<experiment>.json row streams (implies \
   checkpointing)\n\
  \  --resume       skip tasks already checkpointed by a previous \
   (killed) run\n\
  \  --out-dir DIR  where BENCH files and .checkpoints/ go (default .)\n\
  \  --retries N    extra attempts per failing task (default 0)\n"

let quick_flag = ref false

let json_flag = ref false

let resume_flag = ref false

let out_dir = ref "."

let retries = ref 0

let requested = ref []

let bad_usage msg =
  prerr_string (msg ^ "\n" ^ usage);
  exit 2

let () =
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick_flag := true;
      parse rest
    | "--json" :: rest ->
      json_flag := true;
      parse rest
    | "--resume" :: rest ->
      resume_flag := true;
      parse rest
    | [ "--out-dir" ] -> bad_usage "--out-dir needs a directory"
    | "--out-dir" :: dir :: rest ->
      out_dir := dir;
      parse rest
    | [ "--retries" ] -> bad_usage "--retries needs a count"
    | "--retries" :: n :: rest ->
      (match int_of_string_opt n with
       | Some n when n >= 0 -> retries := n
       | Some _ | None -> bad_usage "--retries wants a non-negative integer");
      parse rest
    | arg :: _ when String.length arg >= 2 && String.equal (String.sub arg 0 2) "--"
      ->
      bad_usage (Printf.sprintf "unknown option %s" arg)
    | name :: rest ->
      requested := name :: !requested;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  requested := List.rev !requested

let quick = !quick_flag

let scale_down n = if quick then n / 8 else n

let epsilon = 0.01

let hline = String.make 78 '-'

let header title = Printf.printf "\n%s\n%s\n%s\n" hline title hline

(* ------------------------------------------------------------------ *)
(* Runner plumbing                                                     *)
(* ------------------------------------------------------------------ *)

let shared_params =
  [ ("quick", Json.Bool quick); ("epsilon", Json.Float epsilon) ]

let spec ?(params = []) ~name tasks =
  Spec.v ~params:(shared_params @ params) ~name tasks

(* --json turns on both the row stream and the checkpoint that backs
   --resume; --resume alone still checkpoints so an interrupted
   pretty-only run can be finished. *)
let run_spec (s : Spec.t) =
  let json_path =
    if !json_flag then
      Some (Filename.concat !out_dir ("BENCH_" ^ s.Spec.name ^ ".json"))
    else None
  in
  let checkpoint_path =
    if !json_flag || !resume_flag then
      Some
        (Filename.concat
           (Filename.concat !out_dir ".checkpoints")
           (s.Spec.name ^ ".ckpt"))
    else None
  in
  let config =
    {
      Runner.default_config with
      retries = !retries;
      json_path;
      checkpoint_path;
      resume = !resume_flag;
    }
  in
  let outcomes = Runner.run ~config s in
  let replayed =
    List.length (List.filter (fun o -> o.Outcome.replayed) outcomes)
  in
  if replayed > 0 then
    Printf.printf "(resume: %d/%d tasks replayed from checkpoint)\n" replayed
      (List.length outcomes);
  Option.iter (Printf.printf "(json rows: %s)\n") json_path;
  outcomes

let print_obs_counters ~title outcome =
  match Option.bind (Outcome.obs outcome) (Json.member "counters") with
  | Some (Json.Obj fields) when fields <> [] ->
    Printf.printf "obs snapshot (%s):\n" title;
    List.iter
      (fun (k, v) ->
        match Json.as_int v with
        | Some n ->
          Printf.printf "%s = %s\n" k (Format.asprintf "%a" Stats.pp_count n)
        | None -> ())
      fields
  | Some _ | None -> ()

let with_prefix prefix (o : Outcome.t) =
  let n = String.length prefix in
  String.length o.Outcome.key >= n
  && String.equal (String.sub o.Outcome.key 0 n) prefix

(* ------------------------------------------------------------------ *)
(* Figure 1: IOs and TLB misses vs huge-page size                      *)
(* ------------------------------------------------------------------ *)

let huge_sizes = [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024 ]

let machine_data (c : Machine.counters) =
  Json.Obj
    [
      ("ios", Json.Int c.Machine.ios);
      ("tlb_misses", Json.Int c.Machine.tlb_misses);
      ("cost", Json.Float (Machine.cost ~epsilon c));
    ]

let cost_columns =
  [
    Report.col_int ~field:"ios" "IOs";
    Report.col_int ~field:"tlb_misses" "TLB misses";
    Report.col_float ~field:"cost" "cost(e=0.01)";
  ]

(* Replay one fixed (warmup, measured) trace pair across every h and
   the decoupled reference — the paper's trace-driven methodology.
   Each task owns a machine and a private obs registry; the traces are
   shared read-only, so the sweep runs one domain per h. *)
let figure_sweep ~name ~exp ~ram ~tlb_entries ~warmup ~trace () =
  header
    (Printf.sprintf
       "%s — IOs and TLB misses vs huge-page size h (RAM %d pages, TLB %d)"
       name ram tlb_entries);
  let machine_task h =
    Spec.task ~key:(Printf.sprintf "h=%d" h) (fun reg ->
        let m =
          Machine.create
            ~obs:(Obs.Scope.v ~prefix:(Printf.sprintf "machine.h%d" h) reg)
            { Machine.default_config with
              ram_pages = ram; tlb_entries; huge_size = h; epsilon }
        in
        machine_data (Machine.run ~warmup m trace))
  in
  let decoupled_task =
    (* The decoupled scheme on the same trace, as a reference row. *)
    Spec.task ~key:"decoupled" (fun reg ->
        let params = Params.derive ~p:ram ~w:64 () in
        let x = Policy.instantiate (module Lru) ~capacity:tlb_entries () in
        let y =
          Policy.instantiate (module Lru)
            ~capacity:(Params.usable_pages params) ()
        in
        let z =
          Simulation.create ~obs:(Obs.Scope.v ~prefix:"sim" reg) ~params ~x ~y
            ()
        in
        let r = Simulation.run ~warmup z trace in
        Json.Obj
          [
            ("ios", Json.Int r.Simulation.ios);
            ("tlb_misses", Json.Int r.Simulation.tlb_fills);
            ("cost", Json.Float (Simulation.cost ~epsilon r));
            ("h_max", Json.Int params.Params.h_max);
          ])
  in
  let tasks =
    (* Quick-mode RAM can be smaller than the largest huge page; skip
       sizes that don't fit.  The sweep may end up empty or a
       singleton — Report.shape_line totals both. *)
    List.filter_map
      (fun h -> if h > ram then None else Some (machine_task h))
      huge_sizes
    @ [ decoupled_task ]
  in
  let s =
    spec ~name:exp
      ~params:[ ("ram", Json.Int ram); ("tlb_entries", Json.Int tlb_entries) ]
      tasks
  in
  let outcomes = run_spec s in
  Report.print_table
    ~columns:(cost_columns @ [ Report.col_int ~width:8 ~field:"h_max" "h_max" ])
    outcomes;
  let rows =
    List.filter_map
      (fun o ->
        if String.equal o.Outcome.key "decoupled" then None
        else
          match (Outcome.int_field "ios" o, Outcome.int_field "tlb_misses" o) with
          | Some ios, Some tlb -> Some (o.Outcome.key, ios, tlb)
          | _ -> None)
      outcomes
  in
  print_endline (Report.shape_line rows);
  (* Self-report: the decoupled reference's cost model in one
     snapshot (per-h machine snapshots live in the JSON rows). *)
  List.iter
    (fun o ->
      if String.equal o.Outcome.key "decoupled" then
        print_obs_counters ~title:"decoupled reference, measured window" o)
    outcomes

let fig1a () =
  let rng = Prng.create ~seed:100 () in
  (* 1/16 of the paper: hot 64 MiB region inside a 4 GiB space, RAM
     1 GiB, 99.99% hot. *)
  let w =
    Bimodal.create ~hot_fraction:0.9999 ~hot_pages:(1 lsl 14)
      ~virtual_pages:(1 lsl 20) rng
  in
  let warmup = Workload.generate w (scale_down 2_000_000) in
  let trace = Workload.generate w (scale_down 2_000_000) in
  figure_sweep ~name:"Figure 1a: bimodal uniform" ~exp:"fig1a" ~ram:(1 lsl 18)
    ~tlb_entries:1536 ~warmup ~trace ()

let fig1b () =
  let rng = Prng.create ~seed:200 () in
  (* 4 GiB virtual space, 2 GiB cache: the paper's 64/32 ratio. *)
  let w = Graph_walk.create ~alpha:0.01 ~virtual_pages:(1 lsl 20) rng in
  let warmup = Workload.generate w (scale_down 2_000_000) in
  let trace = Workload.generate w (scale_down 2_000_000) in
  figure_sweep ~name:"Figure 1b: Pareto random graph walk" ~exp:"fig1b"
    ~ram:(1 lsl 19) ~tlb_entries:1536 ~warmup ~trace ()

let fig1c () =
  (* The paper replays a 5M-access window of a graph500 run whose
     process footprint (60 GB) dwarfs the pages the window touches
     (525 MB), and sizes the cache just below the touched set (520 MB).
     We reproduce that regime: a graph much larger than the trace
     window (so the window's touched set is sparse in the address
     space), RAM sized at 520/525 of the measured touched set. *)
  let scale = if quick then 16 else 20 in
  let rng = Prng.create ~seed:300 () in
  let csr = Kronecker.generate ~scale ~edge_factor:16 rng in
  let w, layout = Graph500.create_from csr (Prng.create ~seed:301 ()) in
  let warmup = Workload.generate w (scale_down 2_000_000) in
  let trace = Workload.generate w (scale_down 2_000_000) in
  let touched =
    (Atp_workloads.Trace.summarize (Array.append warmup trace)).Trace.footprint
  in
  let ram = touched * 520 / 525 in
  figure_sweep
    ~name:
      (Printf.sprintf
         "Figure 1c: graph500 BFS (scale %d, VA %d pages, trace touches %d)"
         scale layout.Graph500.total_pages touched)
    ~exp:"fig1c" ~ram ~tlb_entries:1536 ~warmup ~trace ()

(* ------------------------------------------------------------------ *)
(* A1: decoupling vs physical huge pages across epsilon                *)
(* ------------------------------------------------------------------ *)

let decoupling () =
  header
    "A1: C(Z) vs physical huge pages, across workloads and epsilon \
     (Theorem 4 in practice)";
  let tlb_entries = 512 in
  let warmup_n = scale_down 500_000 and measure_n = scale_down 500_000 in
  let epsilons = [ 0.001; 0.01; 0.1 ] in
  let cost_fields costf =
    List.map
      (fun e ->
        (Printf.sprintf "cost_e%g" e, Json.Float (costf e)))
      epsilons
  in
  let workloads =
    [
      ( "bimodal",
        1 lsl 16,
        fun seed ->
          let rng = Prng.create ~seed () in
          Bimodal.create ~hot_fraction:0.999 ~hot_pages:(1 lsl 11)
            ~virtual_pages:(1 lsl 18) rng );
      ( "graph-walk",
        1 lsl 15,
        fun seed ->
          let rng = Prng.create ~seed () in
          Graph_walk.create ~virtual_pages:(1 lsl 16) rng );
      ( "zipf",
        1 lsl 15,
        fun seed ->
          let rng = Prng.create ~seed () in
          Simple.zipf ~s:0.9 ~virtual_pages:(1 lsl 17) rng );
    ]
  in
  let tasks =
    List.concat_map
      (fun (wname, ram, mk) ->
        let physical h =
          Spec.task ~key:(Printf.sprintf "%s/physical-h%d" wname h) (fun _reg ->
              let w = mk 1 in
              let warmup = Workload.generate w warmup_n in
              let trace = Workload.generate w measure_n in
              let m =
                Machine.create
                  { Machine.default_config with
                    ram_pages = ram; tlb_entries; huge_size = h }
              in
              let c = Machine.run ~warmup m trace in
              Json.Obj
                ([
                   ("ios", Json.Int c.Machine.ios);
                   ("tlb_misses", Json.Int c.Machine.tlb_misses);
                 ]
                @ cost_fields (fun e -> Machine.cost ~epsilon:e c)))
        in
        let decoupled =
          Spec.task ~key:(wname ^ "/decoupled") (fun _reg ->
              let params = Params.derive ~p:ram ~w:64 () in
              let w = mk 1 in
              let warmup = Workload.generate w warmup_n in
              let trace = Workload.generate w measure_n in
              let x =
                Policy.instantiate (module Lru) ~capacity:tlb_entries ()
              in
              let y =
                Policy.instantiate (module Lru)
                  ~capacity:(Params.usable_pages params) ()
              in
              let z = Simulation.create ~params ~x ~y () in
              let r = Simulation.run ~warmup z trace in
              Json.Obj
                ([
                   ("ios", Json.Int r.Simulation.ios);
                   ("tlb_misses", Json.Int r.Simulation.tlb_fills);
                 ]
                @ cost_fields (fun e -> Simulation.cost ~epsilon:e r)
                @ [
                    ("failures", Json.Int r.Simulation.failures_total);
                    ("decode_misses", Json.Int r.Simulation.decoding_misses);
                  ]))
        in
        List.map physical [ 1; 16; 256 ] @ [ decoupled ])
      workloads
  in
  let outcomes =
    run_spec (spec ~name:"decoupling" ~params:[ ("tlb_entries", Json.Int tlb_entries) ] tasks)
  in
  Report.print_table
    ~columns:
      ([
         Report.col_int ~field:"ios" "IOs";
         Report.col_int ~field:"tlb_misses" "TLB misses";
       ]
      @ List.map
          (fun e ->
            Report.col_float
              ~field:(Printf.sprintf "cost_e%g" e)
              (Printf.sprintf "cost(e=%g)" e))
          epsilons
      @ [
          Report.col_int ~width:10 ~field:"failures" "failures";
          Report.col_int ~width:12 ~field:"decode_misses" "decode miss";
        ])
    outcomes

(* ------------------------------------------------------------------ *)
(* A13: empirical Sleator–Tarjan — the competitive frame both halves   *)
(*      of the problem reduce to (Lemma 1)                             *)
(* ------------------------------------------------------------------ *)

let competitive () =
  header
    "A13: empirical competitive ratios vs OPT (Lemma 1's classical paging \
     frame)";
  let n = scale_down 200_000 in
  let k = 256 in
  let adv_trace = Competitive.lru_adversary ~capacity:k ~length:n in
  let traces =
    [
      ( "zipf",
        Workload.generate
          (Simple.zipf ~s:0.9 ~virtual_pages:8_192 (Prng.create ~seed:91 ()))
          n );
      ( "graph-walk",
        Workload.generate
          (Graph_walk.create ~virtual_pages:8_192 (Prng.create ~seed:92 ()))
          n );
      ("adversary", adv_trace);
    ]
  in
  let ratio_task (tname, trace) =
    Spec.task ~key:("ratios/" ^ tname) (fun _reg ->
        Json.Obj
          (List.map
             (fun (module P : Policy.S) ->
               let rng = Prng.create ~seed:93 () in
               ( P.name,
                 Json.Float
                   (Competitive.ratio_vs_opt (module P) ~rng ~capacity:k trace)
               ))
             Registry.all
          @ [
              ( "st_bound",
                Json.Float (Competitive.sleator_tarjan_bound ~k ~h:k) );
            ]))
  in
  (* Resource augmentation: LRU(k) against OPT(h), measured vs bound. *)
  let aug_task h =
    Spec.task ~key:(Printf.sprintf "aug/h=%d" h) (fun _reg ->
        match
          Competitive.augmentation_curve (module Lru) ~k ~hs:[ h ] adv_trace
        with
        | [ (_, measured, bound) ] ->
          Json.Obj
            [ ("measured", Json.Float measured); ("bound", Json.Float bound) ]
        | _ -> failwith "augmentation_curve: expected one row")
  in
  let tasks =
    List.map ratio_task traces
    @ List.map aug_task [ k / 4; k / 2; 3 * k / 4; k ]
  in
  let outcomes =
    run_spec (spec ~name:"competitive" ~params:[ ("k", Json.Int k) ] tasks)
  in
  Report.print_table
    ~columns:
      (List.map
         (fun pname -> Report.col_float ~width:8 ~decimals:2 ~field:pname pname)
         Registry.names
      @ [ Report.col_float ~width:10 ~decimals:0 ~field:"st_bound" "ST bound" ])
    (List.filter (with_prefix "ratios/") outcomes);
  Printf.printf
    "\nLRU(%d) vs OPT(h) with resource augmentation (adversarial trace):\n" k;
  Report.print_table
    ~columns:
      [
        Report.col_float ~decimals:2 ~field:"measured" "measured";
        Report.col_float ~decimals:2 ~field:"bound" "ST bound";
      ]
    (List.filter (with_prefix "aug/") outcomes)

(* ------------------------------------------------------------------ *)
(* A2: balls-and-bins maximum loads (Theorem 2 empirically)            *)
(* ------------------------------------------------------------------ *)

let ballsbins () =
  header "A2: dynamic balls-and-bins maximum loads under churn (Theorem 2)";
  let open Atp_ballsbins in
  let tasks =
    List.map
      (fun (bins, lambda) ->
        Spec.task
          ~key:(Printf.sprintf "n=%d/lam=%d" bins lambda)
          (fun _reg ->
            let m = lambda * bins in
            let steps = scale_down (2 * m) in
            let run mk layers =
              let rng = Prng.create ~seed:7 () in
              let strategy = mk rng in
              let game = Game.create ~layers ~bins () in
              let arng = Prng.create ~seed:11 () in
              let ops = Adversary.churn arng ~m ~steps ~fresh:true in
              (Runner.run ~game ~strategy ops).Runner.max_load_ever
              [@atplint.allow "determinism"]
            in
            let one = run (fun rng -> Strategy.one_choice rng ~bins) 1 in
            let greedy = run (fun rng -> Strategy.greedy rng ~d:2 ~bins) 1 in
            let tau = Strategy.default_tau ~m ~bins in
            let ice = run (fun rng -> Strategy.iceberg rng ~tau ~bins ()) 2 in
            (* Theorem 2's bound: (1 + o(1)) lambda + log log n + O(1). *)
            let bound =
              int_of_float
                (ceil
                   ((1.05 *. float_of_int lambda)
                   +. Float.log2 (Float.max 2.0 (Float.log2 (float_of_int bins)))
                   ))
              + 3
            in
            Json.Obj
              [
                ("steps", Json.Int steps);
                ("one_choice", Json.Int one);
                ("greedy2", Json.Int greedy);
                ("iceberg2", Json.Int ice);
                ("bound", Json.Int bound);
              ]))
      [ (1 lsl 12, 8); (1 lsl 12, 32); (1 lsl 14, 8); (1 lsl 14, 32) ]
  in
  let outcomes = run_spec (spec ~name:"ballsbins" tasks) in
  Report.print_table
    ~columns:
      [
        Report.col_int ~width:12 ~field:"steps" "steps";
        Report.col_int ~width:12 ~field:"one_choice" "one-choice";
        Report.col_int ~width:12 ~field:"greedy2" "greedy[2]";
        Report.col_int ~width:12 ~field:"iceberg2" "iceberg[2]";
        Report.col_int ~width:10 ~field:"bound" "bound";
      ]
    outcomes

(* ------------------------------------------------------------------ *)
(* A3: paging failures vs bucket size (Theorems 1 and 3 constants)     *)
(* ------------------------------------------------------------------ *)

let failures () =
  header "A3: paging failures when buckets shrink below the theorem bound";
  let p = 1 lsl 16 in
  let scheme_name = function
    | Params.One_choice -> "one-choice"
    | Params.Iceberg { d } -> Printf.sprintf "iceberg%d" d
  in
  let tasks =
    List.concat_map
      (fun scheme ->
        let base = Params.derive ~scheme ~p ~w:64 () in
        List.map
          (fun factor ->
            Spec.task
              ~key:(Printf.sprintf "%s/f=%.2f" (scheme_name scheme) factor)
              (fun _reg ->
                let bucket_size =
                  max 1
                    (int_of_float
                       (float_of_int base.Params.bucket_size *. factor))
                in
                let params =
                  { base with
                    Params.bucket_size;
                    buckets = p / bucket_size;
                    tau =
                      (if scheme = Params.One_choice then bucket_size
                       else min base.Params.tau bucket_size);
                  }
                in
                let a = Alloc.create params in
                let budget =
                  min (Params.usable_pages base) (Alloc.frames a * 95 / 100)
                in
                for page = 0 to budget - 1 do
                  ignore (Alloc.insert a page)
                done;
                Json.Obj
                  [
                    ("bucket_size", Json.Int bucket_size);
                    ("factor", Json.Float factor);
                    ("budget", Json.Int budget);
                    ("failures", Json.Int (Alloc.failures_total a));
                    ("max_load", Json.Int (Alloc.max_bucket_load a));
                  ]))
          [ 0.15; 0.3; 0.6; 1.0 ])
      [ Params.One_choice; Params.Iceberg { d = 2 } ]
  in
  let outcomes = run_spec (spec ~name:"failures" ~params:[ ("p", Json.Int p) ] tasks) in
  Report.print_table
    ~columns:
      [
        Report.col_int ~width:8 ~field:"bucket_size" "B";
        Report.col_int ~width:10 ~field:"budget" "budget";
        Report.col_int ~field:"failures" "failures";
        Report.col_int ~field:"max_load" "max load";
      ]
    outcomes

(* ------------------------------------------------------------------ *)
(* A4: the hybrid scheme of Section 8                                  *)
(* ------------------------------------------------------------------ *)

let hybrid () =
  header
    "A4: hybrid decoupling (Section 8) — physical chunks under decoupled \
     fields";
  (* A hot set much larger than the decoupled TLB reach
     (tlb_entries × h_max), so extra coverage has something to buy. *)
  let ram = 1 lsl 16 in
  let tlb_entries = 128 in
  let warmup_n = scale_down 500_000 and measure_n = scale_down 500_000 in
  let mk_workload seed =
    let rng = Prng.create ~seed () in
    Bimodal.create ~hot_fraction:0.999 ~hot_pages:(1 lsl 14)
      ~virtual_pages:(1 lsl 18) rng
  in
  let chunk_task chunk =
    Spec.task ~key:(Printf.sprintf "chunk=%d" chunk) (fun _reg ->
        let h = Hybrid.create ~ram_pages:ram ~chunk ~w:64 ~tlb_entries () in
        let w = mk_workload 1 in
        let warmup = Workload.generate w warmup_n in
        let trace = Workload.generate w measure_n in
        let r = Hybrid.run ~warmup h trace in
        Json.Obj
          [
            ("coverage", Json.Int r.Hybrid.coverage);
            ("ios", Json.Int r.Hybrid.ios);
            ("tlb_misses", Json.Int r.Hybrid.tlb_fills);
            ("cost", Json.Float (Hybrid.cost ~epsilon r));
          ])
  in
  (* Physical huge pages with coverage comparable to chunk=16. *)
  let physical_task =
    Spec.task ~key:"physical-h128" (fun _reg ->
        let w = mk_workload 1 in
        let warmup = Workload.generate w warmup_n in
        let trace = Workload.generate w measure_n in
        let m =
          Machine.create
            { Machine.default_config with
              ram_pages = ram; tlb_entries; huge_size = 128 }
        in
        let c = Machine.run ~warmup m trace in
        Json.Obj
          [
            ("coverage", Json.Int 128);
            ("ios", Json.Int c.Machine.ios);
            ("tlb_misses", Json.Int c.Machine.tlb_misses);
            ("cost", Json.Float (Machine.cost ~epsilon c));
          ])
  in
  let tasks = List.map chunk_task [ 1; 4; 16; 64 ] @ [ physical_task ] in
  let outcomes =
    run_spec
      (spec ~name:"hybrid"
         ~params:
           [ ("ram", Json.Int ram); ("tlb_entries", Json.Int tlb_entries) ]
         tasks)
  in
  Report.print_table
    ~columns:(Report.col_int ~width:10 ~field:"coverage" "coverage" :: cost_columns)
    outcomes

(* ------------------------------------------------------------------ *)
(* A5: measured epsilon — page walks, PWC, huge leaves, virtualization *)
(* ------------------------------------------------------------------ *)

let eps () =
  header
    "A5: the TLB-miss cost epsilon, measured from page walks (bare metal \
     vs nested/virtualized)";
  let io_cycles = 40_000 in
  let accesses = scale_down 200_000 in
  let space_task (sname, space) =
    Spec.task ~key:sname (fun _reg ->
        let rng = Prng.create ~seed:17 () in
        let pt = Page_table.create () in
        let bare = Walker.create pt in
        let nested = Nested.create () in
        for _ = 1 to accesses do
          let v = Prng.int rng space in
          if Page_table.lookup pt v = None then begin
            Page_table.map pt ~vpage:v ~frame:v ();
            Nested.guest_map nested ~gva:v ~gpa:v
          end;
          ignore (Walker.translate bare v);
          ignore (Nested.translate nested v)
        done;
        Json.Obj
          [
            ("bare_walk_cycles", Json.Float (Walker.average_cycles bare));
            ( "bare_eps",
              Json.Float (Walker.epsilon bare ~io_latency_cycles:io_cycles) );
            ("nested_walk_cycles", Json.Float (Nested.average_cycles nested));
            ( "nested_eps",
              Json.Float (Nested.epsilon nested ~io_latency_cycles:io_cycles)
            );
          ])
  in
  (* Huge leaves shorten walks: same sparse space mapped with level-1
     leaves. *)
  let huge_leaf_task =
    Spec.task ~key:"sparse-16M/level1-leaves" (fun _reg ->
        let rng = Prng.create ~seed:18 () in
        let pt = Page_table.create () in
        let w = Walker.create pt in
        for _ = 1 to accesses do
          let v = Prng.int rng (1 lsl 24) in
          let base = v land lnot 511 in
          if Page_table.lookup pt v = None then
            Page_table.map pt ~vpage:base ~frame:base ~level:1 ();
          ignore (Walker.translate w v)
        done;
        Json.Obj
          [
            ("bare_walk_cycles", Json.Float (Walker.average_cycles w));
            ( "bare_eps",
              Json.Float (Walker.epsilon w ~io_latency_cycles:io_cycles) );
          ])
  in
  let tasks =
    List.map space_task [ ("dense-64k", 1 lsl 16); ("sparse-16M", 1 lsl 24) ]
    @ [ huge_leaf_task ]
  in
  let outcomes =
    run_spec
      (spec ~name:"eps" ~params:[ ("io_cycles", Json.Int io_cycles) ] tasks)
  in
  Report.print_table
    ~columns:
      [
        Report.col_float ~width:16 ~field:"bare_walk_cycles" "bare walk(cyc)";
        Report.col_float ~width:16 ~decimals:5 ~field:"bare_eps" "bare eps";
        Report.col_float ~width:16 ~field:"nested_walk_cycles"
          "nested walk(cyc)";
        Report.col_float ~width:16 ~decimals:5 ~field:"nested_eps" "nested eps";
      ]
    outcomes

(* ------------------------------------------------------------------ *)
(* A6: transparent huge pages vs static huge pages vs decoupling       *)
(* ------------------------------------------------------------------ *)

let thp () =
  header "A6: THP (promotion + compaction) vs static huge pages vs decoupled";
  let warmup_n = scale_down 500_000 and measure_n = scale_down 500_000 in
  (* Three hot-set layouts: dense (THP-friendly: whole regions
     promote), sparse (one hot page per region: promotion never
     triggers and large coverage is wasted), and dense under memory
     pressure (promoted regions are evicted whole and re-filled whole:
     THP pays amplification the decoupled scheme avoids). *)
  let mk_dense seed =
    let rng = Prng.create ~seed () in
    Bimodal.create ~hot_fraction:0.999 ~hot_pages:(1 lsl 12)
      ~virtual_pages:(1 lsl 18) rng
  in
  let mk_sparse seed =
    let rng = Prng.create ~seed () in
    let hot = 1 lsl 12 in
    let spread = 64 in
    let virtual_pages = 1 lsl 18 in
    let next () =
      if Prng.float rng < 0.999 then Prng.int rng hot * spread
      else Prng.int rng virtual_pages
    in
    {
      Workload.name = "sparse-bimodal";
      virtual_pages;
      description = "hot pages strided 64 apart";
      next;
    }
  in
  let mk_pressure seed =
    let rng = Prng.create ~seed () in
    Bimodal.create ~hot_fraction:0.98 ~hot_pages:(1 lsl 12)
      ~virtual_pages:(1 lsl 18) rng
  in
  let blocks =
    [
      ("dense", 1 lsl 16, mk_dense);
      ("sparse", 1 lsl 16, mk_sparse);
      ("pressure", 6000, mk_pressure);
    ]
  in
  let traces mk =
    let w = mk 1 in
    (Workload.generate w warmup_n, Workload.generate w measure_n)
  in
  let tasks =
    List.concat_map
      (fun (block, ram, mk) ->
        let static h =
          Spec.task ~key:(Printf.sprintf "%s/static-h%d" block h) (fun _reg ->
              let warmup, trace = traces mk in
              let m =
                Machine.create
                  { Machine.default_config with
                    ram_pages = ram; tlb_entries = 1536; huge_size = h }
              in
              machine_data (Machine.run ~warmup m trace))
        in
        let thp_task =
          (* THP with a Cascade-Lake-style split TLB. *)
          Spec.task ~key:(block ^ "/thp-h512") (fun _reg ->
              let warmup, trace = traces mk in
              let t =
                Thp.create
                  { Thp.default_config with
                    ram_pages = ram; base_tlb_entries = 1536;
                    huge_tlb_entries = 16; huge_size = 512 }
              in
              let c = Thp.run ~warmup t trace in
              Json.Obj
                [
                  ("ios", Json.Int c.Thp.ios);
                  ("tlb_misses", Json.Int c.Thp.tlb_misses);
                  ("promotions", Json.Int c.Thp.promotions);
                  ("cost", Json.Float (Thp.cost ~epsilon c));
                  ("fill_ios", Json.Int c.Thp.promotion_fill_ios);
                  ("compaction", Json.Int c.Thp.compaction_evictions);
                ])
        in
        let superpage_task =
          (* Reservation-based superpages (Navarro et al.). *)
          Spec.task ~key:(block ^ "/superpage-h512") (fun _reg ->
              let warmup, trace = traces mk in
              let sp =
                Superpage.create
                  { Superpage.default_config with
                    ram_pages = ram; base_tlb_entries = 1536;
                    huge_tlb_entries = 16; huge_size = 512 }
              in
              let c = Superpage.run ~warmup sp trace in
              Json.Obj
                [
                  ("ios", Json.Int c.Superpage.ios);
                  ("tlb_misses", Json.Int c.Superpage.tlb_misses);
                  ("promotions", Json.Int c.Superpage.promotions);
                  ("cost", Json.Float (Superpage.cost ~epsilon c));
                  ("preemptions", Json.Int c.Superpage.preemptions);
                  ("waste", Json.Int (Superpage.reserved_unused_frames sp));
                ])
        in
        let decoupled =
          Spec.task ~key:(block ^ "/decoupled") (fun _reg ->
              let params = Params.derive ~p:ram ~w:64 () in
              let warmup, trace = traces mk in
              let x = Policy.instantiate (module Lru) ~capacity:1536 () in
              let y =
                Policy.instantiate (module Lru)
                  ~capacity:(Params.usable_pages params) ()
              in
              let z = Simulation.create ~params ~x ~y () in
              let r = Simulation.run ~warmup z trace in
              Json.Obj
                [
                  ("ios", Json.Int r.Simulation.ios);
                  ("tlb_misses", Json.Int r.Simulation.tlb_fills);
                  ("cost", Json.Float (Simulation.cost ~epsilon r));
                ])
        in
        List.map static [ 1; 64; 512 ]
        @ [ thp_task; superpage_task; decoupled ])
      blocks
  in
  let outcomes = run_spec (spec ~name:"thp" tasks) in
  Report.print_table
    ~columns:
      [
        Report.col_int ~width:12 ~field:"ios" "IOs";
        Report.col_int ~width:12 ~field:"tlb_misses" "TLB misses";
        Report.col_int ~width:12 ~field:"promotions" "promotions";
        Report.col_float ~field:"cost" "cost(e=0.01)";
        Report.col_int ~width:10 ~field:"fill_ios" "fill-ios";
        Report.col_int ~width:10 ~field:"preemptions" "preempt";
      ]
    outcomes

(* ------------------------------------------------------------------ *)
(* A10: the full bill — cycles per access through the whole VMM        *)
(* ------------------------------------------------------------------ *)

let vmm () =
  header
    "A10: end-to-end cycles per access (TLB + page walks + swap) through \
     the full VMM";
  let n = scale_down 500_000 in
  let pages = 1 lsl 14 in
  let vmm_task (tlb, ram) =
    Spec.task ~key:(Printf.sprintf "tlb=%d/ram=%d" tlb ram) (fun _reg ->
        let vm =
          Vmm.create
            { Vmm.default_config with ram_pages = ram; tlb_entries = tlb }
        in
        Vmm.mmap vm ~start:0 ~pages;
        let rng = Prng.create ~seed:51 () in
        let zipf = Sampler.zipf ~s:0.9 ~n:pages in
        (* warmup *)
        for _ = 1 to n / 2 do
          Vmm.read vm (zipf rng)
        done;
        Vmm.reset_counters vm;
        for _ = 1 to n do
          if Prng.float rng < 0.1 then Vmm.write vm (zipf rng)
          else Vmm.read vm (zipf rng)
        done;
        let c = Vmm.counters vm in
        Json.Obj
          [
            ( "tlb_miss_pct",
              Json.Float
                (100.0 *. float_of_int c.Vmm.tlb_misses
                /. float_of_int c.Vmm.accesses) );
            ("majors", Json.Int c.Vmm.major_faults);
            ("cyc_per_access", Json.Float (Vmm.average_cycles_per_access vm));
            ( "translation_pct",
              Json.Float (100.0 *. Vmm.translation_fraction vm) );
          ])
  in
  (* The decoupled TLB in the same cycle terms: a TLB miss costs one
     psi-table access plus the constant-time decode, not a 4-level
     radix walk — the paper's constant-time property priced out. *)
  let decoupled_task =
    Spec.task ~key:"decoupled/tlb=512" (fun _reg ->
        let params = Params.derive ~p:(1 lsl 14) ~w:64 () in
        let x = Policy.instantiate (module Lru) ~capacity:512 () in
        let y =
          Policy.instantiate (module Lru)
            ~capacity:(Params.usable_pages params) ()
        in
        let z = Simulation.create ~params ~x ~y () in
        let rng = Prng.create ~seed:51 () in
        let zipf = Sampler.zipf ~s:0.9 ~n:(1 lsl 14) in
        for _ = 1 to n / 2 do
          Simulation.access z (zipf rng)
        done;
        Simulation.reset_report z;
        for _ = 1 to n do
          Simulation.access z (zipf rng)
        done;
        let r = Simulation.report z in
        let memory_latency = Walker.default_config.Walker.memory_latency in
        let decode_cycles = 4 in
        let cycles =
          r.Simulation.accesses
          + (r.Simulation.tlb_fills * (memory_latency + decode_cycles))
        in
        Json.Obj
          [
            ( "tlb_miss_pct",
              Json.Float
                (100.0 *. float_of_int r.Simulation.tlb_fills
                /. float_of_int r.Simulation.accesses) );
            ( "cyc_per_access",
              Json.Float
                (float_of_int cycles /. float_of_int r.Simulation.accesses) );
          ])
  in
  let tasks =
    List.map vmm_task
      [
        (64, 1 lsl 14); (512, 1 lsl 14); (4096, 1 lsl 14);
        (512, 1 lsl 12); (512, 1 lsl 13);
      ]
    @ [ decoupled_task ]
  in
  let outcomes = run_spec (spec ~name:"vmm" tasks) in
  Report.print_table
    ~columns:
      [
        Report.col_float ~decimals:2 ~field:"tlb_miss_pct" "tlb miss%";
        Report.col_int ~field:"majors" "majors";
        Report.col_float ~field:"cyc_per_access" "cyc/access";
        Report.col_float ~width:16 ~field:"translation_pct" "translation %";
      ]
    outcomes

(* ------------------------------------------------------------------ *)
(* A7: per-core TLBs and shootdowns                                    *)
(* ------------------------------------------------------------------ *)

let smp () =
  header "A7: multi-core TLBs — shared vs partitioned working sets";
  let n = scale_down 1_000_000 in
  let rng = Prng.create ~seed:23 () in
  let zipf = Simple.zipf ~s:0.9 ~virtual_pages:(1 lsl 14) rng in
  let warmup = Workload.generate zipf n in
  let trace = Workload.generate zipf n in
  (* Per-core TLB reach at or above RAM capacity, so eviction victims
     are actually cached somewhere and shootdowns have teeth (RAM here
     is the constrained resource). *)
  let cfg cores =
    { Smp.default_config with
      cores;
      ram_pages = 1 lsl 9;
      tlb_entries_per_core = 1536 / cores;
    }
  in
  let smp_data (c : Smp.counters) =
    Json.Obj
      [
        ("tlb", Json.Int c.Smp.tlb_misses);
        ("ios", Json.Int c.Smp.ios);
        ("ipis", Json.Int c.Smp.ipis);
      ]
  in
  let tasks =
    List.concat_map
      (fun cores ->
        [
          Spec.task ~key:(Printf.sprintf "cores=%d/shared" cores) (fun _reg ->
              smp_data (Smp.run_shared ~warmup (Smp.create (cfg cores)) trace));
          Spec.task
            ~key:(Printf.sprintf "cores=%d/partitioned" cores)
            (fun _reg ->
              smp_data
                (Smp.run_partitioned ~warmup (Smp.create (cfg cores)) trace));
          (* Decoupling under per-core TLBs: hardware entries are
             copies, so a residency change to a remotely covered huge
             page costs an update notification — the concurrency price
             of ψ sharing. *)
          Spec.task ~key:(Printf.sprintf "cores=%d/decoupled" cores)
            (fun _reg ->
              let params = Params.derive ~p:(1 lsl 9) ~w:64 () in
              let y =
                Policy.instantiate (module Lru)
                  ~capacity:(Params.usable_pages params) ()
              in
              let t =
                Smp_decoupled.create ~params ~cores
                  ~tlb_entries_per_core:(1536 / cores) ~y ()
              in
              let r = Smp_decoupled.run_shared ~warmup t trace in
              Json.Obj
                [
                  ("tlb", Json.Int r.Smp_decoupled.tlb_fills);
                  ("ios", Json.Int r.Smp_decoupled.ios);
                  ("ipis", Json.Int r.Smp_decoupled.psi_update_ipis);
                  ("decode_misses", Json.Int r.Smp_decoupled.decoding_misses);
                ]);
        ])
      [ 1; 2; 4; 8 ]
  in
  let outcomes = run_spec (spec ~name:"smp" tasks) in
  Report.print_table
    ~columns:
      [
        Report.col_int ~width:12 ~field:"tlb" "TLB events";
        Report.col_int ~width:10 ~field:"ios" "IOs";
        Report.col_int ~width:10 ~field:"ipis" "IPIs";
        Report.col_int ~width:12 ~field:"decode_misses" "decode miss";
      ]
    outcomes

(* ------------------------------------------------------------------ *)
(* A8: miss-ratio curves (how RAM sizes are chosen)                    *)
(* ------------------------------------------------------------------ *)

let mrc () =
  header "A8: single-pass LRU miss-ratio curves (Mattson stack distances)";
  let n = scale_down 1_000_000 in
  let capacities = [ 256; 1024; 4096; 16384; 65536 ] in
  let workloads =
    [
      ( "bimodal",
        fun () ->
          let rng = Prng.create ~seed:31 () in
          Bimodal.create ~hot_fraction:0.999 ~hot_pages:(1 lsl 11)
            ~virtual_pages:(1 lsl 18) rng );
      ( "graph-walk",
        fun () ->
          let rng = Prng.create ~seed:32 () in
          Graph_walk.create ~virtual_pages:(1 lsl 16) rng );
      ( "zipf",
        fun () ->
          let rng = Prng.create ~seed:33 () in
          Simple.zipf ~s:0.9 ~virtual_pages:(1 lsl 17) rng );
    ]
  in
  let tasks =
    List.map
      (fun (wname, mk) ->
        Spec.task ~key:wname (fun _reg ->
            let trace = Workload.generate (mk ()) n in
            let m = Mattson.of_trace trace in
            Json.Obj
              ([
                 ( "ws999",
                   Json.Int (Mattson.working_set_size m ~fraction:0.999) );
                 ("cold", Json.Int (Mattson.cold_misses m));
               ]
              @ List.map
                  (fun c ->
                    (Printf.sprintf "c%d" c, Json.Int (Mattson.misses m c)))
                  capacities)))
      workloads
  in
  let outcomes = run_spec (spec ~name:"mrc" tasks) in
  Report.print_table
    ~columns:
      ([
         Report.col_int ~width:12 ~field:"ws999" "ws(99.9%)";
         Report.col_int ~width:10 ~field:"cold" "cold";
       ]
      @ List.map
          (fun c ->
            Report.col_int ~width:9
              ~field:(Printf.sprintf "c%d" c)
              (Printf.sprintf "c=%d" c))
          capacities)
    outcomes

(* ------------------------------------------------------------------ *)
(* A9: coalesced TLBs — contiguity helps only until fragmentation      *)
(* ------------------------------------------------------------------ *)

let coalesced () =
  header
    "A9: coalesced TLB (CoLT-style) reach under contiguous vs fragmented \
     frame allocation";
  let n = scale_down 500_000 in
  let space = 1 lsl 16 in
  let rng = Prng.create ~seed:41 () in
  let w = Simple.zipf ~s:0.8 ~virtual_pages:space rng in
  let trace = Workload.generate w n in
  (* Two frame layouts: identity (perfect OS contiguity) and a random
     permutation (fully fragmented memory). *)
  let layout lname =
    if String.equal lname "contiguous" then fun v -> Some v
    else begin
      let perm = Array.init space (fun i -> i) in
      Prng.shuffle (Prng.create ~seed:42 ()) perm;
      fun v -> Some perm.(v)
    end
  in
  let tasks =
    List.map
      (fun lname ->
        Spec.task ~key:lname (fun _reg ->
            let pt = layout lname in
            let tlb = Atp_tlb.Coalesced.create ~max_run:8 ~entries:1536 () in
            Array.iter
              (fun v ->
                match Atp_tlb.Coalesced.lookup tlb v with
                | Some _ -> ()
                | None ->
                  let frame = Option.get (pt v) in
                  ignore
                    (Atp_tlb.Coalesced.fill tlb ~lookup_pt:pt ~vpage:v ~frame))
              trace;
            let s = Atp_tlb.Coalesced.stats tlb in
            Json.Obj
              [
                ("lookups", Json.Int s.Atp_tlb.Coalesced.lookups);
                ("misses", Json.Int s.Atp_tlb.Coalesced.misses);
                ( "miss_rate",
                  Json.Float
                    (float_of_int s.Atp_tlb.Coalesced.misses
                    /. float_of_int (max 1 s.Atp_tlb.Coalesced.lookups)) );
                ( "avg_run",
                  Json.Float
                    (float_of_int s.Atp_tlb.Coalesced.coalesced_pages
                    /. float_of_int (max 1 s.Atp_tlb.Coalesced.fills)) );
              ]))
      [ "contiguous"; "fragmented" ]
  in
  let outcomes = run_spec (spec ~name:"coalesced" tasks) in
  Report.print_table
    ~columns:
      [
        Report.col_int ~width:12 ~field:"lookups" "lookups";
        Report.col_int ~width:12 ~field:"misses" "misses";
        Report.col_float ~decimals:4 ~field:"miss_rate" "miss rate";
        Report.col_float ~width:16 ~decimals:2 ~field:"avg_run"
          "avg run length";
      ]
    outcomes;
  Printf.printf
    "(decoupling needs no contiguity at all: its reach is h_max regardless \
     of layout)\n"

(* ------------------------------------------------------------------ *)
(* A11: multiprogramming — ASIDs, flushes, and the L1/L2 hierarchy     *)
(* ------------------------------------------------------------------ *)

let multiprog () =
  header "A11: multiprogramming a shared TLB — ASID tagging vs flush-on-switch";
  let entries = 1536 in
  let quantum = 1_000 in
  let n = scale_down 400_000 in
  let asid_task (procs, ws) =
    Spec.task ~key:(Printf.sprintf "asid/p=%d/ws=%d" procs ws) (fun _reg ->
        let mk_workloads () =
          Array.init procs (fun i ->
              let rng = Prng.create ~seed:(60 + i) () in
              Simple.zipf ~s:0.9 ~virtual_pages:ws rng)
        in
        let run ~flush =
          let t = Atp_tlb.Asid.create ~entries () in
          let workloads = mk_workloads () in
          let switches = n / quantum in
          for s = 0 to switches - 1 do
            let asid = s mod procs in
            if flush then Atp_tlb.Asid.flush_all t;
            let w = workloads.(asid) in
            for _ = 1 to quantum do
              let v = w.Workload.next () in
              match Atp_tlb.Asid.lookup t ~asid v with
              | Some _ -> ()
              | None -> ignore (Atp_tlb.Asid.insert t ~asid v v)
            done
          done;
          (Atp_tlb.Asid.stats t).Atp_tlb.Tlb.misses
        in
        let asid_misses = run ~flush:false in
        let flush_misses = run ~flush:true in
        Json.Obj
          [
            ("asid_misses", Json.Int asid_misses);
            ("flush_misses", Json.Int flush_misses);
            ( "ratio",
              Json.Float
                (float_of_int flush_misses /. float_of_int (max 1 asid_misses))
            );
          ])
  in
  (* The L1/L2 hierarchy's effective latency across locality regimes. *)
  let hier_task (wname, mk) =
    Spec.task ~key:("hier/" ^ wname) (fun _reg ->
        let t = Atp_tlb.Hierarchy.create () in
        let w : Workload.t = mk () in
        for _ = 1 to scale_down 400_000 do
          let v = w.Workload.next () in
          match Atp_tlb.Hierarchy.lookup t v with
          | Some _, _ -> ()
          | None, _ -> Atp_tlb.Hierarchy.insert t v v
        done;
        let miss_pct (s : Atp_tlb.Tlb.stats) =
          100.0 *. float_of_int s.Atp_tlb.Tlb.misses
          /. float_of_int (max 1 s.Atp_tlb.Tlb.lookups)
        in
        Json.Obj
          [
            ("avg_cyc", Json.Float (Atp_tlb.Hierarchy.average_latency t));
            ( "l1_miss_pct",
              Json.Float (miss_pct (Atp_tlb.Hierarchy.l1_stats t)) );
            ( "l2_miss_pct",
              Json.Float (miss_pct (Atp_tlb.Hierarchy.l2_stats t)) );
          ])
  in
  let tasks =
    List.map asid_task [ (1, 512); (2, 512); (4, 512); (8, 512); (4, 2048) ]
    @ List.map hier_task
        [
          ( "zipf",
            fun () ->
              Simple.zipf ~s:0.9 ~virtual_pages:(1 lsl 16)
                (Prng.create ~seed:71 ()) );
          ("stencil", fun () -> Hpc.stencil ~rows:256 ~cols:512 ());
          ( "gups",
            fun () ->
              Hpc.gups ~table_pages:(1 lsl 16) (Prng.create ~seed:72 ()) );
        ]
  in
  let outcomes =
    run_spec (spec ~name:"multiprog" ~params:[ ("entries", Json.Int entries) ] tasks)
  in
  Report.print_table
    ~columns:
      [
        Report.col_int ~field:"asid_misses" "misses (asid)";
        Report.col_int ~field:"flush_misses" "misses (flush)";
        Report.col_float ~width:10 ~decimals:2 ~field:"ratio" "ratio";
      ]
    (List.filter (with_prefix "asid/") outcomes);
  Printf.printf "\nL1/L2 hierarchy average lookup latency (cycles):\n";
  Report.print_table
    ~columns:
      [
        Report.col_float ~width:12 ~decimals:2 ~field:"avg_cyc" "avg cyc";
        Report.col_float ~width:12 ~field:"l1_miss_pct" "l1 miss%";
        Report.col_float ~width:12 ~field:"l2_miss_pct" "l2 miss%";
      ]
    (List.filter (with_prefix "hier/") outcomes)

(* ------------------------------------------------------------------ *)
(* A12: HPC kernels through the Figure 1 sweep (both sides of the      *)
(*      huge-page coin)                                                *)
(* ------------------------------------------------------------------ *)

let hpcfigs () =
  header
    "A12: HPC kernels under the huge-page sweep — dense kernels love huge \
     pages, sparse ones drown in IO";
  let ram = 1 lsl 16 in
  let n = scale_down 1_000_000 in
  let kernels =
    [
      ("stencil", fun () -> Hpc.stencil ~rows:512 ~cols:1024 ());
      ( "multistream",
        fun () -> Hpc.multistream ~streams:8 ~virtual_pages:(1 lsl 17) () );
      ( "gups",
        fun () -> Hpc.gups ~table_pages:(1 lsl 17) (Prng.create ~seed:81 ()) );
      ( "pointer-chase",
        fun () ->
          Hpc.pointer_chase ~working_set:(1 lsl 14) ~virtual_pages:(1 lsl 17)
            (Prng.create ~seed:82 ()) );
    ]
  in
  let tasks =
    List.concat_map
      (fun (kname, mk) ->
        (* One fixed (warmup, measured) trace pair per kernel, shared
           read-only across its h tasks. *)
        let w = mk () in
        let warmup = Workload.generate w n in
        let trace = Workload.generate w n in
        List.map
          (fun h ->
            Spec.task ~key:(Printf.sprintf "%s/h=%d" kname h) (fun _reg ->
                let m =
                  Machine.create
                    { Machine.default_config with
                      ram_pages = ram; tlb_entries = 256; huge_size = h }
                in
                machine_data (Machine.run ~warmup m trace)))
          [ 1; 16; 256 ])
      kernels
  in
  let outcomes =
    run_spec (spec ~name:"hpcfigs" ~params:[ ("ram", Json.Int ram) ] tasks)
  in
  Report.print_table ~columns:cost_columns outcomes

(* ------------------------------------------------------------------ *)
(* A14: iceberg hashing as a dictionary; translation prefetching       *)
(* ------------------------------------------------------------------ *)

let iceberg () =
  header
    "A14: Iceberg hashing as a dictionary (probe costs, front-yard \
     residency) and TEMPO-style prefetch";
  let open Atp_ballsbins in
  let capacity = 1 lsl 16 in
  let load_task load =
    Spec.task ~key:(Printf.sprintf "load=%.2f" load) (fun _reg ->
        let t = Iceberg_table.create ~capacity () in
        let n = int_of_float (float_of_int capacity *. load) in
        for k = 0 to n - 1 do
          Iceberg_table.insert t k k
        done;
        Iceberg_table.reset_stats t;
        let rng = Prng.create ~seed:101 () in
        let lookups = scale_down 400_000 in
        let t0 = Atp_exp.Runner.wall_clock () in
        for _ = 1 to lookups do
          ignore (Iceberg_table.find t (Prng.int rng n))
        done;
        let iceberg_time = Atp_exp.Runner.wall_clock () -. t0 in
        let reference = Hashtbl.create capacity in
        for k = 0 to n - 1 do
          Hashtbl.replace reference k k
        done;
        let rng = Prng.create ~seed:101 () in
        let t0 = Atp_exp.Runner.wall_clock () in
        for _ = 1 to lookups do
          ignore (Hashtbl.find_opt reference (Prng.int rng n))
        done;
        let hashtbl_time = Atp_exp.Runner.wall_clock () -. t0 in
        let s = Iceberg_table.stats t in
        Json.Obj
          [
            ( "avg_probes",
              Json.Float
                (float_of_int s.Iceberg_table.slots_probed
                /. float_of_int (max 1 s.Iceberg_table.lookups)) );
            ( "front_frac",
              Json.Float (Iceberg_table.front_yard_fraction t) );
            ("spill", Json.Int (Iceberg_table.overflow_count t));
            ( "vs_hashtbl",
              Json.Float (iceberg_time /. Float.max 1e-9 hashtbl_time) );
          ])
  in
  (* Prefetch: the optimization whose payoff huge pages erode (§7). *)
  let pt v = if v >= 0 then Some v else None in
  let n = scale_down 400_000 in
  let prefetch_task (wname, mk) =
    Spec.task ~key:("prefetch/" ^ wname) (fun _reg ->
        let run degree =
          let t =
            Atp_tlb.Prefetch.create ~degree ~entries:64 ~translate:pt ()
          in
          let w : Workload.t = mk () in
          for _ = 1 to n do
            ignore (Atp_tlb.Prefetch.lookup t (w.Workload.next ()))
          done;
          t
        in
        let off = run 0 and on_ = run 2 in
        Json.Obj
          [
            ( "misses_off",
              Json.Int
                (Atp_tlb.Prefetch.stats off).Atp_tlb.Prefetch.demand_misses );
            ( "misses_on",
              Json.Int
                (Atp_tlb.Prefetch.stats on_).Atp_tlb.Prefetch.demand_misses );
            ("accuracy", Json.Float (Atp_tlb.Prefetch.accuracy on_));
          ])
  in
  let tasks =
    List.map load_task [ 0.25; 0.5; 0.75; 0.9; 1.0 ]
    @ List.map prefetch_task
        [
          ( "sequential",
            fun () -> Simple.sequential ~virtual_pages:(1 lsl 14) () );
          ("stencil", fun () -> Hpc.stencil ~rows:128 ~cols:512 ());
          ( "gups",
            fun () ->
              Hpc.gups ~table_pages:(1 lsl 14) (Prng.create ~seed:103 ()) );
        ]
  in
  let outcomes =
    run_spec (spec ~name:"iceberg" ~params:[ ("capacity", Json.Int capacity) ] tasks)
  in
  Report.print_table
    ~columns:
      [
        Report.col_float ~decimals:2 ~field:"avg_probes" "avg probes";
        Report.col_float ~decimals:3 ~field:"front_frac" "front frac";
        Report.col_int ~field:"spill" "spill";
        Report.col_float ~width:12 ~decimals:2 ~field:"vs_hashtbl" "vs Hashtbl";
      ]
    (List.filter (with_prefix "load=") outcomes);
  Printf.printf "\nTEMPO-style next-page prefetch (64-entry TLB, degree 2):\n";
  Report.print_table
    ~columns:
      [
        Report.col_int ~field:"misses_off" "misses (off)";
        Report.col_int ~field:"misses_on" "misses (on)";
        Report.col_float ~width:12 ~decimals:3 ~field:"accuracy" "accuracy";
      ]
    (List.filter (with_prefix "prefetch/") outcomes)

(* ------------------------------------------------------------------ *)
(* B1: microbenchmarks (Bechamel)                                      *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "B1: microbenchmarks (ns per operation, OLS fit)";
  let task =
    Spec.task ~key:"bechamel" (fun _reg ->
        let open Bechamel in
        let open Toolkit in
        (* One Test.make per core operation and per figure pipeline
           step. *)
        let lru_test =
          let inst = Policy.instantiate (module Lru) ~capacity:4096 () in
          let rng = Prng.create ~seed:1 () in
          Test.make ~name:"lru-access"
            (Staged.stage (fun () ->
                 ignore (inst.Policy.access (Prng.int rng 16_384))))
        in
        let tlb_test =
          let tlb = Atp_tlb.Tlb.create ~entries:1536 () in
          let rng = Prng.create ~seed:2 () in
          Test.make ~name:"tlb-lookup+fill"
            (Staged.stage (fun () ->
                 let u = Prng.int rng 8192 in
                 match Atp_tlb.Tlb.lookup tlb u with
                 | Some _ -> ()
                 | None -> ignore (Atp_tlb.Tlb.insert tlb u u)))
        in
        let alloc_test =
          let params = Params.derive ~p:(1 lsl 16) ~w:64 () in
          let a = Alloc.create params in
          let budget = Params.usable_pages params in
          let rng = Prng.create ~seed:3 () in
          Test.make ~name:"iceberg-churn"
            (Staged.stage (fun () ->
                 let page = Prng.int rng (1 lsl 18) in
                 if Alloc.mem a page then Alloc.delete a page
                 else if Alloc.live a < budget then ignore (Alloc.insert a page)))
        in
        let decode_test =
          let params = Params.derive ~p:(1 lsl 16) ~w:64 () in
          let a = Alloc.create params in
          let e = Encoding.create a in
          let value = Encoding.empty_value e in
          for i = 0 to Encoding.h_max e - 1 do
            ignore (Alloc.insert a i);
            Encoding.refresh_page e value i
          done;
          let rng = Prng.create ~seed:4 () in
          Test.make ~name:"tlb-decode-f"
            (Staged.stage (fun () ->
                 ignore
                   (Encoding.decode e (Prng.int rng (Encoding.h_max e)) value)))
        in
        let machine_test =
          let m =
            Machine.create
              { Machine.default_config with
                ram_pages = 1 lsl 14; tlb_entries = 512; huge_size = 8 }
          in
          let rng = Prng.create ~seed:5 () in
          Test.make ~name:"machine-access(fig1-step)"
            (Staged.stage (fun () -> Machine.access m (Prng.int rng (1 lsl 16))))
        in
        let sim_test =
          let params = Params.derive ~p:(1 lsl 14) ~w:64 () in
          let x = Policy.instantiate (module Lru) ~capacity:512 () in
          let y =
            Policy.instantiate (module Lru)
              ~capacity:(Params.usable_pages params) ()
          in
          let z = Simulation.create ~params ~x ~y () in
          let rng = Prng.create ~seed:6 () in
          Test.make ~name:"simulation-access(Z-step)"
            (Staged.stage (fun () ->
                 Simulation.access z (Prng.int rng (1 lsl 16))))
        in
        let tests =
          [ lru_test; tlb_test; alloc_test; decode_test; machine_test; sim_test ]
        in
        let grouped = Test.make_grouped ~name:"atp" tests in
        let ols =
          Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
        in
        let instances = Instance.[ monotonic_clock ] in
        let cfg =
          Benchmark.cfg ~limit:2000
            ~quota:(Time.second (if quick then 0.25 else 0.5))
            ~kde:(Some 1000) ()
        in
        let raw = Benchmark.all cfg instances grouped in
        let results = List.map (fun i -> Analyze.all ols i raw) instances in
        let merged = Analyze.merge ols instances results in
        let rows = ref [] in
        Hashtbl.iter
          (fun measure per_test ->
            if String.equal measure (Measure.label Instance.monotonic_clock)
            then
              Hashtbl.iter
                (fun name ols_result ->
                  match Analyze.OLS.estimates ols_result with
                  | Some [ est ] -> rows := (name, Json.Float est) :: !rows
                  | _ -> rows := (name, Json.Null) :: !rows)
                per_test)
          merged;
        Json.Obj
          (List.sort (fun (a, _) (b, _) -> String.compare a b) !rows))
  in
  let outcomes = run_spec (spec ~name:"micro" [ task ]) in
  List.iter
    (fun o ->
      match Outcome.data o with
      | Some (Json.Obj fields) ->
        List.iter
          (fun (name, v) ->
            match Json.as_float v with
            | Some est -> Printf.printf "%-36s %12.1f ns/op\n" name est
            | None -> Printf.printf "%-36s %12s\n" name "n/a")
          fields
      | Some _ -> ()
      | None ->
        Printf.printf "bechamel FAILED: %s\n"
          (match Outcome.error o with Some (e, _) -> e | None -> "unknown"))
    outcomes

(* ------------------------------------------------------------------ *)
(* core: generic vs fused hot path                                     *)
(* ------------------------------------------------------------------ *)

(* Paired microbenchmarks for the allocation-free replay core: each
   generic/fused pair exercises the same state shape with the same key
   stream, so the delta is exactly the boxing + dispatch the fused
   path removes.  The committed BENCH_core.json baseline records the
   pairs; tools/bench_compare diffs a fresh --quick run against it. *)
let core () =
  header "B2: core hot path, generic vs fused (ns per operation, OLS fit)";
  let task =
    Spec.task ~key:"bechamel" (fun _reg ->
        let open Bechamel in
        let open Toolkit in
        let policy_boxed =
          let inst = Policy.instantiate (module Lru) ~capacity:4096 () in
          let rng = Prng.create ~seed:21 () in
          Test.make ~name:"policy-access-boxed"
            (Staged.stage (fun () ->
                 ignore (inst.Policy.access (Prng.int rng 16_384))))
        in
        let policy_fast =
          let t = Lru.create ~capacity:4096 () in
          let rng = Prng.create ~seed:21 () in
          Test.make ~name:"policy-access-fast"
            (Staged.stage (fun () ->
                 ignore (Lru.access_fast t (Prng.int rng 16_384) : int)))
        in
        let sim_params = Params.derive ~p:(1 lsl 14) ~w:64 () in
        let sim_generic =
          let x = Policy.instantiate (module Lru) ~capacity:512 () in
          let y =
            Policy.instantiate (module Lru)
              ~capacity:(Params.usable_pages sim_params) ()
          in
          let z = Simulation.create ~seed:7 ~params:sim_params ~x ~y () in
          let rng = Prng.create ~seed:22 () in
          Test.make ~name:"sim-access-generic"
            (Staged.stage (fun () ->
                 Simulation.access z (Prng.int rng (1 lsl 16))))
        in
        let sim_fused =
          let module F = Sim_fused.Make (Lru) (Lru) in
          let x = Lru.create ~capacity:512 () in
          let y = Lru.create ~capacity:(Params.usable_pages sim_params) () in
          let z = F.create ~seed:7 ~params:sim_params ~x ~y () in
          let rng = Prng.create ~seed:22 () in
          Test.make ~name:"sim-access-fused"
            (Staged.stage (fun () -> F.access z (Prng.int rng (1 lsl 16))))
        in
        let batch_len = 256 in
        let tlb_scalar =
          let h = Atp_tlb.Hierarchy.create () in
          let rng = Prng.create ~seed:23 () in
          Test.make ~name:"tlb-hierarchy-lookup"
            (Staged.stage (fun () ->
                 let key = Prng.int rng 8192 in
                 match Atp_tlb.Hierarchy.lookup h key with
                 | Some _, _ -> ()
                 | None, _ -> Atp_tlb.Hierarchy.insert h key key))
        in
        let tlb_batch =
          let h = Atp_tlb.Hierarchy.create () in
          let rng = Prng.create ~seed:23 () in
          let chunk =
            Bigarray.Array1.create Bigarray.int Bigarray.c_layout batch_len
          in
          Test.make ~name:(Printf.sprintf "tlb-hierarchy-batch(%d)" batch_len)
            (Staged.stage (fun () ->
                 for i = 0 to batch_len - 1 do
                   Bigarray.Array1.unsafe_set chunk i (Prng.int rng 8192)
                 done;
                 let r =
                   Atp_tlb.Hierarchy.lookup_batch h
                     ~on_miss:(fun key -> Atp_tlb.Hierarchy.insert h key key)
                     chunk 0 batch_len
                 in
                 ignore (r.Atp_tlb.Hierarchy.batch_cycles : int)))
        in
        let tests =
          [
            policy_boxed; policy_fast; sim_generic; sim_fused; tlb_scalar;
            tlb_batch;
          ]
        in
        let grouped = Test.make_grouped ~name:"core" tests in
        let ols =
          Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
        in
        let instances = Instance.[ monotonic_clock ] in
        let cfg =
          Benchmark.cfg ~limit:2000
            ~quota:(Time.second (if quick then 0.25 else 0.5))
            ~kde:(Some 1000) ()
        in
        let raw = Benchmark.all cfg instances grouped in
        let results = List.map (fun i -> Analyze.all ols i raw) instances in
        let merged = Analyze.merge ols instances results in
        let rows = ref [] in
        Hashtbl.iter
          (fun measure per_test ->
            if String.equal measure (Measure.label Instance.monotonic_clock)
            then
              Hashtbl.iter
                (fun name ols_result ->
                  match Analyze.OLS.estimates ols_result with
                  | Some [ est ] -> rows := (name, Json.Float est) :: !rows
                  | _ -> rows := (name, Json.Null) :: !rows)
                per_test)
          merged;
        Json.Obj
          (List.sort (fun (a, _) (b, _) -> String.compare a b) !rows))
  in
  let outcomes = run_spec (spec ~name:"core" [ task ]) in
  List.iter
    (fun o ->
      match Outcome.data o with
      | Some (Json.Obj fields) ->
        List.iter
          (fun (name, v) ->
            match Json.as_float v with
            | Some est -> Printf.printf "%-36s %12.1f ns/op\n" name est
            | None -> Printf.printf "%-36s %12s\n" name "n/a")
          fields
      | Some _ -> ()
      | None ->
        Printf.printf "bechamel FAILED: %s\n"
          (match Outcome.error o with Some (e, _) -> e | None -> "unknown"))
    outcomes;
  Printf.printf
    "\nthe batch row is ns per %d-key block; divide by the block length \
     before comparing with the scalar row.\n"
    256

(* ------------------------------------------------------------------ *)
(* engine: sharded streaming replay vs exact sequential replay         *)
(* ------------------------------------------------------------------ *)

(* The scaling experiment behind atp.engine: pack a Kronecker BFS
   trace into the streamed format, replay it once sequentially for
   ground truth, then replay it sharded at increasing shard counts.
   Rows carry the totals, the relative cost error versus sequential
   (the documented bound), and the wall-clock speedup; CI validates
   the stream with tools/bench_validate and keeps it as an artifact. *)
let engine_exp () =
  header "engine: sharded streaming replay vs exact sequential replay";
  let module Engine = Atp_engine.Engine in
  let n = scale_down 2_000_000 in
  let epoch_len = max 1 (n / 16) in
  (* The workload footprint must exceed the cache capacities below so
     the replay has steady-state miss traffic and a warm-up window one
     epoch long can fill both caches (the adequacy condition from
     lib/engine/engine.mli); otherwise the relative error is dominated
     by cold-cache re-faulting of a tiny baseline.  This is the regime
     test/test_engine.ml measures the documented bound under. *)
  let virtual_pages = 1 lsl 16 in
  let path = Filename.temp_file "atp_bench_engine" ".atps" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let wl = Simple.zipf ~virtual_pages (Prng.create ~seed:31 ()) in
      Trace.Stream.with_writer path (fun w ->
          for _ = 1 to n do
            Trace.Stream.push w (wl.Workload.next ())
          done);
      let ram = 1 lsl 11 in
      let params = Params.derive ~p:ram ~w:64 () in
      let make_sim () =
        let x =
          Policy.instantiate (module Lru)
            ~rng:(Prng.create ~seed:11 ())
            ~capacity:64 ()
        in
        let y =
          Policy.instantiate (module Lru)
            ~rng:(Prng.create ~seed:13 ())
            ~capacity:256 ()
        in
        Simulation.create ~seed:7 ~params ~x ~y ()
      in
      let seq_t0 = Atp_exp.Runner.wall_clock () in
      let baseline =
        Engine.replay_sequential ~make_sim (Trace.Stream.source path)
      in
      let seq_wall = Atp_exp.Runner.wall_clock () -. seq_t0 in
      let base_cost = Engine.cost ~epsilon baseline in
      let row (t : Engine.totals) ~wall =
        let cost = Engine.cost ~epsilon t in
        let rel_err =
          if base_cost = 0. then 0. else abs_float (cost -. base_cost) /. base_cost
        in
        Json.Obj
          [
            ("ios", Json.Int t.Engine.ios);
            ("tlb_misses", Json.Int t.Engine.tlb_fills);
            ("decoding_misses", Json.Int t.Engine.decoding_misses);
            ("cost", Json.Float cost);
            ("rel_err", Json.Float rel_err);
            ("epochs", Json.Int t.Engine.epochs);
            ("warmup_discarded", Json.Int t.Engine.warmup_replayed);
            ("wall", Json.Float wall);
            ("refs_per_sec",
             Json.Float (if wall > 0. then float_of_int n /. wall else 0.));
            (* Wall-clock ratio against the generic sequential replay
               of the same stream: machine-portable, unlike ns/op, so
               the CI regression gate compares this field. *)
            ("speedup", Json.Float (if wall > 0. then seq_wall /. wall else 0.));
          ]
      in
      let seq_task =
        Spec.task ~key:"sequential" (fun _reg -> row baseline ~wall:seq_wall)
      in
      let make_fused () =
        match
          Sim_fused.specialized ~seed:7 ~params ~x_name:"lru" ~x_capacity:64
            ~x_rng:(Prng.create ~seed:11 ())
            ~y_name:"lru" ~y_capacity:256
            ~y_rng:(Prng.create ~seed:13 ())
            ()
        with
        | Some f -> f
        | None -> assert false
      in
      let fused_stream_task =
        Spec.task ~key:"fused-stream" (fun _reg ->
            let t0 = Atp_exp.Runner.wall_clock () in
            let totals = Engine.replay_stream_fused ~make_fused path in
            let wall = Atp_exp.Runner.wall_clock () -. t0 in
            (* The fused path must be bit-identical to the generic
               sequential replay, not merely within the error bound. *)
            if totals <> baseline then
              failwith "fused-stream totals differ from sequential replay";
            row totals ~wall)
      in
      let fused_sharded_task shards =
        Spec.task ~key:(Printf.sprintf "fused-shards=%d" shards) (fun reg ->
            let t0 = Atp_exp.Runner.wall_clock () in
            let totals =
              Engine.replay_fused
                ~obs:(Obs.Scope.v ~prefix:"engine" reg)
                ~clock:Atp_exp.Runner.wall_clock
                ~config:
                  { Engine.shards; epoch_len; warmup = epoch_len; domains = None }
                ~make_fused
                (Engine.block_source_of_stream path)
            in
            row totals ~wall:(Atp_exp.Runner.wall_clock () -. t0))
      in
      let sharded_task shards =
        Spec.task ~key:(Printf.sprintf "shards=%d" shards) (fun reg ->
            let t0 = Atp_exp.Runner.wall_clock () in
            let totals =
              Engine.replay
                ~obs:(Obs.Scope.v ~prefix:"engine" reg)
                ~clock:Atp_exp.Runner.wall_clock
                ~config:
                  { Engine.shards; epoch_len; warmup = epoch_len; domains = None }
                ~make_sim
                (Trace.Stream.source path)
            in
            row totals ~wall:(Atp_exp.Runner.wall_clock () -. t0))
      in
      let outcomes =
        run_spec
          (spec ~name:"engine"
             ~params:
               [
                 ("n", Json.Int n);
                 ("epoch_len", Json.Int epoch_len);
                 ("virtual_pages", Json.Int virtual_pages);
                 ("ram", Json.Int ram);
                 ("error_bound", Json.Float Engine.documented_error_bound);
               ]
             ((seq_task :: fused_stream_task
               :: List.map sharded_task [ 1; 2; 4; 8 ])
             @ List.map fused_sharded_task [ 1; 4 ]))
      in
      Report.print_table
        ~columns:
          [
            Report.col_int ~field:"ios" "IOs";
            Report.col_int ~field:"tlb_misses" "TLB misses";
            Report.col_float ~decimals:1 ~field:"cost" "cost(e=0.01)";
            Report.col_float ~decimals:4 ~field:"rel_err" "rel err";
            Report.col_int ~field:"epochs" "epochs";
            Report.col_float ~decimals:2 ~field:"wall" "wall (s)";
            Report.col_float ~decimals:2 ~field:"speedup" "speedup";
          ]
        outcomes;
      Printf.printf
        "\nsharded totals must stay within %.0f%% of sequential cost \
         (documented bound; exact when warm-up covers each epoch prefix).\n"
        (100. *. Engine.documented_error_bound))

(* ------------------------------------------------------------------ *)
(* B5: cache-backed translation reach (Victima) vs decoupling          *)
(* ------------------------------------------------------------------ *)

(* Victima's observation restated in the paper's cost model: parking
   TLB-evicted translations in the cache hierarchy re-prices some
   ε-misses at tcache_ε < ε without touching placement, whereas
   decoupling attacks the same ε·misses term by shrinking the miss
   count.  A recovered miss is priced the way atsim's --tcache-latency
   conversion does: one cache probe against a full radix walk. *)
let reach () =
  header
    "B5: cache-backed translation reach (Victima-style victim store) vs \
     decoupling";
  let tlb_entries = 512 in
  let tcache_entries = 4096 in
  let tcache_latency = Walker.default_config.Walker.tcache_latency in
  let tcache_epsilon =
    epsilon *. float_of_int tcache_latency
    /. float_of_int
         (Page_table.levels * Walker.default_config.Walker.memory_latency)
  in
  let warmup_n = scale_down 400_000 and measure_n = scale_down 400_000 in
  let workloads =
    [
      ( "bimodal",
        1 lsl 16,
        fun seed ->
          let rng = Prng.create ~seed () in
          Bimodal.create ~hot_fraction:0.999 ~hot_pages:(1 lsl 11)
            ~virtual_pages:(1 lsl 18) rng );
      ( "graph-walk",
        1 lsl 15,
        fun seed ->
          let rng = Prng.create ~seed () in
          Graph_walk.create ~virtual_pages:(1 lsl 16) rng );
      ( "zipf",
        1 lsl 15,
        fun seed ->
          let rng = Prng.create ~seed () in
          Simple.zipf ~s:0.9 ~virtual_pages:(1 lsl 17) rng );
    ]
  in
  let scheme_task ~wname ~mk ~key scheme_of =
    Spec.task ~key:(wname ^ "/" ^ key) (fun _reg ->
        let w = mk 1 in
        let warmup = Workload.generate w warmup_n in
        let trace = Workload.generate w measure_n in
        let s = Scheme.run ~warmup (scheme_of ()) trace in
        Json.Obj
          [
            ("ios", Json.Int (s.Scheme.ios ()));
            ("tlb_events", Json.Int (s.Scheme.tlb_events ()));
            ("cheap_events", Json.Int (s.Scheme.cheap_events ()));
            ("cost", Json.Float (Scheme.cost ~tcache_epsilon ~epsilon s));
          ])
  in
  let workload_tasks =
    List.concat_map
      (fun (wname, ram, mk) ->
        [
          scheme_task ~wname ~mk ~key:"physical" (fun () ->
              Scheme.physical ~tlb_entries ~ram_pages:ram ~huge_size:1 ());
          scheme_task ~wname ~mk ~key:"reach" (fun () ->
              Scheme.physical_reach ~tlb_entries ~ram_pages:ram ~huge_size:1
                ~tcache_entries ());
          (* An upper bound for reach extension: what if every victim-
             store entry were a real (free) TLB entry instead?  The gap
             between this row and "reach" is the tcache_ε the store
             still charges. *)
          scheme_task ~wname ~mk ~key:"bigtlb" (fun () ->
              Scheme.physical
                ~tlb_entries:(tlb_entries + tcache_entries)
                ~ram_pages:ram ~huge_size:1 ());
          scheme_task ~wname ~mk ~key:"decoupled" (fun () ->
              Scheme.decoupled ~tlb_entries ~ram_pages:ram ~w:64 ());
        ])
      workloads
  in
  (* The same decoupling-vs-reach question on shared-RAM multicore.
     The per-core TLB must be the constrained resource here: when RAM
     is, shootdowns clear dead entries out of every TLB before LRU can
     evict a live one, the victim store never fills, and the tier is
     inert.  With small TLBs over a mostly-resident working set, live
     victims stream through the shared store — and shootdowns must
     reach into it, so its hits survive only as long as the mapping
     does. *)
  let smp_tasks =
    let cores = 4 in
    List.map
      (fun (key, tc) ->
        Spec.task ~key:("smp4/" ^ key) (fun _reg ->
            let rng = Prng.create ~seed:23 () in
            let zipf = Simple.zipf ~s:0.9 ~virtual_pages:(1 lsl 14) rng in
            let warmup = Workload.generate zipf warmup_n in
            let trace = Workload.generate zipf measure_n in
            let cfg =
              { Smp.default_config with
                cores;
                ram_pages = 1 lsl 12;
                tlb_entries_per_core = 96;
                tcache_entries = tc;
                tcache_epsilon;
              }
            in
            let c = Smp.run_shared ~warmup (Smp.create cfg) trace in
            Json.Obj
              [
                ("ios", Json.Int c.Smp.ios);
                ("tlb_events", Json.Int (c.Smp.tlb_misses - c.Smp.tcache_hits));
                ("cheap_events", Json.Int c.Smp.tcache_hits);
                ("ipis", Json.Int c.Smp.ipis);
                ("shootdowns", Json.Int c.Smp.shootdown_events);
                ("cost", Json.Float (Smp.cost cfg c));
              ]))
      [ ("base", 0); ("reach", tcache_entries) ]
  in
  let outcomes =
    run_spec
      (spec ~name:"reach"
         ~params:
           [
             ("tlb_entries", Json.Int tlb_entries);
             ("tcache_entries", Json.Int tcache_entries);
             ("tcache_latency", Json.Int tcache_latency);
             ("tcache_epsilon", Json.Float tcache_epsilon);
           ]
         (workload_tasks @ smp_tasks))
  in
  Report.print_table
    ~columns:
      [
        Report.col_int ~field:"ios" "IOs";
        Report.col_int ~width:12 ~field:"tlb_events" "full misses";
        Report.col_int ~width:12 ~field:"cheap_events" "recovered";
        Report.col_int ~width:8 ~field:"ipis" "IPIs";
        Report.col_int ~width:11 ~field:"shootdowns" "shootdowns";
        Report.col_float ~decimals:1 ~field:"cost" "cost(e=0.01)";
      ]
    outcomes;
  Printf.printf
    "\nrecovered misses are billed at tcache_e = %.5f (one %d-cycle cache \
     probe vs a %d-cycle radix walk); `bigtlb` is the free-reach upper \
     bound.\n"
    tcache_epsilon tcache_latency
    (Page_table.levels * Walker.default_config.Walker.memory_latency)

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* B6: fleet — noisy neighbors, QoS, and tenant-sharded replay         *)
(* ------------------------------------------------------------------ *)

(* The multi-tenant churn experiment: one fleet of short-lived address
   spaces with two immortal heavy tenants (the noisy neighbors),
   replayed three ways — on shared translation hardware (global LRU:
   the neighbors evict everyone), on reserved per-tenant slices of the
   same hardware, and tenant-partitioned on the engine at increasing
   shard counts.  Rows carry the per-tenant per-access cost
   distribution (p50/p99/mean/Jain); the sharded rows are asserted
   byte-identical to the 1-shard replay before reporting, and CI gates
   the reserved row's p99 at 5%. *)
let fleet_exp () =
  header "fleet: noisy neighbors, QoS policies, tenant-sharded replay";
  let module Engine = Atp_engine.Engine in
  let module Lifecycle = Atp_fleet.Lifecycle in
  let module Contended = Atp_fleet.Contended in
  let module Fleet = Atp_fleet.Fleet in
  let ticks = scale_down 4_000 in
  let cfg =
    {
      Lifecycle.seed = 42;
      ticks;
      arrival_rate = 0.5;
      mean_lifetime = 150.0;
      accesses_per_tick = 64;
      max_active = 128;
      initial = 16;
      pinned = 2;
      pinned_weight = 16.0;
    }
  in
  let vpages = 1024 in
  let spec_of name =
    Mix.spec ~name ~weights:[| 0.7; 0.3 |]
      [|
        (fun rng -> Simple.zipf ~virtual_pages:vpages rng);
        (fun rng -> Simple.uniform ~virtual_pages:vpages rng);
      |]
  in
  let mix = spec_of "fleet-mix" in
  let machine =
    {
      Contended.tlb_entries = 64;
      ram_frames = 2_048;
      asid_bits = 8;
      page_bits = 20;
      epsilon;
    }
  in
  let fair_row (f : Fleet.fairness) ~extra ~wall =
    Json.Obj
      ([
         ("tenants", Json.Int f.Fleet.tenants);
         ("mean", Json.Float f.Fleet.mean);
         ("p50", Json.Float f.Fleet.p50);
         ("p99", Json.Float f.Fleet.p99);
         ("max", Json.Float f.Fleet.max_cost);
         ("jain", Json.Float f.Fleet.jain);
       ]
      @ extra
      @ [ ("wall", Json.Float wall) ])
  in
  let contended_task ~key ~cfg qos =
    Spec.task ~key (fun reg ->
        let t0 = Atp_exp.Runner.wall_clock () in
        let r =
          Contended.run
            ~obs:(Obs.Scope.v ~prefix:"fleet" reg)
            machine qos
            (Lifecycle.source cfg ~spec:mix)
        in
        let wall = Atp_exp.Runner.wall_clock () -. t0 in
        if r.Contended.leaks <> 0 then
          failwith "asid recycling leaked a stale translation";
        fair_row
          (Fleet.of_stats ~epsilon r.Contended.stats)
          ~extra:
            [
              ("rollovers", Json.Int r.Contended.rollovers);
              ("peak_active", Json.Int r.Contended.peak_active);
            ]
          ~wall)
  in
  let reserved =
    Contended.Reserved
      {
        tlb_entries = max 1 (machine.Contended.tlb_entries / cfg.Lifecycle.max_active);
        ram_frames = max 1 (machine.Contended.ram_frames / cfg.Lifecycle.max_active);
      }
  in
  (* Tenant-partitioned engine replay: per-tenant full simulators.
     The 1-shard reports are ground truth; every other shard count
     must reproduce them byte-for-byte before its row is written. *)
  let make_sim tenant =
    let params = Params.derive ~p:2_048 ~w:64 () in
    let x =
      Policy.instantiate (module Lru)
        ~rng:(Prng.create ~seed:(11 + tenant) ())
        ~capacity:16 ()
    in
    let y =
      Policy.instantiate (module Lru)
        ~rng:(Prng.create ~seed:(13 + tenant) ())
        ~capacity:64 ()
    in
    Simulation.create ~seed:(7 + tenant) ~params ~x ~y ()
  in
  let part_t0 = Atp_exp.Runner.wall_clock () in
  let baseline =
    Engine.replay_tenants ~shards:1 ~make_sim (fun () ->
        Lifecycle.source cfg ~spec:mix)
  in
  let part_wall = Atp_exp.Runner.wall_clock () -. part_t0 in
  let partitioned_task shards =
    Spec.task ~key:(Printf.sprintf "partitioned/shards=%d" shards) (fun reg ->
        let t0 = Atp_exp.Runner.wall_clock () in
        let reports =
          Engine.replay_tenants
            ~obs:(Obs.Scope.v ~prefix:"fleet" reg)
            ~shards ~make_sim
            (fun () -> Lifecycle.source cfg ~spec:mix)
        in
        let wall = Atp_exp.Runner.wall_clock () -. t0 in
        if reports <> baseline then
          failwith "tenant-sharded reports differ from 1-shard replay";
        fair_row
          (Fleet.of_reports ~epsilon reports)
          ~extra:
            [
              ( "speedup",
                Json.Float (if wall > 0. then part_wall /. wall else 0.) );
            ]
          ~wall)
  in
  let quiet_cfg = { cfg with Lifecycle.pinned = 0 } in
  let outcomes =
    run_spec
      (spec ~name:"fleet"
         ~params:
           [
             ("ticks", Json.Int ticks);
             ("max_active", Json.Int cfg.Lifecycle.max_active);
             ("pinned", Json.Int cfg.Lifecycle.pinned);
             ("pinned_weight", Json.Float cfg.Lifecycle.pinned_weight);
             ("vpages", Json.Int vpages);
             ("tlb_entries", Json.Int machine.Contended.tlb_entries);
             ("ram_frames", Json.Int machine.Contended.ram_frames);
           ]
         ([
            contended_task ~key:"shared" ~cfg Contended.Shared;
            contended_task ~key:"shared/quiet" ~cfg:quiet_cfg Contended.Shared;
            contended_task ~key:"reserved" ~cfg reserved;
          ]
         @ List.map partitioned_task [ 1; 2; 4; 8 ]))
  in
  Report.print_table
    ~columns:
      [
        Report.col_int ~field:"tenants" "tenants";
        Report.col_float ~decimals:4 ~field:"p50" "p50 cost";
        Report.col_float ~decimals:4 ~field:"p99" "p99 cost";
        Report.col_float ~decimals:4 ~field:"mean" "mean";
        Report.col_float ~decimals:4 ~field:"jain" "Jain";
        Report.col_float ~decimals:2 ~field:"wall" "wall (s)";
      ]
    outcomes;
  print_string
    "\nshared vs reserved is the QoS contrast (same hardware budget); \
     partitioned rows\nare asserted byte-identical across shard counts \
     before they are written.\n"

let experiments =
  [
    ("fig1a", fig1a);
    ("fig1b", fig1b);
    ("fig1c", fig1c);
    ("decoupling", decoupling);
    ("ballsbins", ballsbins);
    ("failures", failures);
    ("hybrid", hybrid);
    ("eps", eps);
    ("vmm", vmm);
    ("thp", thp);
    ("smp", smp);
    ("mrc", mrc);
    ("coalesced", coalesced);
    ("multiprog", multiprog);
    ("hpcfigs", hpcfigs);
    ("competitive", competitive);
    ("iceberg", iceberg);
    ("engine", engine_exp);
    ("fleet", fleet_exp);
    ("micro", micro);
    ("core", core);
    ("reach", reach);
  ]

let () =
  let to_run =
    if !requested = [] then experiments
    else
      List.map
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> (name, f)
          | None ->
            Printf.eprintf "unknown experiment %S; known: %s\n" name
              (String.concat ", " (List.map fst experiments));
            exit 2)
        !requested
  in
  Printf.printf "atp benchmark harness%s\n" (if quick then " (quick mode)" else "");
  List.iter (fun (_, f) -> f ()) to_run;
  Printf.printf "\n%s\ndone.\n" hline
