(** Per-tenant simulator state, keyed by tenant id.

    A thin layer over {!Atp_util.Int_table.Poly} that additionally
    tracks {e peak} occupancy: the fleet's memory guarantee is
    O(active tenants) — not O(tenants ever seen) — and the churn tests
    assert it by comparing [peak] against the configured active-tenant
    cap, far below the total tenant count. *)

type 'a t

val create : ?initial_capacity:int -> unit -> 'a t

val length : 'a t -> int
(** Currently active tenants. *)

val peak : 'a t -> int
(** Largest [length] ever observed. *)

val mem : 'a t -> int -> bool

val find : 'a t -> int -> 'a option

val find_exn : 'a t -> int -> 'a
(** @raise Not_found when the tenant is absent. *)

val set : 'a t -> int -> 'a -> unit
(** Insert or overwrite. *)

val remove : 'a t -> int -> bool
(** Returns whether the tenant was present. *)

val iter : (int -> 'a -> unit) -> 'a t -> unit

val fold : (int -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b

val to_sorted_list : 'a t -> (int * 'a) list
(** Snapshot sorted by tenant id — deterministic regardless of hash
    order. *)
