open Atp_core
module Obs = Atp_obs
module Engine = Atp_engine.Engine

type fairness = {
  tenants : int;
  mean : float;
  p50 : float;
  p99 : float;
  max_cost : float;
  jain : float;
}

(* Nearest-rank percentile over a sorted array. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let of_costs costs =
  let costs = Array.of_list costs in
  Array.sort Float.compare costs;
  let n = Array.length costs in
  if n = 0 then
    { tenants = 0; mean = 0.0; p50 = 0.0; p99 = 0.0; max_cost = 0.0; jain = 1.0 }
  else begin
    let sum = Array.fold_left ( +. ) 0.0 costs in
    let sumsq = Array.fold_left (fun a x -> a +. (x *. x)) 0.0 costs in
    {
      tenants = n;
      mean = sum /. float_of_int n;
      p50 = percentile costs 50.0;
      p99 = percentile costs 99.0;
      max_cost = costs.(n - 1);
      jain =
        (if sumsq = 0.0 then 1.0
         else sum *. sum /. (float_of_int n *. sumsq));
    }
  end

let of_stats ~epsilon stats =
  of_costs
    (List.filter_map
       (fun (s : Contended.tenant_stats) ->
         if s.accesses = 0 then None
         else Some (Contended.cost ~epsilon s /. float_of_int s.accesses))
       stats)

let of_reports ~epsilon reports =
  of_costs
    (List.filter_map
       (fun { Engine.report = r; _ } ->
         if r.Simulation.accesses = 0 then None
         else
           Some
             (Simulation.cost ~epsilon r /. float_of_int r.Simulation.accesses))
       reports)

let observe obs f =
  Obs.Gauge.set_int (Obs.Scope.gauge obs "tenants_reported") f.tenants;
  Obs.Gauge.set (Obs.Scope.gauge obs "cost_mean") f.mean;
  Obs.Gauge.set (Obs.Scope.gauge obs "cost_p50") f.p50;
  Obs.Gauge.set (Obs.Scope.gauge obs "cost_p99") f.p99;
  Obs.Gauge.set (Obs.Scope.gauge obs "cost_max") f.max_cost;
  Obs.Gauge.set (Obs.Scope.gauge obs "jain") f.jain

let to_json f =
  Obs.Json.Obj
    [
      ("tenants", Obs.Json.Int f.tenants);
      ("mean", Obs.Json.Float f.mean);
      ("p50", Obs.Json.Float f.p50);
      ("p99", Obs.Json.Float f.p99);
      ("max", Obs.Json.Float f.max_cost);
      ("jain", Obs.Json.Float f.jain);
    ]

let pp ppf f =
  Format.fprintf ppf
    "tenants=%d mean=%.6f p50=%.6f p99=%.6f max=%.6f jain=%.4f" f.tenants
    f.mean f.p50 f.p99 f.max_cost f.jain
