(** Stochastic tenant lifecycle: the event-stream generator of the
    fleet model.

    Consolidated machines run thousands to millions of short-lived
    address spaces against one translation stack.  This module turns a
    churn specification into a deterministic
    {!Atp_engine.Engine.tenant_source}: per tick, Bernoulli-ish
    arrivals (expected {!config.arrival_rate} per tick, capped at
    {!config.max_active} concurrently active), geometric lifetimes
    (mean {!config.mean_lifetime} ticks), and
    {!config.accesses_per_tick} references issued by weight-
    proportional draws among the active tenants.  [pinned] tenants
    arrive first, never depart, and issue with weight
    {!config.pinned_weight} — the noisy neighbors.

    Every draw comes from one {!Atp_util.Prng.t} seeded with
    {!config.seed}, and each tenant's workload is instantiated from
    the {!Atp_workloads.Mix.spec} on its own split-off generator: the
    stream is a pure function of [(config, spec)], so calling
    {!source} again replays the identical stream — exactly what the
    engine's per-shard fresh passes need. *)

type config = {
  seed : int;
  ticks : int;  (** simulation length in ticks (>= 0) *)
  arrival_rate : float;  (** expected tenant arrivals per tick (>= 0) *)
  mean_lifetime : float;  (** mean tenant lifetime in ticks (>= 1) *)
  accesses_per_tick : int;  (** fleet-wide references per tick (>= 0) *)
  max_active : int;  (** concurrent-tenant cap (>= 1) *)
  initial : int;  (** ordinary tenants present at tick 0 (>= 0) *)
  pinned : int;  (** immortal heavy tenants, ids [0..pinned-1] *)
  pinned_weight : float;  (** issue weight of a pinned tenant (> 0) *)
}

val default : config
(** 2 k ticks, 0.5 arrivals/tick, 200-tick lifetimes, 64 refs/tick,
    cap 256, 16 initial tenants, no pinned tenants. *)

val validate : config -> unit
(** @raise Invalid_argument on any out-of-range field (see the bounds
    on {!config}). *)

val source :
  config -> spec:Atp_workloads.Mix.spec -> Atp_engine.Engine.tenant_source
(** A fresh pass over the configured event stream.  Tenant ids are
    dense from 0 in arrival order; each id arrives and departs at most
    once (tenants still active after the last tick simply never
    depart).  Live memory is O([max_active]), independent of how many
    tenants the run churns through.

    @raise Invalid_argument as {!validate}. *)
