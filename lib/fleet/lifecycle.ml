open Atp_util
open Atp_workloads
module Engine = Atp_engine.Engine

type config = {
  seed : int;
  ticks : int;
  arrival_rate : float;
  mean_lifetime : float;
  accesses_per_tick : int;
  max_active : int;
  initial : int;
  pinned : int;
  pinned_weight : float;
}

let default =
  {
    seed = 1;
    ticks = 2_000;
    arrival_rate = 0.5;
    mean_lifetime = 200.0;
    accesses_per_tick = 64;
    max_active = 256;
    initial = 16;
    pinned = 0;
    pinned_weight = 8.0;
  }

let validate cfg =
  if cfg.ticks < 0 then invalid_arg "Lifecycle: negative ticks";
  if cfg.arrival_rate < 0.0 then invalid_arg "Lifecycle: negative arrival_rate";
  if cfg.mean_lifetime < 1.0 then
    invalid_arg "Lifecycle: mean_lifetime must be >= 1";
  if cfg.accesses_per_tick < 0 then
    invalid_arg "Lifecycle: negative accesses_per_tick";
  if cfg.max_active < 1 then invalid_arg "Lifecycle: max_active must be >= 1";
  if cfg.initial < 0 then invalid_arg "Lifecycle: negative initial";
  if cfg.pinned < 0 then invalid_arg "Lifecycle: negative pinned";
  if cfg.pinned > cfg.max_active then
    invalid_arg "Lifecycle: pinned exceeds max_active";
  if cfg.pinned_weight <= 0.0 then
    invalid_arg "Lifecycle: pinned_weight must be positive"

type tenant = {
  id : int;
  workload : Workload.t;
  weight : float;
  pinned_tenant : bool;
}

let source cfg ~spec =
  validate cfg;
  let rng = Prng.create ~seed:cfg.seed () in
  let q : Engine.tenant_event Queue.t = Queue.create () in
  (* Active tenants, arrival order.  The population is capped at
     [max_active], so every per-tick scan — and the whole generator's
     live memory — is O(max_active) however many tenants the run
     churns through. *)
  let active = ref [] in
  let n_active = ref 0 in
  let next_id = ref 0 in
  let tick = ref 0 in
  let spawn ~pinned_tenant =
    let id = !next_id in
    incr next_id;
    (* Each tenant's workload runs on its own generator split off the
       master stream: the mix spec instantiates per-component splits
       below that, so no tenant's accesses perturb another's. *)
    let workload = Mix.instantiate spec (Prng.split rng) in
    let weight = if pinned_tenant then cfg.pinned_weight else 1.0 in
    active := !active @ [ { id; workload; weight; pinned_tenant } ];
    incr n_active;
    Queue.add (Engine.Tarrive { tenant = id }) q
  in
  for _ = 1 to cfg.pinned do
    spawn ~pinned_tenant:true
  done;
  for _ = 1 to min cfg.initial (cfg.max_active - !n_active) do
    spawn ~pinned_tenant:false
  done;
  let pick () =
    let total =
      List.fold_left (fun acc t -> acc +. t.weight) 0.0 !active
    in
    let u = Prng.float rng *. total in
    let rec go acc = function
      | [] -> assert false
      | [ t ] -> t
      | t :: rest ->
        let acc = acc +. t.weight in
        if u < acc then t else go acc rest
    in
    go 0.0 !active
  in
  let step () =
    (* Arrivals: [arrival_rate] is the expected count per tick — the
       integer part always arrives, the fraction is a Bernoulli coin —
       clipped by the population cap. *)
    let whole = int_of_float cfg.arrival_rate in
    let frac = cfg.arrival_rate -. float_of_int whole in
    let arrivals = whole + (if Prng.float rng < frac then 1 else 0) in
    for _ = 1 to arrivals do
      if !n_active < cfg.max_active then spawn ~pinned_tenant:false
    done;
    (* Accesses: each reference is issued by a weight-proportional
       draw among the active tenants, so pinned heavy tenants crowd
       the stream — the noisy-neighbor knob. *)
    if !n_active > 0 then
      for _ = 1 to cfg.accesses_per_tick do
        let t = pick () in
        Queue.add
          (Engine.Taccess { tenant = t.id; page = t.workload.Workload.next () })
          q
      done;
    (* Departures: geometric lifetimes — every non-pinned tenant
       leaves with probability 1/mean_lifetime per tick.  The scan
       draws one coin per active tenant in arrival order, keeping the
       stream a pure function of the seed. *)
    let p_depart = 1.0 /. cfg.mean_lifetime in
    let stay = ref [] and gone = ref [] in
    List.iter
      (fun t ->
        if t.pinned_tenant || Prng.float rng >= p_depart then
          stay := t :: !stay
        else gone := t :: !gone)
      !active;
    active := List.rev !stay;
    n_active := List.length !active;
    List.iter
      (fun t -> Queue.add (Engine.Tdepart { tenant = t.id }) q)
      (List.rev !gone);
    incr tick
  in
  fun () ->
    let rec next () =
      match Queue.take_opt q with
      | Some e -> Some e
      | None ->
        if !tick >= cfg.ticks then None
        else begin
          step ();
          next ()
        end
    in
    next ()
