open Atp_util

type 'a t = {
  table : 'a Int_table.Poly.t;
  mutable peak : int;
}

let create ?initial_capacity () =
  { table = Int_table.Poly.create ?initial_capacity (); peak = 0 }

let length t = Int_table.Poly.length t.table

let peak t = t.peak

let mem t id = Int_table.Poly.mem t.table id

let find t id = Int_table.Poly.find t.table id

let find_exn t id = Int_table.Poly.find_exn t.table id

let set t id v =
  Int_table.Poly.set t.table id v;
  let n = Int_table.Poly.length t.table in
  if n > t.peak then t.peak <- n

let remove t id = Int_table.Poly.remove t.table id

let iter f t = Int_table.Poly.iter f t.table

let fold f t acc = Int_table.Poly.fold f t.table acc

let to_sorted_list t =
  List.sort
    (fun (a, _) (b, _) -> Int.compare a b)
    (fold (fun id v acc -> (id, v) :: acc) t [])
