(** Per-tenant fairness reporting ([atp.fleet]).

    A consolidation experiment ends with one translation-cost figure
    {e per tenant}; this module condenses them into the fleet-level
    summary the QoS comparison reads: per-access cost percentiles
    (p50/p99 — the tail is where noisy neighbors show), the mean and
    max, and Jain's fairness index
    [(Σx)² / (n·Σx²)] — 1 when every tenant pays the same, → 1/n when
    one tenant pays everything.

    Per-tenant per-access cost is [cost / accesses] with the paper's
    accounting (ε-weighted fills plus I/Os); tenants with zero
    measured accesses are excluded.  All statistics are exact
    (computed on the sorted cost array, nearest-rank percentiles), so
    reports are byte-stable and golden-testable. *)

type fairness = {
  tenants : int;  (** tenants with at least one access *)
  mean : float;
  p50 : float;
  p99 : float;
  max_cost : float;
  jain : float;
}

val of_costs : float list -> fairness
(** Summarize raw per-tenant costs (any non-negative metric). *)

val of_stats : epsilon:float -> Contended.tenant_stats list -> fairness
(** From a contended replay ({!Contended.run}). *)

val of_reports :
  epsilon:float -> Atp_engine.Engine.tenant_report list -> fairness
(** From a tenant-partitioned engine replay
    ({!Atp_engine.Engine.replay_tenants}), using
    {!Atp_core.Simulation.cost}. *)

val observe : Atp_obs.Scope.t -> fairness -> unit
(** Publish as gauges under the scope: [tenants_reported],
    [cost_mean], [cost_p50], [cost_p99], [cost_max], [jain]. *)

val to_json : fairness -> Atp_obs.Json.t
(** [{"tenants":…,"mean":…,"p50":…,"p99":…,"max":…,"jain":…}] with
    the registry serializer's deterministic float formatting. *)

val pp : Format.formatter -> fairness -> unit
(** Fixed-precision one-liner, safe to golden-test. *)
