(** Shared-hardware contention: what tenants do to each other.

    The engine's tenant-partitioned replay gives every tenant private
    simulator state — that independence is what makes it shardable.
    Real consolidated hardware is the opposite: one ASID-tagged TLB
    and one RAM, global LRU across all address spaces, so a noisy
    neighbor's misses evict everyone's translations.  This module
    replays the same {!Atp_engine.Engine.tenant_source} against that
    shared machine ([Shared]), or against per-tenant reserved slices
    of it ([Reserved]) — the QoS policy comparison — with identical
    cost accounting, so the two are directly comparable.

    The access path charges the paper's translation cost: a TLB miss
    is a fill (ε each); a fill that also misses RAM is an I/O (1
    each); {!cost} is [ios + ε·tlb_fills].

    [Shared] mode recycles ASIDs through {!Atp_tlb.Asid.Allocator} —
    lazy, flush-on-rollover — so departures are O(1), and any stale
    translation a recycled id could surface is detected via the
    entry's owner payload and counted in {!result.leaks} (asserted
    zero by the tests, guaranteed zero by the allocator).

    The whole replay is sequential and deterministic: contention
    makes tenants interdependent, so this path cannot shard — that is
    the point of the engine's reserved-state path. *)

type qos =
  | Shared
      (** one TLB ([config.tlb_entries]) and one RAM
          ([config.ram_frames]) for everybody, global LRU *)
  | Reserved of { tlb_entries : int; ram_frames : int }
      (** private slices per tenant: full isolation *)

type config = {
  tlb_entries : int;  (** shared-mode TLB entries (>= 1) *)
  ram_frames : int;  (** shared-mode RAM frames (>= 1) *)
  asid_bits : int;  (** hardware id space, 1..20 *)
  page_bits : int;  (** bits of a page number in a RAM key, 1..40 *)
  epsilon : float;  (** TLB-fill cost relative to an I/O (>= 0) *)
}

val default : config
(** 64-entry TLB, 1024-frame RAM, 8-bit ASIDs (so churny fleets
    actually exercise recycling), 24-bit pages, ε = 0.01. *)

val validate : config -> unit
(** @raise Invalid_argument on any out-of-range field. *)

type tenant_stats = {
  tenant : int;
  accesses : int;
  tlb_fills : int;
  ios : int;
}

val cost : epsilon:float -> tenant_stats -> float
(** [ios + ε·tlb_fills], the tenant's translation cost. *)

type result = {
  stats : tenant_stats list;  (** sorted by tenant id *)
  leaks : int;  (** stale hits from a recycled asid — must be 0 *)
  rollovers : int;  (** ASID generation rollovers ([Shared] only) *)
  peak_active : int;
      (** most tenants ever simultaneously live: the O(active-tenant)
          memory witness *)
}

val run :
  ?obs:Atp_obs.Scope.t ->
  config ->
  qos ->
  Atp_engine.Engine.tenant_source ->
  result
(** Sequential replay of the event stream against the chosen machine.
    Per-tenant state is created at first sight and dropped at
    departure; tenants never departing are finalized at end of stream,
    and the stats list is stably sorted by tenant id.

    [obs] registers the additive counters [accesses]/[tlb_fills]/
    [ios]/[leaks] and the gauges [rollovers]/[peak_active].

    @raise Invalid_argument on a bad [config], a negative tenant id, a
    page outside [page_bits], or — [Shared] only — when more than
    [2^asid_bits] tenants are live at once (ASID exhaustion). *)
