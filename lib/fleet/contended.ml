module Obs = Atp_obs
module Engine = Atp_engine.Engine
module Tlb = Atp_tlb.Tlb
module Asid = Atp_tlb.Asid

type qos =
  | Shared
  | Reserved of { tlb_entries : int; ram_frames : int }

type config = {
  tlb_entries : int;
  ram_frames : int;
  asid_bits : int;
  page_bits : int;
  epsilon : float;
}

let default =
  { tlb_entries = 64; ram_frames = 1024; asid_bits = 8; page_bits = 24;
    epsilon = 0.01 }

let validate cfg =
  if cfg.tlb_entries < 1 then invalid_arg "Contended: tlb_entries must be >= 1";
  if cfg.ram_frames < 1 then invalid_arg "Contended: ram_frames must be >= 1";
  if cfg.asid_bits < 1 || cfg.asid_bits > 20 then
    invalid_arg "Contended: asid_bits must be in 1..20";
  if cfg.page_bits < 1 || cfg.page_bits > 40 then
    invalid_arg "Contended: page_bits must be in 1..40";
  if cfg.epsilon < 0.0 then invalid_arg "Contended: negative epsilon"

type tenant_stats = {
  tenant : int;
  accesses : int;
  tlb_fills : int;
  ios : int;
}

let cost ~epsilon s = float_of_int s.ios +. (epsilon *. float_of_int s.tlb_fills)

type result = {
  stats : tenant_stats list;
  leaks : int;
  rollovers : int;
  peak_active : int;
}

(* Mutable per-tenant accumulator; [asid]/[tlb]/[ram] depend on the
   QoS mode. *)
type 'res tenant = {
  mutable t_accesses : int;
  mutable t_fills : int;
  mutable t_ios : int;
  res : 'res;
}

let finalize id t = {
  tenant = id;
  accesses = t.t_accesses;
  tlb_fills = t.t_fills;
  ios = t.t_ios;
}

let by_tenant (a : tenant_stats) b = Int.compare a.tenant b.tenant

(* One sequential pass: per-event callbacks close over the mode's
   machine state; done-stats collect at departure or end of stream. *)
let drive ~on_arrive ~on_access ~on_depart (table : _ Tenant_table.t) source =
  let out = ref [] in
  let get tenant =
    if tenant < 0 then invalid_arg "Contended: negative tenant id";
    match Tenant_table.find table tenant with
    | Some t -> t
    | None ->
      let t = on_arrive tenant in
      Tenant_table.set table tenant t;
      t
  in
  let finished = ref false in
  while not !finished do
    match source () with
    | None -> finished := true
    | Some (Engine.Tarrive { tenant }) -> ignore (get tenant)
    | Some (Engine.Taccess { tenant; page }) ->
      let t = get tenant in
      t.t_accesses <- t.t_accesses + 1;
      on_access tenant t page
    | Some (Engine.Tdepart { tenant }) -> (
      match Tenant_table.find table tenant with
      | None -> ()
      | Some t ->
        on_depart tenant t;
        ignore (Tenant_table.remove table tenant);
        out := finalize tenant t :: !out)
  done;
  Tenant_table.iter (fun id t -> out := finalize id t :: !out) table;
  List.stable_sort by_tenant (List.rev !out)

let run ?obs cfg qos source =
  validate cfg;
  let obs = match obs with Some o -> o | None -> Obs.Scope.null () in
  let c_accesses = Obs.Scope.counter obs "accesses"
  and c_fills = Obs.Scope.counter obs "tlb_fills"
  and c_ios = Obs.Scope.counter obs "ios"
  and c_leaks = Obs.Scope.counter obs "leaks" in
  let g_rollovers = Obs.Scope.gauge obs "rollovers"
  and g_peak = Obs.Scope.gauge obs "peak_active" in
  let leaks = ref 0 in
  let stats, rollovers, peak =
    match qos with
    | Shared ->
      (* One ASID-tagged TLB and one RAM, both global LRU: every
         tenant's misses are everyone's evictions. *)
      let tlb = Asid.create ~asid_bits:cfg.asid_bits ~entries:cfg.tlb_entries () in
      let alloc = Asid.Allocator.create tlb in
      (* RAM frames are keyed by (tenant, page): a dead tenant's pages
         can never be hit again and simply age out of the LRU — no
         scan on departure. *)
      let ram : unit Tlb.t = Tlb.create ~entries:cfg.ram_frames () in
      let ram_key tenant page =
        if page < 0 || page >= 1 lsl cfg.page_bits then
          invalid_arg "Contended: page out of range";
        if tenant >= 1 lsl (61 - cfg.page_bits) then
          invalid_arg "Contended: tenant id out of range";
        (tenant lsl cfg.page_bits) lor page
      in
      let table : int tenant Tenant_table.t = Tenant_table.create () in
      let on_arrive _tenant =
        { t_accesses = 0; t_fills = 0; t_ios = 0;
          res = Asid.Allocator.allocate alloc }
      in
      let fill tenant t page =
        t.t_fills <- t.t_fills + 1;
        let key = ram_key tenant page in
        (match Tlb.lookup ram key with
        | Some () -> ()
        | None ->
          t.t_ios <- t.t_ios + 1;
          ignore (Tlb.insert ram key ()));
        ignore (Asid.insert tlb ~asid:t.res page tenant)
      in
      let on_access tenant t page =
        match Asid.lookup tlb ~asid:t.res page with
        | Some owner when owner = tenant -> ()
        | Some _ ->
          (* A recycled asid surfaced a dead tenant's translation.
             The allocator's rollover flush makes this unreachable;
             counted (and asserted zero in the tests) rather than
             trusted. *)
          incr leaks;
          ignore (Asid.invalidate tlb ~asid:t.res page);
          fill tenant t page
        | None -> fill tenant t page
      in
      let on_depart _tenant t = Asid.Allocator.free alloc t.res in
      let stats = drive ~on_arrive ~on_access ~on_depart table source in
      (stats, Asid.Allocator.generation alloc, Tenant_table.peak table)
    | Reserved { tlb_entries; ram_frames } ->
      if tlb_entries < 1 || ram_frames < 1 then
        invalid_arg "Contended: reserved shares must be >= 1";
      (* Full isolation: private TLB and RAM slices per tenant, same
         accounting — the QoS contrast to [Shared]. *)
      let table = Tenant_table.create () in
      let on_arrive _tenant =
        { t_accesses = 0; t_fills = 0; t_ios = 0;
          res =
            ( (Tlb.create ~entries:tlb_entries () : unit Tlb.t),
              (Tlb.create ~entries:ram_frames () : unit Tlb.t) ) }
      in
      let on_access _tenant t page =
        let tlb, ram = t.res in
        match Tlb.lookup tlb page with
        | Some () -> ()
        | None ->
          t.t_fills <- t.t_fills + 1;
          (match Tlb.lookup ram page with
          | Some () -> ()
          | None ->
            t.t_ios <- t.t_ios + 1;
            ignore (Tlb.insert ram page ()));
          ignore (Tlb.insert tlb page ())
      in
      let on_depart _tenant _t = () in
      let stats = drive ~on_arrive ~on_access ~on_depart table source in
      (stats, 0, Tenant_table.peak table)
  in
  List.iter
    (fun s ->
      Obs.Counter.add c_accesses s.accesses;
      Obs.Counter.add c_fills s.tlb_fills;
      Obs.Counter.add c_ios s.ios)
    stats;
  Obs.Counter.add c_leaks !leaks;
  Obs.Gauge.set_int g_rollovers rollovers;
  Obs.Gauge.set_int g_peak peak;
  { stats; leaks = !leaks; rollovers; peak_active = peak }
