open Atp_util

exception Segfault of int

type config = {
  ram_pages : int;
  tlb_entries : int;
  walker : Walker.config;
  tlb_hit_cycles : int;
  io_cycles : int;
}

let default_config =
  {
    ram_pages = 1 lsl 16;
    tlb_entries = 1536;
    walker = Walker.default_config;
    tlb_hit_cycles = 1;
    io_cycles = 40_000;
  }

type counters = {
  accesses : int;
  tlb_hits : int;
  tlb_misses : int;
  minor_faults : int;
  major_faults : int;
  writebacks : int;
  evictions : int;
  walk_cycles : int;
  total_cycles : int;
}

let zero =
  {
    accesses = 0;
    tlb_hits = 0;
    tlb_misses = 0;
    minor_faults = 0;
    major_faults = 0;
    writebacks = 0;
    evictions = 0;
    walk_cycles = 0;
    total_cycles = 0;
  }

type t = {
  cfg : config;
  table : Page_table.t;
  walker : Walker.t;
  tlb : int Atp_tlb.Tlb.t;
  buddy : Buddy.t;
  regions : Page_list.t;  (* region start pages, for munmap bookkeeping *)
  region_len : Int_table.t;  (* start -> length *)
  resident : Page_list.t;  (* CLOCK order over resident vpages *)
  swapped : Int_table.t;  (* vpage -> 1 if a swap copy exists *)
  mutable counters : counters;
}

let create cfg =
  if cfg.ram_pages < 1 then invalid_arg "Vmm.create: no RAM";
  let table = Page_table.create () in
  {
    cfg;
    table;
    walker = Walker.create ~config:cfg.walker table;
    tlb = Atp_tlb.Tlb.create ~entries:cfg.tlb_entries ();
    buddy = Buddy.create ~frames:cfg.ram_pages;
    regions = Page_list.create ();
    region_len = Int_table.create ();
    resident = Page_list.create ();
    swapped = Int_table.create ();
    counters = zero;
  }

let counters t = t.counters

let walker_stats t = Walker.stats t.walker

let reset_counters t = t.counters <- zero

let resident_pages t = Page_list.length t.resident

let overlaps t ~start ~pages =
  Int_table.fold
    (fun s len acc -> acc || (start < s + len && s < start + pages))
    t.region_len false

let mmap t ~start ~pages =
  if start < 0 || pages < 1 then invalid_arg "Vmm.mmap: bad region";
  if overlaps t ~start ~pages then invalid_arg "Vmm.mmap: region overlap";
  Page_list.push_front t.regions start;
  Int_table.set t.region_len start pages

let is_mapped t vpage =
  Int_table.fold
    (fun s len acc -> acc || (vpage >= s && vpage < s + len))
    t.region_len false

let release_page t vpage =
  (match Page_table.lookup t.table vpage with
   | Some m ->
     Buddy.free t.buddy ~base:m.Page_table.frame ~order:0;
     ignore (Page_table.unmap t.table ~vpage)
   | None -> ());
  ignore (Page_list.remove t.resident vpage);
  ignore (Int_table.remove t.swapped vpage);
  ignore (Atp_tlb.Tlb.invalidate t.tlb vpage)

(* Above this region size a full walk-cache flush is cheaper than
   per-page INVLPG-style invalidation — the same trade Linux makes
   with its tlb_single_page_flush_ceiling. *)
let full_flush_ceiling = 32

let munmap t ~start ~pages =
  match Int_table.find t.region_len start with
  | Some len when len = pages ->
    for v = start to start + pages - 1 do
      release_page t v;
      (* INVLPG-style: drop only this page's interior prefixes and its
         cache-resident PTE, so one unmap no longer destroys the
         walker's whole working set. *)
      if pages <= full_flush_ceiling then Walker.invalidate_page t.walker v
    done;
    ignore (Int_table.remove t.region_len start);
    ignore (Page_list.remove t.regions start);
    if pages > full_flush_ceiling then Walker.invalidate t.walker
  | Some _ -> invalid_arg "Vmm.munmap: length mismatch"
  | None -> invalid_arg "Vmm.munmap: unknown region"

(* CLOCK reclaim over the resident list using the table's accessed
   bits: rotate, clearing bits, until a cold page comes up. *)
let reclaim_frame t =
  let rec sweep guard =
    match Page_list.pop_back t.resident with
    | None -> failwith "Vmm: no resident page to reclaim"
    | Some victim ->
      let m = Option.get (Page_table.lookup t.table victim) in
      if m.Page_table.flags.Page_table.accessed && guard > 0 then begin
        (* Second chance: clear the accessed bit (dirty is preserved)
           and rotate to the front. *)
        ignore (Page_table.clear_accessed t.table victim);
        Page_list.push_front t.resident victim;
        sweep (guard - 1)
      end
      else begin
        let c = t.counters in
        let dirty = m.Page_table.flags.Page_table.dirty in
        t.counters <-
          { c with
            evictions = c.evictions + 1;
            writebacks = (c.writebacks + if dirty then 1 else 0);
            total_cycles =
              (c.total_cycles + if dirty then t.cfg.io_cycles else 0) };
        Int_table.set t.swapped victim 1;
        let frame = m.Page_table.frame in
        ignore (Page_table.unmap t.table ~vpage:victim);
        ignore (Atp_tlb.Tlb.invalidate t.tlb victim);
        (* The victim's leaf PTE (and covering interior prefixes) are
           stale in the walk caches: a cache-resident translation tier
           would otherwise serve a dead mapping. *)
        Walker.invalidate_page t.walker victim;
        Buddy.free t.buddy ~base:frame ~order:0;
        frame
      end
  in
  sweep (Page_list.length t.resident)

let fault_in t vpage =
  let frame =
    match Buddy.alloc t.buddy ~order:0 with
    | Some frame -> frame
    | None ->
      (* Reclaim frees exactly one order-0 frame, so this retry cannot
         fail. *)
      ignore (reclaim_frame t : int);
      (match Buddy.alloc t.buddy ~order:0 with
       | Some f -> f
       | None -> assert false)
  in
  let was_swapped = Int_table.mem t.swapped vpage in
  ignore (Int_table.remove t.swapped vpage);
  Page_table.map t.table ~vpage ~frame ();
  Page_list.push_front t.resident vpage;
  let c = t.counters in
  if was_swapped then
    t.counters <-
      { c with
        major_faults = c.major_faults + 1;
        total_cycles = c.total_cycles + t.cfg.io_cycles }
  else t.counters <- { c with minor_faults = c.minor_faults + 1 };
  frame

let touch t vpage ~write =
  if vpage < 0 then invalid_arg "Vmm: negative page";
  if not (is_mapped t vpage) then raise (Segfault vpage);
  let c = t.counters in
  t.counters <- { c with accesses = c.accesses + 1 };
  (match Atp_tlb.Tlb.lookup t.tlb vpage with
   | Some _frame ->
     let c = t.counters in
     t.counters <-
       { c with
         tlb_hits = c.tlb_hits + 1;
         total_cycles = c.total_cycles + t.cfg.tlb_hit_cycles }
   | None ->
     let c = t.counters in
     t.counters <- { c with tlb_misses = c.tlb_misses + 1 };
     let walk = Walker.translate t.walker vpage in
     let c = t.counters in
     t.counters <-
       { c with
         walk_cycles = c.walk_cycles + walk.Walker.cycles;
         total_cycles = c.total_cycles + walk.Walker.cycles };
     let frame =
       match walk.Walker.mapping with
       | Some m -> m.Page_table.frame
       | None -> fault_in t vpage
     in
     (* Victima-style: a TLB-evicted translation is handed down to the
        walker's cache-resident tier (no-op when the tier is off). *)
     (match Atp_tlb.Tlb.insert t.tlb vpage frame with
      | Some (victim, _frame) -> Walker.deposit t.walker victim
      | None -> ()));
  if write then ignore (Page_table.set_dirty t.table vpage)

let read t vpage = touch t vpage ~write:false

let write t vpage = touch t vpage ~write:true

let average_cycles_per_access t =
  if t.counters.accesses = 0 then 0.0
  else float_of_int t.counters.total_cycles /. float_of_int t.counters.accesses

let translation_fraction t =
  if t.counters.total_cycles = 0 then 0.0
  else begin
    let translation =
      t.counters.walk_cycles + (t.counters.tlb_hits * t.cfg.tlb_hit_cycles)
    in
    float_of_int translation /. float_of_int t.counters.total_cycles
  end

let pp_counters ppf c =
  Format.fprintf ppf
    "accesses=%a tlb-hits=%a tlb-misses=%a minor=%a major=%a writebacks=%a \
     evictions=%a walk-cycles=%a total-cycles=%a"
    Stats.pp_count c.accesses Stats.pp_count c.tlb_hits Stats.pp_count
    c.tlb_misses Stats.pp_count c.minor_faults Stats.pp_count c.major_faults
    Stats.pp_count c.writebacks Stats.pp_count c.evictions Stats.pp_count
    c.walk_cycles Stats.pp_count c.total_cycles
