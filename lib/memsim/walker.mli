(** A hardware page-table walker with a page-walk cache (PWC) and an
    optional cache-resident translation tier.

    The paper treats the TLB-miss cost ε as a model parameter ("it can
    take hundreds or even thousands of CPU cycles to perform an
    address translation in the page table").  This module grounds that
    number: a TLB miss triggers a radix walk of the {!Page_table},
    each level costing a memory access unless the walker's PWC already
    holds the matching interior entry — the MMU caches (paging
    structure caches) real CPUs implement.  Huge-page leaves terminate
    walks early, which is the second, often forgotten, benefit of
    large pages.

    The optional second tier models Victima-style reach extension
    (PAPERS.md): leaf PTEs cached in the data-cache hierarchy, so a
    TLB miss can be satisfied by one cache access — a cost strictly
    between a TLB hit and a full walk — instead of up to four
    page-table loads.  With [tcache_entries = 0] (the default) the
    walker's behaviour, costs, stats, and obs output are byte-identical
    to a walker without the tier.

    [epsilon] converts the measured average walk latency into the
    paper's ε by dividing by the cost of an IO in cycles. *)

type tcache_mode =
  | Inclusive
      (** every completed walk also caches its leaf PTE in the tier *)
  | Exclusive
      (** victim store: filled only by {!deposit} (TLB-evicted PTEs,
          as Victima does); a hit migrates the entry back out *)

type config = {
  pwc_entries : int;  (** entries of the page-walk cache (default 32) *)
  memory_latency : int;  (** cycles per page-table memory access (default 100) *)
  pwc_latency : int;  (** cycles for a PWC probe (default 2) *)
  tcache_entries : int;
      (** cache-resident PTE store capacity; 0 disables the tier
          (default 0) *)
  tcache_latency : int;
      (** cycles for the cache-hierarchy PTE probe, paid on hit and
          miss alike when the tier is enabled (default 30) *)
  tcache_mode : tcache_mode;  (** default [Inclusive] *)
}

val default_config : config

type result = {
  mapping : Page_table.mapping option;
  memory_accesses : int;  (** page-table loads actually performed *)
  cycles : int;
}

type stats = {
  walks : int;
  total_cycles : int;
  total_memory_accesses : int;
  pwc_hits : int;
  tcache_hits : int;  (** walks satisfied from the cache-resident tier *)
}

type t

val create : ?config:config -> ?obs:Atp_obs.Scope.t -> Page_table.t -> t
(** [obs] registers [walks]/[pwc_hits]/[memory_accesses] counters and a
    [walk_cycles] histogram (mirroring {!stats}), plus the PWC's TLB
    counters under the sub-scope [pwc].  When the translation-cache
    tier is enabled it additionally registers [tcache_hits] and the
    tier's TLB counters under [tcache]; when disabled those names are
    absent, keeping the snapshot identical to a pre-tier walker.

    @raise Invalid_argument if [tcache_entries < 0]. *)

val translate : t -> int -> result
(** Walk the table for a virtual page: probe the cache-resident tier
    (if enabled), then consult and fill the PWC for the radix walk. *)

val deposit : t -> int -> unit
(** Hand a leaf translation to the cache-resident tier — the owner
    calls this when its TLB evicts an entry, modelling Victima's
    caching of TLB-evicted PTEs.  A no-op when the tier is disabled. *)

val invalidate : t -> unit
(** Flush the PWC and the cache-resident tier (a bulk unmap, mirroring
    a full MMU-cache flush). *)

val invalidate_page : t -> int -> unit
(** INVLPG-style invalidation: drop the PWC interior entries whose
    prefix covers [vpage] and the page's cache-resident PTE, leaving
    every unrelated entry intact.  Single-page unmaps use this so one
    unmap no longer destroys the whole walk-cache working set. *)

val tcache_enabled : t -> bool

val stats : t -> stats

val average_cycles : t -> float
(** Mean walk latency; 0 before any walk. *)

val epsilon : t -> io_latency_cycles:int -> float
(** [average_cycles / io_latency_cycles]: the measured ε of the
    address-translation cost model for this table and access
    pattern.

    @raise Invalid_argument if [io_latency_cycles <= 0]. *)
