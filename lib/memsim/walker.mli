(** A hardware page-table walker with a page-walk cache (PWC).

    The paper treats the TLB-miss cost ε as a model parameter ("it can
    take hundreds or even thousands of CPU cycles to perform an
    address translation in the page table").  This module grounds that
    number: a TLB miss triggers a radix walk of the {!Page_table},
    each level costing a memory access unless the walker's PWC already
    holds the matching interior entry — the MMU caches (paging
    structure caches) real CPUs implement.  Huge-page leaves terminate
    walks early, which is the second, often forgotten, benefit of
    large pages.

    [epsilon] converts the measured average walk latency into the
    paper's ε by dividing by the cost of an IO in cycles. *)

type config = {
  pwc_entries : int;  (** entries of the page-walk cache (default 32) *)
  memory_latency : int;  (** cycles per page-table memory access (default 100) *)
  pwc_latency : int;  (** cycles for a PWC probe (default 2) *)
}

val default_config : config

type result = {
  mapping : Page_table.mapping option;
  memory_accesses : int;  (** page-table loads actually performed *)
  cycles : int;
}

type stats = {
  walks : int;
  total_cycles : int;
  total_memory_accesses : int;
  pwc_hits : int;
}

type t

val create : ?config:config -> ?obs:Atp_obs.Scope.t -> Page_table.t -> t
(** [obs] registers [walks]/[pwc_hits]/[memory_accesses] counters and a
    [walk_cycles] histogram (mirroring {!stats}), plus the PWC's TLB
    counters under the sub-scope [pwc]. *)

val translate : t -> int -> result
(** Walk the table for a virtual page, consulting and filling the
    PWC. *)

val invalidate : t -> unit
(** Flush the PWC (after an unmap, mirroring real MMU behaviour). *)

val stats : t -> stats

val average_cycles : t -> float
(** Mean walk latency; 0 before any walk. *)

val epsilon : t -> io_latency_cycles:int -> float
(** [average_cycles / io_latency_cycles]: the measured ε of the
    address-translation cost model for this table and access
    pattern.

    @raise Invalid_argument if [io_latency_cycles <= 0]. *)
