open Atp_util
open Atp_paging
module Obs = Atp_obs

type config = {
  ram_pages : int;
  tlb_entries : int;
  huge_size : int;
  epsilon : float;
  tcache_entries : int;
  ram_policy : (module Policy.S);
  tlb_policy : (module Policy.S);
  seed : int;
}

let default_config =
  {
    ram_pages = 1 lsl 18;
    tlb_entries = 1536;
    huge_size = 1;
    epsilon = 0.01;
    tcache_entries = 0;
    ram_policy = (module Lru : Policy.S);
    tlb_policy = (module Lru : Policy.S);
    seed = 42;
  }

type counters = {
  accesses : int;
  tlb_hits : int;
  tlb_misses : int;
  tcache_hits : int;
  page_faults : int;
  ios : int;
}

let cost ~epsilon c = float_of_int c.ios +. (epsilon *. float_of_int c.tlb_misses)

let cost_with_reach ~epsilon ~tcache_epsilon c =
  if tcache_epsilon < 0.0 || tcache_epsilon > epsilon then
    invalid_arg "Machine.cost_with_reach: need 0 <= tcache_epsilon <= epsilon";
  float_of_int c.ios
  +. (epsilon *. float_of_int (c.tlb_misses - c.tcache_hits))
  +. (tcache_epsilon *. float_of_int c.tcache_hits)

type t = {
  cfg : config;
  huge_shift : int;
  tlb : int Atp_tlb.Tlb.t;          (* huge page -> base frame *)
  (* Victima-style victim store: translations the TLB evicts survive
     here (the data-cache hierarchy) and can be recovered at a cost
     between a TLB hit and a full miss.  [None] when disabled. *)
  tcache : int Atp_tlb.Tlb.t option;
  ram : Policy.instance;            (* residency of huge pages *)
  frame_of : Int_table.t;           (* huge page -> base frame *)
  buddy : Buddy.t;
  tr : Obs.Trace.t;
  c_accesses : Obs.Counter.t;
  c_tlb_hits : Obs.Counter.t;
  c_tlb_misses : Obs.Counter.t;
  c_tcache_hits : Obs.Counter.t;
  c_page_faults : Obs.Counter.t;
  c_ios : Obs.Counter.t;
}

let log2_exact n =
  if n < 1 || n land (n - 1) <> 0 then None
  else begin
    let rec go acc v = if v = 1 then acc else go (acc + 1) (v lsr 1) in
    Some (go 0 n)
  end

let create ?obs cfg =
  let huge_shift =
    match log2_exact cfg.huge_size with
    | Some s -> s
    | None -> invalid_arg "Machine.create: huge_size must be a power of two"
  in
  let huge_frames = cfg.ram_pages / cfg.huge_size in
  if huge_frames < 1 then
    invalid_arg "Machine.create: RAM smaller than one huge page";
  if cfg.tcache_entries < 0 then
    invalid_arg "Machine.create: negative tcache_entries";
  let rng = Prng.create ~seed:cfg.seed () in
  let obs = match obs with Some o -> o | None -> Obs.Scope.null () in
  (* Keep the obs snapshot byte-identical to a pre-tier machine when
     the tier is off: its counter then lives in a throwaway registry. *)
  let tcache_obs =
    if cfg.tcache_entries > 0 then obs else Obs.Scope.null ()
  in
  {
    cfg;
    huge_shift;
    tlb =
      Atp_tlb.Tlb.create ~policy:cfg.tlb_policy ~rng:(Prng.split rng)
        ~obs:(Obs.Scope.sub obs "tlb") ~entries:cfg.tlb_entries ();
    tcache =
      (if cfg.tcache_entries > 0 then
         Some
           (Atp_tlb.Tlb.create
              ~obs:(Obs.Scope.sub tcache_obs "tcache")
              ~entries:cfg.tcache_entries ())
       else None);
    ram = Policy.instantiate cfg.ram_policy ~rng:(Prng.split rng)
            ~capacity:huge_frames ();
    frame_of = Int_table.create ();
    buddy = Buddy.create ~frames:cfg.ram_pages;
    tr = Obs.Scope.tracer obs;
    c_accesses = Obs.Scope.counter obs "accesses";
    c_tlb_hits = Obs.Scope.counter obs "tlb_hits";
    c_tlb_misses = Obs.Scope.counter obs "tlb_misses";
    c_tcache_hits = Obs.Scope.counter tcache_obs "tcache_hits";
    c_page_faults = Obs.Scope.counter obs "page_faults";
    c_ios = Obs.Scope.counter obs "ios";
  }

let config t = t.cfg

let counters t =
  {
    accesses = Obs.Counter.value t.c_accesses;
    tlb_hits = Obs.Counter.value t.c_tlb_hits;
    tlb_misses = Obs.Counter.value t.c_tlb_misses;
    tcache_hits = Obs.Counter.value t.c_tcache_hits;
    page_faults = Obs.Counter.value t.c_page_faults;
    ios = Obs.Counter.value t.c_ios;
  }

let reset_counters t =
  Obs.Counter.reset t.c_accesses;
  Obs.Counter.reset t.c_tlb_hits;
  Obs.Counter.reset t.c_tlb_misses;
  Obs.Counter.reset t.c_tcache_hits;
  Obs.Counter.reset t.c_page_faults;
  Obs.Counter.reset t.c_ios

let resident_pages t = t.ram.Policy.size () * t.cfg.huge_size

(* Bring the huge page containing [hu] into RAM if absent, paying h
   IOs on a fault; returns its base frame. *)
let ensure_resident t hu =
  match t.ram.Policy.access hu with
  | Policy.Hit -> Int_table.find_exn t.frame_of hu
  | Policy.Miss { evicted } ->
    (match evicted with
     | None -> ()
     | Some victim ->
       let base = Int_table.find_exn t.frame_of victim in
       ignore (Int_table.remove t.frame_of victim);
       Buddy.free t.buddy ~base ~order:t.huge_shift;
       Obs.Trace.record t.tr Obs.Event.Eviction victim hu;
       (* The victim's translation is stale: shoot it down (free) —
          in the cache-resident tier too, or it would keep serving a
          dead mapping. *)
       ignore (Atp_tlb.Tlb.invalidate t.tlb victim);
       (match t.tcache with
        | Some tc -> ignore (Atp_tlb.Tlb.invalidate tc victim)
        | None -> ()));
    let base =
      match Buddy.alloc t.buddy ~order:t.huge_shift with
      | Some base -> base
      | None ->
        (* With uniform huge pages the buddy cannot fragment; running
           out means the policy overcommitted, which is a bug. *)
        assert false
    in
    Int_table.set t.frame_of hu base;
    Obs.Counter.incr t.c_page_faults;
    Obs.Counter.add t.c_ios t.cfg.huge_size;
    Obs.Trace.record t.tr Obs.Event.Io hu t.cfg.huge_size;
    base

(* A TLB insert's victim falls into the cache-resident victim store
   instead of vanishing (Victima caches TLB-evicted PTEs). *)
let fill_tlb t hu base =
  match (Atp_tlb.Tlb.insert t.tlb hu base, t.tcache) with
  | Some (victim, victim_base), Some tc ->
    ignore (Atp_tlb.Tlb.insert tc victim victim_base)
  | (Some _ | None), _ -> ()

let access t vpage =
  if vpage < 0 then invalid_arg "Machine.access: negative page";
  let hu = vpage lsr t.huge_shift in
  match Atp_tlb.Tlb.lookup t.tlb hu with
  | Some _base ->
    (* TLB hit implies residency (entries are shot down on eviction),
       but RAM recency must still see the access, as the paper's
       simulator does — otherwise the RAM LRU order would be driven
       only by TLB misses. *)
    (match t.ram.Policy.access hu with
     | Policy.Hit -> ()
     | Policy.Miss _ -> assert false);
    Obs.Counter.incr t.c_accesses;
    Obs.Counter.incr t.c_tlb_hits
  | None ->
    Obs.Counter.incr t.c_accesses;
    Obs.Counter.incr t.c_tlb_misses;
    (match t.tcache with
     | Some tc when Atp_tlb.Tlb.mem tc hu ->
       (* Recovered from the cache hierarchy: still a TLB miss, but a
          cheap one (cost_with_reach charges tcache_epsilon, not
          epsilon).  A tcache entry implies residency — eviction shoots
          the tier down — so no IO can be due. *)
       Obs.Counter.incr t.c_tcache_hits;
       let base =
         match Atp_tlb.Tlb.lookup tc hu with
         | Some base -> base
         | None -> assert false
       in
       (match t.ram.Policy.access hu with
        | Policy.Hit -> ()
        | Policy.Miss _ -> assert false);
       (* Exclusive: the recovered translation migrates back up. *)
       ignore (Atp_tlb.Tlb.invalidate tc hu);
       fill_tlb t hu base
     | Some _ | None ->
       let base = ensure_resident t hu in
       fill_tlb t hu base)

let run ?warmup t trace =
  (match warmup with
   | Some w -> Array.iter (access t) w
   | None -> ());
  reset_counters t;
  Atp_tlb.Tlb.reset_stats t.tlb;
  Array.iter (access t) trace;
  counters t

let pp_counters ppf c =
  Format.fprintf ppf
    "accesses=%a tlb-hits=%a tlb-misses=%a tcache-hits=%a faults=%a ios=%a"
    Stats.pp_count c.accesses Stats.pp_count c.tlb_hits Stats.pp_count
    c.tlb_misses Stats.pp_count c.tcache_hits Stats.pp_count c.page_faults
    Stats.pp_count c.ios
