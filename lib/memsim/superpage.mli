(** Reservation-based superpages (Navarro et al., OSDI 2002).

    The other practical huge-page design Section 7 discusses: on the
    first touch of a region the OS {e reserves} a full aligned block
    of frames, so later touches land contiguously and promotion to a
    superpage is free — no copying, no compaction.  The price is
    over-allocation: a reservation holds [huge_size] frames while only
    some are populated ("reduced RAM utilization"), and under pressure
    partial reservations are {e preempted} — their unused frames
    reclaimed, their populated pages downgraded to base pages.
    Promoted superpages remain indivisible mapping units.

    Counters expose exactly the costs the paper attributes to physical
    huge pages: fill IOs, preemptions, waste (reserved-but-unused
    frames), and whole-superpage evictions. *)

type config = {
  ram_pages : int;
  base_tlb_entries : int;
  huge_tlb_entries : int;
  huge_size : int;
  epsilon : float;
}

val default_config : config

type counters = {
  accesses : int;
  tlb_misses : int;
  ios : int;
  faults : int;
  reservations : int;
  promotions : int;
  preemptions : int;
  huge_evictions : int;
}

type t

val create : config -> t
(** @raise Invalid_argument unless [huge_size] is a power of two
    (at least 2) no larger than RAM. *)

val access : t -> int -> unit
(** @raise Invalid_argument if the page is negative. *)

val counters : t -> counters

val reset_counters : t -> unit

val resident_pages : t -> int
(** Populated pages (excludes reserved-but-unused frames). *)

val reserved_unused_frames : t -> int
(** Current waste: frames held by reservations but not populated. *)

val promoted_regions : t -> int

val run : ?warmup:int array -> t -> int array -> counters

val cost : epsilon:float -> counters -> float

val pp_counters : Format.formatter -> counters -> unit
