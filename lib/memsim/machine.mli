(** The trace-driven TLB+RAM simulator of Section 6.

    Configuration matches the paper's experiments: a fully associative
    TLB with ℓ entries managed by LRU, RAM managed by LRU, a base page
    of 4 KiB, and a huge-page size [h ∈ {1, 2, 4, …}] in base pages.
    Each TLB entry covers [h] virtually contiguous pages that map to
    [h] physically contiguous, aligned frames; consequently each page
    fault moves [h] pages at a cost of [h] IOs (page-fault
    amplification), and RAM is allocated in aligned order-[log2 h]
    blocks from a buddy allocator.

    Costs follow the address-translation cost model: an IO costs 1, a
    TLB miss costs ε, a TLB hit costs 0, and evictions are free. *)

type config = {
  ram_pages : int;  (** P, in base pages *)
  tlb_entries : int;  (** ℓ *)
  huge_size : int;  (** h, a power of two, in base pages *)
  epsilon : float;  (** ε, the TLB-miss cost *)
  tcache_entries : int;
      (** capacity of the Victima-style cache-resident victim store
          behind the TLB; 0 disables it (default 0), keeping
          behaviour and obs output byte-identical to the two-level
          model *)
  ram_policy : (module Atp_paging.Policy.S);
  tlb_policy : (module Atp_paging.Policy.S);
  seed : int;
}

val default_config : config
(** 1536 TLB entries, LRU everywhere, ε = 0.01, h = 1, reach extension
    off; RAM size must be set per experiment. *)

type counters = {
  accesses : int;
  tlb_hits : int;
  tlb_misses : int;
  tcache_hits : int;
      (** the subset of [tlb_misses] recovered from the cache-resident
          victim store instead of paying a full miss *)
  page_faults : int;  (** huge-unit faults *)
  ios : int;  (** base-page IOs: [huge_size] per fault *)
}

val cost : epsilon:float -> counters -> float
(** [ios + ε * tlb_misses]: the paper's model, which charges every
    TLB miss the full ε regardless of reach extension. *)

val cost_with_reach : epsilon:float -> tcache_epsilon:float -> counters -> float
(** [ios + ε·(tlb_misses − tcache_hits) + tcache_ε·tcache_hits]: the
    reach-extended cost model, where a miss recovered from the
    cache-resident tier costs [tcache_epsilon] instead of ε.  Equal to
    {!cost} when the tier is disabled ([tcache_hits = 0]).

    @raise Invalid_argument unless [0 <= tcache_epsilon <= epsilon]. *)

type t

val create : ?obs:Atp_obs.Scope.t -> config -> t
(** Raises [Invalid_argument] if [huge_size] is not a power of two, or
    if fewer than one huge page fits in RAM.  [obs] registers
    [accesses]/[tlb_hits]/[tlb_misses]/[page_faults]/[ios] counters
    (mirroring {!counters}) plus the TLB's own under the sub-scope
    [tlb], and emits [io]/[eviction] trace events.  When the reach
    tier is enabled it additionally registers [tcache_hits] and the
    tier's TLB counters under [tcache]; when disabled those names are
    absent from the snapshot.

    @raise Invalid_argument unless [huge_size] is a power of two no
    larger than RAM and [tcache_entries >= 0]. *)

val config : t -> config

val access : t -> int -> unit
(** Service one virtual base-page reference.

    @raise Invalid_argument if [vpage < 0]. *)

val counters : t -> counters

val reset_counters : t -> unit
(** Zero the counters ({!counters} is a view of the registered obs
    counters, the only store) but keep
    TLB/RAM state: used to separate warmup from measurement, as the
    paper's experiments do. *)

val resident_pages : t -> int
(** Base pages currently in RAM ([h] times the resident huge units). *)

val run : ?warmup:int array -> t -> int array -> counters
(** [run ~warmup t trace] plays the warmup (counters discarded), then
    the trace, returning the measured counters. *)

val pp_counters : Format.formatter -> counters -> unit
