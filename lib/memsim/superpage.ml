open Atp_util

type config = {
  ram_pages : int;
  base_tlb_entries : int;
  huge_tlb_entries : int;
  huge_size : int;
  epsilon : float;
}

let default_config =
  {
    ram_pages = 1 lsl 18;
    base_tlb_entries = 1536;
    huge_tlb_entries = 16;
    huge_size = 512;
    epsilon = 0.01;
  }

type counters = {
  accesses : int;
  tlb_misses : int;
  ios : int;
  faults : int;
  reservations : int;
  promotions : int;
  preemptions : int;
  huge_evictions : int;
}

let zero =
  {
    accesses = 0;
    tlb_misses = 0;
    ios = 0;
    faults = 0;
    reservations = 0;
    promotions = 0;
    preemptions = 0;
    huge_evictions = 0;
  }

type reservation = {
  base_frame : int;
  populated : Bitvec.t;
  mutable count : int;
}

(* LRU unit ids: partial reservation r -> 3r, promoted region r ->
   3r+1, base page v -> 3v+2. *)
let partial_unit r = 3 * r

let promoted_unit r = (3 * r) + 1

let base_unit v = (3 * v) + 2

type t = {
  cfg : config;
  huge_shift : int;
  buddy : Buddy.t;
  partial : reservation Int_table.Poly.t;  (* region -> reservation *)
  partial_order : Page_list.t;  (* regions, oldest at back: preemption order *)
  promoted : Int_table.t;  (* region -> base frame *)
  base_frames : Int_table.t;  (* vpage -> frame *)
  lru : Page_list.t;  (* mixed unit ids *)
  tlb : int Atp_tlb.Split.t;
  mutable counters : counters;
}

let log2_exact n =
  if n < 1 || n land (n - 1) <> 0 then None
  else begin
    let rec go acc v = if v = 1 then acc else go (acc + 1) (v lsr 1) in
    Some (go 0 n)
  end

let create cfg =
  let huge_shift =
    match log2_exact cfg.huge_size with
    | Some s when s >= 1 -> s
    | _ -> invalid_arg "Superpage.create: huge_size must be a power of two >= 2"
  in
  if cfg.ram_pages < cfg.huge_size then
    invalid_arg "Superpage.create: RAM smaller than one superpage";
  {
    cfg;
    huge_shift;
    buddy = Buddy.create ~frames:cfg.ram_pages;
    partial = Int_table.Poly.create ~initial_capacity:64 ();
    partial_order = Page_list.create ();
    promoted = Int_table.create ();
    base_frames = Int_table.create ();
    lru = Page_list.create ();
    tlb =
      Atp_tlb.Split.create
        ~levels:
          [
            { Atp_tlb.Split.shift = 0; entries = cfg.base_tlb_entries };
            { Atp_tlb.Split.shift = huge_shift; entries = cfg.huge_tlb_entries };
          ]
        ();
    counters = zero;
  }

let counters t = t.counters

let reset_counters t = t.counters <- zero

let resident_pages t =
  Int_table.length t.base_frames
  + (Int_table.length t.promoted * t.cfg.huge_size)
  + Int_table.Poly.fold (fun _ res acc -> acc + res.count) t.partial 0

let reserved_unused_frames t =
  Int_table.Poly.fold
    (fun _ res acc -> acc + (t.cfg.huge_size - res.count))
    t.partial 0

let promoted_regions t = Int_table.length t.promoted

let region_of t v = v lsr t.huge_shift

(* Preempt a partial reservation: unused frames return to the buddy;
   populated pages become ordinary base pages at their current frames
   (no copying — that is the scheme's advantage over THP). *)
let preempt t r =
  match Int_table.Poly.find t.partial r with
  | None -> ()
  | Some res ->
    ignore (Int_table.Poly.remove t.partial r);
    ignore (Page_list.remove t.partial_order r);
    ignore (Page_list.remove t.lru (partial_unit r));
    let base_v = r lsl t.huge_shift in
    for off = 0 to t.cfg.huge_size - 1 do
      if Bitvec.get res.populated off then begin
        Int_table.set t.base_frames (base_v + off) (res.base_frame + off);
        Page_list.push_front t.lru (base_unit (base_v + off))
      end
      else
        (* An unused frame inside the reservation block: free it
           individually. *)
        Buddy.free t.buddy ~base:(res.base_frame + off) ~order:0
    done;
    t.counters <- { t.counters with preemptions = t.counters.preemptions + 1 }

(* A reservation is one aligned order-[huge_shift] block, immediately
   re-registered as singles so preemption can free the unused slots
   piecemeal while populated pages keep their frames (no copying). *)
let alloc_reservation_block t =
  match Buddy.alloc t.buddy ~order:t.huge_shift with
  | None -> None
  | Some base ->
    Buddy.split_allocated t.buddy ~base ~order:t.huge_shift;
    Some base

let evict_lru_unit t =
  match Page_list.pop_back t.lru with
  | None -> failwith "Superpage: nothing to evict"
  | Some unit_id ->
    let kind = unit_id mod 3 in
    let id = unit_id / 3 in
    if kind = 0 then
      (* Least-recently-used partial reservation: preempt it (frees
         its unused frames) rather than dropping resident data. *)
      preempt t id
    else if kind = 1 then begin
      let base = Int_table.find_exn t.promoted id in
      ignore (Int_table.remove t.promoted id);
      for off = 0 to t.cfg.huge_size - 1 do
        Buddy.free t.buddy ~base:(base + off) ~order:0
      done;
      Atp_tlb.Split.invalidate_page t.tlb (id lsl t.huge_shift);
      t.counters <-
        { t.counters with huge_evictions = t.counters.huge_evictions + 1 }
    end
    else begin
      let frame = Int_table.find_exn t.base_frames id in
      ignore (Int_table.remove t.base_frames id);
      Buddy.free t.buddy ~base:frame ~order:0;
      Atp_tlb.Split.invalidate_page t.tlb id
    end

(* Promoted blocks are freed as singles (see above), so they are
   allocated as singles too; track them via Int_table only. *)

let rec alloc_single_with_pressure t =
  match Buddy.alloc t.buddy ~order:0 with
  | Some f -> f
  | None ->
    evict_lru_unit t;
    alloc_single_with_pressure t

let fault_io t =
  t.counters <-
    { t.counters with
      ios = t.counters.ios + 1;
      faults = t.counters.faults + 1 }

let populate t r res off =
  Bitvec.set res.populated off;
  res.count <- res.count + 1;
  fault_io t;
  if res.count = t.cfg.huge_size then begin
    (* Fully populated: promotion is free (already contiguous). *)
    ignore (Int_table.Poly.remove t.partial r);
    ignore (Page_list.remove t.partial_order r);
    ignore (Page_list.remove t.lru (partial_unit r));
    Int_table.set t.promoted r res.base_frame;
    Page_list.push_front t.lru (promoted_unit r);
    let base_v = r lsl t.huge_shift in
    (* Shoot down the constituents' base entries. *)
    for v = base_v to base_v + t.cfg.huge_size - 1 do
      Atp_tlb.Split.invalidate_page t.tlb v
    done;
    ignore
      (Atp_tlb.Split.insert t.tlb ~shift:t.huge_shift base_v res.base_frame);
    t.counters <- { t.counters with promotions = t.counters.promotions + 1 }
  end

let try_reserve t r =
  match alloc_reservation_block t with
  | Some base -> Some base
  | None ->
    (* Preempt the oldest partial reservation and retry once. *)
    (match Page_list.back t.partial_order with
     | Some oldest when oldest <> r ->
       preempt t oldest;
       alloc_reservation_block t
     | Some _ | None -> None)

let access t v =
  if v < 0 then invalid_arg "Superpage.access: negative page";
  t.counters <- { t.counters with accesses = t.counters.accesses + 1 };
  let r = region_of t v in
  match Atp_tlb.Split.lookup t.tlb v with
  | Some (_, shift) ->
    let unit_id =
      if shift = 0 then
        if Int_table.Poly.mem t.partial r then partial_unit r else base_unit v
      else promoted_unit r
    in
    if Page_list.mem t.lru unit_id then Page_list.move_to_front t.lru unit_id
  | None ->
    t.counters <- { t.counters with tlb_misses = t.counters.tlb_misses + 1 };
    (match Int_table.find t.promoted r with
     | Some base ->
       ignore
         (Atp_tlb.Split.insert t.tlb ~shift:t.huge_shift (r lsl t.huge_shift)
            base);
       Page_list.move_to_front t.lru (promoted_unit r)
     | None ->
       (match Int_table.Poly.find t.partial r with
        | Some res ->
          let off = v land (t.cfg.huge_size - 1) in
          if not (Bitvec.get res.populated off) then populate t r res off;
          (* After promotion the huge entry covers v; otherwise fill a
             base entry. *)
          if Int_table.mem t.promoted r then
            Page_list.move_to_front t.lru (promoted_unit r)
          else begin
            ignore
              (Atp_tlb.Split.insert t.tlb ~shift:0 v (res.base_frame + off));
            Page_list.move_to_front t.lru (partial_unit r)
          end
        | None ->
          (match Int_table.find t.base_frames v with
           | Some frame ->
             ignore (Atp_tlb.Split.insert t.tlb ~shift:0 v frame);
             Page_list.move_to_front t.lru (base_unit v)
           | None ->
             (* First touch of the region: try to reserve. *)
             (match try_reserve t r with
              | Some base ->
                let res =
                  {
                    base_frame = base;
                    populated = Bitvec.create t.cfg.huge_size;
                    count = 0;
                  }
                in
                Int_table.Poly.set t.partial r res;
                Page_list.push_front t.partial_order r;
                Page_list.push_front t.lru (partial_unit r);
                t.counters <-
                  { t.counters with reservations = t.counters.reservations + 1 };
                let off = v land (t.cfg.huge_size - 1) in
                populate t r res off;
                if not (Int_table.mem t.promoted r) then
                  ignore
                    (Atp_tlb.Split.insert t.tlb ~shift:0 v (base + off))
              | None ->
                (* No contiguous block available: plain base page. *)
                let frame = alloc_single_with_pressure t in
                Int_table.set t.base_frames v frame;
                Page_list.push_front t.lru (base_unit v);
                fault_io t;
                ignore (Atp_tlb.Split.insert t.tlb ~shift:0 v frame)))))

let run ?warmup t trace =
  (match warmup with
   | Some w -> Array.iter (access t) w
   | None -> ());
  reset_counters t;
  Array.iter (access t) trace;
  counters t

let cost ~epsilon c =
  float_of_int c.ios +. (epsilon *. float_of_int c.tlb_misses)

let pp_counters ppf c =
  Format.fprintf ppf
    "accesses=%a tlb-misses=%a ios=%a faults=%a reservations=%a promotions=%a \
     preemptions=%a huge-evictions=%a"
    Stats.pp_count c.accesses Stats.pp_count c.tlb_misses Stats.pp_count c.ios
    Stats.pp_count c.faults Stats.pp_count c.reservations Stats.pp_count
    c.promotions Stats.pp_count c.preemptions Stats.pp_count c.huge_evictions
