(** A transparent-huge-pages (THP) operating-system model.

    Linux-style THP is the practical face of the tradeoff this paper
    formalizes: pages fault in at base granularity, and the OS
    opportunistically {e promotes} an aligned region to a physical
    huge page once enough of it is resident — if the buddy allocator
    can produce a contiguous aligned block, which may require evicting
    in-the-way pages (compaction; the paper's fragmentation cost).
    Promoted regions are indivisible: they are evicted whole, and the
    missing constituents are fetched at promotion time (page-fault
    amplification).  Vendors of several databases recommend disabling
    THP outright; this module lets the benchmarks show why, next to
    the decoupled scheme that removes the dilemma.

    The TLB is a split TLB: one level for base pages, one for huge
    pages, as in real hardware. *)

type config = {
  ram_pages : int;
  base_tlb_entries : int;
  huge_tlb_entries : int;
  huge_size : int;  (** pages per huge page; power of two *)
  promote_fraction : float;  (** resident fraction triggering promotion *)
  max_compaction_evictions : int;
      (** eviction budget per promotion attempt before giving up *)
  epsilon : float;
}

val default_config : config
(** 1 GiB RAM, 1536/16 TLB entries (Cascade-Lake-like), 512-page huge
    pages, promote at 90% residency, compaction budget 64. *)

type counters = {
  accesses : int;
  tlb_misses : int;
  ios : int;  (** base-page IOs, including promotion fills *)
  faults : int;
  promotions : int;
  promotion_fill_ios : int;  (** IOs spent completing promoted regions *)
  compaction_evictions : int;  (** resident pages evicted to make room *)
  huge_evictions : int;  (** promoted regions evicted whole *)
}

type t

val create : config -> t
(** @raise Invalid_argument unless [huge_size] is a power of two (at
    least 2) no larger than RAM and [promote_fraction] is in [0, 1]. *)

val config : t -> config

val access : t -> int -> unit
(** @raise Invalid_argument if the page is negative. *)

val counters : t -> counters

val reset_counters : t -> unit

val resident_pages : t -> int

val promoted_regions : t -> int

val run : ?warmup:int array -> t -> int array -> counters

val cost : epsilon:float -> counters -> float
(** [ios + ε·tlb_misses]. *)

val pp_counters : Format.formatter -> counters -> unit
