open Atp_util
open Atp_paging

type config = {
  cores : int;
  ram_pages : int;
  tlb_entries_per_core : int;
  huge_size : int;
  epsilon : float;
  ipi_epsilon : float;
  tcache_entries : int;
  tcache_epsilon : float;
}

let default_config =
  {
    cores = 4;
    ram_pages = 1 lsl 18;
    tlb_entries_per_core = 384;
    huge_size = 1;
    epsilon = 0.01;
    ipi_epsilon = 0.01;
    tcache_entries = 0;
    tcache_epsilon = 0.003;
  }

type counters = {
  accesses : int;
  tlb_misses : int;
  tcache_hits : int;
  ios : int;
  shootdown_events : int;
  ipis : int;
}

let zero =
  {
    accesses = 0;
    tlb_misses = 0;
    tcache_hits = 0;
    ios = 0;
    shootdown_events = 0;
    ipis = 0;
  }

type t = {
  cfg : config;
  huge_shift : int;
  tlbs : int Atp_tlb.Tlb.t array;  (* per core: huge page -> base frame *)
  (* One shared cache-resident victim store (the LLC is shared, unlike
     the per-core TLBs): TLB-evicted translations from every core land
     here and any core can recover them.  [None] when disabled. *)
  tcache : int Atp_tlb.Tlb.t option;
  ram : Policy.instance;  (* shared residency of huge units *)
  frame_of : Int_table.t;
  buddy : Buddy.t;
  mutable counters : counters;
}

let log2_exact n =
  if n < 1 || n land (n - 1) <> 0 then None
  else begin
    let rec go acc v = if v = 1 then acc else go (acc + 1) (v lsr 1) in
    Some (go 0 n)
  end

let create cfg =
  let huge_shift =
    match log2_exact cfg.huge_size with
    | Some s -> s
    | None -> invalid_arg "Smp.create: huge_size must be a power of two"
  in
  if cfg.cores < 1 then invalid_arg "Smp.create: need at least one core";
  if cfg.tcache_entries < 0 then
    invalid_arg "Smp.create: negative tcache_entries";
  let huge_frames = cfg.ram_pages / cfg.huge_size in
  if huge_frames < 1 then invalid_arg "Smp.create: RAM too small";
  {
    cfg;
    huge_shift;
    tlbs =
      Array.init cfg.cores (fun _ ->
          Atp_tlb.Tlb.create ~entries:cfg.tlb_entries_per_core ());
    tcache =
      (if cfg.tcache_entries > 0 then
         Some (Atp_tlb.Tlb.create ~entries:cfg.tcache_entries ())
       else None);
    ram = Policy.instantiate (module Lru) ~capacity:huge_frames ();
    frame_of = Int_table.create ();
    buddy = Buddy.create ~frames:cfg.ram_pages;
    counters = zero;
  }

let counters t = t.counters

let reset_counters t = t.counters <- zero

(* Invalidate a victim's translation on every core; remote cores that
   held it receive an IPI (the initiator flushes locally for free).
   The shared cache-resident tier is shot down too — a reach-extended
   system that skipped this would serve dead mappings after the unmap
   (no IPI: the store is shared, so one local invalidation covers every
   core). *)
let shootdown t ~initiator hu =
  let remote = ref 0 in
  let local = ref false in
  Array.iteri
    (fun core tlb ->
      if Atp_tlb.Tlb.invalidate tlb hu then
        if core = initiator then local := true else incr remote)
    t.tlbs;
  let in_tcache =
    match t.tcache with
    | Some tc -> Atp_tlb.Tlb.invalidate tc hu
    | None -> false
  in
  if !remote > 0 || !local || in_tcache then
    t.counters <-
      {
        t.counters with
        shootdown_events = t.counters.shootdown_events + 1;
        ipis = t.counters.ipis + !remote;
      }

let ensure_resident t ~initiator hu =
  match t.ram.Policy.access hu with
  | Policy.Hit -> Int_table.find_exn t.frame_of hu
  | Policy.Miss { evicted } ->
    (match evicted with
     | None -> ()
     | Some victim ->
       let base = Int_table.find_exn t.frame_of victim in
       ignore (Int_table.remove t.frame_of victim);
       Buddy.free t.buddy ~base ~order:t.huge_shift;
       shootdown t ~initiator victim);
    let base =
      match Buddy.alloc t.buddy ~order:t.huge_shift with
      | Some base -> base
      | None -> assert false
    in
    Int_table.set t.frame_of hu base;
    t.counters <- { t.counters with ios = t.counters.ios + t.cfg.huge_size };
    base

(* Fill one core's TLB; the evicted translation falls into the shared
   cache-resident store rather than vanishing (Victima: TLB-evicted
   PTEs are cached in the LLC). *)
let fill_tlb t tlb hu base =
  match (Atp_tlb.Tlb.insert tlb hu base, t.tcache) with
  | Some (victim, victim_base), Some tc ->
    ignore (Atp_tlb.Tlb.insert tc victim victim_base)
  | (Some _ | None), _ -> ()

let access t ~core vpage =
  if core < 0 || core >= t.cfg.cores then invalid_arg "Smp.access: bad core";
  if vpage < 0 then invalid_arg "Smp.access: negative page";
  let hu = vpage lsr t.huge_shift in
  let tlb = t.tlbs.(core) in
  t.counters <- { t.counters with accesses = t.counters.accesses + 1 };
  match Atp_tlb.Tlb.lookup tlb hu with
  | Some _ ->
    (* Keep shared-RAM recency in step with every access (a TLB hit on
       any core still touches the page). *)
    (match t.ram.Policy.access hu with
     | Policy.Hit -> ()
     | Policy.Miss _ -> assert false)
  | None ->
    t.counters <- { t.counters with tlb_misses = t.counters.tlb_misses + 1 };
    (match t.tcache with
     | Some tc when Atp_tlb.Tlb.mem tc hu ->
       (* Recovered from the shared store: a cheap miss (tcache_ε, not
          ε), and an entry implies residency because shootdowns
          invalidate the store. *)
       t.counters <-
         { t.counters with tcache_hits = t.counters.tcache_hits + 1 };
       let base =
         match Atp_tlb.Tlb.lookup tc hu with
         | Some base -> base
         | None -> assert false
       in
       (match t.ram.Policy.access hu with
        | Policy.Hit -> ()
        | Policy.Miss _ -> assert false);
       ignore (Atp_tlb.Tlb.invalidate tc hu);
       fill_tlb t tlb hu base
     | Some _ | None ->
       let base = ensure_resident t ~initiator:core hu in
       fill_tlb t tlb hu base)

let cost cfg c =
  if cfg.tcache_epsilon < 0.0 || cfg.tcache_epsilon > cfg.epsilon then
    invalid_arg "Smp.cost: need 0 <= tcache_epsilon <= epsilon";
  float_of_int c.ios
  +. (cfg.epsilon *. float_of_int (c.tlb_misses - c.tcache_hits))
  +. (cfg.tcache_epsilon *. float_of_int c.tcache_hits)
  +. (cfg.ipi_epsilon *. float_of_int c.ipis)

let run_with assign ?warmup t trace =
  (match warmup with
   | Some w -> Array.iteri (fun i page -> access t ~core:(assign t i page) page) w
   | None -> ());
  reset_counters t;
  Array.iteri (fun i page -> access t ~core:(assign t i page) page) trace;
  counters t

let run_shared ?warmup t trace =
  run_with (fun t i _page -> i mod t.cfg.cores) ?warmup t trace

let run_partitioned ?warmup t trace =
  run_with
    (fun t _i page -> Hashing.hash_in ~seed:0x5135 t.cfg.cores (page lsr t.huge_shift))
    ?warmup t trace

let pp_counters ppf c =
  Format.fprintf ppf
    "accesses=%a tlb-misses=%a tcache-hits=%a ios=%a shootdowns=%a ipis=%a"
    Stats.pp_count c.accesses Stats.pp_count c.tlb_misses Stats.pp_count
    c.tcache_hits Stats.pp_count c.ios Stats.pp_count c.shootdown_events
    Stats.pp_count c.ipis
