(** A binary buddy allocator over physical page frames.

    Physical huge pages must be contiguous {e and aligned} in RAM;
    this is the allocator an OS uses to find such runs, and the place
    where fragmentation — the paper's third cost of physical huge
    pages — becomes visible: a request for order [r] can fail even
    when [2^r] frames are free, if they are not a single aligned run. *)

type t

val create : frames:int -> t
(** All frames start free.  [frames] need not be a power of two; the
    span is decomposed into maximal aligned blocks.

    @raise Invalid_argument if [frames < 1]. *)

val frames : t -> int

val free_frames : t -> int

val used_frames : t -> int

val alloc : t -> order:int -> int option
(** [alloc t ~order] returns the base frame of a free, aligned block of
    [2^order] frames, or [None] if no such block exists (possibly due
    to fragmentation).  Splits larger blocks as needed.

    @raise Invalid_argument if [order < 0]. *)

val free : t -> base:int -> order:int -> unit
(** Return a block; coalesces with its buddy recursively.  Raises
    [Invalid_argument] if the block is not currently allocated exactly
    so.

    @raise Invalid_argument if the block is not allocated or the order
    does not match the allocation. *)

val split_allocated : t -> base:int -> order:int -> unit
(** Re-register a live order-[order] allocation as [2^order] live
    order-0 allocations (bookkeeping only; no frames move).  Lets a
    reservation-based superpage system release the unused slots of a
    block piecemeal.  Raises [Invalid_argument] if the block is not
    allocated at exactly that order.

    @raise Invalid_argument if the block is not allocated or the
    order does not match the allocation. *)

val largest_free_order : t -> int option
(** Largest order with a free block: an external-fragmentation probe. *)

val check_invariants : t -> unit
(** For tests: raises [Failure] if internal accounting is inconsistent
    (overlapping free blocks, wrong totals).

    @raise Failure on a violated invariant: overlapping blocks, a
    coverage gap, an out-of-bounds block, or a free-count mismatch. *)
