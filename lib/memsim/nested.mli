(** Two-dimensional (virtualized) address translation.

    In a virtual machine every guest-virtual access translates twice:
    the guest page table maps gVA→gPA, and each step of that walk —
    the guest's page-table nodes live in guest-physical memory — must
    itself be translated gPA→hPA by the host table.  On x86 this is
    the (m+1)(n+1)-1 = 24-access nested walk; the paper's introduction
    cites it as squaring the worst-case TLB-miss cost.

    This module composes two {!Page_table}s, gives the host dimension
    its own {!Walker} (whose PWC plays the role of the nested-walk
    caches) and a host TLB for gPA→hPA, and reports the end-to-end
    walk cost so the effective ε under virtualization can be measured
    against the bare-metal ε of {!Walker}. *)

type result = {
  hframe : int option;  (** final host-physical frame, if fully mapped *)
  memory_accesses : int;  (** total accesses across both dimensions *)
  cycles : int;
}

type stats = {
  walks : int;
  total_cycles : int;
  total_memory_accesses : int;
  host_tlb_hits : int;
}

type t

val create :
  ?config:Walker.config -> ?host_tlb_entries:int -> unit -> t
(** [host_tlb_entries] defaults to 64 (a nested-TLB size).  Guest
    page-table nodes are assigned guest-physical homes and host-mapped
    automatically, as a hypervisor would back guest memory. *)

val guest_map : t -> gva:int -> gpa:int -> unit
(** Install a guest base-page translation. *)

val host_map : t -> gpa:int -> hpa:int -> unit
(** Back a guest-physical page with a host frame. *)

val guest_unmap : t -> gva:int -> bool

val translate : t -> int -> result
(** The full nested walk for a guest-virtual page.  Guest-physical
    pages without a host mapping are backed on demand (identity), so a
    [None] result means the {e guest} mapping is absent. *)

val stats : t -> stats

val average_cycles : t -> float

val epsilon : t -> io_latency_cycles:int -> float
(** @raise Invalid_argument if [io_latency_cycles <= 0]. *)
