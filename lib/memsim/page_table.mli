(** A hierarchical (radix) page table, x86-64 style.

    The paper's model stores address translations in an in-RAM
    dictionary called the page table; this is the concrete dictionary
    every mainstream MMU implements: a 4-level radix tree with 9 bits
    of virtual page number per level, huge-page leaves permitted at
    the two intermediate levels (the 2 MiB / 1 GiB analogues), and
    per-entry accessed/dirty bits.

    A lookup reports the number of node visits it performed, which is
    exactly the memory-reference count of a hardware page walk — the
    quantity the {!Walker} module turns into a TLB-miss cost ε. *)

type t

type flags = {
  writable : bool;
  accessed : bool;
  dirty : bool;
}

type mapping = {
  frame : int;  (** physical base frame of the mapped page *)
  level : int;  (** 0 = base page; 1, 2 = huge leaves covering [512^level]
                    base pages *)
  flags : flags;
}

val levels : int
(** 4, as on x86-64. *)

val fanout_bits : int
(** 9: each level resolves 9 bits of the virtual page number. *)

val max_vpage : t -> int

val create : unit -> t

val map :
  t -> vpage:int -> frame:int -> ?level:int -> ?writable:bool -> unit -> unit
(** Install a translation.  [level] defaults to 0 (a base page); for
    [level > 0] the virtual page and frame must be aligned to
    [512^level].  Raises [Invalid_argument] on misalignment or if the
    range overlaps an existing mapping at a different level.

    @raise Invalid_argument on a bad leaf level, a page or frame not
    aligned to that level, or a range that overlaps existing mappings. *)

val unmap : t -> vpage:int -> bool
(** Remove the translation covering [vpage] (the whole leaf, if it is
    a huge leaf).  Returns whether anything was mapped. *)

val lookup : t -> int -> mapping option
(** Translation without side effects. *)

val walk : t -> int -> mapping option * int
(** [walk t vpage] is a hardware page walk: returns the mapping (if
    any) and the number of page-table nodes visited, including the
    node where the walk terminated (a huge leaf terminates early, one
    reason large pages make walks cheaper). Sets the accessed bit. *)

val set_dirty : t -> int -> bool
(** Mark the mapping covering the page dirty (a write).  Returns
    whether it was mapped. *)

val clear_accessed : t -> int -> bool
(** Clear the accessed bit (what CLOCK's hand does); the dirty bit is
    untouched.  Returns whether the page was mapped. *)

val mapped_count : t -> int
(** Number of leaf mappings (of any level). *)

val node_count : t -> int
(** Interior nodes allocated: the table's own memory footprint. *)

val iter : (vpage:int -> mapping -> unit) -> t -> unit
(** Visit every leaf mapping, in increasing virtual order. *)
