module Obs = Atp_obs

type config = {
  pwc_entries : int;
  memory_latency : int;
  pwc_latency : int;
}

let default_config = { pwc_entries = 32; memory_latency = 100; pwc_latency = 2 }

type result = {
  mapping : Page_table.mapping option;
  memory_accesses : int;
  cycles : int;
}

type stats = {
  walks : int;
  total_cycles : int;
  total_memory_accesses : int;
  pwc_hits : int;
}

type t = {
  config : config;
  table : Page_table.t;
  (* Key: (skip, vpage prefix).  A hit with skip = g means the top g
     levels of the walk are already resolved. *)
  pwc : unit Atp_tlb.Tlb.t;
  mutable stats : stats;
  c_walks : Obs.Counter.t;
  c_pwc_hits : Obs.Counter.t;
  c_memory_accesses : Obs.Counter.t;
  h_cycles : Obs.Histogram.t;
}

let create ?(config = default_config) ?obs table =
  let obs = match obs with Some o -> o | None -> Obs.Scope.null () in
  {
    config;
    table;
    pwc =
      Atp_tlb.Tlb.create ~obs:(Obs.Scope.sub obs "pwc")
        ~entries:config.pwc_entries ();
    stats = { walks = 0; total_cycles = 0; total_memory_accesses = 0; pwc_hits = 0 };
    c_walks = Obs.Scope.counter obs "walks";
    c_pwc_hits = Obs.Scope.counter obs "pwc_hits";
    c_memory_accesses = Obs.Scope.counter obs "memory_accesses";
    h_cycles = Obs.Scope.histogram obs "walk_cycles";
  }

let key ~skip vpage =
  let bits = (Page_table.levels - skip) * Page_table.fanout_bits in
  ((vpage lsr bits) * 4) lor skip

(* How many node visits the walk needs with no PWC at all: 1 per level
   down to the leaf (or to the empty slot that proves a fault). *)
let natural_visits table vpage =
  let mapping, visits = Page_table.walk table vpage in
  (mapping, visits)

let translate t vpage =
  let mapping, visits = natural_visits t.table vpage in
  (* Probe for the deepest usable prefix; each probe costs pwc_latency
     but only the successful one is a "hit". *)
  let max_skip = min (Page_table.levels - 1) (visits - 1) in
  let rec probe skip probes =
    if skip < 1 then (0, probes)
    else
      match Atp_tlb.Tlb.lookup t.pwc (key ~skip vpage) with
      | Some () -> (skip, probes + 1)
      | None -> probe (skip - 1) (probes + 1)
  in
  let skip, probes = probe max_skip 0 in
  let memory_accesses = max 1 (visits - skip) in
  let cycles =
    (memory_accesses * t.config.memory_latency) + (probes * t.config.pwc_latency)
  in
  (* Fill the PWC with every interior entry this walk resolved, as the
     hardware would. *)
  for g = 1 to max_skip do
    ignore (Atp_tlb.Tlb.insert t.pwc (key ~skip:g vpage) ())
  done;
  let s = t.stats in
  t.stats <-
    {
      walks = s.walks + 1;
      total_cycles = s.total_cycles + cycles;
      total_memory_accesses = s.total_memory_accesses + memory_accesses;
      pwc_hits = (s.pwc_hits + if skip > 0 then 1 else 0);
    };
  Obs.Counter.incr t.c_walks;
  Obs.Counter.add t.c_memory_accesses memory_accesses;
  if skip > 0 then Obs.Counter.incr t.c_pwc_hits;
  Obs.Histogram.observe t.h_cycles cycles;
  { mapping; memory_accesses; cycles }

let invalidate t = Atp_tlb.Tlb.flush t.pwc

let stats t = t.stats

let average_cycles t =
  if t.stats.walks = 0 then 0.0
  else float_of_int t.stats.total_cycles /. float_of_int t.stats.walks

let epsilon t ~io_latency_cycles =
  if io_latency_cycles <= 0 then invalid_arg "Walker.epsilon: bad IO latency";
  average_cycles t /. float_of_int io_latency_cycles
