module Obs = Atp_obs

type tcache_mode =
  | Inclusive
  | Exclusive

type config = {
  pwc_entries : int;
  memory_latency : int;
  pwc_latency : int;
  tcache_entries : int;
  tcache_latency : int;
  tcache_mode : tcache_mode;
}

let default_config =
  {
    pwc_entries = 32;
    memory_latency = 100;
    pwc_latency = 2;
    tcache_entries = 0;
    tcache_latency = 30;
    tcache_mode = Inclusive;
  }

type result = {
  mapping : Page_table.mapping option;
  memory_accesses : int;
  cycles : int;
}

type stats = {
  walks : int;
  total_cycles : int;
  total_memory_accesses : int;
  pwc_hits : int;
  tcache_hits : int;
}

type t = {
  config : config;
  table : Page_table.t;
  (* Key: (skip, vpage prefix).  A hit with skip = g means the top g
     levels of the walk are already resolved. *)
  pwc : unit Atp_tlb.Tlb.t;
  (* The cache-resident PTE store (Victima-style): leaf translations
     living in the data-cache hierarchy, keyed by vpage.  [None] when
     the tier is disabled, so the default configuration stays
     byte-identical to a walker without the tier. *)
  tcache : unit Atp_tlb.Tlb.t option;
  mutable stats : stats;
  c_walks : Obs.Counter.t;
  c_pwc_hits : Obs.Counter.t;
  c_tcache_hits : Obs.Counter.t;
  c_memory_accesses : Obs.Counter.t;
  h_cycles : Obs.Histogram.t;
}

let create ?(config = default_config) ?obs table =
  if config.tcache_entries < 0 then
    invalid_arg "Walker.create: negative tcache_entries";
  let obs = match obs with Some o -> o | None -> Obs.Scope.null () in
  (* When the tier is disabled, its counter lives in a throwaway
     registry so the exported obs snapshot is unchanged from a
     pre-tcache walker. *)
  let tcache_obs =
    if config.tcache_entries > 0 then obs else Obs.Scope.null ()
  in
  {
    config;
    table;
    pwc =
      Atp_tlb.Tlb.create ~obs:(Obs.Scope.sub obs "pwc")
        ~entries:config.pwc_entries ();
    tcache =
      (if config.tcache_entries > 0 then
         Some
           (Atp_tlb.Tlb.create
              ~obs:(Obs.Scope.sub tcache_obs "tcache")
              ~entries:config.tcache_entries ())
       else None);
    stats =
      {
        walks = 0;
        total_cycles = 0;
        total_memory_accesses = 0;
        pwc_hits = 0;
        tcache_hits = 0;
      };
    c_walks = Obs.Scope.counter obs "walks";
    c_pwc_hits = Obs.Scope.counter obs "pwc_hits";
    c_tcache_hits = Obs.Scope.counter tcache_obs "tcache_hits";
    c_memory_accesses = Obs.Scope.counter obs "memory_accesses";
    h_cycles = Obs.Scope.histogram obs "walk_cycles";
  }

let key ~skip vpage =
  let bits = (Page_table.levels - skip) * Page_table.fanout_bits in
  ((vpage lsr bits) * 4) lor skip

(* How many node visits the walk needs with no PWC at all: 1 per level
   down to the leaf (or to the empty slot that proves a fault). *)
let natural_visits table vpage =
  let mapping, visits = Page_table.walk table vpage in
  (mapping, visits)

let record t ~memory_accesses ~cycles ~pwc_hit ~tcache_hit mapping =
  let s = t.stats in
  t.stats <-
    {
      walks = s.walks + 1;
      total_cycles = s.total_cycles + cycles;
      total_memory_accesses = s.total_memory_accesses + memory_accesses;
      pwc_hits = (s.pwc_hits + if pwc_hit then 1 else 0);
      tcache_hits = (s.tcache_hits + if tcache_hit then 1 else 0);
    };
  Obs.Counter.incr t.c_walks;
  Obs.Counter.add t.c_memory_accesses memory_accesses;
  if pwc_hit then Obs.Counter.incr t.c_pwc_hits;
  if tcache_hit then Obs.Counter.incr t.c_tcache_hits;
  Obs.Histogram.observe t.h_cycles cycles;
  { mapping; memory_accesses; cycles }

let translate t vpage =
  let mapping, visits = natural_visits t.table vpage in
  (* The cache-resident PTE store is probed before the radix walk is
     engaged (the MMU finds the leaf PTE directly in the data cache);
     the probe costs its latency whether or not it hits. *)
  let tcache_hit =
    match t.tcache with
    | None -> false
    | Some tc -> (
      match Atp_tlb.Tlb.lookup tc vpage with
      | Some () -> mapping <> None
      | None -> false)
  in
  if tcache_hit then begin
    (* The walk is satisfied from the cache hierarchy: no page-table
       memory access at all.  An exclusive (victim) store hands the
       translation back to the TLB side, so the entry leaves it. *)
    (match (t.config.tcache_mode, t.tcache) with
     | Exclusive, Some tc -> ignore (Atp_tlb.Tlb.invalidate tc vpage)
     | (Inclusive | Exclusive), _ -> ());
    record t ~memory_accesses:0 ~cycles:t.config.tcache_latency ~pwc_hit:false
      ~tcache_hit:true mapping
  end
  else begin
    let probe_cycles =
      match t.tcache with None -> 0 | Some _ -> t.config.tcache_latency
    in
    (* Probe for the deepest usable prefix; each probe costs pwc_latency
       but only the successful one is a "hit". *)
    let max_skip = min (Page_table.levels - 1) (visits - 1) in
    let rec probe skip probes =
      if skip < 1 then (0, probes)
      else
        match Atp_tlb.Tlb.lookup t.pwc (key ~skip vpage) with
        | Some () -> (skip, probes + 1)
        | None -> probe (skip - 1) (probes + 1)
    in
    let skip, probes = probe max_skip 0 in
    let memory_accesses = max 1 (visits - skip) in
    let cycles =
      (memory_accesses * t.config.memory_latency)
      + (probes * t.config.pwc_latency)
      + probe_cycles
    in
    (* Fill the PWC with every interior entry this walk resolved, as the
       hardware would. *)
    for g = 1 to max_skip do
      ignore (Atp_tlb.Tlb.insert t.pwc (key ~skip:g vpage) ())
    done;
    (* An inclusive tier caches the leaf PTE the completed walk just
       loaded; an exclusive (victim) tier is filled only by [deposit]
       when the TLB evicts. *)
    (match (t.config.tcache_mode, t.tcache, mapping) with
     | Inclusive, Some tc, Some _ -> ignore (Atp_tlb.Tlb.insert tc vpage ())
     | (Inclusive | Exclusive), _, _ -> ());
    record t ~memory_accesses ~cycles ~pwc_hit:(skip > 0) ~tcache_hit:false
      mapping
  end

let deposit t vpage =
  match t.tcache with
  | None -> ()
  | Some tc -> ignore (Atp_tlb.Tlb.insert tc vpage ())

let invalidate t =
  Atp_tlb.Tlb.flush t.pwc;
  match t.tcache with None -> () | Some tc -> Atp_tlb.Tlb.flush tc

let invalidate_page t vpage =
  for skip = 1 to Page_table.levels - 1 do
    ignore (Atp_tlb.Tlb.invalidate t.pwc (key ~skip vpage))
  done;
  match t.tcache with
  | None -> ()
  | Some tc -> ignore (Atp_tlb.Tlb.invalidate tc vpage)

let tcache_enabled t = Option.is_some t.tcache

let stats t = t.stats

let average_cycles t =
  if t.stats.walks = 0 then 0.0
  else float_of_int t.stats.total_cycles /. float_of_int t.stats.walks

let epsilon t ~io_latency_cycles =
  if io_latency_cycles <= 0 then invalid_arg "Walker.epsilon: bad IO latency";
  average_cycles t /. float_of_int io_latency_cycles
