(** A multi-core memory system with per-core TLBs and shootdowns.

    The paper notes that multi-core machines have per-core TLBs and
    that parallelism shrinks each thread's effective TLB share.  This
    model makes both effects measurable: every core owns a private
    TLB; RAM (and its replacement policy) is shared; and unmapping a
    page — eviction from RAM — broadcasts a TLB shootdown, costing one
    inter-processor invalidation per remote core that held the
    translation (the initiator flushes its own TLB for free).

    Costs are reported in the address-translation cost model extended
    with a per-IPI cost (shootdowns are the part of translation
    maintenance the single-core model hides). *)

type config = {
  cores : int;
  ram_pages : int;
  tlb_entries_per_core : int;
  huge_size : int;  (** power of two; 1 = no huge pages *)
  epsilon : float;
  ipi_epsilon : float;  (** cost of one remote TLB invalidation *)
  tcache_entries : int;
      (** capacity of the shared (Victima-style, LLC-resident) victim
          store behind the per-core TLBs; 0 disables it (default 0) *)
  tcache_epsilon : float;
      (** cost of a miss recovered from the shared store — strictly
          between a TLB hit (0) and a full miss (ε) *)
}

val default_config : config
(** 4 cores, 384 entries each (1536 split 4 ways), h = 1, ε = 0.01,
    IPI cost = ε, reach extension off (tcache_ε = 0.003 when
    enabled). *)

type counters = {
  accesses : int;
  tlb_misses : int;  (** summed over cores *)
  tcache_hits : int;
      (** the subset of [tlb_misses] recovered from the shared
          cache-resident store *)
  ios : int;
  shootdown_events : int;  (** unmaps that required any invalidation *)
  ipis : int;  (** remote invalidations delivered (initiator excluded) *)
}

type t

val create : config -> t
(** @raise Invalid_argument if there are no cores, RAM is smaller than
    one huge page, [huge_size] is not a power of two, or
    [tcache_entries < 0]. *)

val access : t -> core:int -> int -> unit
(** Raises [Invalid_argument] for an out-of-range core.

    @raise Invalid_argument on an out-of-range core or a negative page. *)

val counters : t -> counters

val reset_counters : t -> unit

val cost : config -> counters -> float
(** [ios + ε·(tlb_misses − tcache_hits) + tcache_ε·tcache_hits
    + ipi_ε·ipis] — with the store disabled ([tcache_hits = 0]) this
    is the original [ios + ε·tlb_misses + ipi_ε·ipis].

    @raise Invalid_argument unless [0 <= tcache_epsilon <= epsilon]. *)

val run_shared : ?warmup:int array -> t -> int array -> counters
(** Replay a single page trace round-robin across the cores: a shared
    address space touched by all threads (maximal shootdown
    traffic). *)

val run_partitioned : ?warmup:int array -> t -> int array -> counters
(** Shard pages across cores by hash: thread-private working sets
    (minimal shootdown traffic).  Each access goes to the core that
    owns its page. *)

val pp_counters : Format.formatter -> counters -> unit
