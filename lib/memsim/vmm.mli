(** A complete demand-paged virtual-memory manager.

    This ties every MMU substrate together into the system a process
    actually runs on: mmap'd regions, a radix {!Page_table}, a
    hardware TLB in front of a {!Walker} (so TLB misses cost measured
    cycles, not an assumed ε), a {!Buddy}-backed physical memory, a
    swap device, CLOCK reclaim driven by the page table's real
    accessed bits, and dirty-page writeback (an extra IO the pure
    model's free evictions hide).

    All costs are reported in cycles on one axis — translation and
    paging together, which is precisely the paper's point that the two
    must be co-optimized. *)

exception Segfault of int
(** Raised on access to an unmapped virtual page. *)

type config = {
  ram_pages : int;
  tlb_entries : int;
  walker : Walker.config;
  tlb_hit_cycles : int;  (** default 1 *)
  io_cycles : int;  (** swap-in / writeback latency (default 40_000) *)
}

val default_config : config

type counters = {
  accesses : int;
  tlb_hits : int;
  tlb_misses : int;
  minor_faults : int;  (** first-touch fills (zero pages): no swap IO *)
  major_faults : int;  (** swap-ins *)
  writebacks : int;  (** dirty evictions *)
  evictions : int;
  walk_cycles : int;
  total_cycles : int;
}

type t

val create : config -> t
(** @raise Invalid_argument if the configuration has no RAM. *)

val mmap : t -> start:int -> pages:int -> unit
(** Declare a valid virtual region (no physical backing yet).  Raises
    [Invalid_argument] on overlap with an existing region.

    @raise Invalid_argument on an empty, negative, or overlapping region. *)

val munmap : t -> start:int -> pages:int -> unit
(** Invalidate a region: frees frames, forgets swap copies, shoots
    down TLB entries, and invalidates the walker's caches — per page
    (INVLPG-style, {!Walker.invalidate_page}) for small regions, one
    full flush for bulk unmaps, so a single-page unmap no longer
    destroys unrelated walk-cache state.

    @raise Invalid_argument if the region is unknown or its length does
    not match the mapping. *)

val is_mapped : t -> int -> bool
(** Is the page inside a mmap'd region? *)

val read : t -> int -> unit
(** Raises {!Segfault} outside mmap'd regions. *)

val write : t -> int -> unit
(** Like {!read} but marks the page dirty, so its eviction costs a
    writeback. *)

val resident_pages : t -> int

val counters : t -> counters

val walker_stats : t -> Walker.stats
(** The page-table walker's own statistics (PWC and cache-resident
    translation-tier hits included). *)

val reset_counters : t -> unit

val average_cycles_per_access : t -> float

val translation_fraction : t -> float
(** Share of all cycles spent on address translation (TLB + walks) as
    opposed to paging IO — the quantity the paper reports can reach
    83% of execution time. *)

val pp_counters : Format.formatter -> counters -> unit
