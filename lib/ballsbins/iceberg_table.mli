(** An Iceberg hash table: the dictionary the paper's companion work
    ("Dynamic balls-and-bins and iceberg hashing", reference [34])
    builds from the Iceberg[d] placement rule.

    Keys live in a {e front yard} of wide bins addressed by one hash;
    a bin's overflow goes to a {e back yard} placed by Greedy[2] over
    two more hashes.  Placement is {e stable} — a key never moves until
    deleted — which is exactly the property that makes the scheme
    usable for physical page placement: the table's (bin, slot)
    coordinates are small and immutable, so they can be cached in
    TLB-value-sized encodings.

    Lookups probe at most one front bin and two back bins, all of
    bounded width, so worst-case probe cost is O(1); the [stats]
    counters expose the realized probe lengths. *)

type 'v t

type stats = {
  inserts : int;
  lookups : int;
  front_hits : int;  (** lookups resolved in the front yard *)
  back_hits : int;
  overflow_hits : int;  (** resolved in the spill area *)
  slots_probed : int;  (** total slot comparisons *)
}

val create : ?seed:int -> capacity:int -> unit -> 'v t
(** A table intended for up to [capacity] live keys; raises
    [Invalid_argument] if [capacity < 1].  The structure never
    resizes — beyond the yards, keys land in an O(1)-expected spill
    area whose occupancy {!overflow_count} exposes (it stays tiny at
    any load the theorems cover).

    @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'v t -> int

val length : 'v t -> int

val load_factor : 'v t -> float
(** [length / capacity]. *)

val insert : 'v t -> int -> 'v -> unit
(** Insert or replace.  Keys must be non-negative. *)

val find : 'v t -> int -> 'v option

val mem : 'v t -> int -> bool

val remove : 'v t -> int -> bool

val overflow_count : 'v t -> int
(** Keys currently in the spill area (paging failures, in the
    allocation analogy). *)

val front_yard_fraction : 'v t -> float
(** Fraction of live keys resident in the front yard — the quantity
    Iceberg keeps near 1 so that most lookups cost a single probe. *)

val stats : 'v t -> stats

val reset_stats : 'v t -> unit
