(** Oblivious adversaries: insertion/deletion sequences generated
    without knowledge of the strategy's hash seeds, as the model in
    Section 4 requires. *)

type op =
  | Insert of int  (** ball id *)
  | Delete of int

val arrivals : m:int -> op Seq.t
(** Insert balls [0 .. m-1] and stop: the classic static game. *)

val churn : Atp_util.Prng.t -> m:int -> steps:int -> fresh:bool -> op Seq.t
(** Fill to [m] balls, then [steps] rounds of delete-one-insert-one.
    With [fresh = true] every inserted ball has a brand-new id (the
    hash sees a new key); with [fresh = false] deleted ids are recycled
    (re-insertions, which the paper explicitly allows).  Deletions pick
    a uniformly random live ball — uniform over ids, which the
    adversary knows, not over bins, which it does not. *)

val fifo_churn : m:int -> steps:int -> op Seq.t
(** Fill to [m], then delete the oldest ball and insert a fresh one:
    models a FIFO RAM-replacement policy driving the allocator. *)

val sliding_window : m:int -> universe:int -> steps:int -> Atp_util.Prng.t -> op Seq.t
(** Balls are drawn uniformly from a fixed universe; a ball already
    present is deleted and re-inserted later by an LRU-like rule.
    Approximates an LRU RAM-replacement policy: the live set is the
    window of the [m] most recently requested pages.

    @raise Invalid_argument if the universe is smaller than the window [m]. *)
