(** The dynamic balls-and-bins game state of Section 4.

    Bins model RAM buckets; balls model pages.  The game records which
    bin (and which {e layer} within the strategy, e.g. Iceberg's
    front yard vs. back yard) each ball occupies, maintains per-bin
    loads, and tracks the maximum load in O(1) amortized time.  The
    game enforces the paper's {e stability} requirement: a placed ball
    cannot move until it is deleted. *)

type t

val create : ?layers:int -> bins:int -> unit -> t
(** [layers] defaults to 1; Iceberg[d] uses 2 (front yard and back
    yard).

    @raise Invalid_argument unless there is at least one bin and one layer. *)

val bins : t -> int

val layers : t -> int

val balls : t -> int
(** Number of balls currently present. *)

val load : t -> int -> int
(** Total load of a bin across layers. *)

val layer_load : t -> layer:int -> int -> int

val max_load : t -> int
(** Current maximum total load over all bins. *)

val bin_of : t -> int -> int option
(** Which bin a ball is in, if present. *)

val layer_of : t -> int -> int option

val place : t -> ball:int -> bin:int -> layer:int -> unit
(** Raises [Invalid_argument] if the ball is already present.

    @raise Invalid_argument if the ball is already placed (a stability violation). *)

val remove : t -> ball:int -> int
(** Deletes the ball, returning the bin it was in.  Raises
    [Invalid_argument] if absent.

    @raise Invalid_argument if the ball is not present. *)

val loads : t -> int array
(** A copy of the per-bin total loads. *)
