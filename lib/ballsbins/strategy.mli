(** Ball-placement rules.

    A strategy inspects the current game state and decides which bin
    (and internal layer) an incoming ball goes to.  All strategies are
    online and stable; the adversary is oblivious to the hash seeds. *)

type placement = { bin : int; layer : int }

type t = {
  name : string;
  k : int;  (** number of hash functions consulted per ball *)
  choose : Game.t -> int -> placement;
      (** [choose game ball]: where to put [ball].  Must not mutate the
          game. *)
}

val one_choice : Atp_util.Prng.t -> bins:int -> t
(** k = 1: the ball goes to its hashed bin unconditionally.  Theorem 1's
    allocation rule. *)

val greedy : Atp_util.Prng.t -> d:int -> bins:int -> t
(** Greedy[d] (Azar et al. / Vöcking's analysis): hash to [d] candidate
    bins, take the least loaded (first on ties).

    @raise Invalid_argument if [d < 1]. *)

val left_greedy : Atp_util.Prng.t -> d:int -> bins:int -> t
(** Vöcking's Always-Go-Left: the bins are split into [d] groups, one
    candidate is hashed per group, and ties break towards the leftmost
    group — the asymmetry that improves the max load from
    [ln ln n / ln d] to [ln ln n / (d·φ_d)].  Requires [bins] divisible
    by [d].

    @raise Invalid_argument if [d < 1] or the bin count is not
    divisible by [d]. *)

val iceberg : Atp_util.Prng.t -> ?d:int -> tau:int -> bins:int -> unit -> t
(** Iceberg[d] ([d] defaults to 2), the rule of Theorem 2: a front-yard
    hash [h1] receives the ball if the bin's {e front-yard} load is
    below the cap [tau]; otherwise the ball is placed by Greedy[d] on
    the {e back-yard} loads via [h2 … h_{d+1}].  Per the paper's
    footnote, the two yards ignore each other's loads.  The game must
    have been created with [~layers:2].

    @raise Invalid_argument if [d < 1], [tau < 1], or the game does not
    have two layers. *)

val front_yard : int
(** Layer index of Iceberg's front yard (0). *)

val back_yard : int
(** Layer index of Iceberg's back yard (1). *)

val default_tau : m:int -> bins:int -> int
(** The front-yard cap used by our experiments:
    [ceil (1.05 * m / bins)], i.e. [(1 + o(1)) * lambda] with a 5%
    slack.

    @raise Invalid_argument if [bins < 1]. *)
