open Atp_util

(* Geometry: front bins of width 8 sized for the full capacity at
   average load ~6 (75%), back bins of width 4 with two choices.  The
   spill area handles the 1/poly tail. *)

let front_width = 8

let back_width = 4

type stats = {
  inserts : int;
  lookups : int;
  front_hits : int;
  back_hits : int;
  overflow_hits : int;
  slots_probed : int;
}

let zero_stats =
  {
    inserts = 0;
    lookups = 0;
    front_hits = 0;
    back_hits = 0;
    overflow_hits = 0;
    slots_probed = 0;
  }

type 'v t = {
  capacity : int;
  front_fam : Hashing.family;  (* 1 hash onto front bins *)
  back_fam : Hashing.family;  (* 2 hashes onto back bins *)
  front_keys : int array;  (* bins * front_width; -1 = empty *)
  front_vals : 'v option array;
  back_keys : int array;  (* bins * back_width; -1 = empty *)
  back_vals : 'v option array;
  back_load : int array;  (* per back bin, for Greedy[2] *)
  overflow : (int, 'v) Hashtbl.t;
  mutable length : int;
  mutable front_count : int;
  mutable stats : stats;
}

let create ?(seed = 0x1CE) ~capacity () =
  if capacity < 1 then invalid_arg "Iceberg_table.create: bad capacity";
  (* Front yard sized at ~75% average occupancy of width-8 bins. *)
  let bins = max 1 ((capacity + (6 - 1)) / 6) in
  let rng = Prng.create ~seed () in
  {
    capacity;
    front_fam = Hashing.family rng ~k:1 ~range:bins;
    back_fam = Hashing.family rng ~k:2 ~range:bins;
    front_keys = Array.make (bins * front_width) (-1);
    front_vals = Array.make (bins * front_width) None;
    back_keys = Array.make (bins * back_width) (-1);
    back_vals = Array.make (bins * back_width) None;
    back_load = Array.make bins 0;
    overflow = Hashtbl.create 16;
    length = 0;
    front_count = 0;
    stats = zero_stats;
  }

let capacity t = t.capacity

let length t = t.length

let load_factor t = float_of_int t.length /. float_of_int t.capacity

let overflow_count t = Hashtbl.length t.overflow

let front_yard_fraction t =
  if t.length = 0 then 1.0
  else float_of_int t.front_count /. float_of_int t.length

let stats t = t.stats

let reset_stats t = t.stats <- zero_stats

let check_key key =
  if key < 0 then invalid_arg "Iceberg_table: keys must be non-negative"

(* Scan a bin region for a key; returns the slot index and probes
   made. *)
let scan keys base width key =
  let rec go i probes =
    if i = width then (-1, probes)
    else if keys.(base + i) = key then (base + i, probes + 1)
    else go (i + 1) (probes + 1)
  in
  go 0 0

let find_slot t key =
  (* Returns (where, slot, probes): where = `Front | `Back | `Spill |
     `Absent. *)
  let fb = Hashing.apply t.front_fam 0 key in
  let slot, p1 = scan t.front_keys (fb * front_width) front_width key in
  if slot >= 0 then (`Front, slot, p1)
  else begin
    let b1 = Hashing.apply t.back_fam 0 key in
    let slot, p2 = scan t.back_keys (b1 * back_width) back_width key in
    if slot >= 0 then (`Back, slot, p1 + p2)
    else begin
      let b2 = Hashing.apply t.back_fam 1 key in
      let slot, p3 = scan t.back_keys (b2 * back_width) back_width key in
      if slot >= 0 then (`Back, slot, p1 + p2 + p3)
      else if Hashtbl.mem t.overflow key then (`Spill, -1, p1 + p2 + p3)
      else (`Absent, -1, p1 + p2 + p3)
    end
  end

let bump_lookup t where probes =
  let s = t.stats in
  t.stats <-
    {
      s with
      lookups = s.lookups + 1;
      slots_probed = s.slots_probed + probes;
      front_hits = (s.front_hits + match where with `Front -> 1 | _ -> 0);
      back_hits = (s.back_hits + match where with `Back -> 1 | _ -> 0);
      overflow_hits = (s.overflow_hits + match where with `Spill -> 1 | _ -> 0);
    }

let find t key =
  check_key key;
  let where, slot, probes = find_slot t key in
  bump_lookup t where probes;
  match where with
  | `Front -> t.front_vals.(slot)
  | `Back -> t.back_vals.(slot)
  | `Spill -> Hashtbl.find_opt t.overflow key
  | `Absent -> None

let mem t key =
  check_key key;
  let where, _, probes = find_slot t key in
  bump_lookup t where probes;
  where <> `Absent

let free_slot keys base width =
  let rec go i =
    if i = width then -1 else if keys.(base + i) = -1 then base + i else go (i + 1)
  in
  go 0

let insert t key value =
  check_key key;
  t.stats <- { t.stats with inserts = t.stats.inserts + 1 };
  let where, slot, _ = find_slot t key in
  match where with
  | `Front ->
    t.front_vals.(slot) <- Some value
  | `Back ->
    t.back_vals.(slot) <- Some value
  | `Spill ->
    Hashtbl.replace t.overflow key value
  | `Absent ->
    let fb = Hashing.apply t.front_fam 0 key in
    let fslot = free_slot t.front_keys (fb * front_width) front_width in
    if fslot >= 0 then begin
      t.front_keys.(fslot) <- key;
      t.front_vals.(fslot) <- Some value;
      t.front_count <- t.front_count + 1;
      t.length <- t.length + 1
    end
    else begin
      (* Greedy[2] on back-bin loads, skipping full bins. *)
      let b1 = Hashing.apply t.back_fam 0 key in
      let b2 = Hashing.apply t.back_fam 1 key in
      let pick =
        if t.back_load.(b1) <= t.back_load.(b2) then
          if t.back_load.(b1) < back_width then Some b1
          else if t.back_load.(b2) < back_width then Some b2
          else None
        else if t.back_load.(b2) < back_width then Some b2
        else if t.back_load.(b1) < back_width then Some b1
        else None
      in
      match pick with
      | Some bin ->
        let bslot = free_slot t.back_keys (bin * back_width) back_width in
        t.back_keys.(bslot) <- key;
        t.back_vals.(bslot) <- Some value;
        t.back_load.(bin) <- t.back_load.(bin) + 1;
        t.length <- t.length + 1
      | None ->
        Hashtbl.replace t.overflow key value;
        t.length <- t.length + 1
    end

let remove t key =
  check_key key;
  let where, slot, _ = find_slot t key in
  match where with
  | `Absent -> false
  | `Front ->
    t.front_keys.(slot) <- -1;
    t.front_vals.(slot) <- None;
    t.front_count <- t.front_count - 1;
    t.length <- t.length - 1;
    true
  | `Back ->
    let bin = slot / back_width in
    t.back_keys.(slot) <- -1;
    t.back_vals.(slot) <- None;
    t.back_load.(bin) <- t.back_load.(bin) - 1;
    t.length <- t.length - 1;
    true
  | `Spill ->
    Hashtbl.remove t.overflow key;
    t.length <- t.length - 1;
    true
