(** A two-level TLB hierarchy (L1 + L2), as real cores implement: a
    tiny fast L1 in front of a large slower L2, both looked up before
    the page walker is engaged.  The hierarchy is inclusive on fills
    (an L2 hit refills L1) and reports latency in cycles so the
    effective per-access translation cost can be compared against the
    single-level model. *)

type 'a t

type config = {
  l1_entries : int;  (** default 64 *)
  l2_entries : int;  (** default 1536 *)
  l1_latency : int;  (** cycles on an L1 hit (default 1) *)
  l2_latency : int;  (** additional cycles on an L2 hit (default 7) *)
}

val default_config : config

type outcome =
  | L1_hit of int  (** cycles *)
  | L2_hit of int
  | Miss of int  (** cycles burned probing both levels *)

val create : ?config:config -> ?obs:Atp_obs.Scope.t -> unit -> 'a t
(** [obs] registers a [lookups] counter and a [lookup_cycles] histogram
    under the scope, and threads the sub-scopes [l1]/[l2] to the two
    levels' TLB counters. *)

val lookup : 'a t -> int -> 'a option * outcome

type chunk = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Structurally [Atp_workloads.Trace.Stream.chunk] (this library does
    not depend on workloads). *)

type batch_result = {
  l1_hits : int;
  l2_hits : int;
  batch_misses : int;
  batch_cycles : int;
}

val lookup_batch :
  'a t -> ?on_miss:(int -> unit) -> chunk -> int -> int -> batch_result
(** [lookup_batch t chunk pos len]: probe [len] keys of a decoded
    chunk with a branch-lean inner loop — the L1-hit iteration
    allocates nothing.  Counter, histogram, cycle, and refill effects
    are identical to [len] scalar {!lookup} calls; [on_miss] runs for
    each key absent from both levels (the caller decides what to walk
    and fill, as with the scalar miss).
    @raise Invalid_argument on a bad range. *)

val insert : 'a t -> int -> 'a -> unit
(** Fill both levels (as a page walk completion does). *)

val invalidate : 'a t -> int -> bool
(** Shoot down in both levels. *)

val total_cycles : 'a t -> int

val lookups : 'a t -> int

val l1_stats : 'a t -> Tlb.stats

val l2_stats : 'a t -> Tlb.stats

val average_latency : 'a t -> float
