(** A two-level TLB hierarchy (L1 + L2), as real cores implement: a
    tiny fast L1 in front of a large slower L2, both looked up before
    the page walker is engaged.  The hierarchy is inclusive on fills
    (an L2 hit refills L1) and reports latency in cycles so the
    effective per-access translation cost can be compared against the
    single-level model.

    An optional third tier models Victima-style reach extension: a
    victim store behind L2, standing in for leaf PTEs parked in the
    data-cache hierarchy.  L2 evictions fall into it instead of
    vanishing, and a lookup that misses both TLB levels can recover
    the translation at [tcache_latency] extra cycles — strictly
    between an L2 hit and a page walk.  The store is exclusive: a
    recovered translation migrates back into L1/L2 and leaves the
    store.  With [tcache_entries = 0] (the default) behaviour, cycle
    accounting, and obs output are byte-identical to the two-level
    hierarchy. *)

type 'a t

type config = {
  l1_entries : int;  (** default 64 *)
  l2_entries : int;  (** default 1536 *)
  l1_latency : int;  (** cycles on an L1 hit (default 1) *)
  l2_latency : int;  (** additional cycles on an L2 hit (default 7) *)
  tcache_entries : int;
      (** capacity of the cache-resident victim store; 0 disables the
          tier (default 0) *)
  tcache_latency : int;
      (** additional cycles for the cache-hierarchy probe, paid below
          L2 on hit and miss alike when the tier is enabled
          (default 30) *)
}

val default_config : config

type outcome =
  | L1_hit of int  (** cycles *)
  | L2_hit of int
  | Tcache_hit of int
      (** recovered from the cache-resident victim store *)
  | Miss of int  (** cycles burned probing every level *)

val create : ?config:config -> ?obs:Atp_obs.Scope.t -> unit -> 'a t
(** [obs] registers a [lookups] counter and a [lookup_cycles] histogram
    under the scope, and threads the sub-scopes [l1]/[l2] to the two
    levels' TLB counters ([tcache] too when the victim store is
    enabled; when disabled the snapshot is unchanged from a two-level
    hierarchy).

    @raise Invalid_argument if [tcache_entries < 0]. *)

val lookup : 'a t -> int -> 'a option * outcome

type chunk = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Structurally [Atp_workloads.Trace.Stream.chunk] (this library does
    not depend on workloads). *)

type batch_result = {
  l1_hits : int;
  l2_hits : int;
  batch_tcache_hits : int;
  batch_misses : int;
  batch_cycles : int;
}

val lookup_batch :
  'a t -> ?on_miss:(int -> unit) -> chunk -> int -> int -> batch_result
(** [lookup_batch t chunk pos len]: probe [len] keys of a decoded
    chunk with a branch-lean inner loop — the L1-hit iteration
    allocates nothing.  Counter, histogram, cycle, refill, and
    victim-store effects are identical to [len] scalar {!lookup}
    calls; [on_miss] runs for each key absent from every level (the
    caller decides what to walk and fill, as with the scalar miss).
    @raise Invalid_argument on a bad range. *)

val insert : 'a t -> int -> 'a -> unit
(** Fill both levels (as a page walk completion does).  When the
    victim store is enabled, the L2 entry this fill evicts is
    deposited there rather than dropped. *)

val invalidate : 'a t -> int -> bool
(** Shoot down in every level, the victim store included. *)

val total_cycles : 'a t -> int

val lookups : 'a t -> int

val l1_stats : 'a t -> Tlb.stats

val l2_stats : 'a t -> Tlb.stats

val tcache_stats : 'a t -> Tlb.stats option
(** [None] iff the victim store is disabled. *)

val average_latency : 'a t -> float
