(** Translation prefetching (TEMPO-style, Bhattacharjee ASPLOS 2017).

    Section 7 cites translation-triggered prefetching as a practical
    TLB optimization whose benefit shrinks as huge pages grow.  This
    wrapper adds next-page prefetch to any TLB: servicing a miss for
    page [v] also installs the translations of [v+1 … v+degree] (when
    the page table has them), so sequential scans stop missing.  The
    stats separate {e useful} prefetches (consumed before eviction)
    from wasted ones — the classic prefetch-pollution measurement. *)

type 'a t

type stats = {
  lookups : int;
  hits : int;
  demand_misses : int;  (** misses the translate oracle had to serve *)
  prefetches : int;  (** entries installed speculatively *)
  useful_prefetches : int;  (** prefetched entries later hit *)
}

val create :
  ?degree:int ->
  entries:int ->
  translate:(int -> 'a option) ->
  unit ->
  'a t
(** [degree] (default 1) pages are prefetched past each demand miss.
    [translate] is the page-table oracle; pages it maps [None] are
    skipped.

    @raise Invalid_argument if [degree < 0]. *)

val lookup : 'a t -> int -> 'a option
(** Returns the translation, loading (and prefetching) through the
    oracle on a miss; [None] only if the oracle has no mapping. *)

val invalidate : 'a t -> int -> bool

val stats : 'a t -> stats

val accuracy : 'a t -> float
(** [useful_prefetches / prefetches]; 1.0 when no prefetch was made. *)
