type 'a t = {
  asid_bits : int;
  vpage_bits : int;
  tlb : 'a Tlb.t;
}

let create ?(asid_bits = 12) ~entries () =
  if asid_bits < 1 || asid_bits > 20 then invalid_arg "Asid.create: bad asid_bits";
  (* Keys combine asid and vpage in one int: vpage gets the rest of the
     62 usable bits. *)
  { asid_bits; vpage_bits = 62 - asid_bits; tlb = Tlb.create ~entries () }

let max_asid t = (1 lsl t.asid_bits) - 1

let entries t = Tlb.entries t.tlb

let key t ~asid vpage =
  if asid < 0 || asid > max_asid t then invalid_arg "Asid: asid out of range";
  if vpage < 0 || vpage >= 1 lsl t.vpage_bits then
    invalid_arg "Asid: vpage out of range";
  (asid lsl t.vpage_bits) lor vpage

let split_key t k = (k lsr t.vpage_bits, k land ((1 lsl t.vpage_bits) - 1))

let lookup t ~asid vpage = Tlb.lookup t.tlb (key t ~asid vpage)

let insert t ~asid vpage payload =
  Option.map
    (fun (k, p) ->
      let a, v = split_key t k in
      (a, v, p))
    (Tlb.insert t.tlb (key t ~asid vpage) payload)

let invalidate t ~asid vpage = Tlb.invalidate t.tlb (key t ~asid vpage)

let flush_asid t asid =
  if asid < 0 || asid > max_asid t then invalid_arg "Asid.flush_asid: bad asid";
  let doomed = ref [] in
  Tlb.iter
    (fun k _ -> if fst (split_key t k) = asid then doomed := k :: !doomed)
    t.tlb;
  List.iter (fun k -> ignore (Tlb.invalidate t.tlb k)) !doomed;
  List.length !doomed

let flush_all t = Tlb.flush t.tlb

let stats t = Tlb.stats t.tlb

let reset_stats t = Tlb.reset_stats t.tlb

module Allocator = struct
  (* Linux-style lazy ASID recycling: a freed id is handed out again
     only after a whole-TLB flush has run since it was freed, so reuse
     never needs a per-id flush on the allocation path.  Ids freed
     since the last flush sit in [dirty]; a generation rollover flushes
     everything and promotes them to [clean] in one step. *)
  type 'a alloc = {
    tlb : 'a t;
    mutable fresh : int;  (* never allocated this generation *)
    mutable clean : int list;  (* freed, then covered by a flush *)
    mutable dirty : int list;  (* freed since the last flush *)
    mutable live : int;
    mutable generation : int;
  }

  let create tlb =
    { tlb; fresh = 0; clean = []; dirty = []; live = 0; generation = 0 }

  let capacity a = max_asid a.tlb + 1

  let live a = a.live

  let generation a = a.generation

  let allocate a =
    let asid =
      if a.fresh <= max_asid a.tlb then begin
        let id = a.fresh in
        a.fresh <- id + 1;
        id
      end
      else
        match a.clean with
        | id :: rest ->
          a.clean <- rest;
          id
        | [] -> (
          match a.dirty with
          | [] -> invalid_arg "Asid.Allocator.allocate: address-space ids exhausted"
          | _ :: _ ->
            (* Generation rollover: one flush launders every freed id
               at once.  Dirty ids were freed in LIFO order; sort so
               the hand-out order is a function of the set, not of the
               free order, keeping sharded replays deterministic. *)
            flush_all a.tlb;
            a.generation <- a.generation + 1;
            a.clean <- List.sort Int.compare a.dirty;
            a.dirty <- [];
            (match a.clean with
            | id :: rest ->
              a.clean <- rest;
              id
            | [] -> assert false))
    in
    a.live <- a.live + 1;
    asid

  let free a asid =
    if asid < 0 || asid > max_asid a.tlb then
      invalid_arg "Asid.Allocator.free: bad asid";
    a.live <- a.live - 1;
    a.dirty <- asid :: a.dirty
end

let per_asid_share t =
  let counts = Atp_util.Int_table.create ~initial_capacity:16 () in
  Tlb.iter
    (fun k _ ->
      let a = fst (split_key t k) in
      Atp_util.Int_table.set counts a
        (1 + Option.value (Atp_util.Int_table.find counts a) ~default:0))
    t.tlb;
  List.sort
    (fun (a, _) (b, _) -> Int.compare a b)
    (Atp_util.Int_table.fold (fun a c acc -> (a, c) :: acc) counts [])
