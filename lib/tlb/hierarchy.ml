module Obs = Atp_obs

type config = {
  l1_entries : int;
  l2_entries : int;
  l1_latency : int;
  l2_latency : int;
}

let default_config =
  { l1_entries = 64; l2_entries = 1536; l1_latency = 1; l2_latency = 7 }

type outcome =
  | L1_hit of int
  | L2_hit of int
  | Miss of int

type 'a t = {
  cfg : config;
  l1 : 'a Tlb.t;
  l2 : 'a Tlb.t;
  mutable total_cycles : int;
  mutable lookups : int;
  c_lookups : Obs.Counter.t;
  h_latency : Obs.Histogram.t;
}

let create ?(config = default_config) ?obs () =
  let obs = match obs with Some o -> o | None -> Obs.Scope.null () in
  {
    cfg = config;
    l1 = Tlb.create ~obs:(Obs.Scope.sub obs "l1") ~entries:config.l1_entries ();
    l2 = Tlb.create ~obs:(Obs.Scope.sub obs "l2") ~entries:config.l2_entries ();
    total_cycles = 0;
    lookups = 0;
    c_lookups = Obs.Scope.counter obs "lookups";
    h_latency = Obs.Scope.histogram obs "lookup_cycles";
  }

let observe_cycles t cycles =
  Obs.Counter.incr t.c_lookups;
  Obs.Histogram.observe t.h_latency cycles

let lookup t key =
  t.lookups <- t.lookups + 1;
  match Tlb.lookup t.l1 key with
  | Some payload ->
    let cycles = t.cfg.l1_latency in
    t.total_cycles <- t.total_cycles + cycles;
    observe_cycles t cycles;
    (Some payload, L1_hit cycles)
  | None ->
    (match Tlb.lookup t.l2 key with
     | Some payload ->
       let cycles = t.cfg.l1_latency + t.cfg.l2_latency in
       t.total_cycles <- t.total_cycles + cycles;
       observe_cycles t cycles;
       (* Refill L1; the L1 victim just loses its fast path (L2 is
          inclusive, so no data is lost). *)
       ignore (Tlb.insert t.l1 key payload);
       (Some payload, L2_hit cycles)
     | None ->
       let cycles = t.cfg.l1_latency + t.cfg.l2_latency in
       t.total_cycles <- t.total_cycles + cycles;
       observe_cycles t cycles;
       (None, Miss cycles))

type chunk = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type batch_result = {
  l1_hits : int;
  l2_hits : int;
  batch_misses : int;
  batch_cycles : int;
}

(* Branch-lean batch probe over a decoded chunk: the common L1-hit
   iteration is one table probe, one recency touch, and counter
   bumps — no option, tuple, or outcome allocation.  Effects are
   identical to calling [lookup] per key (same counters, histogram,
   refill-on-L2-hit), minus the per-call boxing. *)
let[@atplint.hot] lookup_batch t ?on_miss (chunk : chunk) pos len =
  if pos < 0 || len < 0 || pos + len > Bigarray.Array1.dim chunk then
    invalid_arg "Hierarchy.lookup_batch";
  let on_miss = match on_miss with Some f -> f | None -> ignore in
  let miss_latency = t.cfg.l1_latency + t.cfg.l2_latency in
  let l1h = ref 0 and l2h = ref 0 and mis = ref 0 and cyc = ref 0 in
  for i = pos to pos + len - 1 do
    let key = Bigarray.Array1.unsafe_get chunk i in
    t.lookups <- t.lookups + 1;
    if Tlb.probe_fast t.l1 key then begin
      incr l1h;
      cyc := !cyc + t.cfg.l1_latency;
      observe_cycles t t.cfg.l1_latency
    end
    else if Tlb.probe_fast t.l2 key then begin
      incr l2h;
      cyc := !cyc + miss_latency;
      observe_cycles t miss_latency;
      (* Refill L1, as the scalar path does.  This branch already pays
         the L2 latency, so the option boxed by peek/insert is noise
         next to the modelled miss cost. *)
      (match Tlb.peek t.l2 key with
       | Some payload -> ignore (Tlb.insert t.l1 key payload)
       | None -> assert false)
      [@atplint.allow "hot-path-alloc-transitive"]
    end
    else begin
      incr mis;
      cyc := !cyc + miss_latency;
      observe_cycles t miss_latency;
      on_miss key
    end
  done;
  t.total_cycles <- t.total_cycles + !cyc;
  { l1_hits = !l1h; l2_hits = !l2h; batch_misses = !mis; batch_cycles = !cyc }

let insert t key payload =
  ignore (Tlb.insert t.l2 key payload);
  ignore (Tlb.insert t.l1 key payload)

let invalidate t key =
  let a = Tlb.invalidate t.l1 key in
  let b = Tlb.invalidate t.l2 key in
  a || b

let total_cycles t = t.total_cycles

let lookups t = t.lookups

let l1_stats t = Tlb.stats t.l1

let l2_stats t = Tlb.stats t.l2

let average_latency t =
  if t.lookups = 0 then 0.0
  else float_of_int t.total_cycles /. float_of_int t.lookups
