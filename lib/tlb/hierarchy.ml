module Obs = Atp_obs

type config = {
  l1_entries : int;
  l2_entries : int;
  l1_latency : int;
  l2_latency : int;
  tcache_entries : int;
  tcache_latency : int;
}

let default_config =
  {
    l1_entries = 64;
    l2_entries = 1536;
    l1_latency = 1;
    l2_latency = 7;
    tcache_entries = 0;
    tcache_latency = 30;
  }

type outcome =
  | L1_hit of int
  | L2_hit of int
  | Tcache_hit of int
  | Miss of int

type 'a t = {
  cfg : config;
  l1 : 'a Tlb.t;
  l2 : 'a Tlb.t;
  (* Victima-style victim store behind the TLB hierarchy: translations
     evicted from L2 survive in the data-cache hierarchy and can be
     recovered at a latency between an L2 hit and a full walk.  [None]
     when disabled, keeping behaviour byte-identical to a two-level
     hierarchy. *)
  tcache : 'a Tlb.t option;
  mutable total_cycles : int;
  mutable lookups : int;
  c_lookups : Obs.Counter.t;
  h_latency : Obs.Histogram.t;
}

let create ?(config = default_config) ?obs () =
  if config.tcache_entries < 0 then
    invalid_arg "Hierarchy.create: negative tcache_entries";
  let obs = match obs with Some o -> o | None -> Obs.Scope.null () in
  {
    cfg = config;
    l1 = Tlb.create ~obs:(Obs.Scope.sub obs "l1") ~entries:config.l1_entries ();
    l2 = Tlb.create ~obs:(Obs.Scope.sub obs "l2") ~entries:config.l2_entries ();
    tcache =
      (if config.tcache_entries > 0 then
         Some
           (Tlb.create
              ~obs:(Obs.Scope.sub obs "tcache")
              ~entries:config.tcache_entries ())
       else None);
    total_cycles = 0;
    lookups = 0;
    c_lookups = Obs.Scope.counter obs "lookups";
    h_latency = Obs.Scope.histogram obs "lookup_cycles";
  }

let observe_cycles t cycles =
  Obs.Counter.incr t.c_lookups;
  Obs.Histogram.observe t.h_latency cycles

(* Refill both TLB levels after a hit below L2; an L2 victim falls
   into the victim store rather than vanishing (Victima's exclusive
   fill: TLB-evicted PTEs move to the cache hierarchy). *)
let refill t key payload =
  (match (Tlb.insert t.l2 key payload, t.tcache) with
   | Some (victim, victim_payload), Some tc ->
     ignore (Tlb.insert tc victim victim_payload)
   | (Some _ | None), _ -> ());
  ignore (Tlb.insert t.l1 key payload)

let lookup t key =
  t.lookups <- t.lookups + 1;
  match Tlb.lookup t.l1 key with
  | Some payload ->
    let cycles = t.cfg.l1_latency in
    t.total_cycles <- t.total_cycles + cycles;
    observe_cycles t cycles;
    (Some payload, L1_hit cycles)
  | None ->
    (match Tlb.lookup t.l2 key with
     | Some payload ->
       let cycles = t.cfg.l1_latency + t.cfg.l2_latency in
       t.total_cycles <- t.total_cycles + cycles;
       observe_cycles t cycles;
       (* Refill L1; the L1 victim just loses its fast path (L2 is
          inclusive, so no data is lost). *)
       ignore (Tlb.insert t.l1 key payload);
       (Some payload, L2_hit cycles)
     | None ->
       (match t.tcache with
        | Some tc when Tlb.probe_fast tc key ->
          let payload =
            match Tlb.peek tc key with Some p -> p | None -> assert false
          in
          let cycles =
            t.cfg.l1_latency + t.cfg.l2_latency + t.cfg.tcache_latency
          in
          t.total_cycles <- t.total_cycles + cycles;
          observe_cycles t cycles;
          (* Exclusive: the recovered translation migrates back up. *)
          ignore (Tlb.invalidate tc key);
          refill t key payload;
          (Some payload, Tcache_hit cycles)
        | Some _ | None ->
          let cycles = t.cfg.l1_latency + t.cfg.l2_latency in
          let cycles =
            match t.tcache with
            | Some _ -> cycles + t.cfg.tcache_latency
            | None -> cycles
          in
          t.total_cycles <- t.total_cycles + cycles;
          observe_cycles t cycles;
          (None, Miss cycles)))

type chunk = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type batch_result = {
  l1_hits : int;
  l2_hits : int;
  batch_tcache_hits : int;
  batch_misses : int;
  batch_cycles : int;
}

(* Branch-lean batch probe over a decoded chunk: the common L1-hit
   iteration is one table probe, one recency touch, and counter
   bumps — no option, tuple, or outcome allocation.  Effects are
   identical to calling [lookup] per key (same counters, histogram,
   refill-on-L2-hit, victim-store recovery), minus the per-call
   boxing. *)
let[@atplint.hot] lookup_batch t ?on_miss (chunk : chunk) pos len =
  if pos < 0 || len < 0 || pos + len > Bigarray.Array1.dim chunk then
    invalid_arg "Hierarchy.lookup_batch";
  let on_miss = match on_miss with Some f -> f | None -> ignore in
  let l2_latency = t.cfg.l1_latency + t.cfg.l2_latency in
  let miss_latency =
    match t.tcache with
    | Some _ -> l2_latency + t.cfg.tcache_latency
    | None -> l2_latency
  in
  let l1h = ref 0 and l2h = ref 0 and tch = ref 0 and mis = ref 0 in
  let cyc = ref 0 in
  for i = pos to pos + len - 1 do
    let key = Bigarray.Array1.unsafe_get chunk i in
    t.lookups <- t.lookups + 1;
    if Tlb.probe_fast t.l1 key then begin
      incr l1h;
      cyc := !cyc + t.cfg.l1_latency;
      observe_cycles t t.cfg.l1_latency
    end
    else if Tlb.probe_fast t.l2 key then begin
      incr l2h;
      cyc := !cyc + l2_latency;
      observe_cycles t l2_latency;
      (* Refill L1, as the scalar path does.  This branch already pays
         the L2 latency, so the option boxed by peek/insert is noise
         next to the modelled miss cost. *)
      (match Tlb.peek t.l2 key with
       | Some payload -> ignore (Tlb.insert t.l1 key payload)
       | None -> assert false)
      [@atplint.allow "hot-path-alloc-transitive"]
    end
    else begin
      (* Below L2 the iteration already costs a modelled miss, so the
         victim-store recovery may allocate like the scalar path. *)
      (match t.tcache with
       | Some tc when Tlb.probe_fast tc key ->
         incr tch;
         cyc := !cyc + miss_latency;
         observe_cycles t miss_latency;
         let payload =
           match Tlb.peek tc key with Some p -> p | None -> assert false
         in
         ignore (Tlb.invalidate tc key);
         refill t key payload
       | Some _ | None ->
         incr mis;
         cyc := !cyc + miss_latency;
         observe_cycles t miss_latency;
         on_miss key)
      [@atplint.allow "hot-path-alloc-transitive"]
    end
  done;
  t.total_cycles <- t.total_cycles + !cyc;
  {
    l1_hits = !l1h;
    l2_hits = !l2h;
    batch_tcache_hits = !tch;
    batch_misses = !mis;
    batch_cycles = !cyc;
  }

let insert t key payload = refill t key payload

let invalidate t key =
  let a = Tlb.invalidate t.l1 key in
  let b = Tlb.invalidate t.l2 key in
  let c =
    match t.tcache with Some tc -> Tlb.invalidate tc key | None -> false
  in
  a || b || c

let total_cycles t = t.total_cycles

let lookups t = t.lookups

let l1_stats t = Tlb.stats t.l1

let l2_stats t = Tlb.stats t.l2

let tcache_stats t = Option.map Tlb.stats t.tcache

let average_latency t =
  if t.lookups = 0 then 0.0
  else float_of_int t.total_cycles /. float_of_int t.lookups
