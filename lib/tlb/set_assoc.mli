(** A set-associative TLB, as built in hardware: the key hashes to one
    of [sets] sets, each holding [ways] entries managed by true LRU.
    The paper's experiments model the TLB as fully associative; this
    variant exists to measure how much set conflicts change the story
    (an ablation in the benchmark suite). *)

type 'a t

val create : ?seed:int -> sets:int -> ways:int -> unit -> 'a t
(** @raise Invalid_argument unless [sets >= 1] and [ways >= 1]. *)

val sets : 'a t -> int

val ways : 'a t -> int

val capacity : 'a t -> int
(** [sets * ways]. *)

val size : 'a t -> int

val lookup : 'a t -> int -> 'a option
(** Counted access; hit refreshes LRU order within the set. *)

val insert : 'a t -> int -> 'a -> (int * 'a) option
(** Evicts the set's LRU entry when the set is full. *)

val invalidate : 'a t -> int -> bool

val stats : 'a t -> Tlb.stats

val reset_stats : 'a t -> unit
