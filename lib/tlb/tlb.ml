open Atp_paging
module Obs = Atp_obs
module Int_table = Atp_util.Int_table

type stats = {
  lookups : int;
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
}

type 'a t = {
  policy : Policy.instance;
  payloads : 'a Int_table.Poly.t;
  tr : Obs.Trace.t;
  c_lookups : Obs.Counter.t;
  c_hits : Obs.Counter.t;
  c_misses : Obs.Counter.t;
  c_insertions : Obs.Counter.t;
  c_evictions : Obs.Counter.t;
}

let create ?policy ?rng ?obs ~entries () =
  if entries < 1 then invalid_arg "Tlb.create: need at least one entry";
  let policy_module =
    match policy with Some p -> p | None -> (module Lru : Policy.S)
  in
  let obs = match obs with Some o -> o | None -> Obs.Scope.null () in
  {
    policy = Policy.instantiate policy_module ?rng ~capacity:entries ();
    payloads = Int_table.Poly.create ~initial_capacity:(2 * entries) ();
    tr = Obs.Scope.tracer obs;
    c_lookups = Obs.Scope.counter obs "lookups";
    c_hits = Obs.Scope.counter obs "hits";
    c_misses = Obs.Scope.counter obs "misses";
    c_insertions = Obs.Scope.counter obs "insertions";
    c_evictions = Obs.Scope.counter obs "evictions";
  }

let entries t = t.policy.Policy.capacity

let size t = t.policy.Policy.size ()

let mem t key = t.policy.Policy.mem key

let peek t key = Int_table.Poly.find t.payloads key

let lookup t key =
  Obs.Counter.incr t.c_lookups;
  if t.policy.Policy.mem key then begin
    (* Count the hit and refresh recency via the policy. *)
    (match t.policy.Policy.access key with
     | Policy.Hit -> ()
     | Policy.Miss _ -> assert false);
    Obs.Counter.incr t.c_hits;
    Obs.Trace.record t.tr Obs.Event.Tlb_hit key 0;
    Int_table.Poly.find t.payloads key
  end
  else begin
    Obs.Counter.incr t.c_misses;
    Obs.Trace.record t.tr Obs.Event.Tlb_miss key 0;
    None
  end

(* The allocation-free lookup: same counters, trace events, and
   recency effect as [lookup], but no payload option.  The policy call
   happens only on a confirmed hit, so it can never insert. *)
let[@atplint.hot] probe_fast t key =
  Obs.Counter.incr t.c_lookups;
  if t.policy.Policy.mem key then begin
    if not (Policy.fast_is_hit (t.policy.Policy.access_fast key)) then
      assert false;
    Obs.Counter.incr t.c_hits;
    Obs.Trace.record t.tr Obs.Event.Tlb_hit key 0;
    true
  end
  else begin
    Obs.Counter.incr t.c_misses;
    Obs.Trace.record t.tr Obs.Event.Tlb_miss key 0;
    false
  end

let insert t key payload =
  let evicted =
    match t.policy.Policy.access key with
    | Policy.Hit -> None
    | Policy.Miss { evicted = None } -> None
    | Policy.Miss { evicted = Some victim } ->
      let victim_payload = Int_table.Poly.find_exn t.payloads victim in
      ignore (Int_table.Poly.remove t.payloads victim);
      Some (victim, victim_payload)
  in
  Int_table.Poly.set t.payloads key payload;
  Obs.Counter.incr t.c_insertions;
  (match evicted with
   | None -> ()
   | Some (victim, _) ->
     Obs.Counter.incr t.c_evictions;
     Obs.Trace.record t.tr Obs.Event.Eviction victim key);
  evicted

let update t key payload =
  if Int_table.Poly.mem t.payloads key then begin
    Int_table.Poly.set t.payloads key payload;
    true
  end
  else false

let invalidate t key =
  if t.policy.Policy.remove key then begin
    ignore (Int_table.Poly.remove t.payloads key);
    true
  end
  else false

let flush t =
  List.iter
    (fun key -> ignore (t.policy.Policy.remove key))
    (t.policy.Policy.resident ());
  Int_table.Poly.clear t.payloads

(* The obs counters are the only store; the stats record is a view of
   them, so the exported snapshot can never desynchronize from it. *)
let stats t =
  {
    lookups = Obs.Counter.value t.c_lookups;
    hits = Obs.Counter.value t.c_hits;
    misses = Obs.Counter.value t.c_misses;
    insertions = Obs.Counter.value t.c_insertions;
    evictions = Obs.Counter.value t.c_evictions;
  }

let reset_stats t =
  Obs.Counter.reset t.c_lookups;
  Obs.Counter.reset t.c_hits;
  Obs.Counter.reset t.c_misses;
  Obs.Counter.reset t.c_insertions;
  Obs.Counter.reset t.c_evictions

let iter f t = Int_table.Poly.iter f t.payloads

let pp_stats ppf s =
  Format.fprintf ppf "lookups=%a hits=%a misses=%a insertions=%a evictions=%a"
    Atp_util.Stats.pp_count s.lookups Atp_util.Stats.pp_count s.hits
    Atp_util.Stats.pp_count s.misses Atp_util.Stats.pp_count s.insertions
    Atp_util.Stats.pp_count s.evictions
