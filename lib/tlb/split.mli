(** A split TLB: one sub-TLB per supported page size, looked up in
    parallel, the way Intel's Cascade Lake provides a 1536-entry L2 TLB
    for 4 KiB/2 MiB pages and a separate 16-entry TLB for 1 GiB pages.
    Keys given to [lookup] are base-page numbers; each level masks off
    its own number of low bits. *)

type 'a t

type level = {
  shift : int;  (** log2 of the page size in base pages: 0 for 4 KiB,
                    9 for 2 MiB, 18 for 1 GiB with a 4 KiB base *)
  entries : int;
}

val create : levels:level list -> unit -> 'a t
(** Levels must have distinct shifts.

    @raise Invalid_argument if [levels] is empty or contains duplicate
    shifts. *)

val levels : 'a t -> level list

val lookup : 'a t -> int -> ('a * int) option
(** [lookup t vpage] probes every level with [vpage lsr shift]; returns
    the payload and the shift of the level that hit.  All levels count
    the probe in their stats, as parallel hardware lookups would. *)

val insert : 'a t -> shift:int -> int -> 'a -> (int * 'a) option
(** Install a translation at the level with the given shift (key is
    [vpage lsr shift] computed internally from the base-page number).
    Raises [Invalid_argument] for an unknown shift.

    @raise Invalid_argument on a shift no level covers. *)

val invalidate_page : 'a t -> int -> unit
(** Shoot down any entry, at any level, covering the base page. *)

val stats : 'a t -> (int * Tlb.stats) list
(** Per-level, keyed by shift. *)
