(** A fully associative TLB: a capacity-bounded cache from virtual
    (huge-)page numbers to payloads, with a pluggable replacement
    policy.

    The payload type is abstract because the two users differ: the
    Section 6 simulator stores physical huge-page base frames, while
    the decoupling scheme of Sections 3–4 stores the w-bit encoded
    value ψ(u).  Updating a payload in place (a ψ update when a
    constituent page moves) is free and does not touch recency,
    matching the cost model. *)

type 'a t

type stats = {
  lookups : int;
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
}

val create :
  ?policy:(module Atp_paging.Policy.S) ->
  ?rng:Atp_util.Prng.t ->
  ?obs:Atp_obs.Scope.t ->
  entries:int ->
  unit ->
  'a t
(** [policy] defaults to LRU — the configuration of every experiment in
    the paper.  [obs] registers [lookups]/[hits]/[misses]/[insertions]/
    [evictions] counters under the scope's prefix and emits
    [tlb_hit]/[tlb_miss]/[eviction] trace events; when omitted the TLB
    observes into a private throwaway registry.

    @raise Invalid_argument if [entries < 1]. *)

val entries : 'a t -> int

val size : 'a t -> int

val mem : 'a t -> int -> bool
(** Does not count as a lookup and does not touch recency. *)

val lookup : 'a t -> int -> 'a option
(** A counted access: updates recency on hit, counts a miss otherwise.
    A miss does {e not} insert — the caller decides what translation to
    load (and pays ε). *)

val probe_fast : 'a t -> int -> bool
(** Allocation-free [lookup]: same counters, trace events, and recency
    effect, but reports only presence — no payload option.  The batch
    lookup paths are built on this. *)

val peek : 'a t -> int -> 'a option
(** Read without touching recency or stats. *)

val insert : 'a t -> int -> 'a -> (int * 'a) option
(** Insert a translation, returning the evicted (key, payload) if the
    TLB was full.  Inserting an existing key refreshes its payload and
    recency without eviction. *)

val update : 'a t -> int -> 'a -> bool
(** Replace the payload of a present key without touching recency or
    stats; [false] if absent. *)

val invalidate : 'a t -> int -> bool
(** TLB shootdown of one entry. *)

val flush : 'a t -> unit
(** Full TLB flush (e.g. a context switch without ASIDs). *)

val stats : 'a t -> stats

val reset_stats : 'a t -> unit
(** Zero the counters.  {!stats} is a view of the registered obs
    counters (they are the only store), so the two can never
    desynchronize; note that two TLBs sharing one scope therefore
    aggregate — and reset — the same counters. *)

val iter : (int -> 'a -> unit) -> 'a t -> unit

val pp_stats : Format.formatter -> stats -> unit
