(** An ASID-tagged TLB shared by multiple address spaces.

    The paper observes that TLBs increasingly hold entries for several
    threads and even several applications at once, shrinking each
    one's effective share.  This model tags every entry with an
    address-space id, so context switches need no flush; the
    alternative — an untagged TLB flushed on every switch — can be
    simulated with {!flush_all} to measure what ASIDs buy.

    Replacement is global LRU across all address spaces, as in real
    shared TLBs: a noisy neighbor really does evict your
    translations. *)

type 'a t

val create : ?asid_bits:int -> entries:int -> unit -> 'a t
(** [asid_bits] (default 12, as on x86) bounds the id space.

    @raise Invalid_argument unless [asid_bits] is in 1..20. *)

val max_asid : 'a t -> int

val entries : 'a t -> int

val lookup : 'a t -> asid:int -> int -> 'a option

val insert : 'a t -> asid:int -> int -> 'a -> (int * int * 'a) option
(** Returns the evicted (asid, vpage, payload), possibly belonging to
    a different address space. *)

val invalidate : 'a t -> asid:int -> int -> bool

val flush_asid : 'a t -> int -> int
(** Drop every entry of one address space (e.g. on process exit);
    returns how many were dropped.

    @raise Invalid_argument on an out-of-range asid. *)

val flush_all : 'a t -> unit
(** What a switch costs without ASIDs. *)

val stats : 'a t -> Tlb.stats

val reset_stats : 'a t -> unit

val per_asid_share : 'a t -> (int * int) list
(** Current entry count per address space: the effective-TLB-share
    measurement, sorted by asid. *)
