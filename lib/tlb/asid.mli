(** An ASID-tagged TLB shared by multiple address spaces.

    The paper observes that TLBs increasingly hold entries for several
    threads and even several applications at once, shrinking each
    one's effective share.  This model tags every entry with an
    address-space id, so context switches need no flush; the
    alternative — an untagged TLB flushed on every switch — can be
    simulated with {!flush_all} to measure what ASIDs buy.

    Replacement is global LRU across all address spaces, as in real
    shared TLBs: a noisy neighbor really does evict your
    translations. *)

type 'a t

val create : ?asid_bits:int -> entries:int -> unit -> 'a t
(** [asid_bits] (default 12, as on x86) bounds the id space.

    @raise Invalid_argument unless [asid_bits] is in 1..20. *)

val max_asid : 'a t -> int

val entries : 'a t -> int

val lookup : 'a t -> asid:int -> int -> 'a option

val insert : 'a t -> asid:int -> int -> 'a -> (int * int * 'a) option
(** Returns the evicted (asid, vpage, payload), possibly belonging to
    a different address space. *)

val invalidate : 'a t -> asid:int -> int -> bool

val flush_asid : 'a t -> int -> int
(** Drop every entry of one address space (e.g. on process exit);
    returns how many were dropped.

    @raise Invalid_argument on an out-of-range asid. *)

val flush_all : 'a t -> unit
(** What a switch costs without ASIDs. *)

val stats : 'a t -> Tlb.stats

val reset_stats : 'a t -> unit

val per_asid_share : 'a t -> (int * int) list
(** Current entry count per address space: the effective-TLB-share
    measurement, sorted by asid. *)

(** Lazy ASID recycling for fleets of short-lived address spaces.

    Millions of tenants churn through a few thousand hardware ids, so
    ids must be recycled — and a recycled id must never surface a dead
    tenant's translations.  Flushing per free is O(TLB) on every exit;
    instead (as in Linux's ASID allocator) a freed id becomes
    allocatable only after a {e generation rollover}: when no fresh or
    laundered id remains, one {!flush_all} clears the TLB and makes
    every freed id clean at once.  The qcheck suite proves the no-leak
    guarantee differentially against a flush-everything reference. *)
module Allocator : sig
  type 'a alloc

  val create : 'a t -> 'a alloc
  (** Allocates out of (and flushes, on rollover) the given tagged
      TLB.  The caller must route every insert/lookup through asids
      handed out here. *)

  val allocate : 'a alloc -> int
  (** A fresh or safely recycled asid.  May trigger a generation
      rollover, which flushes the underlying TLB.

      @raise Invalid_argument when every asid is live. *)

  val free : 'a alloc -> int -> unit
  (** Return an asid (e.g. on tenant exit).  No flush happens now; the
      id is quarantined until the next rollover.

      @raise Invalid_argument on an out-of-range asid. *)

  val capacity : 'a alloc -> int
  (** [max_asid + 1] of the underlying TLB. *)

  val live : 'a alloc -> int

  val generation : 'a alloc -> int
  (** Rollovers so far. *)
end
