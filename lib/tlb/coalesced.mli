(** A coalesced TLB (CoLT-style: Pham et al., MICRO 2012).

    Section 7 surveys TLBs that opportunistically exploit contiguity
    smaller than a huge page: when the OS happens to map a run of
    contiguous virtual pages to contiguous physical frames, one entry
    can translate the whole run.  This model coalesces within aligned
    blocks of [max_run] pages: at fill time it probes the page table
    around the missing page and installs an entry covering the
    contiguous aligned run; a lookup landing inside a cached run is a
    hit at zero cost.

    This is the natural baseline {e between} plain 4 KiB TLBs and
    huge pages — it needs no physical-contiguity guarantee, but its
    reach degrades to 1 exactly when memory is fragmented, which is
    what the decoupled scheme avoids. *)

type t

type stats = {
  lookups : int;
  hits : int;
  misses : int;
  fills : int;
  coalesced_pages : int;  (** total pages covered by installed entries *)
}

val create : ?max_run:int -> entries:int -> unit -> t
(** [max_run] defaults to 8 (CoLT's block size); must be a power of
    two.

    @raise Invalid_argument unless [max_run] is a power of two. *)

val max_run : t -> int

val lookup : t -> int -> int option
(** Translate a virtual page to a frame if a cached run covers it. *)

val fill :
  t -> lookup_pt:(int -> int option) -> vpage:int -> frame:int -> int
(** After a miss, install the translation, coalescing with whatever
    contiguous neighbors the page table reports inside the aligned
    block.  [lookup_pt] is the page-table oracle.  Returns the run
    length installed (>= 1). *)

val invalidate_page : t -> int -> bool
(** Shoot down the run covering the page, if any. *)

val stats : t -> stats

val reset_stats : t -> unit
