(** Deterministic pseudo-random number generation.

    Every randomized component in this repository draws from an explicit
    generator state, so that whole experiments are reproducible from a
    single integer seed.  The generator is xoshiro256** seeded via
    SplitMix64, which is the standard pairing recommended by the
    xoshiro authors: SplitMix64 equidistributes the 64-bit seed into
    the 256-bit state, and xoshiro256** passes BigCrush. *)

type t
(** Mutable generator state. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] builds a fresh generator.  The default seed is a
    fixed constant, so two runs of the same program produce the same
    stream unless a seed is given. *)

val copy : t -> t
(** Independent snapshot of the current state. *)

val split : t -> t
(** [split t] returns a new generator seeded from [t]'s stream.  Use it
    to give subcomponents independent streams that are still a pure
    function of the master seed. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int
(** 62 uniformly random bits as a non-negative OCaml [int]. *)

val int : t -> int -> int
(** [int t n] is uniform on [0, n).  Requires [n > 0].  Uses rejection
    sampling, so the result is exactly uniform.

    @raise Invalid_argument if [n <= 0]. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** Uniform on the inclusive range [lo, hi].  Requires [lo <= hi].

    @raise Invalid_argument if [lo > hi]. *)

val float : t -> float
(** Uniform on [0, 1), with 53 bits of precision. *)

val bool : t -> bool
(** A fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
