(** Dense bit vectors.

    Used for residency maps (one bit per page slot) and the presence
    half of decoupled TLB values. *)

type t

val create : int -> t
(** [create n] is an all-zero vector of [n] bits.

    @raise Invalid_argument if the length is negative. *)

val length : t -> int

val get : t -> int -> bool

val set : t -> int -> unit

val clear : t -> int -> unit

val assign : t -> int -> bool -> unit

val pop_count : t -> int
(** Number of set bits. *)

val iter_set : (int -> unit) -> t -> unit
(** Iterate over the indices of set bits, in increasing order. *)

val first_clear : t -> int option
(** Lowest clear bit, if any. *)

val first_clear_index : t -> int
(** [first_clear] without the option: the index of the first clear
    bit, or [-1] when every bit is set. *)

val fill : t -> bool -> unit
(** Set every bit to the given value. *)

val copy : t -> t

val equal : t -> t -> bool
