(** Deterministic parallel map over OCaml 5 domains.

    The benchmark harness evaluates many independent simulator
    configurations (one per huge-page size); each closure owns its
    state and reads only immutable inputs, so they parallelize
    trivially.  Results keep their input order.

    Two failure semantics are offered.  {!map}/{!map_array} abort on
    the first exception and re-raise it in the caller {e with the
    original backtrace preserved}: the trace is captured with
    [Printexc.get_raw_backtrace] in the failing domain at the catch
    site and re-raised via [Printexc.raise_with_backtrace], so the
    reported frames point at the task, not at the join.
    {!map_results}/{!map_results_array} never abort: every task runs
    to completion and each returns its own
    [Ok result | Error (exn, backtrace)] — the primitive the
    experiment runner ({!module:Atp_exp}) builds per-task outcome rows
    on.

    On OCaml < 5 (no [Domain]) a sequential implementation with the
    same interface is selected at build time. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()], at least 1; always 1 on the
    sequential fallback. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f xs] evaluates [f] on every element using up to
    [domains] domains (default: the recommended count, capped at the
    number of elements).  [f] must not share mutable state across
    calls.  With [domains = 1] this is [List.map].  The first task
    exception is re-raised in the caller with its original backtrace;
    remaining unstarted tasks are skipped.
    @raise Invalid_argument if [domains] is given and less than 1. *)

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** @raise Invalid_argument if [domains] is given and less than 1. *)

val map_results :
  ?domains:int ->
  ('a -> 'b) ->
  'a list ->
  ('b, exn * Printexc.raw_backtrace) result list
(** Like {!map}, but a raising task never aborts the sweep: each
    element maps to [Ok result] or [Error (exn, backtrace)], with the
    backtrace captured in the raising domain.  All tasks run.
    @raise Invalid_argument if [domains] is given and less than 1. *)

val map_results_array :
  ?domains:int ->
  ('a -> 'b) ->
  'a array ->
  ('b, exn * Printexc.raw_backtrace) result array
(** @raise Invalid_argument if [domains] is given and less than 1. *)
