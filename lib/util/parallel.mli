(** Deterministic parallel map over OCaml 5 domains.

    The benchmark harness evaluates many independent simulator
    configurations (one per huge-page size); each closure owns its
    state and reads only immutable inputs, so they parallelize
    trivially.  Results keep their input order, and the first
    exception raised by any task is re-raised in the caller.

    On OCaml < 5 (no [Domain]) a sequential implementation with the
    same interface is selected at build time. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()], at least 1; always 1 on the
    sequential fallback. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f xs] evaluates [f] on every element using up to
    [domains] domains (default: the recommended count, capped at the
    number of elements).  [f] must not share mutable state across
    calls.  With [domains = 1] this is [List.map]. *)

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** @raise Invalid_argument if [domains] is given and less than 1. *)
