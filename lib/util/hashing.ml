(* The mixer is duplicated from Prng rather than exported there to keep
   Prng's interface about streams only. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Native-int variant of the same avalanche structure, with the
   multiplicative constants truncated to fit the 63-bit int.  Boxed
   Int64 arithmetic heap-allocates every intermediate without flambda,
   and [hash] sits on the replay hot path (one decode per access, k
   placement probes per miss), so the mixer must stay in registers. *)
let[@inline] mix x =
  let x = (x lxor (x lsr 30)) * 0x3F58476D1CE4E5B9 in
  let x = (x lxor (x lsr 27)) * 0x14D049BB133111EB in
  x lxor (x lsr 31)

let[@inline] hash ~seed x = mix (x + (seed * 0x1E3779B97F4A7C15)) land max_int

let hash_in ~seed n x =
  if n <= 0 then invalid_arg "Hashing.hash_in: empty range";
  if n >= 1 lsl 30 then invalid_arg "Hashing.hash_in: range too large";
  (* Lemire's multiply-shift range reduction, on the top 32 hash bits
     so the product stays within a 63-bit immediate. *)
  let h32 = hash ~seed x lsr 30 in
  (h32 * n) lsr 32

type family = { seeds : int array; range : int }

let family rng ~k ~range =
  if k <= 0 then invalid_arg "Hashing.family: k must be positive";
  if range <= 0 then invalid_arg "Hashing.family: empty range";
  { seeds = Array.init k (fun _ -> Prng.bits rng); range }

let k fam = Array.length fam.seeds

let range fam = fam.range

let apply fam i x = hash_in ~seed:fam.seeds.(i) fam.range x
