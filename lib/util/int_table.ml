type t = {
  mutable keys : int array;    (* empty = -1 *)
  mutable values : int array;
  mutable size : int;
  mutable mask : int;          (* capacity - 1; capacity is a power of two *)
}

let empty_key = -1

let round_up_pow2 n =
  let rec go acc = if acc >= n then acc else go (acc * 2) in
  go 8

let create ?(initial_capacity = 16) () =
  let cap = round_up_pow2 initial_capacity in
  { keys = Array.make cap empty_key;
    values = Array.make cap 0;
    size = 0;
    mask = cap - 1 }

let length t = t.size

(* Fibonacci hashing spreads consecutive page numbers, which are the
   common key pattern, across the table. *)
let slot_of t key = (key * 0x2545F4914F6CDD1D) land max_int land t.mask

let check_key key =
  if key < 0 then invalid_arg "Int_table: keys must be non-negative"

(* The probe result is one untagged int — the key's slot when found,
   [lnot slot] of the first empty slot when absent (always negative) —
   because a [(slot, found)] tuple would heap-allocate on every table
   operation without flambda, and these tables back every hot
   structure in the simulator.  Indices are pre-masked, so the unsafe
   array accesses cannot go out of bounds. *)
let[@atplint.hot] rec probe t key i =
  let k = Array.unsafe_get t.keys i in
  if k = key then i
  else if k = empty_key then lnot i
  else probe t key ((i + 1) land t.mask)

let grow t =
  let old_keys = t.keys and old_values = t.values in
  let cap = (t.mask + 1) * 2 in
  t.keys <- Array.make cap empty_key;
  t.values <- Array.make cap 0;
  t.mask <- cap - 1;
  t.size <- 0;
  for i = 0 to Array.length old_keys - 1 do
    let k = Array.unsafe_get old_keys i in
    if k <> empty_key then begin
      let j = lnot (probe t k (slot_of t k)) in
      t.keys.(j) <- k;
      t.values.(j) <- Array.unsafe_get old_values i;
      t.size <- t.size + 1
    end
  done

let maybe_grow t =
  (* Keep load below 0.75. *)
  if 4 * (t.size + 1) > 3 * (t.mask + 1) then grow t

let[@atplint.hot] mem t key =
  check_key key;
  probe t key (slot_of t key) >= 0

let find t key =
  check_key key;
  let i = probe t key (slot_of t key) in
  if i >= 0 then Some (Array.unsafe_get t.values i) else None

let find_exn t key =
  check_key key;
  let i = probe t key (slot_of t key) in
  if i >= 0 then Array.unsafe_get t.values i else raise Not_found

let[@inline] [@atplint.hot] find_or t key default =
  check_key key;
  let i = probe t key (slot_of t key) in
  if i >= 0 then Array.unsafe_get t.values i else default

let[@atplint.hot] set t key value =
  check_key key;
  maybe_grow t;
  let i = probe t key (slot_of t key) in
  if i >= 0 then Array.unsafe_set t.values i value
  else begin
    let j = lnot i in
    Array.unsafe_set t.keys j key;
    Array.unsafe_set t.values j value;
    t.size <- t.size + 1
  end

(* One probe for a read-modify-write of a counter cell: add [delta]
   to the stored value (inserting [delta] if absent) and return the
   new value. *)
let[@atplint.hot] incr_by t key delta =
  check_key key;
  maybe_grow t;
  let i = probe t key (slot_of t key) in
  if i >= 0 then begin
    let v = Array.unsafe_get t.values i + delta in
    Array.unsafe_set t.values i v;
    v
  end
  else begin
    let j = lnot i in
    Array.unsafe_set t.keys j key;
    Array.unsafe_set t.values j delta;
    t.size <- t.size + 1;
    delta
  end

let add_if_absent t key value =
  check_key key;
  maybe_grow t;
  let i = probe t key (slot_of t key) in
  if i >= 0 then false
  else begin
    let j = lnot i in
    Array.unsafe_set t.keys j key;
    Array.unsafe_set t.values j value;
    t.size <- t.size + 1;
    true
  end

(* Can a key homed at [home] legally live at [lo]?  Yes iff home is
   cyclically outside (lo, hi]. *)
let[@inline] cyclically_between lo x hi =
  if lo <= hi then lo < x && x <= hi else lo < x || x <= hi

let[@atplint.hot] rec shift_back t gap j =
  let k = t.keys.(j) in
  if k = empty_key then ()
  else begin
    let home = slot_of t k in
    if cyclically_between gap home j then shift_back t gap ((j + 1) land t.mask)
    else begin
      t.keys.(gap) <- k;
      t.values.(gap) <- t.values.(j);
      t.keys.(j) <- empty_key;
      shift_back t j ((j + 1) land t.mask)
    end
  end

(* Backward-shift deletion: re-home the cluster that follows the freed
   slot so probe chains never break. *)
let[@atplint.hot] remove t key =
  check_key key;
  let i = probe t key (slot_of t key) in
  if i < 0 then false
  else begin
    t.keys.(i) <- empty_key;
    t.size <- t.size - 1;
    shift_back t i ((i + 1) land t.mask);
    true
  end

let iter f t =
  Array.iteri (fun i k -> if k <> empty_key then f k t.values.(i)) t.keys

let fold f t init =
  let acc = ref init in
  iter (fun k v -> acc := f k v !acc) t;
  !acc

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) empty_key;
  t.size <- 0

let keys t = fold (fun k _ acc -> k :: acc) t []

(* Same table, boxed values.  The values array stays empty until the
   first insert provides a fill element, so no dummy value (and no
   [Obj] trickery) is ever needed. *)
module Poly = struct
  type 'a t = {
    mutable keys : int array;    (* empty = -1 *)
    mutable values : 'a array;   (* length 0 until the first insert *)
    mutable size : int;
    mutable mask : int;
  }

  let create ?(initial_capacity = 16) () =
    let cap = round_up_pow2 initial_capacity in
    { keys = Array.make cap empty_key; values = [||]; size = 0; mask = cap - 1 }

  let length t = t.size

  let slot_of t key = (key * 0x2545F4914F6CDD1D) land max_int land t.mask

  let check_key key =
    if key < 0 then invalid_arg "Int_table.Poly: keys must be non-negative"

  (* Same single-int probe convention as the flat table: slot when
     found, [lnot slot] of the first empty slot when absent. *)
  let[@atplint.hot] rec probe t key i =
    let k = Array.unsafe_get t.keys i in
    if k = key then i
    else if k = empty_key then lnot i
    else probe t key ((i + 1) land t.mask)

  let grow t =
    let old_keys = t.keys and old_values = t.values in
    let cap = (t.mask + 1) * 2 in
    t.keys <- Array.make cap empty_key;
    (* [grow] only runs when the table is nearly full, so a fill
       element exists. *)
    t.values <- Array.make cap old_values.(0);
    t.mask <- cap - 1;
    t.size <- 0;
    for i = 0 to Array.length old_keys - 1 do
      let k = Array.unsafe_get old_keys i in
      if k <> empty_key then begin
        let j = lnot (probe t k (slot_of t k)) in
        t.keys.(j) <- k;
        t.values.(j) <- Array.unsafe_get old_values i;
        t.size <- t.size + 1
      end
    done

  let maybe_grow t = if 4 * (t.size + 1) > 3 * (t.mask + 1) then grow t

  let[@atplint.hot] mem t key =
    check_key key;
    probe t key (slot_of t key) >= 0

  let find t key =
    check_key key;
    let i = probe t key (slot_of t key) in
    if i >= 0 then Some (Array.unsafe_get t.values i) else None

  let find_exn t key =
    check_key key;
    let i = probe t key (slot_of t key) in
    if i >= 0 then Array.unsafe_get t.values i else raise Not_found

  let[@inline] [@atplint.hot] find_or t key default =
    check_key key;
    let i = probe t key (slot_of t key) in
    if i >= 0 then Array.unsafe_get t.values i else default

  let[@atplint.hot] set t key value =
    check_key key;
    maybe_grow t;
    if Array.length t.values = 0 then
      t.values <- Array.make (t.mask + 1) value;
    let i = probe t key (slot_of t key) in
    if i >= 0 then Array.unsafe_set t.values i value
    else begin
      let j = lnot i in
      Array.unsafe_set t.keys j key;
      Array.unsafe_set t.values j value;
      t.size <- t.size + 1
    end

  let[@atplint.hot] rec shift_back t gap j =
    let k = t.keys.(j) in
    if k = empty_key then ()
    else begin
      let home = slot_of t k in
      if cyclically_between gap home j then
        shift_back t gap ((j + 1) land t.mask)
      else begin
        t.keys.(gap) <- k;
        t.values.(gap) <- t.values.(j);
        t.keys.(j) <- empty_key;
        shift_back t j ((j + 1) land t.mask)
      end
    end

  let[@atplint.hot] remove t key =
    check_key key;
    let i = probe t key (slot_of t key) in
    if i < 0 then false
    else begin
      t.keys.(i) <- empty_key;
      t.size <- t.size - 1;
      shift_back t i ((i + 1) land t.mask);
      true
    end

  let iter f t =
    Array.iteri (fun i k -> if k <> empty_key then f k t.values.(i)) t.keys

  let fold f t init =
    let acc = ref init in
    iter (fun k v -> acc := f k v !acc) t;
    !acc

  let clear t =
    Array.fill t.keys 0 (Array.length t.keys) empty_key;
    (* Drop the values array so cleared payloads can be collected. *)
    t.values <- [||];
    t.size <- 0
end
