(** Strength-reduced integer division by a fixed positive divisor.

    [div] and [rem] agree with [(/)] and [(mod)] for every [int]
    argument; inputs inside the precomputed safe range (about [2^31])
    take a multiply-shift fast path instead of a hardware divide. *)

type t

val make : int -> t
(** @raise Invalid_argument when the divisor is not positive. *)

val divisor : t -> int

val div : t -> int -> int

val rem : t -> int -> int
