let recommended_domains () = max 1 (Domain.recommended_domain_count ())

let map_array ?domains f input =
  let n = Array.length input in
  if n = 0 then [||]
  else begin
    let wanted =
      match domains with
      | Some d ->
        if d < 1 then invalid_arg "Parallel.map: need at least one domain";
        d
      | None -> recommended_domains ()
    in
    let workers = min wanted n in
    if workers = 1 then Array.map f input
    else begin
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let failure = Atomic.make None in
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n && Option.is_none (Atomic.get failure) then begin
            (match f input.(i) with
             | result -> results.(i) <- Some result
             | exception e ->
               (* Keep the first failure; losing later ones is fine. *)
               ignore (Atomic.compare_and_set failure None (Some e)));
            loop ()
          end
        in
        loop ()
      in
      let spawned = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join spawned;
      (match Atomic.get failure with
       | Some e -> raise e
       | None -> ());
      Array.map
        (function
          | Some r -> r
          | None -> assert false)
        results
    end
  end

let map ?domains f xs =
  Array.to_list (map_array ?domains f (Array.of_list xs))
