let recommended_domains () = max 1 (Domain.recommended_domain_count ())

let check_domains = function
  | Some d when d < 1 -> invalid_arg "Parallel.map: need at least one domain"
  | Some d -> Some d
  | None -> None

(* Work-stealing skeleton shared by [map_array] and [map_results]:
   [n] items, one atomic next-index counter, [workers] domains (the
   caller's domain included) each running [body] until either the
   items run out or [stop] flips.  [body i] must not raise. *)
let drive ~n ~workers ~stop body =
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n && not (stop ()) then begin
        body i;
        loop ()
      end
    in
    loop ()
  in
  let spawned = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join spawned

let worker_count ~domains n =
  let wanted =
    match check_domains domains with
    | Some d -> d
    | None -> recommended_domains ()
  in
  min wanted n

let map_array ?domains f input =
  let n = Array.length input in
  if n = 0 then begin
    ignore (check_domains domains);
    [||]
  end
  else begin
    let workers = worker_count ~domains n in
    if workers = 1 then Array.map f input
    else begin
      let results = Array.make n None in
      let failure = Atomic.make None in
      drive ~n ~workers
        ~stop:(fun () -> Option.is_some (Atomic.get failure))
        (fun i ->
          match f input.(i) with
          | result -> results.(i) <- Some result
          | exception e ->
            (* Capture the backtrace in the failing domain, at the
               catch site: re-raising in the joining domain would
               otherwise report the join point, not the task. *)
            let bt = Printexc.get_raw_backtrace () in
            (* Keep the first failure; losing later ones is fine. *)
            ignore (Atomic.compare_and_set failure None (Some (e, bt))));
      (match Atomic.get failure with
       | Some (e, bt) -> Printexc.raise_with_backtrace e bt
       | None -> ());
      Array.map
        (function
          | Some r -> r
          | None -> assert false)
        results
    end
  end

let map ?domains f xs =
  Array.to_list (map_array ?domains f (Array.of_list xs))

let map_results_array ?domains f input =
  let n = Array.length input in
  if n = 0 then begin
    ignore (check_domains domains);
    [||]
  end
  else begin
    let run i =
      match f input.(i) with
      | result -> Ok result
      | exception e -> Error (e, Printexc.get_raw_backtrace ())
    in
    let workers = worker_count ~domains n in
    if workers = 1 then Array.init n run
    else begin
      let results = Array.make n None in
      drive ~n ~workers
        ~stop:(fun () -> false)
        (fun i -> results.(i) <- Some (run i));
      Array.map
        (function
          | Some r -> r
          | None -> assert false)
        results
    end
  end

let map_results ?domains f xs =
  Array.to_list (map_results_array ?domains f (Array.of_list xs))
