(* Strength-reduced division by a fixed positive divisor d, for hot
   loops where d is a runtime constant (h_max, bucket size).  The
   round-up reciprocal m = floor(2^F/d) + 1 gives

     floor(v * m / 2^F) = floor(v / d)

   for all 0 <= v <= limit (see [make] for the bound), turning a
   ~25-cycle hardware divide into a multiply and a shift.  Values
   beyond [limit] — or negative — fall back to the hardware divide, so
   the result is exact for every int. *)

type t = { d : int; m : int; shift : int; limit : int }

let log2_floor n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 n

let make d =
  if d < 1 then invalid_arg "Divider.make: divisor must be positive";
  (* F = 31 + floor(log2 d) keeps v * m below 2^62 for v <= limit and
     makes the error term q * (m*d - 2^F) + (d-1) * m stay under 2^F
     whenever q <= 2^F/d^2 - 1; limit = d * (2^F/d^2 - 1) ~ 2^31
     under-approximates that bound conservatively. *)
  let shift = 31 + log2_floor d in
  let pow = 1 lsl shift in
  let m = (pow / d) + 1 in
  let q_max = (pow / d / d) - 1 in
  let limit = if q_max < 0 then 0 else q_max * d in
  { d; m; shift; limit }

let divisor t = t.d

let[@inline] [@atplint.hot] div t v =
  if v >= 0 && v <= t.limit then (v * t.m) lsr t.shift else v / t.d

let[@inline] [@atplint.hot] rem t v = v - (div t v * t.d)
