(** Random samplers over page indices.

    These back the synthetic workloads of the paper's Section 6: the
    bimodal stress test samples uniformly from two nested regions, and
    the graph-walk workload draws edge destinations from a bounded
    Pareto distribution with shape [alpha = 0.01]. *)

type t = Prng.t -> int
(** A sampler maps generator state to an index. *)

val uniform : n:int -> t
(** Uniform on [0, n).

    @raise Invalid_argument if the support is empty. *)

val bounded_pareto : alpha:float -> n:int -> t
(** Bounded Pareto on {1, …, n} mapped to [0, n): probability of rank
    [i] proportional to [(i+1)^-(alpha+1)], sampled by inverse
    transform on the continuous bounded Pareto and floored.  This is
    the paper's edge-destination distribution.

    @raise Invalid_argument if the support is empty or
    [alpha <= 0]. *)

val zipf : s:float -> n:int -> t
(** Zipf with exponent [s] on [0, n): P(i) proportional to
    [(i+1)^-s].  Uses rejection-inversion (Hörmann–Derflinger), which
    is exact and O(1) per sample for any [n].

    @raise Invalid_argument if the support is empty or [s <= 0]. *)

type discrete
(** An arbitrary finite distribution, sampled in O(1) via Walker's
    alias method. *)

val discrete : float array -> discrete
(** Build the alias table from non-negative weights (need not sum to
    one; must not all be zero).

    @raise Invalid_argument if [weights] is empty, any weight is
    negative, or all weights are zero. *)

val sample_discrete : discrete -> Prng.t -> int

val mixture : (float * t) array -> t
(** [mixture [| (p1, s1); …; (pk, sk) |]] picks branch [i] with
    probability proportional to [pi] and delegates.  The bimodal
    workload is [mixture [| (0.9999, hot); (0.0001, cold) |]].

    @raise Invalid_argument if there are no branches. *)
