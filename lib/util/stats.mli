(** Online statistics for experiment harnesses. *)

(** Streaming mean and variance (Welford's algorithm), plus min/max. *)
module Summary : sig
  type t

  val create : unit -> t

  val add : t -> float -> unit
  (** Raises [Invalid_argument] on a NaN observation: a NaN would
      silently poison mean/variance and, through {!Atp_obs}
      histograms, every exported snapshot downstream. *)

  val count : t -> int

  val mean : t -> float
  (** 0 when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; 0 with fewer than two observations. *)

  val stddev : t -> float

  val min : t -> float
  (** @raise Invalid_argument when the summary is empty: the fresh
      [infinity] fill sentinel is not an observation and must not leak
      into metrics output. *)

  val max : t -> float
  (** @raise Invalid_argument when the summary is empty (the
      [neg_infinity] sentinel, as for {!min}). *)

  val pp : Format.formatter -> t -> unit
  (** Empty summaries print as ["n=0"], without min/max. *)
end

(** Power-of-two histogram over non-negative integers: bucket [i]
    counts values in [[2^i, 2^(i+1))]; bucket 0 also counts 0. *)
module Log_histogram : sig
  type t

  val create : unit -> t

  val add : t -> int -> unit

  val count : t -> int

  val bucket : t -> int -> int
  (** Count in bucket [i] (0..62). *)

  val percentile : t -> float -> int
  (** [percentile t 0.99] is an upper bound (bucket ceiling) on the
      given quantile.  Raises [Invalid_argument] when empty or when the
      rank is outside [0, 1]. *)

  val pp : Format.formatter -> t -> unit
end

val pp_count : Format.formatter -> int -> unit
(** Render a count with thousands separators: [12_345_678]. *)

val pp_si : Format.formatter -> float -> unit
(** Render with an SI suffix: [1.50M], [42.0k]. *)
