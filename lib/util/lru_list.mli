(** An array-backed intrusive doubly-linked list over node ids
    [0 .. capacity-1].

    This is the workhorse of the O(1) LRU and CLOCK replacement
    policies: node ids are cache-slot indices, [move_to_front] is a
    touch, and [back] is the eviction victim.  No allocation after
    [create]. *)

type t

val create : int -> t
(** [create capacity] has all nodes detached.

    @raise Invalid_argument if the capacity is negative. *)

val capacity : t -> int

val mem : t -> int -> bool
(** Is the node currently linked? *)

val length : t -> int

val is_empty : t -> bool

val push_front : t -> int -> unit
(** Raises [Invalid_argument] if already linked.

    @raise Invalid_argument if [i] is already linked. *)

val push_back : t -> int -> unit
(** Raises [Invalid_argument] if already linked.

    @raise Invalid_argument if [i] is already linked. *)

val remove : t -> int -> unit
(** Raises [Invalid_argument] if not linked.

    @raise Invalid_argument if [i] is not linked. *)

val move_to_front : t -> int -> unit
(** Raises [Invalid_argument] if not linked. *)

val move_to_back : t -> int -> unit

val front : t -> int option
(** Most recently used. *)

val back : t -> int option
(** Least recently used. *)

val pop_back : t -> int option
(** Remove and return the back node. *)

val take_back : t -> int
(** [pop_back] without the option: the unlinked back node id, or [-1]
    when the list is empty — the allocation-free eviction primitive. *)

val iter_front_to_back : (int -> unit) -> t -> unit

val to_list : t -> int list
(** Front-to-back order. *)
