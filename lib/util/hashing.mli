(** Seeded integer hash functions.

    The balls-and-bins allocators of the paper need families of
    independent hash functions over virtual page addresses.  We model a
    family member as a fixed 64-bit avalanche mixer salted with a
    per-function random seed; distinct seeds give (empirically)
    independent functions, and the adversaries in this codebase are
    oblivious to the seeds, matching the paper's obliviousness
    assumption. *)

val mix64 : int64 -> int64
(** The SplitMix64 finalizer: a bijective avalanche mixer. *)

val hash : seed:int -> int -> int
(** [hash ~seed x] is a non-negative 62-bit hash of [x] salted by
    [seed]. *)

val hash_in : seed:int -> int -> int -> int
(** [hash_in ~seed n x] maps [x] to a bucket in [0, n).  Requires
    [n > 0].  Uses the high-bits multiply trick rather than [mod], so
    all hash bits contribute.

    @raise Invalid_argument if the range is empty or at least [2^30]. *)

type family
(** A family of [k] independent hash functions with a common range. *)

val family : Prng.t -> k:int -> range:int -> family
(** Draw [k] fresh seeds from the generator.  [range] is the common
    codomain size.

    @raise Invalid_argument if [k <= 0] or the range is empty. *)

val k : family -> int

val range : family -> int

val apply : family -> int -> int -> int
(** [apply fam i x] applies the [i]th function (0-based) to [x],
    yielding a value in [0, range). *)
