(* An array-pool intrusive list: nodes are slots in flat int arrays,
   recycled through a free list threaded over [next], and the
   page->slot index is an open-addressing Int_table.  Steady-state
   operations (hits, moves, evictions) touch only int arrays — no node
   or option is allocated per access; the arrays double when the pool
   is exhausted, which amortizes away. *)

type t = {
  mutable pages : int array;  (* slot -> page; meaningful only when linked *)
  mutable next : int array;   (* slot -> next slot, or nil; free-list link *)
  mutable prev : int array;   (* slot -> prev slot, or nil *)
  index : Int_table.t;        (* page -> slot *)
  mutable first : int;        (* nil when empty *)
  mutable last : int;         (* nil when empty *)
  mutable free : int;         (* head of the free-slot list, nil when full *)
  mutable len : int;
}

let nil = -1

let initial_slots = 64

let thread_free next lo hi =
  (* Slots [lo..hi-1] become the free list lo -> lo+1 -> ... -> nil. *)
  for i = lo to hi - 2 do
    next.(i) <- i + 1
  done;
  next.(hi - 1) <- nil

let create () =
  let next = Array.make initial_slots nil in
  thread_free next 0 initial_slots;
  {
    pages = Array.make initial_slots nil;
    next;
    prev = Array.make initial_slots nil;
    index = Int_table.create ~initial_capacity:64 ();
    first = nil;
    last = nil;
    free = 0;
    len = 0;
  }

let length t = t.len

let is_empty t = t.len = 0

let mem t page = Int_table.mem t.index page

let grow t =
  let old = Array.length t.pages in
  let cap = 2 * old in
  let extend a fill =
    let bigger = Array.make cap fill in
    Array.blit a 0 bigger 0 old;
    bigger
  in
  t.pages <- extend t.pages nil;
  t.prev <- extend t.prev nil;
  t.next <- extend t.next nil;
  thread_free t.next old cap;
  t.free <- old

let alloc_slot t page =
  if t.free = nil then grow t;
  let slot = t.free in
  t.free <- t.next.(slot);
  t.pages.(slot) <- page;
  Int_table.set t.index page slot;
  t.len <- t.len + 1;
  slot

(* Unlink [slot] from the chain only; the caller decides whether the
   slot is being recycled or immediately relinked. *)
let unchain t slot =
  let p = t.prev.(slot) and n = t.next.(slot) in
  if p = nil then t.first <- n else t.next.(p) <- n;
  if n = nil then t.last <- p else t.prev.(n) <- p

let release_slot t slot =
  ignore (Int_table.remove t.index t.pages.(slot));
  t.pages.(slot) <- nil;
  t.next.(slot) <- t.free;
  t.free <- slot;
  t.len <- t.len - 1

let chain_front t slot =
  t.prev.(slot) <- nil;
  t.next.(slot) <- t.first;
  if t.first = nil then t.last <- slot else t.prev.(t.first) <- slot;
  t.first <- slot

let chain_back t slot =
  t.next.(slot) <- nil;
  t.prev.(slot) <- t.last;
  if t.last = nil then t.first <- slot else t.next.(t.last) <- slot;
  t.last <- slot

let push_front t page =
  if mem t page then invalid_arg "Page_list.push_front: duplicate page";
  chain_front t (alloc_slot t page)

let push_back t page =
  if mem t page then invalid_arg "Page_list.push_back: duplicate page";
  chain_back t (alloc_slot t page)

let remove t page =
  let slot = Int_table.find_or t.index page nil in
  if slot = nil then false
  else begin
    unchain t slot;
    release_slot t slot;
    true
  end

let move_to_front t page =
  let slot = Int_table.find_or t.index page nil in
  if slot = nil then invalid_arg "Page_list.move_to_front: absent page"
  else if t.first <> slot then begin
    unchain t slot;
    chain_front t slot
  end

let front t = if t.first = nil then None else Some t.pages.(t.first)

let back t = if t.last = nil then None else Some t.pages.(t.last)

let take_front t =
  if t.first = nil then nil
  else begin
    let slot = t.first in
    let page = t.pages.(slot) in
    unchain t slot;
    release_slot t slot;
    page
  end

let take_back t =
  if t.last = nil then nil
  else begin
    let slot = t.last in
    let page = t.pages.(slot) in
    unchain t slot;
    release_slot t slot;
    page
  end

let pop_front t =
  let page = take_front t in
  if page = nil then None else Some page

let pop_back t =
  let page = take_back t in
  if page = nil then None else Some page

let to_list t =
  let rec go acc slot =
    if slot = nil then List.rev acc else go (t.pages.(slot) :: acc) t.next.(slot)
  in
  go [] t.first
