type node = {
  page : int;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  mutable first : node option;
  mutable last : node option;
  index : node Int_table.Poly.t;
  mutable length : int;
}

let create () =
  { first = None; last = None; index = Int_table.Poly.create ~initial_capacity:64 (); length = 0 }

let length t = t.length

let is_empty t = t.length = 0

let mem t page = Int_table.Poly.mem t.index page

let push_front t page =
  if mem t page then invalid_arg "Page_list.push_front: duplicate page";
  let node = { page; prev = None; next = t.first } in
  (match t.first with
   | Some old -> old.prev <- Some node
   | None -> t.last <- Some node);
  t.first <- Some node;
  Int_table.Poly.set t.index page node;
  t.length <- t.length + 1

let push_back t page =
  if mem t page then invalid_arg "Page_list.push_back: duplicate page";
  let node = { page; prev = t.last; next = None } in
  (match t.last with
   | Some old -> old.next <- Some node
   | None -> t.first <- Some node);
  t.last <- Some node;
  Int_table.Poly.set t.index page node;
  t.length <- t.length + 1

let unlink t node =
  (match node.prev with
   | Some p -> p.next <- node.next
   | None -> t.first <- node.next);
  (match node.next with
   | Some n -> n.prev <- node.prev
   | None -> t.last <- node.prev);
  node.prev <- None;
  node.next <- None;
  ignore (Int_table.Poly.remove t.index node.page);
  t.length <- t.length - 1

let remove t page =
  match Int_table.Poly.find t.index page with
  | None -> false
  | Some node ->
    unlink t node;
    true

let move_to_front t page =
  match Int_table.Poly.find t.index page with
  | None -> invalid_arg "Page_list.move_to_front: absent page"
  | Some node ->
    unlink t node;
    push_front t page

let front t = Option.map (fun n -> n.page) t.first

let back t = Option.map (fun n -> n.page) t.last

let pop_front t =
  match t.first with
  | None -> None
  | Some node ->
    unlink t node;
    Some node.page

let pop_back t =
  match t.last with
  | None -> None
  | Some node ->
    unlink t node;
    Some node.page

let to_list t =
  let rec go acc = function
    | None -> List.rev acc
    | Some node -> go (node.page :: acc) node.next
  in
  go [] t.first
