(* Sequential stand-in for OCaml < 5, where the Domain module does not
   exist.  Selected by a dune rule on the compiler version; same
   interface, same validation, results in the same order. *)

let recommended_domains () = 1

let check_domains = function
  | Some d when d < 1 -> invalid_arg "Parallel.map: need at least one domain"
  | _ -> ()

let map_array ?domains f input =
  check_domains domains;
  Array.map f input

let map ?domains f xs = Array.to_list (map_array ?domains f (Array.of_list xs))

let map_results_array ?domains f input =
  check_domains domains;
  Array.map
    (fun x ->
      match f x with
      | result -> Ok result
      | exception e -> Error (e, Printexc.get_raw_backtrace ()))
    input

let map_results ?domains f xs =
  Array.to_list (map_results_array ?domains f (Array.of_list xs))
