(* Sequential stand-in for OCaml < 5, where the Domain module does not
   exist.  Selected by a dune rule on the compiler version; same
   interface, same validation, results in the same order. *)

let recommended_domains () = 1

let map_array ?domains f input =
  (match domains with
   | Some d when d < 1 -> invalid_arg "Parallel.map: need at least one domain"
   | _ -> ());
  Array.map f input

let map ?domains f xs = Array.to_list (map_array ?domains f (Array.of_list xs))
