type t = { words : Bytes.t; length : int }

let bits_per_word = 8

let words_for n = (n + bits_per_word - 1) / bits_per_word

let create n =
  if n < 0 then invalid_arg "Bitvec.create: negative length";
  { words = Bytes.make (words_for n) '\000'; length = n }

let length t = t.length

let check t i =
  if i < 0 || i >= t.length then invalid_arg "Bitvec: index out of bounds"

let get t i =
  check t i;
  Char.code (Bytes.unsafe_get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i =
  check t i;
  let w = i lsr 3 in
  let b = Char.code (Bytes.unsafe_get t.words w) in
  Bytes.unsafe_set t.words w (Char.unsafe_chr (b lor (1 lsl (i land 7))))

let clear t i =
  check t i;
  let w = i lsr 3 in
  let b = Char.code (Bytes.unsafe_get t.words w) in
  Bytes.unsafe_set t.words w (Char.unsafe_chr (b land lnot (1 lsl (i land 7)) land 0xFF))

let assign t i v = if v then set t i else clear t i

let pop_count t =
  let count = ref 0 in
  for w = 0 to Bytes.length t.words - 1 do
    let b = ref (Char.code (Bytes.unsafe_get t.words w)) in
    while !b <> 0 do
      b := !b land (!b - 1);
      incr count
    done
  done;
  !count

let iter_set f t =
  for i = 0 to t.length - 1 do
    if get t i then f i
  done

(* Allocation-free scan: whole 0xFF bytes are skipped, and the result
   is an index (-1 when full) rather than an option — this runs on
   every frame allocation.  The scan loops live at the top level so no
   closure is built per call. *)
let[@atplint.hot] rec fc_bit w b i =
  if b land (1 lsl i) = 0 then (w lsl 3) + i else fc_bit w b (i + 1)

let[@atplint.hot] rec fc_word words nwords w =
  if w >= nwords then -1
  else begin
    let b = Char.code (Bytes.unsafe_get words w) in
    if b = 0xFF then fc_word words nwords (w + 1) else fc_bit w b 0
  end

let[@atplint.hot] first_clear_index t =
  let i = fc_word t.words (Bytes.length t.words) 0 in
  if i < t.length then i else -1

let first_clear t =
  let i = first_clear_index t in
  if i < 0 then None else Some i

let fill t v =
  let byte = if v then '\255' else '\000' in
  Bytes.fill t.words 0 (Bytes.length t.words) byte;
  (* Keep the spare bits of the last word clear so pop_count stays
     honest. *)
  if v && t.length land 7 <> 0 then begin
    let last = Bytes.length t.words - 1 in
    let keep = (1 lsl (t.length land 7)) - 1 in
    Bytes.set t.words last (Char.chr (Char.code (Bytes.get t.words last) land keep))
  end

let copy t = { words = Bytes.copy t.words; length = t.length }

let equal a b = a.length = b.length && Bytes.equal a.words b.words
