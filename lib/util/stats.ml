module Summary = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { count = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    if Float.is_nan x then invalid_arg "Summary.add: NaN observation";
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. delta /. float_of_int t.count;
    t.m2 <- t.m2 +. delta *. (x -. t.mean);
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count

  let mean t = if t.count = 0 then 0.0 else t.mean

  let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int (t.count - 1)

  let stddev t = sqrt (variance t)

  let min t =
    if t.count = 0 then invalid_arg "Summary.min: empty summary";
    t.min

  let max t =
    if t.count = 0 then invalid_arg "Summary.max: empty summary";
    t.max

  let pp ppf t =
    (* An empty summary holds the infinity/neg_infinity fill sentinels;
       printing them as min/max would leak "min=inf max=-inf" into
       metric reports. *)
    if t.count = 0 then Format.fprintf ppf "n=0"
    else
      Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g"
        t.count (mean t) (stddev t) t.min t.max
end

module Log_histogram = struct
  type t = { buckets : int array; mutable count : int }

  let nbuckets = 63

  let create () = { buckets = Array.make nbuckets 0; count = 0 }

  let bucket_of v =
    if v < 0 then invalid_arg "Log_histogram.add: negative value";
    if v <= 1 then 0
    else
      let rec log2 acc v = if v <= 1 then acc else log2 (acc + 1) (v lsr 1) in
      log2 0 v

  let add t v =
    let b = bucket_of v in
    t.buckets.(b) <- t.buckets.(b) + 1;
    t.count <- t.count + 1

  let count t = t.count

  let bucket t i =
    if i < 0 || i >= nbuckets then invalid_arg "Log_histogram.bucket: bad index";
    t.buckets.(i)

  let percentile t q =
    if t.count = 0 then invalid_arg "Log_histogram.percentile: empty";
    if q < 0.0 || q > 1.0 then invalid_arg "Log_histogram.percentile: rank out of range";
    let target = int_of_float (ceil (q *. float_of_int t.count)) in
    let target = if target < 1 then 1 else target in
    let rec scan i seen =
      let seen = seen + t.buckets.(i) in
      if seen >= target || i = nbuckets - 1 then (1 lsl (i + 1)) - 1
      else scan (i + 1) seen
    in
    scan 0 0

  let pp ppf t =
    Format.fprintf ppf "@[<v>";
    for i = 0 to nbuckets - 1 do
      if t.buckets.(i) > 0 then
        Format.fprintf ppf "[%d, %d): %d@," (if i = 0 then 0 else 1 lsl i)
          (1 lsl (i + 1)) t.buckets.(i)
    done;
    Format.fprintf ppf "@]"
end

let pp_count ppf n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + len / 3 + 1) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf '_';
      Buffer.add_char buf c)
    s;
  Format.pp_print_string ppf (Buffer.contents buf)

let pp_si ppf v =
  let abs_v = abs_float v in
  let value, suffix =
    if abs_v >= 1e9 then (v /. 1e9, "G")
    else if abs_v >= 1e6 then (v /. 1e6, "M")
    else if abs_v >= 1e3 then (v /. 1e3, "k")
    else (v, "")
  in
  Format.fprintf ppf "%.3g%s" value suffix
