(** Arrays of fixed-width unsigned integers, bit-packed.

    The decoupled TLB stores, for each virtual huge page, an array of
    [h_max] slot indices packed into a [w]-bit value.  This module is
    the faithful bit-level representation: element width is arbitrary
    (1 to 48 bits) and elements straddle byte boundaries exactly as
    they would in a hardware register. *)

type t

val create : width:int -> length:int -> t
(** All elements start at zero.  [width] in bits, 1..48 (so that a straddling element plus its bit offset always fits in a 63-bit immediate during assembly).

    @raise Invalid_argument if the length is negative or [width] is
    outside 1..48. *)

val width : t -> int

val length : t -> int

val max_value : t -> int
(** Largest representable element, [2^width - 1]. *)

val get : t -> int -> int

val set : t -> int -> int -> unit
(** Raises [Invalid_argument] if the value does not fit in [width]
    bits.

    @raise Invalid_argument if the value does not fit in [width] bits. *)

val total_bits : t -> int
(** [width * length]: the size of the value this array packs into. *)

val copy : t -> t

val blit_to_bytes : t -> Bytes.t
(** The raw packed representation, for round-trip tests and for
    treating the array as an opaque TLB value. *)

val of_bytes : width:int -> length:int -> Bytes.t -> t
(** Inverse of [blit_to_bytes].  Raises [Invalid_argument] on a size
    mismatch.

    @raise Invalid_argument on a bad width or a size mismatch. *)
