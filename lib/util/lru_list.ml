(* Nodes 0..capacity-1 plus one sentinel at index [capacity].  A node
   is detached iff its next pointer is the [detached] marker. *)

type t = {
  next : int array;
  prev : int array;
  sentinel : int;
  mutable length : int;
}

let detached = -1

let create capacity =
  if capacity < 0 then invalid_arg "Lru_list.create: negative capacity";
  let next = Array.make (capacity + 1) detached in
  let prev = Array.make (capacity + 1) detached in
  next.(capacity) <- capacity;
  prev.(capacity) <- capacity;
  { next; prev; sentinel = capacity; length = 0 }

let capacity t = t.sentinel

let check t i =
  if i < 0 || i >= t.sentinel then invalid_arg "Lru_list: node id out of range"

let mem t i =
  check t i;
  t.next.(i) <> detached

let length t = t.length

let is_empty t = t.length = 0

let link_after t ~anchor i =
  let nxt = t.next.(anchor) in
  t.next.(anchor) <- i;
  t.prev.(i) <- anchor;
  t.next.(i) <- nxt;
  t.prev.(nxt) <- i;
  t.length <- t.length + 1

let push_front t i =
  if mem t i then invalid_arg "Lru_list.push_front: already linked";
  link_after t ~anchor:t.sentinel i

let push_back t i =
  if mem t i then invalid_arg "Lru_list.push_back: already linked";
  link_after t ~anchor:t.prev.(t.sentinel) i

let remove t i =
  if not (mem t i) then invalid_arg "Lru_list.remove: not linked";
  let p = t.prev.(i) and n = t.next.(i) in
  t.next.(p) <- n;
  t.prev.(n) <- p;
  t.next.(i) <- detached;
  t.prev.(i) <- detached;
  t.length <- t.length - 1

let move_to_front t i =
  remove t i;
  link_after t ~anchor:t.sentinel i

let move_to_back t i =
  remove t i;
  link_after t ~anchor:t.prev.(t.sentinel) i

let front t =
  if t.length = 0 then None else Some t.next.(t.sentinel)

let back t =
  if t.length = 0 then None else Some t.prev.(t.sentinel)

let take_back t =
  if t.length = 0 then -1
  else begin
    let i = t.prev.(t.sentinel) in
    remove t i;
    i
  end

let pop_back t =
  let i = take_back t in
  if i < 0 then None else Some i

let iter_front_to_back f t =
  let rec loop i =
    if i <> t.sentinel then begin
      (* Capture next before f, so f may remove i. *)
      let n = t.next.(i) in
      f i;
      loop n
    end
  in
  loop t.next.(t.sentinel)

let to_list t =
  let acc = ref [] in
  iter_front_to_back (fun i -> acc := i :: !acc) t;
  List.rev !acc
