(** A doubly-linked list of page ids with an O(1) membership index.

    Unlike {!Lru_list}, which links a fixed set of slot ids, this list
    holds arbitrary page numbers; it backs the ghost lists of ARC and
    2Q, where entries are addresses of pages that are {e not}
    resident.

    Nodes live in a recycled array pool, so steady-state operations
    ([mem], [move_to_front], [take_front]/[take_back], [remove],
    [push_*] onto a warm pool) allocate nothing; the pool doubles when
    exhausted.  Page ids must be non-negative. *)

type t

val create : unit -> t

val length : t -> int

val is_empty : t -> bool

val mem : t -> int -> bool

val push_front : t -> int -> unit
(** Raises [Invalid_argument] if the page is already in the list.

    @raise Invalid_argument if the page is already present. *)

val push_back : t -> int -> unit
(** @raise Invalid_argument if the page is already present. *)

val remove : t -> int -> bool
(** Returns whether the page was present. *)

val move_to_front : t -> int -> unit
(** Raises [Invalid_argument] if absent.

    @raise Invalid_argument if the page is absent. *)

val front : t -> int option

val back : t -> int option

val pop_front : t -> int option

val pop_back : t -> int option

val take_front : t -> int
(** [pop_front] without the option: the removed page, or [-1] when
    empty — the allocation-free form for hot paths. *)

val take_back : t -> int
(** [pop_back] without the option: the removed page, or [-1] when
    empty — the allocation-free form for hot paths. *)

val to_list : t -> int list
(** Front-to-back. *)
