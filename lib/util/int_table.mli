(** An open-addressing hash table from non-negative ints to ints.

    Page tables and residency indexes are hot paths of the simulator;
    this table avoids the boxing and polymorphic hashing of [Hashtbl].
    Keys must be non-negative (virtual/physical page numbers always
    are).  Linear probing with backward-shift deletion, so there are
    no tombstones and load stays honest under churn. *)

type t

val create : ?initial_capacity:int -> unit -> t

val length : t -> int

val mem : t -> int -> bool

val find : t -> int -> int option

val find_exn : t -> int -> int
(** Raises [Not_found]. *)

val find_or : t -> int -> int -> int
(** [find_or t key default] is the bound value, or [default] when the
    key is absent — the allocation-free [find] for hot paths. *)

val set : t -> int -> int -> unit
(** Insert or overwrite. *)

val incr_by : t -> int -> int -> int
(** [incr_by t key delta] adds [delta] to the value stored for [key]
    (treating an absent key as [0]) in a single probe and returns the
    new value.  The entry remains even when the new value is [0];
    callers that need absence semantics must {!remove} it. *)

val add_if_absent : t -> int -> int -> bool
(** Returns [true] if inserted, [false] if the key was present
    (in which case the value is unchanged). *)

val remove : t -> int -> bool
(** Returns whether the key was present. *)

val iter : (int -> int -> unit) -> t -> unit

val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

val clear : t -> unit

val keys : t -> int list
(** Unordered. *)

(** The same open-addressing table with arbitrary (boxed) values: the
    replacement for [(int, 'a) Hashtbl.t] on hot paths, keeping integer
    hashing monomorphic while still carrying a payload per page.

    A removed slot may retain its last value until overwritten; use
    {!Poly.clear} to drop every payload reference at once. *)
module Poly : sig
  type 'a t

  val create : ?initial_capacity:int -> unit -> 'a t

  val length : 'a t -> int

  val mem : 'a t -> int -> bool

  val find : 'a t -> int -> 'a option

  val find_exn : 'a t -> int -> 'a
  (** @raise Not_found when the key is absent. *)

  val find_or : 'a t -> int -> 'a -> 'a
  (** [find_or t key default] is the bound value, or [default] when
      the key is absent — the allocation-free [find] for hot paths. *)

  val set : 'a t -> int -> 'a -> unit
  (** Insert or overwrite. *)

  val remove : 'a t -> int -> bool
  (** Returns whether the key was present. *)

  val iter : (int -> 'a -> unit) -> 'a t -> unit

  val fold : (int -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b

  val clear : 'a t -> unit
end
