(* Streaming importers: external address traces -> VPN sink.

   Parsers are hand-rolled rather than Scanf/regex-based so every
   failure mode is a typed Trace.Parse_error with a line number, and
   so the per-line cost is a few comparisons — imports are expected
   to chew through multi-gigabyte captures. *)

type format = Hex | Lackey | Csv

let pp_format ppf f =
  Format.pp_print_string ppf
    (match f with Hex -> "hex" | Lackey -> "lackey" | Csv -> "csv")

let format_of_string = function
  | "hex" -> Some Hex
  | "lackey" -> Some Lackey
  | "csv" -> Some Csv
  | _ -> None

type radix = Decimal | Hexadecimal

type csv = { column : int; radix : radix; skip_header : bool }

let default_csv = { column = 1; radix = Hexadecimal; skip_header = false }

type config = {
  page_bits : int;
  limit : int option;
  dedup_consecutive : bool;
  drop_instr : bool;
  csv : csv;
}

let default =
  {
    page_bits = 12;
    limit = None;
    dedup_consecutive = false;
    drop_instr = false;
    csv = default_csv;
  }

type stats = { lines : int; parsed : int; emitted : int }

let pp_stats ppf s =
  Format.fprintf ppf "lines=%d parsed=%d emitted=%d" s.lines s.parsed s.emitted

let max_line_bytes = 1 lsl 16

(* Addresses must survive the ATPS zigzag encoding: 62 signed bits. *)
let max_addr = (1 lsl 62) - 1

let fail path ~line fmt =
  Printf.ksprintf
    (fun what ->
      raise
        (Trace.Parse_error { path; what = Printf.sprintf "line %d: %s" line what }))
    fmt

(* Quote at most the head of an offending token: corrupt captures can
   hold arbitrarily long garbage and the diagnostic must stay short. *)
let clip s = if String.length s <= 32 then s else String.sub s 0 32 ^ "..."

let dec_digit c =
  match c with '0' .. '9' -> Char.code c - Char.code '0' | _ -> -1

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> -1

(* [parse_int] decodes a whole token as an unsigned integer of the
   radix, rejecting empty tokens, stray characters, and values that
   would not fit 62 bits.  Hexadecimal tokens may carry an 0x/0X
   prefix (lackey never prints one; hand-written CSVs often do). *)
let parse_int path ~line ~what radix s =
  let base, digit =
    match radix with
    | Decimal -> (10, dec_digit)
    | Hexadecimal -> (16, hex_digit)
  in
  let start =
    match radix with
    | Hexadecimal
      when String.length s >= 2
           && s.[0] = '0'
           && (s.[1] = 'x' || s.[1] = 'X') ->
      2
    | Hexadecimal | Decimal -> 0
  in
  let len = String.length s in
  if len = start then fail path ~line "empty %s %S" what (clip s);
  let v = ref 0 in
  for i = start to len - 1 do
    let d = digit s.[i] in
    if d < 0 then fail path ~line "bad %s %S" what (clip s);
    if !v > (max_addr - d) / base then
      fail path ~line "%s %S overflows 62 bits" what (clip s);
    v := (!v * base) + d
  done;
  !v

let is_space c = c = ' ' || c = '\t'

(* First whitespace-separated token of a trimmed, nonempty line. *)
let first_token s =
  let len = String.length s in
  let stop = ref 0 in
  while !stop < len && not (is_space s.[!stop]) do
    incr stop
  done;
  String.sub s 0 !stop

(* --- hex: one address per line, extra columns ignored -------------- *)

let hex_line path ~line s =
  (* Anything after the address — an R/W marker, a size, a comment the
     capturing tool appended — is tolerated and skipped; only the
     leading token must be a hex address. *)
  Some (parse_int path ~line ~what:"hex address" Hexadecimal (first_token s))

(* --- lackey: "I/L/S/M addr,size" records --------------------------- *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let lackey_line path ~line ~drop_instr s =
  if starts_with ~prefix:"==" s || starts_with ~prefix:"--" s then
    (* valgrind banners and option echoes wrap the record stream *)
    None
  else
    let kind = s.[0] in
    match kind with
    | ('I' | 'L' | 'S' | 'M') when String.length s >= 2 && is_space s.[1] ->
      let rest = String.trim (String.sub s 2 (String.length s - 2)) in
      let addr_str, size_str =
        match String.index_opt rest ',' with
        | Some i ->
          ( String.sub rest 0 i,
            Some (String.sub rest (i + 1) (String.length rest - i - 1)) )
        | None -> (rest, None)
      in
      let addr =
        parse_int path ~line ~what:"lackey address" Hexadecimal
          (String.trim addr_str)
      in
      (* The size column is validated (a malformed record should not
         import silently) but its value is irrelevant to paging. *)
      Option.iter
        (fun sz ->
          ignore
            (parse_int path ~line ~what:"lackey size" Decimal
               (first_token (String.trim sz))))
        size_str;
      if kind = 'I' && drop_instr then None else Some addr
    | _ -> fail path ~line "unrecognized lackey record %S" (clip s)

(* --- csv: address in a fixed column -------------------------------- *)

let csv_line path ~line ~csv s =
  let fields = String.split_on_char ',' s in
  match List.nth_opt fields (csv.column - 1) with
  | None ->
    fail path ~line "row has %d columns, address expected in column %d"
      (List.length fields) csv.column
  | Some f ->
    Some (parse_int path ~line ~what:"csv address" csv.radix (String.trim f))

(* --- the streaming driver ------------------------------------------ *)

let validate config =
  if config.page_bits < 0 || config.page_bits > 62 then
    invalid_arg "Import: page_bits must be in [0, 62]";
  (match config.limit with
  | Some l when l < 0 -> invalid_arg "Import: limit must be non-negative"
  | Some _ | None -> ());
  if config.csv.column < 1 then invalid_arg "Import: csv column is 1-based"

(* Bounded line reader: one line into the reused buffer, never more
   than [max_line_bytes] of it resident.  `Overlong is reported by the
   caller as a parse error at the offending line. *)
let read_line ic buf =
  Buffer.clear buf;
  let rec go () =
    match input_char ic with
    | exception End_of_file -> if Buffer.length buf = 0 then `Eof else `Line
    | '\n' -> `Line
    | c ->
      if Buffer.length buf >= max_line_bytes then `Overlong
      else begin
        Buffer.add_char buf c;
        go ()
      end
  in
  go ()

let bom = "\xef\xbb\xbf"

let strip_bom s = if starts_with ~prefix:bom s then String.sub s 3 (String.length s - 3) else s

let import ?(config = default) ~format path sink =
  validate config;
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let buf = Buffer.create 256 in
      let lines = ref 0 and parsed = ref 0 and emitted = ref 0 in
      let last = ref min_int in
      let stop = ref false in
      while not !stop do
        match read_line ic buf with
        | `Eof -> stop := true
        | `Overlong ->
          fail path ~line:(!lines + 1) "line exceeds %d bytes" max_line_bytes
        | `Line ->
          incr lines;
          let line = !lines in
          let raw = Buffer.contents buf in
          let raw = if line = 1 then strip_bom raw else raw in
          let s = String.trim raw in
          let addr =
            if String.equal s "" || s.[0] = '#' then None
            else
              match format with
              | Hex -> hex_line path ~line s
              | Lackey ->
                lackey_line path ~line ~drop_instr:config.drop_instr s
              | Csv ->
                if line = 1 && config.csv.skip_header then None
                else csv_line path ~line ~csv:config.csv s
          in
          (match addr with
          | None -> ()
          | Some addr ->
            incr parsed;
            let vpn = addr lsr config.page_bits in
            if not (config.dedup_consecutive && !last = vpn) then begin
              sink vpn;
              last := vpn;
              incr emitted;
              match config.limit with
              | Some l when !emitted >= l -> stop := true
              | Some _ | None -> ()
            end)
      done;
      { lines = !lines; parsed = !parsed; emitted = !emitted })

(* --- sniffing ------------------------------------------------------ *)

(* Probe classification of one trimmed content line.  `Dec lines are
   native text traces (decimal page per line); anything shaped like an
   address record votes for an import format; junk stops the scan so
   Trace.load's own bad-line diagnostic fires. *)
let classify_line s =
  if starts_with ~prefix:"==" s || starts_with ~prefix:"--" s then `Skip
  else
    let tok = first_token s in
    let is_all dig t =
      String.length t > 0
      &&
      let ok = ref true in
      String.iter (fun c -> if dig c < 0 then ok := false) t;
      !ok
    in
    match s.[0] with
    | ('I' | 'L' | 'S' | 'M') when String.length s >= 2 && is_space s.[1] ->
      `Import Lackey
    | _ ->
      if String.contains s ',' then `Import Csv
      else if is_all dec_digit tok && String.equal tok s then `Dec
      else if
        is_all hex_digit tok
        || (String.length tok > 2
           && tok.[0] = '0'
           && (tok.[1] = 'x' || tok.[1] = 'X')
           && is_all hex_digit (String.sub tok 2 (String.length tok - 2)))
      then `Import Hex
      else `Junk

let probe_bytes = 4096

let sniff path =
  match Trace.format_of_file path with
  | (Trace.Binary | Trace.Streamed) as f -> `Native f
  | Trace.Text | Trace.Hex ->
    let ic = open_in_bin path in
    let probe =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let want = min probe_bytes (in_channel_length ic) in
          really_input_string ic want)
    in
    let lines = String.split_on_char '\n' probe in
    (* Drop the final fragment when the probe was cut mid-line. *)
    let lines =
      if String.length probe = probe_bytes then
        match List.rev lines with _ :: tl -> List.rev tl | [] -> []
      else lines
    in
    let verdict = ref None in
    let inspected = ref 0 in
    List.iter
      (fun l ->
        let s = String.trim (strip_bom l) in
        if
          Option.is_none !verdict
          && !inspected < 16
          && not (String.equal s "" || s.[0] = '#')
        then begin
          match classify_line s with
          | `Skip -> ()
          | `Dec -> incr inspected
          | `Junk -> verdict := Some (`Native Trace.Text)
          | `Import f -> verdict := Some (`Import f)
        end)
      lines;
    Option.value !verdict ~default:(`Native Trace.Text)

let import_file ?chunk_size ?config ?format ~src ~dst () =
  let format =
    match format with
    | Some f -> f
    | None -> (
      match sniff src with
      | `Import f -> f
      | `Native f ->
        raise
          (Trace.Parse_error
             {
               path = src;
               what =
                 Format.asprintf
                   "already a native %a trace; convert it with `atsim trace \
                    pack` instead of import"
                   Trace.pp_format f;
             }))
  in
  match
    Trace.Stream.with_writer ?chunk_size dst (fun w ->
        import ?config ~format src (Trace.Stream.push w))
  with
  | stats -> stats
  | exception e ->
    (try Sys.remove dst with Sys_error _ -> ());
    raise e
