open Atp_util

type summary = {
  length : int;
  footprint : int;
  min_page : int;
  max_page : int;
}

let summarize trace =
  if Array.length trace = 0 then
    { length = 0; footprint = 0; min_page = 0; max_page = 0 }
  else begin
    let seen = Int_table.create () in
    let min_page = ref max_int and max_page = ref min_int in
    Array.iter
      (fun page ->
        ignore (Int_table.add_if_absent seen page 1);
        if page < !min_page then min_page := page;
        if page > !max_page then max_page := page)
      trace;
    {
      length = Array.length trace;
      footprint = Int_table.length seen;
      min_page = !min_page;
      max_page = !max_page;
    }
  end

exception Parse_error of { path : string; what : string }

let () =
  Printexc.register_printer (function
    | Parse_error { path; what } ->
      Some (Printf.sprintf "Trace.Parse_error(%s: %s)" path what)
    | _ -> None)

let parse_error path fmt =
  Printf.ksprintf (fun what -> raise (Parse_error { path; what })) fmt

let with_out path f =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let with_in path f =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)

let save_text path trace =
  with_out path (fun oc ->
      Array.iter (fun page -> Printf.fprintf oc "%d\n" page) trace)

(* A growable flat int buffer: parsing must not build a boxed
   intermediate list (it used to cost ~4x the trace in peak memory). *)
module Growbuf = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 1024 0; len = 0 }

  let push t v =
    if t.len = Array.length t.data then begin
      let bigger = Array.make (2 * t.len) 0 in
      Array.blit t.data 0 bigger 0 t.len;
      t.data <- bigger
    end;
    t.data.(t.len) <- v;
    t.len <- t.len + 1

  let contents t = Array.sub t.data 0 t.len
end

let load_text_ic path ic =
  let buf = Growbuf.create () in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then begin
         match int_of_string_opt line with
         | Some page -> Growbuf.push buf page
         | None -> parse_error path "bad line %S" line
       end
     done
   with End_of_file -> ());
  Growbuf.contents buf

let load_text path = with_in path (fun ic -> load_text_ic path ic)

let magic = "ATPT"

let write_u64 oc v =
  for shift = 0 to 7 do
    output_byte oc ((v lsr (8 * shift)) land 0xFF)
  done

let read_u64 ic =
  let v = ref 0 in
  for shift = 0 to 7 do
    let byte = input_byte ic in
    v := !v lor (byte lsl (8 * shift))
  done;
  !v

let save_binary path trace =
  with_out path (fun oc ->
      output_string oc magic;
      write_u64 oc (Array.length trace);
      Array.iter (fun page -> write_u64 oc page) trace)

(* Body of an ATPT file, the magic already consumed.  The declared
   count is validated against the file size before the array is
   sized: a corrupt count must fail as a parse error, not as a
   multi-gigabyte allocation. *)
let load_binary_body path ic =
  match read_u64 ic with
  | exception End_of_file -> parse_error path "truncated header"
  | n ->
    if n < 0 || n > in_channel_length ic / 8 then
      parse_error path "declared count %d exceeds file size" n;
    (try Array.init n (fun _ -> read_u64 ic)
     with End_of_file -> parse_error path "truncated body")

let load_binary path =
  with_in path (fun ic ->
      let m =
        try really_input_string ic 4
        with End_of_file -> parse_error path "truncated magic"
      in
      if not (String.equal m magic) then parse_error path "bad magic";
      load_binary_body path ic)

(* ------------------------------------------------------------------ *)
(* The streamed chunked format (ATPS)                                  *)
(* ------------------------------------------------------------------ *)

module Stream = struct
  let magic = "ATPS"

  let version = 1

  let default_chunk_size = 1 lsl 16

  (* Worst case for one zigzag varint of a 63-bit int. *)
  let max_varint_bytes = 10

  let length_offset = 4 + (2 * 8)

  type header = { version : int; chunk_size : int; length : int }

  type chunk = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

  let zigzag n = (n lsl 1) lxor (n asr 62)

  let unzigzag u = (u lsr 1) lxor (- (u land 1))

  let put_varint buf pos v =
    let v = ref v and pos = ref pos in
    while !v lsr 7 <> 0 do
      Bytes.unsafe_set buf !pos (Char.unsafe_chr (0x80 lor (!v land 0x7F)));
      incr pos;
      v := !v lsr 7
    done;
    Bytes.unsafe_set buf !pos (Char.unsafe_chr !v);
    !pos + 1

  let get_varint path buf pos limit =
    let v = ref 0 and shift = ref 0 and pos = ref pos and more = ref true in
    while !more do
      if !pos >= limit then parse_error path "truncated varint";
      let b = Char.code (Bytes.unsafe_get buf !pos) in
      incr pos;
      v := !v lor ((b land 0x7F) lsl !shift);
      shift := !shift + 7;
      more := b land 0x80 <> 0;
      if !more && !shift >= 63 then parse_error path "varint overflow"
    done;
    (!v, !pos)

  (* --- writer ----------------------------------------------------- *)

  type writer = {
    w_oc : out_channel;
    w_chunk_size : int;
    w_pending : chunk;
    w_enc : Bytes.t;
    mutable w_fill : int;
    mutable w_written : int;
    mutable w_closed : bool;
  }

  let open_writer ?(chunk_size = default_chunk_size) path =
    if chunk_size < 1 then
      invalid_arg "Trace.Stream.open_writer: chunk_size must be positive";
    let oc = open_out_bin path in
    output_string oc magic;
    write_u64 oc version;
    write_u64 oc chunk_size;
    write_u64 oc 0;
    {
      w_oc = oc;
      w_chunk_size = chunk_size;
      w_pending = Bigarray.Array1.create Bigarray.int Bigarray.c_layout chunk_size;
      w_enc = Bytes.create (chunk_size * max_varint_bytes);
      w_fill = 0;
      w_written = 0;
      w_closed = false;
    }

  let flush_chunk w =
    if w.w_fill > 0 then begin
      let pos = ref 0 and prev = ref 0 in
      for i = 0 to w.w_fill - 1 do
        let page = Bigarray.Array1.unsafe_get w.w_pending i in
        (* First reference absolute, the rest deltas: chunks decode
           standalone, so a reader can skip or parallelize over them. *)
        let v = if i = 0 then page else page - !prev in
        pos := put_varint w.w_enc !pos (zigzag v);
        prev := page
      done;
      write_u64 w.w_oc w.w_fill;
      write_u64 w.w_oc !pos;
      output w.w_oc w.w_enc 0 !pos;
      w.w_written <- w.w_written + w.w_fill;
      w.w_fill <- 0
    end

  let push w page =
    if w.w_closed then invalid_arg "Trace.Stream.push: writer is closed";
    Bigarray.Array1.unsafe_set w.w_pending w.w_fill page;
    w.w_fill <- w.w_fill + 1;
    if w.w_fill = w.w_chunk_size then flush_chunk w

  let close_writer w =
    if not w.w_closed then begin
      w.w_closed <- true;
      flush_chunk w;
      seek_out w.w_oc length_offset;
      write_u64 w.w_oc w.w_written;
      close_out w.w_oc
    end

  let with_writer ?chunk_size path f =
    let w = open_writer ?chunk_size path in
    Fun.protect ~finally:(fun () -> close_writer w) (fun () -> f w)

  (* --- reader ----------------------------------------------------- *)

  type reader = {
    r_ic : in_channel;
    r_path : string;
    r_header : header;
    r_buf : chunk;
    r_raw : Bytes.t;
    mutable r_consumed : int;
    mutable r_len : int;  (* refs decoded into [r_buf] by the last fill *)
    mutable r_pos : int;  (* of which, how many [read_into] consumed *)
    mutable r_closed : bool;
  }

  let read_u64_or path what ic =
    try read_u64 ic with End_of_file -> parse_error path "truncated %s" what

  (* The magic already consumed; parse the rest of the header and hand
     back a reader owning [ic]. *)
  let reader_of_channel path ic =
    let v = read_u64_or path "header" ic in
    if v <> version then parse_error path "unsupported version %d" v;
    let chunk_size = read_u64_or path "header" ic in
    if chunk_size < 1 then parse_error path "bad chunk_size %d" chunk_size;
    if chunk_size > 1 lsl 28 then
      parse_error path "unreasonable chunk_size %d" chunk_size;
    let length = read_u64_or path "header" ic in
    if length < 0 then parse_error path "bad length %d" length;
    (* Every reference occupies at least one payload byte, so a sane
       declared length never exceeds the file size; checking it (and
       sizing the chunk buffers by [min chunk_size length]) keeps a
       corrupt header from provoking an allocation far larger than
       the file itself. *)
    if length > in_channel_length ic then
      parse_error path "declared length %d exceeds file size" length;
    let dim = max 1 (min chunk_size length) in
    {
      r_ic = ic;
      r_path = path;
      r_header = { version = v; chunk_size; length };
      r_buf = Bigarray.Array1.create Bigarray.int Bigarray.c_layout dim;
      r_raw = Bytes.create (dim * max_varint_bytes);
      r_consumed = 0;
      r_len = 0;
      r_pos = 0;
      r_closed = false;
    }

  let open_reader path =
    let ic = open_in_bin path in
    match
      let m =
        try really_input_string ic 4
        with End_of_file -> parse_error path "truncated magic"
      in
      if not (String.equal m magic) then parse_error path "bad magic %S" m;
      reader_of_channel path ic
    with
    | r -> r
    | exception e ->
      close_in_noerr ic;
      raise e

  let header r = r.r_header

  let close_reader r =
    if not r.r_closed then begin
      r.r_closed <- true;
      close_in r.r_ic
    end

  (* Decode the next chunk into the reused [r_buf]; returns the number
     of refs decoded, 0 at end of stream.  Allocation-free: the refs
     are valid only until the next fill. *)
  let fill_chunk r =
    if r.r_closed || r.r_consumed >= r.r_header.length then begin
      r.r_len <- 0;
      r.r_pos <- 0;
      0
    end
    else begin
      let path = r.r_path in
      let n = read_u64_or path "chunk header" r.r_ic in
      let nbytes = read_u64_or path "chunk header" r.r_ic in
      if n < 1 || n > r.r_header.chunk_size then
        parse_error path "bad chunk count %d" n;
      if r.r_consumed + n > r.r_header.length then
        parse_error path "chunk overruns declared length";
      if nbytes < n || nbytes > n * max_varint_bytes then
        parse_error path "bad chunk payload size %d" nbytes;
      (try really_input r.r_ic r.r_raw 0 nbytes
       with End_of_file -> parse_error path "truncated chunk payload");
      let pos = ref 0 and prev = ref 0 in
      for i = 0 to n - 1 do
        let v, p = get_varint path r.r_raw !pos nbytes in
        pos := p;
        let d = unzigzag v in
        let page = if i = 0 then d else !prev + d in
        Bigarray.Array1.unsafe_set r.r_buf i page;
        prev := page
      done;
      if !pos <> nbytes then parse_error path "chunk payload size mismatch";
      r.r_consumed <- r.r_consumed + n;
      r.r_len <- n;
      r.r_pos <- 0;
      n
    end

  let next_chunk r =
    let n = fill_chunk r in
    r.r_pos <- r.r_len;
    if n = 0 then None else Some (Bigarray.Array1.sub r.r_buf 0 n)

  let fold_chunks f acc r =
    let rec go acc =
      let n = fill_chunk r in
      if n = 0 then acc
      else begin
        r.r_pos <- r.r_len;
        go (f acc r.r_buf n)
      end
    in
    go acc

  let read_into r dst pos len =
    if pos < 0 || len < 0 || pos + len > Array.length dst then
      invalid_arg "Trace.Stream.read_into";
    let filled = ref 0 in
    let eof = ref false in
    while !filled < len && not !eof do
      if r.r_pos >= r.r_len then begin
        if fill_chunk r = 0 then eof := true
      end
      else begin
        let k = min (len - !filled) (r.r_len - r.r_pos) in
        let base = pos + !filled and off = r.r_pos in
        for i = 0 to k - 1 do
          Array.unsafe_set dst (base + i)
            (Bigarray.Array1.unsafe_get r.r_buf (off + i))
        done;
        r.r_pos <- off + k;
        filled := !filled + k
      end
    done;
    !filled

  let with_reader path f =
    let r = open_reader path in
    Fun.protect ~finally:(fun () -> close_reader r) (fun () -> f r)

  let iter f path =
    with_reader path (fun r ->
        let rec go () =
          match next_chunk r with
          | None -> ()
          | Some c ->
            for i = 0 to Bigarray.Array1.dim c - 1 do
              f (Bigarray.Array1.unsafe_get c i)
            done;
            go ()
        in
        go ())

  let source path =
    let r = open_reader path in
    let cur = ref None and idx = ref 0 in
    let rec next () =
      match !cur with
      | Some c when !idx < Bigarray.Array1.dim c ->
        let v = Bigarray.Array1.unsafe_get c !idx in
        incr idx;
        Some v
      | _ -> (
        match next_chunk r with
        | None ->
          close_reader r;
          None
        | Some c ->
          cur := Some c;
          idx := 0;
          next ())
    in
    next

  let to_array_of_reader r =
    let buf = Growbuf.create () in
    let rec go () =
      match next_chunk r with
      | None -> ()
      | Some c ->
        for i = 0 to Bigarray.Array1.dim c - 1 do
          Growbuf.push buf (Bigarray.Array1.unsafe_get c i)
        done;
        go ()
    in
    go ();
    let arr = Growbuf.contents buf in
    if Array.length arr <> r.r_header.length then
      parse_error r.r_path "file holds %d refs, header declares %d"
        (Array.length arr) r.r_header.length;
    arr

  let to_array path = with_reader path to_array_of_reader

  let pack_array ?chunk_size path trace =
    with_writer ?chunk_size path (fun w -> Array.iter (push w) trace)
end

(* ------------------------------------------------------------------ *)
(* Format dispatch                                                     *)
(* ------------------------------------------------------------------ *)

type format = Text | Binary | Streamed | Hex

let pp_format ppf f =
  Format.pp_print_string ppf
    (match f with
    | Text -> "text"
    | Binary -> "binary"
    | Streamed -> "streamed"
    | Hex -> "hex")

(* External hex address traces (the classic one-address-per-line
   `trace.tr`, lackey logs, CSVs) used to sniff as the decimal text
   format: an all-digit hex address like "12345678" then parsed
   {e silently} as decimal, and "0041f7a0" died with a confusing "bad
   line".  The sniffer now also inspects the first content lines of a
   non-magic file; address-shaped lines (hex letters, an 0x prefix,
   extra columns, commas, lackey records) classify it as [Hex], which
   {!load} refuses with a pointer at `atsim trace import`.  A file of
   bare digit-only single-column lines is genuinely ambiguous and
   stays [Text]. *)

let probe_bytes = 4096

let is_dec_token s =
  let len = String.length s in
  let start = if len > 0 && s.[0] = '-' then 1 else 0 in
  len > start
  &&
  let ok = ref true in
  for i = start to len - 1 do
    match s.[i] with '0' .. '9' -> () | _ -> ok := false
  done;
  !ok

let is_hex_token s =
  let start =
    if String.length s > 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then 2
    else 0
  in
  String.length s > start
  &&
  let ok = ref true in
  for i = start to String.length s - 1 do
    match s.[i] with '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> () | _ -> ok := false
  done;
  !ok

(* One trimmed, nonempty, non-comment probe line: [`Dec] looks like
   the native decimal format (keep scanning), [`Hexish] like an
   external address record, [`Junk] like neither — stop and stay
   [Text] so [load_text]'s own bad-line diagnostic fires. *)
let classify_probe_line s =
  let tok_end =
    let i = ref 0 in
    while
      !i < String.length s && not (s.[!i] = ' ' || s.[!i] = '\t')
    do
      incr i
    done;
    !i
  in
  let tok = String.sub s 0 tok_end in
  let multi = tok_end < String.length s in
  match s.[0] with
  | ('I' | 'L' | 'S' | 'M') when multi -> `Hexish
  | _ ->
    if String.contains s ',' then `Hexish
    else if (not multi) && is_dec_token tok then `Dec
    else if is_hex_token tok then `Hexish
    else `Junk

let text_probe_is_hex probe ~truncated =
  let lines = String.split_on_char '\n' probe in
  let lines =
    (* The probe may have been cut mid-line; never judge the fragment. *)
    if truncated then match List.rev lines with _ :: tl -> List.rev tl | [] -> []
    else lines
  in
  let verdict = ref None in
  let inspected = ref 0 in
  List.iter
    (fun l ->
      let s = String.trim l in
      if
        Option.is_none !verdict
        && !inspected < 16
        && not (String.equal s "" || s.[0] = '#')
      then begin
        incr inspected;
        match classify_probe_line s with
        | `Dec -> ()
        | `Hexish -> verdict := Some true
        | `Junk -> verdict := Some false
      end)
    lines;
  Option.value !verdict ~default:false

(* One open, one sniff: read up to 4 bytes, dispatch on them, and for
   non-magic files inspect a bounded text probe before rewinding so
   the sniffed bytes are parsed as content. *)
let sniff_format ic =
  let len = in_channel_length ic in
  let head = really_input_string ic (min 4 len) in
  if String.equal head magic then Binary
  else if String.equal head Stream.magic then Streamed
  else begin
    seek_in ic 0;
    let probe = really_input_string ic (min probe_bytes len) in
    seek_in ic 0;
    if text_probe_is_hex probe ~truncated:(len > probe_bytes) then Hex else Text
  end

let format_of_file path = with_in path sniff_format

let hex_refusal path =
  parse_error path
    "looks like a hex address trace, not a decimal page trace; convert it \
     with `atsim trace import --page-bits N` first"

let load path =
  with_in path (fun ic ->
      match sniff_format ic with
      | Binary -> load_binary_body path ic
      | Streamed -> Stream.to_array_of_reader (Stream.reader_of_channel path ic)
      | Text -> load_text_ic path ic
      | Hex -> hex_refusal path)

let pack ?chunk_size ~src ~dst () =
  with_in src (fun ic ->
      Stream.with_writer ?chunk_size dst (fun w ->
          match sniff_format ic with
          | Binary ->
            let n =
              match read_u64 ic with
              | exception End_of_file -> parse_error src "truncated header"
              | n -> n
            in
            (try
               for _ = 1 to n do
                 Stream.push w (read_u64 ic)
               done
             with End_of_file -> parse_error src "truncated body")
          | Streamed ->
            let r = Stream.reader_of_channel src ic in
            let rec go () =
              match Stream.next_chunk r with
              | None -> ()
              | Some c ->
                for i = 0 to Bigarray.Array1.dim c - 1 do
                  Stream.push w (Bigarray.Array1.unsafe_get c i)
                done;
                go ()
            in
            go ()
          | Text ->
            (try
               while true do
                 let line = String.trim (input_line ic) in
                 if line <> "" && line.[0] <> '#' then begin
                   match int_of_string_opt line with
                   | Some page -> Stream.push w page
                   | None -> parse_error src "bad line %S" line
                 end
               done
             with End_of_file -> ())
          | Hex -> hex_refusal src))

let pp_summary ppf s =
  Format.fprintf ppf "length=%a footprint=%a pages=[%d, %d]"
    Stats.pp_count s.length Stats.pp_count s.footprint s.min_page s.max_page

let replay ?(loop = true) trace =
  if Array.length trace = 0 then invalid_arg "Trace.replay: empty trace";
  let s = summarize trace in
  let pos = ref 0 in
  let next () =
    if !pos >= Array.length trace then
      if loop then pos := 0 else raise End_of_file;
    let page = trace.(!pos) in
    incr pos;
    page
  in
  {
    Workload.name = "replay";
    virtual_pages = s.max_page + 1;
    description =
      Printf.sprintf "recorded trace of %d references over %d pages%s"
        s.length s.footprint
        (if loop then ", looping" else "");
    next;
  }

let workload_of_file ?loop path = replay ?loop (load path)
