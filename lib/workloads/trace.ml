open Atp_util

type summary = {
  length : int;
  footprint : int;
  min_page : int;
  max_page : int;
}

let summarize trace =
  if Array.length trace = 0 then
    { length = 0; footprint = 0; min_page = 0; max_page = 0 }
  else begin
    let seen = Int_table.create () in
    let min_page = ref max_int and max_page = ref min_int in
    Array.iter
      (fun page ->
        ignore (Int_table.add_if_absent seen page 1);
        if page < !min_page then min_page := page;
        if page > !max_page then max_page := page)
      trace;
    {
      length = Array.length trace;
      footprint = Int_table.length seen;
      min_page = !min_page;
      max_page = !max_page;
    }
  end

exception Parse_error of { path : string; what : string }

let () =
  Printexc.register_printer (function
    | Parse_error { path; what } ->
      Some (Printf.sprintf "Trace.Parse_error(%s: %s)" path what)
    | _ -> None)

let parse_error path fmt =
  Printf.ksprintf (fun what -> raise (Parse_error { path; what })) fmt

let with_out path f =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let with_in path f =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)

let save_text path trace =
  with_out path (fun oc ->
      Array.iter (fun page -> Printf.fprintf oc "%d\n" page) trace)

let load_text path =
  with_in path (fun ic ->
      let acc = ref [] in
      let count = ref 0 in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line <> "" && line.[0] <> '#' then begin
             match int_of_string_opt line with
             | Some page ->
               acc := page :: !acc;
               incr count
             | None -> parse_error path "bad line %S" line
           end
         done
       with End_of_file -> ());
      let arr = Array.make !count 0 in
      List.iteri (fun i page -> arr.(!count - 1 - i) <- page) !acc;
      arr)

let magic = "ATPT"

let write_u64 oc v =
  for shift = 0 to 7 do
    output_byte oc ((v lsr (8 * shift)) land 0xFF)
  done

let read_u64 ic =
  let v = ref 0 in
  for shift = 0 to 7 do
    let byte = input_byte ic in
    v := !v lor (byte lsl (8 * shift))
  done;
  !v

let save_binary path trace =
  with_out path (fun oc ->
      output_string oc magic;
      write_u64 oc (Array.length trace);
      Array.iter (fun page -> write_u64 oc page) trace)

let load_binary path =
  with_in path (fun ic ->
      let m =
        try really_input_string ic 4
        with End_of_file -> parse_error path "truncated magic"
      in
      if not (String.equal m magic) then parse_error path "bad magic";
      match read_u64 ic with
      | exception End_of_file -> parse_error path "truncated header"
      | n ->
        (try Array.init n (fun _ -> read_u64 ic)
         with End_of_file -> parse_error path "truncated body"))

let pp_summary ppf s =
  Format.fprintf ppf "length=%a footprint=%a pages=[%d, %d]"
    Stats.pp_count s.length Stats.pp_count s.footprint s.min_page s.max_page

let replay ?(loop = true) trace =
  if Array.length trace = 0 then invalid_arg "Trace.replay: empty trace";
  let s = summarize trace in
  let pos = ref 0 in
  let next () =
    if !pos >= Array.length trace then
      if loop then pos := 0 else raise End_of_file;
    let page = trace.(!pos) in
    incr pos;
    page
  in
  {
    Workload.name = "replay";
    virtual_pages = s.max_page + 1;
    description =
      Printf.sprintf "recorded trace of %d references over %d pages%s"
        s.length s.footprint
        (if loop then ", looping" else "");
    next;
  }

let workload_of_file ?loop path =
  let is_binary =
    try
      with_in path (fun ic ->
          let m = really_input_string ic 4 in
          m = magic)
    with End_of_file -> false
  in
  replay ?loop (if is_binary then load_binary path else load_text path)
