(** Elementary reference patterns, for calibration and tests. *)

val uniform : virtual_pages:int -> Atp_util.Prng.t -> Workload.t
(** @raise Invalid_argument if the space is empty. *)

val sequential : virtual_pages:int -> unit -> Workload.t
(** 0, 1, 2, …, wrapping: the classic scan that defeats LRU when the
    cache is one page too small.

    @raise Invalid_argument if the space is empty. *)

val strided : stride:int -> virtual_pages:int -> unit -> Workload.t
(** 0, s, 2s, …, wrapping.

    @raise Invalid_argument if the space is empty or [stride < 1]. *)

val zipf : ?s:float -> virtual_pages:int -> Atp_util.Prng.t -> Workload.t
(** Zipf-popular pages ([s] defaults to 1.0): a generic skewed
    workload. *)

val looping : window:int -> virtual_pages:int -> unit -> Workload.t
(** Cyclic scan over the first [window] pages — OPT's canonical
    advantage case over LRU.

    @raise Invalid_argument on a window that is empty or larger than
    the space. *)
