(** Workload combinators: build multi-tenant and phase-changing
    reference streams out of simple ones.

    Cloud consolidation — many tenants sharing one TLB and one RAM —
    is a core motivation of the paper; these combinators produce such
    streams while keeping every component reproducible. *)

val offset : by:int -> Workload.t -> Workload.t
(** Shift every page by [by] (disjoint address ranges for tenants).
    [virtual_pages] grows accordingly.

    @raise Invalid_argument if [by < 0]. *)

val interleave :
  ?weights:float array -> Workload.t array -> Atp_util.Prng.t -> Workload.t
(** Each access comes from workload [i] with probability proportional
    to [weights.(i)] (uniform by default).  Address spaces are NOT
    offset automatically — combine with {!offset} for disjoint
    tenants.

    @raise Invalid_argument if there are no workloads or the weight
    array length does not match. *)

(** {2 Splittable mix specs}

    A {!spec} is an uninstantiated mix: component {e constructors}
    rather than built workloads.  {!instantiate} builds each component
    on its own generator split off the tenant's, so a fleet can stamp
    out thousands of tenants from one spec with fully independent
    streams.  Passing one shared generator to every component
    constructor — the only option before specs — seed-couples them:
    each sample drawn for one component advances all the others. *)

type spec

val spec :
  ?weights:float array ->
  ?name:string ->
  (Atp_util.Prng.t -> Workload.t) array ->
  spec
(** Component constructors with optional mixing [weights] (uniform by
    default); [name] (default ["mix"]) becomes the instantiated
    workload's name.

    @raise Invalid_argument if there are no components or the weight
    array length does not match. *)

val spec_name : spec -> string

val instantiate : spec -> Atp_util.Prng.t -> Workload.t
(** Build the mix: the picker and each component get independent
    generators split off [rng], so two tenants with the same spec but
    different seeds produce independent streams, and a component's
    stream does not shift when a sibling component changes.

    @raise Invalid_argument via {!interleave} on a malformed spec. *)

val round_robin : quantum:int -> Workload.t array -> Workload.t
(** Deterministic scheduling: [quantum] accesses from each workload in
    turn — a time-sliced CPU.

    @raise Invalid_argument if there are no workloads or
    [quantum < 1]. *)

val phases : (int * Workload.t) list -> Workload.t
(** [phases [(n1, w1); (n2, w2); …]] plays [n1] accesses of [w1], then
    [n2] of [w2], …, cycling forever — program phase behaviour.

    @raise Invalid_argument if [spec] is empty or a phase length is
    less than 1. *)
