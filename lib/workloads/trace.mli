(** Trace persistence and summary statistics, so users can bring their
    own recorded page traces (the paper's graph500 experiment replays
    one) and so generated traces can be archived.

    Three on-disk formats are supported, dispatched on magic bytes:
    - {e text}: one decimal page per line, [#] comments;
    - {e binary} ("ATPT"): a count then fixed-width 64-bit pages;
    - {e streamed} ("ATPS", {!module:Stream}): delta-encoded varint
      chunks behind a Bigarray-backed reader, so billion-reference
      traces replay without ever being fully resident. *)

type summary = {
  length : int;
  footprint : int;  (** distinct pages touched *)
  min_page : int;
  max_page : int;
}

exception Parse_error of { path : string; what : string }
(** A trace file that cannot be decoded: bad magic, truncated frame,
    or a malformed text line.  [path] is the offending file and [what]
    a human-readable description. *)

val summarize : int array -> summary

val save_text : string -> int array -> unit
(** One decimal page number per line. *)

val load_text : string -> int array
(** Ignores blank lines and [#]-comments.  Parses into a growable flat
    int buffer — peak memory is one over-allocated array, not a boxed
    list.
    @raise Parse_error on a malformed line. *)

val save_binary : string -> int array -> unit
(** A small framed format: magic "ATPT", a 64-bit little-endian count,
    then 64-bit little-endian page numbers. *)

val load_binary : string -> int array
(** @raise Parse_error on bad magic or a truncated file. *)

(** The streamed trace format, magic "ATPS": a fixed header (magic,
    64-bit version, chunk size, reference count) followed by framed
    chunks.  Each chunk stores its first reference absolute and the
    rest as deltas from the previous reference, all as zigzag LEB128
    varints — graph traces are locality-heavy, so deltas are short —
    and decodes standalone.  Readers hold one chunk at a time in a
    reused Bigarray, so memory is bounded by the chunk size whatever
    the trace length.  Values must fit 62 signed bits. *)
module Stream : sig
  val magic : string
  (** ["ATPS"]. *)

  val version : int

  val default_chunk_size : int
  (** 65536 references per chunk. *)

  type header = { version : int; chunk_size : int; length : int }

  type chunk = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
  (** A decoded run of references.  The array is a view into the
      reader's reused buffer: consume it before the next
      {!next_chunk} call. *)

  type writer

  val open_writer : ?chunk_size:int -> string -> writer
  (** Create or truncate a streamed trace at the path.  The header's
      reference count is patched on {!close_writer}, so the target
      must be a seekable regular file.
      @raise Invalid_argument if [chunk_size < 1]. *)

  val push : writer -> int -> unit
  (** Append one reference; flushes a frame every [chunk_size] pushes.
      @raise Invalid_argument if the writer is closed. *)

  val close_writer : writer -> unit
  (** Flush the final partial chunk, patch the header count, close the
      file.  Idempotent. *)

  val with_writer : ?chunk_size:int -> string -> (writer -> 'a) -> 'a
  (** Bracket: closes (and so finalizes the header) on any exit.
      @raise Invalid_argument if [chunk_size < 1]. *)

  type reader

  val open_reader : string -> reader
  (** @raise Parse_error on bad magic or a malformed header.
      @raise Sys_error if the file cannot be opened. *)

  val header : reader -> header

  val next_chunk : reader -> chunk option
  (** The next decoded chunk, or [None] once the declared count has
      been delivered.  The returned view aliases the reader's buffer.
      @raise Parse_error on a truncated or corrupt frame. *)

  val fold_chunks : ('a -> chunk -> int -> 'a) -> 'a -> reader -> 'a
  (** [fold_chunks f acc r] runs [f acc buf n] for each chunk, where
      [buf] is the reader's {e reused} full-size buffer and only its
      first [n] elements are valid.  Zero-copy and allocation-free per
      chunk ({!next_chunk} allocates a sub view and an option each
      call): the fused replay core consumes traces this way.  [buf]'s
      contents are invalid after [f] returns.
      @raise Parse_error on a truncated or corrupt frame. *)

  val read_into : reader -> int array -> int -> int -> int
  (** [read_into r dst pos len] fills [dst.(pos..pos+len-1)] with the
      next refs of the stream, returning how many were written —
      short only at end of stream.  Decodes through the reused chunk
      buffer; no per-ref allocation.  May be freely interleaved with
      {!next_chunk}/{!fold_chunks}, which always consume whole chunks.
      @raise Invalid_argument on a bad range.
      @raise Parse_error on a truncated or corrupt frame. *)

  val close_reader : reader -> unit
  (** Idempotent. *)

  val with_reader : string -> (reader -> 'a) -> 'a
  (** @raise Parse_error on bad magic or a malformed header. *)

  val iter : (int -> unit) -> string -> unit
  (** Visit every reference in file order, one chunk resident at a
      time.
      @raise Parse_error on a corrupt file. *)

  val source : string -> unit -> int option
  (** A pull stream of the file's references ([None] = end), the shape
      the sharded engine consumes.  The underlying file closes when
      the stream is exhausted.
      @raise Parse_error (from the pull calls) on a corrupt file. *)

  val to_array : string -> int array
  (** Materialize a whole streamed trace (for small traces and tests).
      @raise Parse_error on a corrupt file or a count mismatch. *)

  val pack_array : ?chunk_size:int -> string -> int array -> unit
  (** Write [trace] as a streamed file.
      @raise Invalid_argument if [chunk_size < 1]. *)
end

type format = Text | Binary | Streamed | Hex
(** [Hex] is recognized but not loadable: an external address trace
    (the classic one-hex-address-per-line [trace.tr] and relatives)
    that must go through {!Import} to become page references. *)

val pp_format : Format.formatter -> format -> unit

val format_of_file : string -> format
(** Sniff a file's format: "ATPT"/"ATPS" magic bytes dispatch to
    [Binary]/[Streamed]; otherwise the first content lines are
    inspected and address-shaped ones (hex letters, [0x] prefixes,
    extra columns, commas, lackey records) classify the file as
    [Hex] rather than misreading it as the decimal [Text] format.  A
    file of bare digit-only single-column lines is ambiguous and
    sniffs as [Text]. *)

val load : string -> int array
(** Load any of the three native formats, dispatching as
    {!format_of_file} with a single open of the file.
    @raise Parse_error on a malformed file of any format, and on a
      file sniffed as [Hex] (with a pointer at [atsim trace
      import]). *)

val pack : ?chunk_size:int -> src:string -> dst:string -> unit -> unit
(** Convert [src] (any native format) into a streamed "ATPS" file at
    [dst] without materializing the trace: references are pumped one
    chunk at a time from reader to writer.
    @raise Parse_error if [src] is malformed or sniffs as [Hex]. *)

val pp_summary : Format.formatter -> summary -> unit

val replay : ?loop:bool -> int array -> Workload.t
(** Turn a recorded trace into a workload.  With [loop] (default
    true) the trace wraps around; otherwise exhausting it raises
    [End_of_file] — useful when the consumer must not silently
    recycle.

    @raise Invalid_argument if the trace is empty. *)

val workload_of_file : ?loop:bool -> string -> Workload.t
(** {!replay} over {!load}: any format, one open.
    @raise Parse_error on a malformed file.
    @raise Invalid_argument if the file holds no references. *)
