(** Trace persistence and summary statistics, so users can bring their
    own recorded page traces (the paper's graph500 experiment replays
    one) and so generated traces can be archived. *)

type summary = {
  length : int;
  footprint : int;  (** distinct pages touched *)
  min_page : int;
  max_page : int;
}

exception Parse_error of { path : string; what : string }
(** A trace file that cannot be decoded: bad magic, truncated frame,
    or a malformed text line.  [path] is the offending file and [what]
    a human-readable description. *)

val summarize : int array -> summary

val save_text : string -> int array -> unit
(** One decimal page number per line. *)

val load_text : string -> int array
(** Ignores blank lines and [#]-comments.
    @raise Parse_error on a malformed line. *)

val save_binary : string -> int array -> unit
(** A small framed format: magic "ATPT", a 64-bit little-endian count,
    then 64-bit little-endian page numbers. *)

val load_binary : string -> int array
(** @raise Parse_error on bad magic or a truncated file. *)

val pp_summary : Format.formatter -> summary -> unit

val replay : ?loop:bool -> int array -> Workload.t
(** Turn a recorded trace into a workload.  With [loop] (default
    true) the trace wraps around; otherwise exhausting it raises
    [End_of_file] — useful when the consumer must not silently
    recycle.

    @raise Invalid_argument if the trace is empty. *)

val workload_of_file : ?loop:bool -> string -> Workload.t
(** {!replay} over {!load_text} or {!load_binary}, picked by the
    file's magic bytes. *)
