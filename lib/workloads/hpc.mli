(** HPC reference patterns beyond the paper's three workloads.

    The introduction motivates the problem with machine learning and
    graph analytics; these kernels cover the rest of the classic HPC
    spectrum, from the TLB's best case (dense stencils) to its worst
    (GUPS), so the benchmark suite can show both sides of the
    huge-page tradeoff. *)

val gups : table_pages:int -> Atp_util.Prng.t -> Workload.t
(** Giga-updates-per-second: uniformly random read-modify-writes over
    a large table — zero locality, the canonical TLB killer.

    @raise Invalid_argument if the table is empty. *)

val stencil :
  ?iterations:int -> rows:int -> cols:int -> unit -> Workload.t
(** A 5-point Jacobi sweep over a row-major 2-D grid of 8-byte cells:
    each cell touches the pages of its N/W/center/E/S neighbors in
    order.  Dense, predictable, huge-page friendly.  [iterations]
    bounds nothing — the sweep repeats forever; it only sizes the
    description.

    @raise Invalid_argument if the grid is smaller than 3x3. *)

val multistream :
  streams:int -> virtual_pages:int -> unit -> Workload.t
(** [streams] interleaved sequential scans over disjoint partitions of
    the space — a merge phase or a multi-threaded copy.  Sequential
    per stream, so TLB-friendly, but the working set is the sum of all
    stream fronts.

    @raise Invalid_argument if [streams < 1] or the space is smaller
    than the stream count. *)

val embedding_lookup :
  ?batch:int ->
  ?vector_pages:int ->
  rows:int ->
  Atp_util.Prng.t ->
  Workload.t
(** A recommender-model embedding gather (the paper's machine-learning
    motivation): each step draws [batch] (default 16) Zipf-popular
    rows and reads each row's [vector_pages] (default 2) consecutive
    pages.  Hot rows give temporal reuse; the row table itself is far
    too large for the TLB.

    @raise Invalid_argument on a bad batch, row count, or vector
    size. *)

val pointer_chase :
  ?working_set:int -> virtual_pages:int -> Atp_util.Prng.t -> Workload.t
(** A random cyclic permutation walked one hop per access (linked-list
    traversal): every access is a dependent random page — no spatial
    locality, perfect temporal recurrence at the cycle length.
    [working_set] defaults to [virtual_pages].

    @raise Invalid_argument if the space or the working set is too
    small. *)
