(** A Kronecker (R-MAT) graph generator following the graph500
    specification: edges are drawn by recursively descending the
    adjacency matrix with quadrant probabilities
    (A, B, C, D) = (0.57, 0.19, 0.19, 0.05), then symmetrized and laid
    out in CSR form. *)

type csr = {
  vertices : int;
  xadj : int array;  (** length [vertices + 1]; CSR row offsets *)
  adj : int array;  (** concatenated neighbor lists *)
}

val generate : ?scale:int -> ?edge_factor:int -> Atp_util.Prng.t -> csr
(** [scale] defaults to 16 (2^16 vertices); [edge_factor] defaults to
    16 edges per vertex, both per the graph500 benchmark.  The result
    stores each undirected edge in both directions.

    @raise Invalid_argument unless [scale] is in 1..30 and
    [edge_factor >= 1]. *)

val degree : csr -> int -> int

val out_neighbors : csr -> int -> int array
(** A copy, for tests. *)
