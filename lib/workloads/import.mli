(** Streaming importers for externally recorded memory traces.

    Everything the simulator replays natively is a page-reference
    trace ({!Trace}); real programs produce {e address} traces in a
    handful of ad-hoc text formats.  This module converts three of
    them into the streamed ATPS format without ever materializing the
    trace — each parsed address is shifted down to a virtual page
    number and pushed straight into a {!Trace.Stream.writer}, so a
    billion-reference capture imports in constant memory:

    - {e hex} ([trace.tr]): one hexadecimal address per line, with or
      without a [0x] prefix; [#]-comment and blank lines skipped;
      trailing columns (an [R]/[W] marker, an access size) tolerated
      and ignored;
    - {e lackey}: [valgrind --tool=lackey --trace-mem=yes] records —
      [I]/[L]/[S]/[M] kind letter, hex address, optional [,size] —
      with valgrind [==pid==]/[--pid--] banner lines skipped and
      instruction fetches ([I]) filterable;
    - {e csv}: a documented escape hatch — pick the address column,
      its radix, and whether to skip a header line.

    Every malformed input surfaces as {!Trace.Parse_error} carrying
    the path and a [line N:] prefix; importers never let any other
    exception escape on bad bytes and never read unbounded state (a
    line longer than {!max_line_bytes} is itself a parse error). *)

type format = Hex | Lackey | Csv

val pp_format : Format.formatter -> format -> unit

val format_of_string : string -> format option
(** ["hex"], ["lackey"], ["csv"]. *)

type radix = Decimal | Hexadecimal

type csv = {
  column : int;  (** 1-based index of the address column *)
  radix : radix;  (** how to read that column *)
  skip_header : bool;  (** drop the first line of the file *)
}

val default_csv : csv
(** Column 1, hexadecimal, no header. *)

type config = {
  page_bits : int;
      (** VPN = address lsr page_bits (12 for 4 KiB pages) *)
  limit : int option;  (** stop after this many emitted references *)
  dedup_consecutive : bool;
      (** drop a reference equal to the previously emitted VPN *)
  drop_instr : bool;
      (** lackey only: drop instruction-fetch ([I]) records *)
  csv : csv;
}

val default : config
(** [page_bits = 12], no limit, no dedup, instruction fetches kept,
    {!default_csv}. *)

type stats = {
  lines : int;  (** input lines read *)
  parsed : int;
      (** address records parsed and kept (instruction fetches dropped
          by [drop_instr] do not count, deduped references do) *)
  emitted : int;  (** references handed to the sink *)
}

val pp_stats : Format.formatter -> stats -> unit

val max_line_bytes : int
(** Upper bound on one input line (64 KiB); real trace lines are tens
    of bytes, so anything longer is treated as corruption rather than
    buffered without bound. *)

val sniff : string -> [ `Import of format | `Native of Trace.format ]
(** Guess what kind of trace file sits at the path.  Files with an
    ATPT/ATPS magic or plain decimal page-per-line content are
    [`Native] (already loadable by {!Trace.load}); lackey records, a
    comma-separated layout, and hex-looking address columns are
    [`Import].  A file of bare digit-only lines is ambiguous and
    sniffs as [`Native Text]; force [~format] at the call site to
    read it as hex addresses.
    @raise Sys_error if the file cannot be opened. *)

val import : ?config:config -> format:format -> string -> (int -> unit) -> stats
(** [import ~config ~format path sink] parses the file, converting
    each address record to a VPN and feeding it to [sink] in file
    order, streaming line by line.
    @raise Trace.Parse_error on any malformed line, with the 1-based
      line number in the message.
    @raise Invalid_argument if the config is out of range
      ([page_bits] outside [0, 62], [limit < 0], [csv.column < 1]).
    @raise Sys_error if the file cannot be opened. *)

val import_file :
  ?chunk_size:int ->
  ?config:config ->
  ?format:format ->
  src:string ->
  dst:string ->
  unit ->
  stats
(** {!import} into a {!Trace.Stream.writer} at [dst]: the standard
    external-trace-to-ATPS conversion, one chunk resident at a time.
    Without [?format] the source is sniffed; a [`Native] source is
    rejected (convert those with {!Trace.pack}).  On a parse error
    the partial [dst] is removed before the error propagates.
    @raise Trace.Parse_error on malformed input or an unsniffable
      native source.
    @raise Invalid_argument on a bad config or [chunk_size < 1].
    @raise Sys_error if either file cannot be opened. *)
