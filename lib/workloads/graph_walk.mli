(** The random graph walk of Figure 1b: each page is a node with a
    logarithmic number of outgoing edges whose destinations are
    Pareto-distributed over all pages (shape α = 0.01), modeling a
    PageRank-style computation.

    The graph is {e functional}: the destination of edge [j] of node
    [i] is a pure hash of [(i, j)] fed through the Pareto inverse CDF,
    so the multi-gigabyte adjacency structure never has to be
    materialized, yet every revisit of a node sees the same edges. *)

val create :
  ?alpha:float ->
  ?out_degree:int ->
  virtual_pages:int ->
  Atp_util.Prng.t ->
  Workload.t
(** [alpha] defaults to 0.01 (the paper's Pareto constant);
    [out_degree] defaults to [max 2 (log2 virtual_pages)].

    @raise Invalid_argument if [virtual_pages < 2] or
    [out_degree < 1]. *)
