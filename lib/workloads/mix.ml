open Atp_util

let offset ~by w =
  if by < 0 then invalid_arg "Mix.offset: negative offset";
  {
    Workload.name = w.Workload.name ^ "+offset";
    virtual_pages = w.Workload.virtual_pages + by;
    description =
      Printf.sprintf "%s shifted by %d pages" w.Workload.description by;
    next = (fun () -> by + w.Workload.next ());
  }

let interleave ?weights workloads rng =
  let n = Array.length workloads in
  if n = 0 then invalid_arg "Mix.interleave: no workloads";
  let weights =
    match weights with
    | None -> Array.make n 1.0
    | Some w ->
      if Array.length w <> n then invalid_arg "Mix.interleave: weight mismatch";
      w
  in
  let pick = Sampler.discrete weights in
  let virtual_pages =
    Array.fold_left (fun acc w -> max acc w.Workload.virtual_pages) 0 workloads
  in
  {
    Workload.name = "interleave";
    virtual_pages;
    description =
      Printf.sprintf "probabilistic mix of %d workloads: %s" n
        (String.concat ", "
           (Array.to_list (Array.map (fun w -> w.Workload.name) workloads)));
    next =
      (fun () ->
        let i = Sampler.sample_discrete pick rng in
        workloads.(i).Workload.next ());
  }

let round_robin ~quantum workloads =
  let n = Array.length workloads in
  if n = 0 then invalid_arg "Mix.round_robin: no workloads";
  if quantum < 1 then invalid_arg "Mix.round_robin: quantum must be positive";
  let virtual_pages =
    Array.fold_left (fun acc w -> max acc w.Workload.virtual_pages) 0 workloads
  in
  let current = ref 0 and used = ref 0 in
  {
    Workload.name = "round-robin";
    virtual_pages;
    description =
      Printf.sprintf "round-robin over %d workloads, quantum %d" n quantum;
    next =
      (fun () ->
        if !used = quantum then begin
          used := 0;
          current := (!current + 1) mod n
        end;
        incr used;
        workloads.(!current).Workload.next ());
  }

(* --- splittable mix specs ----------------------------------------- *)

type spec = {
  spec_name : string;
  spec_weights : float array option;
  spec_components : (Prng.t -> Workload.t) array;
}

let spec ?weights ?(name = "mix") components =
  if Array.length components = 0 then invalid_arg "Mix.spec: no components";
  (match weights with
  | Some w when Array.length w <> Array.length components ->
    invalid_arg "Mix.spec: weight mismatch"
  | Some _ | None -> ());
  { spec_name = name; spec_weights = weights; spec_components = components }

let spec_name s = s.spec_name

let instantiate s rng =
  (* The picker and every component each own a generator split off
     [rng]: drawing from one component never advances a sibling's
     stream, and two instantiations from independently seeded
     generators are fully independent.  (Building the components
     directly on a shared [rng] — the only option before specs —
     seed-coupled them: each sample from one shifted all the
     others.) *)
  let picker = Prng.split rng in
  let built = Array.map (fun c -> c (Prng.split rng)) s.spec_components in
  let w = interleave ?weights:s.spec_weights built picker in
  { w with Workload.name = s.spec_name }

let phases spec =
  (match spec with [] -> invalid_arg "Mix.phases: no phases" | _ :: _ -> ());
  List.iter
    (fun (n, _) -> if n < 1 then invalid_arg "Mix.phases: bad phase length")
    spec;
  let arr = Array.of_list spec in
  let virtual_pages =
    Array.fold_left (fun acc (_, w) -> max acc w.Workload.virtual_pages) 0 arr
  in
  let phase = ref 0 and used = ref 0 in
  {
    Workload.name = "phases";
    virtual_pages;
    description = Printf.sprintf "%d cycling phases" (Array.length arr);
    next =
      (fun () ->
        let len, _ = arr.(!phase) in
        if !used = len then begin
          used := 0;
          phase := (!phase + 1) mod Array.length arr
        end;
        incr used;
        (snd arr.(!phase)).Workload.next ());
  }
