(** The bimodal stress test of Figure 1a: almost all accesses fall
    uniformly in a small hot region; the rest fall uniformly over the
    whole virtual address space.  Designed as a worst case for huge
    pages — small pages miss the TLB on the hot region, large pages
    amplify IO on the cold accesses. *)

val create :
  ?hot_fraction:float ->
  hot_pages:int ->
  virtual_pages:int ->
  Atp_util.Prng.t ->
  Workload.t
(** [hot_fraction] defaults to 0.9999 (99.99%, the paper's split).  The
    hot region is placed at a random page-aligned offset drawn from the
    generator.  Raises [Invalid_argument] if the hot region does not
    fit.

    @raise Invalid_argument if [hot_fraction] is outside (0, 1] or
    the hot region does not fit the space. *)
