open Atp_core
open Atp_workloads
open Atp_util
module Obs = Atp_obs

type config = {
  shards : int;
  epoch_len : int;
  warmup : int;
  domains : int option;
}

let default_config =
  { shards = 4; epoch_len = 1 lsl 20; warmup = 1 lsl 20; domains = None }

let validate_config c =
  if c.shards < 1 then invalid_arg "Engine: shards must be positive";
  if c.epoch_len < 1 then invalid_arg "Engine: epoch_len must be positive";
  if c.warmup < 0 then invalid_arg "Engine: warmup must be non-negative"

(* Measured, not derived: see the "engine" bench experiment and the
   EXPERIMENTS.md error-model section; test/test_engine.ml asserts it. *)
let documented_error_bound = 0.10

type totals = {
  accesses : int;
  ios : int;
  tlb_fills : int;
  decoding_misses : int;
  failures : int;
  max_bucket_load : int;
  epochs : int;
  warmup_replayed : int;
}

let empty_totals =
  {
    accesses = 0;
    ios = 0;
    tlb_fills = 0;
    decoding_misses = 0;
    failures = 0;
    max_bucket_load = 0;
    epochs = 0;
    warmup_replayed = 0;
  }

let cost ~epsilon t =
  float_of_int t.ios
  +. (epsilon *. float_of_int (t.tlb_fills + t.decoding_misses))

let add_report t (r : Simulation.report) ~warmup_len =
  {
    accesses = t.accesses + r.Simulation.accesses;
    ios = t.ios + r.Simulation.ios;
    tlb_fills = t.tlb_fills + r.Simulation.tlb_fills;
    decoding_misses = t.decoding_misses + r.Simulation.decoding_misses;
    failures = t.failures + r.Simulation.failures_total;
    max_bucket_load = max t.max_bucket_load r.Simulation.max_bucket_load;
    epochs = t.epochs + 1;
    warmup_replayed = t.warmup_replayed + warmup_len;
  }

let pp_totals ppf t =
  Format.fprintf ppf
    "epochs=%d accesses=%a ios=%a tlb-fills=%a decoding-misses=%a \
     failures=%a max-bucket-load=%d warmup-replayed=%a"
    t.epochs Stats.pp_count t.accesses Stats.pp_count t.ios Stats.pp_count
    t.tlb_fills Stats.pp_count t.decoding_misses Stats.pp_count t.failures
    t.max_bucket_load Stats.pp_count t.warmup_replayed

type source = unit -> int option

let source_of_array trace =
  let pos = ref 0 in
  fun () ->
    if !pos >= Array.length trace then None
    else begin
      let page = trace.(!pos) in
      incr pos;
      Some page
    end

let source_of_workload w ~n =
  if n < 0 then invalid_arg "Engine.source_of_workload: negative n";
  let left = ref n in
  fun () ->
    if !left <= 0 then None
    else begin
      decr left;
      Some (w.Workload.next ())
    end

(* Fill-based sources: the fused replay path pulls whole blocks into a
   caller buffer instead of paying an option allocation per ref. *)
type block_source = int array -> int -> int -> int

let block_of_source (s : source) : block_source =
 fun dst pos len ->
  if pos < 0 || len < 0 || pos + len > Array.length dst then
    invalid_arg "Engine.block_of_source";
  let n = ref 0 in
  let eof = ref false in
  while !n < len && not !eof do
    match s () with
    | Some page ->
      Array.unsafe_set dst (pos + !n) page;
      incr n
    | None -> eof := true
  done;
  !n

let block_source_of_array trace : block_source =
  let consumed = ref 0 in
  fun dst pos len ->
    if pos < 0 || len < 0 || pos + len > Array.length dst then
      invalid_arg "Engine.block_source_of_array";
    let k = min len (Array.length trace - !consumed) in
    Array.blit trace !consumed dst pos k;
    consumed := !consumed + k;
    k

let block_source_of_workload w ~n : block_source =
  if n < 0 then invalid_arg "Engine.block_source_of_workload: negative n";
  let left = ref n in
  fun dst pos len ->
    if pos < 0 || len < 0 || pos + len > Array.length dst then
      invalid_arg "Engine.block_source_of_workload";
    let k = min len !left in
    for i = pos to pos + k - 1 do
      Array.unsafe_set dst i (w.Workload.next ())
    done;
    left := !left - k;
    k

let block_source_of_stream path : block_source =
  let r = Trace.Stream.open_reader path in
  fun dst pos len ->
    let k = Trace.Stream.read_into r dst pos len in
    if k < len then Trace.Stream.close_reader r;
    k

(* The rolling warm-up history: the last [warmup] references consumed
   from the source, in order, so each epoch can be prefixed with the
   window that precedes it in the stream. *)
module History = struct
  type t = { ring : int array; mutable seen : int }

  let create warmup = { ring = Array.make (max 1 warmup) 0; seen = 0 }

  let push t page =
    let cap = Array.length t.ring in
    t.ring.(t.seen mod cap) <- page;
    t.seen <- t.seen + 1

  (* The last [min warmup seen] references, oldest first. *)
  let window t ~warmup =
    if warmup = 0 then [||]
    else begin
      let avail = min warmup t.seen in
      let start = t.seen - avail in
      let cap = Array.length t.ring in
      Array.init avail (fun i -> t.ring.((start + i) mod cap))
    end
end

type epoch = { pre : int array; refs : int array }

let pull_epoch ~config ~history source =
  let pre = History.window history ~warmup:config.warmup in
  let buf = Array.make config.epoch_len 0 in
  let n = ref 0 in
  let eof = ref false in
  while (not !eof) && !n < config.epoch_len do
    match source () with
    | Some page ->
      buf.(!n) <- page;
      incr n;
      History.push history page
    | None -> eof := true
  done;
  if !n = 0 then None
  else
    Some { pre; refs = (if !n = config.epoch_len then buf else Array.sub buf 0 !n) }

let rec pull_batch ~config ~history source k acc =
  if k = 0 then List.rev acc
  else
    match pull_epoch ~config ~history source with
    | None -> List.rev acc
    | Some e -> pull_batch ~config ~history source (k - 1) (e :: acc)

let replay ?obs ?clock ~config ~make_sim source =
  validate_config config;
  let obs = match obs with Some o -> o | None -> Obs.Scope.null () in
  let clock = match clock with Some f -> f | None -> fun () -> 0. in
  let c_epochs = Obs.Scope.counter obs "epochs"
  and c_warmup = Obs.Scope.counter obs "warmup_discarded"
  and c_merge_ns = Obs.Scope.counter obs "merge_ns" in
  let history = History.create config.warmup in
  let totals = ref empty_totals in
  let finished = ref false in
  while not !finished do
    match pull_batch ~config ~history source config.shards [] with
    | [] -> finished := true
    | batch ->
      (* One fresh simulator per epoch, replayed on up to [shards]
         domains; the per-epoch reports merge in stream order, so the
         aggregate is independent of scheduling. *)
      let reports =
        Parallel.map ?domains:config.domains
          (fun e ->
            let sim = make_sim () in
            (Simulation.run ~warmup:e.pre sim e.refs, Array.length e.pre))
          batch
      in
      let t0 = clock () in
      List.iter
        (fun (r, warmup_len) ->
          totals := add_report !totals r ~warmup_len;
          Obs.Counter.incr c_epochs;
          Obs.Counter.add c_warmup warmup_len)
        reports;
      Obs.Counter.add c_merge_ns
        (int_of_float ((clock () -. t0) *. 1e9))
  done;
  !totals

let replay_sequential ?obs ~make_sim source =
  let obs = match obs with Some o -> o | None -> Obs.Scope.null () in
  let c_epochs = Obs.Scope.counter obs "epochs" in
  let sim = make_sim () in
  let eof = ref false in
  while not !eof do
    match source () with
    | Some page -> Simulation.access sim page
    | None -> eof := true
  done;
  Obs.Counter.incr c_epochs;
  add_report empty_totals (Simulation.report sim) ~warmup_len:0

(* --- the fused paths ---------------------------------------------- *)

let pull_epoch_block ~config ~history (bsource : block_source) =
  let pre = History.window history ~warmup:config.warmup in
  let buf = Array.make config.epoch_len 0 in
  let n = bsource buf 0 config.epoch_len in
  if n = 0 then None
  else begin
    for i = 0 to n - 1 do
      History.push history (Array.unsafe_get buf i)
    done;
    Some { pre; refs = (if n = config.epoch_len then buf else Array.sub buf 0 n) }
  end

let rec pull_batch_block ~config ~history bsource k acc =
  if k = 0 then List.rev acc
  else
    match pull_epoch_block ~config ~history bsource with
    | None -> List.rev acc
    | Some e -> pull_batch_block ~config ~history bsource (k - 1) (e :: acc)

let replay_fused ?obs ?clock ~config ~make_fused (bsource : block_source) =
  validate_config config;
  let obs = match obs with Some o -> o | None -> Obs.Scope.null () in
  let clock = match clock with Some f -> f | None -> fun () -> 0. in
  let c_epochs = Obs.Scope.counter obs "epochs"
  and c_warmup = Obs.Scope.counter obs "warmup_discarded"
  and c_merge_ns = Obs.Scope.counter obs "merge_ns" in
  let history = History.create config.warmup in
  let totals = ref empty_totals in
  let finished = ref false in
  while not !finished do
    match pull_batch_block ~config ~history bsource config.shards [] with
    | [] -> finished := true
    | batch ->
      let reports =
        Parallel.map ?domains:config.domains
          (fun e ->
            let f = make_fused () in
            (Sim_fused.run_fused ~warmup:e.pre f e.refs, Array.length e.pre))
          batch
      in
      let t0 = clock () in
      List.iter
        (fun (r, warmup_len) ->
          totals := add_report !totals r ~warmup_len;
          Obs.Counter.incr c_epochs;
          Obs.Counter.add c_warmup warmup_len)
        reports;
      Obs.Counter.add c_merge_ns (int_of_float ((clock () -. t0) *. 1e9))
  done;
  !totals

let sequential_block_len = 1 lsl 16

let replay_sequential_fused ?obs ~make_fused (bsource : block_source) =
  let obs = match obs with Some o -> o | None -> Obs.Scope.null () in
  let c_epochs = Obs.Scope.counter obs "epochs" in
  let f : Sim_fused.fused = make_fused () in
  let buf = Array.make sequential_block_len 0 in
  let eof = ref false in
  while not !eof do
    let n = bsource buf 0 sequential_block_len in
    if n = 0 then eof := true else f.Sim_fused.access_array buf 0 n
  done;
  Obs.Counter.incr c_epochs;
  add_report empty_totals (f.Sim_fused.report ()) ~warmup_len:0

(* --- tenant-partitioned replay ------------------------------------ *)

type tenant_event =
  | Tarrive of { tenant : int }
  | Taccess of { tenant : int; page : int }
  | Tdepart of { tenant : int }

type tenant_source = unit -> tenant_event option

type tenant_report = { tenant : int; report : Simulation.report }

let pp_tenant_report ppf t =
  Format.fprintf ppf "tenant=%d %a" t.tenant Simulation.pp_report t.report

(* Additive bookkeeping returned from each partition, folded into obs
   counters by the caller: worker domains never touch shared state. *)
type partition_counts = { arrived : int; departed : int; accessed : int }

(* Replay the tenants owned by [shard] (tenant mod shards = shard),
   one private simulator per active tenant, created on first sight and
   dropped at departure — memory is O(active tenants in this
   partition).  A tenant's report is finalized at its Tdepart, or at
   end of stream (in tenant-id order) if it never departs. *)
let run_partition ~shard ~shards ~create ~access ~report source =
  let sims = Int_table.Poly.create () in
  let out = ref [] in
  let arrived = ref 0 and departed = ref 0 and accessed = ref 0 in
  let get tenant =
    if tenant < 0 then invalid_arg "Engine: negative tenant id";
    match Int_table.Poly.find sims tenant with
    | Some s -> s
    | None ->
      let s = create tenant in
      incr arrived;
      Int_table.Poly.set sims tenant s;
      s
  in
  let owned tenant =
    if tenant < 0 then invalid_arg "Engine: negative tenant id";
    tenant mod shards = shard
  in
  let finished = ref false in
  while not !finished do
    match source () with
    | None -> finished := true
    | Some (Tarrive { tenant }) -> if owned tenant then ignore (get tenant)
    | Some (Taccess { tenant; page }) ->
      if owned tenant then begin
        access (get tenant) page;
        incr accessed
      end
    | Some (Tdepart { tenant }) -> (
      if owned tenant then
        match Int_table.Poly.find sims tenant with
        | None -> ()
        | Some s ->
          incr departed;
          ignore (Int_table.Poly.remove sims tenant);
          out := { tenant; report = report s } :: !out)
  done;
  let rest = Int_table.Poly.fold (fun t s acc -> (t, s) :: acc) sims [] in
  List.iter
    (fun (tenant, s) -> out := { tenant; report = report s } :: !out)
    (List.sort (fun (a, _) (b, _) -> Int.compare a b) rest);
  ( List.rev !out,
    { arrived = !arrived; departed = !departed; accessed = !accessed } )

let by_tenant a b = Int.compare a.tenant b.tenant

let replay_tenants_with ?obs ?domains ~shards ~create ~access ~report
    make_source =
  if shards < 1 then invalid_arg "Engine.replay_tenants: shards must be positive";
  let obs = match obs with Some o -> o | None -> Obs.Scope.null () in
  let c_tenants = Obs.Scope.counter obs "tenants"
  and c_departures = Obs.Scope.counter obs "tenant_departures"
  and c_accesses = Obs.Scope.counter obs "tenant_accesses" in
  let parts =
    Parallel.map ?domains
      (fun shard ->
        let source = make_source () in
        run_partition ~shard ~shards ~create ~access ~report source)
      (List.init shards (fun i -> i))
  in
  List.iter
    (fun (_, c) ->
      Obs.Counter.add c_tenants c.arrived;
      Obs.Counter.add c_departures c.departed;
      Obs.Counter.add c_accesses c.accessed)
    parts;
  (* Stable by tenant id: instances of a reappearing id stay in stream
     order, and the merged list is independent of the shard count. *)
  List.stable_sort by_tenant (List.concat_map fst parts)

let replay_tenants ?obs ?domains ~shards ~make_sim make_source =
  replay_tenants_with ?obs ?domains ~shards ~create:make_sim
    ~access:Simulation.access ~report:Simulation.report make_source

let replay_tenants_sequential ?obs ~make_sim source =
  replay_tenants ?obs ~domains:1 ~shards:1 ~make_sim (fun () -> source)

let replay_tenants_fused ?obs ?domains ~shards ~make_fused make_source =
  replay_tenants_with ?obs ?domains ~shards ~create:make_fused
    ~access:(fun (f : Sim_fused.fused) page -> f.Sim_fused.access page)
    ~report:(fun (f : Sim_fused.fused) -> f.Sim_fused.report ())
    make_source

let replay_tenants_sequential_fused ?obs ~make_fused source =
  replay_tenants_fused ?obs ~domains:1 ~shards:1 ~make_fused (fun () -> source)

let tenant_totals reports =
  List.fold_left
    (fun t { report = r; _ } -> add_report t r ~warmup_len:0)
    empty_totals reports

let replay_stream_fused ?obs ~make_fused path =
  let obs = match obs with Some o -> o | None -> Obs.Scope.null () in
  let c_epochs = Obs.Scope.counter obs "epochs" in
  let f : Sim_fused.fused = make_fused () in
  Trace.Stream.with_reader path (fun r ->
      Trace.Stream.fold_chunks
        (fun () chunk n -> f.Sim_fused.access_chunk chunk 0 n)
        () r);
  Obs.Counter.incr c_epochs;
  add_report empty_totals (f.Sim_fused.report ()) ~warmup_len:0
