(** The sharded streaming replay engine ([atp.engine]).

    Sequential replay ({!Atp_core.Simulation.run}) walks a
    fully-materialized trace on one core; production-scale traces
    (billions of references) fit neither RAM nor patience.  This
    engine consumes a {e pull stream} of references, time-slices it
    into epochs of [epoch_len] references, replays each epoch on a
    fresh simulator prefixed with the [warmup] references that
    precede it in the stream (counters reset after warm-up, exactly
    like {!Atp_core.Simulation.run}'s warm-up), and merges the
    per-epoch reports in stream order.  Epochs are replayed up to
    [shards] at a time on separate domains via
    {!Atp_util.Parallel.map}; on OCaml < 5 the same code runs
    sequentially with identical results, because the merge order is
    the stream order, never the scheduling order.

    Peak memory is [shards * (epoch_len + warmup)] references plus one
    decode chunk — independent of the trace length.

    {2 Exactness and the error model}

    Epoch [e] starts at stream index [s = e * epoch_len].  Its replay
    is {e exact} — each counter equals the sequential run's increment
    over the same window — whenever [warmup >= s]: the warm-up window
    then covers the whole prefix, so the fresh simulator reaches the
    very state the sequential simulator had at index [s].  In
    particular, with [warmup >= epoch_len] every two-epoch replay is
    exact, and [warmup >= n] makes any replay exact (at quadratic
    replay cost).

    When [warmup < s] the warm-up under-approximates resident state:
    each such epoch can only {e over-count} misses of an
    LRU-style stack policy (cold state has fewer resident pages), by
    at most the policy capacity per epoch.  The measured bound — see
    EXPERIMENTS.md "Sharded replay error" — is well under
    {!documented_error_bound} relative cost error for every workload
    in the test matrix with [warmup = epoch_len]; the differential
    suite ([test/test_engine.ml]) enforces it. *)

type config = {
  shards : int;  (** epochs replayed concurrently (>= 1) *)
  epoch_len : int;  (** references per epoch (>= 1) *)
  warmup : int;
      (** references re-executed (then discarded from counts) before
          each epoch; clipped to the available prefix (>= 0) *)
  domains : int option;
      (** cap for {!Atp_util.Parallel.map}; [None] = recommended *)
}

val default_config : config
(** 4 shards, 1 Mi-reference epochs, warm-up of one epoch. *)

val documented_error_bound : float
(** Relative cost error ([|sharded - sequential| / sequential]) that
    multi-epoch sharded replay stays within on the documented workload
    matrix with [warmup >= epoch_len]; measured in the [engine] bench
    experiment and asserted by the differential tests. *)

type totals = {
  accesses : int;  (** measured accesses (warm-up excluded) *)
  ios : int;
  tlb_fills : int;
  decoding_misses : int;
  failures : int;  (** paging failures inside measured windows *)
  max_bucket_load : int;  (** max across epochs *)
  epochs : int;  (** epochs replayed *)
  warmup_replayed : int;  (** warm-up references replayed, then discarded *)
}

val empty_totals : totals

val cost : epsilon:float -> totals -> float
(** [ios + epsilon * (tlb_fills + decoding_misses)]: the paper's
    address-translation cost, same accounting as
    {!Atp_core.Simulation.cost}. *)

val add_report : totals -> Atp_core.Simulation.report -> warmup_len:int -> totals
(** Fold one epoch's report into the running totals (sum counters, max
    bucket load, count the epoch). *)

val pp_totals : Format.formatter -> totals -> unit

type source = unit -> int option
(** A pull stream of page references; [None] ends the replay.
    {!Atp_workloads.Trace.Stream.source} reads one from a packed
    trace file. *)

val source_of_array : int array -> source

val source_of_workload : Atp_workloads.Workload.t -> n:int -> source
(** The workload's next [n] references.
    @raise Invalid_argument if [n] is negative. *)

type block_source = int array -> int -> int -> int
(** [bs dst pos len] fills [dst.(pos..pos+len-1)] with the next refs
    of the stream and returns how many were written; short counts
    (including 0) only at end of stream.  The fused replay paths pull
    blocks instead of per-ref options. *)

val block_of_source : source -> block_source
(** Adapter (still pays the underlying option per ref).

    @raise Invalid_argument via the wrapped source's own errors when
      pulling the next block. *)

val block_source_of_array : int array -> block_source
(** @raise Invalid_argument from the returned source if a reader asks
      for a negative block length. *)

val block_source_of_workload : Atp_workloads.Workload.t -> n:int -> block_source
(** @raise Invalid_argument if [n] is negative. *)

val block_source_of_stream : string -> block_source
(** Decodes a packed [.atps] trace through
    {!Atp_workloads.Trace.Stream.read_into}: no per-ref allocation.
    The file closes at end of stream.
    @raise Atp_workloads.Trace.Parse_error on a corrupt file. *)

val replay :
  ?obs:Atp_obs.Scope.t ->
  ?clock:(unit -> float) ->
  config:config ->
  make_sim:(unit -> Atp_core.Simulation.t) ->
  source ->
  totals
(** Sharded replay of the stream.  [make_sim] builds a fresh simulator
    per epoch and is called concurrently from worker domains: it must
    be deterministic and must not share mutable state across calls
    (derive any {!Atp_util.Prng.t} from a constant seed inside the
    closure, not outside).

    [obs] registers the engine counters [epochs],
    [warmup_discarded], and [merge_ns] (merge time, measured with
    [clock] when given — seconds, e.g. [Unix.gettimeofday] — and 0
    otherwise; injectable so library code stays deterministic).

    @raise Invalid_argument on a non-positive [shards]/[epoch_len] or
    a negative [warmup]. *)

val replay_sequential :
  ?obs:Atp_obs.Scope.t ->
  make_sim:(unit -> Atp_core.Simulation.t) ->
  source ->
  totals
(** Exact sequential replay of the same stream on one fresh simulator
    (one epoch, no warm-up): the reference the differential harness
    compares {!replay} against. *)

(** {2 Fused replay}

    Same epoch slicing, warm-up semantics, and merge order as
    {!replay}/{!replay_sequential}, but each epoch runs on a
    {!Atp_core.Sim_fused.fused} simulator and references travel in
    blocks ({!block_source}) rather than one option at a time.  With
    the same policies and seeds, totals are identical to the generic
    paths (the differential suite asserts equality). *)

val replay_fused :
  ?obs:Atp_obs.Scope.t ->
  ?clock:(unit -> float) ->
  config:config ->
  make_fused:(unit -> Atp_core.Sim_fused.fused) ->
  block_source ->
  totals
(** Sharded fused replay.  [make_fused] has the same contract as
    [make_sim] in {!replay}: deterministic, no mutable state shared
    across calls.  Registers the same [epochs]/[warmup_discarded]/
    [merge_ns] counters.
    @raise Invalid_argument on a bad [config]. *)

val replay_sequential_fused :
  ?obs:Atp_obs.Scope.t ->
  make_fused:(unit -> Atp_core.Sim_fused.fused) ->
  block_source ->
  totals
(** Exact sequential fused replay: pulls 64 Ki-ref blocks into a
    reused buffer and feeds them through [access_array]. *)

val replay_stream_fused :
  ?obs:Atp_obs.Scope.t ->
  make_fused:(unit -> Atp_core.Sim_fused.fused) ->
  string ->
  totals
(** The fully fused end-to-end path for a packed [.atps] trace:
    decoded chunks are consumed in place via
    {!Atp_workloads.Trace.Stream.fold_chunks} and [access_chunk] — no
    intermediate ref array at all.
    @raise Atp_workloads.Trace.Parse_error on a corrupt file. *)

(** {2 Tenant-partitioned replay}

    The fleet model interleaves thousands of short-lived address
    spaces into one stream of tagged events.  With {e reserved}
    (per-tenant) simulator state, tenants are independent, so the
    stream shards by tenant id: shard [k] of [shards] replays exactly
    the tenants with [tenant mod shards = k], each on a private
    simulator created at first sight and dropped at departure (peak
    memory is O(active tenants), not O(tenants ever seen)).  Every
    shard takes its own fresh pass over the event stream — hence the
    source {e factory} — and filters out its partition, so no
    cross-domain hand-off of events is needed.

    The merged result is a pure function of the stream: per-tenant
    reports come back sorted by tenant id (stream order among
    instances of a reappearing id) and are byte-identical across shard
    counts and to {!replay_tenants_sequential}; the differential suite
    in [test/test_fleet.ml] asserts this across policies, shard
    counts, and the generic/fused pair. *)

type tenant_event =
  | Tarrive of { tenant : int }  (** address space [tenant] starts *)
  | Taccess of { tenant : int; page : int }
  | Tdepart of { tenant : int }
      (** address space ends; its report is finalized here *)

type tenant_source = unit -> tenant_event option
(** A pull stream of tenant events; [None] ends the replay.  An
    access (or arrival) for an unseen tenant implicitly creates it; a
    departure for an unseen tenant is ignored; tenants never departing
    are finalized at end of stream. *)

type tenant_report = { tenant : int; report : Atp_core.Simulation.report }

val pp_tenant_report : Format.formatter -> tenant_report -> unit

val replay_tenants :
  ?obs:Atp_obs.Scope.t ->
  ?domains:int ->
  shards:int ->
  make_sim:(int -> Atp_core.Simulation.t) ->
  (unit -> tenant_source) ->
  tenant_report list
(** Tenant-sharded replay.  [make_sim tenant] builds the tenant's
    private simulator and is called from worker domains: it must be
    deterministic in [tenant] and share no mutable state across calls.
    The source factory is called once per shard and each returned
    source must replay the same event stream (build it from a seed
    inside the closure).

    [obs] registers the additive counters [tenants] (simulators
    created), [tenant_departures], and [tenant_accesses]; being sums
    over the partition, snapshots are shard-count-invariant.

    @raise Invalid_argument on a non-positive [shards] or a negative
    tenant id in the stream. *)

val replay_tenants_sequential :
  ?obs:Atp_obs.Scope.t ->
  make_sim:(int -> Atp_core.Simulation.t) ->
  tenant_source ->
  tenant_report list
(** One pass, one domain, every tenant: the reference the differential
    harness compares {!replay_tenants} against.
    @raise Invalid_argument on a negative tenant id. *)

val replay_tenants_fused :
  ?obs:Atp_obs.Scope.t ->
  ?domains:int ->
  shards:int ->
  make_fused:(int -> Atp_core.Sim_fused.fused) ->
  (unit -> tenant_source) ->
  tenant_report list
(** {!replay_tenants} on fused simulators; same contracts, identical
    reports when policies and seeds match the generic path.
    @raise Invalid_argument on a non-positive [shards] or a negative
    tenant id. *)

val replay_tenants_sequential_fused :
  ?obs:Atp_obs.Scope.t ->
  make_fused:(int -> Atp_core.Sim_fused.fused) ->
  tenant_source ->
  tenant_report list
(** @raise Invalid_argument on a negative tenant id. *)

val tenant_totals : tenant_report list -> totals
(** Fold per-tenant reports into fleet-wide totals ([epochs] counts
    tenant instances, [warmup_replayed] stays 0). *)
