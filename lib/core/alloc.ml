open Atp_util

type location =
  | Placed of { choice : int; slot : int; frame : int }
  | Fallback of { frame : int }

(* Per-page state is packed into one Int_table value: a placed page
   stores [choice * B + slot] (non-negative); a fallback page stores
   [-(frame) - 1]. *)

type t = {
  params : Params.t;
  fam : Hashing.family;
  front_load : int array;  (* per bucket: balls placed via choice 0 *)
  back_load : int array;   (* per bucket: balls placed via choices >= 1 *)
  occupancy : Bitvec.t array;
  free_in : int array;     (* per bucket free-slot count *)
  code_of : Int_table.t;   (* page -> packed location *)
  mutable total_free : int;
  mutable failures_now : int;
  mutable failures_total : int;
  mutable fallback_cursor : int;  (* rotating scan start for fallbacks *)
  b_div : Divider.t;  (* strength-reduced / and mod by bucket_size *)
}

let create ?(seed = 0xA7B) params =
  let { Params.buckets; bucket_size; k; _ } = params in
  let rng = Prng.create ~seed () in
  {
    params;
    fam = Hashing.family rng ~k ~range:buckets;
    front_load = Array.make buckets 0;
    back_load = Array.make buckets 0;
    occupancy = Array.init buckets (fun _ -> Bitvec.create bucket_size);
    free_in = Array.make buckets bucket_size;
    code_of = Int_table.create ();
    total_free = buckets * bucket_size;
    failures_now = 0;
    failures_total = 0;
    fallback_cursor = 0;
    b_div = Divider.make bucket_size;
  }

let params t = t.params

let frames t = t.params.Params.buckets * t.params.Params.bucket_size

let live t = Int_table.length t.code_of

let free t = t.total_free

let mem t page = Int_table.mem t.code_of page

let bin_of_choice t ~page ~choice = Hashing.apply t.fam choice page

let[@atplint.hot] take_slot t bin =
  let occ = t.occupancy.(bin) in
  let slot = Bitvec.first_clear_index occ in
  if slot < 0 then assert false;
  Bitvec.set occ slot;
  t.free_in.(bin) <- t.free_in.(bin) - 1;
  t.total_free <- t.total_free - 1;
  slot

let[@atplint.hot] release_slot t bin slot =
  Bitvec.clear t.occupancy.(bin) slot;
  t.free_in.(bin) <- t.free_in.(bin) + 1;
  t.total_free <- t.total_free + 1

(* Any free frame, found by a rotating scan; failures are rare by
   construction so the scan amortizes away. *)
let rec fallback_scan t ~buckets ~tried bin =
  if tried >= buckets then failwith "Alloc: RAM completely full"
  else if t.free_in.(bin) > 0 then bin
  else fallback_scan t ~buckets ~tried:(tried + 1) ((bin + 1) mod buckets)

let find_fallback t =
  let buckets = t.params.Params.buckets in
  let bin = fallback_scan t ~buckets ~tried:0 t.fallback_cursor in
  t.fallback_cursor <- (bin + 1) mod buckets;
  bin

let[@atplint.hot] place t page choice bin =
  let slot = take_slot t bin in
  if choice = 0 then t.front_load.(bin) <- t.front_load.(bin) + 1
  else t.back_load.(bin) <- t.back_load.(bin) + 1;
  let code = (choice * t.params.Params.bucket_size) + slot in
  Int_table.set t.code_of page code;
  code

(* The allocation-free primitive: places the page and returns its
   packed code ([choice * B + slot] when placed, [-frame - 1] on a
   paging failure) — the same packing [code_of] stores.  [insert] is
   its boxed view. *)
let[@atplint.hot] insert_code t page =
  if mem t page then invalid_arg "Alloc.insert: page already resident";
  if t.total_free = 0 then failwith "Alloc: RAM completely full";
  let { Params.bucket_size; k; tau; _ } = t.params in
  let front = Hashing.apply t.fam 0 page in
  if t.front_load.(front) < tau && t.free_in.(front) > 0 then
    place t page 0 front
  else begin
    (* Greedy[d] on back-yard loads over choices 1..k-1, skipping
       physically full buckets. *)
    let best = ref (-1) in
    let best_bin = ref (-1) in
    for choice = 1 to k - 1 do
      let bin = Hashing.apply t.fam choice page in
      if t.free_in.(bin) > 0
         && (!best = -1 || t.back_load.(bin) < t.back_load.(!best_bin))
      then begin
        best := choice;
        best_bin := bin
      end
    done;
    if !best >= 0 then place t page !best !best_bin
    else begin
      (* Paging failure: park the page anywhere; it has no encoding. *)
      let bin = find_fallback t in
      let slot = take_slot t bin in
      t.back_load.(bin) <- t.back_load.(bin) + 1;
      let frame = (bin * bucket_size) + slot in
      Int_table.set t.code_of page (-frame - 1);
      t.failures_now <- t.failures_now + 1;
      t.failures_total <- t.failures_total + 1;
      -frame - 1
    end
  end

let decode_code t page code =
  let bucket_size = t.params.Params.bucket_size in
  if code >= 0 then begin
    let choice = Divider.div t.b_div code in
    let slot = code - (choice * bucket_size) in
    let bin = bin_of_choice t ~page ~choice in
    Placed { choice; slot; frame = (bin * bucket_size) + slot }
  end
  else Fallback { frame = -code - 1 }

let insert t page = decode_code t page (insert_code t page)

let missing_code = min_int

let code_of t page = Int_table.find_or t.code_of page missing_code

let location_of t page =
  Option.map (decode_code t page) (Int_table.find t.code_of page)

let frame_of t page =
  match location_of t page with
  | Some (Placed { frame; _ }) | Some (Fallback { frame }) -> Some frame
  | None -> None

let[@atplint.hot] delete t page =
  let code = code_of t page in
  if code = missing_code then invalid_arg "Alloc.delete: page not resident";
  ignore (Int_table.remove t.code_of page);
  let bucket_size = t.params.Params.bucket_size in
  if code >= 0 then begin
    let choice = Divider.div t.b_div code in
    let slot = code - (choice * bucket_size) in
    let bin = Hashing.apply t.fam choice page in
    release_slot t bin slot;
    if choice = 0 then t.front_load.(bin) <- t.front_load.(bin) - 1
    else t.back_load.(bin) <- t.back_load.(bin) - 1
  end
  else begin
    let frame = -code - 1 in
    let bin = Divider.div t.b_div frame in
    let slot = frame - (bin * bucket_size) in
    release_slot t bin slot;
    t.back_load.(bin) <- t.back_load.(bin) - 1;
    t.failures_now <- t.failures_now - 1
  end

let failures_now t = t.failures_now

let failures_total t = t.failures_total

let max_bucket_load t =
  let best = ref 0 in
  for i = 0 to Array.length t.free_in - 1 do
    let load = t.params.Params.bucket_size - t.free_in.(i) in
    if load > !best then best := load
  done;
  !best
