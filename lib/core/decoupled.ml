open Atp_util

type translation =
  | Frame of int
  | Decode_fault
  | Not_covered

(* [values] holds the live ψ array for every huge page that needs one:
   those with at least one resident constituent, plus those currently
   in the TLB.  The TLB and the shadow table share the same mutable
   array, so a residency change updates a loaded TLB entry for free —
   which is exactly the model's free ψ update. *)

type t = {
  params : Params.t;
  alloc : Alloc.t;
  enc : Encoding.t;
  values : Encoding.value Int_table.Poly.t;
  counts : Int_table.t;  (* huge page -> resident constituents *)
  in_tlb : Int_table.t;  (* huge page -> 1 *)
}

let create ?seed params =
  let alloc = Alloc.create ?seed params in
  {
    params;
    alloc;
    enc = Encoding.create alloc;
    values = Int_table.Poly.create ~initial_capacity:4096 ();
    counts = Int_table.create ();
    in_tlb = Int_table.create ();
  }

let params t = t.params

let alloc t = t.alloc

let h_max t = Encoding.h_max t.enc

let[@inline] [@atplint.hot] huge_of t v = Encoding.huge_of t.enc v

(* A sentinel distinct (physically) from every stored psi, so the hot
   lookups below need no option. *)
let no_value : Encoding.value = Atp_util.Packed_array.create ~width:1 ~length:1

let value_for t u =
  let value = Int_table.Poly.find_or t.values u no_value in
  if value != no_value then value
  else begin
    let value = Encoding.empty_value t.enc in
    Int_table.Poly.set t.values u value;
    value
  end

let maybe_drop t u =
  let count = Int_table.find_or t.counts u 0 in
  if count = 0 && not (Int_table.mem t.in_tlb u) then
    ignore (Int_table.Poly.remove t.values u)

let[@atplint.hot] ram_insert t v =
  let code = Alloc.insert_code t.alloc v in
  let u = Encoding.huge_of t.enc v in
  ignore (Int_table.incr_by t.counts u 1 : int);
  Encoding.set_code t.enc (value_for t u) v code

let[@atplint.hot] ram_evict t v =
  Alloc.delete t.alloc v;
  let u = Encoding.huge_of t.enc v in
  let value = Int_table.Poly.find_or t.values u no_value in
  if value == no_value then assert false;
  Encoding.clear_page t.enc value v;
  let count = Int_table.incr_by t.counts u (-1) in
  if count = 0 then begin
    ignore (Int_table.remove t.counts u);
    maybe_drop t u
  end

let active t = Alloc.live t.alloc

let[@atplint.hot] tlb_add t u =
  if Int_table.add_if_absent t.in_tlb u 1 then ignore (value_for t u)

let[@atplint.hot] tlb_remove t u =
  if Int_table.remove t.in_tlb u then maybe_drop t u

let[@atplint.hot] tlb_mem t u = Int_table.mem t.in_tlb u

let tlb_size t = Int_table.length t.in_tlb

(* The allocation-free translate: [>= 0] is the frame,
   [fault_code] a decoding fault, [not_covered_code] a TLB miss. *)
let fault_code = -1

let not_covered_code = -2

(* The covered-case body, shared with {!translate_code}: callers that
   have just ensured coverage (the fused loop adds u to the TLB on an
   X miss before translating) skip the membership probe. *)
let[@inline] [@atplint.hot] translate_covered_code t v u =
  let value = Int_table.Poly.find_or t.values u no_value in
  if value == no_value then fault_code
    (* covered but no constituent resident *)
  else begin
    let frame = Encoding.decode t.enc v value in
    if frame < 0 then fault_code else frame
  end

let[@atplint.hot] translate_code t v =
  let u = Encoding.huge_of t.enc v in
  if not (Int_table.mem t.in_tlb u) then not_covered_code
  else translate_covered_code t v u

let translate t v =
  let code = translate_code t v in
  if code >= 0 then Frame code
  else if code = fault_code then Decode_fault
  else Not_covered

let decoded_frame t v =
  let u = Encoding.huge_of t.enc v in
  match Int_table.Poly.find t.values u with
  | None -> None
  | Some value ->
    let frame = Encoding.decode t.enc v value in
    if frame < 0 then None else Some frame
