open Atp_paging
open Atp_memsim

type t = {
  name : string;
  access : int -> unit;
  ios : unit -> int;
  tlb_events : unit -> int;
  cheap_events : unit -> int;
  decode_misses : unit -> int;
  reset : unit -> unit;
}

let cost ?(tcache_epsilon = 0.0) ~epsilon t =
  float_of_int (t.ios ())
  +. (epsilon *. float_of_int (t.tlb_events () + t.decode_misses ()))
  +. (tcache_epsilon *. float_of_int (t.cheap_events ()))

let run ?warmup t trace =
  (match warmup with
   | Some w -> Array.iter t.access w
   | None -> ());
  t.reset ();
  Array.iter t.access trace;
  t

let physical ?(tlb_entries = 1536) ?(seed = 42) ~ram_pages ~huge_size () =
  let m =
    Machine.create
      { Machine.default_config with ram_pages; tlb_entries; huge_size; seed }
  in
  {
    name = Printf.sprintf "physical-%d" huge_size;
    access = Machine.access m;
    ios = (fun () -> (Machine.counters m).Machine.ios);
    tlb_events = (fun () -> (Machine.counters m).Machine.tlb_misses);
    cheap_events = (fun () -> 0);
    decode_misses = (fun () -> 0);
    reset = (fun () -> Machine.reset_counters m);
  }

let physical_reach ?(tlb_entries = 1536) ?(seed = 42) ~ram_pages ~huge_size
    ~tcache_entries () =
  if tcache_entries < 1 then
    invalid_arg "Scheme.physical_reach: tier needs at least one entry";
  let m =
    Machine.create
      { Machine.default_config with
        ram_pages; tlb_entries; huge_size; seed; tcache_entries }
  in
  {
    name = Printf.sprintf "reach-%d-tc%d" huge_size tcache_entries;
    access = Machine.access m;
    ios = (fun () -> (Machine.counters m).Machine.ios);
    (* Recovered misses are billed as cheap events, not full ε ones. *)
    tlb_events =
      (fun () ->
        let c = Machine.counters m in
        c.Machine.tlb_misses - c.Machine.tcache_hits);
    cheap_events = (fun () -> (Machine.counters m).Machine.tcache_hits);
    decode_misses = (fun () -> 0);
    reset = (fun () -> Machine.reset_counters m);
  }

let thp ?(base_tlb_entries = 1536) ?(huge_tlb_entries = 16) ~ram_pages
    ~huge_size () =
  let m =
    Thp.create
      { Thp.default_config with
        ram_pages; base_tlb_entries; huge_tlb_entries; huge_size }
  in
  {
    name = Printf.sprintf "thp-%d" huge_size;
    access = Thp.access m;
    ios = (fun () -> (Thp.counters m).Thp.ios);
    tlb_events = (fun () -> (Thp.counters m).Thp.tlb_misses);
    cheap_events = (fun () -> 0);
    decode_misses = (fun () -> 0);
    reset = (fun () -> Thp.reset_counters m);
  }

let superpage ?(base_tlb_entries = 1536) ?(huge_tlb_entries = 16) ~ram_pages
    ~huge_size () =
  let m =
    Superpage.create
      { Superpage.default_config with
        ram_pages; base_tlb_entries; huge_tlb_entries; huge_size }
  in
  {
    name = Printf.sprintf "superpage-%d" huge_size;
    access = Superpage.access m;
    ios = (fun () -> (Superpage.counters m).Superpage.ios);
    tlb_events = (fun () -> (Superpage.counters m).Superpage.tlb_misses);
    cheap_events = (fun () -> 0);
    decode_misses = (fun () -> 0);
    reset = (fun () -> Superpage.reset_counters m);
  }

let decoupled ?(tlb_entries = 1536) ?seed ?(x_policy = (module Lru : Policy.S))
    ?(y_policy = (module Lru : Policy.S)) ~ram_pages ~w () =
  let params = Params.derive ~p:ram_pages ~w () in
  let x = Policy.instantiate x_policy ~capacity:tlb_entries () in
  let y =
    Policy.instantiate y_policy ~capacity:(Params.usable_pages params) ()
  in
  let z = Simulation.create ?seed ~params ~x ~y () in
  {
    name = Printf.sprintf "decoupled-h%d" params.Params.h_max;
    access = Simulation.access z;
    ios = (fun () -> (Simulation.report z).Simulation.ios);
    tlb_events = (fun () -> (Simulation.report z).Simulation.tlb_fills);
    cheap_events = (fun () -> 0);
    decode_misses =
      (fun () -> (Simulation.report z).Simulation.decoding_misses);
    reset = (fun () -> Simulation.reset_report z);
  }

let hybrid ?(tlb_entries = 1536) ~ram_pages ~chunk ~w () =
  let h = Hybrid.create ~ram_pages ~chunk ~w ~tlb_entries () in
  {
    name = Printf.sprintf "hybrid-c%d" chunk;
    access = Hybrid.access h;
    ios = (fun () -> (Hybrid.report h).Hybrid.ios);
    tlb_events = (fun () -> (Hybrid.report h).Hybrid.tlb_fills);
    cheap_events = (fun () -> 0);
    decode_misses = (fun () -> (Hybrid.report h).Hybrid.decoding_misses);
    reset = (fun () -> Hybrid.reset_report h);
  }

let compare_all ?warmup ?tcache_epsilon ~epsilon schemes trace =
  List.map
    (fun scheme ->
      let scheme = run ?warmup scheme trace in
      ( scheme.name,
        scheme.ios (),
        scheme.tlb_events () + scheme.cheap_events (),
        cost ?tcache_epsilon ~epsilon scheme ))
    schemes
