(** Huge-page decoupling on a multi-core machine.

    The paper notes its results apply to every TLB in a modern machine
    — per-core TLBs included.  This module runs one decoupling scheme
    D (one RAM, one allocator, one ψ table) under {e per-core} TLBs:
    each core's TLB-replacement policy covers huge pages independently,
    while the shared RAM-replacement policy Y drives the active set.
    One honesty adjustment for multicore: hardware TLB entries are
    {e copies}, not pointers, so the model's free ψ update only holds
    within a core.  When a residency change touches a huge page that
    {e remote} cores currently cover, those copies must be refreshed
    (an update IPI); this module counts every such notification, on
    insertions into A as well as evictions.  This is the real
    concurrency cost of decoupling, and the benchmarks compare it
    against the shootdown traffic of conventional per-core TLBs.

    Cost model: per-core TLB fills at ε, IOs at 1, decoding misses at
    ε, remote ψ-update notifications at [ipi_epsilon]. *)

type report = {
  accesses : int;
  ios : int;
  tlb_fills : int;  (** summed over cores *)
  decoding_misses : int;
  psi_update_ipis : int;
      (** remote-copy refreshes: residency changes to huge pages
          covered by other cores *)
}

type t

val create :
  ?seed:int ->
  params:Params.t ->
  cores:int ->
  tlb_entries_per_core:int ->
  y:Atp_paging.Policy.instance ->
  unit ->
  t
(** Each core gets its own LRU TLB-replacement policy of the given
    size; [y] is the shared RAM policy (capacity ≤ the (1-δ)P
    budget).

    @raise Invalid_argument if [cores < 1] or [y] exceeds the
    (1-delta)P budget. *)

val cores : t -> int

val access : t -> core:int -> int -> unit
(** @raise Invalid_argument on an out-of-range core index. *)

val report : t -> report

val cost : epsilon:float -> ipi_epsilon:float -> report -> float

val run_shared : ?warmup:int array -> t -> int array -> report
(** Round-robin the trace across cores. *)
