(** Derived parameters of the huge-page decoupling schemes.

    Given the hardware constants — [p] physical pages, [w] bits per TLB
    value — and a choice of allocation scheme, this module computes the
    bucket geometry and the resulting huge-page size [h_max], following
    Section 4:

    - [One_choice] (Theorem 1): bucket size
      [B = Θ(log P · log log P)], so each slot pointer needs
      [Θ(log log P)] bits and [h_max = Θ(w / log log P)].
    - [Iceberg d] (Theorem 3): bucket size [B = Θ̃(log log P)], slot
      pointers need [Θ(log log log P)] bits, and
      [h_max = Θ(w / log log log P)]. *)

type scheme =
  | One_choice
  | Iceberg of { d : int }  (** uses [d + 1] hash functions *)

type t = {
  scheme : scheme;
  p : int;  (** physical pages *)
  w : int;  (** bits per TLB value *)
  bucket_size : int;  (** B, slots per bucket *)
  buckets : int;  (** n = floor (p / B) *)
  k : int;  (** hash functions consulted *)
  tau : int;  (** Iceberg front-yard cap; equals [bucket_size] for
                  one-choice *)
  bits_per_page : int;  (** ceil (log2 (k·B + 1)): choice, slot, and a
                            null encoding *)
  h_max : int;  (** floor (w / bits_per_page) *)
  delta : float;  (** implied resource augmentation: the scheme
                      guarantees failure-freedom w.h.p. only while at
                      most [(1 - delta)·p] pages are active *)
}

val derive : ?scheme:scheme -> ?delta_exponent:int -> p:int -> w:int -> unit -> t
(** [scheme] defaults to [Iceberg {d = 2}], the paper's main
    construction.

    [delta_exponent] implements the paper's footnote 5: spending
    poly(log log P) associativity buys δ = 1/poly(log log P) of our
    choice.  With [delta_exponent = c] (Iceberg only), the resource
    augmentation target becomes [1 / (log log P)^c] — a larger bucket
    size in exchange for handing the RAM-replacement policy a bigger
    budget.  Default 1 (the body-text construction).

    @raise Invalid_argument on parameters outside the paper's regime:
    [p < 2], [w < 2], [delta_exponent < 1], [d < 1], or a word too
    small to encode a page pointer or hold one bucket. *)

val usable_pages : t -> int
(** [(1 - delta) · p], the active-set budget handed to the
    RAM-replacement policy. *)

val log2_ceil : int -> int
(** Smallest [b] with [2^b >= n]; 0 for [n <= 1]. *)

val pp : Format.formatter -> t -> unit
