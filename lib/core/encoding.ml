open Atp_util

type value = Packed_array.t

type t = {
  alloc : Alloc.t;
  h_max : int;
  bits_per_page : int;
  bucket_size : int;
  null : int;
  h_div : Divider.t;  (* strength-reduced / and mod by h_max *)
  b_div : Divider.t;  (* … and by bucket_size *)
}

let create alloc =
  let params = Alloc.params alloc in
  let { Params.h_max; bits_per_page; bucket_size; k; _ } = params in
  {
    alloc;
    h_max;
    bits_per_page;
    bucket_size;
    null = k * bucket_size;
    h_div = Divider.make h_max;
    b_div = Divider.make bucket_size;
  }

let h_max t = t.h_max

let bits_used t = t.h_max * t.bits_per_page

let null_code t = t.null

let[@inline] [@atplint.hot] huge_of t v = Divider.div t.h_div v

let[@inline] [@atplint.hot] index_of t v = Divider.rem t.h_div v

let empty_value t =
  let value = Packed_array.create ~width:t.bits_per_page ~length:t.h_max in
  for i = 0 to t.h_max - 1 do
    Packed_array.set value i t.null
  done;
  value

(* A placed page's packed Alloc code is exactly the field encoding
   ([choice * B + slot < k * B = null]); fallback or absent is null. *)
let[@atplint.hot] set_code t value v code =
  Packed_array.set value (index_of t v) (if code >= 0 then code else t.null)

let refresh_page t value v = set_code t value v (Alloc.code_of t.alloc v)

let[@atplint.hot] clear_page t value v = Packed_array.set value (index_of t v) t.null

let is_empty t value =
  let rec go i =
    i >= t.h_max || (Packed_array.get value i = t.null && go (i + 1))
  in
  go 0

let[@atplint.hot] decode t v value =
  let code = Packed_array.get value (index_of t v) in
  if code = t.null then -1
  else begin
    let choice = Divider.div t.b_div code in
    let slot = code - (choice * t.bucket_size) in
    let bin = Alloc.bin_of_choice t.alloc ~page:v ~choice in
    (bin * t.bucket_size) + slot
  end
