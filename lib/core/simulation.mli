(** The Simulation Theorem (Theorem 4) made executable.

    Given a TLB-optimising algorithm X (any {!Atp_paging.Policy}
    instance run on the huge-page request stream [r(p_i)] with ℓ
    entries — Lemma 1's reduction) and an IO-optimising algorithm Y
    (any policy instance on the page stream with capacity at most
    [(1-δ)·P]), this module builds the combined memory-management
    algorithm Z over a decoupling scheme D and accounts its cost in
    the address-translation cost model.

    Invariants maintained (and checked in tests):
    - Z adds a TLB entry exactly when X misses, so
      [tlb_fills = misses(X, r(σ))];
    - Z performs an IO exactly when Y misses, so
      [ios = misses(Y, σ)];
    - decoding misses happen only for pages parked by a paging
      failure, the [n/poly(P)] term of Eq. (3). *)

type report = {
  accesses : int;
  ios : int;  (** = Y's misses *)
  tlb_fills : int;  (** = X's misses *)
  decoding_misses : int;  (** accesses that decoded to ⊥ (failures) *)
  failures_total : int;  (** paging failures since creation *)
  max_bucket_load : int;
}

val cost : epsilon:float -> report -> float
(** [ios + ε·(tlb_fills + decoding_misses)]: C(Z, σ). *)

val c_tlb : epsilon:float -> report -> float
(** [ε·tlb_fills]: C_TLB(X, σ). *)

val c_io : report -> float
(** [ios]: C_IO(Y, σ). *)

type t

val create :
  ?seed:int ->
  ?obs:Atp_obs.Scope.t ->
  params:Params.t ->
  x:Atp_paging.Policy.instance ->
  y:Atp_paging.Policy.instance ->
  unit ->
  t
(** [x]'s capacity is the TLB entry count ℓ; [y]'s capacity must not
    exceed [Params.usable_pages params] (raises [Invalid_argument]
    otherwise — that is the resource-augmentation contract).

    [obs] registers [accesses]/[ios]/[tlb_fills]/[decoding_misses]/
    [psi_updates] counters and a [max_bucket_load] gauge (mirroring
    {!report}), and emits [tlb_hit]/[tlb_miss]/[io]/[decode_miss]/
    [eviction]/[psi_update] trace events.

    @raise Invalid_argument if [y]'s capacity exceeds the (1-delta)P
    budget. *)

val decoupled : t -> Decoupled.t

val access : t -> int -> unit
(** Service one virtual page request through Z. *)

val report : t -> report

val reset_report : t -> unit

val run : ?warmup:int array -> t -> int array -> report

val huge_trace : h_max:int -> int array -> int array
(** [r(p_1), r(p_2), …]: the huge-page request stream Lemma 1 feeds to
    X — also what callers need to build an OPT instance for X. *)

val pp_report : Format.formatter -> report -> unit
