open Atp_paging

type report = {
  accesses : int;
  ios : int;
  tlb_fills : int;
  decoding_misses : int;
  psi_update_ipis : int;
}

(* The decoupled scheme's TLB-membership table is per-scheme, but here
   coverage differs per core.  We track coverage ourselves: a huge
   page's psi value must exist while ANY core covers it, so we
   reference-count coverage across cores and drive Decoupled's
   tlb_add/tlb_remove at the 0 <-> 1 transitions. *)

type t = {
  d : Decoupled.t;
  xs : Policy.instance array;  (* per-core TLB policies over huge pages *)
  y : Policy.instance;
  h_max : int;
  coverage : Atp_util.Int_table.t;  (* huge page -> covering core count *)
  mutable accesses : int;
  mutable ios : int;
  mutable tlb_fills : int;
  mutable decoding_misses : int;
  mutable psi_update_ipis : int;
}

let create ?seed ~params ~cores ~tlb_entries_per_core ~y () =
  if cores < 1 then invalid_arg "Smp_decoupled.create: need a core";
  let budget = Params.usable_pages params in
  if y.Policy.capacity > budget then
    invalid_arg "Smp_decoupled.create: Y exceeds the (1-delta)P budget";
  let d = Decoupled.create ?seed params in
  {
    d;
    xs =
      Array.init cores (fun _ ->
          Policy.instantiate (module Lru) ~capacity:tlb_entries_per_core ());
    y;
    h_max = Decoupled.h_max d;
    coverage = Atp_util.Int_table.create ();
    accesses = 0;
    ios = 0;
    tlb_fills = 0;
    decoding_misses = 0;
    psi_update_ipis = 0;
  }

let cores t = Array.length t.xs

let cover t u =
  let count = Option.value (Atp_util.Int_table.find t.coverage u) ~default:0 in
  if count = 0 then Decoupled.tlb_add t.d u;
  Atp_util.Int_table.set t.coverage u (count + 1)

let uncover t u =
  match Atp_util.Int_table.find t.coverage u with
  | None -> ()
  | Some 1 ->
    ignore (Atp_util.Int_table.remove t.coverage u);
    Decoupled.tlb_remove t.d u
  | Some count -> Atp_util.Int_table.set t.coverage u (count - 1)

let access t ~core page =
  if core < 0 || core >= Array.length t.xs then
    invalid_arg "Smp_decoupled.access: bad core";
  t.accesses <- t.accesses + 1;
  let u = page / t.h_max in
  (match t.xs.(core).Policy.access u with
   | Policy.Hit -> ()
   | Policy.Miss { evicted } ->
     t.tlb_fills <- t.tlb_fills + 1;
     (match evicted with
      | Some victim -> uncover t victim
      | None -> ());
     cover t u);
  (* Remote TLB copies of a huge page's psi value must be refreshed
     whenever a constituent's residency changes. *)
  let notify_remote_holders v =
    let vu = v / t.h_max in
    match Atp_util.Int_table.find t.coverage vu with
    | Some holders ->
      let remote = holders - (if t.xs.(core).Policy.mem vu then 1 else 0) in
      t.psi_update_ipis <- t.psi_update_ipis + max 0 remote
    | None -> ()
  in
  (match t.y.Policy.access page with
   | Policy.Hit -> ()
   | Policy.Miss { evicted } ->
     t.ios <- t.ios + 1;
     (match evicted with
      | None -> ()
      | Some victim ->
        Decoupled.ram_evict t.d victim;
        notify_remote_holders victim);
     Decoupled.ram_insert t.d page;
     notify_remote_holders page);
  match Decoupled.translate t.d page with
  | Decoupled.Frame _ -> ()
  | Decoupled.Decode_fault -> t.decoding_misses <- t.decoding_misses + 1
  | Decoupled.Not_covered -> assert false

let report t =
  {
    accesses = t.accesses;
    ios = t.ios;
    tlb_fills = t.tlb_fills;
    decoding_misses = t.decoding_misses;
    psi_update_ipis = t.psi_update_ipis;
  }

let cost ~epsilon ~ipi_epsilon (r : report) =
  float_of_int r.ios
  +. (epsilon *. float_of_int (r.tlb_fills + r.decoding_misses))
  +. (ipi_epsilon *. float_of_int r.psi_update_ipis)

let run_shared ?warmup t trace =
  let n = Array.length t.xs in
  (match warmup with
   | Some w -> Array.iteri (fun i page -> access t ~core:(i mod n) page) w
   | None -> ());
  t.accesses <- 0;
  t.ios <- 0;
  t.tlb_fills <- 0;
  t.decoding_misses <- 0;
  t.psi_update_ipis <- 0;
  Array.iteri (fun i page -> access t ~core:(i mod n) page) trace;
  report t
