(** TLB value encoding and decoding (the ψ and f of Section 3).

    A TLB value for a virtual huge page [u] packs [h_max] fields of
    [bits_per_page] bits.  Field [i] describes the [i]-th constituent
    page [v = u·h_max + i]: either the null code (page not in the
    active set, or unplaceable due to a paging failure), or a pair
    (choice, slot) from which the decoder reconstructs the physical
    frame as [h_choice(v)·B + slot].

    The decoding function [f] is fixed at creation time: it depends
    only on the geometry and the allocator's hash seeds (the scheme's
    random bits), never on mutable state — exactly the contract the
    paper requires of [f]. *)

type t

type value = Atp_util.Packed_array.t
(** A ψ(u): [h_max] packed fields.  Mutated in place as constituent
    pages come and go, which costs nothing in the model. *)

val create : Alloc.t -> t

val h_max : t -> int

val bits_used : t -> int
(** [h_max × bits_per_page]; always [<= w]. *)

val null_code : t -> int
(** The field value meaning ⊥. *)

val huge_of : t -> int -> int
(** [r(v) = v / h_max], the covering huge page. *)

val index_of : t -> int -> int
(** [v mod h_max], the field index of [v] within ψ(r(v)). *)

val empty_value : t -> value
(** A ψ with every field null. *)

val set_code : t -> value -> int -> int -> unit
(** [set_code t value v code] writes the field for page [v] directly
    from a packed {!Alloc} code ([{!Alloc.insert_code}]'s return):
    the code itself when placed ([>= 0]), null otherwise.
    Allocation-free — the hot insert path uses this instead of
    {!refresh_page}'s allocator lookup. *)

val refresh_page : t -> value -> int -> unit
(** Re-encode the field for page [v] from the allocator's current
    location: (choice, slot) if placed, null if absent or in fallback
    (paging failure ⇒ no encoding ⇒ decoding misses, per Theorem 4). *)

val clear_page : t -> value -> int -> unit
(** Set the field for page [v] to null. *)

val is_empty : t -> value -> bool
(** All fields null. *)

val decode : t -> int -> value -> int
(** [decode t v psi] is the paper's [f(v, ψ(u))]: the physical frame
    of [v], or [-1].  Pure with respect to allocator state: it reads
    only hash seeds and the packed fields. *)
