(** The huge-page decoupling scheme D of Section 3, assembled: the
    RAM-allocation scheme ({!Alloc}), the TLB-encoding scheme, and the
    TLB-decoding scheme ({!Encoding}), kept mutually consistent in
    O(1) time per event.

    The scheme is driven from outside by a RAM-replacement policy
    (which pages are active) and a TLB-replacement policy (which huge
    pages are covered), both oblivious to the scheme's internals —
    exactly the interface of the paper.  A hash table shadows the
    would-be ψ(u) for every huge page with a resident constituent, so
    loading a TLB entry is O(1) (the trick in the proof of
    Theorem 1). *)

type t

type translation =
  | Frame of int  (** TLB covered and the field decoded to φ(v) *)
  | Decode_fault
      (** TLB covered but f returned ⊥ — a decoding miss if the page
          is actually active (paging failure), or simply a
          non-resident page *)
  | Not_covered  (** no TLB entry for r(v): a TLB miss *)

val create : ?seed:int -> Params.t -> t

val params : t -> Params.t

val alloc : t -> Alloc.t

val h_max : t -> int

val huge_of : t -> int -> int
(** The covering huge page r(v) = v / h_max, via the scheme's
    strength-reduced divider — the hot paths' replacement for a
    hardware divide per access. *)

(** {2 RAM-replacement events} *)

val ram_insert : t -> int -> unit
(** Page [v] enters the active set A; assigns φ(v) and updates ψ of
    the covering huge page. *)

val ram_evict : t -> int -> unit
(** Page [v] leaves A; frees its frame and nulls its ψ field. *)

val active : t -> int

(** {2 TLB-replacement events} *)

val tlb_add : t -> int -> unit
(** Huge page [u] enters the TLB; ψ(u) is materialized in O(1).
    Idempotent. *)

val tlb_remove : t -> int -> unit
(** Huge page [u] leaves the TLB.  Idempotent. *)

val tlb_mem : t -> int -> bool

val tlb_size : t -> int

(** {2 Translation} *)

val translate : t -> int -> translation
(** Look up page [v] through the decoupled TLB. *)

val translate_code : t -> int -> int
(** Allocation-free [translate]: the frame φ(v) when [>= 0], else
    {!fault_code} or {!not_covered_code}.  [translate] is this
    function's boxed view. *)

val translate_covered_code : t -> int -> int -> int
(** [translate_covered_code t v u] is {!translate_code} for a page
    whose huge page [u] is already known to be TLB-covered — the
    membership probe is skipped, so [not_covered_code] is never
    returned.  The fused replay loop calls this right after ensuring
    coverage. *)

val fault_code : int
(** [-1]: covered but f returned ⊥ ([Decode_fault]). *)

val not_covered_code : int
(** [-2]: no TLB entry for r(v) ([Not_covered]). *)

val decoded_frame : t -> int -> int option
(** Debug/verification view: what f would return for [v] if its huge
    page were covered; bypasses TLB membership. *)
