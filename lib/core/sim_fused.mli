(** The fused, allocation-free replay core.

    Same semantics as {!Simulation} — identical counter names, trace
    events, event order, and {!Simulation.report} values for the same
    (X, Y, seed) — but engineered for the hot path:

    - policy outcomes travel as untagged ints
      ({!Atp_paging.Policy.Fast}), never as [outcome] blocks;
    - translation goes through {!Decoupled.translate_code}, never the
      [translation] variant;
    - the {!Make} functor specializes the inner loop per policy pair,
      so X and Y are direct (inlinable) calls rather than closure
      dispatch;
    - trace chunks are consumed in place ([access_chunk]) — no
      intermediate ref array.

    Equivalence with the generic path is structural: the policies'
    [access_fast] is the primitive that [access] is defined from, and
    this module reuses [Simulation]'s exact obs layout.  The
    differential suite additionally checks it end to end. *)

type chunk = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Structurally equal to [Atp_workloads.Trace.Stream.chunk] (this
    library does not depend on workloads). *)

(** Boxed view of a fused simulation, for heterogeneous callers: one
    closure record per simulation, never per access. *)
type fused = {
  access : int -> unit;
  access_array : int array -> int -> int -> unit;
      (** [access_array refs pos len]. *)
  access_chunk : chunk -> int -> int -> unit;
      (** [access_chunk chunk pos len]: consume decoded refs in place. *)
  report : unit -> Simulation.report;
  reset_report : unit -> unit;
  decoupled : Decoupled.t;
}

(** Specialize the replay loop for a concrete (X, Y) policy pair. *)
module Make (X : Atp_paging.Policy.Fast) (Y : Atp_paging.Policy.Fast) : sig
  type t

  val create :
    ?seed:int ->
    ?obs:Atp_obs.Scope.t ->
    params:Params.t ->
    x:X.t ->
    y:Y.t ->
    unit ->
    t
  (** Mirrors {!Simulation.create}: [x]'s capacity is the TLB entry
      count, [y]'s capacity must not exceed [Params.usable_pages].

      @raise Invalid_argument if [y]'s capacity exceeds the budget. *)

  val decoupled : t -> Decoupled.t

  val access : t -> int -> unit

  val access_array : t -> int array -> int -> int -> unit

  val access_chunk : t -> chunk -> int -> int -> unit

  val report : t -> Simulation.report

  val reset_report : t -> unit

  val run : ?warmup:int array -> t -> int array -> Simulation.report

  val fused : t -> fused
end

val of_instances :
  ?seed:int ->
  ?obs:Atp_obs.Scope.t ->
  params:Params.t ->
  x:Atp_paging.Policy.instance ->
  y:Atp_paging.Policy.instance ->
  unit ->
  fused
(** Generic fallback for policies without a {!Make} specialization:
    dispatches through the instances' [access_fast] closures — two
    indirect calls per access, but still free of outcome boxing.

    @raise Invalid_argument if the Y capacity exceeds the page budget,
      or later from the returned [access_array]/[access_chunk] on an
      out-of-bounds range. *)

val run_fused : ?warmup:int array -> fused -> int array -> Simulation.report
(** [Simulation.run], over the boxed view. *)

val specialized_pairs : (string * string) list
(** The (x_name, y_name) pairs {!specialized} has a functor
    instantiation for; anything else returns [None]. *)

val specialized :
  ?seed:int ->
  ?obs:Atp_obs.Scope.t ->
  params:Params.t ->
  x_name:string ->
  x_capacity:int ->
  ?x_rng:Atp_util.Prng.t ->
  y_name:string ->
  y_capacity:int ->
  ?y_rng:Atp_util.Prng.t ->
  unit ->
  fused option
(** The functor-specialized pairs available by name: {lru, fifo, 2q} ×
    {lru, fifo, 2q} minus (fifo, 2q) and (2q, fifo).  [None] when the
    pair has no specialization. *)

val for_names :
  ?seed:int ->
  ?obs:Atp_obs.Scope.t ->
  params:Params.t ->
  x_name:string ->
  x_capacity:int ->
  ?x_rng:Atp_util.Prng.t ->
  y_name:string ->
  y_capacity:int ->
  ?y_rng:Atp_util.Prng.t ->
  unit ->
  fused
(** {!specialized} when available, else {!of_instances} over
    {!Atp_paging.Registry.find_fast_exn}.

    @raise Invalid_argument on an unknown policy name. *)
