open Atp_paging
module Obs = Atp_obs

[@@@atplint.hot]

type chunk = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Shared mutable core: the decoupling scheme plus the exact counter
   and trace layout of [Simulation.create], so a fused run and a
   generic run of the same (X, Y, seed) produce byte-identical reports
   and obs snapshots.  The policy states live outside this record —
   either as functor-specialized values ({!Make}) or as boxed
   [access_fast] closures ({!of_instances}). *)
type core = {
  d : Decoupled.t;
  failures_at_reset : int ref;
  tr : Obs.Trace.t;
  c_accesses : Obs.Counter.t;
  c_ios : Obs.Counter.t;
  c_tlb_fills : Obs.Counter.t;
  c_decoding_misses : Obs.Counter.t;
  c_psi_updates : Obs.Counter.t;
  g_max_bucket_load : Obs.Gauge.t;
}

(* Constructor, not per-access code: runs once per simulator, so the
   allocations its callees perform are setup cost, not hot-path churn.
   (The file-wide hot tag covers the access functions below.) *)
let[@atplint.allow "hot-path-alloc-transitive"] make_core ?seed ?obs ~params
    ~y_capacity () =
  let budget = Params.usable_pages params in
  if y_capacity > budget then
    invalid_arg
      (Printf.sprintf
         "Sim_fused: Y capacity %d exceeds the (1-delta)P budget %d"
         y_capacity budget);
  let d = Decoupled.create ?seed params in
  let obs = match obs with Some o -> o | None -> Obs.Scope.null () in
  {
    d;
    failures_at_reset = ref 0;
    tr = Obs.Scope.tracer obs;
    c_accesses = Obs.Scope.counter obs "accesses";
    c_ios = Obs.Scope.counter obs "ios";
    c_tlb_fills = Obs.Scope.counter obs "tlb_fills";
    c_decoding_misses = Obs.Scope.counter obs "decoding_misses";
    c_psi_updates = Obs.Scope.counter obs "psi_updates";
    g_max_bucket_load = Obs.Scope.gauge obs "max_bucket_load";
  }

let[@inline] note_psi_update c page =
  let u = Decoupled.huge_of c.d page in
  if Decoupled.tlb_mem c.d u then begin
    Obs.Counter.incr c.c_psi_updates;
    Obs.Trace.record c.tr Obs.Event.Psi_update page u
  end

(* The three steps of [Simulation.access], split around the two policy
   calls so {!Make} can invoke X and Y directly (inlinable) while
   {!of_instances} goes through closures.  Event order is identical to
   the generic path. *)

let[@inline] on_tlb c u fx =
  if Policy.fast_is_hit fx then Obs.Trace.record c.tr Obs.Event.Tlb_hit u 0
  else begin
    Obs.Counter.incr c.c_tlb_fills;
    Obs.Trace.record c.tr Obs.Event.Tlb_miss u 0;
    let victim = Policy.fast_evicted fx in
    if victim >= 0 then begin
      Obs.Trace.record c.tr Obs.Event.Eviction victim u;
      Decoupled.tlb_remove c.d victim
    end;
    Decoupled.tlb_add c.d u
  end

let[@inline] on_ram c page fy =
  if not (Policy.fast_is_hit fy) then begin
    Obs.Counter.incr c.c_ios;
    Obs.Trace.record c.tr Obs.Event.Io page 0;
    let victim = Policy.fast_evicted fy in
    if victim >= 0 then begin
      Decoupled.ram_evict c.d victim;
      note_psi_update c victim
    end;
    Decoupled.ram_insert c.d page;
    note_psi_update c page
  end

let[@inline] on_translate c page u =
  (* u is covered here: it was just added on an X miss, and X holds it
     on a hit — so the TLB-membership probe of [translate_code] is
     redundant and skipped. *)
  let code = Decoupled.translate_covered_code c.d page u in
  if code = Decoupled.fault_code then begin
    Obs.Counter.incr c.c_decoding_misses;
    Obs.Trace.record c.tr Obs.Event.Decode_miss page u
  end

let core_report c =
  let max_bucket_load = Alloc.max_bucket_load (Decoupled.alloc c.d) in
  Obs.Gauge.set_int c.g_max_bucket_load max_bucket_load;
  {
    Simulation.accesses = Obs.Counter.value c.c_accesses;
    ios = Obs.Counter.value c.c_ios;
    tlb_fills = Obs.Counter.value c.c_tlb_fills;
    decoding_misses = Obs.Counter.value c.c_decoding_misses;
    failures_total =
      Alloc.failures_total (Decoupled.alloc c.d) - !(c.failures_at_reset);
    max_bucket_load;
  }

let core_reset_report c =
  c.failures_at_reset := Alloc.failures_total (Decoupled.alloc c.d);
  Obs.Counter.reset c.c_accesses;
  Obs.Counter.reset c.c_ios;
  Obs.Counter.reset c.c_tlb_fills;
  Obs.Counter.reset c.c_decoding_misses;
  Obs.Counter.reset c.c_psi_updates

(* Boxed view for heterogeneous callers (the engine, benches): one
   closure record per simulation, never per access. *)
type fused = {
  access : int -> unit;
  access_array : int array -> int -> int -> unit;
  access_chunk : chunk -> int -> int -> unit;
  report : unit -> Simulation.report;
  reset_report : unit -> unit;
  decoupled : Decoupled.t;
}

module Make (X : Policy.Fast) (Y : Policy.Fast) = struct
  type t = { c : core; x : X.t; y : Y.t }

  let create ?seed ?obs ~params ~x ~y () =
    let c = make_core ?seed ?obs ~params ~y_capacity:(Y.capacity y) () in
    { c; x; y }

  let decoupled t = t.c.d

  let access t page =
    Obs.Counter.incr t.c.c_accesses;
    let u = Decoupled.huge_of t.c.d page in
    on_tlb t.c u (X.access_fast t.x u);
    on_ram t.c page (Y.access_fast t.y page);
    on_translate t.c page u

  let access_array t refs pos len =
    if pos < 0 || len < 0 || pos + len > Array.length refs then
      invalid_arg "Sim_fused.access_array";
    for i = pos to pos + len - 1 do
      access t (Array.unsafe_get refs i)
    done

  let access_chunk t (chunk : chunk) pos len =
    if pos < 0 || len < 0 || pos + len > Bigarray.Array1.dim chunk then
      invalid_arg "Sim_fused.access_chunk";
    for i = pos to pos + len - 1 do
      access t (Bigarray.Array1.unsafe_get chunk i)
    done

  let report t = core_report t.c

  let reset_report t = core_reset_report t.c

  let run ?warmup t trace =
    (match warmup with
     | Some w -> access_array t w 0 (Array.length w)
     | None -> ());
    reset_report t;
    access_array t trace 0 (Array.length trace);
    report t

  (* Constructor-time: one closure record per simulation. *)
  let[@atplint.allow "hot-path-alloc"] fused t =
    {
      access = (fun page -> access t page);
      access_array = (fun refs pos len -> access_array t refs pos len);
      access_chunk = (fun chunk pos len -> access_chunk t chunk pos len);
      report = (fun () -> report t);
      reset_report = (fun () -> reset_report t);
      decoupled = t.c.d;
    }
end

(* Generic fallback: any pair of policy instances, dispatched through
   their [access_fast] closures.  Slower than {!Make} (two indirect
   calls per access) but still outcome-boxing free. *)
(* Constructor-time: the closures are built once per simulation; their
   bodies reuse the allocation-free [on_tlb]/[on_ram]/[on_translate]
   steps. *)
let[@atplint.allow "hot-path-alloc"] of_instances ?seed ?obs ~params
    ~(x : Policy.instance) ~(y : Policy.instance) () =
  let c = make_core ?seed ?obs ~params ~y_capacity:y.Policy.capacity () in
  let xf = x.Policy.access_fast in
  let yf = y.Policy.access_fast in
  let access page =
    Obs.Counter.incr c.c_accesses;
    let u = Decoupled.huge_of c.d page in
    on_tlb c u (xf u);
    on_ram c page (yf page);
    on_translate c page u
  in
  let access_array refs pos len =
    if pos < 0 || len < 0 || pos + len > Array.length refs then
      invalid_arg "Sim_fused.access_array";
    for i = pos to pos + len - 1 do
      access (Array.unsafe_get refs i)
    done
  in
  let access_chunk (chunk : chunk) pos len =
    if pos < 0 || len < 0 || pos + len > Bigarray.Array1.dim chunk then
      invalid_arg "Sim_fused.access_chunk";
    for i = pos to pos + len - 1 do
      access (Bigarray.Array1.unsafe_get chunk i)
    done
  in
  {
    access;
    access_array;
    access_chunk;
    report = (fun () -> core_report c);
    reset_report = (fun () -> core_reset_report c);
    decoupled = c.d;
  }

let run_fused ?warmup (f : fused) trace =
  (match warmup with
   | Some w -> f.access_array w 0 (Array.length w)
   | None -> ());
  f.reset_report ();
  f.access_array trace 0 (Array.length trace);
  f.report ()

(* Specialize the [Make] inner loop for the natively-fast policy pairs
   the benchmarks and the engine care about; anything else falls back
   to [of_instances].  The string pair is (x_name, y_name). *)
module Lru_lru = Make (Lru) (Lru)
module Lru_fifo = Make (Lru) (Fifo)
module Fifo_lru = Make (Fifo) (Lru)
module Fifo_fifo = Make (Fifo) (Fifo)
module Lru_two_q = Make (Lru) (Two_q)
module Two_q_lru = Make (Two_q) (Lru)
module Two_q_two_q = Make (Two_q) (Two_q)

let specialized_pairs =
  [
    ("lru", "lru");
    ("lru", "fifo");
    ("fifo", "lru");
    ("fifo", "fifo");
    ("lru", "2q");
    ("2q", "lru");
    ("2q", "2q");
  ]

let[@atplint.allow "hot-path-alloc"] [@atplint.allow
                                       "hot-path-alloc-transitive"] specialized
    ?seed ?obs ~params ~x_name ~x_capacity ?x_rng ~y_name ~y_capacity ?y_rng ()
    =
  let lru c rng = Lru.create ?rng ~capacity:c () in
  let fifo c rng = Fifo.create ?rng ~capacity:c () in
  let two_q c rng = Two_q.create ?rng ~capacity:c () in
  match (x_name, y_name) with
  | "lru", "lru" ->
    Some
      (Lru_lru.fused
         (Lru_lru.create ?seed ?obs ~params ~x:(lru x_capacity x_rng)
            ~y:(lru y_capacity y_rng) ()))
  | "lru", "fifo" ->
    Some
      (Lru_fifo.fused
         (Lru_fifo.create ?seed ?obs ~params ~x:(lru x_capacity x_rng)
            ~y:(fifo y_capacity y_rng) ()))
  | "fifo", "lru" ->
    Some
      (Fifo_lru.fused
         (Fifo_lru.create ?seed ?obs ~params ~x:(fifo x_capacity x_rng)
            ~y:(lru y_capacity y_rng) ()))
  | "fifo", "fifo" ->
    Some
      (Fifo_fifo.fused
         (Fifo_fifo.create ?seed ?obs ~params ~x:(fifo x_capacity x_rng)
            ~y:(fifo y_capacity y_rng) ()))
  | "lru", "2q" ->
    Some
      (Lru_two_q.fused
         (Lru_two_q.create ?seed ?obs ~params ~x:(lru x_capacity x_rng)
            ~y:(two_q y_capacity y_rng) ()))
  | "2q", "lru" ->
    Some
      (Two_q_lru.fused
         (Two_q_lru.create ?seed ?obs ~params ~x:(two_q x_capacity x_rng)
            ~y:(lru y_capacity y_rng) ()))
  | "2q", "2q" ->
    Some
      (Two_q_two_q.fused
         (Two_q_two_q.create ?seed ?obs ~params ~x:(two_q x_capacity x_rng)
            ~y:(two_q y_capacity y_rng) ()))
  | _ -> None

(* Constructor fallback path: policy instantiation allocates, once. *)
let[@atplint.allow "hot-path-alloc-transitive"] for_names ?seed ?obs ~params
    ~x_name ~x_capacity ?x_rng ~y_name ~y_capacity ?y_rng () =
  match
    specialized ?seed ?obs ~params ~x_name ~x_capacity ?x_rng ~y_name
      ~y_capacity ?y_rng ()
  with
  | Some f -> f
  | None ->
    let x =
      Policy.instantiate_fast (Registry.find_fast_exn x_name) ?rng:x_rng
        ~capacity:x_capacity ()
    in
    let y =
      Policy.instantiate_fast (Registry.find_fast_exn y_name) ?rng:y_rng
        ~capacity:y_capacity ()
    in
    of_instances ?seed ?obs ~params ~x ~y ()
