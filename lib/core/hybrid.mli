(** The hybrid scheme sketched in Section 8: combine huge-page
    decoupling with {e moderately sized} physical huge pages.

    If the coverage one wants is [q = chunk · h_max] base pages per TLB
    entry but [w] only affords [h_max] decoded fields, let each field
    point at a physically contiguous {e chunk} of [chunk] base pages:
    the TLB entry then covers [q] pages while IO amplification drops
    from [q] (pure physical huge pages) to [chunk].

    Implementation: the decoupled machinery runs at chunk granularity —
    pages are grouped into chunks, the allocator places chunks into
    buckets, and each IO moves one chunk ([chunk] base-page IOs). *)

type report = {
  accesses : int;
  ios : int;  (** base-page IOs: [chunk] per chunk fault *)
  chunk_faults : int;
  tlb_fills : int;
  decoding_misses : int;
  coverage : int;  (** base pages covered per TLB entry: [chunk · h_max] *)
}

val cost : epsilon:float -> report -> float

type t

val create :
  ?seed:int ->
  ram_pages:int ->
  chunk:int ->
  w:int ->
  tlb_entries:int ->
  unit ->
  t
(** [chunk] must be a power of two.  X and Y are LRU internally: the
    TLB-replacement policy runs on coverage-sized super-pages, the
    RAM-replacement policy on chunks with the (1-δ) budget of the
    derived parameters.

    @raise Invalid_argument unless the chunk is a power of two spanning
    at least two frames. *)

val h_max : t -> int

val coverage : t -> int

val access : t -> int -> unit

val report : t -> report

val reset_report : t -> unit

val run : ?warmup:int array -> t -> int array -> report
