open Atp_paging
module Obs = Atp_obs

type report = {
  accesses : int;
  ios : int;
  tlb_fills : int;
  decoding_misses : int;
  failures_total : int;
  max_bucket_load : int;
}

let cost ~epsilon (r : report) =
  float_of_int r.ios
  +. (epsilon *. float_of_int (r.tlb_fills + r.decoding_misses))

let c_tlb ~epsilon (r : report) = epsilon *. float_of_int r.tlb_fills

let c_io (r : report) = float_of_int r.ios

type t = {
  d : Decoupled.t;
  x : Policy.instance;
  y : Policy.instance;
  failures_at_reset : int ref;
  tr : Obs.Trace.t;
  c_accesses : Obs.Counter.t;
  c_ios : Obs.Counter.t;
  c_tlb_fills : Obs.Counter.t;
  c_decoding_misses : Obs.Counter.t;
  c_psi_updates : Obs.Counter.t;
  g_max_bucket_load : Obs.Gauge.t;
}

let create ?seed ?obs ~params ~x ~y () =
  let budget = Params.usable_pages params in
  if y.Policy.capacity > budget then
    invalid_arg
      (Printf.sprintf
         "Simulation.create: Y capacity %d exceeds the (1-delta)P budget %d"
         y.Policy.capacity budget);
  let d = Decoupled.create ?seed params in
  let obs = match obs with Some o -> o | None -> Obs.Scope.null () in
  {
    d;
    x;
    y;
    failures_at_reset = ref 0;
    tr = Obs.Scope.tracer obs;
    c_accesses = Obs.Scope.counter obs "accesses";
    c_ios = Obs.Scope.counter obs "ios";
    c_tlb_fills = Obs.Scope.counter obs "tlb_fills";
    c_decoding_misses = Obs.Scope.counter obs "decoding_misses";
    c_psi_updates = Obs.Scope.counter obs "psi_updates";
    g_max_bucket_load = Obs.Scope.gauge obs "max_bucket_load";
  }

let decoupled t = t.d

(* A residency change rewrites the ψ field of the covering huge page;
   when that huge page is TLB-covered, the materialized entry must be
   refreshed too — the ψ-update cost the SMP model charges IPIs for. *)
let note_psi_update t page =
  let u = Decoupled.huge_of t.d page in
  if Decoupled.tlb_mem t.d u then begin
    Obs.Counter.incr t.c_psi_updates;
    Obs.Trace.record t.tr Obs.Event.Psi_update page u
  end

let access t page =
  Obs.Counter.incr t.c_accesses;
  let u = Decoupled.huge_of t.d page in
  (* TLB side: Z's TLB mirrors X's content on the stream r(σ). *)
  (match t.x.Policy.access u with
   | Policy.Hit -> Obs.Trace.record t.tr Obs.Event.Tlb_hit u 0
   | Policy.Miss { evicted } ->
     Obs.Counter.incr t.c_tlb_fills;
     Obs.Trace.record t.tr Obs.Event.Tlb_miss u 0;
     (match evicted with
      | Some victim ->
        Obs.Trace.record t.tr Obs.Event.Eviction victim u;
        Decoupled.tlb_remove t.d victim
      | None -> ());
     Decoupled.tlb_add t.d u);
  (* RAM side: Z's active set mirrors Y's. *)
  (match t.y.Policy.access page with
   | Policy.Hit -> ()
   | Policy.Miss { evicted } ->
     Obs.Counter.incr t.c_ios;
     Obs.Trace.record t.tr Obs.Event.Io page 0;
     (match evicted with
      | Some victim ->
        Decoupled.ram_evict t.d victim;
        note_psi_update t victim
      | None -> ());
     Decoupled.ram_insert t.d page;
     note_psi_update t page);
  (* Translate. The huge page is covered and the page is active, so
     the only non-frame answer is a decoding miss from a paging
     failure. *)
  match Decoupled.translate t.d page with
  | Decoupled.Frame _ -> ()
  | Decoupled.Decode_fault ->
    Obs.Counter.incr t.c_decoding_misses;
    Obs.Trace.record t.tr Obs.Event.Decode_miss page u
  | Decoupled.Not_covered ->
    (* We just added u on an X miss, and X holds u on a hit. *)
    assert false

let report t =
  let max_bucket_load = Alloc.max_bucket_load (Decoupled.alloc t.d) in
  Obs.Gauge.set_int t.g_max_bucket_load max_bucket_load;
  {
    accesses = Obs.Counter.value t.c_accesses;
    ios = Obs.Counter.value t.c_ios;
    tlb_fills = Obs.Counter.value t.c_tlb_fills;
    decoding_misses = Obs.Counter.value t.c_decoding_misses;
    failures_total =
      Alloc.failures_total (Decoupled.alloc t.d) - !(t.failures_at_reset);
    max_bucket_load;
  }

let reset_report t =
  t.failures_at_reset := Alloc.failures_total (Decoupled.alloc t.d);
  Obs.Counter.reset t.c_accesses;
  Obs.Counter.reset t.c_ios;
  Obs.Counter.reset t.c_tlb_fills;
  Obs.Counter.reset t.c_decoding_misses;
  Obs.Counter.reset t.c_psi_updates

let run ?warmup t trace =
  (match warmup with
   | Some w -> Array.iter (access t) w
   | None -> ());
  reset_report t;
  Array.iter (access t) trace;
  report t

let huge_trace ~h_max trace = Array.map (fun p -> p / h_max) trace

let pp_report ppf (r : report) =
  Format.fprintf ppf
    "accesses=%a ios=%a tlb-fills=%a decoding-misses=%a failures=%a \
     max-bucket-load=%d"
    Atp_util.Stats.pp_count r.accesses Atp_util.Stats.pp_count r.ios
    Atp_util.Stats.pp_count r.tlb_fills Atp_util.Stats.pp_count
    r.decoding_misses Atp_util.Stats.pp_count r.failures_total
    r.max_bucket_load
