(** A uniform face over every memory-management scheme in this
    repository, for apples-to-apples comparison.

    The paper's object of study is the {e memory-management
    algorithm}: anything that services page requests while controlling
    the TLB, the active set, and placement.  This module packages each
    implementation — physical huge pages at a fixed size, THP,
    reservation superpages, and the decoupled algorithm Z — behind one
    record, so drivers and benches can sweep over all of them without
    knowing their internals. *)

type t = {
  name : string;
  access : int -> unit;
  ios : unit -> int;  (** base-page IOs so far *)
  tlb_events : unit -> int;  (** TLB misses/fills so far (ε-priced) *)
  cheap_events : unit -> int;
      (** misses recovered from a cache-resident translation tier
          (tcache_ε-priced; 0 for schemes without reach extension) *)
  decode_misses : unit -> int;  (** ε-priced decoding misses (0 for
                                    schemes without an encoder) *)
  reset : unit -> unit;  (** zero the counters, keep the state *)
}

val cost : ?tcache_epsilon:float -> epsilon:float -> t -> float
(** [ios + ε·(tlb_events + decode_misses) + tcache_ε·cheap_events],
    read from the counters.  [tcache_epsilon] defaults to 0 (cheap
    events free), which only matters for reach-extended schemes. *)

val run : ?warmup:int array -> t -> int array -> t
(** Play warmup, reset counters, play the trace; returns the scheme
    for chaining. *)

val physical :
  ?tlb_entries:int -> ?seed:int -> ram_pages:int -> huge_size:int -> unit -> t
(** The Section 6 machine at a fixed huge-page size. *)

val physical_reach :
  ?tlb_entries:int ->
  ?seed:int ->
  ram_pages:int ->
  huge_size:int ->
  tcache_entries:int ->
  unit ->
  t
(** The Section 6 machine with Victima-style reach extension: a
    cache-resident victim store of [tcache_entries] behind the TLB.
    Recovered misses surface as [cheap_events]; [tlb_events] counts
    only full-priced misses, so {!cost} with a [tcache_epsilon] prices
    the two tiers separately.

    @raise Invalid_argument if [tcache_entries < 1]. *)

val thp :
  ?base_tlb_entries:int -> ?huge_tlb_entries:int -> ram_pages:int ->
  huge_size:int -> unit -> t

val superpage :
  ?base_tlb_entries:int -> ?huge_tlb_entries:int -> ram_pages:int ->
  huge_size:int -> unit -> t

val decoupled :
  ?tlb_entries:int ->
  ?seed:int ->
  ?x_policy:(module Atp_paging.Policy.S) ->
  ?y_policy:(module Atp_paging.Policy.S) ->
  ram_pages:int ->
  w:int ->
  unit ->
  t
(** The Theorem 4 algorithm Z with the given policies (LRU/LRU by
    default). *)

val hybrid :
  ?tlb_entries:int -> ram_pages:int -> chunk:int -> w:int -> unit -> t
(** The Section 8 hybrid scheme. *)

val compare_all :
  ?warmup:int array ->
  ?tcache_epsilon:float ->
  epsilon:float ->
  t list ->
  int array ->
  (string * int * int * float) list
(** Run every scheme on the same trace; returns
    [(name, ios, tlb_events + cheap_events, cost)] rows (the event
    column counts every TLB miss, however priced). *)
