(** The low-associativity RAM-allocation scheme of Section 4.

    RAM is partitioned into [buckets] buckets of [B] consecutive
    frames; a page's legal homes are determined by [k] hash functions
    of its virtual address, giving associativity [k·B].  Placement
    follows the configured rule:

    - one-choice (Theorem 1): the page goes to its single hashed
      bucket;
    - Iceberg[d] (Theorems 2–3): the front-yard bucket [h1(v)] if its
      front-yard load is below the cap τ, otherwise Greedy[d] on the
      back-yard loads of [h2(v) … h_{d+1}(v)].

    When every candidate bucket is physically full the insertion is a
    {e paging failure}: the page is parked in an arbitrary free frame
    (Theorem 4's temporary residence) and carries no encodable
    location, so accesses to it decode to ⊥ until it is evicted.

    The map φ from pages to frames is an injection and is {e stable}:
    a page's frame never changes while the page is resident. *)

type location =
  | Placed of { choice : int; slot : int; frame : int }
      (** [choice] identifies the hash function; [frame =
          bin·B + slot] where [bin] is that hash of the page. *)
  | Fallback of { frame : int }  (** a paging failure's parking spot *)

type t

val create : ?seed:int -> Params.t -> t

val params : t -> Params.t

val frames : t -> int
(** Total frames managed: [buckets × B] (at most [p]). *)

val live : t -> int

val free : t -> int

val insert_code : t -> int -> int
(** The allocation-free {!insert}: places the page and returns its
    packed code — [choice * B + slot] ([>= 0]) when placed,
    [-frame - 1] on a paging failure.  {!insert} is this function's
    boxed view.

    @raise Invalid_argument if the page is already resident.
    @raise Failure if RAM is completely full. *)

val insert : t -> int -> location
(** Raises [Invalid_argument] if the page is already resident, and
    [Failure] if RAM is completely full (the caller must respect
    [Params.usable_pages]).

    @raise Invalid_argument if the page is already resident.
    @raise Failure if RAM is completely full. *)

val delete : t -> int -> unit
(** Raises [Invalid_argument] if absent.

    @raise Invalid_argument if the page is not resident. *)

val missing_code : int
(** [min_int]: {!code_of}'s answer for a non-resident page. *)

val code_of : t -> int -> int
(** The resident page's packed code (as {!insert_code} returned it),
    or {!missing_code}.  Allocation-free. *)

val location_of : t -> int -> location option

val frame_of : t -> int -> int option

val mem : t -> int -> bool

val bin_of_choice : t -> page:int -> choice:int -> int
(** The bucket the [choice]-th hash assigns to [page]; the decoder uses
    this to reconstruct frames from (choice, slot) pairs. *)

val failures_now : t -> int
(** Pages currently parked in fallback frames (the set F). *)

val failures_total : t -> int
(** Paging failures since creation. *)

val max_bucket_load : t -> int
(** Highest physical occupancy over buckets, for the Theorem 1/3
    experiments. *)
