(** The umbrella namespace: one [open Atp] (or qualified [Atp.Core.…])
    reaches every library in the project.

    - {!Util}: PRNG, hashing, bit-packed arrays, samplers, statistics.
    - {!Obs}: the observability layer — metric registry, counters,
      histograms, ring-buffer event tracing, JSON export.
    - {!Paging}: replacement policies, OPT, simulation, miss-ratio
      curves, competitive analysis.
    - {!Ballsbins}: the dynamic balls-and-bins laboratory and the
      Iceberg hash table.
    - {!Tlb}: TLB models of every flavour.
    - {!Memsim}: page tables, walkers, nested translation, the
      Section 6 machine, THP, superpages, SMP, the VMM.
    - {!Core}: the paper's contribution — decoupling, the Simulation
      Theorem, the hybrid scheme, the unified scheme interface.
    - {!Workloads}: the paper's workloads, HPC kernels, combinators,
      trace IO. *)

module Util = Atp_util
module Obs = Atp_obs
module Paging = Atp_paging
module Ballsbins = Atp_ballsbins
module Tlb = Atp_tlb
module Memsim = Atp_memsim
module Core = Atp_core
module Workloads = Atp_workloads
