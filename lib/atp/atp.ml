(* Documented in atp.mli. *)

module Util = Atp_util
module Obs = Atp_obs
module Paging = Atp_paging
module Ballsbins = Atp_ballsbins
module Tlb = Atp_tlb
module Memsim = Atp_memsim
module Core = Atp_core
module Workloads = Atp_workloads
