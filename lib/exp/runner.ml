module Json = Atp_obs.Json
module Registry = Atp_obs.Registry

type config = {
  domains : int option;
  retries : int;
  retryable : exn -> bool;
  json_path : string option;
  checkpoint_path : string option;
  resume : bool;
  clock : (unit -> float) option;
}

let default_config =
  {
    domains = None;
    retries = 0;
    retryable = (fun _ -> true);
    json_path = None;
    checkpoint_path = None;
    resume = false;
    clock = None;
  }

(* The one deliberate wall-clock read in lib/: per-task durations are
   measurement {e metadata}, carried in the row's [wall_s] field, never
   an input to any simulated quantity.  Tests needing byte-stable
   streams inject a deterministic [clock] instead. *)
let wall_clock () = (Unix.gettimeofday [@atplint.allow "determinism"]) ()

let run_task ~clock ~retries ~retryable ~experiment (task : Spec.task) =
  let t0 = clock () in
  let rec go attempt =
    let reg = Registry.create () in
    match task.Spec.run reg with
    | data ->
      let wall_s = clock () -. t0 in
      Schema.ok_row ~experiment ~task:task.Spec.key ~attempts:attempt ~wall_s
        ~data ~obs:(Registry.snapshot reg)
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      if attempt <= retries && retryable e then go (attempt + 1)
      else begin
        let wall_s = clock () -. t0 in
        Schema.error_row ~experiment ~task:task.Spec.key ~attempts:attempt
          ~wall_s ~exn_text:(Printexc.to_string e)
          ~backtrace:(Printexc.raw_backtrace_to_string bt)
      end
  in
  go 1

let write_stream path ~meta outcomes =
  Checkpoint.ensure_parent_dir path;
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (Json.to_string meta);
  output_char oc '\n';
  List.iter
    (fun o ->
      output_string oc o.Outcome.row_text;
      output_char oc '\n')
    outcomes;
  close_out oc;
  (* Atomic publish: readers of BENCH files never see a torn stream. *)
  Sys.rename tmp path

let run ?(config = default_config) (spec : Spec.t) =
  let clock = Option.value config.clock ~default:wall_clock in
  let replayed =
    match config.checkpoint_path with
    | Some path when config.resume ->
      let table = Hashtbl.create 32 in
      (* Last write wins, matching append order on disk. *)
      List.iter
        (fun (key, line) -> Hashtbl.replace table key line)
        (Checkpoint.load path);
      table
    | Some _ | None -> Hashtbl.create 0
  in
  let checkpoint =
    Option.map
      (fun path -> Checkpoint.create ~append:config.resume path)
      config.checkpoint_path
  in
  let fresh (task : Spec.task) =
    let row =
      run_task ~clock ~retries:config.retries ~retryable:config.retryable
        ~experiment:spec.Spec.name task
    in
    let row_text = Json.to_string row in
    (* Only completed work checkpoints; failures must re-run on
       resume. *)
    (match (checkpoint, Schema.status_of_row row) with
     | Some ck, Some "ok" -> Checkpoint.append ck row_text
     | Some _, _ | None, _ -> ());
    Outcome.v ~key:task.Spec.key ~row ~row_text ~replayed:false
  in
  (* Audited: [replayed] is filled before the parallel map starts and
     only read inside it — each shard does lookups on a table no one
     writes concurrently.  (Checkpoint writes go through [fresh],
     which serialises them behind the checkpoint mutex.) *)
  let[@atplint.domain_safe] outcome_of_task (task : Spec.task) =
    match Hashtbl.find_opt replayed task.Spec.key with
    | Some line -> (
      match Json.of_string line with
      | Ok row ->
        Outcome.v ~key:task.Spec.key ~row ~row_text:line ~replayed:true
      | Error _ ->
        (* load already filtered malformed lines; unreachable, but a
           re-run is the safe meaning either way. *)
        fresh task)
    | None -> fresh task
  in
  let outcomes =
    Atp_util.Parallel.map ?domains:config.domains outcome_of_task
      spec.Spec.tasks
  in
  Option.iter Checkpoint.close checkpoint;
  Option.iter
    (fun path ->
      let meta =
        Schema.meta_line ~experiment:spec.Spec.name ~params:spec.Spec.params
          ~tasks:(List.length spec.Spec.tasks)
      in
      write_stream path ~meta outcomes)
    config.json_path;
  (* A fully-ok run has nothing left to resume; drop the checkpoint so
     the next invocation starts clean.  Any failure keeps it: --resume
     then retries exactly the failed tasks. *)
  (match config.checkpoint_path with
   | Some path when List.for_all Outcome.ok outcomes -> Checkpoint.remove path
   | Some _ | None -> ());
  outcomes
