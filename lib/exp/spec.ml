module Json = Atp_obs.Json

type task = { key : string; run : Atp_obs.Registry.t -> Json.t }

type t = {
  name : string;
  params : (string * Json.t) list;
  tasks : task list;
}

let valid_key k =
  String.length k > 0
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' | '/' | '=' ->
           true
         | _ -> false)
       k

let task ~key run =
  if not (valid_key key) then
    invalid_arg
      (Printf.sprintf
         "Exp.Spec.task: invalid key %S (want [A-Za-z0-9._/=-]+)" key);
  { key; run }

let v ?(params = []) ~name tasks =
  if not (valid_key name) then
    invalid_arg
      (Printf.sprintf
         "Exp.Spec.v: invalid experiment name %S (want [A-Za-z0-9._/=-]+)"
         name);
  let seen = Hashtbl.create (List.length tasks) in
  List.iter
    (fun t ->
      if Hashtbl.mem seen t.key then
        invalid_arg (Printf.sprintf "Exp.Spec.v: duplicate task key %S" t.key);
      Hashtbl.add seen t.key ())
    tasks;
  { name; params; tasks }
