(** Human-readable rendering of runner outcomes.

    Pretty tables project the same row [data] the JSON stream records
    (via {!Outcome} accessors), so the console report and
    [BENCH_<experiment>.json] cannot drift apart.  A failed task
    renders as a one-line [FAILED ...: exn] row in place of its cells,
    and a trailing [(k/n tasks failed: ...)] note lists the keys. *)

module Json = Atp_obs.Json

type column

val col_int : ?width:int -> ?field:string -> string -> column
(** [col_int header] renders the int member [field] (default:
    [header]) of each row's data; ["-"] when absent or not an int. *)

val col_float : ?width:int -> ?decimals:int -> ?field:string -> string -> column

val col_string : ?width:int -> ?field:string -> string -> column

val print_table :
  ?out:out_channel ->
  ?key_header:string ->
  columns:column list ->
  Outcome.t list ->
  unit

val shape_line : (string * int * int) list -> string
(** The figure sweeps' one-line trend summary over [(key, ios,
    tlb_misses)] rows, first row vs last.  Total on the empty and
    singleton sweeps quick-mode RAM filtering can produce (the
    pre-runner harness raised [Failure "hd"] there). *)
