module Json = Atp_obs.Json

type column = { header : string; width : int; render : Json.t -> string }

let cell_of ~render ~none json field =
  match Json.member field json with
  | Some v -> ( match render v with Some s -> s | None -> none)
  | None -> none

let col_int ?(width = 14) ?field header =
  let field = Option.value field ~default:header in
  {
    header;
    width;
    render =
      (fun data ->
        cell_of data field ~none:"-"
          ~render:(fun v -> Option.map string_of_int (Json.as_int v)));
  }

let col_float ?(width = 14) ?(decimals = 1) ?field header =
  let field = Option.value field ~default:header in
  {
    header;
    width;
    render =
      (fun data ->
        cell_of data field ~none:"-"
          ~render:(fun v ->
            Option.map
              (fun f -> Printf.sprintf "%.*f" decimals f)
              (Json.as_float v)));
  }

let col_string ?(width = 14) ?field header =
  let field = Option.value field ~default:header in
  {
    header;
    width;
    render = (fun data -> cell_of data field ~none:"-" ~render:Json.as_string);
  }

let print_table ?(out = stdout) ?(key_header = "task") ~columns outcomes =
  let key_width =
    List.fold_left
      (fun acc (o : Outcome.t) -> max acc (String.length o.Outcome.key))
      (String.length key_header)
      outcomes
  in
  Printf.fprintf out "%-*s" key_width key_header;
  List.iter (fun c -> Printf.fprintf out " %*s" c.width c.header) columns;
  output_char out '\n';
  List.iter
    (fun (o : Outcome.t) ->
      match Outcome.data o with
      | Some data ->
        Printf.fprintf out "%-*s" key_width o.Outcome.key;
        List.iter
          (fun c -> Printf.fprintf out " %*s" c.width (c.render data))
          columns;
        output_char out '\n'
      | None ->
        let exn_text =
          match Outcome.error o with
          | Some (e, _) -> e
          | None -> "unknown failure"
        in
        Printf.fprintf out "%-*s FAILED after %d attempt%s: %s\n" key_width
          o.Outcome.key (Outcome.attempts o)
          (if Outcome.attempts o = 1 then "" else "s")
          exn_text)
    outcomes;
  let failed = List.filter (fun o -> not (Outcome.ok o)) outcomes in
  if failed <> [] then
    Printf.fprintf out "(%d/%d tasks failed: %s)\n" (List.length failed)
      (List.length outcomes)
      (String.concat ", " (List.map (fun o -> o.Outcome.key) failed));
  flush out

let ratio num den = float_of_int num /. float_of_int (max 1 den)

let shape_line rows =
  match rows with
  | [] -> "shape: no rows (every huge-page size was filtered out)"
  | [ (key, ios, tlb) ] ->
    (* A singleton sweep has no first-to-last trend to report. *)
    Printf.sprintf "shape: single row %s: IOs %d, TLB misses %d, TLB/IO = %.1f"
      key ios tlb (ratio tlb ios)
  | (first_key, first_ios, first_tlb) :: _ ->
    let last_key, last_ios, last_tlb =
      List.fold_left (fun _ row -> row) (List.hd rows) (List.tl rows)
    in
    Printf.sprintf
      "shape: IOs x%.0f from %s to %s; TLB misses x%.4f; at %s TLB/IO = %.1f"
      (ratio last_ios first_ios) first_key last_key
      (ratio last_tlb first_tlb) first_key (ratio first_tlb first_ios)
