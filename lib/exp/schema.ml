module Json = Atp_obs.Json

let version = "atp.bench/1"

let meta_line ~experiment ~params ~tasks =
  Json.Obj
    [
      ("schema", Json.String version);
      ("kind", Json.String "meta");
      ("experiment", Json.String experiment);
      ("params", Json.Obj params);
      ("tasks", Json.Int tasks);
    ]

let row_prefix ~experiment ~task =
  [
    ("schema", Json.String version);
    ("kind", Json.String "row");
    ("experiment", Json.String experiment);
    ("task", Json.String task);
  ]

let ok_row ~experiment ~task ~attempts ~wall_s ~data ~obs =
  Json.Obj
    (row_prefix ~experiment ~task
    @ [
        ("status", Json.String "ok");
        ("attempts", Json.Int attempts);
        ("wall_s", Json.Float wall_s);
        ("data", data);
        ("obs", obs);
      ])

let error_row ~experiment ~task ~attempts ~wall_s ~exn_text ~backtrace =
  Json.Obj
    (row_prefix ~experiment ~task
    @ [
        ("status", Json.String "error");
        ("attempts", Json.Int attempts);
        ("wall_s", Json.Float wall_s);
        ( "error",
          Json.Obj
            [
              ("exn", Json.String exn_text);
              ("backtrace", Json.String backtrace);
            ] );
      ])

let str_field key json = Option.bind (Json.member key json) Json.as_string

let is_row json =
  (match str_field "schema" json with
   | Some v -> String.equal v version
   | None -> false)
  &&
  match str_field "kind" json with
  | Some k -> String.equal k "row"
  | None -> false

let task_of_row json = if is_row json then str_field "task" json else None

let status_of_row json = str_field "status" json

let data_of_row json = Json.member "data" json

let error_of_row json =
  match Json.member "error" json with
  | Some err -> (
    match (str_field "exn" err, str_field "backtrace" err) with
    | Some exn_text, Some backtrace -> Some (exn_text, backtrace)
    | _ -> None)
  | None -> None

(* --- validation --------------------------------------------------- *)

let check cond msg = if cond then Ok () else Error msg

let ( let* ) r f = Result.bind r f

let validate_row ~experiment json =
  let* () = check (is_row json) "not a row of schema atp.bench/1" in
  let* () =
    check
      (match str_field "experiment" json with
       | Some e -> String.equal e experiment
       | None -> false)
      "row experiment does not match the meta line"
  in
  let* task =
    Option.to_result ~none:"row is missing a task key" (str_field "task" json)
  in
  let* () =
    check
      (match Option.bind (Json.member "attempts" json) Json.as_int with
       | Some a -> a >= 1
       | None -> false)
      "row needs an integer attempts >= 1"
  in
  let* () =
    check
      (match Option.bind (Json.member "wall_s" json) Json.as_float with
       | Some w -> w >= 0.0
       | None -> false)
      "row needs a non-negative wall_s"
  in
  let* () =
    match status_of_row json with
    | Some "ok" ->
      check
        (Option.is_some (data_of_row json)
        && Option.is_some (Json.member "obs" json))
        "ok row needs data and obs fields"
    | Some "error" ->
      check (Option.is_some (error_of_row json))
        "error row needs an error object with exn and backtrace"
    | Some _ | None -> Error "row status must be \"ok\" or \"error\""
  in
  Ok task

let validate_meta json =
  let* () =
    check
      (match str_field "schema" json with
       | Some v -> String.equal v version
       | None -> false)
      (Printf.sprintf "first line must declare schema %S" version)
  in
  let* () =
    check
      (match str_field "kind" json with
       | Some k -> String.equal k "meta"
       | None -> false)
      "first line must be the meta line (kind=meta)"
  in
  let* experiment =
    Option.to_result ~none:"meta line is missing the experiment name"
      (str_field "experiment" json)
  in
  let* () =
    check
      (match Json.member "params" json with
       | Some (Json.Obj _) -> true
       | _ -> false)
      "meta line needs a params object"
  in
  let* tasks =
    Option.to_result ~none:"meta line needs an integer tasks count"
      (Option.bind (Json.member "tasks" json) Json.as_int)
  in
  Ok (experiment, tasks)

let validate_lines lines =
  match lines with
  | [] -> Error "empty stream: expected a meta line"
  | meta_text :: rows ->
    let* meta =
      Result.map_error (fun e -> "meta line: " ^ e) (Json.of_string meta_text)
    in
    let* experiment, tasks = validate_meta meta in
    let seen = Hashtbl.create 16 in
    let rec go i = function
      | [] -> Ok ()
      | line :: rest ->
        let at msg = Error (Printf.sprintf "row %d: %s" i msg) in
        let* json =
          match Json.of_string line with
          | Ok j -> Ok j
          | Error e -> at e
        in
        let* task =
          match validate_row ~experiment json with
          | Ok t -> Ok t
          | Error e -> at e
        in
        let* () =
          if Hashtbl.mem seen task then
            at (Printf.sprintf "duplicate task key %S" task)
          else Ok ()
        in
        Hashtbl.add seen task ();
        go (i + 1) rest
    in
    let* () = go 1 rows in
    let nrows = List.length rows in
    let* () =
      check (nrows = tasks)
        (Printf.sprintf "meta declares %d tasks but the stream has %d rows"
           tasks nrows)
    in
    Ok nrows

let validate_file path =
  match In_channel.with_open_text path In_channel.input_lines with
  | lines -> validate_lines (List.filter (fun l -> String.length l > 0) lines)
  | exception Sys_error e -> Error e
