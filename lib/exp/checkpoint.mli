(** Task-completion checkpoints: the durability layer under
    {!Runner}.

    A checkpoint file is a [BENCH] row stream without the meta line —
    one schema row (see {!Schema}) per {e completed} task, appended
    and flushed the moment the task finishes, in completion order
    (which under domain parallelism is not spec order).  Because rows
    are stored as the exact bytes later emitted into
    [BENCH_<experiment>.json], a resumed run reproduces the
    uninterrupted run's output byte for byte.

    Failed tasks are never checkpointed: resume means "skip what is
    done, retry everything else", including failures. *)

val load : string -> (string * string) list
(** [load path] is [(task_key, raw_row_line)] for every well-formed
    row in the file, in file order; [[]] when the file does not exist.
    Malformed lines — e.g. the torn last line of a killed run — are
    skipped, so their tasks re-run. *)

type t
(** An open checkpoint being appended to.  [append] is serialized by
    an internal mutex, so worker domains can call it directly. *)

val ensure_parent_dir : string -> unit
(** Create [path]'s parent directories as needed (shared with
    {!Runner}'s stream writer). *)

val create : append:bool -> string -> t
(** Open [path] for appending ([append:true], resuming) or truncated
    ([append:false], a fresh run).  Parent directories are created.
    @raise Sys_error if the file cannot be opened. *)

val append : t -> string -> unit
(** Append one row line and flush: the row is on disk before the task
    counts as finished. *)

val close : t -> unit

val remove : string -> unit
(** Delete a checkpoint (after a fully successful run). *)
