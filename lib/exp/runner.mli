(** The fault-tolerant experiment runner.

    [run spec] executes every task of [spec] over OCaml 5 domains
    (sequentially on 4.x) with {e per-task} outcomes: one raising task
    becomes an error row — exception text plus the backtrace captured
    in the raising domain — while every sibling still completes and
    reports.  Transient failures retry up to [retries] extra attempts.
    Each task gets a private obs registry and a wall-clock duration,
    both recorded in its schema row (see {!Schema}).

    With [checkpoint_path], every completed (ok) task is appended to
    the checkpoint and flushed before the run moves on, so a killed
    sweep loses at most in-flight tasks; re-running with
    [resume = true] replays checkpointed rows verbatim and executes
    only the rest.  With [json_path], the full row stream
    (meta line + one row per task, in spec order) is written
    atomically at the end — a resumed run's stream is byte-identical
    to an uninterrupted one, because replayed rows are re-emitted as
    the exact bytes the first run persisted.

    After a run in which {e every} task is ok, the checkpoint file is
    deleted; if any task failed it is kept, so a further [resume]
    retries exactly the failures. *)

type config = {
  domains : int option;
      (** worker domains; [None] = recommended count *)
  retries : int;  (** extra attempts after the first, per task *)
  retryable : exn -> bool;
      (** which exceptions are transient (default: all) *)
  json_path : string option;
      (** write the [BENCH] row stream here, atomically *)
  checkpoint_path : string option;  (** durability; see {!Checkpoint} *)
  resume : bool;
      (** skip tasks already in the checkpoint (otherwise the
          checkpoint is truncated and the run starts clean) *)
  clock : (unit -> float) option;
      (** seconds; [None] = wall clock.  Injectable so tests can make
          [wall_s] — and therefore whole streams — deterministic. *)
}

val default_config : config
(** No parallelism cap, no retries, everything retryable, no JSON, no
    checkpoint, wall clock. *)

val wall_clock : unit -> float
(** Seconds since the epoch: the one sanctioned wall-clock read for
    measurement {e metadata} (durations reported next to results,
    never an input to any simulated quantity).  Benchmark and CLI
    timing must go through here rather than reading
    [Unix.gettimeofday] directly, so the determinism lint keeps a
    single audited exception. *)

val run : ?config:config -> Spec.t -> Outcome.t list
(** Outcomes in spec order, one per task.  Does not raise on task
    failure — failures are data ({!Outcome.error}).
    @raise Sys_error if the checkpoint or JSON path cannot be
    created. *)
