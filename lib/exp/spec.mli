(** Declarative experiment specifications.

    An experiment is a named set of independent tasks — one per
    simulator configuration in a sweep, say — plus the parameters the
    whole sweep shares.  Each task receives a {e private}
    {!Atp_obs.Registry.t}: tasks run concurrently on separate domains,
    so sharing one registry would race metric registration, and a
    per-task registry makes the task's obs snapshot attributable.  The
    returned JSON object is the task's measurement row ([data] in the
    emitted schema; see docs in EXPERIMENTS.md). *)

module Json = Atp_obs.Json

type task = private { key : string; run : Atp_obs.Registry.t -> Json.t }

type t = private {
  name : string;
  params : (string * Json.t) list;
  tasks : task list;
}

val task : key:string -> (Atp_obs.Registry.t -> Json.t) -> task
(** @raise Invalid_argument if [key] is empty or contains characters
    outside [[A-Za-z0-9._/=-]] — keys name checkpoint rows and must
    stay greppable and newline-free. *)

val v : ?params:(string * Json.t) list -> name:string -> task list -> t
(** @raise Invalid_argument on an invalid experiment name (same
    alphabet as task keys: it becomes the [BENCH_<name>.json] file
    name) or on duplicate task keys — resume matches checkpointed rows
    to tasks by key, so keys must be unique. *)
