(** One task's result, as seen by the caller of {!Runner.run}.

    Whether the task ran in this process or was replayed from a
    checkpoint, the single source of truth is [row] — the schema row
    (see {!Schema}) that is (or was) emitted into the JSON stream —
    and [row_text], its exact serialized bytes.  The accessors below
    project out of the row, so pretty-printers render precisely what
    the machine-readable stream records. *)

module Json = Atp_obs.Json

type t = private {
  key : string;  (** the task key *)
  row : Json.t;  (** the full schema row *)
  row_text : string;  (** [row]'s exact bytes in the stream *)
  replayed : bool;  (** loaded from a checkpoint, not run here *)
}

val v : key:string -> row:Json.t -> row_text:string -> replayed:bool -> t
(** Used by {!Runner}; not meant for callers. *)

val ok : t -> bool

val data : t -> Json.t option
(** The task's measurement object, when [ok]. *)

val error : t -> (string * string) option
(** [(exn, backtrace)] when the task failed. *)

val attempts : t -> int

val wall_s : t -> float

val obs : t -> Json.t option
(** The task's private obs-registry snapshot, when [ok]. *)

val field : string -> t -> Json.t option
(** [field k t] is [data]'s member [k]. *)

val int_field : string -> t -> int option

val float_field : string -> t -> float option
