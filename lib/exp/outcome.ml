module Json = Atp_obs.Json

type t = { key : string; row : Json.t; row_text : string; replayed : bool }

let v ~key ~row ~row_text ~replayed = { key; row; row_text; replayed }

let ok t =
  match Schema.status_of_row t.row with
  | Some s -> String.equal s "ok"
  | None -> false

let data t = if ok t then Schema.data_of_row t.row else None

let error t = Schema.error_of_row t.row

let attempts t =
  match Option.bind (Json.member "attempts" t.row) Json.as_int with
  | Some a -> a
  | None -> 0

let wall_s t =
  match Option.bind (Json.member "wall_s" t.row) Json.as_float with
  | Some w -> w
  | None -> 0.0

let obs t = Json.member "obs" t.row

let field key t = Option.bind (data t) (Json.member key)

let int_field key t = Option.bind (field key t) Json.as_int

let float_field key t = Option.bind (field key t) Json.as_float
