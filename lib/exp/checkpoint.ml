module Json = Atp_obs.Json

let load path =
  match In_channel.with_open_text path In_channel.input_lines with
  | exception Sys_error _ -> []
  | lines ->
    (* A killed run can leave a torn final line; a malformed line is
       simply not a completed task and its task re-runs on resume. *)
    List.filter_map
      (fun line ->
        if String.length line = 0 then None
        else
          match Json.of_string line with
          | Error _ -> None
          | Ok json -> (
            match Schema.task_of_row json with
            | Some task -> Some (task, line)
            | None -> None))
      lines

type t = { oc : out_channel; lock : Mutex.t }

let ensure_parent_dir path =
  let dir = Filename.dirname path in
  let rec mk d =
    if not (Sys.file_exists d) then begin
      mk (Filename.dirname d);
      (* A concurrent creator is fine; re-check instead of failing. *)
      try Sys.mkdir d 0o755 with Sys_error _ when Sys.file_exists d -> ()
    end
  in
  mk dir

let create ~append path =
  ensure_parent_dir path;
  let flags =
    (if append then [ Open_append ] else [ Open_trunc ])
    @ [ Open_wronly; Open_creat ]
  in
  { oc = open_out_gen flags 0o644 path; lock = Mutex.create () }

let append t line =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      output_string t.oc line;
      output_char t.oc '\n';
      (* Durability is the point: the row must be on disk before the
         task counts as finished, or a kill window would lose it. *)
      flush t.oc)

let close t = close_out t.oc

let remove path = if Sys.file_exists path then Sys.remove path
