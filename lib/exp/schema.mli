(** The [BENCH_<experiment>.json] row-stream schema, version
    [atp.bench/1]: construction (used by {!Runner}) and validation
    (used by [tools/bench_validate] and CI).

    A stream is newline-delimited JSON.  Line 1 is the meta line:

    {v
    {"schema":"atp.bench/1","kind":"meta","experiment":NAME,
     "params":{...},"tasks":N}
    v}

    followed by exactly [N] rows, one per task, in spec order:

    {v
    {"schema":"atp.bench/1","kind":"row","experiment":NAME,"task":KEY,
     "status":"ok","attempts":A,"wall_s":S,"data":{...},"obs":{...}}
    {"schema":"atp.bench/1","kind":"row","experiment":NAME,"task":KEY,
     "status":"error","attempts":A,"wall_s":S,
     "error":{"exn":TEXT,"backtrace":TEXT}}
    v}

    [data] is the task's own measurement object, [obs] the snapshot of
    its private metric registry.  The full field-by-field contract is
    documented in EXPERIMENTS.md. *)

module Json = Atp_obs.Json

val version : string
(** ["atp.bench/1"]. *)

val meta_line :
  experiment:string -> params:(string * Json.t) list -> tasks:int -> Json.t

val ok_row :
  experiment:string ->
  task:string ->
  attempts:int ->
  wall_s:float ->
  data:Json.t ->
  obs:Json.t ->
  Json.t

val error_row :
  experiment:string ->
  task:string ->
  attempts:int ->
  wall_s:float ->
  exn_text:string ->
  backtrace:string ->
  Json.t

val is_row : Json.t -> bool
(** Does the value declare itself a row of this schema version? *)

val task_of_row : Json.t -> string option
(** The row's task key, when {!is_row}. *)

val status_of_row : Json.t -> string option

val data_of_row : Json.t -> Json.t option

val error_of_row : Json.t -> (string * string) option
(** [(exn, backtrace)] of an error row. *)

val validate_lines : string list -> (int, string) result
(** Validate a whole stream (meta line first, blank lines already
    dropped); [Ok n] is the number of rows.  Checks schema/kind
    discipline, per-row field shapes, task-key uniqueness, and that
    the row count matches the meta line's [tasks]. *)

val validate_file : string -> (int, string) result
(** {!validate_lines} on a file's non-empty lines; I/O errors are
    returned as [Error]. *)
