(** The replacement-policy abstraction.

    In the paper's terms, a policy is a RAM-replacement policy or a
    TLB-replacement policy: it decides which (huge) pages are resident
    in a capacity-bounded cache.  Policies here manage abstract page
    ids; physical placement is the job of the allocation schemes in
    [atp.core], which the paper requires the policies to be oblivious
    to. *)

type outcome =
  | Hit
  | Miss of { evicted : int option }
      (** [evicted = None] when a free slot absorbed the fill. *)

(** {2 The allocation-free outcome encoding}

    Hot loops cannot afford an [outcome] block (plus an option) per
    access.  Page ids are non-negative throughout the simulator, so an
    access result fits in one untagged int: {!fast_hit} ([-1]),
    {!fast_miss_free} ([-2], a free slot absorbed the fill), or the
    evicted page itself ([>= 0]). *)

val fast_hit : int

val fast_miss_free : int

val fast_is_hit : int -> bool

val fast_is_miss : int -> bool

val fast_evicted : int -> int
(** The evicted page, or [-1] on a hit or free fill. *)

val outcome_of_fast : int -> outcome
(** @raise Invalid_argument on an int below [-2]. *)

val fast_of_outcome : outcome -> int

(** What every policy implementation provides. *)
module type S = sig
  type t

  val name : string

  val create : ?rng:Atp_util.Prng.t -> capacity:int -> unit -> t
  (** [rng] is used only by randomized policies; deterministic policies
      ignore it.  [capacity] must be at least 1. *)

  val capacity : t -> int

  val size : t -> int
  (** Number of resident pages; always [<= capacity]. *)

  val mem : t -> int -> bool

  val access : t -> int -> outcome
  (** Service a request for a page: a hit updates recency metadata; a
      miss inserts the page, evicting a victim if the cache is full. *)

  val remove : t -> int -> bool
  (** Invalidate a page without an access (e.g. a shootdown).  Returns
      whether it was resident. *)

  val resident : t -> int list
  (** Unordered list of resident pages. *)
end

(** A policy that additionally exposes the allocation-free access
    primitive.  [access_fast] must be behaviorally identical to
    [access] (same state evolution, outcomes related by
    {!fast_of_outcome}); the differential suite checks this for every
    registered policy. *)
module type Fast = sig
  include S

  val access_fast : t -> int -> int
  (** {!fast_hit}, {!fast_miss_free}, or the evicted page. *)
end

(** Derive the fast interface from any policy by encoding the boxed
    outcome — the generic fallback for policies without a native
    allocation-free path. *)
module Fast_of (P : S) : Fast with type t = P.t

(** A policy instance with its state captured, for heterogeneous
    collections (the experiment driver sweeps over policies). *)
type instance = {
  name : string;
  capacity : int;
  size : unit -> int;
  mem : int -> bool;
  access : int -> outcome;
  access_fast : int -> int;
      (** Same state evolution as [access], encoded per
          {!fast_of_outcome}. *)
  remove : int -> bool;
  resident : unit -> int list;
}

val instantiate :
  (module S) -> ?rng:Atp_util.Prng.t -> capacity:int -> unit -> instance
(** [access_fast] goes through {!Fast_of}, i.e. it still allocates
    internally; use {!instantiate_fast} with a native {!Fast} policy
    for the allocation-free path. *)

val instantiate_fast :
  (module Fast) -> ?rng:Atp_util.Prng.t -> capacity:int -> unit -> instance

val evicted : outcome -> int option
(** [None] on a hit or free fill. *)

val is_hit : outcome -> bool
