(** Single-pass LRU miss-ratio curves via Mattson stack distances.

    LRU has the inclusion property, so one pass over a trace yields the
    miss count for {e every} cache size at once: the reuse (stack)
    distance of each access — the number of distinct pages referenced
    since the previous access to the same page — is a hit in a cache of
    capacity [c] iff it is smaller than [c].  Distances are computed
    with a Fenwick tree over access timestamps in O(log n) per access.

    Experiments use this to pick RAM sizes (e.g. "just below the
    footprint", Figure 1c) and to draw miss curves without re-running
    the simulator per capacity. *)

type t

val create : unit -> t

val access : t -> int -> unit

val of_trace : int array -> t

val accesses : t -> int

val cold_misses : t -> int
(** First-ever accesses (infinite stack distance). *)

val distinct_pages : t -> int

val misses : t -> int -> int
(** [misses t c]: LRU misses on the processed trace with capacity [c].
    Requires [c >= 1].

    @raise Invalid_argument if [c < 1]. *)

val curve : t -> capacities:int list -> (int * int) list
(** [(c, misses c)] rows. *)

val working_set_size : t -> fraction:float -> int
(** Smallest capacity whose hit ratio over non-cold accesses reaches
    [fraction] (e.g. 0.999): a principled "footprint" notion.  Raises
    [Invalid_argument] if [fraction] is outside (0, 1].

    @raise Invalid_argument if [fraction] is outside [0, 1]. *)
