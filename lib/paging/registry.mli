(** Name-indexed access to every online policy, for CLI drivers and
    parameter sweeps. *)

val all : (module Policy.S) list
(** Every online policy in this library. *)

val names : string list

val find : string -> (module Policy.S) option

val find_exn : string -> (module Policy.S)
(** Raises [Invalid_argument] with the list of known names.

    @raise Invalid_argument on an unknown policy name. *)
