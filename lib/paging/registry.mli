(** Name-indexed access to every online policy, for CLI drivers and
    parameter sweeps. *)

val all : (module Policy.S) list
(** Every online policy in this library. *)

val names : string list

val find : string -> (module Policy.S) option

val find_exn : string -> (module Policy.S)
(** Raises [Invalid_argument] with the list of known names.

    @raise Invalid_argument on an unknown policy name. *)

val native_fast_names : string list
(** Policies whose [access_fast] is hand-written (allocation-free)
    rather than derived through {!Policy.Fast_of}. *)

val find_fast : string -> (module Policy.Fast) option
(** Every registered policy, viewed through {!Policy.Fast}: native for
    {!native_fast_names}, the boxed-outcome encoding wrapper for the
    rest. *)

val find_fast_exn : string -> (module Policy.Fast)
(** @raise Invalid_argument on an unknown policy name. *)
