(** Least-recently-used replacement (Sleator–Tarjan's canonical online
    policy).  O(1) per access. *)

include Policy.Fast
(** [access_fast] is native (allocation-free); [access] is its boxed
    view. *)
