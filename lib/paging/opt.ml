open Atp_util

(* [next.(i)] is the position of the next request for [trace.(i)] after
   [i], or [never] if there is none.  The victim search uses a lazy
   max-heap of (next_use, page): an entry is current iff the residency
   table still maps the page to that next-use time. *)

let never = max_int

type t = {
  capacity : int;
  trace : int array;
  next : int array;
  resident : Int_table.t;                  (* page -> its next use time *)
  heap : (int * int) Heap.t;               (* (next_use, page), max-first *)
  mutable step : int;
}

let compute_next trace =
  let n = Array.length trace in
  let next = Array.make n never in
  let last_seen = Int_table.create () in
  for i = n - 1 downto 0 do
    (match Int_table.find last_seen trace.(i) with
     | Some j -> next.(i) <- j
     | None -> next.(i) <- never);
    Int_table.set last_seen trace.(i) i
  done;
  next

let create ~capacity trace =
  if capacity < 1 then invalid_arg "Opt.create: capacity must be at least 1";
  {
    capacity;
    trace;
    next = compute_next trace;
    resident = Int_table.create ();
    heap = Heap.create ~cmp:(fun (a, _) (b, _) -> compare b a) ();
    step = 0;
  }

let capacity t = t.capacity

let size t = Int_table.length t.resident

let mem t page = Int_table.mem t.resident page

let rec pop_victim t =
  match Heap.pop t.heap with
  | None -> assert false
  | Some (next_use, page) ->
    (match Int_table.find t.resident page with
     | Some current when current = next_use -> page
     | _ -> pop_victim t)

let access t page =
  if t.step >= Array.length t.trace then
    invalid_arg "Opt.access: trace exhausted";
  if t.trace.(t.step) <> page then
    invalid_arg "Opt.access: request deviates from the trace";
  let next_use = t.next.(t.step) in
  t.step <- t.step + 1;
  match Int_table.find t.resident page with
  | Some _ ->
    Int_table.set t.resident page next_use;
    Heap.push t.heap (next_use, page);
    Policy.Hit
  | None ->
    let evicted =
      if size t = t.capacity then begin
        let victim = pop_victim t in
        ignore (Int_table.remove t.resident victim);
        Some victim
      end
      else None
    in
    Int_table.set t.resident page next_use;
    Heap.push t.heap (next_use, page);
    Policy.Miss { evicted }

let remove t page = Int_table.remove t.resident page

let resident t = Int_table.keys t.resident

let misses ~capacity trace =
  let t = create ~capacity trace in
  let count = ref 0 in
  Array.iter
    (fun page ->
      match access t page with
      | Policy.Hit -> ()
      | Policy.Miss _ -> incr count)
    trace;
  !count

let instance ~capacity trace =
  let t = create ~capacity trace in
  {
    Policy.name = "opt";
    capacity;
    size = (fun () -> size t);
    mem = (fun page -> mem t page);
    access = (fun page -> access t page);
    access_fast = (fun page -> Policy.fast_of_outcome (access t page));
    remove = (fun page -> remove t page);
    resident = (fun () -> resident t);
  }
