(** Observability wrappers for replacement policies.

    Two forms, for the two ways policies are consumed:

    - {!Make} lifts a policy module to one whose instances also bump
      obs counters, preserving the {!Policy.S} signature so wrapped
      modules drop into {!Registry}-style sweeps unchanged;
    - {!wrap} decorates an already-instantiated {!Policy.instance} —
      the form the simulators use, since they work with instances.

    Both register [accesses]/[hits]/[misses]/[evictions] counters under
    the given scope and emit an [eviction] trace event per victim. *)

module Make (_ : Policy.S) : sig
  include Policy.S

  val create_observed :
    ?rng:Atp_util.Prng.t ->
    ?obs:Atp_obs.Scope.t ->
    capacity:int ->
    unit ->
    t
  (** Like [create], with an explicit scope.  Plain [create] observes
      into a private throwaway registry. *)
end

val wrap : obs:Atp_obs.Scope.t -> Policy.instance -> Policy.instance
(** The wrapped instance shares all state with the original (same
    [name]/[capacity]); only [access] is decorated. *)
