type outcome =
  | Hit
  | Miss of { evicted : int option }

(* The allocation-free outcome encoding for hot loops: page ids are
   non-negative throughout the simulator, so the two non-eviction
   cases fit below zero and an eviction is the victim page itself. *)

let fast_hit = -1

let fast_miss_free = -2

let[@inline] fast_is_hit f = f = fast_hit

let[@inline] fast_is_miss f = f <> fast_hit

let[@inline] fast_evicted f = if f >= 0 then f else -1

let outcome_of_fast f =
  if f = fast_hit then Hit
  else if f = fast_miss_free then Miss { evicted = None }
  else if f >= 0 then Miss { evicted = Some f }
  else invalid_arg "Policy.outcome_of_fast: bad encoding"

let fast_of_outcome = function
  | Hit -> fast_hit
  | Miss { evicted = None } -> fast_miss_free
  | Miss { evicted = Some victim } -> victim

module type S = sig
  type t

  val name : string
  val create : ?rng:Atp_util.Prng.t -> capacity:int -> unit -> t
  val capacity : t -> int
  val size : t -> int
  val mem : t -> int -> bool
  val access : t -> int -> outcome
  val remove : t -> int -> bool
  val resident : t -> int list
end

module type Fast = sig
  include S

  val access_fast : t -> int -> int
end

module Fast_of (P : S) : Fast with type t = P.t = struct
  include P

  let access_fast t page = fast_of_outcome (P.access t page)
end

type instance = {
  name : string;
  capacity : int;
  size : unit -> int;
  mem : int -> bool;
  access : int -> outcome;
  access_fast : int -> int;
  remove : int -> bool;
  resident : unit -> int list;
}

let instantiate_fast (module P : Fast) ?rng ~capacity () =
  let state = P.create ?rng ~capacity () in
  {
    name = P.name;
    capacity;
    size = (fun () -> P.size state);
    mem = (fun page -> P.mem state page);
    access = (fun page -> P.access state page);
    access_fast = (fun page -> P.access_fast state page);
    remove = (fun page -> P.remove state page);
    resident = (fun () -> P.resident state);
  }

let instantiate (module P : S) = instantiate_fast (module Fast_of (P) : Fast)

let evicted = function
  | Hit -> None
  | Miss { evicted } -> evicted

let is_hit = function
  | Hit -> true
  | Miss _ -> false
