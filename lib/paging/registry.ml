let all : (module Policy.S) list =
  [
    (module Lru);
    (module Fifo);
    (module Clock);
    (module Lfu);
    (module Mru);
    (module Rand_policy);
    (module Two_q);
    (module Arc);
    (module Slru);
    (module Lirs);
  ]

let name_of (module P : Policy.S) = P.name

let names = List.map name_of all

let find name =
  List.find_opt (fun p -> String.equal (name_of p) name) all

let find_exn name =
  match find name with
  | Some p -> p
  | None ->
    invalid_arg
      (Printf.sprintf "unknown policy %S (known: %s)" name
         (String.concat ", " names))

(* Policies with a hand-written allocation-free access path; everything
   else goes through the Policy.Fast_of encoding wrapper, so every
   policy has a Fast view and the fused simulator can host any of
   them — only these three get the specialized inner loop. *)
let all_fast : (module Policy.Fast) list =
  [ (module Lru); (module Fifo); (module Two_q) ]

let native_fast_names =
  List.map (fun (module P : Policy.Fast) -> P.name) all_fast

let find_fast name =
  match
    List.find_opt (fun (module P : Policy.Fast) -> String.equal P.name name)
      all_fast
  with
  | Some p -> Some p
  | None ->
    Option.map
      (fun (module P : Policy.S) -> (module Policy.Fast_of (P) : Policy.Fast))
      (find name)

let find_fast_exn name =
  match find_fast name with
  | Some p -> p
  | None ->
    invalid_arg
      (Printf.sprintf "unknown policy %S (known: %s)" name
         (String.concat ", " names))
