open Atp_util

type t = { slots : Slots.t; order : Lru_list.t }

let name = "fifo"

let create ?rng ~capacity () =
  ignore rng;
  { slots = Slots.create capacity; order = Lru_list.create capacity }

let capacity t = Slots.capacity t.slots

let size t = Slots.size t.slots

let mem t page = Slots.find_slot t.slots page >= 0

(* The allocation-free primitive; [access] is its boxed view, so the
   two paths share one state evolution by construction. *)
let access_fast t page =
  if Slots.find_slot t.slots page >= 0 then Policy.fast_hit
  else begin
    let evicted =
      if Slots.is_full t.slots then begin
        let victim_slot = Lru_list.take_back t.order in
        if victim_slot < 0 then assert false;
        Slots.release t.slots victim_slot
      end
      else Policy.fast_miss_free
    in
    let slot = Slots.alloc t.slots page in
    Lru_list.push_front t.order slot;
    evicted
  end

let access t page = Policy.outcome_of_fast (access_fast t page)

let remove t page =
  match Slots.slot_of_page t.slots page with
  | None -> false
  | Some slot ->
    Lru_list.remove t.order slot;
    ignore (Slots.release t.slots slot);
    true

let resident t = Slots.resident t.slots
