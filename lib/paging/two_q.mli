(** The 2Q policy (Johnson & Shasha, VLDB 1994), full version: a FIFO
    probation queue [A1in], a ghost queue [A1out] of recently evicted
    addresses, and a protected LRU main queue [Am].  A page is promoted
    to [Am] only when re-referenced after falling out of [A1in], which
    filters single-scan pollution. *)

include Policy.Fast
(** [access_fast] is native (allocation-free); [access] is its boxed
    view. *)
