(** Internal slot bookkeeping shared by the list-based policies.

    A cache of capacity [c] owns slots [0..c-1]; this module tracks the
    page occupying each slot and the inverse page-to-slot index, leaving
    the eviction discipline (the interesting part) to each policy. *)

type t

val create : int -> t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : t -> int

val size : t -> int

val is_full : t -> bool

val slot_of_page : t -> int -> int option

val find_slot : t -> int -> int
(** [slot_of_page] without the option: the slot holding the page, or
    [-1] when absent — the allocation-free lookup for hot paths. *)

val page_of_slot : t -> int -> int
(** Raises [Invalid_argument] if the slot is free.

    @raise Invalid_argument on a free slot. *)

val alloc : t -> int -> int
(** [alloc t page] places [page] in a free slot and returns it.  Raises
    [Invalid_argument] if full or if the page is already resident.

    @raise Invalid_argument if the page is already resident or the cache
    is full. *)

val release : t -> int -> int
(** [release t slot] frees the slot and returns the page it held. *)

val resident : t -> int list
