open Atp_util

type t = {
  capacity : int;
  kin : int;        (* target size of a1in *)
  kout : int;       (* capacity of the ghost queue *)
  a1in : Page_list.t;   (* FIFO, resident *)
  a1out : Page_list.t;  (* FIFO of ghosts (addresses only) *)
  am : Page_list.t;     (* LRU, resident *)
}

let name = "2q"

let create ?rng ~capacity () =
  ignore rng;
  if capacity < 1 then invalid_arg "Two_q.create: capacity must be at least 1";
  (* The parameters recommended in the paper: Kin = 25%, Kout = 50%. *)
  let kin = max 1 (capacity / 4) in
  let kout = max 1 (capacity / 2) in
  {
    capacity;
    kin;
    kout;
    a1in = Page_list.create ();
    a1out = Page_list.create ();
    am = Page_list.create ();
  }

let capacity t = t.capacity

let size t = Page_list.length t.a1in + Page_list.length t.am

let mem t page = Page_list.mem t.a1in page || Page_list.mem t.am page

(* Free one resident slot, returning the evicted page. *)
let reclaim t =
  if Page_list.length t.a1in > t.kin || Page_list.is_empty t.am then begin
    let victim = Page_list.take_back t.a1in in
    (* a1in empty and am empty cannot happen when the cache is full. *)
    if victim < 0 then assert false;
    if Page_list.length t.a1out >= t.kout then
      ignore (Page_list.take_back t.a1out : int);
    Page_list.push_front t.a1out victim;
    victim
  end
  else begin
    let victim = Page_list.take_back t.am in
    if victim < 0 then assert false;
    victim
  end

(* The allocation-free primitive; [access] is its boxed view, so the
   two paths share one state evolution by construction. *)
let access_fast t page =
  if Page_list.mem t.am page then begin
    Page_list.move_to_front t.am page;
    Policy.fast_hit
  end
  else if Page_list.mem t.a1in page then
    (* Still in probation: a hit, but no promotion. *)
    Policy.fast_hit
  else begin
    let evicted =
      if size t >= t.capacity then reclaim t else Policy.fast_miss_free
    in
    if Page_list.mem t.a1out page then begin
      (* Re-reference after probation: promote into the main queue. *)
      ignore (Page_list.remove t.a1out page);
      Page_list.push_front t.am page
    end
    else Page_list.push_front t.a1in page;
    evicted
  end

let access t page = Policy.outcome_of_fast (access_fast t page)

let remove t page =
  Page_list.remove t.a1in page || Page_list.remove t.am page

let resident t = Page_list.to_list t.a1in @ Page_list.to_list t.am
