module Obs = Atp_obs

type metrics = {
  tr : Obs.Trace.t;
  c_accesses : Obs.Counter.t;
  c_hits : Obs.Counter.t;
  c_misses : Obs.Counter.t;
  c_evictions : Obs.Counter.t;
}

let metrics_of obs =
  {
    tr = Obs.Scope.tracer obs;
    c_accesses = Obs.Scope.counter obs "accesses";
    c_hits = Obs.Scope.counter obs "hits";
    c_misses = Obs.Scope.counter obs "misses";
    c_evictions = Obs.Scope.counter obs "evictions";
  }

let record m page outcome =
  Obs.Counter.incr m.c_accesses;
  match outcome with
  | Policy.Hit -> Obs.Counter.incr m.c_hits
  | Policy.Miss { evicted } ->
    Obs.Counter.incr m.c_misses;
    (match evicted with
     | None -> ()
     | Some victim ->
       Obs.Counter.incr m.c_evictions;
       Obs.Trace.record m.tr Obs.Event.Eviction victim page)

module Make (P : Policy.S) = struct
  type t = { inner : P.t; m : metrics }

  let name = P.name

  let create_observed ?rng ?obs ~capacity () =
    let obs = match obs with Some o -> o | None -> Obs.Scope.null () in
    { inner = P.create ?rng ~capacity (); m = metrics_of obs }

  let create ?rng ~capacity () = create_observed ?rng ~capacity ()

  let capacity t = P.capacity t.inner

  let size t = P.size t.inner

  let mem t page = P.mem t.inner page

  let access t page =
    let outcome = P.access t.inner page in
    record t.m page outcome;
    outcome

  let remove t page = P.remove t.inner page

  let resident t = P.resident t.inner
end

let record_fast m page f =
  Obs.Counter.incr m.c_accesses;
  if Policy.fast_is_hit f then Obs.Counter.incr m.c_hits
  else begin
    Obs.Counter.incr m.c_misses;
    let victim = Policy.fast_evicted f in
    if victim >= 0 then begin
      Obs.Counter.incr m.c_evictions;
      Obs.Trace.record m.tr Obs.Event.Eviction victim page
    end
  end

let wrap ~obs (inst : Policy.instance) =
  let m = metrics_of obs in
  {
    inst with
    Policy.access =
      (fun page ->
        let outcome = inst.Policy.access page in
        record m page outcome;
        outcome);
    Policy.access_fast =
      (fun page ->
        let f = inst.Policy.access_fast page in
        record_fast m page f;
        f);
  }
