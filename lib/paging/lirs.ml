open Atp_util

(* Page states:
   - Lir: resident, in the stack S.
   - Hir_resident: resident, in the queue Q, possibly also in S.
   - Hir_ghost: non-resident, in S only (a history record).
   Pages absent from the table are unknown.

   S is a recency stack (front = most recent); Q is the FIFO of
   resident HIR pages, whose front is the eviction victim.  [ghosts]
   tracks ghost insertion order so the stack can be bounded. *)

type state =
  | Lir
  | Hir_resident
  | Hir_ghost

type t = {
  capacity : int;
  lir_target : int;  (* max LIR pages: capacity - hir window *)
  s : Page_list.t;
  q : Page_list.t;
  ghosts : Page_list.t;  (* non-resident HIR, oldest at back *)
  state : state Int_table.Poly.t;
  mutable lir_count : int;
}

let name = "lirs"

let create ?rng ~capacity () =
  ignore rng;
  if capacity < 1 then invalid_arg "Lirs.create: capacity must be at least 1";
  let hir_window = max 1 (capacity / 100) in
  {
    capacity;
    lir_target = max 1 (capacity - hir_window);
    s = Page_list.create ();
    q = Page_list.create ();
    ghosts = Page_list.create ();
    state = Int_table.Poly.create ~initial_capacity:64 ();
    lir_count = 0;
  }

let capacity t = t.capacity

let state_of t page = Int_table.Poly.find t.state page

let is_resident = function
  | Some Lir | Some Hir_resident -> true
  | Some Hir_ghost | None -> false

let mem t page = is_resident (state_of t page)

let size t = t.lir_count + Page_list.length t.q

(* Remove non-LIR entries from the bottom of S so its bottom is always
   a LIR page. *)
let prune t =
  let rec go () =
    match Page_list.back t.s with
    | None -> ()
    | Some bottom ->
      (match state_of t bottom with
       | Some Lir -> ()
       | Some Hir_resident ->
         ignore (Page_list.remove t.s bottom);
         go ()
       | Some Hir_ghost ->
         ignore (Page_list.remove t.s bottom);
         ignore (Page_list.remove t.ghosts bottom);
         ignore (Int_table.Poly.remove t.state bottom);
         go ()
       | None ->
         (* Everything in S has a state. *)
         assert false)
  in
  go ()

(* Bound the stack: discard the oldest ghosts beyond ~2x capacity. *)
let bound_stack t =
  while Page_list.length t.s > 2 * t.capacity && not (Page_list.is_empty t.ghosts) do
    match Page_list.pop_back t.ghosts with
    | None -> ()
    | Some ghost ->
      ignore (Page_list.remove t.s ghost);
      ignore (Int_table.Poly.remove t.state ghost)
  done

let push_top t page =
  ignore (Page_list.remove t.s page);
  Page_list.push_front t.s page;
  bound_stack t

(* Demote the LIR page at the bottom of S into the resident-HIR
   queue. *)
let demote_bottom_lir t =
  prune t;
  match Page_list.back t.s with
  | Some bottom when state_of t bottom = Some Lir ->
    ignore (Page_list.remove t.s bottom);
    Int_table.Poly.set t.state bottom Hir_resident;
    t.lir_count <- t.lir_count - 1;
    Page_list.push_front t.q bottom;
    prune t
  | _ -> assert false

(* Free one resident slot; returns the evicted page. *)
let evict t =
  match Page_list.pop_back t.q with
  | Some victim ->
    if Page_list.mem t.s victim then begin
      Int_table.Poly.set t.state victim Hir_ghost;
      Page_list.push_front t.ghosts victim
    end
    else ignore (Int_table.Poly.remove t.state victim);
    victim
  | None ->
    (* No resident HIR (start-up, all-LIR cache): demote then evict. *)
    demote_bottom_lir t;
    (match Page_list.pop_back t.q with
     | Some victim ->
       if Page_list.mem t.s victim then begin
         Int_table.Poly.set t.state victim Hir_ghost;
         Page_list.push_front t.ghosts victim
       end
       else ignore (Int_table.Poly.remove t.state victim);
       victim
     | None -> assert false)

let access t page =
  match state_of t page with
  | Some Lir ->
    let was_bottom = Page_list.back t.s = Some page in
    push_top t page;
    if was_bottom then prune t;
    Policy.Hit
  | Some Hir_resident ->
    if Page_list.mem t.s page then begin
      (* Reuse distance is inside the stack: promote to LIR. *)
      Int_table.Poly.set t.state page Lir;
      t.lir_count <- t.lir_count + 1;
      ignore (Page_list.remove t.q page);
      push_top t page;
      if t.lir_count > t.lir_target then demote_bottom_lir t
    end
    else begin
      (* Long reuse distance: stay HIR, refresh both recencies. *)
      push_top t page;
      ignore (Page_list.remove t.q page);
      Page_list.push_front t.q page
    end;
    Policy.Hit
  | Some Hir_ghost | None ->
    let ghost_hit = state_of t page = Some Hir_ghost in
    let evicted = if size t >= t.capacity then Some (evict t) else None in
    if ghost_hit then begin
      (* The page proved a short reuse distance: it enters as LIR. *)
      ignore (Page_list.remove t.ghosts page);
      Int_table.Poly.set t.state page Lir;
      t.lir_count <- t.lir_count + 1;
      push_top t page;
      if t.lir_count > t.lir_target then demote_bottom_lir t
    end
    else if t.lir_count < t.lir_target then begin
      (* Warm-up: fill the LIR set directly. *)
      Int_table.Poly.set t.state page Lir;
      t.lir_count <- t.lir_count + 1;
      push_top t page
    end
    else begin
      Int_table.Poly.set t.state page Hir_resident;
      push_top t page;
      Page_list.push_front t.q page
    end;
    Policy.Miss { evicted }

let remove t page =
  match state_of t page with
  | Some Lir ->
    ignore (Page_list.remove t.s page);
    ignore (Int_table.Poly.remove t.state page);
    t.lir_count <- t.lir_count - 1;
    prune t;
    true
  | Some Hir_resident ->
    ignore (Page_list.remove t.q page);
    ignore (Page_list.remove t.s page);
    ignore (Int_table.Poly.remove t.state page);
    true
  | Some Hir_ghost | None -> false

let resident t =
  Int_table.Poly.fold
    (fun page state acc ->
      match state with
      | Lir | Hir_resident -> page :: acc
      | Hir_ghost -> acc)
    t.state []
