(** Belady's OPT: the offline optimal replacement policy.

    OPT evicts the resident page whose next use is farthest in the
    future, which minimizes misses for a fixed cache size.  It needs
    the whole request sequence up front, so unlike the online policies
    it is created from a trace; accesses must then follow that trace in
    order.  The Simulation Theorem (Theorem 4) explicitly allows
    offline algorithms as the IO-optimising input [Y], and this module
    is how the benchmarks instantiate that. *)

type t

val create : capacity:int -> int array -> t
(** [create ~capacity trace] precomputes next-use times in O(n).

    @raise Invalid_argument if [capacity < 1]. *)

val capacity : t -> int

val size : t -> int

val mem : t -> int -> bool

val access : t -> int -> Policy.outcome
(** The [i]th call must request [trace.(i)]; raises [Invalid_argument]
    otherwise, and when the trace is exhausted.

    @raise Invalid_argument if the request deviates from, or runs past,
    the pre-recorded trace. *)

val remove : t -> int -> bool

val resident : t -> int list

val misses : capacity:int -> int array -> int
(** Total misses incurred by OPT on the trace. *)

val instance : capacity:int -> int array -> Policy.instance
(** Package as a {!Policy.instance} (for the decoupling combinator). *)
