open Atp_util

type t = {
  capacity : int;
  pages : int array;       (* slot -> page; -1 when free *)
  index : Int_table.t;     (* page -> slot *)
  free : int array;        (* stack of free slots *)
  mutable free_top : int;
}

let no_page = -1

let create capacity =
  if capacity < 1 then invalid_arg "Slots.create: capacity must be at least 1";
  {
    capacity;
    pages = Array.make capacity no_page;
    index = Int_table.create ~initial_capacity:(2 * capacity) ();
    free = Array.init capacity (fun i -> capacity - 1 - i);
    free_top = capacity;
  }

let capacity t = t.capacity

let size t = Int_table.length t.index

let is_full t = t.free_top = 0

let slot_of_page t page = Int_table.find t.index page

let[@inline] find_slot t page = Int_table.find_or t.index page (-1)

let page_of_slot t slot =
  let page = t.pages.(slot) in
  if page = no_page then invalid_arg "Slots.page_of_slot: free slot";
  page

let alloc t page =
  if t.free_top = 0 then invalid_arg "Slots.alloc: cache full";
  if Int_table.mem t.index page then invalid_arg "Slots.alloc: page already resident";
  t.free_top <- t.free_top - 1;
  let slot = t.free.(t.free_top) in
  t.pages.(slot) <- page;
  Int_table.set t.index page slot;
  slot

let release t slot =
  let page = page_of_slot t slot in
  t.pages.(slot) <- no_page;
  ignore (Int_table.remove t.index page);
  t.free.(t.free_top) <- slot;
  t.free_top <- t.free_top + 1;
  page

let resident t = Int_table.keys t.index
