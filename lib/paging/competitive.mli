(** Empirical competitive analysis, Sleator–Tarjan style.

    The classical results the paper builds on: LRU (and FIFO) are
    k-competitive against OPT, and with resource augmentation LRU with
    [k] pages incurs at most [k/(k-h+1)] times the misses of OPT with
    [h <= k] pages.  This module measures those ratios on concrete
    traces, generates the adversarial request sequences that realize
    the lower bounds, and checks the augmented inequality — the same
    augmented-competitiveness style of guarantee Theorem 4 gives for
    the combined problem. *)

val ratio_vs_opt :
  (module Policy.S) ->
  ?rng:Atp_util.Prng.t ->
  capacity:int ->
  ?opt_capacity:int ->
  int array ->
  float
(** Misses of the policy at [capacity] divided by OPT's misses at
    [opt_capacity] (default: same capacity).  [infinity] when OPT
    never misses beyond zero... OPT always has compulsory misses on a
    non-empty trace, so the ratio is finite for non-empty traces. *)

val lru_adversary : capacity:int -> length:int -> int array
(** The cyclic sequence over [capacity + 1] pages on which LRU faults
    every request while OPT faults roughly once per [capacity]
    requests — the tight k-competitiveness instance.

    @raise Invalid_argument if [capacity < 1]. *)

val sleator_tarjan_bound : k:int -> h:int -> float
(** [k / (k - h + 1)]: the augmented competitive ratio of LRU with [k]
    pages against OPT with [h] pages.  Requires [1 <= h <= k].

    @raise Invalid_argument unless [1 <= h <= k]. *)

val check_sleator_tarjan :
  ?rng:Atp_util.Prng.t -> k:int -> h:int -> int array -> bool
(** Does LRU(k) satisfy the augmented bound against OPT(h) on this
    trace?  (It must, for every trace — the theorem is worst-case; the
    check exists for the test suite and for exploring how loose the
    bound is in practice.)  Compulsory misses are included on both
    sides, which only slackens the inequality. *)

val augmentation_curve :
  (module Policy.S) ->
  ?rng:Atp_util.Prng.t ->
  k:int ->
  hs:int list ->
  int array ->
  (int * float * float) list
(** For each [h]: [(h, measured ratio vs OPT(h), Sleator–Tarjan
    bound)].

    @raise Invalid_argument unless [1 <= h <= k]. *)
