(** First-in-first-out replacement: eviction order is insertion order;
    hits do not refresh a page. *)

include Policy.Fast
(** [access_fast] is native (allocation-free); [access] is its boxed
    view. *)
