type kind =
  | Tlb_hit
  | Tlb_miss
  | Io
  | Decode_miss
  | Eviction
  | Psi_update
  | Page_fault
  | Custom of string

type t = { seq : int; kind : kind; subject : int; detail : int }

let kind_to_string = function
  | Tlb_hit -> "tlb_hit"
  | Tlb_miss -> "tlb_miss"
  | Io -> "io"
  | Decode_miss -> "decode_miss"
  | Eviction -> "eviction"
  | Psi_update -> "psi_update"
  | Page_fault -> "page_fault"
  | Custom s -> s

let to_json t =
  Json.Obj
    [
      ("seq", Json.Int t.seq);
      ("kind", Json.String (kind_to_string t.kind));
      ("subject", Json.Int t.subject);
      ("detail", Json.Int t.detail);
    ]
