type t = {
  counters : (string, Counter.t) Hashtbl.t;
  gauges : (string, Gauge.t) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
  mutable trace : Trace.t;
}

let create ?(trace = Trace.disabled) () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    histograms = Hashtbl.create 8;
    trace;
  }

let intern table make name =
  match Hashtbl.find_opt table name with
  | Some m -> m
  | None ->
    let m = make name in
    Hashtbl.add table name m;
    m

let counter t name = intern t.counters Counter.create name

let gauge t name = intern t.gauges Gauge.create name

let histogram t name = intern t.histograms Histogram.create name

let trace t = t.trace

let set_trace t tr = t.trace <- tr

let sorted_bindings table =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t =
  List.map (fun (name, c) -> (name, Counter.value c)) (sorted_bindings t.counters)

let find_counter t name = Hashtbl.find_opt t.counters name

let reset t =
  Hashtbl.iter (fun _ c -> Counter.reset c) t.counters;
  Hashtbl.iter (fun _ g -> Gauge.reset g) t.gauges;
  Hashtbl.iter (fun _ h -> Histogram.reset h) t.histograms

let snapshot t =
  let obj_of table to_json =
    Json.Obj (List.map (fun (name, m) -> (name, to_json m)) (sorted_bindings table))
  in
  Json.Obj
    [
      ("counters", obj_of t.counters Counter.to_json);
      ("gauges", obj_of t.gauges Gauge.to_json);
      ("histograms", obj_of t.histograms Histogram.to_json);
      ( "trace",
        Json.Obj
          [
            ("enabled", Json.Bool (Trace.enabled t.trace));
            ("emitted", Json.Int (Trace.emitted t.trace));
            ("dropped", Json.Int (Trace.dropped t.trace));
          ] );
    ]

let snapshot_string t = Json.to_string (snapshot t)

let write_metrics path t =
  let oc = open_out path in
  output_string oc (snapshot_string t);
  output_char oc '\n';
  close_out oc

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (name, v) ->
      Format.fprintf ppf "%s = %a@," name Atp_util.Stats.pp_count v)
    (counters t);
  List.iter
    (fun (name, g) -> Format.fprintf ppf "%s = %g@," name (Gauge.value g))
    (sorted_bindings t.gauges);
  List.iter
    (fun (name, h) ->
      Format.fprintf ppf "%s = %a@," name Atp_util.Stats.Summary.pp
        (Histogram.summary h))
    (sorted_bindings t.histograms);
  Format.fprintf ppf "@]"
