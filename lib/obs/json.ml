type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then begin
      let s = Printf.sprintf "%.12g" f in
      Buffer.add_string buf s;
      (* Bare "1e+06"/"42" are valid JSON numbers; nothing to fix. *)
      if not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s) then
        Buffer.add_string buf ".0"
    end
    else Buffer.add_string buf "null"
  | String s -> escape buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let to_channel oc v = output_string oc (to_string v)

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> Bool.equal x y
  | Int x, Int y -> Int.equal x y
  | Float x, Float y -> Float.equal x y
  | String x, String y -> String.equal x y
  | List xs, List ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
         xs ys
  | (Null | Bool _ | Int _ | Float _ | String _ | List _ | Obj _), _ -> false

(* --- parsing ------------------------------------------------------ *)

(* A recursive-descent parser for the subset this serializer emits
   (which is all of JSON minus exotic number forms).  Errors are
   returned, not raised: checkpoint loading must survive the torn
   trailing line a killed run leaves behind. *)

exception Parse_fail of string

let parse_fail pos msg =
  raise (Parse_fail (Printf.sprintf "at offset %d: %s" pos msg))

type parser_state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      true
    | _ -> false
  do
    ()
  done

let expect st c =
  match peek st with
  | Some got when got = c -> advance st
  | Some got -> parse_fail st.pos (Printf.sprintf "expected %C, got %C" c got)
  | None -> parse_fail st.pos (Printf.sprintf "expected %C, got end of input" c)

let expect_keyword st kw value =
  let n = String.length kw in
  if
    st.pos + n <= String.length st.src
    && String.equal (String.sub st.src st.pos n) kw
  then begin
    st.pos <- st.pos + n;
    value
  end
  else parse_fail st.pos (Printf.sprintf "expected %s" kw)

let parse_hex4 st =
  if st.pos + 4 > String.length st.src then
    parse_fail st.pos "truncated \\u escape";
  let v = ref 0 in
  for i = st.pos to st.pos + 3 do
    let d =
      match st.src.[i] with
      | '0' .. '9' as c -> Char.code c - Char.code '0'
      | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
      | c -> parse_fail i (Printf.sprintf "bad hex digit %C" c)
    in
    v := (!v * 16) + d
  done;
  st.pos <- st.pos + 4;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> parse_fail st.pos "unterminated string"
    | Some '"' ->
      advance st;
      Buffer.contents buf
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some '"' ->
        Buffer.add_char buf '"';
        advance st;
        loop ()
      | Some '\\' ->
        Buffer.add_char buf '\\';
        advance st;
        loop ()
      | Some '/' ->
        Buffer.add_char buf '/';
        advance st;
        loop ()
      | Some 'n' ->
        Buffer.add_char buf '\n';
        advance st;
        loop ()
      | Some 'r' ->
        Buffer.add_char buf '\r';
        advance st;
        loop ()
      | Some 't' ->
        Buffer.add_char buf '\t';
        advance st;
        loop ()
      | Some 'b' ->
        Buffer.add_char buf '\b';
        advance st;
        loop ()
      | Some 'f' ->
        Buffer.add_char buf '\012';
        advance st;
        loop ()
      | Some 'u' ->
        advance st;
        let code = parse_hex4 st in
        (match Uchar.of_int code with
         | u -> Buffer.add_utf_8_uchar buf u
         | exception Invalid_argument _ ->
           parse_fail st.pos "unpaired surrogate in \\u escape");
        loop ()
      | Some c -> parse_fail st.pos (Printf.sprintf "bad escape \\%C" c)
      | None -> parse_fail st.pos "truncated escape")
    | Some c when Char.code c < 0x20 ->
      parse_fail st.pos "raw control character in string"
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      loop ()
  in
  loop ()

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let consume () =
    match peek st with
    | Some ('0' .. '9' | '-' | '+') ->
      advance st;
      true
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance st;
      true
    | _ -> false
  in
  while consume () do
    ()
  done;
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> parse_fail start (Printf.sprintf "bad number %S" text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      (* An integer literal too wide for [int]: keep the value, as a
         float. *)
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> parse_fail start (Printf.sprintf "bad number %S" text))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> parse_fail st.pos "expected a value, got end of input"
  | Some 'n' -> expect_keyword st "null" Null
  | Some 't' -> expect_keyword st "true" (Bool true)
  | Some 'f' -> expect_keyword st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let items = ref [ parse_value st ] in
      skip_ws st;
      while peek st = Some ',' do
        advance st;
        items := parse_value st :: !items;
        skip_ws st
      done;
      expect st ']';
      List (List.rev !items)
    end
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let field () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        (k, v)
      in
      let fields = ref [ field () ] in
      skip_ws st;
      while peek st = Some ',' do
        advance st;
        fields := field () :: !fields;
        skip_ws st
      done;
      expect st '}';
      Obj (List.rev !fields)
    end
  | Some c -> parse_fail st.pos (Printf.sprintf "unexpected %C" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then
      Error
        (Printf.sprintf "at offset %d: trailing content after value" st.pos)
    else Ok v
  | exception Parse_fail msg -> Error msg

(* --- accessors ---------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

let as_int = function
  | Int i -> Some i
  | Null | Bool _ | Float _ | String _ | List _ | Obj _ -> None

let as_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | Null | Bool _ | String _ | List _ | Obj _ -> None

let as_string = function
  | String s -> Some s
  | Null | Bool _ | Int _ | Float _ | List _ | Obj _ -> None

let as_list = function
  | List items -> Some items
  | Null | Bool _ | Int _ | Float _ | String _ | Obj _ -> None

let as_obj = function
  | Obj fields -> Some fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

