(** A power-of-two histogram over non-negative integers, paired with a
    streaming summary (mean/stddev/min/max).  Reuses
    {!Atp_util.Stats.Log_histogram} and {!Atp_util.Stats.Summary}, so
    [observe] costs two array/field updates. *)

type t

val create : string -> t

val name : t -> string

val observe : t -> int -> unit
(** Raises [Invalid_argument] on negative values (log buckets). *)

val count : t -> int

val mean : t -> float
(** 0 when empty. *)

val percentile : t -> float -> int
(** Bucket-ceiling upper bound on the quantile; 0 when empty. *)

val summary : t -> Atp_util.Stats.Summary.t

val reset : t -> unit

val to_json : t -> Json.t
(** [{"count":…,"mean":…,"min":…,"max":…,"p50":…,"p99":…}]; min/max
    are [null] when empty. *)
