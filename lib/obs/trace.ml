type t = {
  capacity : int;
  ring : Event.t array;
  mutable emitted : int;
}

let dummy_event =
  { Event.seq = 0; kind = Event.Custom "unset"; subject = 0; detail = 0 }

let disabled = { capacity = 0; ring = [||]; emitted = 0 }

let create ~capacity =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; ring = Array.make capacity dummy_event; emitted = 0 }

let enabled t = t.capacity > 0

let write t kind subject detail =
  let seq = t.emitted in
  t.ring.(seq mod t.capacity) <- { Event.seq; kind; subject; detail };
  t.emitted <- seq + 1

(* [record] is the hot-path entry: positional arguments and an
   [@inline] guard, so a disabled tracer costs one load and branch at
   the call site — no wrapper call for the optional argument. *)
let[@inline] record t kind subject detail =
  if t.capacity > 0 then write t kind subject detail

let[@inline] emit t ?(detail = 0) kind subject = record t kind subject detail

let emitted t = t.emitted

let dropped t = if t.emitted > t.capacity then t.emitted - t.capacity else 0

let events t =
  let n = min t.emitted t.capacity in
  List.init n (fun i -> t.ring.((t.emitted - n + i) mod t.capacity))

let to_jsonl buf t =
  List.iter
    (fun e ->
      Json.to_buffer buf (Event.to_json e);
      Buffer.add_char buf '\n')
    (events t)

let write_jsonl path t =
  let buf = Buffer.create 4096 in
  to_jsonl buf t;
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc
