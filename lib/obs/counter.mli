(** A monotonically increasing integer metric.  Incrementing is one
    mutable-field write, cheap enough for simulator hot paths. *)

type t

val create : string -> t

val name : t -> string

val incr : t -> unit

val add : t -> int -> unit

val value : t -> int

val reset : t -> unit

val to_json : t -> Json.t
