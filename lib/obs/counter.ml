type t = { name : string; mutable value : int }

let create name = { name; value = 0 }

let name t = t.name

let[@inline] incr t = t.value <- t.value + 1

let[@inline] add t n = t.value <- t.value + n

let value t = t.value

let reset t = t.value <- 0

let to_json t = Json.Int t.value
