(** The metric registry: a name-indexed store of counters, gauges, and
    histograms, plus the run's event tracer.

    Components ask for metrics by name; asking twice returns the same
    instance, so two structures sharing a scope aggregate into one
    metric.  [snapshot] renders everything (names sorted) as one JSON
    object — the single place the whole address-translation cost model
    of a run can be read from. *)

type t

val create : ?trace:Trace.t -> unit -> t
(** [trace] defaults to {!Trace.disabled}. *)

val counter : t -> string -> Counter.t

val gauge : t -> string -> Gauge.t

val histogram : t -> string -> Histogram.t

val trace : t -> Trace.t

val set_trace : t -> Trace.t -> unit

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val find_counter : t -> string -> Counter.t option

val reset : t -> unit
(** Zero every metric; the tracer is left as is. *)

val snapshot : t -> Json.t
(** [{"counters":{…},"gauges":{…},"histograms":{…},"trace":{…}}] with
    keys in sorted order — deterministic for a seeded run. *)

val snapshot_string : t -> string

val write_metrics : string -> t -> unit
(** [write_metrics path t] writes [snapshot] to a file, newline
    terminated. *)

val pp : Format.formatter -> t -> unit
(** One [name = value] line per counter/gauge/histogram, sorted. *)
