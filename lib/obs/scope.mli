(** A registry plus a dotted name prefix: the handle instrumented
    components take.

    A [Machine] given the scope [v ~prefix:"machine" reg] registers
    ["machine.ios"] and hands [sub scope "tlb"] to its TLB, which
    registers ["machine.tlb.lookups"] — so one registry can hold
    several structures of the same kind without name collisions.

    [null ()] backs a component nobody is observing: a private
    throwaway registry, so instrumentation never needs an option
    check on the hot path. *)

type t

val v : ?prefix:string -> Registry.t -> t

val null : unit -> t
(** A scope over a fresh private registry with tracing disabled: the
    default when no [?obs] is passed. *)

val registry : t -> Registry.t

val prefix : t -> string

val sub : t -> string -> t
(** [sub t "tlb"] extends the prefix by one dotted segment. *)

val counter : t -> string -> Counter.t

val gauge : t -> string -> Gauge.t

val histogram : t -> string -> Histogram.t

val emit : t -> ?detail:int -> Event.kind -> int -> unit
(** Forward to the registry's tracer; a no-op branch when tracing is
    disabled. *)

val tracer : t -> Trace.t
(** The registry's tracer.  Hot components capture it once at creation
    and call {!Trace.record} directly, skipping the registry
    indirection on every event.  (A later {!Registry.set_trace} is not
    seen by components created before it.) *)
