open Atp_util

type t = {
  name : string;
  mutable summary : Stats.Summary.t;
  mutable log : Stats.Log_histogram.t;
}

let create name =
  { name; summary = Stats.Summary.create (); log = Stats.Log_histogram.create () }

let name t = t.name

let observe t v =
  Stats.Log_histogram.add t.log v;
  Stats.Summary.add t.summary (float_of_int v)

let count t = Stats.Summary.count t.summary

let mean t = Stats.Summary.mean t.summary

let percentile t q =
  if Stats.Log_histogram.count t.log = 0 then 0
  else Stats.Log_histogram.percentile t.log q

let summary t = t.summary

let reset t =
  t.summary <- Stats.Summary.create ();
  t.log <- Stats.Log_histogram.create ()

let to_json t =
  let n = count t in
  (* Summary.min/max reject the empty case; keep the JSON shape stable
     with explicit nulls instead. *)
  let float_or_null f = if n = 0 then Json.Null else Json.Float (f t.summary) in
  Json.Obj
    [
      ("count", Json.Int n);
      ("mean", Json.Float (mean t));
      ("min", float_or_null Stats.Summary.min);
      ("max", float_or_null Stats.Summary.max);
      ("p50", Json.Int (percentile t 0.50));
      ("p99", Json.Int (percentile t 0.99));
    ]
