(** A fixed-capacity ring-buffer event tracer.

    When disabled (the default everywhere), [emit] is a single branch
    on a capacity field — no allocation, no write — so instrumented
    hot paths cost nothing beyond their counters.  When enabled, the
    ring keeps the most recent [capacity] events and counts what it
    overwrote, so a long run still exports a bounded, honest tail. *)

type t

val disabled : t
(** The shared no-op tracer: [emit] returns immediately. *)

val create : capacity:int -> t
(** Raises [Invalid_argument] if [capacity < 1].

    @raise Invalid_argument if [capacity < 1]. *)

val enabled : t -> bool

val emit : t -> ?detail:int -> Event.kind -> int -> unit
(** [emit t kind subject] records one event; [detail] defaults to 0. *)

val record : t -> Event.kind -> int -> int -> unit
(** [record t kind subject detail]: positional variant of {!emit} for
    instrumented hot paths — fully applied, it inlines to a single
    branch when the tracer is disabled. *)

val emitted : t -> int
(** Total events ever emitted, including overwritten ones. *)

val dropped : t -> int
(** Events lost to ring overwrite: [max 0 (emitted - capacity)]. *)

val events : t -> Event.t list
(** Retained events, oldest first. *)

val to_jsonl : Buffer.t -> t -> unit
(** One {!Event.to_json} record per line, oldest first. *)

val write_jsonl : string -> t -> unit
(** [write_jsonl path t] writes the JSONL dump to a file. *)
