(** Trace-event vocabulary for the address-translation simulators.

    Each event names the cost-model incident it records; [subject] is
    the page / huge page / bucket the event is about, and [detail] is a
    kind-specific extra (the evicted victim, the IO count of a fault,
    the ψ-update target core).  [seq] is the global emission index, so
    a truncated ring still tells you where its window sits in the
    run. *)

type kind =
  | Tlb_hit
  | Tlb_miss
  | Io
  | Decode_miss
  | Eviction
  | Psi_update
  | Page_fault
  | Custom of string

type t = { seq : int; kind : kind; subject : int; detail : int }

val kind_to_string : kind -> string

val to_json : t -> Json.t
(** [{"seq":…,"kind":"tlb_miss","subject":…,"detail":…}] — one JSONL
    record of the trace schema. *)
