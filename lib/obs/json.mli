(** A minimal JSON value type and serializer, just enough for metric
    snapshots and trace events.  No parser, no external dependency.

    Serialization is deterministic: callers control key order, floats
    render with [%.12g], and non-finite floats become [null] — so a
    snapshot of a seeded run is byte-stable and safe to golden-test. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string

val to_channel : out_channel -> t -> unit

val equal : t -> t -> bool
(** Structural equality.  Field order in objects is significant (the
    serializer is deterministic, so equal values serialize equally). *)

val of_string : string -> (t, string) result
(** Parse one JSON value (with optional surrounding whitespace) from
    the whole string.  Number literals without [.]/[e] parse as {!Int},
    others as {!Float} — the inverse of the serializer's convention.
    Errors (with an offset) are returned, never raised: callers such
    as checkpoint loading must survive the torn trailing line a killed
    run leaves behind. *)

(** {1 Accessors}

    Shape-checked projections, [None] on a mismatch — enough for
    consumers of metric snapshots and benchmark row streams to read
    fields without pattern-matching boilerplate. *)

val member : string -> t -> t option
(** [member key (Obj fields)] is the first binding of [key];
    [None] on non-objects. *)

val as_int : t -> int option

val as_float : t -> float option
(** Accepts both {!Float} and {!Int} (promoted). *)

val as_string : t -> string option

val as_list : t -> t list option

val as_obj : t -> (string * t) list option
