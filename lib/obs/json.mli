(** A minimal JSON value type and serializer, just enough for metric
    snapshots and trace events.  No parser, no external dependency.

    Serialization is deterministic: callers control key order, floats
    render with [%.12g], and non-finite floats become [null] — so a
    snapshot of a seeded run is byte-stable and safe to golden-test. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string

val to_channel : out_channel -> t -> unit
