type t = { name : string; mutable value : float }

let create name = { name; value = 0.0 }

let name t = t.name

let set t v = t.value <- v

let set_int t v = t.value <- float_of_int v

let value t = t.value

let reset t = t.value <- 0.0

let to_json t = Json.Float t.value
