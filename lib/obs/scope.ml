type t = { registry : Registry.t; prefix : string }

let v ?(prefix = "") registry = { registry; prefix }

let null () = { registry = Registry.create (); prefix = "" }

let registry t = t.registry

let prefix t = t.prefix

let full t name = if t.prefix = "" then name else t.prefix ^ "." ^ name

let sub t name = { t with prefix = full t name }

let counter t name = Registry.counter t.registry (full t name)

let gauge t name = Registry.gauge t.registry (full t name)

let histogram t name = Registry.histogram t.registry (full t name)

let tracer t = Registry.trace t.registry

let emit t ?detail kind subject =
  Trace.emit (Registry.trace t.registry) ?detail kind subject
