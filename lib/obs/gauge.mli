(** A point-in-time float metric (occupancy, load factor, latest
    latency): set overwrites, nothing accumulates. *)

type t

val create : string -> t

val name : t -> string

val set : t -> float -> unit

val set_int : t -> int -> unit

val value : t -> float

val reset : t -> unit

val to_json : t -> Json.t
