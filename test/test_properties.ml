(* qcheck property tests over random request streams.

   Complements the deterministic generic invariants in test_paging:
   here capacities, trace lengths and page universes are all drawn at
   random, and LRU is additionally checked step-by-step against a
   naive list-based reference model. *)

open Atp_util
open Atp_paging

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

(* (capacity, page universe, requests) with shrinking-friendly sizes. *)
let stream_arb =
  QCheck.(
    triple (int_range 1 16) (int_range 1 32)
      (list_of_size Gen.(int_range 1 300) (int_bound 1000)))

let trace_of (universe, pages) =
  Array.of_list (List.map (fun p -> p mod universe) pages)

(* size <= capacity, size = |resident|, resident distinct — after
   EVERY access, not just at the end. *)
let prop_size_bounded_throughout =
  QCheck.Test.make ~name:"every policy: size bounded at every step" ~count:50
    stream_arb (fun (capacity, universe, pages) ->
      let trace = trace_of (universe, pages) in
      List.for_all
        (fun (module P : Policy.S) ->
          let rng = Prng.create ~seed:42 () in
          let t = P.create ~rng ~capacity () in
          Array.for_all
            (fun page ->
              ignore (P.access t page);
              P.size t <= capacity
              && P.size t = List.length (P.resident t)
              && List.length (List.sort_uniq compare (P.resident t))
                 = P.size t)
            trace)
        Registry.all)

(* Outcomes partition the stream: every access is a hit or a miss,
   hits happen exactly on resident pages, and Sim's bookkeeping agrees
   with a manual count. *)
let prop_hit_miss_counts_consistent =
  QCheck.Test.make ~name:"every policy: hit/miss counts consistent" ~count:50
    stream_arb (fun (capacity, universe, pages) ->
      let trace = trace_of (universe, pages) in
      List.for_all
        (fun (module P : Policy.S) ->
          let rng = Prng.create ~seed:7 () in
          let t = P.create ~rng ~capacity () in
          let hits = ref 0 and misses = ref 0 and ok = ref true in
          Array.iter
            (fun page ->
              let resident_before = P.mem t page in
              (match P.access t page with
               | Policy.Hit ->
                 incr hits;
                 if not resident_before then ok := false
               | Policy.Miss _ ->
                 incr misses;
                 if resident_before then ok := false);
              if not (P.mem t page) then ok := false)
            trace;
          !ok
          && !hits + !misses = Array.length trace
          &&
          (* The same policy under Sim.run produces the same split. *)
          let rng = Prng.create ~seed:7 () in
          let inst = Policy.instantiate (module P) ~rng ~capacity () in
          let s = Sim.run inst trace in
          s.Sim.accesses = Array.length trace
          && s.Sim.hits + s.Sim.misses = s.Sim.accesses)
        Registry.all)

(* --- LRU vs a naive reference model -------------------------------- *)

(* The reference: a list, most recent first.  O(n) per access, obviously
   correct. *)
module Naive_lru = struct
  type t = { capacity : int; mutable stack : int list }

  let create capacity = { capacity; stack = [] }

  let access t page =
    if List.mem page t.stack then begin
      t.stack <- page :: List.filter (fun p -> p <> page) t.stack;
      Policy.Hit
    end
    else if List.length t.stack < t.capacity then begin
      t.stack <- page :: t.stack;
      Policy.Miss { evicted = None }
    end
    else
      let rec split_last acc = function
        | [] -> assert false
        | [ victim ] -> (List.rev acc, victim)
        | p :: rest -> split_last (p :: acc) rest
      in
      let kept, victim = split_last [] t.stack in
      t.stack <- page :: kept;
      Policy.Miss { evicted = Some victim }
end

let prop_lru_matches_naive_reference =
  QCheck.Test.make
    ~name:"LRU agrees with naive list-based reference, per access"
    ~count:200 stream_arb (fun (capacity, universe, pages) ->
      let trace = trace_of (universe, pages) in
      let lru = Lru.create ~capacity () in
      let ref_model = Naive_lru.create capacity in
      Array.for_all
        (fun page -> Lru.access lru page = Naive_lru.access ref_model page)
        trace)

(* remove is also part of the contract: interleave removes and check
   the models keep agreeing. *)
let prop_lru_matches_naive_with_removes =
  QCheck.Test.make ~name:"LRU matches reference under access+remove mix"
    ~count:100 stream_arb (fun (capacity, universe, pages) ->
      let trace = trace_of (universe, pages) in
      let lru = Lru.create ~capacity () in
      let ref_model = Naive_lru.create capacity in
      let i = ref 0 in
      Array.for_all
        (fun page ->
          incr i;
          if !i mod 7 = 0 then begin
            (* A shootdown of this page in both models. *)
            let removed = Lru.remove lru page in
            let was = List.mem page ref_model.Naive_lru.stack in
            ref_model.Naive_lru.stack <-
              List.filter (fun p -> p <> page) ref_model.Naive_lru.stack;
            removed = was
          end
          else Lru.access lru page = Naive_lru.access ref_model page)
        trace)

let () =
  Alcotest.run "properties"
    [
      ( "policy invariants (qcheck)",
        qsuite [ prop_size_bounded_throughout; prop_hit_miss_counts_consistent ]
      );
      ( "lru reference model",
        qsuite
          [ prop_lru_matches_naive_reference; prop_lru_matches_naive_with_removes ]
      );
    ]
